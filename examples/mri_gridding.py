"""Non-Cartesian MRI reconstruction by iterative NUFFT gridding.

MRI scanners acquire Fourier-domain ("k-space") samples along non-Cartesian
trajectories -- here a radial trajectory, the motivating application cited in
the paper's introduction (Fessler & Sutton's min-max NUFFT gridding).  The
forward model is a type-2 NUFFT (image -> k-space samples) and its adjoint is
a type-1 NUFFT, so image reconstruction is a least-squares problem solved by
conjugate gradients on the normal equations, with both operators sharing one
plan each (the classic "iterative reconstruction" workload the plan interface
is designed for).

Run with ``python examples/mri_gridding.py``.
"""

import numpy as np

from repro import Plan, relative_l2_error


def shepp_logan_like_phantom(n):
    """A simple analytic phantom: nested ellipses of differing intensity."""
    y, x = np.meshgrid(np.linspace(-1, 1, n), np.linspace(-1, 1, n), indexing="ij")
    img = np.zeros((n, n))
    ellipses = [
        (0.0, 0.0, 0.72, 0.95, 1.0),
        (0.0, 0.0, 0.65, 0.87, -0.4),
        (0.22, 0.0, 0.12, 0.31, 0.3),
        (-0.22, 0.0, 0.16, 0.41, 0.35),
        (0.0, 0.35, 0.21, 0.25, 0.25),
        (0.0, -0.1, 0.046, 0.046, 0.3),
    ]
    for cx, cy, ax, ay, val in ellipses:
        img[((x - cx) / ax) ** 2 + ((y - cy) / ay) ** 2 <= 1.0] += val
    return img


def radial_trajectory(n_spokes, n_readout):
    """Radial k-space sample locations in [-pi, pi)^2."""
    angles = np.pi * np.arange(n_spokes) / n_spokes
    radii = np.linspace(-np.pi, np.pi, n_readout, endpoint=False)
    kx = np.concatenate([r * np.cos(a) for a in angles for r in [radii]])
    ky = np.concatenate([r * np.sin(a) for a in angles for r in [radii]])
    return kx, ky


def main():
    n = 128                      # image size
    n_spokes, n_readout = 200, 256
    eps = 1e-6

    image = shepp_logan_like_phantom(n)
    kx, ky = radial_trajectory(n_spokes, n_readout)
    print(f"radial trajectory: {kx.size} k-space samples, image {n}x{n}")

    # Forward (type 2) and adjoint (type 1) operators sharing plans.
    forward_plan = Plan(2, (n, n), eps=eps, precision="double")
    forward_plan.set_pts(kx, ky)
    adjoint_plan = Plan(1, (n, n), eps=eps, precision="double")
    adjoint_plan.set_pts(kx, ky)

    def forward(img):
        return forward_plan.execute(img.astype(np.complex128))

    def adjoint(samples):
        return adjoint_plan.execute(samples.astype(np.complex128))

    # Simulated acquisition with a little complex noise.
    rng = np.random.default_rng(0)
    kdata = forward(image)
    kdata += 0.01 * np.abs(kdata).mean() * (
        rng.standard_normal(kdata.shape) + 1j * rng.standard_normal(kdata.shape)
    )

    # Density-compensated adjoint ("gridding") reconstruction as the baseline:
    # radial density compensation weights |k|.
    weights = np.abs(np.hypot(kx, ky)) + np.pi / n_readout
    gridding = adjoint(kdata * weights).real
    gridding *= image.max() / max(gridding.max(), 1e-30)

    # Conjugate gradients on the normal equations A^H A x = A^H b.
    b = adjoint(kdata)
    x = np.zeros((n, n), dtype=np.complex128)
    r = b - adjoint(forward(x))
    p = r.copy()
    rs_old = np.vdot(r, r).real
    for it in range(15):
        ap = adjoint(forward(p))
        alpha = rs_old / np.vdot(p, ap).real
        x += alpha * p
        r -= alpha * ap
        rs_new = np.vdot(r, r).real
        if it % 5 == 0:
            err = relative_l2_error(x.real * image.max() / max(x.real.max(), 1e-30), image)
            print(f"  CG iteration {it:2d}: residual {rs_new:.3e}, image error {err:.3f}")
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new

    recon = x.real * image.max() / max(x.real.max(), 1e-30)
    print(f"\ngridding-only reconstruction error: {relative_l2_error(gridding, image):.3f}")
    print(f"CG (15 iterations) reconstruction error: {relative_l2_error(recon, image):.3f}")

    t_fwd = forward_plan.timings()
    print(f"\nmodelled GPU time per type-2 execute: {t_fwd['exec']*1e3:.3f} ms "
          f"({forward_plan.ns_per_point('exec'):.1f} ns per k-space sample)")

    forward_plan.destroy()
    adjoint_plan.destroy()


if __name__ == "__main__":
    main()
