"""X-ray single-particle reconstruction with M-TIP (paper Sec. V), multi-rank.

Synthesizes a diffraction experiment from a known 3D density, then runs the
M-TIP loop -- slicing (3D type-2 NUFFT), orientation matching, merging (two 3D
type-1 NUFFTs) and phasing -- distributing the images over simulated MPI ranks
that share the GPUs of a Cori-GPU-like node round-robin, exactly as the
paper's application code does.

Run with ``python examples/xray_mtip_reconstruction.py``.
"""

import numpy as np

from repro.cluster import CORI_GPU_NODE, Node, SimComm
from repro.core.errors import relative_l2_error
from repro.mtip import MTIPConfig, MTIPReconstruction
from repro.mtip.ewald import ewald_slice_points, random_rotations
from repro.mtip.merging import MergingOperator
from repro.mtip.phasing import centered_fft
from repro.mtip.slicing import SlicingOperator


def single_rank_reconstruction():
    """Run the full M-TIP loop on one (simulated) GPU."""
    print("=== single-rank M-TIP reconstruction ===")
    config = MTIPConfig(n_modes=16, n_pix=14, n_images=40, n_candidates=60,
                        eps=1e-8, phasing_iterations=80, seed=7)
    recon = MTIPReconstruction(config)
    density, history = recon.run(n_iterations=3)
    for record in history:
        print(f"  iteration {record.iteration}: "
              f"orientation score {record.mean_orientation_score:.3f}, "
              f"density error {record.density_error:.3f}, "
              f"NUFFT model time: slicing {record.nufft_seconds['slicing']*1e3:.2f} ms, "
              f"merging {record.nufft_seconds['merging']*1e3:.2f} ms")
    err = relative_l2_error(density, recon.true_density)
    print(f"  final density relative error: {err:.3f}")
    return recon


def multi_rank_slice_and_merge(recon, n_ranks=4):
    """Distribute one slicing + merging pass over MPI ranks sharing a node's GPUs.

    Mirrors the paper's work management: scatter the image batch, each rank
    runs its NUFFTs on its round-robin-assigned GPU, and the merged Fourier
    models are sum-reduced on rank 0.
    """
    print(f"\n=== multi-rank slicing + merging ({n_ranks} ranks, "
          f"{CORI_GPU_NODE.n_gpus}-GPU node) ===")
    cfg = recon.config
    node = Node(spec=CORI_GPU_NODE)
    comms = SimComm.create(n_ranks)
    model = recon.true_modes          # use the ground truth as the current model

    # rank 0 scatters the per-rank image batches (orientations)
    all_rotations = random_rotations(cfg.n_images, rng=3)
    batches = np.array_split(all_rotations, n_ranks)
    received = [comms[0].scatter(list(batches), root=0)]
    received += [comms[r].scatter(None) for r in range(1, n_ranks)]

    per_rank_numerators = []
    for rank in range(n_ranks):
        device = node.device_for_rank(rank)
        device.make_context()
        points = ewald_slice_points(received[rank], cfg.n_pix, q_max=cfg.q_max,
                                    curvature=cfg.curvature)
        slicer = SlicingOperator((cfg.n_modes,) * 3, points, eps=cfg.eps, device=device)
        values = slicer(model)
        slice_time = slicer.nufft_seconds()["total"]
        slicer.destroy()

        merger = MergingOperator((cfg.n_modes,) * 3, points, eps=cfg.eps, device=device)
        merged = merger(values)
        merge_time = merger.nufft_seconds()["total"]
        merger.destroy()
        per_rank_numerators.append(merged)
        print(f"  rank {rank} on GPU {device.device_id}: "
              f"{points.shape[0]} slice points, "
              f"slicing {slice_time*1e3:.2f} ms, merging {merge_time*1e3:.2f} ms "
              f"(contention x{device.contention_factor:.2f})")

    # reduce the per-rank merged models on rank 0 (drive non-root ranks first)
    for rank in range(1, n_ranks):
        comms[rank].reduce(per_rank_numerators[rank])
    total = comms[0].reduce(per_rank_numerators[0]) / n_ranks
    err = relative_l2_error(np.abs(total), np.abs(centered_fft(recon.true_density)))
    print(f"  reduced merged model vs ground-truth |F|: relative error {err:.3f}")
    print(f"  modelled collective-communication time: {comms[0].comm_seconds*1e3:.3f} ms")
    node.release_all()


def main():
    recon = single_rank_reconstruction()
    multi_rank_slice_and_merge(recon, n_ranks=4)


if __name__ == "__main__":
    main()
