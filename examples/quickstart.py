"""Quickstart: plan-based NUFFTs, backend selection and accuracy checking.

Run with ``python examples/quickstart.py``.

Demonstrates the core public API:

* the one-shot wrappers (``nufft2d1`` / ``nufft2d2`` / ``nufft1d3``),
* the plan interface (plan / set_pts / execute / destroy), which amortizes the
  bin-sorting of the nonuniform points across repeated transforms -- the use
  case the paper's "exec" timing measures,
* the execution-backend layer (``backend="reference" | "cached" |
  "device_sim"``): identical numerics, different execution strategies,
* the modelled GPU timing report of a plan.
"""

import time

import numpy as np

from repro import (
    Plan,
    available_backends,
    nudft_type1,
    nudft_type3,
    nufft1d3,
    nufft2d1,
    nufft2d2,
    relative_l2_error,
)


def main():
    rng = np.random.default_rng(42)
    m = 50_000
    n_modes = (128, 128)
    eps = 1e-6

    # Nonuniform points in [-pi, pi)^2 and complex strengths.
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    c = rng.standard_normal(m) + 1j * rng.standard_normal(m)

    # ------------------------------------------------------------------ #
    # one-shot interface
    # ------------------------------------------------------------------ #
    f = nufft2d1(x, y, c, n_modes, eps=eps, precision="double")
    print(f"type 1: produced a {f.shape} array of Fourier coefficients")

    # verify against the direct O(N M) sum on a small subproblem
    small = 3000
    f_small = nufft2d1(x[:small], y[:small], c[:small], (32, 32), eps=eps,
                       precision="double")
    exact = nudft_type1([x[:small], y[:small]], c[:small], (32, 32))
    print(f"type 1 relative l2 error vs direct sum: "
          f"{relative_l2_error(f_small, exact):.2e} (requested {eps:g})")

    # evaluate the series back at the points (type 2)
    c_back = nufft2d2(x, y, f, eps=eps, precision="double")
    print(f"type 2: evaluated the series at {c_back.shape[0]} targets")

    # type 3: nonuniform points -> nonuniform frequencies (1D here)
    s = rng.uniform(-60.0, 60.0, 2000)
    f3 = nufft1d3(x[:small], c[:small], s, eps=eps, precision="double")
    exact3 = nudft_type3([x[:small]], c[:small], [s])
    print(f"type 3 relative l2 error vs direct sum: "
          f"{relative_l2_error(f3, exact3):.2e}")

    # ------------------------------------------------------------------ #
    # execution backends: same transform, three execution strategies
    # ------------------------------------------------------------------ #
    print(f"\nbackends: {', '.join(available_backends())}")
    c8 = rng.standard_normal((8, m)) + 1j * rng.standard_normal((8, m))
    for backend in available_backends():
        with Plan(1, n_modes, n_trans=8, eps=eps, precision="double",
                  backend=backend) as plan:
            plan.set_pts(x, y)
            plan.execute(c8)                   # warm-up
            t0 = time.perf_counter()
            f8 = plan.execute(c8)
            dt = time.perf_counter() - t0
        note = ("records modelled GPU timings" if backend == "device_sim"
                else "pure numerics")
        print(f"  backend={backend:10s} exec {1e3 * dt:7.2f} ms "
              f"({note}); |f| checksum {np.abs(f8).sum():.6e}")

    # ------------------------------------------------------------------ #
    # plan interface: repeated transforms with the same points
    # ------------------------------------------------------------------ #
    with Plan(1, n_modes, eps=eps, precision="single", method="SM") as plan:
        plan.set_pts(x, y)           # bin-sorts the points once
        for trial in range(3):       # new strengths every iteration
            c_new = rng.standard_normal(m) + 1j * rng.standard_normal(m)
            f_new = plan.execute(c_new.astype(np.complex64))
        print()
        print(plan.report())
        t = plan.timings()
        print(f"\nmodelled V100 times: exec={t['exec']*1e3:.3f} ms "
              f"(amortized per repeated transform), "
              f"total+mem={t['total+mem']*1e3:.3f} ms (first call incl. transfers)")
        print(f"throughput: {1e9 / plan.ns_per_point('exec'):.2e} points/s (exec)")


if __name__ == "__main__":
    main()
