"""Explore the spreading methods and the device cost model interactively.

A compact command-line tool that reproduces the spirit of the paper's Fig. 2
for a user-chosen configuration: it runs the three spreading methods (GM,
GM-sort, SM) on the same points, verifies they produce identical fine grids,
and prints the modelled V100 timing breakdown of each, so the effect of
point clustering, accuracy and grid size on each method can be inspected.

Usage::

    python examples/spread_method_explorer.py [n_fine] [distribution] [eps] [backend]

e.g. ``python examples/spread_method_explorer.py 1024 cluster 1e-5 device_sim``.
The modelled timing breakdown needs the (default) ``device_sim`` backend;
``reference`` / ``cached`` run the same numerics without cost profiles.
"""

import sys

import numpy as np

from repro import Plan, relative_l2_error
from repro.workloads import make_distribution, strengths


def explore(n_fine=512, distribution="rand", eps=1e-5, backend="device_sim"):
    n_modes = (n_fine // 2, n_fine // 2)
    fine_shape = (n_fine, n_fine)
    m = n_fine * n_fine  # density rho = 1
    print(f"2D type 1, N={n_modes[0]}^2 modes, fine grid {n_fine}^2, "
          f"M={m} '{distribution}' points, eps={eps:g}, backend={backend}\n")

    coords = make_distribution(distribution, m, 2, fine_shape=fine_shape, rng=0)
    c = strengths(m, rng=1, dtype=np.complex64)

    grids = {}
    for method in ("GM", "GM-sort", "SM"):
        plan = Plan(1, n_modes, eps=eps, method=method, precision="single",
                    spread_only=True, backend=backend)
        plan.set_pts(*coords)
        grids[method] = plan.execute(c)
        if not plan.backend.records_profiles:
            print(f"{method:8s}: numerics only (backend {plan.backend.name} "
                  f"records no modelled timings)")
            plan.destroy()
            continue
        t = plan.timings()
        print(f"{method:8s}: spread {plan.ns_per_point('exec'):7.2f} ns/pt   "
              f"with sort {plan.ns_per_point('total'):7.2f} ns/pt   "
              f"(modelled exec {t['exec']*1e3:.3f} ms)")
        for phase, breakdown in plan.cost_model.breakdown_table(plan._exec_pipeline):
            if phase != "exec":
                continue
            print(f"          {breakdown.name:28s} "
                  f"atomic={breakdown.atomic*1e3:.3f} ms  "
                  f"serialization={breakdown.atomic_serial*1e3:.3f} ms  "
                  f"shared={breakdown.shared*1e3:.3f} ms")
        plan.destroy()

    # the three methods compute the same fine grid
    err_sort = relative_l2_error(grids["GM-sort"], grids["GM"])
    err_sm = relative_l2_error(grids["SM"], grids["GM"])
    print(f"\nfine-grid agreement: GM-sort vs GM {err_sort:.2e}, SM vs GM {err_sm:.2e}")


def main():
    n_fine = int(sys.argv[1]) if len(sys.argv) > 1 else 512
    distribution = sys.argv[2] if len(sys.argv) > 2 else "rand"
    eps = float(sys.argv[3]) if len(sys.argv) > 3 else 1e-5
    backend = sys.argv[4] if len(sys.argv) > 4 else "device_sim"
    explore(n_fine, distribution, eps, backend)


if __name__ == "__main__":
    main()
