"""Setuptools shim.

The offline environment used for this reproduction has setuptools but no
``wheel`` package, so PEP-517 editable installs (which need ``bdist_wheel``)
fail.  This shim lets ``pip install -e . --no-use-pep517 --no-build-isolation``
(and plain ``pip install -e .`` on fully-equipped systems) work everywhere.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
