"""Unit tests for the simulated-MPI primitives: SimComm, Node, exchange_all.

These pin down the exact-byte payload accounting the distributed halo tests
rely on (:meth:`SimComm._payload_bytes` must count ndarrays exactly and never
undercount nested containers), the eager collective semantics (driving order,
error contracts), and the round-robin rank -> device mapping of
:class:`~repro.cluster.node.Node`.
"""

import numpy as np
import pytest

from repro.cluster import CommCostModel, SimComm, exchange_all
from repro.cluster.comm import _SMALL_OBJECT_BYTES
from repro.cluster.node import CORI_GPU_NODE, SUMMIT_NODE, Node


# --------------------------------------------------------------------- #
# payload accounting: exact bytes, nested containers included
# --------------------------------------------------------------------- #
class TestPayloadBytes:
    def test_ndarray_exact(self):
        a = np.zeros((3, 5), dtype=np.complex128)
        assert SimComm._payload_bytes(a) == a.nbytes == 240
        assert SimComm._payload_bytes(np.zeros(0, dtype=np.float32)) == 0

    def test_bytes_like_exact(self):
        assert SimComm._payload_bytes(b"abcdef") == 6
        assert SimComm._payload_bytes(bytearray(17)) == 17
        assert SimComm._payload_bytes(memoryview(bytes(9))) == 9

    def test_scalar_flat_estimate(self):
        for obj in (None, 3, 2.5, "halo", object()):
            assert SimComm._payload_bytes(obj) == _SMALL_OBJECT_BYTES

    def test_flat_list(self):
        a = np.zeros(10, dtype=np.float64)
        b = np.zeros(4, dtype=np.complex64)
        expected = _SMALL_OBJECT_BYTES + a.nbytes + b.nbytes
        assert SimComm._payload_bytes([a, b]) == expected
        assert SimComm._payload_bytes((a, b)) == expected

    def test_empty_containers_are_one_header(self):
        assert SimComm._payload_bytes([]) == _SMALL_OBJECT_BYTES
        assert SimComm._payload_bytes({}) == _SMALL_OBJECT_BYTES
        assert SimComm._payload_bytes(()) == _SMALL_OBJECT_BYTES
        assert SimComm._payload_bytes(set()) == _SMALL_OBJECT_BYTES

    def test_dict_counts_keys_and_values(self):
        """The regression the fix targets: dict *keys* must be billed too."""
        a = np.zeros(100, dtype=np.float64)
        b = np.zeros(50, dtype=np.float64)
        payload = {"north": a, "south": b}
        expected = (
            _SMALL_OBJECT_BYTES                      # dict header
            + 2 * _SMALL_OBJECT_BYTES                # the two string keys
            + a.nbytes + b.nbytes
        )
        assert SimComm._payload_bytes(payload) == expected

    def test_nested_containers_never_undercount(self):
        """Nesting adds headers; the ndarray leaves stay exact."""
        a = np.zeros(8, dtype=np.float32)
        nested = {"slabs": [a, a], "meta": {"rank": 3}}
        expected = (
            _SMALL_OBJECT_BYTES                       # outer dict
            + _SMALL_OBJECT_BYTES + (_SMALL_OBJECT_BYTES + 2 * a.nbytes)
            + _SMALL_OBJECT_BYTES + (_SMALL_OBJECT_BYTES
                                     + 2 * _SMALL_OBJECT_BYTES)
        )
        assert SimComm._payload_bytes(nested) == expected
        # strictly more than the flattened leaf bytes (no undercounting)
        assert SimComm._payload_bytes(nested) > 2 * a.nbytes


# --------------------------------------------------------------------- #
# cost model
# --------------------------------------------------------------------- #
class TestCommCostModel:
    def test_latency_plus_bandwidth(self):
        cm = CommCostModel(latency_s=1e-6, bandwidth=1e9)
        # 8 ranks -> 3 hops of latency; 1e9 bytes -> 1 second on the wire.
        assert cm.collective_time(10**9, 8) == pytest.approx(1.0 + 3e-6)
        assert cm.collective_time(0, 2) == pytest.approx(1e-6)
        # single rank still pays one latency hop
        assert cm.collective_time(0, 1) == pytest.approx(1e-6)

    def test_validation(self):
        cm = CommCostModel()
        with pytest.raises(ValueError):
            cm.collective_time(10, 0)
        with pytest.raises(ValueError):
            cm.collective_time(-1, 2)


# --------------------------------------------------------------------- #
# collectives: semantics, driving order, byte/second counters
# --------------------------------------------------------------------- #
class TestSimComm:
    def test_create_validates_size(self):
        with pytest.raises(ValueError):
            SimComm.create(0)

    def test_rank_introspection(self):
        comms = SimComm.create(3)
        assert [c.Get_rank() for c in comms] == [0, 1, 2]
        assert all(c.Get_size() == 3 for c in comms)
        assert comms[1].rank == 1 and comms[1].size == 3

    def test_scatter_roundtrip_and_counters(self):
        comms = SimComm.create(4)
        payloads = [np.full(5, r, dtype=np.float64) for r in range(4)]
        got = [comms[0].scatter(payloads)]          # root drives first
        got += [comms[r].scatter(None) for r in (1, 2, 3)]
        for r, arr in enumerate(got):
            assert np.array_equal(arr, payloads[r])
        expected_bytes = SimComm._payload_bytes(payloads)
        assert comms[0].comm_bytes == expected_bytes
        assert comms[0].comm_seconds > 0.0

    def test_scatter_errors(self):
        comms = SimComm.create(2)
        with pytest.raises(RuntimeError):
            comms[1].scatter(None)                   # non-root before the root
        with pytest.raises(ValueError):
            comms[0].scatter([1, 2, 3])              # wrong payload count

    def test_gather_requires_all_ranks_before_root(self):
        comms = SimComm.create(3)
        comms[1].gather("b")
        with pytest.raises(RuntimeError):
            comms[0].gather("a")                     # rank 2 missing
        # a fresh full round works, root driven last
        comms = SimComm.create(3)
        assert comms[1].gather("b") is None
        assert comms[2].gather("c") is None
        assert comms[0].gather("a") == ["a", "b", "c"]

    def test_bcast(self):
        comms = SimComm.create(3)
        obj = np.arange(4)
        out0 = comms[0].bcast(obj)
        assert np.array_equal(comms[2].bcast(None), obj)
        assert np.array_equal(out0, obj)
        assert comms[0].comm_bytes == obj.nbytes * 2  # size-1 receivers
        with pytest.raises(RuntimeError):
            SimComm.create(2)[1].bcast(None)

    def test_reduce_and_allreduce(self):
        comms = SimComm.create(4)
        for r in (1, 2, 3):
            assert comms[r].reduce(np.full(3, r)) is None
        total = comms[0].reduce(np.full(3, 0))
        assert np.array_equal(total, np.full(3, 0 + 1 + 2 + 3))

    def test_allreduce_last_contributor_closes_round(self):
        comms = SimComm.create(3)
        assert comms[2].allreduce(np.full(2, 4.0)) is None
        assert comms[0].allreduce(np.full(2, 1.0)) is None
        total = comms[1].allreduce(np.full(2, 2.0))
        assert np.array_equal(total, np.full(2, 7.0))
        # a second round starts clean
        assert comms[0].allreduce(np.ones(2)) is None
        with pytest.raises(RuntimeError):
            comms[0].allreduce(np.ones(2))  # double contribution
        assert comms[1].allreduce(np.ones(2)) is None
        assert np.array_equal(comms[2].allreduce(np.ones(2)), 3 * np.ones(2))

    def test_barrier_charges_latency_not_bytes(self):
        comms = SimComm.create(4)
        before_s, before_b = comms[0].comm_seconds, comms[0].comm_bytes
        comms[0].barrier()
        assert comms[0].comm_bytes == before_b
        assert comms[0].comm_seconds > before_s

    def test_comm_seconds_monotone(self):
        comms = SimComm.create(2)
        seen = [comms[0].comm_seconds]
        comms[0].bcast(np.zeros(100))
        seen.append(comms[0].comm_seconds)
        comms[0].barrier()
        seen.append(comms[0].comm_seconds)
        comms[0].scatter([np.zeros(10), np.zeros(10)])
        comms[1].scatter(None)
        seen.append(comms[0].comm_seconds)
        assert all(b > a for a, b in zip(seen, seen[1:]))


# --------------------------------------------------------------------- #
# exchange_all (the halo / transpose primitive)
# --------------------------------------------------------------------- #
class TestExchangeAll:
    def test_transposes_the_send_matrix(self):
        comms = SimComm.create(3)
        send = [[(i, j) for j in range(3)] for i in range(3)]
        recv = exchange_all(comms, send)
        for j in range(3):
            for i in range(3):
                assert recv[j][i] == (i, j)

    def test_charges_only_off_diagonal_non_none(self):
        comms = SimComm.create(3)
        a = np.zeros(11, dtype=np.complex64)
        send = [[None] * 3 for _ in range(3)]
        send[0][0] = np.zeros(999)        # diagonal: stays local, free
        send[0][1] = a                    # the only charged payload
        send[2][1] = None                 # None: free (no envelope)
        exchange_all(comms, send)
        assert comms[0].comm_bytes == a.nbytes
        # pure-ndarray payloads mean the charge has no container overhead
        assert comms[0].comm_bytes % a.itemsize == 0

    def test_validates_shapes(self):
        comms = SimComm.create(2)
        with pytest.raises(ValueError):
            exchange_all(comms[:1], [[None, None], [None, None]])
        with pytest.raises(ValueError):
            exchange_all(comms, [[None], [None]])


# --------------------------------------------------------------------- #
# node model: round-robin ranks, contention
# --------------------------------------------------------------------- #
class TestNode:
    def test_specs(self):
        assert CORI_GPU_NODE.n_gpus == 8
        assert SUMMIT_NODE.n_gpus == 6

    def test_round_robin_assignment(self):
        node = Node(spec=SUMMIT_NODE)
        devices = node.assign_ranks(9)
        assert [d.device_id for d in devices] == [0, 1, 2, 3, 4, 5, 0, 1, 2]
        # shared devices picked up extra contexts
        assert devices[0].active_contexts == 2
        assert devices[3].active_contexts == 1
        node.release_all()
        assert all(d.active_contexts == 0 for d in node.devices)

    def test_device_for_rank_validation(self):
        node = Node()
        with pytest.raises(ValueError):
            node.device_for_rank(-1)
        assert node.device_for_rank(8).device_id == 0

    def test_assign_ranks_validation(self):
        node = Node()
        with pytest.raises(ValueError):
            node.assign_ranks(0)

    def test_contention_for_ranks(self):
        node = Node()  # 8 GPUs
        assert node.contention_for_ranks(1) == 1.0
        assert node.contention_for_ranks(8) == 1.0
        assert node.contention_for_ranks(9) == pytest.approx(2 * 1.05)
        assert node.contention_for_ranks(17) == pytest.approx(3 * 1.05)
        with pytest.raises(ValueError):
            node.contention_for_ranks(0)

    def test_sharing_raises_contention_factor(self):
        node = Node(spec=SUMMIT_NODE)
        devices = node.assign_ranks(7)  # rank 6 shares device 0
        assert devices[0].contention_factor > 1.0
        assert devices[1].contention_factor == 1.0
