"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(1234)


def make_points_2d(rng, m=1500):
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    return x, y, c


def make_points_3d(rng, m=1200):
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    z = rng.uniform(-np.pi, np.pi, m)
    c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    return x, y, z, c
