"""Shared fixtures for the test suite."""

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--runslow", action="store_true", default=False,
        help="run tests marked slow (large rank-8 distributed sweeps)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def rng():
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(1234)


def make_points_2d(rng, m=1500):
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    return x, y, c


def make_points_3d(rng, m=1200):
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    z = rng.uniform(-np.pi, np.pi, m)
    c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    return x, y, z, c
