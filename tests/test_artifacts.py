"""Tests of the unified warm-state artifact store (:mod:`repro.artifacts`).

Pins the PR 10 contract end to end:

* store semantics -- atomic disk round-trips across instances, per-kind
  schema versioning (stale entries skipped individually), corrupt/truncated
  entries counted and rebuilt instead of raising, tolerant record tables;
* concurrency -- single-flight builds (one builder invocation under races)
  and no torn reads while a writer rewrites an entry;
* producer round-trips -- Horner fits, stencil caches, Toeplitz PSF kernels
  and tuning wisdom all reload bit-identically from a shared store root;
* warm == cold -- a plan executed against a warmed store recomputes nothing
  (``builds == 0``) and its output is bit-identical to the cold run, across
  dimensions, transform types and precisions;
* service integration -- a restarted :class:`~repro.service.TransformService`
  pre-warms pooled plans from persisted signatures and serves its first
  request with zero artifact builds;
* :class:`~repro.service.PlanPool` hardening -- eviction, purge and clear
  always reclaim simulated device memory (RAM-flatness regression) and the
  ``on_evict`` callback never breaks reclamation.
"""

import json
import os
import threading

import numpy as np
import pytest

from repro.artifacts import ArtifactStore, default_store, reset_default_store
from repro.core.plan import Plan
from repro.core.stencil import build_stencil_cache, stencil_cache_key
from repro.gpu.device import Device
from repro.kernels.es_kernel import ESKernel, horner_coefficients
from repro.service import TransformService
from repro.service.pool import PlanPool
from repro.solve import ToeplitzNormalOperator
from repro.tuning import TuningCache
from tests.conftest import make_points_2d


# --------------------------------------------------------------------------- #
# store semantics: array kinds
# --------------------------------------------------------------------------- #
class TestArrayKinds:
    def test_memory_only_roundtrip(self):
        store = ArtifactStore()
        store.save_arrays("horner", "k", {"a": np.arange(4.0)})
        out = store.load_arrays("horner", "k")
        assert np.array_equal(out["a"], np.arange(4.0))
        assert store.load_arrays("horner", "missing") is None
        assert store.stats.hits == 1 and store.stats.misses == 1

    def test_disk_roundtrip_across_instances(self, tmp_path):
        writer = ArtifactStore(root=tmp_path)
        arrays = {"a": np.arange(6).reshape(2, 3), "b": np.ones(3) * 0.5}
        writer.save_arrays("stencil", "pts=abc.grid=8", arrays)

        reader = ArtifactStore(root=tmp_path)
        out = reader.load_arrays("stencil", "pts=abc.grid=8")
        assert set(out) == {"a", "b"}
        assert np.array_equal(out["a"], arrays["a"])
        assert np.array_equal(out["b"], arrays["b"])
        assert reader.stats.hits == 1 and reader.stats.builds == 0

    def test_loaded_arrays_are_read_only(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        store.save_arrays("psf", "k", {"a": np.zeros(3)})
        out = ArtifactStore(root=tmp_path).load_arrays("psf", "k")
        with pytest.raises(ValueError):
            out["a"][0] = 1.0

    def test_meta_member_name_is_reserved(self):
        store = ArtifactStore()
        with pytest.raises(ValueError, match="reserved"):
            store.save_arrays("horner", "k", {"__meta__": np.zeros(1)})

    def test_unregistered_kind_raises(self):
        store = ArtifactStore()
        with pytest.raises(KeyError, match="unregistered"):
            store.load_arrays("no-such-kind", "k")

    def test_stale_version_skipped_and_rebuilt(self, tmp_path):
        old = ArtifactStore(root=tmp_path, kinds=False)
        old.register_array_kind("custom", version=1)
        old.save_arrays("custom", "k", {"a": np.zeros(2)})

        new = ArtifactStore(root=tmp_path, kinds=False)
        new.register_array_kind("custom", version=2)
        assert new.load_arrays("custom", "k") is None
        assert new.stats.stale == 1 and new.stats.misses == 1

        # get_or_build recomputes and the rebuilt entry serves version 2.
        built = new.get_or_build("custom", "k", lambda: {"a": np.ones(2)})
        assert np.array_equal(built["a"], np.ones(2))
        assert new.stats.builds == 1
        again = ArtifactStore(root=tmp_path, kinds=False)
        again.register_array_kind("custom", version=2)
        assert np.array_equal(again.load_arrays("custom", "k")["a"], np.ones(2))

    @pytest.mark.parametrize("mangle", ["truncate", "garbage", "empty"])
    def test_corrupt_entry_counted_and_rebuilt(self, tmp_path, mangle):
        store = ArtifactStore(root=tmp_path)
        store.save_arrays("horner", "k", {"a": np.arange(64.0)})
        path = store._entry_path("horner", "k")
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            if mangle == "truncate":
                fh.write(blob[: len(blob) // 2])
            elif mangle == "garbage":
                fh.write(b"not a zip archive at all")
            # "empty": leave the file zero bytes

        fresh = ArtifactStore(root=tmp_path)
        assert fresh.load_arrays("horner", "k") is None
        assert fresh.stats.corrupt == 1
        rebuilt = fresh.get_or_build("horner", "k", lambda: {"a": np.ones(4)})
        assert np.array_equal(rebuilt["a"], np.ones(4))
        assert fresh.stats.builds == 1

    def test_memory_lru_bounded(self, tmp_path):
        store = ArtifactStore(root=tmp_path, kinds=False)
        store.register_array_kind("custom", 1, max_memory=2)
        for i in range(5):
            store.save_arrays("custom", f"k{i}", {"a": np.full(2, float(i))})
        assert len(store._array_kinds["custom"].memory) == 2
        # Evicted-from-memory entries still load from the disk tier.
        assert np.array_equal(store.load_arrays("custom", "k0")["a"],
                              np.zeros(2))

    def test_get_or_build_returns_stored_copy(self):
        store = ArtifactStore()
        src = np.arange(3.0)
        out = store.get_or_build("horner", "k", lambda: {"a": src})
        assert np.array_equal(out["a"], src)
        # Second call hits the cache: the builder must not run again.
        out2 = store.get_or_build(
            "horner", "k",
            lambda: (_ for _ in ()).throw(AssertionError("rebuilt")))
        assert np.array_equal(out2["a"], src)
        assert store.stats.builds == 1


# --------------------------------------------------------------------------- #
# store semantics: record kinds
# --------------------------------------------------------------------------- #
class TestRecordKinds:
    def test_roundtrip_across_instances(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        rec = {"version": 1, "nufft_type": 1, "modes": [32, 32]}
        store.put_record("plans", "t1.k", rec)

        fresh = ArtifactStore(root=tmp_path)
        assert fresh.get_record("plans", "t1.k") == rec
        assert fresh.record_keys("plans") == ["t1.k"]
        assert fresh.record_count("plans") == 1

    def test_malformed_record_rejected(self):
        store = ArtifactStore()
        with pytest.raises(ValueError, match="malformed"):
            store.put_record("plans", "k", {"version": 99})

    def test_corrupt_table_falls_back_empty(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text("{ torn mid-wri")
        store = ArtifactStore(root=tmp_path)
        assert store.record_count("plans") == 0
        assert store.record_load_error("plans") is not None
        # The next put rewrites the table wholesale and recovers it.
        store.put_record("plans", "k", {"version": 1})
        fresh = ArtifactStore(root=tmp_path)
        assert fresh.record_load_error("plans") is None
        assert fresh.get_record("plans", "k") == {"version": 1}

    def test_wrong_schema_entries_skipped_individually(self, tmp_path):
        path = tmp_path / "plans.json"
        path.write_text(json.dumps({
            "schema": 1,
            "entries": {
                "good": {"version": 1, "nufft_type": 2},
                "bad-version": {"version": 99},
                "bad-shape": "not-a-dict",
            },
        }))
        store = ArtifactStore(root=tmp_path)
        assert store.record_count("plans") == 1
        assert store.record_skipped("plans") == 2
        assert store.get_record("plans", "good")["nufft_type"] == 2
        assert store.get_record("plans", "bad-version") is None

    def test_clear_records_rewrites_table(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        store.put_record("plans", "k", {"version": 1})
        store.clear_records("plans")
        assert ArtifactStore(root=tmp_path).record_count("plans") == 0


# --------------------------------------------------------------------------- #
# stats and the default store
# --------------------------------------------------------------------------- #
class TestStatsAndDefaults:
    def test_snapshot_and_by_kind(self):
        store = ArtifactStore()
        store.get_or_build("horner", "k", lambda: {"a": np.zeros(1)})
        store.load_arrays("horner", "k")
        snap = store.stats.snapshot()
        assert snap == {"hits": 1, "misses": 1, "stale": 0, "corrupt": 0,
                        "builds": 1}
        assert store.stats.by_kind["horner"]["builds"] == 1

    def test_describe_mentions_root(self, tmp_path):
        assert "in-memory" in ArtifactStore().describe()
        assert str(tmp_path) in ArtifactStore(root=tmp_path).describe()

    def test_default_store_follows_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_STORE", str(tmp_path))
        reset_default_store()
        try:
            store = default_store()
            assert store.root == str(tmp_path)
            assert default_store() is store  # process-wide singleton
        finally:
            monkeypatch.delenv("REPRO_ARTIFACT_STORE")
            reset_default_store()


class TestEnvRegistry:
    def test_readme_documents_every_env_var(self):
        from repro.core.env import ENV_VARS

        readme = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "README.md")
        with open(readme, encoding="utf-8") as fh:
            text = fh.read()
        for name in ENV_VARS:
            assert f"`{name}`" in text, f"{name} missing from README table"

    def test_blank_value_counts_as_unset(self, monkeypatch):
        from repro.core import env

        monkeypatch.setenv("REPRO_ARTIFACT_STORE", "   ")
        assert env.artifact_store_path() is None
        monkeypatch.setenv("REPRO_FAULT_SEED", "")
        assert env.fault_seed() == 0
        monkeypatch.setenv("REPRO_FAULT_SEED", "not-an-int")
        with pytest.raises(ValueError):
            env.fault_seed()


# --------------------------------------------------------------------------- #
# concurrency
# --------------------------------------------------------------------------- #
class TestConcurrency:
    def test_single_flight_build(self, tmp_path):
        store = ArtifactStore(root=tmp_path)
        n_threads = 8
        builds = []
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads

        def builder():
            builds.append(1)
            return {"a": np.arange(16.0)}

        def worker(i):
            barrier.wait()
            results[i] = store.get_or_build("stencil", "contended", builder)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(builds) == 1
        assert store.stats.builds == 1
        for out in results:
            assert np.array_equal(out["a"], np.arange(16.0))

    def test_no_torn_reads_under_rewrites(self, tmp_path):
        # A writer rewrites the same entry with internally consistent
        # payloads; readers (forced to the disk tier via fresh instances)
        # must only ever observe a complete payload from one write.
        root = str(tmp_path)
        writer_store = ArtifactStore(root=root)
        writer_store.save_arrays("psf", "k", {"tag": np.full(8, 0.0),
                                              "check": np.full(3, 0.0)})
        stop = threading.Event()
        bad = []

        def writer():
            k = 1.0
            while not stop.is_set():
                writer_store.save_arrays(
                    "psf", "k",
                    {"tag": np.full(8, k), "check": np.full(3, k)})
                k += 1.0

        def reader():
            for _ in range(40):
                out = ArtifactStore(root=root).load_arrays("psf", "k")
                if out is None:
                    bad.append("miss")
                elif out["tag"][0] != out["check"][0]:
                    bad.append("torn")

        w = threading.Thread(target=writer)
        readers = [threading.Thread(target=reader) for _ in range(4)]
        w.start()
        for t in readers:
            t.start()
        for t in readers:
            t.join()
        stop.set()
        w.join()
        assert not bad


# --------------------------------------------------------------------------- #
# producer round-trips over one shared store root
# --------------------------------------------------------------------------- #
class TestProducerRoundtrips:
    def test_horner_fit_roundtrip(self, tmp_path):
        cold = ArtifactStore(root=tmp_path)
        c1 = horner_coefficients(6, 2.3 * 6, store=cold)
        assert cold.stats.builds == 1
        assert not c1.flags.writeable

        warm = ArtifactStore(root=tmp_path)
        c2 = horner_coefficients(6, 2.3 * 6, store=warm)
        assert warm.stats.builds == 0
        assert np.array_equal(c1, c2)

    def test_stencil_cache_roundtrip(self, tmp_path, rng):
        x, y, _ = make_points_2d(rng, m=300)
        kernel = ESKernel.from_tolerance(1e-6)
        fine = (48, 48)
        coords = (x, y)
        digest = "deadbeef" * 4

        cold = ArtifactStore(root=tmp_path)
        c1 = build_stencil_cache(coords, fine, kernel, store=cold,
                                 points_digest=digest)
        assert cold.stats.by_kind["stencil"]["builds"] == 1

        warm = ArtifactStore(root=tmp_path)
        c2 = build_stencil_cache(coords, fine, kernel, store=warm,
                                 points_digest=digest)
        assert warm.stats.by_kind["stencil"]["builds"] == 0
        assert warm.stats.by_kind["stencil"]["hits"] >= 1
        for d in range(2):
            assert np.array_equal(c1.i0[d], c2.i0[d])
            assert np.array_equal(c1.idx[d], c2.idx[d])
            assert np.array_equal(c1.vals[d], c2.vals[d])
        if c1.interp_matrix is not None:
            assert np.array_equal(c1.interp_matrix.data, c2.interp_matrix.data)
            assert np.array_equal(c1.interp_matrix.indices,
                                  c2.interp_matrix.indices)

    def test_stencil_key_covers_inputs(self):
        kernel = ESKernel.from_tolerance(1e-6)
        base = stencil_cache_key("d", (32, 32), kernel, "horner", 1 << 20, True)
        assert stencil_cache_key("e", (32, 32), kernel, "horner", 1 << 20,
                                 True) != base
        assert stencil_cache_key("d", (64, 32), kernel, "horner", 1 << 20,
                                 True) != base
        assert stencil_cache_key("d", (32, 32), kernel, "exact", 1 << 20,
                                 True) != base
        assert stencil_cache_key("d", (32, 32), kernel, "horner", 1 << 20,
                                 False) != base

    def test_psf_kernel_roundtrip(self, tmp_path, rng):
        x, y, _ = make_points_2d(rng, m=250)
        cold = ArtifactStore(root=tmp_path)
        op1 = ToeplitzNormalOperator((x, y), (16, 16), artifact_store=cold)
        assert op1.psf_build_seconds > 0.0

        warm = ArtifactStore(root=tmp_path)
        op2 = ToeplitzNormalOperator((x, y), (16, 16), artifact_store=warm)
        assert op2.psf_build_seconds == 0.0
        assert warm.stats.by_kind["psf"]["hits"] == 1
        assert np.array_equal(op1.kernel_hat, op2.kernel_hat)

        f = (rng.standard_normal((16, 16))
             + 1j * rng.standard_normal((16, 16)))
        assert np.array_equal(op1.apply(f), op2.apply(f))

    def test_tuning_cache_shares_store_root(self, tmp_path):
        record = {"version": 1, "score_s": 1e-3, "baseline_score_s": 2e-3,
                  "mode": "model",
                  "opts": {"method": "SM", "bin_shape": [32, 32],
                           "max_subproblem_size": 1024,
                           "threads_per_block": 128,
                           "stencil_budget": 1 << 25, "backend": "auto"}}
        store = ArtifactStore(root=tmp_path)
        TuningCache(store=store).put("sig", record)
        assert os.path.exists(tmp_path / "tuning.json")

        warm = TuningCache(store=ArtifactStore(root=tmp_path))
        assert warm.get("sig") == record
        # The same file also loads through the standalone path API.
        assert TuningCache(path=tmp_path / "tuning.json").get("sig") == record


# --------------------------------------------------------------------------- #
# warm == cold, bit-identical, across dims x types x precisions
# --------------------------------------------------------------------------- #
def _plan_case(ndim, nufft_type, precision, rng):
    m = 200
    n_modes = (12,) * ndim
    cplx = np.complex64 if precision == "single" else np.complex128
    coords = [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]
    kwargs = {}
    if nufft_type == 3:
        targets = [rng.uniform(-20, 20, 150) for _ in range(ndim)]
        kwargs = dict(zip("stu", targets))
        data = (rng.standard_normal(m)
                + 1j * rng.standard_normal(m)).astype(cplx)
        modes_arg = ndim
    elif nufft_type == 2:
        data = (rng.standard_normal(n_modes)
                + 1j * rng.standard_normal(n_modes)).astype(cplx)
        modes_arg = n_modes
    else:
        data = (rng.standard_normal(m)
                + 1j * rng.standard_normal(m)).astype(cplx)
        modes_arg = n_modes
    return modes_arg, coords, kwargs, data


class TestWarmEqualsCold:
    @pytest.mark.parametrize("precision", ["single", "double"])
    @pytest.mark.parametrize("nufft_type", [1, 2, 3])
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_bit_identical_and_zero_builds(self, tmp_path, rng, ndim,
                                           nufft_type, precision):
        modes_arg, coords, kwargs, data = _plan_case(ndim, nufft_type,
                                                     precision, rng)
        outputs, builds = [], []
        for _ in range(2):
            store = ArtifactStore(root=tmp_path)
            with Plan(nufft_type, modes_arg, precision=precision,
                      artifact_store=store) as plan:
                plan.set_pts(*coords, **kwargs)
                outputs.append(plan.execute(data))
            builds.append(store.stats.builds)
        assert np.array_equal(outputs[0], outputs[1])
        assert builds[1] == 0, "warm run recomputed warm state"


# --------------------------------------------------------------------------- #
# service integration: pre-warm and zero-build steady state
# --------------------------------------------------------------------------- #
class TestServiceWarm:
    def test_restart_prewarms_and_serves_with_zero_builds(self, tmp_path, rng):
        x, y, c = make_points_2d(rng, m=400)
        root = str(tmp_path)

        cold = TransformService(artifact_store=root)
        cold.submit(nufft_type=1, n_modes=(16, 16), x=x, y=y, data=c)
        cold_out = [r.output for r in cold.flush()]
        assert cold.stats.artifact_builds > 0
        cold.close()  # persists pooled plan signatures on clear()
        assert ArtifactStore(root=root).record_count("plans") >= 1

        warm = TransformService(artifact_store=root)
        assert warm.stats.plans_prewarmed >= 1
        warm.submit(nufft_type=1, n_modes=(16, 16), x=x, y=y, data=c)
        warm_out = [r.output for r in warm.flush()]
        stats = warm.stats
        report = warm.report()
        warm.close()

        assert np.array_equal(cold_out[0], warm_out[0])
        assert stats.artifact_builds == 0
        assert stats.plans_created == 0  # the pre-warmed plan served it
        assert stats.artifact_hits > 0
        assert "artifacts:" in report and "pre-warmed" in report

    def test_string_path_and_store_instance_equivalent(self, tmp_path, rng):
        x, y, c = make_points_2d(rng, m=200)
        svc = TransformService(artifact_store=ArtifactStore(root=tmp_path))
        svc.submit(nufft_type=2, n_modes=(12, 12),
                   x=x, y=y,
                   data=(np.arange(144.0) + 0j).reshape(12, 12))
        svc.flush()
        svc.close()
        # A path-configured service reads what the instance-configured wrote.
        svc2 = TransformService(artifact_store=str(tmp_path))
        assert svc2.stats.plans_prewarmed >= 1
        svc2.close()


# --------------------------------------------------------------------------- #
# PlanPool hardening: RAM flatness and on_evict robustness
# --------------------------------------------------------------------------- #
def _pooled(pool, device, tag):
    plan = Plan(1, (16, 16), device=device)
    return pool.make_entry(plan, (tag, 1, device.device_id))


class TestPlanPoolHardening:
    def test_ram_flat_across_evictions(self, rng):
        device = Device()
        baseline = device.memory.allocated_bytes
        assert baseline == 0
        pool = PlanPool(max_plans=2)
        # Churn 6 plans through a 2-slot pool: four LRU evictions.
        for i in range(6):
            pool.release(_pooled(pool, device, f"k{i}"))
            assert pool.n_idle <= 2
        held = device.memory.allocated_bytes
        assert held > 0
        pool.clear()
        assert pool.n_idle == 0
        assert device.memory.allocated_bytes == baseline

    def test_purge_device_reclaims_all_memory(self, rng):
        dev_a, dev_b = Device(device_id=0), Device(device_id=1)
        pool = PlanPool(max_plans=8)
        for i in range(2):
            pool.release(_pooled(pool, dev_a, f"a{i}"))
            pool.release(_pooled(pool, dev_b, f"b{i}"))
        assert pool.purge_device(0) == 2
        assert dev_a.memory.allocated_bytes == 0
        assert dev_b.memory.allocated_bytes > 0
        pool.clear()
        assert dev_b.memory.allocated_bytes == 0

    def test_zero_capacity_pool_destroys_on_release(self):
        device = Device()
        pool = PlanPool(max_plans=0)
        evicted = []
        pool.on_evict = evicted.append
        pool.release(_pooled(pool, device, "k"))
        assert device.memory.allocated_bytes == 0
        assert len(evicted) == 1

    def test_on_evict_sees_every_destroyed_entry(self):
        device = Device()
        evicted = []
        pool = PlanPool(max_plans=1, on_evict=evicted.append)
        e0 = _pooled(pool, device, "k0")
        e1 = _pooled(pool, device, "k1")
        pool.release(e0)
        pool.release(e1)  # evicts e0 (LRU)
        assert evicted == [e0]
        pool.clear()
        assert evicted == [e0, e1]
        assert device.memory.allocated_bytes == 0

    def test_on_evict_exception_does_not_leak_memory(self):
        device = Device()

        def explode(entry):
            raise RuntimeError("callback bug")

        pool = PlanPool(max_plans=1, on_evict=explode)
        pool.release(_pooled(pool, device, "k0"))
        pool.release(_pooled(pool, device, "k1"))  # eviction must survive
        pool.clear()
        assert pool.n_idle == 0
        assert device.memory.allocated_bytes == 0
