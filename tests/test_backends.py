"""Tests of the execution-backend layer: registry, stage-pipeline equivalence
across backends, and the AUTO method-selection matrix (paper Remark 2 plus the
new 1D rows)."""

import numpy as np
import pytest

from repro import Opts, Plan, Precision, SpreadMethod, relative_l2_error
from repro.backends import (
    ExecutionBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.backends.base import _FACTORIES

BACKENDS = ("reference", "cached", "device_sim")


def _make_problem(rng, nufft_type, n_modes, m=700, n_trans=1):
    ndim = len(n_modes)
    coords = [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]
    if nufft_type == 1:
        shape = (m,) if n_trans == 1 else (n_trans, m)
    else:
        shape = tuple(n_modes) if n_trans == 1 else (n_trans,) + tuple(n_modes)
    data = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return coords, data


class TestRegistry:
    def test_available_backends(self):
        names = available_backends()
        for expected in BACKENDS:
            assert expected in names

    def test_get_backend_shared_instance(self):
        assert get_backend("cached") is get_backend("cached")
        assert get_backend("CACHED") is get_backend("cached")

    def test_unknown_backend(self):
        with pytest.raises(KeyError):
            get_backend("definitely-not-a-backend")
        with pytest.raises(ValueError):
            Plan(1, (16, 16), backend="definitely-not-a-backend")

    def test_register_custom_backend(self):
        class EchoBackend(ExecutionBackend):
            name = "echo-test"

        try:
            register_backend("echo-test", EchoBackend)
            assert isinstance(get_backend("echo-test"), EchoBackend)
            assert "echo-test" in available_backends()
        finally:
            _FACTORIES.pop("echo-test", None)

    def test_opts_backend_resolution(self):
        assert Opts().resolve_backend() == "device_sim"
        assert Opts(backend="cached").resolve_backend() == "cached"
        assert Opts(backend=" Reference ").resolve_backend() == "reference"
        with pytest.raises(ValueError):
            Opts(backend="")

    def test_opts_copy_keeps_backend(self):
        assert Opts(backend="cached").copy().backend == "cached"
        assert Opts(backend="cached").copy(backend="reference").backend == "reference"


class TestBackendEquivalence:
    """All backends compute the same transform on shared fixtures."""

    @pytest.mark.parametrize("nufft_type", [1, 2])
    @pytest.mark.parametrize("n_modes", [(18,), (14, 18), (8, 10, 6)])
    def test_types12_match_reference(self, rng, nufft_type, n_modes):
        coords, data = _make_problem(rng, nufft_type, n_modes)
        results = {}
        for backend in BACKENDS:
            with Plan(nufft_type, n_modes, eps=1e-9, precision="double",
                      backend=backend) as plan:
                plan.set_pts(*coords)
                results[backend] = plan.execute(data)
        for backend in ("cached", "device_sim"):
            assert relative_l2_error(results[backend], results["reference"]) < 1e-8

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_type3_matches_reference(self, rng, ndim):
        m, nk = 350, 300
        coords = [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]
        targets = [rng.uniform(-25.0, 25.0, nk) for _ in range(ndim)]
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        kw = dict(zip(("s", "t", "u"), targets))
        results = {}
        for backend in BACKENDS:
            with Plan(3, ndim, eps=1e-9, precision="double", backend=backend) as plan:
                plan.set_pts(*coords, **kw)
                results[backend] = plan.execute(c)
        for backend in ("cached", "device_sim"):
            assert relative_l2_error(results[backend], results["reference"]) < 1e-8

    def test_batched_equivalence(self, rng):
        coords, data = _make_problem(rng, 1, (16, 16), n_trans=3)
        results = {}
        for backend in BACKENDS:
            with Plan(1, (16, 16), n_trans=3, eps=1e-8, precision="double",
                      backend=backend) as plan:
                plan.set_pts(*coords)
                results[backend] = plan.execute(data)
        assert results["cached"].shape == (3, 16, 16)
        for backend in ("cached", "device_sim"):
            assert relative_l2_error(results[backend], results["reference"]) < 1e-8

    def test_single_precision_equivalence(self, rng):
        coords, data = _make_problem(rng, 2, (20, 20))
        results = {}
        for backend in BACKENDS:
            with Plan(2, (20, 20), eps=1e-5, precision="single",
                      backend=backend) as plan:
                plan.set_pts(*coords)
                results[backend] = plan.execute(data.astype(np.complex64))
        for backend in ("cached", "device_sim"):
            assert results[backend].dtype == np.complex64
            assert relative_l2_error(results[backend], results["reference"]) < 1e-5


class TestBackendBehaviour:
    def test_profiles_only_on_device_sim(self, rng):
        coords, data = _make_problem(rng, 1, (24, 24))
        for backend, expect_kernels in (("reference", False), ("cached", False),
                                        ("device_sim", True)):
            with Plan(1, (24, 24), eps=1e-5, backend=backend) as plan:
                plan.set_pts(*coords)
                plan.execute(data.astype(np.complex64))
                kernels = plan._exec_pipeline.exec_kernels()
                assert bool(kernels) == expect_kernels
                if expect_kernels:
                    assert plan.timings()["exec"] > 0

    def test_stencil_cache_policy(self, rng):
        coords, _ = _make_problem(rng, 1, (16, 16))
        with Plan(1, (16, 16), backend="reference") as plan:
            plan.set_pts(*coords)
            assert plan._stencil is None
        # cached builds the cache even with the generic switch off
        with Plan(1, (16, 16), backend="cached", cache_stencils=False) as plan:
            plan.set_pts(*coords)
            assert plan._stencil is not None
        with Plan(1, (16, 16), backend="device_sim", cache_stencils=False) as plan:
            plan.set_pts(*coords)
            assert plan._stencil is None  # device_sim honours the switch

    def test_device_sim_type3_records_inner_kernels(self, rng):
        m = 300
        x = rng.uniform(-np.pi, np.pi, m)
        s = rng.uniform(-20.0, 20.0, m)
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        with Plan(3, 1, eps=1e-6, precision="double", backend="device_sim") as plan:
            plan.set_pts(x, s=s)
            plan.execute(c)
            names = {k.name for k in plan._exec_pipeline.exec_kernels()}
        # outer spread + inner type-2 kernels (fft, precorrect, interp)
        assert any(n.startswith("spread") for n in names)
        assert any(n.startswith("interp") for n in names)
        assert "cufft_inverse" in names
        assert "precorrect" in names


class TestAutoMethodMatrix:
    """Remark 2: AUTO resolution per (type, dim, precision), incl. 1D rows."""

    CASES = [
        # (nufft_type, ndim, precision, expected)
        (1, 1, "single", SpreadMethod.SM),
        (1, 1, "double", SpreadMethod.SM),
        (1, 2, "single", SpreadMethod.SM),
        (1, 2, "double", SpreadMethod.SM),
        (1, 3, "single", SpreadMethod.SM),
        (1, 3, "double", SpreadMethod.GM_SORT),
        (2, 1, "single", SpreadMethod.GM_SORT),
        (2, 1, "double", SpreadMethod.GM_SORT),
        (2, 2, "single", SpreadMethod.GM_SORT),
        (2, 2, "double", SpreadMethod.GM_SORT),
        (2, 3, "single", SpreadMethod.GM_SORT),
        (2, 3, "double", SpreadMethod.GM_SORT),
        (3, 1, "single", SpreadMethod.SM),
        (3, 1, "double", SpreadMethod.SM),
        (3, 2, "single", SpreadMethod.SM),
        (3, 2, "double", SpreadMethod.SM),
        (3, 3, "single", SpreadMethod.SM),
        (3, 3, "double", SpreadMethod.GM_SORT),
    ]

    @pytest.mark.parametrize("nufft_type,ndim,precision,expected", CASES)
    def test_opts_resolution(self, nufft_type, ndim, precision, expected):
        opts = Opts(precision=precision)
        assert opts.resolve_method(nufft_type, ndim) is expected

    @pytest.mark.parametrize("nufft_type,ndim,precision,expected", CASES)
    def test_plan_resolution(self, nufft_type, ndim, precision, expected):
        n_modes = ndim if nufft_type == 3 else (16,) * ndim
        plan = Plan(nufft_type, n_modes, eps=1e-5, precision=precision)
        # moderate accuracy: no shared-memory fallback expected at w=6
        assert plan.method is expected
        plan.destroy()

    def test_sm_shared_memory_fallback_still_applies(self):
        # 3D single at extreme accuracy exceeds the padded-bin budget
        plan = Plan(1, (32, 32, 32), eps=1e-14, precision="single", method="auto")
        assert plan.method is SpreadMethod.GM_SORT
        plan.destroy()

    def test_interp_method_property(self):
        plan = Plan(1, (16, 16), method="SM")
        assert plan.interp_method is SpreadMethod.GM_SORT
        plan.destroy()
        plan = Plan(1, (16, 16), method="GM")
        assert plan.interp_method is SpreadMethod.GM
        plan.destroy()

    def test_precision_enum_accepted(self):
        opts = Opts(precision=Precision.DOUBLE)
        assert opts.resolve_method(1, 3) is SpreadMethod.GM_SORT
