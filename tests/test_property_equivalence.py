"""Single-node randomized equivalence sweep: backends and facades.

The single-node companion of :mod:`tests.test_distributed`: over a seeded
randomized matrix of dimensions x transform types x precisions, the
``cached`` and ``device_sim`` backends must agree with the per-transform
``reference`` backend, and the upstream-style ``repro.finufft`` /
``repro.cufinufft`` facades must agree with the native :class:`repro.Plan`
on the same inputs.  Backend disagreement is bounded at ``eps / 10`` --
an order of magnitude tighter than the transform's own tolerance, since
all three run the same kernel and stencils and differ only in accumulation
order; facade parity is bit-exact (the facades delegate to the same plan
machinery, with only argument translation on top).
"""

import numpy as np
import pytest

from repro import Plan
from repro import cufinufft, finufft

_EPS = {"single": 1e-4, "double": 1e-9}

#: Backend-vs-reference allowance: all three backends run the same kernel and
#: stencils, differing only in accumulation order, so they agree an order of
#: magnitude *tighter* than the tolerance requested of the transform itself.
_BACKEND_TOL = {p: eps / 10.0 for p, eps in _EPS.items()}


def _backend_cases():
    cases = []
    cid = 0
    for ndim in (1, 2, 3):
        for nufft_type in (1, 2, 3):
            for precision in ("single", "double"):
                for rep in range(2):
                    cases.append((cid, ndim, nufft_type, precision, rep))
                    cid += 1
    return cases


def _backend_case_id(case):
    cid, ndim, nufft_type, precision, rep = case
    return f"b{cid:02d}-{ndim}d-t{nufft_type}-{precision}-r{rep}"


def _build(case):
    cid, ndim, nufft_type, precision, rep = case
    rng = np.random.default_rng(40_000 + cid)
    m = 250 + 50 * ndim
    if ndim == 1:
        n_modes = (int(rng.integers(20, 36)),)
    elif ndim == 2:
        n_modes = tuple(int(n) for n in rng.integers(9, 15, size=2))
    else:
        n_modes = tuple(int(n) for n in rng.integers(6, 9, size=3))
    coords = [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]
    targets = None
    if nufft_type == 3:
        nk = 80
        targets = [rng.uniform(-12.0, 12.0, nk) for _ in range(ndim)]
    if nufft_type == 2:
        shape = n_modes
    else:
        shape = (m,)
    data = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return n_modes, coords, targets, data


def _run_backend(case, backend):
    cid, ndim, nufft_type, precision, rep = case
    n_modes, coords, targets, data = _build(case)
    modes = ndim if nufft_type == 3 else n_modes
    plan = Plan(nufft_type, modes, eps=_EPS[precision], precision=precision,
                backend=backend)
    try:
        if nufft_type == 3:
            coord_kw = dict(zip(("x", "y", "z"), coords))
            target_kw = dict(zip(("s", "t", "u"), targets))
            plan.set_pts(**coord_kw, **target_kw)
        else:
            plan.set_pts(*coords)
        return plan.execute(data)
    finally:
        plan.destroy()


@pytest.mark.parametrize("case", _backend_cases(), ids=_backend_case_id)
@pytest.mark.parametrize("backend", ["cached", "device_sim"])
def test_backend_matches_reference(case, backend):
    """cached / device_sim == reference to within accumulation roundoff."""
    _cid, _ndim, _t, precision, _rep = case
    ref = _run_backend(case, "reference")
    out = _run_backend(case, backend)
    assert out.shape == ref.shape and out.dtype == ref.dtype
    err = np.linalg.norm(out - ref) / np.linalg.norm(ref)
    assert err <= _BACKEND_TOL[precision], (
        f"{backend} deviates from reference by {err:.3e} on "
        f"{_backend_case_id(case)}"
    )


def test_backends_deterministic_same_seed():
    """Each backend is bit-identical across reruns of the same seed."""
    case = (7, 2, 1, "double", 0)
    for backend in ("reference", "cached", "device_sim"):
        a = _run_backend(case, backend)
        b = _run_backend(case, backend)
        assert np.array_equal(a, b), f"{backend} rerun diverged bitwise"


# --------------------------------------------------------------------- #
# facades vs native plans
# --------------------------------------------------------------------- #
def _facade_problem(rng, ndim, nufft_type, m=400):
    n_modes = {1: (28,), 2: (12, 14), 3: (8, 9, 7)}[ndim]
    coords = [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]
    if nufft_type == 2:
        data = rng.standard_normal(n_modes) + 1j * rng.standard_normal(n_modes)
    else:
        data = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    return n_modes, coords, data


@pytest.mark.parametrize("module,name", [
    (finufft, "finufft"), (cufinufft, "cufinufft"),
])
@pytest.mark.parametrize("ndim", [1, 2, 3])
@pytest.mark.parametrize("nufft_type", [1, 2])
def test_facade_matches_native_plan(module, name, ndim, nufft_type):
    """Simple-interface facade calls == native Plan, bit for bit.

    The facades default to ``isign=+1`` (type 1) / ``-1`` (type 2) --
    the upstream convention, opposite the paper's -- so the native plan
    is pinned to the facade's sign.
    """
    rng = np.random.default_rng(5_000 + 10 * ndim + nufft_type)
    n_modes, coords, data = _facade_problem(rng, ndim, nufft_type)
    fn = getattr(module, f"nufft{ndim}d{nufft_type}")
    if nufft_type == 1:
        out = fn(*coords, data, n_modes)
        isign = +1
    else:
        out = fn(*coords, data)
        isign = -1
    plan = Plan(nufft_type, n_modes, eps=1e-6, precision="double", isign=isign)
    plan.set_pts(*coords)
    ref = plan.execute(data)
    plan.destroy()
    assert out.shape == ref.shape
    assert np.array_equal(out, ref), (
        f"{name}.nufft{ndim}d{nufft_type} diverged from the native plan"
    )


def test_facade_plan_interface_matches_native(rng):
    """The facade Plan class (guru interface) == native Plan on one batch."""
    m, n_modes = 500, (16, 12)
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    fplan = finufft.Plan(1, n_modes, iflag=-1, eps=1e-9, dtype="complex128")
    fplan.setpts(x, y)
    out = fplan.execute(c)
    nplan = Plan(1, n_modes, eps=1e-9, precision="double", isign=-1)
    nplan.set_pts(x, y)
    ref = nplan.execute(c)
    nplan.destroy()
    assert np.array_equal(out, ref)
