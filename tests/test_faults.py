"""Resilience-layer tests: fault injection, breakers, retry/deadline/shedding.

Covers the deterministic :class:`repro.faults.FaultInjector`, the fleet's
circuit breakers and admission control, the service's retry / deadline /
load-shedding / degraded-mode behaviour, and the chaos property test:
under a randomized seeded fault schedule, every completed request is
numerically *identical* to the fault-free run, and the whole failure
bookkeeping is reproducible under ``REPRO_FAULT_SEED``.
"""

import numpy as np
import pytest

from repro.cluster import BreakerState, DeviceFleet
from repro.faults import (
    DeviceFaultError,
    DeviceLostError,
    DeviceOOMError,
    FaultInjector,
    FaultSpec,
    TransientKernelError,
    fault_seed_from_env,
)
from repro.gpu.device import Device
from repro.service import (
    DeadlineExceededError,
    PlanPool,
    RetryPolicy,
    ServiceOverloadedError,
    TransformService,
)


class DummyPlan:
    def __init__(self):
        self.destroyed = False

    def destroy(self):
        self.destroyed = True


# --------------------------------------------------------------------------- #
# injector units
# --------------------------------------------------------------------------- #
class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec("meteor", rate=0.1)
        with pytest.raises(ValueError, match="rate"):
            FaultSpec("transient", rate=1.5)
        with pytest.raises(ValueError, match="latency_multiplier"):
            FaultSpec("slow", rate=0.1, latency_multiplier=0.5)
        with pytest.raises(ValueError, match="after_events"):
            FaultSpec("transient", rate=0.1, after_events=-1)

    def test_device_restriction(self):
        spec = FaultSpec("oom", rate=0.5, device_ids=[1, 3])
        assert spec.device_ids == (1, 3)
        assert spec.applies_to(3) and not spec.applies_to(0)
        assert FaultSpec("oom", rate=0.5).applies_to(7)


class TestFaultInjector:
    @staticmethod
    def _schedule(seed, rate=0.3, n=60):
        inj = FaultInjector([FaultSpec("transient", rate=rate)], seed=seed)
        dev = Device()
        inj.attach([dev])
        fired = []
        for i in range(n):
            try:
                inj.on_kernel_launch(dev, f"k{i}")
                fired.append(0)
            except TransientKernelError:
                fired.append(1)
        return fired

    def test_same_seed_same_schedule(self):
        assert self._schedule(5) == self._schedule(5)

    def test_different_seed_different_schedule(self):
        assert self._schedule(5) != self._schedule(6)

    def test_seed_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SEED", "99")
        assert fault_seed_from_env() == 99
        assert FaultInjector().seed == 99
        assert RetryPolicy().seed == 99
        monkeypatch.delenv("REPRO_FAULT_SEED")
        assert fault_seed_from_env(default=3) == 3

    def test_after_events_threshold(self):
        inj = FaultInjector(
            [FaultSpec("transient", rate=1.0, after_events=3)], seed=0
        )
        dev = Device()
        inj.attach([dev])
        for i in range(3):
            inj.on_kernel_launch(dev, f"warmup{i}")
        with pytest.raises(TransientKernelError):
            inj.on_kernel_launch(dev, "k")

    def test_oom_is_memoryerror(self):
        inj = FaultInjector([FaultSpec("oom", rate=1.0)], seed=0)
        dev = Device()
        inj.attach([dev])
        with pytest.raises(MemoryError):
            inj.on_kernel_launch(dev, "spread")
        assert inj.stats.injected["oom"] == 1

    def test_slow_multiplies_stream_ops(self):
        inj = FaultInjector(
            [FaultSpec("slow", rate=1.0, latency_multiplier=3.0)], seed=0
        )
        dev = Device()
        inj.attach([dev])
        stream = dev.create_stream()
        event = stream.enqueue("exec", 1.0, "kernel")
        assert event.time == pytest.approx(3.0)
        assert inj.stats.injected["slow"] == 1

    def test_death_kills_device_until_reset(self):
        inj = FaultInjector([FaultSpec("death", rate=1.0)], seed=0)
        dev = Device()
        inj.attach([dev])
        with pytest.raises(DeviceLostError):
            inj.on_kernel_launch(dev, "spread")
        assert not dev.alive and inj.is_dead(dev.device_id)
        stream = dev.create_stream()
        with pytest.raises(DeviceLostError):
            stream.enqueue("exec", 1.0)
        dev.reset()
        assert dev.alive  # full reset revives the hardware
        inj.reset()
        assert not inj.is_dead(dev.device_id)


# --------------------------------------------------------------------------- #
# fleet health / breakers
# --------------------------------------------------------------------------- #
class TestFleetHealth:
    def test_breaker_trips_after_threshold(self):
        fleet = DeviceFleet(n_devices=2, failure_threshold=3)
        for _ in range(2):
            assert not fleet.record_failure(0)
        assert fleet.breaker_state(0) is BreakerState.CLOSED
        assert fleet.record_failure(0)
        assert fleet.breaker_state(0) is BreakerState.OPEN
        assert not fleet.is_admissible(0)
        assert [d.device_id for d in fleet.admissible()] == [1]
        assert fleet.health[0].trips == 1

    def test_half_open_probe_cycle(self):
        fleet = DeviceFleet(n_devices=2, failure_threshold=1,
                            breaker_cooldown_s=0.05)
        fleet.record_failure(0)
        assert fleet.breaker_state(0) is BreakerState.OPEN
        # Advance modelled fleet time past the cooldown.
        fleet.next_stream(fleet.device(1)).enqueue("exec", 1.0)
        assert fleet.breaker_state(0) is BreakerState.HALF_OPEN
        assert fleet.is_admissible(0)
        # A failed probe re-opens (and restarts the cooldown).
        assert fleet.record_failure(0)
        assert fleet.breaker_state(0) is BreakerState.OPEN
        fleet.next_stream(fleet.device(1)).enqueue("exec", 1.0)
        assert fleet.breaker_state(0) is BreakerState.HALF_OPEN
        fleet.record_success(0)
        assert fleet.breaker_state(0) is BreakerState.CLOSED

    def test_success_resets_consecutive_failures(self):
        fleet = DeviceFleet(n_devices=1, failure_threshold=3)
        fleet.record_failure(0)
        fleet.record_failure(0)
        fleet.record_success(0)
        assert fleet.health[0].consecutive_failures == 0
        assert not fleet.record_failure(0)

    def test_drain_evict_restore(self):
        fleet = DeviceFleet(n_devices=2)
        fleet.drain(0)
        assert not fleet.is_admissible(0)
        fleet.restore(0)
        assert fleet.is_admissible(0)
        fleet.evict(0)
        assert not fleet.is_admissible(0)
        assert [d.device_id for d in fleet.ranked()] == [1]

    def test_ranked_falls_back_then_raises(self):
        fleet = DeviceFleet(n_devices=2, failure_threshold=1)
        fleet.record_failure(0)
        fleet.record_failure(1)
        # No admissible device: alive non-evicted ones still serve (degraded).
        assert len(fleet.ranked()) == 2
        fleet.evict(0)
        fleet.evict(1)
        with pytest.raises(DeviceLostError):
            fleet.ranked()
        with pytest.raises(DeviceLostError):
            fleet.least_loaded()

    def test_reset_clears_health(self):
        fleet = DeviceFleet(n_devices=1, failure_threshold=1)
        fleet.record_failure(0)
        fleet.evict(0)
        fleet.reset()
        assert fleet.is_admissible(0)
        assert fleet.health[0].failures == 0


# --------------------------------------------------------------------------- #
# retry policy
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError, match="backoff_multiplier"):
            RetryPolicy(backoff_multiplier=0.5)

    def test_backoff_deterministic_and_exponential(self):
        p = RetryPolicy(base_backoff_s=1e-3, backoff_multiplier=2.0,
                        max_backoff_s=1.0, jitter=0.0, seed=0)
        assert p.backoff_s(1, "r") == pytest.approx(1e-3)
        assert p.backoff_s(2, "r") == pytest.approx(2e-3)
        jittered = RetryPolicy(jitter=0.5, seed=1)
        assert jittered.backoff_s(1, "a") == jittered.backoff_s(1, "a")
        assert jittered.backoff_s(1, "a") != jittered.backoff_s(1, "b")

    def test_backoff_capped(self):
        p = RetryPolicy(base_backoff_s=1.0, max_backoff_s=1.5, jitter=0.0)
        assert p.backoff_s(5, "r") == pytest.approx(1.5)

    def test_should_retry_taxonomy(self):
        p = RetryPolicy()
        assert p.should_retry(TransientKernelError("x"))
        assert p.should_retry(DeviceOOMError("x"))
        assert p.should_retry(DeviceLostError("x"))
        assert not p.should_retry(ValueError("x"))
        assert not p.should_retry(RuntimeError("boom"))


# --------------------------------------------------------------------------- #
# service resilience behaviour
# --------------------------------------------------------------------------- #
def _submit_one(svc, i=0, m=400, **kwargs):
    rng = np.random.default_rng(i)
    x = rng.uniform(-np.pi, np.pi, m)
    c = rng.normal(size=m) + 1j * rng.normal(size=m)
    return svc.submit(nufft_type=1, n_modes=(16,), data=c, x=x, tag=i,
                      **kwargs)


class TestServiceResilience:
    def test_retries_absorb_transient_faults(self):
        inj = FaultInjector([FaultSpec("transient", rate=0.15)], seed=11)
        svc = TransformService(n_devices=2, fault_injector=inj,
                               retry=RetryPolicy(max_attempts=10))
        for i in range(12):
            _submit_one(svc, i)
        results = svc.flush()
        assert all(r.error is None for r in results)
        assert inj.stats.injected.get("transient", 0) > 0
        assert svc.stats.retries > 0
        assert any(r.attempts > 1 for r in results)
        svc.close()

    def test_failure_carries_type_and_message(self):
        inj = FaultInjector([FaultSpec("oom", rate=1.0)], seed=0)
        svc = TransformService(n_devices=1, fault_injector=inj,
                               retry=RetryPolicy(max_attempts=2))
        _submit_one(svc)
        res = svc.flush()[0]
        assert isinstance(res.error, DeviceOOMError)
        assert res.error_type == "DeviceOOMError"
        assert "out of memory" in res.error_message
        assert res.attempts == 2
        assert svc.stats.failures_by_type["DeviceOOMError"] == 2
        assert svc.stats.requests_failed == 1
        svc.close()

    def test_app_errors_are_not_retried(self, monkeypatch):
        from repro.core.plan import Plan

        svc = TransformService(n_devices=1,
                               retry=RetryPolicy(max_attempts=5))
        monkeypatch.setattr(
            Plan, "execute",
            lambda self, *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        _submit_one(svc)
        res = svc.flush()[0]
        assert res.error_type == "RuntimeError" and res.attempts == 1
        assert svc.stats.retries == 0
        monkeypatch.undo()
        svc.close()

    def test_device_death_is_rerouted_without_errors(self):
        inj = FaultInjector(
            [FaultSpec("death", rate=1.0, device_ids=(1,), after_events=20)],
            seed=7,
        )
        svc = TransformService(n_devices=4, fault_injector=inj,
                               retry=RetryPolicy(max_attempts=6))
        for i in range(32):
            _submit_one(svc, i)
        results = svc.flush()
        assert all(r.error is None for r in results)
        assert inj.is_dead(1)
        assert svc.fleet.health[1].evicted
        # Placement never returns to the dead device.
        for i in range(32, 40):
            _submit_one(svc, i)
        assert all(r.device_id != 1 for r in svc.flush())
        svc.close()

    def test_total_device_loss_fails_cleanly(self):
        inj = FaultInjector([FaultSpec("death", rate=1.0)], seed=3)
        svc = TransformService(n_devices=2, fault_injector=inj,
                               retry=RetryPolicy(max_attempts=4))
        _submit_one(svc, 0)
        res = svc.flush()[0]
        assert isinstance(res.error, DeviceLostError)
        # The service remains usable: further work fails fast, close is clean.
        _submit_one(svc, 1)
        res2 = svc.flush()[0]
        assert isinstance(res2.error, DeviceLostError)
        svc.close()

    def test_degraded_mode_serves_on_open_breakers(self):
        svc = TransformService(n_devices=2)
        for d in (0, 1):
            for _ in range(svc.fleet.failure_threshold):
                svc.fleet.record_failure(d)
        assert not svc.fleet.admissible()
        _submit_one(svc)
        res = svc.flush()[0]
        assert res.error is None and res.degraded
        assert svc.stats.degraded_shards >= 1
        assert svc.stats.degraded_seconds > 0.0
        svc.close()

    def test_deadline_exceeded_at_completion(self):
        svc = TransformService(n_devices=1)
        _submit_one(svc, deadline_s=1e-12)
        res = svc.flush()[0]
        assert isinstance(res.error, DeadlineExceededError)
        assert res.error_type == "DeadlineExceededError"
        assert svc.stats.deadline_exceeded == 1
        svc.close()

    def test_deadline_aborts_retry_chain(self):
        inj = FaultInjector([FaultSpec("transient", rate=1.0)], seed=0)
        svc = TransformService(
            n_devices=1, fault_injector=inj,
            retry=RetryPolicy(max_attempts=50, base_backoff_s=1e-3,
                              jitter=0.0),
        )
        _submit_one(svc, deadline_s=3e-3)
        res = svc.flush()[0]
        assert isinstance(res.error, DeadlineExceededError)
        assert res.attempts < 50
        svc.close()

    def test_queue_sheds_lowest_priority(self):
        svc = TransformService(max_queue_depth=2)
        _submit_one(svc, 0, priority=0)
        _submit_one(svc, 1, priority=1)
        _submit_one(svc, 2, priority=2)  # sheds the queued priority-0 request
        with pytest.raises(ServiceOverloadedError):
            _submit_one(svc, 3, priority=0)  # incoming is lowest: raises
        results = svc.flush()
        assert len(results) == 3
        assert isinstance(results[0].error, ServiceOverloadedError)
        assert results[0].error_type == "ServiceOverloadedError"
        assert results[1].error is None and results[2].error is None
        assert svc.stats.requests_shed == 2
        svc.close()

    def test_solve_deadline(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-np.pi, np.pi, 64)
        d = rng.normal(size=64) + 1j * rng.normal(size=64)
        svc = TransformService()
        with pytest.raises(DeadlineExceededError):
            svc.solve(n_modes=(8,), data=d, x=x, weights=None, maxiter=3,
                      deadline_s=1e-12)
        svc.close()

    def test_solve_retries_transient_faults(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-np.pi, np.pi, 64)
        d = rng.normal(size=64) + 1j * rng.normal(size=64)
        base = TransformService()
        ref = base.solve(n_modes=(8,), data=d, x=x, weights=None, maxiter=5)
        base.close()
        inj = FaultInjector([FaultSpec("transient", rate=0.02)], seed=21)
        svc = TransformService(n_devices=2, fault_injector=inj,
                               retry=RetryPolicy(max_attempts=10))
        res = svc.solve(n_modes=(8,), data=d, x=x, weights=None, maxiter=5)
        assert np.array_equal(res.x, ref.x)
        svc.close()

    def test_report_mentions_resilience(self):
        svc = TransformService()
        assert "resilience:" in svc.report()
        svc.close()


# --------------------------------------------------------------------------- #
# pool purging (satellite: no reuse of plans on evicted/drained devices)
# --------------------------------------------------------------------------- #
class TestPoolPurge:
    def test_purge_device_destroys_only_matching(self):
        pool = PlanPool(8)
        e0 = pool.make_entry(DummyPlan(), ("k", 0))
        e1 = pool.make_entry(DummyPlan(), ("k", 1))
        pool.release(e0)
        pool.release(e1)
        assert pool.purge_device(0) == 1
        assert e0.plan.destroyed and not e1.plan.destroyed
        assert pool.n_idle == 1

    def test_release_plan_on_evicted_device_destroys(self):
        svc = TransformService(n_devices=2)
        plan = svc.lease_plan(1, (16,), n_trans=1)
        device_id = plan.device.device_id
        svc.evict_device(device_id)
        svc.release_plan(plan)
        assert plan._destroyed
        assert svc.pool.n_idle == 0
        svc.close()

    def test_release_plan_on_drained_device_destroys(self):
        svc = TransformService(n_devices=2)
        plan = svc.lease_plan(1, (16,), n_trans=1)
        device_id = plan.device.device_id
        svc.drain_device(device_id)
        svc.release_plan(plan)
        assert plan._destroyed
        # The drained device takes no new placements until restored.
        assert all(d.device_id != device_id for d in svc.fleet.admissible())
        svc.restore_device(device_id)
        assert svc.fleet.is_admissible(device_id)
        svc.close()

    def test_eviction_purges_pooled_plans(self):
        svc = TransformService(n_devices=1)
        _submit_one(svc)
        svc.flush()
        assert svc.pool.n_idle == 1
        svc.evict_device(0)
        assert svc.pool.n_idle == 0
        svc.close()


# --------------------------------------------------------------------------- #
# chaos property test
# --------------------------------------------------------------------------- #
def _run_workload(svc, n_transforms=92, n_solves=8, waves=4):
    """Mixed transform/solve workload; returns (results, solve_x, errors)."""
    results, solve_x, solve_errors = {}, {}, {}
    per_wave = n_transforms // waves
    for wave in range(waves):
        for i in range(wave * per_wave, (wave + 1) * per_wave):
            group = i // 3  # ~3 requests share each point set
            rp = np.random.default_rng(1000 + group)
            x = rp.uniform(-np.pi, np.pi, 200)
            rd = np.random.default_rng(2000 + i)
            c = rd.normal(size=200) + 1j * rd.normal(size=200)
            svc.submit(nufft_type=1, n_modes=(16,), data=c, x=x, tag=i)
        for res in svc.flush():
            results[res.tag] = res
        for j in range(wave * (n_solves // waves),
                       (wave + 1) * (n_solves // waves)):
            rs = np.random.default_rng(3000 + j)
            x = rs.uniform(-np.pi, np.pi, 64)
            d = rs.normal(size=64) + 1j * rs.normal(size=64)
            try:
                sr = svc.solve(n_modes=(8,), data=d, x=x, weights=None,
                               maxiter=5, tag=j)
                solve_x[j] = sr.x
            except Exception as exc:  # exhausted retries: allowed, recorded
                solve_errors[j] = exc
    return results, solve_x, solve_errors


CHAOS_SPECS = [
    FaultSpec("transient", rate=0.05),
    FaultSpec("oom", rate=0.02),
    FaultSpec("slow", rate=0.02, latency_multiplier=3.0),
    FaultSpec("death", rate=1.0, device_ids=(3,), after_events=120),
]


class TestChaosProperty:
    def _chaos_run(self, seed=42):
        inj = FaultInjector(CHAOS_SPECS, seed=seed)
        svc = TransformService(n_devices=4, fault_injector=inj,
                               retry=RetryPolicy(max_attempts=8, seed=seed))
        out = _run_workload(svc)
        svc.close()
        return out, svc.stats, inj.stats

    def test_completed_requests_bit_identical_to_fault_free(self):
        base = TransformService(n_devices=4)
        ref_results, ref_solve_x, _ = _run_workload(base)
        base.close()
        (results, solve_x, solve_errors), stats, fstats = self._chaos_run()
        assert len(results) == len(ref_results)
        # The schedule must actually have injected faults for this to mean
        # anything.
        assert fstats.events > 0 and sum(fstats.injected.values()) > 0
        for tag, res in results.items():
            if res.error is not None:
                assert not isinstance(res.error, (ValueError, TypeError))
                continue
            assert np.array_equal(res.output, ref_results[tag].output), tag
        for j, x in solve_x.items():
            assert np.array_equal(x, ref_solve_x[j]), j

    def test_failure_counters_deterministic_under_seed(self):
        (_, _, errors1), stats1, fstats1 = self._chaos_run(seed=42)
        (_, _, errors2), stats2, fstats2 = self._chaos_run(seed=42)
        assert stats1 == stats2
        assert fstats1.events == fstats2.events
        assert fstats1.injected == fstats2.injected
        assert set(errors1) == set(errors2)

    def test_service_usable_after_total_device_loss(self):
        inj = FaultInjector([FaultSpec("death", rate=1.0)], seed=5)
        svc = TransformService(n_devices=3, fault_injector=inj,
                               retry=RetryPolicy(max_attempts=3))
        for i in range(6):
            _submit_one(svc, i)
        results = svc.flush()
        assert all(isinstance(r.error, DeviceLostError) for r in results)
        # Still answers (with errors) and closes cleanly.
        _submit_one(svc, 99)
        assert isinstance(svc.flush()[0].error, DeviceLostError)
        svc.close()
