"""Tests of the simulated GPU substrate: device, memory, transactions, atomics,
cost model, thread-block helpers and the FFT wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.deconvolve import CorrectionFactors, deconvolve_kernel_profile
from repro.core.exact import mode_indices, nudft_type1, nudft_type2
from repro.gpu import (
    CostModel,
    Device,
    DeviceFFT,
    KernelProfile,
    MemoryPool,
    PipelineProfile,
    V100_SPEC,
)
from repro.gpu.atomics import (
    dilated_occupied_cells,
    expected_queue_depth,
    serialization_delay_ns,
)
from repro.gpu.fft import fft_flops, fft_kernel_profile
from repro.gpu.memory import OutOfDeviceMemory, allocation_time_seconds, transfer_time_seconds, TransferDirection
from repro.gpu.threadblock import (
    LaunchConfigError,
    blocks_for_work,
    check_shared_memory_fit,
    padded_bin_shape,
    padded_bin_shared_bytes,
)
from repro.gpu.transactions import (
    l2_miss_fraction_localized,
    l2_miss_fraction_random,
    localized_sector_ops,
    scattered_sector_ops,
    sectors_for_contiguous_run,
)
from repro.kernels import ESKernel


class TestDeviceAndMemory:
    def test_v100_spec_matches_paper(self):
        assert V100_SPEC.shared_mem_per_block == 49152
        assert V100_SPEC.global_mem_bandwidth == pytest.approx(900e9)
        assert V100_SPEC.warp_size == 32

    def test_context_contention(self):
        dev = Device()
        assert dev.contention_factor == 1.0
        ctx1 = dev.make_context()
        assert dev.contention_factor == 1.0
        ctx2 = dev.make_context()
        assert dev.contention_factor > 2.0  # two ranks time-slice the device
        ctx2.pop()
        ctx1.pop()
        assert dev.active_contexts == 0
        with pytest.raises(RuntimeError):
            dev.release_context()

    def test_memory_pool_accounting(self):
        pool = MemoryPool(capacity_bytes=10_000)
        buf = pool.allocate((100,), np.float64, label="a")
        assert pool.allocated_bytes == 800
        buf2 = pool.from_host(np.zeros(200, dtype=np.float32), label="b")
        assert pool.allocated_bytes == 1600
        assert pool.peak_bytes == 1600
        assert pool.breakdown() == {"a": 800, "b": 800}
        buf.free()
        buf.free()  # idempotent
        assert pool.allocated_bytes == 800
        buf2.free()
        assert pool.allocated_bytes == 0
        assert pool.peak_bytes == 1600

    def test_out_of_memory(self):
        pool = MemoryPool(capacity_bytes=100)
        with pytest.raises(OutOfDeviceMemory):
            pool.allocate((1000,), np.float64)

    def test_transfer_and_alloc_times_monotone(self):
        t_small = transfer_time_seconds(1_000, V100_SPEC)
        t_big = transfer_time_seconds(1_000_000_000, V100_SPEC)
        assert t_big > t_small > 0
        d2d = transfer_time_seconds(1_000_000, V100_SPEC, TransferDirection.DEVICE_TO_DEVICE)
        h2d = transfer_time_seconds(1_000_000, V100_SPEC)
        assert d2d < h2d  # NVLink-class vs PCIe
        assert allocation_time_seconds(0, V100_SPEC) > 0


class TestTransactionModel:
    def test_sector_counts(self):
        assert sectors_for_contiguous_run(8) == 1
        assert sectors_for_contiguous_run(48) == 2
        assert sectors_for_contiguous_run(128) == 4
        with pytest.raises(ValueError):
            sectors_for_contiguous_run(0)

    def test_miss_fractions(self):
        l2 = V100_SPEC.l2_cache_bytes
        assert l2_miss_fraction_random(l2 // 2, l2) == 0.0
        assert 0.4 < l2_miss_fraction_random(2 * l2, l2) < 0.6
        assert l2_miss_fraction_random(100 * l2, l2) > 0.95
        assert l2_miss_fraction_localized(l2 // 4, l2) <= 0.05

    def test_localized_fewer_sectors_than_scattered(self):
        # a width-6 complex64 row coalesces ~3x vs element-by-element
        scattered = scattered_sector_ops(36, 8)
        localized = localized_sector_ops(6, 6, 8)
        assert localized < scattered

    @given(st.integers(min_value=1, max_value=10**6), st.integers(min_value=1, max_value=10**6))
    @settings(max_examples=50, deadline=None)
    def test_queue_depth_properties(self, inflight, distinct):
        q = expected_queue_depth(inflight, distinct)
        assert q >= 1.0
        assert serialization_delay_ns(100, q, 0.01) >= 0.0
        assert serialization_delay_ns(100, 1.0, 0.01) == 0.0

    def test_dilated_occupied_cells_regimes(self):
        # cluster: 64 point-cells dilated by w=6 in 2D -> (8+6)^2
        assert dilated_occupied_cells(64, 6, 2, 1e9) == pytest.approx(196.0)
        # capped at the grid size
        assert dilated_occupied_cells(10**9, 6, 2, 4096) == 4096


class TestThreadBlockHelpers:
    def test_blocks_for_work(self):
        assert blocks_for_work(0, 128) == 1
        assert blocks_for_work(129, 128) == 2

    def test_padded_bin_shape_matches_eq13(self):
        assert padded_bin_shape((32, 32), 6) == (38, 38)
        assert padded_bin_shape((16, 16, 2), 8) == (24, 24, 10)

    def test_remark2_shared_memory_rule(self):
        # 3D double precision: w > 8 cannot fit the default bins in 48 kB
        ok = check_shared_memory_fit((16, 16, 2), 6, 8, V100_SPEC)
        assert ok == padded_bin_shared_bytes((16, 16, 2), 6, 8)
        with pytest.raises(LaunchConfigError):
            check_shared_memory_fit((16, 16, 2), 10, 16, V100_SPEC)
        # single precision fits up to w = 8 (the widest single-precision kernel),
        # which is why the paper only excludes 3D *double* precision from SM
        check_shared_memory_fit((16, 16, 2), 8, 8, V100_SPEC)


class TestCostModel:
    def _profile(self, **kw):
        base = dict(name="k", grid_blocks=100, block_threads=128)
        base.update(kw)
        return KernelProfile(**base)

    def test_breakdown_terms_nonnegative_and_total(self):
        model = CostModel()
        prof = self._profile(flops=1e9, stream_bytes=1e8, gather_sector_ops=1e6,
                             gather_miss_fraction=0.5, global_atomic_ops=1e6,
                             global_atomic_sector_ops=1e6,
                             global_atomic_distinct_addresses=1e4)
        b = model.kernel_breakdown(prof)
        for term in (b.launch, b.compute, b.stream, b.gather, b.atomic, b.atomic_serial, b.shared):
            assert term >= 0
        assert b.total >= max(b.compute, b.stream + b.gather + b.atomic)

    def test_monotone_in_work(self):
        model = CostModel()
        small = model.kernel_time(self._profile(stream_bytes=1e6))
        large = model.kernel_time(self._profile(stream_bytes=1e9))
        assert large > small

    def test_contention_on_hot_addresses_costs_more(self):
        model = CostModel()
        cold = self._profile(global_atomic_ops=1e7, global_atomic_sector_ops=1e7,
                             global_atomic_distinct_addresses=1e7)
        hot = self._profile(global_atomic_ops=1e7, global_atomic_sector_ops=1e7,
                            global_atomic_distinct_addresses=1e2)
        assert model.kernel_time(hot) > 2 * model.kernel_time(cold)

    def test_double_precision_compute_slower(self):
        prof = self._profile(flops=1e12)
        single = CostModel(precision_itemsize=4).kernel_time(prof)
        double = CostModel(precision_itemsize=8).kernel_time(prof)
        assert double > single

    def test_pipeline_times_and_contention(self):
        model = CostModel()
        pipe = PipelineProfile()
        pipe.add_kernel(self._profile(stream_bytes=1e8), phase="exec")
        pipe.add_kernel(self._profile(stream_bytes=1e7), phase="setup")
        pipe.add_transfer("h2d", 1e8)
        pipe.add_transfer("alloc", 1e8)
        t = model.pipeline_times(pipe)
        assert t["total"] == pytest.approx(t["exec"] + t["setup"])
        assert t["total+mem"] > t["total"]
        t2 = model.pipeline_times(pipe, contention_factor=2.0)
        assert t2["exec"] == pytest.approx(2 * t["exec"])

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            CostModel(precision_itemsize=2)
        model = CostModel()
        with pytest.raises(ValueError):
            model.kernel_time(self._profile(), contention_factor=0.5)
        pipe = PipelineProfile()
        with pytest.raises(ValueError):
            pipe.add_kernel(self._profile(), phase="bogus")
        with pytest.raises(ValueError):
            pipe.add_transfer("sideways", 10)
        bad = self._profile(gather_miss_fraction=1.5)
        with pytest.raises(ValueError):
            bad.validate()

    def test_with_constants_override(self):
        model = CostModel()
        slower = model.with_constants(l2_sector_ns=2.0)
        prof = self._profile(gather_sector_ops=1e7)
        assert slower.kernel_time(prof) > model.kernel_time(prof)


class TestDeviceFFT:
    def test_forward_matches_numpy_and_records(self):
        rng = np.random.default_rng(0)
        grid = (rng.standard_normal((16, 12)) + 1j * rng.standard_normal((16, 12))).astype(np.complex128)
        pipe = PipelineProfile()
        fft = DeviceFFT(pipeline=pipe)
        np.testing.assert_allclose(fft.forward(grid), np.fft.fftn(grid), rtol=1e-12)
        np.testing.assert_allclose(fft.inverse(grid), np.fft.ifftn(grid) * grid.size, rtol=1e-12)
        assert len(pipe.exec_kernels()) == 2

    def test_rejects_real_input(self):
        fft = DeviceFFT()
        with pytest.raises(TypeError):
            fft.forward(np.zeros((4, 4)))

    def test_flop_model_scales(self):
        assert fft_flops((256, 256)) > fft_flops((64, 64))
        prof = fft_kernel_profile((128, 128), 8)
        prof.validate()
        assert prof.stream_bytes > 0


class TestDeconvolveAndExact:
    def test_correction_factors_separable(self):
        kernel = ESKernel.from_tolerance(1e-6)
        corr = CorrectionFactors(kernel, (10, 14), (32, 40))
        dense = corr.as_dense()
        assert dense.shape == (10, 14)
        np.testing.assert_allclose(
            dense, np.outer(corr.factors[0], corr.factors[1]), rtol=1e-14
        )

    def test_pad_then_truncate_roundtrip(self):
        rng = np.random.default_rng(3)
        kernel = ESKernel.from_tolerance(1e-6)
        corr = CorrectionFactors(kernel, (12, 10), (32, 30))
        modes = rng.standard_normal((12, 10)) + 1j * rng.standard_normal((12, 10))
        fine = corr.pad_and_scale(modes)
        # the fine-grid array holds the scaled modes at the centred positions
        # and zeros elsewhere
        assert fine.shape == (32, 30)
        assert np.count_nonzero(fine) == 12 * 10
        back = corr.truncate_and_scale(fine)
        np.testing.assert_allclose(back, modes * corr.as_dense() ** 2, rtol=1e-12)

    def test_shape_validation(self):
        kernel = ESKernel.from_tolerance(1e-4)
        with pytest.raises(ValueError):
            CorrectionFactors(kernel, (10, 10), (32,))
        corr = CorrectionFactors(kernel, (10, 10), (32, 32))
        with pytest.raises(ValueError):
            corr.truncate_and_scale(np.zeros((16, 16), dtype=complex))
        with pytest.raises(ValueError):
            corr.pad_and_scale(np.zeros((8, 8), dtype=complex))
        deconvolve_kernel_profile((10, 10), 8).validate()

    def test_mode_indices_centred(self):
        np.testing.assert_array_equal(mode_indices(4), [-2, -1, 0, 1])
        np.testing.assert_array_equal(mode_indices(5), [-2, -1, 0, 1, 2])

    def test_exact_transforms_adjoint(self):
        rng = np.random.default_rng(7)
        m = 50
        pts = [rng.uniform(-np.pi, np.pi, m) for _ in range(2)]
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        f = rng.standard_normal((8, 6)) + 1j * rng.standard_normal((8, 6))
        t1 = nudft_type1(pts, c, (8, 6))
        t2 = nudft_type2(pts, f)
        assert np.vdot(f, t1) == pytest.approx(np.vdot(t2, c), rel=1e-12)

    def test_exact_single_point_at_origin(self):
        # a unit mass at the origin has all-ones Fourier coefficients
        f = nudft_type1([np.array([0.0]), np.array([0.0])], np.array([1.0 + 0j]), (6, 7))
        np.testing.assert_allclose(f, np.ones((6, 7)), rtol=1e-13)
