"""Tests of the zero-copy workspace execution path.

Pins the PR's memory-path contract:

* steady-state executes with caller-provided ``out=`` record **zero**
  alloc/copy events across all transform types and dimensions;
* non-contiguous conforming inputs and outputs (F-order, strided,
  negative-stride) flow through without counted copies and produce results
  bit-identical to the contiguous path;
* workspace buffers are reused across executes (flat simulated RAM);
* ``spread_only`` plans return the plan precision for both types (no
  complex128 upcast);
* ``out=`` validation rejects wrong shape/dtype.
"""

import numpy as np
import pytest

from repro import Plan, nufft1d1, nufft2d1, nufft2d2, nufft2d3
from repro.metrics import track_allocs
from repro.metrics.allocs import as_dtype_counted


def _points(rng, ndim, m=600):
    return [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]


def _strengths(rng, m, dtype=np.complex64):
    return (rng.standard_normal(m) + 1j * rng.standard_normal(m)).astype(dtype)


def _modes_for(ndim):
    return {1: (32,), 2: (16, 12), 3: (10, 8, 6)}[ndim]


def _make_plan(tp, ndim, rng, m=600, **opts):
    coords = _points(rng, ndim, m)
    plan = Plan(tp, _modes_for(ndim) if tp != 3 else ndim, eps=1e-6,
                precision="single", **opts)
    if tp == 3:
        nk = 48
        targets = [rng.uniform(-25, 25, nk) for _ in range(ndim)]
        kw = dict(zip("stu", targets))
        plan.set_pts(*coords, **kw)
    else:
        plan.set_pts(*coords)
    return plan


def _io_pair(plan, tp, ndim, rng, m=600):
    cplx = plan.precision.complex_dtype
    if tp == 2:
        data = _strengths(rng, int(np.prod(_modes_for(ndim))),
                          cplx).reshape(_modes_for(ndim))
        out = np.empty(m, dtype=cplx)
    else:
        data = _strengths(rng, m, cplx)
        shape = _modes_for(ndim) if tp == 1 else (plan.n_targets,)
        out = np.empty(shape, dtype=cplx)
    return data, out


class TestSteadyStateZeroEvents:
    @pytest.mark.parametrize("tp", [1, 2, 3])
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_zero_events_with_out(self, rng, tp, ndim):
        plan = _make_plan(tp, ndim, rng)
        data, out = _io_pair(plan, tp, ndim, rng)
        for _ in range(2):  # warm-up populates the workspace
            plan.execute(data, out=out)
        plan.execute(data, out=out)
        stats = plan.last_allocs
        assert stats is not None
        assert stats.total_events == 0, stats.events
        plan.destroy()

    @pytest.mark.parametrize("tp", [1, 2, 3])
    def test_single_output_alloc_without_out(self, rng, tp):
        plan = _make_plan(tp, 2, rng)
        data, _ = _io_pair(plan, tp, 2, rng)
        for _ in range(2):
            plan.execute(data)
        plan.execute(data)
        stats = plan.last_allocs
        assert stats.allocs == 1 and stats.copies == 0, stats.events
        assert stats.events[0][1] == "output block"
        plan.destroy()

    def test_churn_baseline_counts_reallocations(self, rng):
        plan = _make_plan(1, 2, rng, reuse_workspace=False)
        data, out = _io_pair(plan, 1, 2, rng)
        for _ in range(2):
            plan.execute(data, out=out)
        plan.execute(data, out=out)
        # fine grid + FFT result adoption both churn every execute
        assert plan.last_allocs.allocs >= 2
        plan.destroy()

    def test_workspace_reused_ram_flat(self, rng):
        plan = _make_plan(1, 2, rng)
        data, out = _io_pair(plan, 1, 2, rng)
        plan.execute(data, out=out)
        baseline = plan.gpu_ram_mb()
        for _ in range(5):
            plan.execute(data, out=out)
        assert plan.gpu_ram_mb() == baseline
        names = set(plan.workspace.names())
        assert {"fine grid", "cufft workspace"} <= names
        plan.destroy()
        assert plan.workspace.nbytes == 0


class TestNonContiguousInputs:
    @pytest.mark.parametrize("tp", [1, 3])
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_strided_strengths_bit_identical(self, rng, tp, ndim):
        plan = _make_plan(tp, ndim, rng)
        data, out = _io_pair(plan, tp, ndim, rng)
        ref = plan.execute(data).copy()

        wide = np.zeros(2 * data.size, dtype=data.dtype)
        wide[::2] = data
        strided = wide[::2]
        assert not strided.flags.c_contiguous
        plan.execute(strided, out=out)
        assert np.array_equal(out, ref)
        assert plan.last_allocs.total_events == 0

        reversed_view = data[::-1][::-1]  # negative stride round-trip view
        plan.execute(reversed_view, out=out)
        assert np.array_equal(out, ref)
        plan.destroy()

    @pytest.mark.parametrize("ndim", [2, 3])
    def test_f_order_modes_type2(self, rng, ndim):
        plan = _make_plan(2, ndim, rng)
        data, out = _io_pair(plan, 2, ndim, rng)
        ref = plan.execute(data).copy()
        f_modes = np.asfortranarray(data)
        assert not f_modes.flags.c_contiguous
        plan.execute(f_modes, out=out)
        assert np.array_equal(out, ref)
        plan.destroy()

    @pytest.mark.parametrize("tp", [1, 2])
    @pytest.mark.parametrize("ndim", [2, 3])
    def test_f_order_out_bit_identical(self, rng, tp, ndim):
        plan = _make_plan(tp, ndim, rng)
        data, out = _io_pair(plan, tp, ndim, rng)
        ref = plan.execute(data).copy()
        f_out = np.asfortranarray(np.empty_like(out))
        if f_out.ndim > 1:
            assert not f_out.flags.c_contiguous
        plan.execute(data, out=f_out)
        assert np.array_equal(f_out, ref)
        plan.destroy()

    def test_strided_out_destination(self, rng):
        plan = _make_plan(1, 2, rng)
        data, out = _io_pair(plan, 1, 2, rng)
        ref = plan.execute(data).copy()
        n1, n2 = ref.shape
        backing = np.zeros((n1, 2 * n2), dtype=ref.dtype)
        strided_out = backing[:, ::2]
        assert not strided_out.flags.c_contiguous
        plan.execute(data, out=strided_out)
        assert np.array_equal(strided_out, ref)
        assert np.all(backing[:, 1::2] == 0)  # gaps untouched
        plan.destroy()


class TestSpreadOnlyPrecision:
    """Satellite pin: ``spread_only`` returns plan precision for both types."""

    @pytest.mark.parametrize("precision,expect", [
        ("single", np.complex64), ("double", np.complex128)])
    def test_type1_spread_only_dtype(self, rng, precision, expect):
        x, y = _points(rng, 2, 400)
        plan = Plan(1, (16, 16), eps=1e-6, precision=precision,
                    spread_only=True)
        plan.set_pts(x, y)
        grid = plan.execute(_strengths(rng, 400, expect))
        assert grid.dtype == np.dtype(expect)
        assert grid.shape == plan.fine_shape
        plan.destroy()

    @pytest.mark.parametrize("precision,expect", [
        ("single", np.complex64), ("double", np.complex128)])
    def test_type2_spread_only_dtype(self, rng, precision, expect):
        x, y = _points(rng, 2, 400)
        plan = Plan(2, (16, 16), eps=1e-6, precision=precision,
                    spread_only=True)
        plan.set_pts(x, y)
        fine = (rng.standard_normal(plan.fine_shape)
                + 1j * rng.standard_normal(plan.fine_shape)).astype(expect)
        values = plan.execute(fine)
        assert values.dtype == np.dtype(expect)
        assert values.shape == (400,)
        plan.destroy()


class TestSimpleApiOut:
    def test_simple_out_round_trip(self, rng):
        x, = _points(rng, 1, 500)
        c = _strengths(rng, 500, np.complex128)
        out = np.empty(24, dtype=np.complex128)
        got = nufft1d1(x, c, 24, out=out)
        assert got is out
        assert np.array_equal(out, nufft1d1(x, c, 24))

    def test_simple_out_all_types_2d(self, rng):
        x, y = _points(rng, 2, 500)
        c = _strengths(rng, 500, np.complex64)
        modes = _strengths(rng, 16 * 12, np.complex64).reshape(16, 12)
        s = rng.uniform(-20, 20, 30)
        t = rng.uniform(-20, 20, 30)
        for fn, args, shape in [
            (nufft2d1, (x, y, c, (16, 12)), (16, 12)),
            (nufft2d2, (x, y, modes), (500,)),
            (nufft2d3, (x, y, c, s, t), (30,)),
        ]:
            out = np.empty(shape, dtype=np.complex64)
            assert fn(*args, out=out) is out
            assert np.array_equal(out, fn(*args))

    def test_out_validation(self, rng):
        x, y = _points(rng, 2, 300)
        c = _strengths(rng, 300, np.complex64)
        plan = Plan(1, (16, 12), eps=1e-6, precision="single")
        plan.set_pts(x, y)
        with pytest.raises(ValueError):
            plan.execute(c, out=np.empty((12, 16), dtype=np.complex64))
        with pytest.raises(ValueError):
            plan.execute(c, out=np.empty((16, 12), dtype=np.complex128))
        plan.destroy()


class TestAllocCounter:
    def test_nested_tracking_and_counted_astype(self):
        data = np.ones(8, dtype=np.complex64)
        with track_allocs() as outer:
            with track_allocs() as inner:
                same = as_dtype_counted(data, np.complex64)
                assert same is data
                converted = as_dtype_counted(data, np.complex128)
            assert converted.dtype == np.complex128
        assert inner.copies == 1 and outer.copies == 1
        assert inner.allocs == 0
        assert outer.total_events == 1
