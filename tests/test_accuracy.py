"""End-to-end accuracy tests: transforms vs the direct O(NM) sums.

The requested tolerance should be met within a small safety factor (the paper
states Eq. (6) "typically gives relative l2 errors close to eps").
"""

import numpy as np
import pytest

from repro import Plan, nudft_type1, nudft_type2, relative_l2_error
from tests.conftest import make_points_2d, make_points_3d

#: Delivered error is allowed to exceed the request by this factor.
SAFETY = 12.0


class TestType1Accuracy2D:
    @pytest.mark.parametrize("method", ["GM", "GM-sort", "SM"])
    @pytest.mark.parametrize("eps", [1e-2, 1e-4, 1e-6, 1e-9])
    def test_meets_tolerance_double(self, rng, method, eps):
        x, y, c = make_points_2d(rng)
        n_modes = (36, 28)
        exact = nudft_type1([x, y], c, n_modes)
        with Plan(1, n_modes, eps=eps, method=method, precision="double") as plan:
            plan.set_pts(x, y)
            approx = plan.execute(c)
        assert relative_l2_error(approx, exact) < SAFETY * eps

    @pytest.mark.parametrize("eps", [1e-2, 1e-4])
    def test_meets_tolerance_single(self, rng, eps):
        x, y, c = make_points_2d(rng)
        n_modes = (32, 32)
        exact = nudft_type1([x, y], c, n_modes)
        with Plan(1, n_modes, eps=eps, precision="single") as plan:
            plan.set_pts(x, y)
            approx = plan.execute(c.astype(np.complex64))
        assert approx.dtype == np.complex64
        assert relative_l2_error(approx, exact) < SAFETY * eps + 1e-5

    def test_clustered_points_same_accuracy(self, rng):
        m = 1500
        n_modes = (32, 32)
        h = 2 * np.pi / 64
        x = rng.uniform(0, 8 * h, m)
        y = rng.uniform(0, 8 * h, m)
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        exact = nudft_type1([x, y], c, n_modes)
        for method in ("GM", "SM"):
            with Plan(1, n_modes, eps=1e-6, method=method, precision="double") as plan:
                plan.set_pts(x, y)
                approx = plan.execute(c)
            assert relative_l2_error(approx, exact) < SAFETY * 1e-6

    def test_rectangular_modes(self, rng):
        x, y, c = make_points_2d(rng, m=800)
        n_modes = (17, 43)  # odd and unequal
        exact = nudft_type1([x, y], c, n_modes)
        with Plan(1, n_modes, eps=1e-7, precision="double") as plan:
            plan.set_pts(x, y)
            approx = plan.execute(c)
        assert relative_l2_error(approx, exact) < SAFETY * 1e-7


class TestType2Accuracy2D:
    @pytest.mark.parametrize("method", ["GM", "GM-sort"])
    @pytest.mark.parametrize("eps", [1e-3, 1e-6, 1e-10])
    def test_meets_tolerance(self, rng, method, eps):
        x, y, _ = make_points_2d(rng)
        n_modes = (30, 26)
        f = rng.standard_normal(n_modes) + 1j * rng.standard_normal(n_modes)
        exact = nudft_type2([x, y], f)
        with Plan(2, n_modes, eps=eps, method=method, precision="double") as plan:
            plan.set_pts(x, y)
            approx = plan.execute(f)
        assert relative_l2_error(approx, exact) < SAFETY * eps


class TestAccuracy3D:
    @pytest.mark.parametrize("method", ["GM", "GM-sort", "SM"])
    def test_type1(self, rng, method):
        x, y, z, c = make_points_3d(rng, m=1000)
        n_modes = (14, 16, 12)
        exact = nudft_type1([x, y, z], c, n_modes)
        with Plan(1, n_modes, eps=1e-6, method=method, precision="double") as plan:
            plan.set_pts(x, y, z)
            approx = plan.execute(c)
        assert relative_l2_error(approx, exact) < SAFETY * 1e-6

    def test_type2(self, rng):
        x, y, z, _ = make_points_3d(rng, m=1000)
        n_modes = (12, 14, 10)
        f = rng.standard_normal(n_modes) + 1j * rng.standard_normal(n_modes)
        exact = nudft_type2([x, y, z], f)
        with Plan(2, n_modes, eps=1e-8, precision="double") as plan:
            plan.set_pts(x, y, z)
            approx = plan.execute(f)
        assert relative_l2_error(approx, exact) < SAFETY * 1e-8

    def test_error_decreases_with_tolerance(self, rng):
        x, y, z, c = make_points_3d(rng, m=800)
        n_modes = (12, 12, 12)
        exact = nudft_type1([x, y, z], c, n_modes)
        errors = []
        for eps in (1e-2, 1e-4, 1e-6, 1e-8):
            with Plan(1, n_modes, eps=eps, precision="double") as plan:
                plan.set_pts(x, y, z)
                errors.append(relative_l2_error(plan.execute(c), exact))
        assert all(e2 < e1 for e1, e2 in zip(errors, errors[1:]))


class TestAdjointness:
    """Type 1 and type 2 with the same points/modes are adjoint maps."""

    def test_2d(self, rng):
        x, y, c = make_points_2d(rng, m=900)
        n_modes = (24, 20)
        f = rng.standard_normal(n_modes) + 1j * rng.standard_normal(n_modes)
        with Plan(1, n_modes, eps=1e-10, precision="double") as p1:
            p1.set_pts(x, y)
            t1c = p1.execute(c)
        with Plan(2, n_modes, eps=1e-10, precision="double") as p2:
            p2.set_pts(x, y)
            t2f = p2.execute(f)
        # <T1 c, f> = <c, T2 f>  (T2 = T1^H with this sign convention)
        lhs = np.vdot(f, t1c)
        rhs = np.vdot(t2f, c)
        assert lhs == pytest.approx(rhs, rel=1e-8)

    def test_3d(self, rng):
        x, y, z, c = make_points_3d(rng, m=700)
        n_modes = (10, 12, 14)
        f = rng.standard_normal(n_modes) + 1j * rng.standard_normal(n_modes)
        with Plan(1, n_modes, eps=1e-9, precision="double") as p1:
            p1.set_pts(x, y, z)
            t1c = p1.execute(c)
        with Plan(2, n_modes, eps=1e-9, precision="double") as p2:
            p2.set_pts(x, y, z)
            t2f = p2.execute(f)
        assert np.vdot(f, t1c) == pytest.approx(np.vdot(t2f, c), rel=1e-7)


class TestLinearityAndInvariance:
    def test_type1_linearity(self, rng):
        x, y, c = make_points_2d(rng, m=600)
        d = rng.standard_normal(600) + 1j * rng.standard_normal(600)
        n_modes = (20, 20)
        with Plan(1, n_modes, eps=1e-9, precision="double") as plan:
            plan.set_pts(x, y)
            combined = plan.execute(2.5 * c - 1j * d)
            separate = 2.5 * plan.execute(c) - 1j * plan.execute(d)
        np.testing.assert_allclose(combined, separate, rtol=1e-9, atol=1e-9)

    def test_periodic_shift_invariance(self, rng):
        # shifting points by 2*pi does not change the transform
        x, y, c = make_points_2d(rng, m=500)
        n_modes = (22, 22)
        with Plan(1, n_modes, eps=1e-9, precision="double") as plan:
            plan.set_pts(x, y)
            a = plan.execute(c)
        with Plan(1, n_modes, eps=1e-9, precision="double") as plan:
            plan.set_pts(x + 2 * np.pi, y - 2 * np.pi)
            b = plan.execute(c)
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-9)

    def test_zero_strengths_give_zero_modes(self, rng):
        x, y, _ = make_points_2d(rng, m=200)
        with Plan(1, (16, 16), eps=1e-6, precision="double") as plan:
            plan.set_pts(x, y)
            out = plan.execute(np.zeros(200, dtype=np.complex128))
        assert np.all(out == 0)
