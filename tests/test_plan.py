"""Tests of the Plan interface (plan / set_pts / execute / destroy) and the
one-shot simple API."""

import numpy as np
import pytest

from repro import (
    Opts,
    Plan,
    Precision,
    SpreadMethod,
    nudft_type1,
    nudft_type2,
    nufft2d1,
    nufft2d2,
    nufft3d1,
    nufft3d2,
    relative_l2_error,
)
from repro.core.plan import CUDA_CONTEXT_MB
from repro.gpu.device import Device
from tests.conftest import make_points_2d, make_points_3d


class TestPlanConstruction:
    def test_invalid_type_and_dims(self):
        with pytest.raises(ValueError):
            Plan(4, (16, 16))
        with pytest.raises(ValueError):
            Plan(0, (16, 16))
        with pytest.raises(ValueError):
            Plan(1, (16, 16, 16, 16))
        with pytest.raises(ValueError):
            Plan(1, (0, 16))
        with pytest.raises(ValueError):
            Plan(1, (16, 16), n_trans=0)
        with pytest.raises(ValueError):
            Plan(3, 4)  # type-3 dimension out of range
        with pytest.raises(ValueError):
            Plan(1, (16, 16), backend="no-such-backend")

    def test_method_resolution(self):
        assert Plan(1, (16, 16)).method is SpreadMethod.SM
        assert Plan(2, (16, 16)).method is SpreadMethod.GM_SORT
        # 3D double precision falls back to GM-sort at high accuracy (Remark 2)
        p = Plan(1, (64, 64, 64), eps=1e-9, precision="double")
        assert p.method is SpreadMethod.GM_SORT
        # but an explicit low-accuracy 3D single-precision plan keeps SM
        assert Plan(1, (64, 64, 64), eps=1e-3, precision="single").method is SpreadMethod.SM

    def test_opts_overrides(self):
        plan = Plan(1, (32, 32), opts=Opts(), method="GM", precision="double",
                    max_subproblem_size=256)
        assert plan.method is SpreadMethod.GM
        assert plan.precision is Precision.DOUBLE
        assert plan.opts.max_subproblem_size == 256

    def test_fine_grid_and_kernel(self):
        plan = Plan(1, (100, 200), eps=1e-5)
        assert plan.kernel.width == 6
        assert plan.fine_shape == (200, 400)
        assert plan.bin_shape == (32, 32)

    def test_report_before_and_after_execute(self, rng):
        x, y, c = make_points_2d(rng, m=300)
        plan = Plan(1, (16, 16), eps=1e-4)
        assert "type 1" in plan.report()
        plan.set_pts(x, y)
        plan.execute(c.astype(np.complex64))
        report = plan.report()
        assert "modelled timings" in report
        plan.destroy()


class TestSetPts:
    def test_shape_validation(self, rng):
        plan = Plan(1, (16, 16))
        with pytest.raises(ValueError):
            plan.set_pts(np.zeros(10), np.zeros(11))
        with pytest.raises(ValueError):
            plan.set_pts(np.zeros(10), np.zeros(10), np.zeros(10))  # z on a 2D plan
        with pytest.raises(ValueError):
            plan.set_pts(np.zeros(0), np.zeros(0))
        plan3 = Plan(1, (8, 8, 8))
        with pytest.raises(ValueError):
            plan3.set_pts(np.zeros(10), np.zeros(10))  # missing z

    def test_execute_before_set_pts(self):
        plan = Plan(1, (16, 16))
        with pytest.raises(RuntimeError):
            plan.execute(np.zeros(4, dtype=np.complex64))

    def test_set_pts_can_be_called_again(self, rng):
        x, y, c = make_points_2d(rng, m=500)
        plan = Plan(1, (20, 20), eps=1e-6, precision="double")
        plan.set_pts(x, y)
        first = plan.execute(c)
        # new points of a different size
        x2, y2, c2 = make_points_2d(rng, m=700)
        plan.set_pts(x2, y2)
        second = plan.execute(c2)
        assert second.shape == (20, 20)
        exact = nudft_type1([x2, y2], c2, (20, 20))
        assert relative_l2_error(second, exact) < 1e-4
        assert not np.allclose(first, second)
        plan.destroy()

    def test_repeated_execute_same_points(self, rng):
        # the whole point of the plan interface: new strengths, same points
        x, y, c = make_points_2d(rng, m=600)
        d = rng.standard_normal(600) + 1j * rng.standard_normal(600)
        with Plan(1, (24, 24), eps=1e-7, precision="double") as plan:
            plan.set_pts(x, y)
            fc = plan.execute(c)
            fd = plan.execute(d)
        assert relative_l2_error(fc, nudft_type1([x, y], c, (24, 24))) < 1e-5
        assert relative_l2_error(fd, nudft_type1([x, y], d, (24, 24))) < 1e-5


class TestExecute:
    def test_output_dtype_follows_precision(self, rng):
        x, y, c = make_points_2d(rng, m=300)
        with Plan(1, (16, 16), precision="single") as plan:
            plan.set_pts(x, y)
            assert plan.execute(c).dtype == np.complex64
        with Plan(1, (16, 16), precision="double") as plan:
            plan.set_pts(x, y)
            assert plan.execute(c).dtype == np.complex128

    def test_batched_transforms(self, rng):
        x, y, _ = make_points_2d(rng, m=400)
        batch = rng.standard_normal((3, 400)) + 1j * rng.standard_normal((3, 400))
        with Plan(1, (18, 18), n_trans=3, eps=1e-7, precision="double") as plan:
            plan.set_pts(x, y)
            out = plan.execute(batch)
        assert out.shape == (3, 18, 18)
        for t in range(3):
            exact = nudft_type1([x, y], batch[t], (18, 18))
            assert relative_l2_error(out[t], exact) < 1e-5

    def test_batched_shape_validation(self, rng):
        x, y, c = make_points_2d(rng, m=100)
        with Plan(1, (8, 8), n_trans=2) as plan:
            plan.set_pts(x, y)
            with pytest.raises(ValueError):
                plan.execute(c)  # single vector given to a 2-transform plan

    def test_out_argument(self, rng):
        x, y, c = make_points_2d(rng, m=200)
        out = np.empty((12, 12), dtype=np.complex128)
        with Plan(1, (12, 12), precision="double") as plan:
            plan.set_pts(x, y)
            returned = plan.execute(c, out=out)
        assert returned is out
        assert np.any(out != 0)

    def test_out_validation_rejects_wrong_shape(self, rng):
        x, y, c = make_points_2d(rng, m=200)
        with Plan(1, (12, 12), precision="double") as plan:
            plan.set_pts(x, y)
            with pytest.raises(ValueError, match="shape"):
                plan.execute(c, out=np.empty((12, 13), dtype=np.complex128))
            with pytest.raises(ValueError, match="shape"):
                # broadcastable but not exact: must be rejected, not broadcast
                plan.execute(c, out=np.empty((1, 12, 12), dtype=np.complex128))

    def test_out_validation_rejects_wrong_dtype(self, rng):
        x, y, c = make_points_2d(rng, m=200)
        with Plan(1, (12, 12), precision="double") as plan:
            plan.set_pts(x, y)
            with pytest.raises(ValueError, match="dtype"):
                plan.execute(c, out=np.empty((12, 12), dtype=np.complex64))
            with pytest.raises(ValueError, match="dtype"):
                plan.execute(c, out=np.empty((12, 12), dtype=np.float64))
        with Plan(1, (12, 12), precision="single") as plan:
            plan.set_pts(x, y)
            with pytest.raises(ValueError, match="dtype"):
                plan.execute(c.astype(np.complex64),
                             out=np.empty((12, 12), dtype=np.complex128))

    def test_out_validation_rejects_non_array(self, rng):
        x, y, c = make_points_2d(rng, m=100)
        with Plan(1, (8, 8), precision="double") as plan:
            plan.set_pts(x, y)
            with pytest.raises(ValueError, match="numpy array"):
                plan.execute(c, out=[[0.0] * 8] * 8)

    def test_out_argument_batched_and_type2(self, rng):
        x, y, _ = make_points_2d(rng, m=150)
        block = rng.standard_normal((2, 150)) + 1j * rng.standard_normal((2, 150))
        with Plan(1, (10, 10), n_trans=2, precision="double") as plan:
            plan.set_pts(x, y)
            out = np.empty((2, 10, 10), dtype=np.complex128)
            assert plan.execute(block, out=out) is out
            with pytest.raises(ValueError):
                plan.execute(block, out=np.empty((10, 10), dtype=np.complex128))
        modes = rng.standard_normal((10, 10)) + 1j * rng.standard_normal((10, 10))
        with Plan(2, (10, 10), precision="double") as plan:
            plan.set_pts(x, y)
            out = np.empty(150, dtype=np.complex128)
            assert plan.execute(modes, out=out) is out

    def test_spread_only_mode(self, rng):
        x, y, c = make_points_2d(rng, m=300)
        with Plan(1, (16, 16), eps=1e-4, spread_only=True) as plan:
            plan.set_pts(x, y)
            fine = plan.execute(c.astype(np.complex64))
        assert fine.shape == plan.fine_shape

    def test_type2_wrong_mode_shape(self, rng):
        x, y, _ = make_points_2d(rng, m=100)
        with Plan(2, (16, 16)) as plan:
            plan.set_pts(x, y)
            with pytest.raises(ValueError):
                plan.execute(np.zeros((8, 8), dtype=np.complex64))


class TestTimingsAndMemory:
    def test_timings_keys_and_ordering(self, rng):
        x, y, c = make_points_2d(rng, m=2000)
        with Plan(1, (64, 64), eps=1e-5) as plan:
            plan.set_pts(x, y)
            plan.execute(c.astype(np.complex64))
            t = plan.timings()
        assert set(t) == {"exec", "setup", "total", "mem", "total+mem"}
        assert t["total"] == pytest.approx(t["exec"] + t["setup"])
        assert t["total+mem"] == pytest.approx(t["total"] + t["mem"])
        assert all(v >= 0 for v in t.values())
        assert plan.ns_per_point("exec") > 0

    def test_spread_fraction_dominates_3d_type1(self, rng):
        # Table I: spreading is >90% of exec for 3D type 1
        x, y, z, c = make_points_3d(rng, m=3000)
        with Plan(1, (32, 32, 32), eps=1e-5, precision="single") as plan:
            plan.set_pts(x, y, z)
            plan.execute(c.astype(np.complex64))
            assert plan.spread_fraction() > 0.5

    def test_gpu_ram_accounting(self, rng):
        x, y, c = make_points_2d(rng, m=1000)
        plan = Plan(1, (128, 128), eps=1e-5)
        base = plan.gpu_ram_mb(include_context=False)
        assert base > 0
        assert plan.gpu_ram_mb() == pytest.approx(base + CUDA_CONTEXT_MB)
        plan.set_pts(x, y)
        with_points = plan.gpu_ram_mb(include_context=False)
        assert with_points > base
        plan.destroy()
        assert plan.device.memory.allocated_bytes == 0

    def test_sorted_methods_use_more_ram_than_gm(self, rng):
        # Table I: GM-sort/SM carry the ~8 bytes/point index overhead
        x, y, c = make_points_2d(rng, m=5000)
        ram = {}
        for method in ("GM", "GM-sort"):
            plan = Plan(1, (64, 64), eps=1e-2, method=method)
            plan.set_pts(x, y)
            ram[method] = plan.gpu_ram_mb(include_context=False)
            plan.destroy()
        assert ram["GM-sort"] > ram["GM"]

    def test_destroyed_plan_refuses_work(self, rng):
        x, y, c = make_points_2d(rng, m=100)
        plan = Plan(1, (8, 8))
        plan.destroy()
        with pytest.raises(RuntimeError):
            plan.set_pts(x, y)
        with pytest.raises(RuntimeError):
            plan.execute(c.astype(np.complex64))

    def test_destroy_is_idempotent(self, rng):
        x, y, c = make_points_2d(rng, m=100)
        plan = Plan(1, (8, 8), precision="double")
        plan.set_pts(x, y)
        plan.execute(c)
        plan.destroy()
        plan.destroy()  # second destroy is a no-op, not an error
        assert plan.device.memory.allocated_bytes == 0

    def test_context_manager_destroys_plan(self, rng):
        x, y, c = make_points_2d(rng, m=100)
        with Plan(1, (8, 8), precision="double") as plan:
            assert plan is plan.__enter__()  # re-entrant handle
            plan.set_pts(x, y)
            plan.execute(c)
        assert plan._destroyed
        assert plan.device.memory.allocated_bytes == 0
        plan.destroy()  # destroying after the with-block is still fine

    def test_context_manager_destroys_on_exception(self, rng):
        x, y, c = make_points_2d(rng, m=100)
        with pytest.raises(RuntimeError, match="sentinel"):
            with Plan(1, (8, 8), precision="double") as plan:
                plan.set_pts(x, y)
                raise RuntimeError("sentinel")
        assert plan.device.memory.allocated_bytes == 0

    def test_shared_device_accumulates_allocations(self, rng):
        device = Device()
        p1 = Plan(1, (32, 32), device=device)
        p2 = Plan(2, (32, 32), device=device)
        assert device.memory.allocated_bytes > 0
        p1.destroy()
        remaining = device.memory.allocated_bytes
        assert remaining > 0
        p2.destroy()
        assert device.memory.allocated_bytes == 0


class TestSimpleAPI:
    def test_nufft2d1_and_2d2(self, rng):
        x, y, c = make_points_2d(rng, m=700)
        f = nufft2d1(x, y, c, (20, 22), eps=1e-7, precision="double")
        assert relative_l2_error(f, nudft_type1([x, y], c, (20, 22))) < 1e-5
        modes = rng.standard_normal((20, 22)) + 1j * rng.standard_normal((20, 22))
        cc = nufft2d2(x, y, modes, eps=1e-7, precision="double")
        assert relative_l2_error(cc, nudft_type2([x, y], modes)) < 1e-5

    def test_nufft3d1_and_3d2(self, rng):
        x, y, z, c = make_points_3d(rng, m=600)
        f = nufft3d1(x, y, z, c, (10, 12, 8), eps=1e-6, precision="double")
        assert relative_l2_error(f, nudft_type1([x, y, z], c, (10, 12, 8))) < 1e-4
        modes = rng.standard_normal((10, 12, 8)) + 1j * rng.standard_normal((10, 12, 8))
        cc = nufft3d2(x, y, z, modes, eps=1e-6, precision="double")
        assert relative_l2_error(cc, nudft_type2([x, y, z], modes)) < 1e-4

    def test_simple_api_validation(self, rng):
        x, y, c = make_points_2d(rng, m=50)
        with pytest.raises(ValueError):
            nufft2d1(x, y, c, (16, 16, 16))
        with pytest.raises(ValueError):
            nufft2d2(x, y, np.zeros((4, 4, 4), dtype=complex))


class TestValidationAndAtomicity:
    """Regression tests for the input-validation and set_pts-atomicity fixes:
    non-finite points, non-integral n_trans, non-finite eps, the
    all-or-nothing set_pts contract, and plan-reuse memory flatness."""

    def test_nonfinite_coordinates_rejected(self):
        # Previously NaN/inf propagated through binsort/stencil with only
        # RuntimeWarnings and produced all-NaN output.
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(ValueError, match="non-finite"):
                Plan(1, (16,)).set_pts(np.array([0.1, bad, 0.3]))
        with pytest.raises(ValueError, match="non-finite"):
            Plan(2, (16, 16)).set_pts(np.array([0.1, 0.2]),
                                      np.array([0.1, np.nan]))

    def test_nonfinite_type3_targets_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            Plan(3, 1).set_pts(np.array([0.1, 0.2]),
                               s=np.array([np.nan, 1.0]))

    def test_non_integral_n_trans_rejected(self):
        # Previously Plan(1, (16,), n_trans=2.5) silently truncated to 2.
        with pytest.raises(ValueError, match="integral"):
            Plan(1, (16,), n_trans=2.5)
        with pytest.raises(ValueError, match="integral"):
            Plan(1, (16,), n_trans=float("nan"))
        assert Plan(1, (16,), n_trans=2.0).n_trans == 2

    def test_eps_must_be_finite_positive(self):
        for bad in (0.0, -1e-6, np.nan, np.inf):
            with pytest.raises(ValueError, match="eps"):
                Plan(1, (16,), eps=bad)

    def test_failed_set_pts_preserves_old_points_type1(self, rng):
        x, y, c = make_points_2d(rng, m=200)
        plan = Plan(1, (16, 16), eps=1e-5)
        plan.set_pts(x, y)
        before = plan.execute(c.astype(np.complex64))
        with pytest.raises(ValueError):
            plan.set_pts(x, np.append(y[:-1], np.nan))
        with pytest.raises(ValueError):
            plan.set_pts(x, y[:-1])  # length mismatch
        # the failed calls left the previous point set fully usable
        assert plan.n_points == 200
        np.testing.assert_array_equal(plan.execute(c.astype(np.complex64)), before)
        plan.destroy()

    def test_failed_set_pts_preserves_old_points_type3(self, rng, monkeypatch):
        # A type-3 failure *mid-planning* (the kernel-FT positivity check)
        # used to drop the old point set; now every fallible step runs
        # before the old points are released.
        x = rng.uniform(-np.pi, np.pi, 150)
        s = rng.uniform(-20.0, 20.0, 150)
        c = (rng.standard_normal(150) + 1j * rng.standard_normal(150))
        plan = Plan(3, 1, eps=1e-6, precision="double")
        plan.set_pts(x, s=s)
        before = plan.execute(c)
        fine_before, n_targets_before = plan.fine_shape, plan.n_targets

        monkeypatch.setattr(type(plan.kernel), "fourier_transform",
                            lambda self, xi: -np.ones_like(xi))
        with pytest.raises(ValueError, match="not positive"):
            plan.set_pts(2 * x, s=0.5 * s)
        monkeypatch.undo()
        assert plan.fine_shape == fine_before
        assert plan.n_targets == n_targets_before
        np.testing.assert_array_equal(plan.execute(c), before)
        plan.destroy()

    def test_plan_reuse_ram_stays_flat(self, rng):
        # Plan reuse across set_pts calls must not leak simulated device
        # memory (the serving layer repoints pooled plans indefinitely).
        x, y, _ = make_points_2d(rng, m=500)
        with Plan(1, (24, 24), eps=1e-6) as plan:
            plan.set_pts(x, y)
            baseline = plan.gpu_ram_mb()
            for shift in (0.1, 0.2, 0.3, 0.4, 0.5):
                plan.set_pts(np.mod(x + shift + np.pi, 2 * np.pi) - np.pi, y)
                assert plan.gpu_ram_mb() == pytest.approx(baseline)

    def test_type3_plan_reuse_ram_stays_flat(self, rng):
        x = rng.uniform(-np.pi, np.pi, 300)
        s = rng.uniform(-15.0, 15.0, 300)
        with Plan(3, 1, eps=1e-6, precision="double") as plan:
            plan.set_pts(x, s=s)
            baseline = plan.gpu_ram_mb()
            for _ in range(4):
                plan.set_pts(x, s=s)
                assert plan.gpu_ram_mb() == pytest.approx(baseline)
