"""Property-based distributed-equivalence suite for the multi-node NUFFT.

The headline contract of :class:`repro.cluster.distributed.DistributedPlan`:
for every seeded configuration -- dimension x transform type x precision x
rank count x point distribution -- the domain-decomposed execution matches a
single-node :class:`~repro.core.plan.Plan` within ``10 * eps``, the halo
traffic the SimComm counters measured equals the analytic halo-volume
formula *exactly* (byte-for-byte, not approximately), and re-running the
same seed is bit-identical.

The parametrized sweep below is the ">= 200 seeded cases" acceptance gate:
3 dims x 2 types x 2 precisions x 4 rank counts x 5 distributions = 240
cases, each on its own seed.  The rank-8 paper-scale sweeps are marked
``slow`` (opt-in via ``--runslow``); the default matrix already covers rank
8 at small sizes.
"""

import numpy as np
import pytest

from repro.cluster import DistributedPlan
from repro.core.gridsize import fine_grid_shape
from repro.core.plan import Plan
from repro.core.slab import (
    analytic_halo_bytes,
    halo_pads,
    halo_row_map,
    padded_slab_shape,
    partition_points_by_slab,
    slab_owner,
    slab_partition,
)
from repro.kernels import ESKernel

TWO_PI = 2.0 * np.pi

#: Per-precision tolerances paired per-case below; single precision cannot
#: resolve below its roundoff floor, so its eps choices sit well above it.
_EPS_CHOICES = {"single": (1e-3, 1e-4), "double": (1e-6, 1e-9)}

_DISTRIBUTIONS = ("uniform", "uniform-b", "uniform-c", "clustered", "boundary")


def _case_matrix():
    """240 seeded cases: dims x types x precisions x ranks x distributions."""
    cases = []
    cid = 0
    for ndim in (1, 2, 3):
        for nufft_type in (1, 2):
            for precision in ("single", "double"):
                for n_ranks in (1, 2, 4, 8):
                    for dist in _DISTRIBUTIONS:
                        cases.append((cid, ndim, nufft_type, precision,
                                      n_ranks, dist))
                        cid += 1
    return cases


CASES = _case_matrix()


def _case_id(case):
    cid, ndim, nufft_type, precision, n_ranks, dist = case
    return f"c{cid:03d}-{ndim}d-t{nufft_type}-{precision}-p{n_ranks}-{dist}"


def _coords_for(rng, ndim, m, dist, n_modes, eps, n_ranks):
    """Seeded nonuniform points exercising one ownership distribution.

    ``clustered`` piles every point into a single randomly chosen slab
    (maximally imbalanced ownership); ``boundary`` places the axis-0
    coordinate exactly on slab-boundary grid rows, pinning the deterministic
    floor-based ownership rule.  Axes 1.. stay uniform throughout.
    """
    coords = [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]
    if dist.startswith("uniform"):
        return coords
    kernel = ESKernel.from_tolerance(eps)
    nf0 = fine_grid_shape(n_modes, kernel.width)[0]
    slabs = slab_partition(nf0, n_ranks)
    if dist == "clustered":
        nonempty = [s for s in slabs if s[0] < s[1]]
        start, stop = nonempty[int(rng.integers(len(nonempty)))]
        rows = rng.uniform(start, stop, m)
    else:  # boundary: exact slab-boundary grid rows
        starts = np.array(sorted({s for s, e in slabs if s < e}),
                          dtype=np.float64)
        rows = starts[rng.integers(starts.size, size=m)]
    coords[0] = rows * (TWO_PI / nf0)  # grid rows -> periodic coords [0, 2pi)
    return coords


def _build_case(case):
    """Seeded problem instance (modes, eps, coords, data) for one case."""
    cid, ndim, nufft_type, precision, n_ranks, dist = case
    rng = np.random.default_rng(90_000 + cid)
    if ndim == 1:
        n_modes = (int(rng.integers(24, 40)),)
        m = 300
    elif ndim == 2:
        n_modes = tuple(int(n) for n in rng.integers(10, 16, size=2))
        m = 400
    else:
        n_modes = tuple(int(n) for n in rng.integers(6, 10, size=3))
        m = 500
    eps = _EPS_CHOICES[precision][cid % 2]
    coords = _coords_for(rng, ndim, m, dist, n_modes, eps, n_ranks)
    shape = (m,) if nufft_type == 1 else n_modes
    data = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return n_modes, eps, coords, data


def _run_distributed(case, check_halo=True):
    """One distributed execution; returns (output, breakdown)."""
    cid, ndim, nufft_type, precision, n_ranks, dist = case
    n_modes, eps, coords, data = _build_case(case)
    with DistributedPlan(nufft_type, n_modes, n_ranks=n_ranks, eps=eps,
                         precision=precision) as dplan:
        dplan.set_pts(*coords)
        out = dplan.execute(data)
        if check_halo:
            expected = analytic_halo_bytes(
                dplan.fine_shape, n_ranks, dplan.kernel.width,
                dplan.precision.complex_itemsize,
            )
            assert dplan.halo_bytes == expected, (
                f"measured halo bytes {dplan.halo_bytes} != analytic "
                f"{expected} for {_case_id(case)}"
            )
        return out, dplan.last_breakdown


def _run_reference(case):
    cid, ndim, nufft_type, precision, n_ranks, dist = case
    n_modes, eps, coords, data = _build_case(case)
    plan = Plan(nufft_type, n_modes, eps=eps, precision=precision)
    try:
        plan.set_pts(*coords)
        return plan.execute(data)
    finally:
        plan.destroy()


# --------------------------------------------------------------------- #
# the headline property sweep (240 seeded cases)
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("case", CASES, ids=_case_id)
def test_distributed_equivalence(case):
    """Distributed == single plan within 10*eps; halo bytes exact."""
    _cid, _ndim, _t, _precision, _n_ranks, _dist = case
    _n_modes, eps, _coords, _data = _build_case(case)
    out, breakdown = _run_distributed(case)
    ref = _run_reference(case)
    assert out.shape == ref.shape
    assert out.dtype == ref.dtype
    err = np.linalg.norm(out - ref) / np.linalg.norm(ref)
    assert err <= 10.0 * eps, (
        f"{_case_id(case)}: distributed deviates from the single plan by "
        f"{err:.3e} > 10*eps = {10 * eps:.1e}"
    )
    assert breakdown.makespan_s > 0.0
    assert breakdown.comm_s >= 0.0
    assert breakdown.overlap_s <= min(breakdown.halo_s, breakdown.local_fft_s) + 1e-18


# --------------------------------------------------------------------- #
# determinism: same seed -> bit-identical outputs and accounting
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("case", [CASES[i] for i in (3, 37, 101, 158, 214, 239)],
                         ids=_case_id)
def test_distributed_bit_identical_across_runs(case):
    """Two fresh plans on the same seeded problem agree bit-for-bit."""
    out1, b1 = _run_distributed(case, check_halo=False)
    out2, b2 = _run_distributed(case, check_halo=False)
    assert np.array_equal(out1, out2), "same-seed reruns diverged bitwise"
    assert b1 == b2, "same-seed reruns produced different modelled breakdowns"


# --------------------------------------------------------------------- #
# halo accounting against a hand-computed volume
# --------------------------------------------------------------------- #
def test_analytic_halo_bytes_hand_computed():
    """Pin the formula to a case small enough to count rows by hand.

    ``n0=16`` over 4 ranks gives slabs of height 4; a width-5 kernel pads
    ``(2, 3)`` rows, and with height-4 neighbours every one of the 5 pad
    rows of each rank lands on a *different* rank: 4 ranks x 5 rows, each
    row ``12 * itemsize`` bytes.
    """
    itemsize = 8  # complex64
    assert halo_pads(5) == (2, 3)
    expected = 4 * 5 * 12 * itemsize
    assert analytic_halo_bytes((16, 12), 4, 5, itemsize) == expected
    # n_trans scales rows linearly; a single rank wraps everything onto
    # itself and ships nothing.
    assert analytic_halo_bytes((16, 12), 4, 5, itemsize, n_trans=3) == 3 * expected
    assert analytic_halo_bytes((16, 12), 1, 5, itemsize) == 0


def test_measured_halo_bytes_match_hand_computed_case():
    """End to end: the SimComm counter lands on the hand-computed volume."""
    rng = np.random.default_rng(7)
    m = 200
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    with DistributedPlan(1, (8, 6), n_ranks=4, eps=1e-4,
                         precision="single") as dplan:
        assert dplan.fine_shape == (16, 12)
        assert dplan.kernel.width == 5
        dplan.set_pts(x, y)
        dplan.execute(c)
        assert dplan.halo_bytes == 4 * 5 * 12 * 8


# --------------------------------------------------------------------- #
# degenerate partitions and batched execution
# --------------------------------------------------------------------- #
def test_more_ranks_than_rows_leaves_empty_slabs_working():
    """n_ranks > nf0: empty slabs own nothing and ship nothing, yet the
    transform still matches the single plan."""
    rng = np.random.default_rng(11)
    m = 150
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    n_ranks = 24
    with DistributedPlan(1, (2, 3), n_ranks=n_ranks, eps=1e-6,
                         precision="double") as dplan:
        assert dplan.fine_shape[0] < n_ranks  # genuinely more ranks than rows
        assert any(start == stop for start, stop in dplan.slabs)
        dplan.set_pts(x, y)
        out = dplan.execute(c)
        assert dplan.halo_bytes == analytic_halo_bytes(
            dplan.fine_shape, n_ranks, dplan.kernel.width,
            dplan.precision.complex_itemsize,
        )
    plan = Plan(1, (2, 3), eps=1e-6, precision="double")
    plan.set_pts(x, y)
    ref = plan.execute(c)
    plan.destroy()
    assert np.linalg.norm(out - ref) / np.linalg.norm(ref) <= 1e-5


def test_distributed_batched_n_trans():
    """Batched (n_trans > 1) distributed execution matches the batched plan
    and scales the halo volume by n_trans."""
    rng = np.random.default_rng(23)
    m, n_trans, modes = 500, 3, (12, 14)
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    c = rng.standard_normal((n_trans, m)) + 1j * rng.standard_normal((n_trans, m))
    with DistributedPlan(1, modes, n_ranks=4, n_trans=n_trans, eps=1e-9,
                         precision="double") as dplan:
        dplan.set_pts(x, y)
        out = dplan.execute(c)
        assert dplan.halo_bytes == analytic_halo_bytes(
            dplan.fine_shape, 4, dplan.kernel.width,
            dplan.precision.complex_itemsize, n_trans=n_trans,
        )
    plan = Plan(1, modes, n_trans=n_trans, eps=1e-9, precision="double")
    plan.set_pts(x, y)
    ref = plan.execute(c)
    plan.destroy()
    assert out.shape == ref.shape == (n_trans,) + modes
    assert np.linalg.norm(out - ref) / np.linalg.norm(ref) <= 1e-8


def test_type3_rejected():
    with pytest.raises(ValueError, match="type"):
        DistributedPlan(3, (16,), n_ranks=2)


# --------------------------------------------------------------------- #
# slab geometry unit properties
# --------------------------------------------------------------------- #
def test_slab_partition_properties():
    rng = np.random.default_rng(3)
    for _ in range(50):
        n = int(rng.integers(1, 100))
        p = int(rng.integers(1, 17))
        slabs = slab_partition(n, p)
        assert len(slabs) == p
        assert slabs[0][0] == 0 and slabs[-1][1] == n
        heights = [stop - start for start, stop in slabs]
        assert all(h >= 0 for h in heights)
        assert sum(heights) == n
        assert max(heights) - min(heights) <= 1  # balanced
        for (a0, a1), (b0, b1) in zip(slabs, slabs[1:]):
            assert a1 == b0  # contiguous
        for row in range(n):
            start, stop = slabs[slab_owner(row, slabs)]
            assert start <= row < stop


def test_halo_pads_cover_kernel_reach_exactly():
    """The pads are the kernel's exact reach.

    The spreader's stencil starts at ``i0 = ceil(g - w/2)`` (see
    :func:`repro.core.spread.compute_kernel_stencil`); over all fractional
    offsets of ``g`` within its cell, the rows touched relative to the cell
    span exactly ``[-pad_lo, pad_hi]`` -- both extremes attained, so the
    pads are tight: one row less would truncate a stencil, one more would
    never be written.
    """
    for width in range(1, 17):
        pad_lo, pad_hi = halo_pads(width)
        assert pad_lo + pad_hi == width
        reach_lo, reach_hi = 0, 0
        for frac in np.linspace(0.0, 1.0, 257, endpoint=False):
            i0 = int(np.ceil(frac - width / 2.0))  # first stencil row offset
            reach_lo = min(reach_lo, i0)
            reach_hi = max(reach_hi, i0 + width - 1)
        assert reach_lo == -pad_lo
        assert reach_hi == pad_hi


def test_partition_points_is_a_permutation():
    rng = np.random.default_rng(5)
    m, nf0 = 1000, 24
    g0 = rng.uniform(0.0, nf0, m)
    slabs = slab_partition(nf0, 5)
    parts = partition_points_by_slab([g0], (nf0, 8), slabs)
    joined = np.concatenate(parts)
    assert np.array_equal(np.sort(joined), np.arange(m))
    for r, idx in enumerate(parts):
        start, stop = slabs[r]
        cells = np.floor(g0[idx]).astype(np.int64)
        assert np.all((cells >= start) & (cells < stop))


def test_boundary_points_owned_by_starting_slab():
    """A point exactly on a slab boundary belongs to the slab starting there."""
    slabs = slab_partition(16, 4)  # boundaries at 0, 4, 8, 12
    g0 = np.array([0.0, 4.0, 8.0, 12.0])
    parts = partition_points_by_slab([g0], (16,), slabs)
    for r in range(4):
        assert np.array_equal(parts[r], [r])


def test_halo_row_map_consistency():
    fine_shape = (20, 6)
    width = 7
    slabs = slab_partition(fine_shape[0], 4)
    pad_lo, pad_hi = halo_pads(width)
    for rank in range(4):
        start, stop = slabs[rank]
        rows, owners = halo_row_map(fine_shape, slabs, rank, width)
        assert rows.shape == owners.shape == (pad_lo + (stop - start) + pad_hi,)
        # interior rows map to themselves and are owned by this rank
        interior = rows[pad_lo:pad_lo + (stop - start)]
        assert np.array_equal(interior, np.arange(start, stop))
        assert np.all(owners[pad_lo:pad_lo + (stop - start)] == rank)
        for g, o in zip(rows, owners):
            s, e = slabs[o]
            assert s <= g < e


def test_padded_slab_shape():
    assert padded_slab_shape((16, 12), (4, 8), 5) == (1, 2 + 4 + 3, 12)
    assert padded_slab_shape((16, 12, 10), (0, 4), 8, n_trans=2) == (2, 4 + 4 + 4, 12, 10)


# --------------------------------------------------------------------- #
# serving-layer integration: oversized requests route across ranks
# --------------------------------------------------------------------- #
class TestServiceRouting:
    def _problem(self, m=2500, modes=(14, 12)):
        rng = np.random.default_rng(31)
        x = rng.uniform(-np.pi, np.pi, m)
        y = rng.uniform(-np.pi, np.pi, m)
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        return x, y, c, modes

    def test_flush_routes_oversized_requests(self):
        from repro.service import TransformService
        from repro.service.request import TransformRequest

        x, y, c, modes = self._problem()
        svc = TransformService(n_devices=2, distributed_threshold_points=1000)
        svc.submit(TransformRequest(1, modes, c[:200], x[:200], y[:200],
                                    eps=1e-9, precision="double", tag="small"))
        svc.submit(TransformRequest(1, modes, c, x, y,
                                    eps=1e-9, precision="double", tag="big"))
        small, big = svc.flush()
        assert small.tag == "small" and small.device_id >= 0
        assert big.tag == "big" and big.device_id == -1
        assert big.error is None
        assert svc.stats.distributed_requests == 1
        assert {"makespan", "comm", "halo_bytes"} <= set(big.modelled_seconds)

        plan = Plan(1, modes, eps=1e-9, precision="double")
        plan.set_pts(x, y)
        ref = plan.execute(c)
        plan.destroy()
        assert np.linalg.norm(big.output - ref) / np.linalg.norm(ref) <= 1e-8

    def test_execute_distributed_direct_and_type3_rejected(self):
        from repro.service import TransformService

        x, y, c, modes = self._problem(m=800)
        svc = TransformService(n_devices=1)
        res = svc.execute_distributed(nufft_type=1, n_modes=modes, data=c,
                                      x=x, y=y, eps=1e-9, precision="double",
                                      n_ranks=3)
        assert res.error is None and res.device_id == -1
        assert res.modelled_seconds["n_ranks"] == 3.0
        with pytest.raises(ValueError, match="type"):
            svc.execute_distributed(
                nufft_type=3, n_modes=(16,), data=c, x=x,
                s=np.linspace(-3, 3, 20), eps=1e-6, precision="double",
            )

    def test_threshold_disabled_keeps_fleet_path(self):
        from repro.service import TransformService
        from repro.service.request import TransformRequest

        x, y, c, modes = self._problem()
        svc = TransformService(n_devices=1)  # no threshold configured
        [res] = svc.run([TransformRequest(1, modes, c, x, y, eps=1e-9,
                                          precision="double")])
        assert res.device_id >= 0
        assert svc.stats.distributed_requests == 0


# --------------------------------------------------------------------- #
# opt-in rank-8 paper-scale sweeps
# --------------------------------------------------------------------- #
@pytest.mark.slow
@pytest.mark.parametrize("nufft_type", [1, 2])
def test_rank8_large_sweep(nufft_type):
    """Rank-8 sweep at a paper-like 3D size (opt-in: --runslow)."""
    rng = np.random.default_rng(600 + nufft_type)
    m, modes, eps = 50_000, (32, 32, 32), 1e-9
    x, y, z = (rng.uniform(-np.pi, np.pi, m) for _ in range(3))
    shape = (m,) if nufft_type == 1 else modes
    data = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    with DistributedPlan(nufft_type, modes, n_ranks=8, eps=eps,
                         precision="double") as dplan:
        dplan.set_pts(x, y, z)
        out = dplan.execute(data)
        assert dplan.halo_bytes == analytic_halo_bytes(
            dplan.fine_shape, 8, dplan.kernel.width,
            dplan.precision.complex_itemsize,
        )
    plan = Plan(nufft_type, modes, eps=eps, precision="double")
    plan.set_pts(x, y, z)
    ref = plan.execute(data)
    plan.destroy()
    assert np.linalg.norm(out - ref) / np.linalg.norm(ref) <= 10 * eps
