"""Tests for fine-grid sizing and bin-sorting / subproblem construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.binsort import (
    SpreadStats,
    bin_sort,
    binsort_kernel_profiles,
    compute_bin_index,
    estimate_subproblem_count,
    fold_coordinates,
    make_subproblems,
    to_grid_coordinates,
)
from repro.core.gridsize import fine_grid_shape, fine_grid_size, is_smooth_235, next_smooth_235


# --------------------------------------------------------------------------- #
# 2^q 3^p 5^r fine grid sizes
# --------------------------------------------------------------------------- #
class TestGridSize:
    @pytest.mark.parametrize("n,expected", [(1, 1), (7, 8), (11, 12), (13, 15),
                                            (17, 18), (97, 100), (2049, 2160)])
    def test_next_smooth_examples(self, n, expected):
        assert next_smooth_235(n) == expected

    def test_is_smooth(self):
        assert is_smooth_235(2 ** 5 * 3 ** 2 * 5)
        assert not is_smooth_235(7)
        assert not is_smooth_235(0)

    @given(st.integers(min_value=1, max_value=200_000))
    @settings(max_examples=200, deadline=None)
    def test_next_smooth_properties(self, n):
        s = next_smooth_235(n)
        assert s >= n
        assert is_smooth_235(s)
        # minimality: nothing smooth in [n, s)
        if s - n < 64:  # keep the brute-force check cheap
            assert not any(is_smooth_235(m) for m in range(n, s))

    def test_fine_grid_size_respects_sigma_and_width(self):
        # smallest smooth >= max(2N, 2w)
        assert fine_grid_size(100, 6) == 200
        assert fine_grid_size(3, 8) == 16  # 2w = 16 dominates
        assert fine_grid_size(1000, 6) == 2000

    def test_fine_grid_shape(self):
        assert fine_grid_shape((100, 50), 6) == (200, 100)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fine_grid_size(0, 6)
        with pytest.raises(ValueError):
            fine_grid_size(10, 0)


# --------------------------------------------------------------------------- #
# coordinate folding and bin indices
# --------------------------------------------------------------------------- #
class TestCoordinates:
    @given(st.floats(min_value=-50.0, max_value=50.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_fold_into_period(self, x):
        folded = fold_coordinates(np.array([x]))[0]
        assert 0.0 <= folded < 2 * np.pi
        # folding preserves the angle modulo 2*pi
        assert np.isclose(np.exp(1j * folded), np.exp(1j * x), atol=1e-9)

    def test_to_grid_coordinates_range(self):
        x = np.array([-np.pi, 0.0, np.pi - 1e-9, np.pi])  # pi wraps to 0-like
        g = to_grid_coordinates(x, 64)
        assert np.all((0 <= g) & (g < 64))
        assert g[0] == pytest.approx(32.0)  # x=-pi folds to pi, the grid middle
        assert g[1] == pytest.approx(0.0)   # x=0 is the grid origin

    def test_bin_index_x_fastest(self):
        # two points in adjacent x-bins share the same y-bin: indices differ by 1
        gx = np.array([1.0, 40.0])
        gy = np.array([5.0, 5.0])
        idx, bins_per_dim = compute_bin_index([gx, gy], (128, 128), (32, 32))
        assert bins_per_dim == (4, 4)
        assert idx[1] - idx[0] == 1

    def test_bin_index_handles_partial_bins(self):
        idx, bins_per_dim = compute_bin_index(
            [np.array([99.0]), np.array([99.0])], (100, 100), (32, 32)
        )
        assert bins_per_dim == (4, 4)
        assert idx[0] == 15


# --------------------------------------------------------------------------- #
# bin sort
# --------------------------------------------------------------------------- #
def _random_sort(rng, m=4000, fine=(128, 96), bins=(32, 32)):
    coords = [rng.uniform(-np.pi, np.pi, m) for _ in fine]
    grid_coords = [to_grid_coordinates(c, n) for c, n in zip(coords, fine)]
    return bin_sort(grid_coords, fine, bins), grid_coords


class TestBinSort:
    def test_permutation_is_bijection(self, rng):
        sort, _ = _random_sort(rng)
        perm = np.sort(sort.permutation)
        np.testing.assert_array_equal(perm, np.arange(sort.n_points))

    def test_counts_sum_to_m(self, rng):
        sort, _ = _random_sort(rng)
        assert sort.bin_counts.sum() == sort.n_points
        np.testing.assert_array_equal(
            np.cumsum(np.concatenate([[0], sort.bin_counts[:-1]])), sort.bin_starts
        )

    def test_sorted_order_has_nondecreasing_bin_index(self, rng):
        sort, _ = _random_sort(rng)
        sorted_bins = sort.bin_index[sort.permutation]
        assert np.all(np.diff(sorted_bins) >= 0)

    def test_bin_slice_points_live_in_their_bin(self, rng):
        sort, grid_coords = _random_sort(rng)
        for b in range(sort.n_bins):
            sel = sort.permutation[sort.bin_slice(b)]
            if sel.size == 0:
                continue
            assert np.all(sort.bin_index[sel] == b)

    def test_stable_within_bins(self, rng):
        sort, _ = _random_sort(rng)
        for b in range(sort.n_bins):
            sel = sort.permutation[sort.bin_slice(b)]
            assert np.all(np.diff(sel) > 0)  # original order preserved

    def test_occupied_cells_counted(self, rng):
        sort, _ = _random_sort(rng, m=500)
        assert 1 <= sort.n_occupied_cells <= 500

    def test_cluster_occupies_few_cells(self, rng):
        fine = (256, 256)
        h = 2 * np.pi / 256
        coords = [rng.uniform(0, 8 * h, 5000), rng.uniform(0, 8 * h, 5000)]
        grid_coords = [to_grid_coordinates(c, 256) for c in coords]
        sort = bin_sort(grid_coords, fine, (32, 32))
        assert sort.n_occupied_cells <= 64
        assert sort.n_nonempty_bins == 1

    def test_3d_bin_sort(self, rng):
        fine = (32, 32, 16)
        coords = [rng.uniform(-np.pi, np.pi, 2000) for _ in range(3)]
        grid_coords = [to_grid_coordinates(c, n) for c, n in zip(coords, fine)]
        sort = bin_sort(grid_coords, fine, (16, 16, 2))
        assert sort.bins_per_dim == (2, 2, 8)
        assert sort.bin_counts.sum() == 2000


# --------------------------------------------------------------------------- #
# subproblems (SM step 1)
# --------------------------------------------------------------------------- #
class TestSubproblems:
    def test_partition_covers_all_points_once(self, rng):
        sort, _ = _random_sort(rng, m=5000)
        subs = make_subproblems(sort, max_subproblem_size=64)
        covered = np.zeros(sort.n_points, dtype=int)
        for k in range(subs.n_subproblems):
            sel = sort.permutation[subs.offsets[k]:subs.offsets[k] + subs.counts[k]]
            covered[sel] += 1
        np.testing.assert_array_equal(covered, np.ones(sort.n_points, dtype=int))

    def test_subproblem_size_cap_and_bin_consistency(self, rng):
        sort, _ = _random_sort(rng, m=5000)
        msub = 64
        subs = make_subproblems(sort, msub)
        assert np.all(subs.counts <= msub)
        assert np.all(subs.counts > 0)
        for k in range(subs.n_subproblems):
            sel = sort.permutation[subs.offsets[k]:subs.offsets[k] + subs.counts[k]]
            assert np.all(sort.bin_index[sel] == subs.bin_ids[k])

    def test_subproblem_count_matches_estimate(self, rng):
        sort, _ = _random_sort(rng, m=5000)
        for msub in (16, 100, 1024):
            subs = make_subproblems(sort, msub)
            assert subs.n_subproblems == estimate_subproblem_count(sort.bin_counts, msub)

    def test_invalid_msub(self, rng):
        sort, _ = _random_sort(rng, m=100)
        with pytest.raises(ValueError):
            make_subproblems(sort, 0)

    @given(st.integers(min_value=1, max_value=2000), st.integers(min_value=1, max_value=512))
    @settings(max_examples=40, deadline=None)
    def test_estimate_subproblem_count_bounds(self, m, msub):
        counts = np.array([m])
        n = estimate_subproblem_count(counts, msub)
        assert n == int(np.ceil(m / msub))


# --------------------------------------------------------------------------- #
# SpreadStats scaling
# --------------------------------------------------------------------------- #
class TestSpreadStats:
    def test_from_binsort_roundtrip(self, rng):
        sort, _ = _random_sort(rng)
        stats = SpreadStats.from_binsort(sort)
        assert stats.n_points == sort.n_points
        assert stats.n_bins == sort.n_bins
        assert stats.n_nonempty_bins == sort.n_nonempty_bins
        assert stats.n_occupied_cells == sort.n_occupied_cells

    def test_scaling_preserves_pattern(self, rng):
        sort, _ = _random_sort(rng)
        stats = SpreadStats.from_binsort(sort).scaled(10 * sort.n_points)
        assert stats.n_points == 10 * sort.n_points
        assert stats.bin_counts.sum() == pytest.approx(10 * sort.n_points)
        assert stats.n_nonempty_bins == sort.n_nonempty_bins

    def test_scaling_rejects_bad_targets(self, rng):
        sort, _ = _random_sort(rng, m=100)
        with pytest.raises(ValueError):
            SpreadStats.from_binsort(sort).scaled(0)


class TestBinsortProfiles:
    def test_profiles_validate_and_scale_with_m(self):
        small = binsort_kernel_profiles(1_000, 64, 2, 4)
        large = binsort_kernel_profiles(1_000_000, 64, 2, 4)
        assert len(small) == len(large) == 4
        for s, l in zip(small, large):
            s.validate()
            l.validate()
            assert l.stream_bytes >= s.stream_bytes
