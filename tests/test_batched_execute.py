"""Tests of the batched execution engine: plan-level stencil cache, fused
``n_trans`` vectorization, and Horner kernel evaluation."""

import numpy as np
import pytest

from repro import Plan, nudft_type1, nufft2d1, nufft2d2, relative_l2_error
from repro.core.binsort import bin_sort, make_subproblems, to_grid_coordinates
from repro.core.interp import interp_cached, interp_gm, interp_gm_sort
from repro.core.spread import spread_cached, spread_gm, spread_gm_sort, spread_sm
from repro.core.stencil import build_stencil_cache
from repro.kernels import ESKernel
from repro.kernels.es_kernel import (
    MAX_KERNEL_WIDTH,
    MIN_KERNEL_WIDTH,
    horner_coefficients,
)
from tests.conftest import make_points_2d, make_points_3d

#: Seed-equivalent options: per-transform loop, no cache, exact kernel.
LEGACY = dict(cache_stencils=False, kernel_eval="exact")


def _grid_setup(rng, fine_shape, m, eps=1e-6):
    kernel = ESKernel.from_tolerance(eps)
    coords = [rng.uniform(-np.pi, np.pi, m) for _ in fine_shape]
    grid_coords = [to_grid_coordinates(c, n) for c, n in zip(coords, fine_shape)]
    bins = (32, 32) if len(fine_shape) == 2 else (16, 16, 2)
    sort = bin_sort(grid_coords, fine_shape, bins)
    return kernel, grid_coords, sort


# --------------------------------------------------------------------------- #
# Horner kernel evaluation
# --------------------------------------------------------------------------- #
class TestHornerKernel:
    @pytest.mark.parametrize("width", range(MIN_KERNEL_WIDTH, MAX_KERNEL_WIDTH + 1))
    def test_matches_exact_below_tenth_of_eps(self, width):
        # < 0.1 * eps(w) absolute error for every supported width, where
        # eps(w) = 10**(1-w) is the kernel's own delivered accuracy (Eq. 6).
        # The widest kernels bottom out at the float64 representation floor
        # (a few ulps of the unit kernel peak), which is below 0.1*eps for
        # every width whose eps is representable headroom away from 1 ulp.
        kernel = ESKernel(width=width, beta=2.3 * width)
        frac = np.linspace(width / 2.0 - 1.0, width / 2.0, 4001)
        exact = kernel.evaluate_offsets(frac)
        horner = kernel.evaluate_offsets_horner(frac)
        tol = max(0.1 * 10.0 ** (1 - width), 6e-15)
        assert np.abs(horner - exact).max() < tol

    def test_coefficients_cached_and_readonly(self):
        a = horner_coefficients(6, 2.3 * 6)
        b = horner_coefficients(6, 2.3 * 6)
        assert a is b
        with pytest.raises(ValueError):
            a[0, 0] = 1.0

    def test_full_transform_accuracy_with_horner(self, rng):
        # End-to-end: the default (Horner) plan still meets the tolerance.
        x, y, c = make_points_2d(rng, m=900)
        n_modes = (30, 30)
        exact = nudft_type1([x, y], c, n_modes)
        for eps in (1e-4, 1e-8):
            with Plan(1, n_modes, eps=eps, precision="double") as plan:
                plan.set_pts(x, y)
                approx = plan.execute(c)
            assert relative_l2_error(approx, exact) < 12 * eps


# --------------------------------------------------------------------------- #
# stencil cache (function level)
# --------------------------------------------------------------------------- #
class TestStencilCache:
    def test_cached_spread_matches_uncached(self, rng):
        fine_shape = (48, 40)
        kernel, grid_coords, sort = _grid_setup(rng, fine_shape, 1200)
        c = rng.standard_normal(1200) + 1j * rng.standard_normal(1200)
        cache = build_stencil_cache(grid_coords, fine_shape, kernel,
                                    kernel_eval="exact")
        base = spread_gm(fine_shape, grid_coords, c, kernel, np.complex128)
        cached = spread_gm(fine_shape, grid_coords, c, kernel, np.complex128,
                           cache=cache)
        np.testing.assert_allclose(cached, base, rtol=1e-12, atol=1e-12)
        sparse = spread_cached(fine_shape, c, cache, np.complex128)
        np.testing.assert_allclose(sparse, base, rtol=1e-10, atol=1e-10)

    def test_cached_interp_matches_uncached(self, rng):
        fine_shape = (40, 40)
        kernel, grid_coords, sort = _grid_setup(rng, fine_shape, 1000)
        grid = rng.standard_normal(fine_shape) + 1j * rng.standard_normal(fine_shape)
        cache = build_stencil_cache(grid_coords, fine_shape, kernel,
                                    kernel_eval="exact")
        base = interp_gm(grid, grid_coords, kernel, np.complex128)
        cached = interp_gm(grid, grid_coords, kernel, np.complex128, cache=cache)
        np.testing.assert_allclose(cached, base, rtol=1e-12, atol=1e-12)
        sparse = interp_cached(grid, grid_coords, cache, np.complex128)
        np.testing.assert_allclose(sparse, base, rtol=1e-10, atol=1e-10)

    def test_budget_disables_fused_form(self, rng):
        fine_shape = (32, 32)
        kernel, grid_coords, _ = _grid_setup(rng, fine_shape, 500)
        fused = build_stencil_cache(grid_coords, fine_shape, kernel)
        lean = build_stencil_cache(grid_coords, fine_shape, kernel, fuse_budget=0)
        assert fused.is_fused and fused.interp_matrix is not None
        assert not lean.is_fused and lean.interp_matrix is None
        # The per-dimension arrays are still there for the spreaders.
        c = rng.standard_normal(500) + 1j * rng.standard_normal(500)
        a = spread_gm(fine_shape, grid_coords, c, kernel, np.complex128, cache=fused)
        b = spread_gm(fine_shape, grid_coords, c, kernel, np.complex128, cache=lean)
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)

    def test_sm_spread_with_cache(self, rng):
        fine_shape = (64, 48)
        kernel, grid_coords, sort = _grid_setup(rng, fine_shape, 2000)
        subs = make_subproblems(sort, 256)
        c = rng.standard_normal(2000) + 1j * rng.standard_normal(2000)
        cache = build_stencil_cache(grid_coords, fine_shape, kernel,
                                    kernel_eval="exact")
        base = spread_sm(fine_shape, grid_coords, c, kernel, sort, subs, np.complex128)
        cached = spread_sm(fine_shape, grid_coords, c, kernel, sort, subs,
                           np.complex128, cache=cache)
        np.testing.assert_allclose(cached, base, rtol=1e-12, atol=1e-12)


# --------------------------------------------------------------------------- #
# batched spreading / interpolation (function level)
# --------------------------------------------------------------------------- #
class TestBatchedFunctions:
    @pytest.mark.parametrize("fine_shape", [(40, 36), (24, 20, 16)])
    def test_batched_spread_equals_loop(self, rng, fine_shape):
        kernel, grid_coords, sort = _grid_setup(rng, fine_shape, 1500)
        block = rng.standard_normal((4, 1500)) + 1j * rng.standard_normal((4, 1500))
        batched = spread_gm_sort(fine_shape, grid_coords, block, kernel, sort,
                                 np.complex128)
        assert batched.shape == (4,) + fine_shape
        for t in range(4):
            single = spread_gm_sort(fine_shape, grid_coords, block[t], kernel, sort,
                                    np.complex128)
            np.testing.assert_allclose(batched[t], single, rtol=1e-11, atol=1e-11)

    def test_batched_sm_spread_equals_loop(self, rng):
        fine_shape = (48, 48)
        kernel, grid_coords, sort = _grid_setup(rng, fine_shape, 1200)
        subs = make_subproblems(sort, 200)
        block = rng.standard_normal((3, 1200)) + 1j * rng.standard_normal((3, 1200))
        batched = spread_sm(fine_shape, grid_coords, block, kernel, sort, subs,
                            np.complex128)
        for t in range(3):
            single = spread_sm(fine_shape, grid_coords, block[t], kernel, sort, subs,
                               np.complex128)
            np.testing.assert_allclose(batched[t], single, rtol=1e-11, atol=1e-11)

    @pytest.mark.parametrize("fine_shape", [(40, 36), (20, 18, 16)])
    def test_batched_interp_equals_loop(self, rng, fine_shape):
        kernel, grid_coords, sort = _grid_setup(rng, fine_shape, 1100)
        grids = (rng.standard_normal((3,) + fine_shape)
                 + 1j * rng.standard_normal((3,) + fine_shape))
        batched = interp_gm_sort(grids, grid_coords, kernel, sort, np.complex128)
        assert batched.shape == (3, 1100)
        for t in range(3):
            single = interp_gm_sort(grids[t], grid_coords, kernel, sort, np.complex128)
            np.testing.assert_allclose(batched[t], single, rtol=1e-12, atol=1e-12)


# --------------------------------------------------------------------------- #
# plan-level batched execution
# --------------------------------------------------------------------------- #
class TestPlanBatchedEngine:
    @pytest.mark.parametrize("method", ["GM", "GM-sort", "SM"])
    def test_type1_matches_legacy_loop(self, rng, method):
        x, y, _ = make_points_2d(rng, m=800)
        block = rng.standard_normal((5, 800)) + 1j * rng.standard_normal((5, 800))
        n_modes = (22, 26)
        with Plan(1, n_modes, n_trans=5, eps=1e-7, method=method,
                  precision="double") as plan:
            plan.set_pts(x, y)
            fast = plan.execute(block)
        with Plan(1, n_modes, n_trans=5, eps=1e-7, method=method,
                  precision="double", **LEGACY) as plan:
            plan.set_pts(x, y)
            slow = plan.execute(block)
        assert relative_l2_error(fast, slow) < 1e-8

    def test_type2_matches_legacy_loop(self, rng):
        x, y, z, _ = make_points_3d(rng, m=700)
        n_modes = (12, 10, 14)
        block = (rng.standard_normal((4,) + n_modes)
                 + 1j * rng.standard_normal((4,) + n_modes))
        with Plan(2, n_modes, n_trans=4, eps=1e-8, precision="double") as plan:
            plan.set_pts(x, y, z)
            fast = plan.execute(block)
        with Plan(2, n_modes, n_trans=4, eps=1e-8, precision="double",
                  **LEGACY) as plan:
            plan.set_pts(x, y, z)
            slow = plan.execute(block)
        assert relative_l2_error(fast, slow) < 1e-9

    def test_3d_type1_batched_accuracy(self, rng):
        x, y, z, _ = make_points_3d(rng, m=600)
        block = rng.standard_normal((3, 600)) + 1j * rng.standard_normal((3, 600))
        n_modes = (10, 12, 8)
        with Plan(1, n_modes, n_trans=3, eps=1e-6, precision="double") as plan:
            plan.set_pts(x, y, z)
            out = plan.execute(block)
        for t in range(3):
            exact = nudft_type1([x, y, z], block[t], n_modes)
            assert relative_l2_error(out[t], exact) < 1e-4

    def test_stencil_cache_invalidated_by_set_pts(self, rng):
        x, y, c = make_points_2d(rng, m=500)
        x2, y2, c2 = make_points_2d(rng, m=650)
        plan = Plan(1, (20, 20), eps=1e-7, precision="double")
        plan.set_pts(x, y)
        first_cache = plan._stencil
        assert first_cache is not None
        plan.execute(c)
        plan.set_pts(x2, y2)
        assert plan._stencil is not first_cache
        assert plan._stencil.n_points == 650
        second = plan.execute(c2)
        exact = nudft_type1([x2, y2], c2, (20, 20))
        assert relative_l2_error(second, exact) < 1e-5
        plan.destroy()
        assert plan._stencil is None

    def test_repeated_execute_reuses_cache(self, rng):
        x, y, c = make_points_2d(rng, m=400)
        d = rng.standard_normal(400) + 1j * rng.standard_normal(400)
        with Plan(1, (16, 16), eps=1e-6, precision="double") as plan:
            plan.set_pts(x, y)
            cache = plan._stencil
            fc = plan.execute(c)
            fd = plan.execute(d)
            assert plan._stencil is cache  # execute never rebuilds the cache
        assert relative_l2_error(fc, nudft_type1([x, y], c, (16, 16))) < 1e-4
        assert relative_l2_error(fd, nudft_type1([x, y], d, (16, 16))) < 1e-4

    def test_spread_only_batched(self, rng):
        x, y, _ = make_points_2d(rng, m=300)
        block = rng.standard_normal((2, 300)) + 1j * rng.standard_normal((2, 300))
        with Plan(1, (16, 16), n_trans=2, eps=1e-4, spread_only=True,
                  precision="double") as plan:
            plan.set_pts(x, y)
            fine = plan.execute(block)
            assert fine.shape == (2,) + plan.fine_shape
            # spread-only type 2: interpolate straight off a fine-shaped block
        with Plan(2, (16, 16), n_trans=2, eps=1e-4, spread_only=True,
                  precision="double") as plan2:
            plan2.set_pts(x, y)
            vals = plan2.execute(fine.astype(np.complex128))
            assert vals.shape == (2, 300)

    def test_budgetless_plan_falls_back_to_perdim_cache(self, rng):
        x, y, _ = make_points_2d(rng, m=350)
        block = rng.standard_normal((3, 350)) + 1j * rng.standard_normal((3, 350))
        with Plan(1, (18, 18), n_trans=3, eps=1e-7, precision="double",
                  stencil_budget=0) as lean, \
                Plan(1, (18, 18), n_trans=3, eps=1e-7, precision="double") as fat:
            lean.set_pts(x, y)
            fat.set_pts(x, y)
            assert lean._stencil is not None and not lean._stencil.is_fused
            assert fat._stencil.interp_matrix is not None
            np.testing.assert_allclose(lean.execute(block), fat.execute(block),
                                       rtol=1e-9, atol=1e-9)


# --------------------------------------------------------------------------- #
# simple API batching
# --------------------------------------------------------------------------- #
class TestSimpleBatched:
    def test_nufft2d1_stacked_strengths(self, rng):
        x, y, _ = make_points_2d(rng, m=500)
        block = rng.standard_normal((3, 500)) + 1j * rng.standard_normal((3, 500))
        out = nufft2d1(x, y, block, (18, 18), eps=1e-7, precision="double")
        assert out.shape == (3, 18, 18)
        for t in range(3):
            exact = nudft_type1([x, y], block[t], (18, 18))
            assert relative_l2_error(out[t], exact) < 1e-5

    def test_nufft2d2_stacked_modes_requires_n_trans(self, rng):
        x, y, _ = make_points_2d(rng, m=200)
        stack = (rng.standard_normal((2, 12, 12))
                 + 1j * rng.standard_normal((2, 12, 12)))
        out = nufft2d2(x, y, stack, eps=1e-6, precision="double", n_trans=2)
        assert out.shape == (2, 200)
        with pytest.raises(ValueError):
            nufft2d2(x, y, stack, eps=1e-6)  # stacked input without n_trans
