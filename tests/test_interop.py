"""Tests of the upstream-compatible ``repro.finufft`` / ``repro.cufinufft``
facades: parity with the native API, upstream defaults, opts mapping, and the
baselines-registry adapters."""

import numpy as np
import pytest

import repro.cufinufft as cufinufft
import repro.finufft as finufft
from repro import Plan as NativePlan
from repro.baselines import available_libraries, get_library


def _points(rng, ndim, m=500):
    return [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]


def _targets(rng, ndim, nk=40):
    return [rng.uniform(-20, 20, nk) for _ in range(ndim)]


def _strengths(rng, m, dtype):
    return (rng.standard_normal(m) + 1j * rng.standard_normal(m)).astype(dtype)


MODES = {1: (24,), 2: (14, 12), 3: (8, 8, 6)}


class TestSimpleCallParity:
    """Each of the nine simple calls is bit-identical to the native API at
    matching isign (upstream defaults: +1 for types 1/3, -1 for type 2)."""

    @pytest.mark.parametrize("module,dtype", [
        (finufft, np.complex128), (cufinufft, np.complex64)])
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_type1(self, rng, module, dtype, ndim):
        coords = _points(rng, ndim)
        c = _strengths(rng, 500, dtype)
        fn = getattr(module, f"nufft{ndim}d1")
        got = fn(*coords, c, MODES[ndim])
        native = NativePlan(1, MODES[ndim], eps=1e-6, isign=+1,
                            precision="single" if dtype == np.complex64
                            else "double")
        native.set_pts(*coords)
        assert np.array_equal(got, native.execute(c))
        native.destroy()

    @pytest.mark.parametrize("module,dtype", [
        (finufft, np.complex128), (cufinufft, np.complex64)])
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_type2(self, rng, module, dtype, ndim):
        coords = _points(rng, ndim)
        modes = _strengths(rng, int(np.prod(MODES[ndim])),
                           dtype).reshape(MODES[ndim])
        fn = getattr(module, f"nufft{ndim}d2")
        got = fn(*coords, modes)
        native = NativePlan(2, MODES[ndim], eps=1e-6, isign=-1,
                            precision="single" if dtype == np.complex64
                            else "double")
        native.set_pts(*coords)
        assert np.array_equal(got, native.execute(modes))
        native.destroy()

    @pytest.mark.parametrize("module,dtype", [
        (finufft, np.complex128), (cufinufft, np.complex64)])
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_type3(self, rng, module, dtype, ndim):
        coords = _points(rng, ndim)
        targets = _targets(rng, ndim)
        c = _strengths(rng, 500, dtype)
        fn = getattr(module, f"nufft{ndim}d3")
        got = fn(*coords, c, *targets)
        native = NativePlan(3, ndim, eps=1e-6, isign=+1,
                            precision="single" if dtype == np.complex64
                            else "double")
        native.set_pts(*coords, **dict(zip("stu", targets)))
        assert np.array_equal(got, native.execute(c))
        native.destroy()

    def test_simple_out_and_isign_override(self, rng):
        x, y = _points(rng, 2)
        c = _strengths(rng, 500, np.complex64)
        out = np.empty(MODES[2], dtype=np.complex64)
        got = cufinufft.nufft2d1(x, y, c, MODES[2], out=out, isign=-1)
        assert got is out
        native = NativePlan(1, MODES[2], eps=1e-6, isign=-1,
                            precision="single")
        native.set_pts(x, y)
        assert np.array_equal(out, native.execute(c))
        native.destroy()

    def test_finufft_n_modes_inferred_from_out(self, rng):
        x, y = _points(rng, 2)
        c = _strengths(rng, 500, np.complex128)
        out = np.empty(MODES[2], dtype=np.complex128)
        got = finufft.nufft2d1(x, y, c, out=out)
        assert got is out
        assert np.array_equal(out, finufft.nufft2d1(x, y, c, MODES[2]))
        with pytest.raises(ValueError):
            finufft.nufft2d1(x, y, c)  # neither n_modes nor out


class TestGuruLifecycle:
    def test_upstream_script_runs_verbatim(self, rng):
        """The module docstring's upstream-style script, bit-for-bit."""
        x, y = _points(rng, 2, 400)
        c = _strengths(rng, 400, np.complex128)

        plan = finufft.Plan(1, (20, 16), eps=1e-6, dtype="complex128")
        plan.setpts(x, y)
        f = plan.execute(c)
        plan.destroy()

        native = NativePlan(1, (20, 16), eps=1e-6, precision="double",
                            isign=+1)
        native.set_pts(x, y)
        assert np.array_equal(f, native.execute(c))
        native.destroy()

    def test_iflag_defaults(self):
        assert finufft.Plan(1, (16,))._plan.isign == +1
        assert finufft.Plan(2, (16,))._plan.isign == -1
        assert finufft.Plan(3, 1)._plan.isign == +1
        assert cufinufft.Plan(2, (16,))._plan.isign == -1

    def test_eps_defaults_follow_precision(self):
        assert finufft.Plan(1, (16,))._plan.eps == 1e-14  # double default
        assert finufft.Plan(1, (16,), dtype="complex64")._plan.eps == 1e-6
        assert cufinufft.Plan(1, (16,))._plan.eps == 1e-6  # single default
        assert cufinufft.Plan(1, (16,),
                              dtype="complex128")._plan.eps == 1e-14

    def test_dtype_property_and_parse(self):
        assert finufft.Plan(1, (16,)).dtype == np.dtype(np.complex128)
        assert cufinufft.Plan(1, (16,)).dtype == np.dtype(np.complex64)
        with pytest.raises(TypeError):
            finufft.Plan(1, (16,), dtype="float32x")
        with pytest.raises(TypeError):
            finufft.Plan(1, (16,), dtype=np.float64)  # must be complex

    def test_n_trans_batched(self, rng):
        x, = _points(rng, 1, 300)
        block = _strengths(rng, 4 * 300, np.complex64).reshape(4, 300)
        with cufinufft.Plan(1, (24,), n_trans=4) as plan:
            plan.setpts(x)
            f = plan.execute(block)
        assert f.shape == (4, 24)
        native = NativePlan(1, (24,), eps=1e-6, n_trans=4, isign=+1,
                            precision="single")
        native.set_pts(x)
        assert np.array_equal(f, native.execute(block))
        native.destroy()

    def test_context_manager_releases(self, rng):
        x, = _points(rng, 1, 200)
        with finufft.Plan(1, (16,)) as plan:
            plan.setpts(x)
            plan.execute(_strengths(rng, 200, np.complex128))
        assert plan._plan.workspace.nbytes == 0


class TestOptsMapping:
    def test_finufft_opts_names(self, rng):
        x, = _points(rng, 1, 300)
        c = _strengths(rng, 300, np.complex128)
        # ignored opts accepted; mapped opts change the native plan config
        plan = finufft.Plan(1, (24,), nthreads=8, debug=1, fftw=0,
                            spread_sort=0, spread_kerevalmeth=0)
        assert plan._plan.opts.sort_points is False
        assert plan._plan.opts.kernel_eval == "exact"
        plan.setpts(x)
        got = plan.execute(c)
        native = NativePlan(1, (24,), eps=1e-14, precision="double",
                            isign=+1, sort_points=False, kernel_eval="exact")
        native.set_pts(x)
        assert np.array_equal(got, native.execute(c))
        plan.destroy()
        native.destroy()

    def test_modeord_1_rejected(self):
        with pytest.raises(NotImplementedError):
            finufft.Plan(1, (16,), modeord=1)
        assert finufft.Plan(1, (16,), modeord=0) is not None

    def test_unknown_opts_raise(self):
        with pytest.raises(TypeError):
            finufft.Plan(1, (16,), gpu_method=2)  # gpu_* is cufinufft-only
        with pytest.raises(TypeError):
            cufinufft.Plan(1, (16,), spread_sort=1)  # and vice versa

    def test_cufinufft_method_mapping(self):
        from repro.core.options import SpreadMethod
        assert (cufinufft.Plan(1, (16,), gpu_method=2)._plan.opts.method
                is SpreadMethod.SM)
        assert (cufinufft.Plan(1, (16,), gpu_method=1)._plan.opts.method
                is SpreadMethod.GM_SORT)
        plan = cufinufft.Plan(1, (16,), gpu_method=1, gpu_sort=0)
        assert plan._plan.opts.method is SpreadMethod.GM
        assert plan._plan.opts.sort_points is False
        with pytest.raises(ValueError):
            cufinufft.Plan(1, (16,), gpu_method=3)

    def test_cufinufft_binsize_and_subprob(self):
        plan = cufinufft.Plan(1, (32, 32), gpu_binsizex=16, gpu_binsizey=8,
                              gpu_maxsubprobsize=256)
        assert plan._plan.opts.bin_shape == (16, 8)
        assert plan._plan.opts.max_subproblem_size == 256
        with pytest.raises(ValueError):
            cufinufft.Plan(1, (32, 32), gpu_binsizey=8)  # missing x axis

    def test_cufinufft_spreadinterponly_dtype(self, rng):
        x, y = _points(rng, 2, 300)
        with cufinufft.Plan(1, (16, 16), gpu_spreadinterponly=1) as plan:
            plan.setpts(x, y)
            grid = plan.execute(_strengths(rng, 300, np.complex64))
        assert grid.dtype == np.complex64


class TestRegistryAdapters:
    def test_facades_listed(self):
        names = available_libraries()
        assert "repro (finufft)" in names
        assert "repro (cufinufft)" in names

    @pytest.mark.parametrize("name,kind,dtype", [
        ("repro (finufft)", "cpu", np.complex128),
        ("repro (cufinufft)", "gpu", np.complex64)])
    def test_make_plan_runs_facade(self, rng, name, kind, dtype):
        lib = get_library(name)
        assert lib.device_kind == kind
        assert lib.supports(1, 2, "single", 1e-6)
        x, y = _points(rng, 2, 300)
        with lib.make_plan(1, (16, 16)) as plan:
            plan.setpts(x, y)
            f = plan.execute(_strengths(rng, 300, dtype))
        assert f.shape == (16, 16) and f.dtype == np.dtype(dtype)

    def test_model_times_inherited(self):
        lib = get_library("repro (cufinufft)")
        result = lib.model_times(1, (64, 64), 4096, 1e-6)
        assert result.times["exec"] > 0
