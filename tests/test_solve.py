"""Inverse-NUFFT subsystem tests: operators, Toeplitz, CG, DCF, service path."""

import numpy as np
import pytest

from repro import TransformService
from repro.core.exact import nudft_type2
from repro.core.errors import relative_l2_error
from repro.solve import (
    AdjointOperator,
    ForwardOperator,
    NormalOperator,
    SolveRequest,
    ToeplitzNormalOperator,
    cg_solve,
    dot_test,
    execute_solve,
    inverse_nufft,
    pcg_solve,
    pipe_menon_weights,
)
from repro.workloads import radial_points, rand_points, spiral_points

DIMS = {1: (24,), 2: (12, 14), 3: (8, 6, 10)}


def _pair(points, n_modes, eps=1e-12, precision="double", isign=1, **kw):
    fwd = ForwardOperator(points, n_modes, eps=eps, precision=precision,
                          isign=isign, **kw)
    adj = AdjointOperator(points, n_modes, eps=eps, precision=precision,
                          isign=isign, **kw)
    return fwd, adj


class TestAdjointDotTest:
    @pytest.mark.parametrize("ndim", (1, 2, 3))
    @pytest.mark.parametrize("isign", (-1, +1))
    def test_double_precision(self, rng, ndim, isign):
        pts = rand_points(400, ndim, rng=7)
        fwd, adj = _pair(pts, DIMS[ndim], eps=1e-12, isign=isign)
        try:
            assert dot_test(fwd, adj, rng=0) < 1e-12
        finally:
            fwd.close()
            adj.close()

    @pytest.mark.parametrize("ndim", (1, 2, 3))
    @pytest.mark.parametrize("isign", (-1, +1))
    def test_single_precision(self, rng, ndim, isign):
        pts = rand_points(400, ndim, rng=7)
        fwd, adj = _pair(pts, DIMS[ndim], eps=1e-5, precision="single",
                         isign=isign)
        try:
            # Single precision: the transforms themselves only carry ~eps.
            assert dot_test(fwd, adj, rng=0) < 1e-4
        finally:
            fwd.close()
            adj.close()

    def test_mismatched_isign_pair_fails_dot_test(self, rng):
        pts = rand_points(300, 2, rng=7)
        fwd = ForwardOperator(pts, (12, 12), eps=1e-12, isign=+1)
        adj = AdjointOperator(pts, (12, 12), eps=1e-12, isign=-1)
        try:
            assert dot_test(fwd, adj, rng=0) > 1e-3
            with pytest.raises(ValueError):
                NormalOperator(fwd, adj)
        finally:
            fwd.close()
            adj.close()

    def test_forward_matches_exact_type2(self, rng):
        pts = rand_points(300, 2, rng=7)
        f = rng.standard_normal((12, 14)) + 1j * rng.standard_normal((12, 14))
        with ForwardOperator(pts, (12, 14), eps=1e-11) as fwd:
            out = fwd.apply(f)
        assert relative_l2_error(out, nudft_type2(pts, f)) < 1e-8


class TestToeplitzNormalOperator:
    @pytest.mark.parametrize("ndim", (1, 2, 3))
    def test_matches_explicit_within_10eps(self, rng, ndim):
        eps = 1e-9
        pts = rand_points(1000, ndim, rng=5)
        modes = DIMS[ndim]
        w = pipe_menon_weights(pts, modes, n_iter=4, eps=eps)
        fwd, adj = _pair(pts, modes, eps=eps, backend="cached")
        try:
            explicit = NormalOperator(fwd, adj, weights=w)
            toep = ToeplitzNormalOperator(pts, modes, eps=eps, weights=w)
            f = rng.standard_normal(modes) + 1j * rng.standard_normal(modes)
            assert relative_l2_error(toep.apply(f), explicit.apply(f)) < 10 * eps
        finally:
            fwd.close()
            adj.close()

    def test_unweighted_matches_explicit(self, rng):
        eps = 1e-9
        pts = radial_points(2000, n_spokes=40)
        fwd, adj = _pair(pts, (16, 16), eps=eps, backend="cached")
        try:
            explicit = NormalOperator(fwd, adj)
            toep = ToeplitzNormalOperator(pts, (16, 16), eps=eps)
            f = rng.standard_normal((16, 16)) + 1j * rng.standard_normal((16, 16))
            assert relative_l2_error(toep.apply(f), explicit.apply(f)) < 10 * eps
            assert toep.diagonal() == pytest.approx(2000.0)
        finally:
            fwd.close()
            adj.close()

    def test_hermitian_and_psd(self, rng):
        pts = spiral_points(1500, n_interleaves=12, n_turns=6)
        toep = ToeplitzNormalOperator(pts, (10, 10), eps=1e-10)
        x = rng.standard_normal((10, 10)) + 1j * rng.standard_normal((10, 10))
        y = rng.standard_normal((10, 10)) + 1j * rng.standard_normal((10, 10))
        lhs = np.vdot(np.asarray(toep.apply(x)).ravel(), y.ravel())
        rhs = np.vdot(x.ravel(), np.asarray(toep.apply(y)).ravel())
        assert abs(lhs - rhs) / abs(lhs) < 1e-12
        quad = np.real(np.vdot(x.ravel(), np.asarray(toep.apply(x)).ravel()))
        assert quad > 0

    def test_batched_apply(self, rng):
        pts = rand_points(800, 2, rng=3)
        toep = ToeplitzNormalOperator(pts, (10, 12), eps=1e-9)
        stack = rng.standard_normal((3, 10, 12)) + 1j * rng.standard_normal((3, 10, 12))
        batched = np.asarray(toep.apply(stack))
        for i in range(3):
            assert np.allclose(batched[i], toep.apply(stack[i]))

    def test_modelled_iteration_far_cheaper_than_explicit(self, rng):
        pts = rand_points(4000, 2, rng=3)
        w = np.full(4000, 1.0 / 4000)
        fwd, adj = _pair(pts, (24, 24), eps=1e-6)
        try:
            explicit = NormalOperator(fwd, adj, weights=w)
            toep = ToeplitzNormalOperator(pts, (24, 24), eps=1e-6, weights=w)
            f = rng.standard_normal((24, 24)) + 1j * rng.standard_normal((24, 24))
            explicit.apply(f)  # record profiles
            assert explicit.modelled_iteration_seconds() >= \
                2.0 * toep.modelled_iteration_seconds()
            assert toep.psf_build_seconds > 0
        finally:
            fwd.close()
            adj.close()

    def test_rejects_bad_weights(self):
        pts = rand_points(100, 2, rng=0)
        with pytest.raises(ValueError):
            ToeplitzNormalOperator(pts, (8, 8), weights=np.ones(50))
        with pytest.raises(ValueError):
            ToeplitzNormalOperator(pts, (8, 8), weights=-np.ones(100))


class TestPipeMenonWeights:
    def test_positive_and_normalized(self):
        pts = radial_points(3000, n_spokes=48)
        w = pipe_menon_weights(pts, (16, 16), n_iter=6, eps=1e-6)
        assert w.shape == (3000,)
        assert np.all(w > 0)
        assert np.sum(w) == pytest.approx(1.0)

    def test_flattens_sampling_psf(self):
        """After DCF, the PSF evaluated at the samples is near-constant."""
        pts = radial_points(3000, n_spokes=48)
        w = pipe_menon_weights(pts, (16, 16), n_iter=8, eps=1e-9)
        fwd, adj = _pair(pts, (16, 16), eps=1e-9, backend="cached")
        try:
            flat = np.abs(fwd.apply(adj.apply(w.astype(np.complex128))))
            unif = np.abs(fwd.apply(adj.apply(
                np.full(3000, 1.0 / 3000, dtype=np.complex128))))
            spread_w = np.std(flat) / np.mean(flat)
            spread_u = np.std(unif) / np.mean(unif)
            assert spread_w < 0.1 * spread_u
        finally:
            fwd.close()
            adj.close()

    def test_radial_weights_grow_with_radius(self):
        """DCF counteracts the 1/|k| radial center oversampling."""
        pts = radial_points(4000, n_spokes=50)
        w = pipe_menon_weights(pts, (20, 20), n_iter=8, eps=1e-6)
        radius = np.hypot(pts[0], pts[1])
        inner = w[radius < 0.5].mean()
        outer = w[radius > 2.5].mean()
        assert outer > 3.0 * inner

    def test_validation(self):
        pts = rand_points(100, 2, rng=0)
        with pytest.raises(ValueError):
            pipe_menon_weights(pts, (8, 8), n_iter=0)
        with pytest.raises(ValueError):
            pipe_menon_weights(pts, (8, 8), w0=np.zeros(100))


class TestCG:
    def test_exact_recovery_on_well_conditioned_trajectory(self, rng):
        pts = rand_points(4000, 2, rng=3)
        modes = (16, 16)
        f_true = rng.standard_normal(modes) + 1j * rng.standard_normal(modes)
        data = nudft_type2(pts, f_true)
        res = inverse_nufft(pts, data, modes, eps=1e-10, tol=1e-11, maxiter=60)
        assert res.converged == [True]
        assert relative_l2_error(res.x, f_true) < 1e-8

    @pytest.mark.parametrize("trajectory", ("radial", "spiral"))
    def test_convergence_on_mri_trajectories(self, rng, trajectory):
        m, modes = 4000, (16, 16)
        if trajectory == "radial":
            pts = radial_points(m, n_spokes=64)
        else:
            pts = spiral_points(m, n_interleaves=20, n_turns=8)
        # Ground truth in range(A^H W): recoverable despite the unsampled
        # torus corners of a disc-limited trajectory.
        w = pipe_menon_weights(pts, modes, n_iter=6, eps=1e-9)
        with AdjointOperator(pts, modes, eps=1e-11, backend="cached") as adj:
            f_true = np.asarray(adj.apply(
                w * (rng.standard_normal(m) + 1j * rng.standard_normal(m))))
        f_true /= np.linalg.norm(f_true)
        data = nudft_type2(pts, f_true)
        res = inverse_nufft(pts, data, modes, eps=1e-9, weights=w,
                            tol=1e-4, maxiter=40)
        assert res.converged == [True]
        assert res.n_iter[0] <= 40
        # Residual history decreases overall and the reconstruction is close.
        hist = res.residual_norms[0]
        assert hist[-1] <= 1e-4 < hist[0]
        assert relative_l2_error(res.x, f_true) < 1e-2
        # Density compensation beats the unweighted solve at equal budget.
        res_u = inverse_nufft(pts, data, modes, eps=1e-9, weights=None,
                              tol=1e-4, maxiter=res.n_iter[0])
        assert hist[-1] <= res_u.residual_norms[0][-1]

    def test_toeplitz_and_explicit_cg_agree(self, rng):
        pts = radial_points(3000, n_spokes=48)
        modes = (14, 14)
        f_true = rng.standard_normal(modes) + 1j * rng.standard_normal(modes)
        data = nudft_type2(pts, f_true)
        kwargs = dict(eps=1e-9, tol=1e-6, maxiter=15)
        toep = inverse_nufft(pts, data, modes, normal="toeplitz", **kwargs)
        expl = inverse_nufft(pts, data, modes, normal="explicit", **kwargs)
        assert toep.n_iter == expl.n_iter
        assert relative_l2_error(toep.x, expl.x) < 1e-5

    def test_pcg_diagonal_preconditioner_and_shift(self, rng):
        mat = np.diag(np.linspace(1.0, 50.0, 32)).astype(complex)
        rhs = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        op = lambda v: mat @ v  # noqa: E731
        plain = cg_solve(op, rhs, tol=1e-12, maxiter=200)
        jacobi = pcg_solve(op, rhs, preconditioner=1.0 / np.diag(mat).real,
                           tol=1e-12, maxiter=200)
        assert plain.converged and jacobi.converged
        assert jacobi.n_iter <= plain.n_iter
        assert np.allclose(jacobi.x, np.linalg.solve(mat, rhs))
        shifted = cg_solve(op, rhs, tol=1e-12, maxiter=200, shift=2.0)
        assert np.allclose(shifted.x, np.linalg.solve(mat + 2.0 * np.eye(32), rhs))

    def test_zero_rhs_and_validation(self):
        op = lambda v: v  # noqa: E731
        res = cg_solve(op, np.zeros(4, dtype=complex))
        assert res.converged and res.n_iter == 0
        assert np.all(res.x == 0)
        with pytest.raises(TypeError):
            cg_solve(object(), np.ones(4, dtype=complex))
        with pytest.raises(ValueError):
            cg_solve(op, np.ones(4, dtype=complex), shift=-1.0)
        with pytest.raises(ValueError):
            cg_solve(op, np.ones(4, dtype=complex), x0=np.ones(3, dtype=complex))


class TestOperatorsLifecycle:
    def test_borrowed_plan_is_not_destroyed(self, rng):
        from repro import Plan

        pts = rand_points(200, 2, rng=0)
        plan = Plan(2, (10, 10), eps=1e-9, precision="double")
        op = ForwardOperator(pts, (10, 10), eps=1e-9, plan=plan)
        op.close()
        assert not plan._destroyed
        plan.destroy()

    def test_service_lease_released_on_close(self, rng):
        pts = rand_points(200, 2, rng=0)
        with TransformService(n_devices=1) as svc:
            op = ForwardOperator(pts, (10, 10), eps=1e-9, service=svc)
            assert len(svc._leased) == 1
            op.close()
            assert len(svc._leased) == 0

    def test_plan_and_service_mutually_exclusive(self, rng):
        from repro import Plan

        pts = rand_points(100, 2, rng=0)
        plan = Plan(2, (8, 8))
        with TransformService(n_devices=1) as svc:
            with pytest.raises(ValueError):
                ForwardOperator(pts, (8, 8), plan=plan, service=svc)
        plan.destroy()

    def test_wrong_plan_type_rejected(self, rng):
        from repro import Plan

        pts = rand_points(100, 2, rng=0)
        plan = Plan(1, (8, 8))
        with pytest.raises(ValueError):
            ForwardOperator(pts, (8, 8), plan=plan)
        plan.destroy()

    def test_failed_set_pts_releases_lease(self, rng):
        """A set_pts failure during construction must not leak the lease."""
        bad = np.full(100, np.nan)
        good = np.zeros(100)
        with TransformService(n_devices=1) as svc:
            with pytest.raises(ValueError):
                ForwardOperator([bad, good], (8, 8), service=svc)
            assert len(svc._leased) == 0
        # ... and an owned plan is destroyed, not leaked.
        with pytest.raises(ValueError):
            ForwardOperator([bad, good], (8, 8))


class TestSolveRequestValidation:
    def test_rejects_bad_shapes_and_values(self):
        x = np.zeros(10)
        ones = np.ones(10, dtype=complex)
        with pytest.raises(ValueError):
            SolveRequest(n_modes=(8, 8), data=ones, x=x)  # missing y
        with pytest.raises(ValueError):
            SolveRequest(n_modes=(8,), data=np.ones(5, dtype=complex), x=x)
        with pytest.raises(ValueError):
            SolveRequest(n_modes=(8,), data=ones, x=x, weights=np.ones(3))
        with pytest.raises(ValueError):
            SolveRequest(n_modes=(8,), data=ones, x=x, normal="magic")
        with pytest.raises(ValueError):
            SolveRequest(n_modes=(8,), data=ones, x=x, isign=0)
        with pytest.raises(ValueError):
            SolveRequest(n_modes=(8,), data=ones, x=x, maxiter=0)
        bad = ones.copy()
        bad[0] = np.nan
        with pytest.raises(ValueError):
            SolveRequest(n_modes=(8,), data=bad, x=x)

    def test_batched_request_shapes(self, rng):
        x = rng.uniform(-np.pi, np.pi, 50)
        data = rng.standard_normal((3, 50)) + 1j * rng.standard_normal((3, 50))
        req = SolveRequest(n_modes=(8,), data=data, x=x)
        assert req.batched and req.n_rhs == 3


class TestSolveThroughService:
    def _problem(self, rng, n_rhs=1):
        modes = (12, 12)
        pts = radial_points(2500, n_spokes=40)
        f_true = np.stack([
            rng.standard_normal(modes) + 1j * rng.standard_normal(modes)
            for _ in range(n_rhs)
        ])
        data = np.stack([nudft_type2(pts, f) for f in f_true])
        return modes, pts, (data if n_rhs > 1 else data[0])

    def test_service_matches_direct(self, rng):
        modes, pts, data = self._problem(rng)
        kwargs = dict(n_modes=modes, data=data, x=pts[0], y=pts[1],
                      eps=1e-9, tol=1e-6, maxiter=12)
        with TransformService(n_devices=1) as svc:
            served = svc.solve(**kwargs)
            assert svc.stats.solves_served == 1
            assert svc.stats.solve_cg_iterations == sum(served.n_iter)
            assert svc.makespan() > 0
        direct = execute_solve(SolveRequest(**kwargs))
        assert np.allclose(served.x, direct.x)
        assert served.n_iter == direct.n_iter

    def test_batched_solve_shards_across_fleet(self, rng):
        modes, pts, data = self._problem(rng, n_rhs=4)
        kwargs = dict(n_modes=modes, data=data, x=pts[0], y=pts[1],
                      eps=1e-9, tol=1e-6, maxiter=12)
        with TransformService(n_devices=2) as svc:
            served = svc.solve(**kwargs)
            assert served.x.shape == (4, *modes)
            assert sorted(set(served.device_ids)) == [0, 1]
            assert svc.stats.solve_shards == 2
            # every device did real modelled work
            assert all(u > 0 for u in svc.fleet.utilization())
        direct = execute_solve(SolveRequest(**kwargs))
        assert np.allclose(served.x, direct.x)

    def test_sharded_solve_resolves_weights_once(self, rng):
        """Pipe-Menon runs once per request, not once per shard."""
        modes, pts, data = self._problem(rng, n_rhs=4)
        kwargs = dict(n_modes=modes, data=data, x=pts[0], y=pts[1],
                      eps=1e-9, tol=1e-6, maxiter=6)
        calls = []
        import repro.solve.request as request_mod
        from repro import solve as solve_pkg

        real = solve_pkg.pipe_menon_weights

        def counting(*a, **kw):
            calls.append(1)
            return real(*a, **kw)

        # Patch both binding sites: the service's call-time lookup
        # (repro.solve) and execute_solve's module-level import.
        solve_pkg.pipe_menon_weights = counting
        request_mod.pipe_menon_weights = counting
        try:
            with TransformService(n_devices=2) as svc:
                served = svc.solve(**kwargs)
        finally:
            solve_pkg.pipe_menon_weights = real
            request_mod.pipe_menon_weights = real
        assert len(calls) == 1
        assert served.weights is not None
        direct = execute_solve(SolveRequest(**kwargs))
        assert np.allclose(served.x, direct.x)

    def test_repeat_solves_hit_the_plan_pool(self, rng):
        modes, pts, data = self._problem(rng)
        kwargs = dict(n_modes=modes, data=data, x=pts[0], y=pts[1],
                      eps=1e-9, tol=1e-6, maxiter=8)
        with TransformService(n_devices=1) as svc:
            svc.solve(**kwargs)
            misses_first = svc.stats.lease_misses
            svc.solve(**kwargs)
            assert svc.stats.lease_misses == misses_first
            assert svc.stats.lease_hits >= misses_first

    def test_solve_rejects_mixed_arguments(self, rng):
        modes, pts, data = self._problem(rng)
        req = SolveRequest(n_modes=modes, data=data, x=pts[0], y=pts[1])
        with TransformService(n_devices=1) as svc:
            with pytest.raises(ValueError):
                svc.solve(req, maxiter=3)
            with pytest.raises(TypeError):
                svc.solve("nope")


class TestTrajectories:
    def test_radial_in_box_and_deterministic(self):
        kx, ky = radial_points(5000, n_spokes=64)
        assert kx.shape == ky.shape == (5000,)
        assert np.all(np.hypot(kx, ky) <= np.pi + 1e-12)
        kx2, ky2 = radial_points(5000, n_spokes=64)
        assert np.array_equal(kx, kx2) and np.array_equal(ky, ky2)

    def test_radial_golden_angle_changes_spokes(self):
        a = radial_points(1000, n_spokes=16)
        b = radial_points(1000, n_spokes=16, golden_angle=True)
        assert not np.allclose(a[0], b[0])

    def test_spiral_in_box(self):
        kx, ky = spiral_points(5000, n_interleaves=12, n_turns=6)
        assert kx.shape == (5000,)
        assert np.all(np.hypot(kx, ky) <= np.pi + 1e-12)

    def test_make_distribution_dispatch(self):
        from repro.workloads import make_distribution

        pts = make_distribution("radial", 500, 2, n_spokes=10)
        assert len(pts) == 2 and pts[0].shape == (500,)
        pts = make_distribution("spiral", 500, 2)
        assert len(pts) == 2
        with pytest.raises(ValueError):
            make_distribution("radial", 100, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            radial_points(0)
        with pytest.raises(ValueError):
            spiral_points(100, n_turns=0)
