"""Tests of the multi-GPU cluster substrate and the M-TIP application."""

import numpy as np
import pytest

from repro.cluster import (
    CORI_GPU_NODE,
    SUMMIT_NODE,
    CommCostModel,
    Node,
    SimComm,
    run_weak_scaling,
)
from repro.core.errors import relative_l2_error
from repro.mtip import (
    MTIPConfig,
    MTIPReconstruction,
    detector_qgrid,
    ewald_slice_points,
    match_orientations,
    merge_slices,
    phase_retrieval,
    random_rotations,
    rotate_points,
    support_mask,
    synthetic_density,
)
from repro.mtip.merging import MergingOperator
from repro.mtip.phasing import centered_fft, centered_ifft, fourier_error
from repro.mtip.slicing import SlicingOperator


# --------------------------------------------------------------------------- #
# simulated MPI
# --------------------------------------------------------------------------- #
class TestSimComm:
    def test_scatter_gather_roundtrip(self):
        comms = SimComm.create(4)
        payload = [np.arange(3) + 10 * r for r in range(4)]
        received = [comms[0].scatter(payload, root=0)]
        received += [comms[r].scatter(None) for r in range(1, 4)]
        for r in range(1, 4):
            comms[r].gather(received[r] * 2)
        gathered = comms[0].gather(received[0] * 2)
        for r in range(4):
            np.testing.assert_array_equal(gathered[r], payload[r] * 2)

    def test_reduce_sums(self):
        comms = SimComm.create(3)
        for r in range(1, 3):
            comms[r].reduce(np.full(4, float(r)))
        total = comms[0].reduce(np.zeros(4))
        np.testing.assert_allclose(total, np.full(4, 3.0))

    def test_bcast(self):
        comms = SimComm.create(3)
        comms[0].bcast({"iteration": 7})
        assert comms[2].bcast(None)["iteration"] == 7

    def test_scatter_validation_and_rank_info(self):
        comms = SimComm.create(2)
        assert comms[1].Get_rank() == 1
        assert comms[1].Get_size() == 2
        with pytest.raises(ValueError):
            comms[0].scatter([1, 2, 3], root=0)
        with pytest.raises(ValueError):
            SimComm.create(0)

    def test_communication_cost_accumulates(self):
        comms = SimComm.create(4)
        before = comms[0].comm_seconds
        comms[0].bcast(np.zeros(1_000_000))
        assert comms[0].comm_seconds > before
        model = CommCostModel()
        assert model.collective_time(1e9, 8) > model.collective_time(1e3, 8)


class TestNode:
    def test_round_robin_assignment(self):
        node = Node(spec=CORI_GPU_NODE)
        assert node.n_gpus == 8
        assert node.device_for_rank(0).device_id == 0
        assert node.device_for_rank(9).device_id == 1
        devices = node.assign_ranks(10)
        assert devices[0].active_contexts == 2  # ranks 0 and 8 share GPU 0
        node.release_all()
        assert all(d.active_contexts == 0 for d in node.devices)

    def test_contention_flat_then_rising(self):
        node = Node(spec=SUMMIT_NODE)
        assert node.contention_for_ranks(1) == 1.0
        assert node.contention_for_ranks(6) == 1.0
        assert node.contention_for_ranks(7) > 2.0
        with pytest.raises(ValueError):
            node.contention_for_ranks(0)


class TestWeakScaling:
    @pytest.mark.parametrize("node_spec", [CORI_GPU_NODE, SUMMIT_NODE])
    def test_fig9_shape(self, node_spec):
        result = run_weak_scaling(
            2, (41, 41, 41), 200_000, 1e-6, node_spec=node_spec,
            max_ranks=2 * node_spec.n_gpus, precision="double", max_sample=1 << 16,
        )
        eff = result.efficiency()
        # near-ideal up to one rank per GPU...
        assert all(e > 0.8 for e in eff[: node_spec.n_gpus])
        # ...then rapid deterioration
        assert eff[node_spec.n_gpus] < 0.7
        rows = result.rows()
        assert len(rows) == 2 * node_spec.n_gpus
        assert rows[0][0] == 1


# --------------------------------------------------------------------------- #
# M-TIP building blocks
# --------------------------------------------------------------------------- #
class TestDensityAndGeometry:
    def test_synthetic_density_properties(self):
        dens, mask = synthetic_density(20, rng=0)
        assert dens.shape == (20, 20, 20)
        assert dens.min() >= 0 and dens.max() == pytest.approx(1.0)
        assert np.all(dens[~mask] == 0)
        assert mask.sum() < mask.size
        with pytest.raises(ValueError):
            synthetic_density(2)
        with pytest.raises(ValueError):
            support_mask(16, radius=1.5)

    def test_rotations_are_orthonormal(self):
        rots = random_rotations(20, rng=0)
        for r in rots:
            np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-12)
            assert np.linalg.det(r) == pytest.approx(1.0)

    def test_detector_grid_and_slices(self):
        pts = detector_qgrid(8, q_max=0.5 * np.pi, curvature=0.3)
        assert pts.shape == (64, 3)
        assert np.all(np.abs(pts[:, :2]) <= 0.5 * np.pi + 1e-12)
        assert np.all(pts[:, 2] <= 0)  # Ewald curvature bends one way
        rots = random_rotations(3, rng=1)
        allpts = ewald_slice_points(rots, 8, q_max=0.5 * np.pi, curvature=0.3)
        assert allpts.shape == (3 * 64, 3)
        # rotation preserves radii
        np.testing.assert_allclose(
            np.linalg.norm(allpts[:64], axis=1), np.linalg.norm(pts, axis=1), rtol=1e-12
        )
        with pytest.raises(ValueError):
            detector_qgrid(8, q_max=4.0)
        with pytest.raises(ValueError):
            rotate_points(pts, np.eye(4))


class TestSlicingMergingPhasing:
    def _setup(self, n=16, n_pix=16, n_img=70):
        dens, mask = synthetic_density(n, rng=0)
        modes = centered_fft(dens)
        rots = random_rotations(n_img, rng=1)
        points = ewald_slice_points(rots, n_pix)
        return dens, mask, modes, points

    def test_slicing_matches_direct_physics_transform(self):
        dens, _, modes, points = self._setup(n=12, n_pix=10, n_img=3)
        slicer = SlicingOperator((12,) * 3, points, eps=1e-10)
        vals = slicer(modes)
        m = np.arange(-6, 6)
        mx, my, mz = np.meshgrid(m, m, m, indexing="ij")
        direct = np.array([
            np.sum(dens * np.exp(-1j * (mx * q[0] + my * q[1] + mz * q[2])))
            for q in points[:30]
        ])
        assert relative_l2_error(vals[:30], direct) < 1e-8
        slicer.destroy()

    def test_slicing_consistent_on_uniform_grid_points(self):
        # at q = 2*pi*k/N the continuous transform equals the DFT coefficient
        n = 12
        dens, _, modes, _ = self._setup(n=n, n_img=1)
        ks = np.array([[1, -2, 3], [0, 0, 0], [-5, 4, -1]], dtype=float)
        q = 2 * np.pi * ks / n
        slicer = SlicingOperator((n,) * 3, q, eps=1e-10)
        vals = slicer(modes)
        expected = np.array([modes[int(k[0]) + n // 2, int(k[1]) + n // 2, int(k[2]) + n // 2]
                             for k in ks])
        np.testing.assert_allclose(vals, expected, rtol=1e-7, atol=1e-7)
        slicer.destroy()

    def test_merging_recovers_low_frequencies(self):
        dens, mask, modes, points = self._setup()
        slicer = SlicingOperator((16,) * 3, points, eps=1e-8)
        vals = slicer(modes)
        slicer.destroy()
        merged = merge_slices(vals, points, (16,) * 3, eps=1e-8)
        # low-|k| region is densely covered by the slices and must be accurate
        sl = slice(4, 12)
        err_central = relative_l2_error(merged[sl, sl, sl], modes[sl, sl, sl])
        err_overall = relative_l2_error(merged, modes)
        assert err_central < 0.75
        # the sparsely-covered corners dominate the overall error
        assert err_central < err_overall < 1.2

    def test_merging_sampling_density_nonnegative(self):
        _, _, _, points = self._setup(n_img=10)
        op = MergingOperator((16,) * 3, points, eps=1e-6)
        density = op.sampling_density()
        assert np.all(np.abs(density) >= 0)
        with pytest.raises(ValueError):
            op(np.zeros(5, dtype=complex))
        op.destroy()

    def test_orientation_matching_identifies_true_orientation(self):
        dens, _, modes, _ = self._setup(n=14, n_img=1)
        rots = random_rotations(10, rng=5)
        points = ewald_slice_points(rots, 12)
        slicer = SlicingOperator((14,) * 3, points, eps=1e-8)
        intensities = np.abs(slicer(modes).reshape(10, -1)) ** 2
        slicer.destroy()
        # measured images are noisy copies of candidates 3 and 7
        rng = np.random.default_rng(0)
        measured = intensities[[3, 7]] * (1 + 0.01 * rng.standard_normal((2, intensities.shape[1])))
        assignment, scores = match_orientations(measured, intensities)
        np.testing.assert_array_equal(assignment, [3, 7])
        assert np.all(scores > 0.95)

    def test_phasing_recovers_density_from_full_magnitudes(self):
        dens, mask = synthetic_density(16, rng=2)
        mags = np.abs(centered_fft(dens))
        recon, errors = phase_retrieval(mags, mask, n_iterations=250, method="hio",
                                        rng=0, track_errors=True)
        assert errors[-1] < 0.15
        assert fourier_error(recon, mags) < 0.15

    def test_centered_fft_roundtrip(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((8, 8, 8))
        np.testing.assert_allclose(centered_ifft(centered_fft(a)).real, a, atol=1e-12)

    def test_phasing_validation(self):
        dens, mask = synthetic_density(8, rng=0)
        with pytest.raises(ValueError):
            phase_retrieval(np.abs(centered_fft(dens)), mask[:4], n_iterations=5)
        with pytest.raises(ValueError):
            phase_retrieval(np.abs(centered_fft(dens)), mask, method="bogus")


class TestMTIPPipeline:
    def test_full_loop_runs_and_orients_well(self):
        cfg = MTIPConfig(n_modes=12, n_pix=12, n_images=16, n_candidates=24,
                         eps=1e-7, phasing_iterations=40, seed=4)
        recon = MTIPReconstruction(cfg)
        density, history = recon.run(n_iterations=2)
        assert density.shape == (12, 12, 12)
        assert len(history) == 2
        # with the true orientations among the candidates, matching is strong
        assert history[-1].mean_orientation_score > 0.6
        assert all(np.isfinite(h.density_error) for h in history)
        assert all(set(h.nufft_seconds) == {"slicing", "merging"} for h in history)
        assert all(h.nufft_seconds["merging"] > 0 for h in history)

    def test_table2_problem_sizes(self):
        # the per-rank Table II sizes: sanity-check the density values quoted
        from repro.workloads.problems import table2_problems

        slicing, merging = table2_problems(1.0)
        assert slicing.n_modes == (41, 41, 41) and slicing.nufft_type == 2
        assert merging.n_modes == (81, 81, 81) and merging.nufft_type == 1
        rho_slicing = slicing.n_points / (2 * 41) ** 3
        rho_merging = merging.n_points / (2 * 81) ** 3
        assert rho_slicing == pytest.approx(1.86, rel=0.05)
        assert rho_merging == pytest.approx(3.85, rel=0.05)
