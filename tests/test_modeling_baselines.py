"""Tests of the paper-scale timing model, the baseline libraries and the
workload generators: these pin the *shapes* of the paper's results."""

import numpy as np
import pytest

from repro.baselines import available_libraries, get_library
from repro.core.exact import nudft_type1, nudft_type2
from repro.core.errors import relative_l2_error
from repro.metrics import format_table, model_cufinufft, ns_per_point, sample_spread_stats, speedup
from repro.metrics.tables import write_results
from repro.workloads import (
    cluster_points,
    fig2_problems,
    fig4_problems,
    make_distribution,
    mixture_points,
    problem_density,
    rand_points,
    strengths,
    table1_problems,
)
from repro.workloads.problems import ProblemSpec, fig6_problems, fig7_problems, table2_problems


# --------------------------------------------------------------------------- #
# workloads
# --------------------------------------------------------------------------- #
class TestWorkloads:
    def test_rand_points_range(self):
        pts = rand_points(1000, 3, rng=0)
        assert len(pts) == 3
        for p in pts:
            assert np.all((-np.pi <= p) & (p < np.pi))

    def test_cluster_points_in_tiny_box(self):
        fine = (256, 128)
        pts = cluster_points(500, fine, rng=0)
        for p, n in zip(pts, fine):
            assert np.all((0 <= p) & (p <= 8 * 2 * np.pi / n))

    def test_mixture_points_folded(self):
        pts = mixture_points(2000, 2, rng=0)
        for p in pts:
            assert np.all((-np.pi <= p) & (p < np.pi))

    def test_make_distribution_dispatch_and_errors(self):
        assert len(make_distribution("rand", 10, 2, rng=0)) == 2
        with pytest.raises(ValueError):
            make_distribution("cluster", 10, 2)  # missing fine_shape
        with pytest.raises(ValueError):
            make_distribution("bogus", 10, 2)

    def test_strengths_and_density(self):
        c = strengths(100, rng=0)
        assert c.shape == (100,) and np.iscomplexobj(c)
        assert problem_density(2 ** 20, (1024, 1024)) == pytest.approx(1.0)

    def test_problem_spec_scaling_preserves_density(self):
        spec = ProblemSpec("x", 1, (1000, 1000), 4_000_000, 1e-5)
        scaled = spec.scaled(0.1)
        rho_full = spec.n_points / (4.0 * np.prod(spec.n_modes))
        rho_scaled = scaled.n_points / (4.0 * np.prod(scaled.n_modes))
        assert rho_scaled == pytest.approx(rho_full, rel=0.2)
        assert spec.scaled(1.0) is spec
        with pytest.raises(ValueError):
            spec.scaled(0.0)

    def test_sweep_builders_nonempty(self):
        assert len(fig2_problems(0.1)) == 22
        assert len(fig4_problems(0.05)) == 24
        assert len(fig6_problems(0.1)) == 24
        assert len(fig7_problems(0.05)) == 28
        assert len(table1_problems(0.05)) == 4
        assert len(table2_problems(0.05)) == 2


# --------------------------------------------------------------------------- #
# paper-scale model
# --------------------------------------------------------------------------- #
class TestModelCufinufft:
    def test_sampled_stats_scale_to_target(self):
        stats = sample_spread_stats("rand", 50_000_000, (2048, 2048), (32, 32),
                                    rng=0, max_sample=100_000)
        assert stats.n_points == 50_000_000
        assert stats.bin_counts.sum() == pytest.approx(50_000_000)

    def test_gm_sort_beats_gm_on_large_grids(self):
        kwargs = dict(distribution="rand", spread_only=True, fine_shape=(4096, 4096), rng=0)
        gm = model_cufinufft(1, (2048, 2048), 4096 ** 2, 1e-5, method="GM", **kwargs)
        gms = model_cufinufft(1, (2048, 2048), 4096 ** 2, 1e-5, method="GM-sort", **kwargs)
        sm = model_cufinufft(1, (2048, 2048), 4096 ** 2, 1e-5, method="SM", **kwargs)
        assert gms.times["total"] < gm.times["total"]
        assert sm.times["total"] < gms.times["total"]

    def test_sm_distribution_robust_gm_not(self):
        # Fig. 2 right column: SM barely changes between rand and cluster,
        # GM/GM-sort get much slower on the clustered distribution.
        common = dict(spread_only=True, fine_shape=(2048, 2048), rng=0)
        m = 2048 ** 2
        gm_rand = model_cufinufft(1, (1024, 1024), m, 1e-5, method="GM",
                                  distribution="rand", **common)
        gm_clu = model_cufinufft(1, (1024, 1024), m, 1e-5, method="GM",
                                 distribution="cluster", **common)
        sm_rand = model_cufinufft(1, (1024, 1024), m, 1e-5, method="SM",
                                  distribution="rand", **common)
        sm_clu = model_cufinufft(1, (1024, 1024), m, 1e-5, method="SM",
                                 distribution="cluster", **common)
        assert gm_clu.times["exec"] > 1.5 * gm_rand.times["exec"]
        assert sm_clu.times["exec"] < 1.5 * sm_rand.times["exec"]

    def test_exec_faster_than_total_faster_than_total_mem(self):
        r = model_cufinufft(1, (1000, 1000), 10_000_000, 1e-5, method="SM", rng=0)
        assert r.times["exec"] <= r.times["total"] <= r.times["total+mem"]
        assert 0 < r.spread_fraction <= 1
        assert r.ram_mb > 300  # includes the CUDA context baseline

    def test_3d_double_high_accuracy_falls_back_to_gmsort(self):
        r = model_cufinufft(1, (100, 100, 100), 1_000_000, 1e-9, method="SM",
                            precision="double", rng=0)
        assert r.meta["method"] == "GM-sort"

    def test_spread_fraction_dominates_3d_type1(self):
        # Table I: spread fraction > 90%
        r = model_cufinufft(1, (256, 256, 256), 2 ** 24, 1e-5, method="SM",
                            rng=0, max_sample=1 << 18)
        assert r.spread_fraction > 0.85

    def test_ns_per_point_helper(self):
        assert ns_per_point(1e-3, 1_000_000) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            ns_per_point(1.0, 0)


# --------------------------------------------------------------------------- #
# baseline libraries
# --------------------------------------------------------------------------- #
class TestBaselineNumerics:
    @pytest.mark.parametrize("name,tol", [("finufft", 1e-4), ("cunfft", 1e-4), ("gpunufft", 2e-3)])
    def test_type1_and_type2_accuracy(self, rng, name, tol):
        m = 1200
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        n_modes = (22, 26)
        lib = get_library(name)
        f = lib.type1([x, y], c, n_modes, eps=1e-5, precision="double")
        assert relative_l2_error(f, nudft_type1([x, y], c, n_modes)) < tol
        modes = rng.standard_normal(n_modes) + 1j * rng.standard_normal(n_modes)
        cc = lib.type2([x, y], modes, eps=1e-5, precision="double")
        assert relative_l2_error(cc, nudft_type2([x, y], modes)) < tol

    def test_gpunufft_accuracy_floor(self):
        lib = get_library("gpunufft")
        assert lib.error_estimate(1e-9) >= 1e-3
        assert not lib.supports(1, 3, "double", 1e-9)

    def test_registry(self):
        assert set(available_libraries()) >= {"finufft", "cunfft", "gpunufft", "cufinufft (SM)"}
        assert get_library("FINUFFT").name == "finufft"
        with pytest.raises(KeyError):
            get_library("matlab-nufft")

    def test_cufinufft_sm_capability_matrix(self):
        sm = get_library("cufinufft (SM)")
        assert sm.supports(1, 2, "double", 1e-12)
        assert not sm.supports(1, 3, "double", 1e-9)   # Remark 2
        assert sm.supports(1, 3, "single", 1e-5)
        # types 1-3 in dimensions 1-3 are in the matrix now
        assert sm.supports(1, 1, "double", 1e-9)
        assert sm.supports(3, 2, "double", 1e-9)
        assert not sm.supports(3, 3, "double", 1e-9)   # type-3 spreads like type 1
        assert not sm.supports(4, 2, "single", 1e-5)

    def test_cufinufft_make_plan_runs_real_numerics(self, rng):
        from repro.core.options import SpreadMethod

        lib = get_library("cufinufft (GM-sort)")
        m = 400
        x = rng.uniform(-np.pi, np.pi, m)
        y = rng.uniform(-np.pi, np.pi, m)
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        with lib.make_plan(1, (18, 18), eps=1e-8, precision="double") as plan:
            assert plan.method is SpreadMethod.GM_SORT
            assert plan.backend.name == "device_sim"
            plan.set_pts(x, y)
            f = plan.execute(c)
            assert plan.timings()["exec"] > 0  # adapter keeps modelled timings
        exact = nudft_type1([x, y], c, (18, 18))
        assert relative_l2_error(f, exact) < 1e-6


class TestBaselineModelShapes:
    """Pin the library orderings of Figs. 4-6."""

    def _times(self, name, nufft_type, n_modes, m, eps, dist="rand", precision="single"):
        lib = get_library(name)
        return lib.model_times(nufft_type, n_modes, m, eps, distribution=dist,
                               precision=precision, rng=0)

    def test_fig4_type1_ordering_low_accuracy(self):
        m = 10_000_000
        cufi = self._times("cufinufft (SM)", 1, (1000, 1000), m, 1e-2)
        finufft = self._times("finufft", 1, (1000, 1000), m, 1e-2)
        cunfft = self._times("cunfft", 1, (1000, 1000), m, 1e-2)
        gpunufft = self._times("gpunufft", 1, (1000, 1000), m, 1e-2)
        # cuFINUFFT fastest; gpuNUFFT slowest by a large margin (paper: ~78x)
        assert cufi.times["total+mem"] < finufft.times["total+mem"]
        assert cufi.times["total+mem"] < cunfft.times["total+mem"]
        assert gpunufft.times["total+mem"] > 10 * cufi.times["total+mem"]
        # speedup vs FINUFFT in the paper's 4-10x ballpark (allow 3-30)
        s = speedup(finufft.times["total+mem"], cufi.times["total+mem"])
        assert 3 < s < 40

    def test_fig5_exec_speedup_grows_with_accuracy_in_3d(self):
        m = 10_000_000
        lo = speedup(
            self._times("finufft", 1, (100,) * 3, m, 1e-2).times["exec"],
            self._times("cufinufft (SM)", 1, (100,) * 3, m, 1e-2).times["exec"],
        )
        hi = speedup(
            self._times("finufft", 1, (100,) * 3, m, 1e-5).times["exec"],
            self._times("cufinufft (SM)", 1, (100,) * 3, m, 1e-5).times["exec"],
        )
        assert lo > 1 and hi > 1

    def test_fig6_cunfft_collapses_on_clustered_type1(self):
        m = 4 * 512 * 512
        rand = self._times("cunfft", 1, (512, 512), m, 1e-2, dist="rand")
        clu = self._times("cunfft", 1, (512, 512), m, 1e-2, dist="cluster")
        assert clu.times["exec"] > 20 * rand.times["exec"]
        # while cuFINUFFT (SM) barely moves
        sm_rand = self._times("cufinufft (SM)", 1, (512, 512), m, 1e-2, dist="rand")
        sm_clu = self._times("cufinufft (SM)", 1, (512, 512), m, 1e-2, dist="cluster")
        assert sm_clu.times["exec"] < 2 * sm_rand.times["exec"]

    def test_fig6_type2_cunfft_competitive_but_slower_exec(self):
        m = 4 * 512 * 512
        cufi = self._times("cufinufft (GM-sort)", 2, (512, 512), m, 1e-2)
        cunfft = self._times("cunfft", 2, (512, 512), m, 1e-2)
        assert cunfft.times["exec"] > cufi.times["exec"]
        assert cunfft.times["total+mem"] < 10 * cufi.times["total+mem"]

    def test_finufft_has_no_device_transfers(self):
        r = self._times("finufft", 1, (512, 512), 10 ** 6, 1e-3)
        assert r.times["mem"] == 0.0
        assert r.times["total+mem"] == pytest.approx(r.times["total"])

    def test_table1_speedups_in_band(self):
        # Table I reports exec speedups vs FINUFFT between ~2.6x and ~16x for
        # 3D type 1.  (The paper's *trend* -- larger speedups at lower
        # accuracy -- is not reproduced by our CPU cost model; see
        # EXPERIMENTS.md for the discussion.)
        m = 2 ** 22
        for eps in (1e-2, 1e-5):
            f = self._times("finufft", 1, (256,) * 3, m, eps)
            c = self._times("cufinufft (SM)", 1, (256,) * 3, m, eps)
            assert 1.5 < speedup(f.times["exec"], c.times["exec"]) < 40


class TestTables:
    def test_format_table_alignment_and_validation(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.123456]], title="T")
        assert "T" in text and "a" in text
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_speedup_validation(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_write_results_respects_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NO_RESULT_FILES", "1")
        assert write_results("x", "y") is None
        monkeypatch.delenv("REPRO_NO_RESULT_FILES")
        path = write_results("unit_test_table", "hello", directory=str(tmp_path))
        assert path is not None
        with open(path) as fh:
            assert fh.read().strip() == "hello"
