"""Unit and property tests for the spreading kernels (ES, Gaussian, Kaiser-Bessel)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import (
    ESKernel,
    GaussianKernel,
    KaiserBesselKernel,
    kernel_params_for_tolerance,
    quadrature_kernel_ft,
)
from repro.kernels.kaiser_bessel import GPUNUFFT_ACCURACY_FLOOR, beatty_beta
from repro.kernels.es_kernel import MAX_KERNEL_WIDTH, MIN_KERNEL_WIDTH


# --------------------------------------------------------------------------- #
# parameter selection (paper Eq. (6))
# --------------------------------------------------------------------------- #
class TestKernelParams:
    @pytest.mark.parametrize(
        "eps,expected_w",
        [(1e-1, 2), (1e-2, 3), (1e-3, 4), (1e-5, 6), (1e-7, 8), (1e-12, 13)],
    )
    def test_width_formula_matches_paper(self, eps, expected_w):
        w, beta = kernel_params_for_tolerance(eps)
        assert w == expected_w
        assert beta == pytest.approx(2.30 * expected_w)

    def test_width_clipped_to_supported_range(self):
        w_lo, _ = kernel_params_for_tolerance(0.5)
        w_hi, _ = kernel_params_for_tolerance(1e-30)
        assert w_lo == MIN_KERNEL_WIDTH
        assert w_hi == MAX_KERNEL_WIDTH

    @pytest.mark.parametrize("bad", [0.0, -1e-3, 1.0, 2.0])
    def test_invalid_tolerance_rejected(self, bad):
        with pytest.raises(ValueError):
            kernel_params_for_tolerance(bad)

    def test_non_default_upsampling_rejected(self):
        with pytest.raises(ValueError):
            kernel_params_for_tolerance(1e-6, upsampfac=1.25)

    @given(st.floats(min_value=1e-14, max_value=0.5))
    @settings(max_examples=50, deadline=None)
    def test_width_monotone_in_tolerance(self, eps):
        w_loose, _ = kernel_params_for_tolerance(min(0.5, eps * 10))
        w_tight, _ = kernel_params_for_tolerance(eps)
        assert w_tight >= w_loose


# --------------------------------------------------------------------------- #
# ES kernel shape properties
# --------------------------------------------------------------------------- #
class TestESKernel:
    def test_support_and_peak(self):
        k = ESKernel.from_tolerance(1e-6)
        z = np.linspace(-2, 2, 401)
        vals = k(z)
        assert np.all(vals[np.abs(z) > 1] == 0)
        assert vals[200] == pytest.approx(1.0)  # z = 0
        assert np.all(vals >= 0)

    def test_symmetry(self):
        k = ESKernel.from_tolerance(1e-4)
        z = np.linspace(0, 1, 100)
        np.testing.assert_allclose(k(z), k(-z), rtol=0, atol=1e-15)

    def test_monotone_decay_from_center(self):
        k = ESKernel.from_tolerance(1e-8)
        z = np.linspace(0, 1, 200)
        vals = k(z)
        assert np.all(np.diff(vals) <= 1e-15)

    def test_evaluate_grid_distance_support_is_half_width(self):
        k = ESKernel.from_tolerance(1e-5)  # w = 6
        assert k.width == 6
        assert k.evaluate_grid_distance(np.array([2.9]))[0] > 0
        assert k.evaluate_grid_distance(np.array([3.1]))[0] == 0

    def test_evaluate_offsets_shape_and_consistency(self):
        k = ESKernel.from_tolerance(1e-3)
        frac = np.array([1.2, 1.7, 2.0])
        vals = k.evaluate_offsets(frac)
        assert vals.shape == (3, k.width)
        expected = k.evaluate_grid_distance(frac[0] - np.arange(k.width))
        np.testing.assert_allclose(vals[0], expected)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ESKernel(width=1, beta=2.3)
        with pytest.raises(ValueError):
            ESKernel(width=4, beta=-1.0)

    @given(st.integers(min_value=2, max_value=16))
    @settings(max_examples=15, deadline=None)
    def test_estimated_error_decreases_with_width(self, w):
        k1 = ESKernel(width=w, beta=2.3 * w)
        assert 0 < k1.estimated_error() <= 1.0
        if w < 16:
            k2 = ESKernel(width=w + 1, beta=2.3 * (w + 1))
            assert k2.estimated_error() < k1.estimated_error()

    def test_describe_mentions_width(self):
        k = ESKernel.from_tolerance(1e-5)
        assert "w=6" in k.describe()


# --------------------------------------------------------------------------- #
# kernel Fourier transform
# --------------------------------------------------------------------------- #
class TestKernelFT:
    def test_zero_frequency_equals_integral(self):
        k = ESKernel.from_tolerance(1e-6)
        # FT at xi=0 is the integral of the kernel over [-1, 1]
        from scipy.integrate import quad

        integral, _ = quad(lambda z: float(k(np.array([z]))[0]), -1, 1)
        ft0 = quadrature_kernel_ft(k, 0.0)
        assert ft0 == pytest.approx(integral, rel=1e-10)

    def test_ft_positive_over_retained_modes(self):
        # the deconvolution divides by phihat(alpha k); it must stay positive
        from repro.kernels.kernel_ft import kernel_fourier_series

        for eps in (1e-2, 1e-5, 1e-9, 1e-12):
            k = ESKernel.from_tolerance(eps)
            n_modes = 100
            n_fine = 256
            vals = kernel_fourier_series(k, n_fine, n_modes)
            assert np.all(vals > 0), f"nonpositive kernel FT at eps={eps}"

    def test_ft_even_in_frequency(self):
        k = ESKernel.from_tolerance(1e-4)
        xi = np.linspace(0.1, 20, 17)
        np.testing.assert_allclose(
            quadrature_kernel_ft(k, xi), quadrature_kernel_ft(k, -xi), rtol=1e-12
        )

    def test_quadrature_converged(self):
        k = ESKernel.from_tolerance(1e-8)
        xi = np.array([0.0, 3.7, 11.1])
        coarse = quadrature_kernel_ft(k, xi, n_quad=64)
        fine = quadrature_kernel_ft(k, xi, n_quad=256)
        np.testing.assert_allclose(coarse, fine, rtol=1e-12)


# --------------------------------------------------------------------------- #
# baseline kernels
# --------------------------------------------------------------------------- #
class TestGaussianKernel:
    def test_wider_than_es_for_same_tolerance(self):
        for eps in (1e-2, 1e-4, 1e-6):
            es = ESKernel.from_tolerance(eps)
            gauss = GaussianKernel.from_tolerance(eps)
            assert gauss.width >= es.width

    def test_value_at_truncation_edge_matches_tolerance(self):
        eps = 1e-5
        g = GaussianKernel.from_tolerance(eps)
        assert g(np.array([1.0]))[0] == pytest.approx(eps, rel=1e-6)

    def test_support_and_symmetry(self):
        g = GaussianKernel.from_tolerance(1e-4)
        assert g(np.array([1.5]))[0] == 0.0
        z = np.linspace(0, 1, 50)
        np.testing.assert_allclose(g(z), g(-z))

    def test_ft_positive_over_modes(self):
        from repro.kernels.kernel_ft import kernel_fourier_series

        g = GaussianKernel.from_tolerance(1e-5)
        vals = kernel_fourier_series(g, 128, 64)
        assert np.all(vals > 0)


class TestKaiserBesselKernel:
    def test_beatty_beta_positive_and_growing(self):
        betas = [beatty_beta(w) for w in range(2, 9)]
        assert all(b > 0 for b in betas)
        assert all(b2 > b1 for b1, b2 in zip(betas, betas[1:]))

    def test_width_capped_at_sector_limit(self):
        k = KaiserBesselKernel.from_tolerance(1e-12)
        assert k.width <= 8

    def test_accuracy_floor(self):
        k = KaiserBesselKernel.from_tolerance(1e-9)
        assert k.estimated_error() >= GPUNUFFT_ACCURACY_FLOOR

    def test_peak_normalized(self):
        k = KaiserBesselKernel.from_tolerance(1e-3)
        assert k(np.array([0.0]))[0] == pytest.approx(1.0)
        assert k(np.array([2.0]))[0] == 0.0
