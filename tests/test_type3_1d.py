"""Accuracy and interface tests for the 1D transforms and the type-3
(nonuniform -> nonuniform) transforms, validated against the direct O(NM)
sums in :mod:`repro.core.exact`."""

import numpy as np
import pytest

from repro import (
    Plan,
    nudft_type1,
    nudft_type2,
    nudft_type3,
    nufft1d1,
    nufft1d2,
    nufft1d3,
    nufft2d3,
    nufft3d3,
    relative_l2_error,
)
from repro.core.gridsize import is_smooth_235, next_smooth_even_235


class TestGridsize1DHelpers:
    def test_next_smooth_even(self):
        for n in (1, 2, 3, 7, 25, 27, 81, 100, 243):
            out = next_smooth_even_235(n)
            assert out >= max(2, n)
            assert out % 2 == 0
            assert is_smooth_235(out)


class Test1DType1Type2:
    def test_1d_type1_roundtrip_exact(self, rng):
        m = 900
        x = rng.uniform(-np.pi, np.pi, m)
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        with Plan(1, (48,), eps=1e-9, precision="double") as plan:
            plan.set_pts(x)
            f = plan.execute(c)
        assert f.shape == (48,)
        exact = nudft_type1([x], c, (48,))
        assert relative_l2_error(f, exact) < 1e-7

    def test_1d_type2_roundtrip_exact(self, rng):
        m = 700
        x = rng.uniform(-np.pi, np.pi, m)
        modes = rng.standard_normal(40) + 1j * rng.standard_normal(40)
        with Plan(2, (40,), eps=1e-9, precision="double") as plan:
            plan.set_pts(x)
            vals = plan.execute(modes)
        exact = nudft_type2([x], modes)
        assert relative_l2_error(vals, exact) < 1e-7

    def test_1d_batched(self, rng):
        m = 500
        x = rng.uniform(-np.pi, np.pi, m)
        block = rng.standard_normal((4, m)) + 1j * rng.standard_normal((4, m))
        with Plan(1, (32,), n_trans=4, eps=1e-8, precision="double") as plan:
            plan.set_pts(x)
            out = plan.execute(block)
        assert out.shape == (4, 32)
        for t in range(4):
            exact = nudft_type1([x], block[t], (32,))
            assert relative_l2_error(out[t], exact) < 1e-6

    @pytest.mark.parametrize("method", ["GM", "GM-sort", "SM"])
    def test_1d_methods_agree(self, rng, method):
        m = 600
        x = rng.uniform(-np.pi, np.pi, m)
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        with Plan(1, (36,), eps=1e-7, precision="double", method=method,
                  backend="reference") as plan:
            plan.set_pts(x)
            f = plan.execute(c)
        exact = nudft_type1([x], c, (36,))
        assert relative_l2_error(f, exact) < 1e-5

    def test_1d_simple_api(self, rng):
        m = 400
        x = rng.uniform(-np.pi, np.pi, m)
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        f = nufft1d1(x, c, 30, eps=1e-8, precision="double")
        assert relative_l2_error(f, nudft_type1([x], c, (30,))) < 1e-6
        vals = nufft1d2(x, f, eps=1e-8, precision="double")
        assert relative_l2_error(vals, nudft_type2([x], f)) < 1e-6

    def test_1d_rejects_extra_coordinate(self, rng):
        plan = Plan(1, (16,))
        with pytest.raises(ValueError):
            plan.set_pts(np.zeros(10), np.zeros(10))
        plan.destroy()


class TestType3:
    def _check(self, rng, ndim, eps=1e-9, tol=1e-6, m=400, nk=350,
               target_scale=25.0, **plan_kwargs):
        coords = [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]
        targets = [rng.uniform(-target_scale, target_scale, nk) for _ in range(ndim)]
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        kw = dict(zip(("s", "t", "u"), targets))
        with Plan(3, ndim, eps=eps, precision="double", **plan_kwargs) as plan:
            plan.set_pts(*coords, **kw)
            f = plan.execute(c)
        assert f.shape == (nk,)
        exact = nudft_type3(coords, c, targets)
        assert relative_l2_error(f, exact) < tol

    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_roundtrip_exact(self, rng, ndim):
        self._check(rng, ndim)

    def test_off_centre_sources_and_targets(self, rng):
        # centring: sources in an offset box, targets in a shifted band
        m, nk = 500, 400
        x = rng.uniform(4.0, 9.0, m)
        s = rng.uniform(80.0, 140.0, nk)
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        with Plan(3, 1, eps=1e-9, precision="double") as plan:
            plan.set_pts(x, s=s)
            f = plan.execute(c)
        exact = nudft_type3([x], c, [s])
        assert relative_l2_error(f, exact) < 1e-6

    def test_degenerate_extents(self, rng):
        # all sources coincident: f_k = c_tot * exp(i s_k x0)
        nk = 60
        x = np.full(16, 0.37)
        s = rng.uniform(-8.0, 8.0, nk)
        c = rng.standard_normal(16) + 1j * rng.standard_normal(16)
        with Plan(3, 1, eps=1e-8, precision="double") as plan:
            plan.set_pts(x, s=s)
            f = plan.execute(c)
        exact = nudft_type3([x], c, [s])
        assert relative_l2_error(f, exact) < 1e-6

    def test_batched(self, rng):
        m, nk = 300, 250
        x = rng.uniform(-np.pi, np.pi, m)
        s = rng.uniform(-30.0, 30.0, nk)
        block = rng.standard_normal((3, m)) + 1j * rng.standard_normal((3, m))
        with Plan(3, 1, n_trans=3, eps=1e-8, precision="double") as plan:
            plan.set_pts(x, s=s)
            out = plan.execute(block)
        assert out.shape == (3, nk)
        for t in range(3):
            exact = nudft_type3([x], block[t], [s])
            assert relative_l2_error(out[t], exact) < 1e-6

    def test_repeated_execute_and_set_pts(self, rng):
        m, nk = 250, 200
        x = rng.uniform(-np.pi, np.pi, m)
        s = rng.uniform(-20.0, 20.0, nk)
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        d = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        with Plan(3, 1, eps=1e-8, precision="double") as plan:
            plan.set_pts(x, s=s)
            fc = plan.execute(c)
            fd = plan.execute(d)
            assert relative_l2_error(fd, nudft_type3([x], d, [s])) < 1e-6
            # re-point: new sources and a different number of targets
            x2 = rng.uniform(-np.pi, np.pi, m)
            s2 = rng.uniform(-12.0, 12.0, nk + 40)
            plan.set_pts(x2, s=s2)
            f2 = plan.execute(c)
            assert f2.shape == (nk + 40,)
            assert relative_l2_error(f2, nudft_type3([x2], c, [s2])) < 1e-6
        assert relative_l2_error(fc, nudft_type3([x], c, [s])) < 1e-6

    def test_single_precision_dtype(self, rng):
        m, nk = 200, 150
        x = rng.uniform(-np.pi, np.pi, m)
        s = rng.uniform(-15.0, 15.0, nk)
        c = (rng.standard_normal(m) + 1j * rng.standard_normal(m)).astype(np.complex64)
        with Plan(3, 1, eps=1e-5, precision="single") as plan:
            plan.set_pts(x, s=s)
            f = plan.execute(c)
        assert f.dtype == np.complex64
        assert relative_l2_error(f, nudft_type3([x], c, [s])) < 1e-3

    def test_simple_api_wrappers(self, rng):
        m, nk = 300, 200
        pts = [rng.uniform(-np.pi, np.pi, m) for _ in range(3)]
        tgt = [rng.uniform(-18.0, 18.0, nk) for _ in range(3)]
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        f1 = nufft1d3(pts[0], c, tgt[0], eps=1e-8, precision="double")
        assert relative_l2_error(f1, nudft_type3(pts[:1], c, tgt[:1])) < 1e-6
        f2 = nufft2d3(pts[0], pts[1], c, tgt[0], tgt[1], eps=1e-8, precision="double")
        assert relative_l2_error(f2, nudft_type3(pts[:2], c, tgt[:2])) < 1e-6
        f3 = nufft3d3(*pts[:3], c, *tgt[:3], eps=1e-7, precision="double")
        assert relative_l2_error(f3, nudft_type3(pts, c, tgt)) < 1e-5

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            Plan(3, 1, spread_only=True)
        plan = Plan(3, 2)
        with pytest.raises(ValueError):  # missing targets
            plan.set_pts(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):  # missing second target dim
            plan.set_pts(np.zeros(5), np.zeros(5), s=np.zeros(5))
        with pytest.raises(ValueError):  # mismatched target lengths
            plan.set_pts(np.zeros(5), np.zeros(5), s=np.zeros(4), t=np.zeros(6))
        with pytest.raises(RuntimeError):  # no points yet
            plan.execute(np.zeros(5, dtype=complex))
        plan.destroy()
        # type-1/2 plans reject target frequencies
        plan12 = Plan(1, (16, 16))
        with pytest.raises(ValueError):
            plan12.set_pts(np.zeros(5), np.zeros(5), s=np.zeros(5))
        plan12.destroy()

    def test_type3_ram_and_destroy(self, rng):
        m, nk = 200, 150
        x = rng.uniform(-np.pi, np.pi, m)
        s = rng.uniform(-10.0, 10.0, nk)
        plan = Plan(3, 1, eps=1e-6, precision="double")
        plan.set_pts(x, s=s)
        assert plan.device.memory.allocated_bytes > 0
        report = plan.report()
        assert "type 3" in report and "targets" in report
        plan.destroy()
        assert plan.device.memory.allocated_bytes == 0
        plan.destroy()  # idempotent

    def test_exact_type3_validation(self):
        with pytest.raises(ValueError):
            nudft_type3([np.zeros(4)], np.zeros(4, dtype=complex),
                        [np.zeros(3), np.zeros(3)])

    def test_failed_set_pts_leaves_plan_clean(self, rng):
        from repro.gpu.memory import OutOfDeviceMemory

        m = 150
        x = rng.uniform(-np.pi, np.pi, m)
        s = rng.uniform(-10.0, 10.0, m)
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        plan = Plan(3, 1, eps=1e-6, precision="double")
        plan.set_pts(x, s=s)
        # huge spectral extent -> t3 fine grid exceeds the simulated 16 GB
        with pytest.raises(OutOfDeviceMemory):
            plan.set_pts(x, s=rng.uniform(-1e9, 1e9, m))
        with pytest.raises(RuntimeError, match="set_pts"):
            plan.execute(c)  # clean error, not a crash on stale geometry
        plan.set_pts(x, s=s)  # the plan is still usable
        f = plan.execute(c)
        assert relative_l2_error(f, nudft_type3([x], c, [s])) < 1e-4
        plan.destroy()

    def test_type3_modelled_times(self):
        from repro.metrics.modeling import model_cufinufft

        t2 = model_cufinufft(2, (64, 64), 200_000, 1e-9, precision="double", rng=0)
        t3 = model_cufinufft(3, (64, 64), 200_000, 1e-9, precision="double", rng=0)
        # type 3 = spread + the full inner type 2, so it must cost strictly more
        assert t3.times["exec"] > t2.times["exec"]
        assert t3.times["setup"] > t2.times["setup"]  # two bin sorts
        assert t3.meta["nufft_type"] == 3
        assert t3.meta["t3_grid"] == (64, 64)
        assert t3.spread_fraction > 0.5  # spread/interp dominated, like type 1
