"""Tests of the plan-parameter autotuner (repro.tuning) and its wiring.

Pins the contracts the docs advertise:

* signatures bucket "the same problem" together and separate what the cost
  model distinguishes;
* the tuning cache survives corrupt/partial files by falling back to
  model-scored tuning (never raising), skips bad entries individually, and
  writes atomically;
* the search always includes the paper-default configuration, so tuned
  scores are never worse than the baseline under the model;
* concurrent tuners of one signature -- including concurrent
  TransformService requests -- share a single tuning entry;
* tuned plans compute the same numbers as untuned plans (method/bin choices
  are performance-only).
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import Plan
from repro.core.options import Opts, SpreadMethod
from repro.service import TransformService
from repro.tuning import (
    SCHEMA_VERSION,
    Autotuner,
    TuningCache,
    TuningProblem,
    problem_signature,
    tune_opts,
)


def _valid_record(method="SM", score=1e-3, baseline=2e-3):
    return {
        "version": SCHEMA_VERSION,
        "opts": {
            "method": method,
            "bin_shape": [32, 32],
            "max_subproblem_size": 1024,
            "threads_per_block": 128,
            "stencil_budget": 1 << 25,
            "backend": "auto",
        },
        "score_s": score,
        "baseline_score_s": baseline,
        "mode": "model",
    }


# --------------------------------------------------------------------------- #
# signatures
# --------------------------------------------------------------------------- #
class TestSignature:
    def test_nearby_problems_share_a_bucket(self):
        a = problem_signature(1, (128, 128), 65_536, 1e-6, "single")
        b = problem_signature(1, (128, 128), 80_000, 1.2e-6, "single")
        assert a == b
        assert a.key() == b.key()

    def test_cost_relevant_parameters_separate_buckets(self):
        base = problem_signature(1, (128, 128), 65_536, 1e-6, "single")
        assert base != problem_signature(2, (128, 128), 65_536, 1e-6, "single")
        assert base != problem_signature(1, (128, 128), 65_536, 1e-9, "single")
        assert base != problem_signature(1, (128, 128), 65_536, 1e-6, "double")
        assert base != problem_signature(1, (128, 128), 1_000, 1e-6, "single")
        assert base != problem_signature(1, (1024, 1024), 65_536, 1e-6, "single")
        assert base != problem_signature(1, (128, 128), 65_536, 1e-6, "single",
                                         distribution="cluster")

    def test_problem_validation(self):
        with pytest.raises(ValueError):
            TuningProblem(4, (64,), 100, 1e-6, "single")
        with pytest.raises(ValueError):
            TuningProblem(1, (64,), 0, 1e-6, "single")
        with pytest.raises(ValueError):
            TuningProblem(1, (64,), 100, -1e-6, "single")


# --------------------------------------------------------------------------- #
# cache robustness
# --------------------------------------------------------------------------- #
class TestTuningCache:
    def test_roundtrip_across_instances(self, tmp_path):
        path = tmp_path / "tuning.json"
        cache = TuningCache(path)
        cache.put("sig-a", _valid_record())
        reloaded = TuningCache(path)
        assert reloaded.get("sig-a")["opts"]["method"] == "SM"
        assert len(reloaded) == 1

    def test_corrupt_file_falls_back_to_empty(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text("{not json at all!!!")
        cache = TuningCache(path)
        assert len(cache) == 0
        assert cache.load_error is not None
        # the cache remains writable; the rewrite repairs the file
        cache.put("sig-a", _valid_record())
        assert TuningCache(path).get("sig-a") is not None

    def test_partial_file_falls_back_to_empty(self, tmp_path):
        path = tmp_path / "tuning.json"
        full = json.dumps({"schema": SCHEMA_VERSION,
                           "entries": {"sig-a": _valid_record()}})
        path.write_text(full[: len(full) // 2])  # truncated mid-write
        cache = TuningCache(path)
        assert len(cache) == 0
        assert cache.load_error is not None

    def test_wrong_shape_file_falls_back_to_empty(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text(json.dumps([1, 2, 3]))
        cache = TuningCache(path)
        assert len(cache) == 0
        assert cache.load_error is not None

    def test_bad_entries_skipped_individually(self, tmp_path):
        path = tmp_path / "tuning.json"
        truncated_opts = _valid_record()
        del truncated_opts["opts"]["method"]  # field-level truncation
        entries = {
            "good": _valid_record(),
            "bad-version": dict(_valid_record(), version=SCHEMA_VERSION + 1),
            "bad-shape": {"version": SCHEMA_VERSION},
            "not-a-dict": 42,
            "empty-opts": dict(_valid_record(), opts={}),
            "truncated-opts": truncated_opts,
        }
        path.write_text(json.dumps({"schema": SCHEMA_VERSION, "entries": entries}))
        cache = TuningCache(path)
        assert cache.get("good") is not None
        assert cache.get("bad-version") is None
        assert cache.get("empty-opts") is None  # would KeyError in apply_to
        assert cache.get("truncated-opts") is None
        assert cache.skipped_entries == 5

    def test_put_rejects_malformed_records(self):
        cache = TuningCache()
        with pytest.raises(ValueError):
            cache.put("sig", {"version": SCHEMA_VERSION})

    def test_clear_persists(self, tmp_path):
        path = tmp_path / "tuning.json"
        cache = TuningCache(path)
        cache.put("sig-a", _valid_record())
        cache.clear()
        assert len(TuningCache(path)) == 0


# --------------------------------------------------------------------------- #
# the search
# --------------------------------------------------------------------------- #
class TestAutotuner:
    def test_tuned_never_worse_than_baseline(self):
        tuner = Autotuner(max_sample=1 << 12)
        for problem in (
            TuningProblem(1, (64, 64), 50_000, 1e-6, "single"),
            TuningProblem(2, (32, 32, 32), 50_000, 1e-6, "single"),
            TuningProblem(3, (48, 48), 20_000, 1e-6, "single"),
        ):
            result = tuner.tune(problem)
            assert result.score_s <= result.baseline_score_s
            assert result.speedup >= 1.0
            assert result.n_candidates > 1
            # tuned fields build valid options
            opts = result.apply_to(Opts(precision=problem.precision),
                                   include_backend=True)
            assert len(opts.resolved_bin_shape(problem.ndim)) == problem.ndim

    def test_same_signature_hits_cache(self):
        tuner = Autotuner(max_sample=1 << 12)
        p1 = TuningProblem(1, (64, 64), 50_000, 1e-6, "single")
        p2 = TuningProblem(1, (64, 64), 55_000, 1e-6, "single")  # same bucket
        r1 = tuner.tune(p1)
        r2 = tuner.tune(p2)
        assert not r1.from_cache and r2.from_cache
        assert r1.opts == r2.opts
        assert tuner.stats.tunings_computed == 1
        assert tuner.stats.cache_hits == 1

    def test_deterministic(self):
        r1 = Autotuner(max_sample=1 << 12).tune(
            TuningProblem(1, (64, 64), 50_000, 1e-6, "single"))
        r2 = Autotuner(max_sample=1 << 12).tune(
            TuningProblem(1, (64, 64), 50_000, 1e-6, "single"))
        assert r1.opts == r2.opts
        assert r1.score_s == pytest.approx(r2.score_s)

    def test_type2_never_tunes_to_sm(self):
        tuner = Autotuner(max_sample=1 << 12)
        result = tuner.tune(TuningProblem(2, (64, 64), 50_000, 1e-6, "single"))
        assert result.opts["method"] != SpreadMethod.SM.value

    def test_sm_infeasible_candidates_pruned(self):
        # 3D double at 1e-9: the kernel is wide enough that most padded bins
        # exceed shared memory (paper Remark 2); whatever wins must be a
        # feasible configuration.
        tuner = Autotuner(max_sample=1 << 12)
        result = tuner.tune(TuningProblem(1, (64, 64, 64), 200_000, 1e-9, "double"))
        if result.opts["method"] == SpreadMethod.SM.value:
            from repro.gpu.device import V100_SPEC
            from repro.gpu.threadblock import check_shared_memory_fit
            from repro.kernels.es_kernel import ESKernel

            kernel = ESKernel.from_tolerance(1e-9)
            check_shared_memory_fit(tuple(result.opts["bin_shape"]),
                                    kernel.width, 16, V100_SPEC)

    def test_concurrent_tuning_shares_one_entry(self):
        tuner = Autotuner(max_sample=1 << 12)
        problem = TuningProblem(1, (64, 64), 50_000, 1e-6, "single")
        results = []
        errors = []

        def work():
            try:
                results.append(tuner.tune(problem))
            except Exception as exc:  # pragma: no cover - fail loudly below
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 8
        assert tuner.stats.tunings_computed == 1
        assert {json.dumps(r.opts, sort_keys=True) for r in results} == {
            json.dumps(results[0].opts, sort_keys=True)
        }

    def test_measure_mode(self):
        tuner = Autotuner(max_sample=1 << 12, measure_sample=1 << 10, top_k=2)
        result = tuner.tune(TuningProblem(1, (32, 32), 20_000, 1e-6, "single"),
                            mode="measure")
        assert result.mode == "measure"
        assert result.measured_s is not None and result.measured_s > 0
        assert tuner.stats.plans_measured == 2

    def test_measure_mode_shrinks_paper_scale_grids(self):
        # A paper-scale grid must be measured on a density-preserving shrunk
        # grid, never by allocating the full fine grid.
        tuner = Autotuner(max_sample=1 << 11, measure_sample=1 << 10, top_k=1)
        problem = TuningProblem(1, (256, 256, 256), 1 << 25, 1e-6, "single")
        small = tuner._measure_modes(problem, 1 << 10)
        assert np.prod(small) <= 4 * (1 << 10)  # stays laptop-sized
        density_full = (1 << 25) / np.prod((256, 256, 256))
        density_small = (1 << 10) / np.prod(small)
        assert 0.2 * density_full <= density_small <= 5 * density_full
        # and the measured pass actually completes quickly on it
        result = tuner.tune(problem, mode="measure")
        assert result.measured_s is not None and result.measured_s > 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Autotuner(objective="nonsense")
        with pytest.raises(ValueError):
            Autotuner().tune(TuningProblem(1, (64,), 100, 1e-6, "single"),
                             mode="nope")

    def test_tune_opts_entry_point(self):
        tuner = Autotuner(max_sample=1 << 12)
        opts = tune_opts(1, (64, 64), 50_000, eps=1e-6, tuner=tuner)
        assert isinstance(opts, Opts)
        assert opts.method is not SpreadMethod.AUTO

    def test_pass_through_base_fields_do_not_alias_cache_entries(self):
        # A record tuned under default options must not clobber another
        # caller's explicit stencil budget via a cache hit.
        tuner = Autotuner(max_sample=1 << 12)
        problem = TuningProblem(1, (64, 64), 50_000, 1e-6, "single")
        r_default = tuner.tune(problem)
        custom = Opts(precision="single", stencil_budget=1 << 20)
        r_custom = tuner.tune(problem, base_opts=custom)
        assert not r_custom.from_cache  # separate cache entry
        assert r_custom.opts["stencil_budget"] == 1 << 20
        assert r_default.opts["stencil_budget"] == Opts().stencil_budget
        assert r_custom.apply_to(custom).stencil_budget == 1 << 20

    def test_clustered_and_uniform_coords_use_separate_buckets(self):
        rng = np.random.default_rng(0)
        m = 20_000
        uniform = [rng.uniform(-np.pi, np.pi, m) for _ in range(2)]
        clustered = [0.05 * rng.standard_normal(m) for _ in range(2)]
        p_uniform = TuningProblem(1, (64, 64), m, 1e-6, "single",
                                  coords=uniform)
        p_clustered = TuningProblem(1, (64, 64), m, 1e-6, "single",
                                    coords=clustered)
        assert p_uniform.signature() != p_clustered.signature()
        tuner = Autotuner(max_sample=1 << 12)
        tuner.tune(p_uniform)
        r = tuner.tune(p_clustered)
        assert not r.from_cache
        assert tuner.stats.tunings_computed == 2

    def test_sm_feasibility_respects_device_spec(self):
        from dataclasses import replace

        from repro.gpu.device import V100_SPEC
        from repro.gpu.threadblock import padded_bin_shape

        from repro.kernels.es_kernel import ESKernel

        tiny = replace(V100_SPEC, name="tiny-shm", shared_mem_per_block=2048)
        tuner = Autotuner(max_sample=1 << 12)
        problem = TuningProblem(1, (64, 64), 200_000, 1e-6, "single")
        result = tuner.tune(problem, spec=tiny)
        assert not result.from_cache  # device-specific cache entry
        if result.opts["method"] == SpreadMethod.SM.value:
            w = ESKernel.from_tolerance(1e-6).width
            padded = np.prod(padded_bin_shape(tuple(result.opts["bin_shape"]), w))
            assert padded * 8 <= tiny.shared_mem_per_block
        # the default-device entry is independent
        r_v100 = tuner.tune(problem)
        assert not r_v100.from_cache


# --------------------------------------------------------------------------- #
# plan integration
# --------------------------------------------------------------------------- #
class TestPlanTuning:
    def test_tuned_plan_matches_untuned_numerics(self):
        rng = np.random.default_rng(0)
        m = 10_000
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        tuner = Autotuner(max_sample=1 << 12)
        with Plan(1, (48, 48), eps=1e-6, tune="model", tuner=tuner) as tuned:
            tuned.set_pts(x, y)
            f_tuned = tuned.execute(c)
            assert tuned.tuned is not None
            assert tuned.tuned.speedup >= 1.0
        with Plan(1, (48, 48), eps=1e-6) as plain:
            plain.set_pts(x, y)
            f_plain = plain.execute(c)
            assert plain.tuned is None
        scale = np.abs(f_plain).max()
        assert np.allclose(f_tuned, f_plain, atol=1e-5 * scale, rtol=1e-4)

    def test_tuned_type3_runs(self):
        rng = np.random.default_rng(1)
        m = 4_000
        x = rng.uniform(-np.pi, np.pi, m)
        s = rng.uniform(-20, 20, m)
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        tuner = Autotuner(max_sample=1 << 12)
        with Plan(3, 1, eps=1e-6, tune="model", tuner=tuner) as plan:
            plan.set_pts(x, s=s)
            out = plan.execute(c)
        assert out.shape == (m,)
        assert np.all(np.isfinite(out))

    def test_invalid_tune_value(self):
        with pytest.raises(ValueError, match="tune"):
            Plan(1, (32, 32), tune="sometimes")

    def test_plans_share_tuner_cache(self):
        rng = np.random.default_rng(2)
        m = 8_000
        tuner = Autotuner(max_sample=1 << 12)
        for _ in range(3):
            x, y = rng.uniform(-np.pi, np.pi, (2, m))
            with Plan(1, (48, 48), eps=1e-6, tune="model", tuner=tuner) as plan:
                plan.set_pts(x, y)
        assert tuner.stats.tunings_computed == 1
        assert tuner.stats.cache_hits == 2


# --------------------------------------------------------------------------- #
# service integration
# --------------------------------------------------------------------------- #
class TestServiceTuning:
    def _submit_batch(self, service, rng, m=6_000, rounds=3):
        for _ in range(rounds):
            x, y = rng.uniform(-np.pi, np.pi, (2, m))
            c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
            service.submit(nufft_type=1, n_modes=(48, 48), data=c, x=x, y=y)
        return service.flush()

    def test_requests_share_one_tuning_entry_per_signature(self):
        rng = np.random.default_rng(0)
        with TransformService(tune="model") as service:
            results = self._submit_batch(service, rng)
            assert all(r.error is None for r in results)
            # three distinct point sets, one signature bucket: tuned once
            assert service.tuner.stats.tunings_computed == 1
            assert len(service.tuner.cache) == 1

    def test_tuned_service_matches_untuned_outputs(self):
        rng = np.random.default_rng(3)
        m = 6_000
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        kwargs = dict(nufft_type=1, n_modes=(48, 48), data=c, x=x, y=y)
        with TransformService(tune="model") as tuned, TransformService() as plain:
            r_tuned = tuned.run([__import__("repro").TransformRequest(**kwargs)])[0]
            r_plain = plain.run([__import__("repro").TransformRequest(**kwargs)])[0]
        scale = np.abs(r_plain.output).max()
        assert np.allclose(r_tuned.output, r_plain.output,
                           atol=1e-5 * scale, rtol=1e-4)

    def test_corrupt_cache_file_service_still_serves(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text('{"entries": {"half-written')
        rng = np.random.default_rng(4)
        with TransformService(tune="model", tuning_cache_path=path) as service:
            assert service.tuner.cache.load_error is not None
            results = self._submit_batch(service, rng, rounds=2)
            assert all(r.error is None for r in results)
        # the rewrite repaired the file: a new service reads the entry back
        with TransformService(tune="model", tuning_cache_path=path) as service2:
            assert service2.tuner.cache.load_error is None
            assert len(service2.tuner.cache) == 1
            results = self._submit_batch(service2, rng, rounds=1)
            assert all(r.error is None for r in results)
            assert service2.tuner.stats.tunings_computed == 0  # disk hit only

    def test_invalid_tune_value(self):
        with pytest.raises(ValueError, match="tune"):
            TransformService(tune="maybe")

    def test_tuning_args_without_tune_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="tune"):
            TransformService(tuning_cache_path=tmp_path / "tuning.json")
        with pytest.raises(ValueError, match="tune"):
            TransformService(tuner=Autotuner())
        from repro.cluster.weak_scaling import (
            run_weak_scaling,
            run_weak_scaling_fleet,
        )

        with pytest.raises(ValueError, match="tune"):
            run_weak_scaling_fleet(max_devices=1, tuner=Autotuner())
        with pytest.raises(ValueError, match="tune"):
            run_weak_scaling(1, (16, 16), 1000, 1e-6, max_ranks=1,
                             tuner=Autotuner())

    def test_retune_baseline_stays_pristine(self):
        # After a pooled-style re-point into a different density bucket, the
        # new tuning run must still report its speedup against the caller's
        # original configuration, not the previously tuned one.
        rng = np.random.default_rng(5)
        tuner = Autotuner(max_sample=1 << 12)
        with Plan(1, (48, 48), eps=1e-6, tune="model", tuner=tuner) as plan:
            dense = rng.uniform(-np.pi, np.pi, (2, 40_000))
            plan.set_pts(*dense)
            sparse = rng.uniform(-np.pi, np.pi, (2, 300))
            plan.set_pts(*sparse)
            assert tuner.stats.tunings_computed == 2  # distinct buckets
            # the second search's baseline is the AUTO default (SM for 2D
            # single type-1), not the first point set's tuned config
            fresh = Autotuner(max_sample=1 << 12)
            reference = fresh.tune(
                TuningProblem(1, (48, 48), 300, 1e-6, "single",
                              coords=[sparse[0], sparse[1]]),
            )
            assert plan.tuned.baseline_score_s == pytest.approx(
                reference.baseline_score_s, rel=1e-9
            )


# --------------------------------------------------------------------------- #
# cluster / MTIP integration
# --------------------------------------------------------------------------- #
class TestStackIntegration:
    def test_weak_scaling_fleet_with_tuning(self):
        from repro.cluster.weak_scaling import run_weak_scaling_fleet

        tuner = Autotuner(max_sample=1 << 11)
        result = run_weak_scaling_fleet(
            nufft_type=1, n_modes=(12, 12, 12), n_points_per_rank=2_000,
            requests_per_device=2, max_devices=2, rounds=1,
            tune="model", tuner=tuner,
        )
        assert len(result.points) == 2
        assert all(p.throughput_rps > 0 for p in result.points)
        assert tuner.stats.tunings_computed >= 1

    def test_weak_scaling_model_with_tuning(self):
        from repro.cluster.weak_scaling import run_weak_scaling

        tuner = Autotuner(max_sample=1 << 11)
        result = run_weak_scaling(1, (16, 16, 16), 20_000, 1e-6, max_ranks=2,
                                  tune="model", tuner=tuner, max_sample=1 << 11)
        assert len(result.points) == 2
        assert result.points[0].total_s > 0

    def test_mtip_with_tuning_matches_untuned(self):
        from repro.mtip.pipeline import MTIPConfig, MTIPReconstruction

        cfg = dict(n_modes=8, n_pix=6, n_images=4, n_candidates=6,
                   phasing_iterations=5, seed=0)
        with MTIPReconstruction(MTIPConfig(**cfg)) as plain:
            _, rec_plain = plain.run_iteration(plain.true_modes.copy())
        with MTIPReconstruction(MTIPConfig(tune="model", **cfg)) as tuned:
            _, rec_tuned = tuned.run_iteration(tuned.true_modes.copy())
        assert rec_tuned.density_error == pytest.approx(
            rec_plain.density_error, rel=1e-6, abs=1e-9
        )
