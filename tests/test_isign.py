"""isign (exponent-sign) and precision-inference coverage.

The exponent sign used to be hard-coded (type-1 ``-i``, type-2 ``+i``),
silently diverging from the FINUFFT/cuFINUFFT API; these tests pin the
``isign=`` threading through ``Opts``/``Plan``/the simple wrappers against
the exact reference sums for both signs in every dimension and transform
type, and the simple-API precision inference from the input dtype.
"""

import numpy as np
import pytest

from repro import (
    Opts,
    Plan,
    nudft_type1,
    nudft_type2,
    nudft_type3,
    nufft1d1,
    nufft2d1,
    nufft2d2,
    nufft2d3,
    relative_l2_error,
)

DIMS = {
    1: (26,),
    2: (14, 16),
    3: (8, 10, 6),
}


def _points(rng, ndim, m=300):
    return [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]


class TestExactIsign:
    """The reference sums accept both signs and conjugate correctly."""

    def test_type1_signs_are_conjugate_for_real_strengths(self, rng):
        pts = _points(rng, 2)
        c = rng.standard_normal(300).astype(np.complex128)
        plus = nudft_type1(pts, c, (12, 12), isign=+1)
        minus = nudft_type1(pts, c, (12, 12), isign=-1)
        # For real strengths, flipping the sign conjugates the output.
        assert np.allclose(plus, np.conj(minus))

    def test_type2_default_matches_plus(self, rng):
        pts = _points(rng, 1)
        modes = rng.standard_normal(18) + 1j * rng.standard_normal(18)
        assert np.array_equal(nudft_type2(pts, modes),
                              nudft_type2(pts, modes, isign=+1))

    def test_type3_sign_flip(self, rng):
        pts = _points(rng, 1)
        c = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        s = rng.uniform(-30, 30, 100)
        plus = nudft_type3(pts, c, [s], isign=+1)
        minus = nudft_type3(pts, c, [s], isign=-1)
        assert np.allclose(minus, nudft_type3([-p for p in pts], c, [s], isign=+1))
        assert not np.allclose(plus, minus)

    @pytest.mark.parametrize("bad", (0, 2, -3, 0.5, "plus"))
    def test_invalid_isign_rejected(self, bad):
        with pytest.raises((ValueError, TypeError)):
            nudft_type1([np.zeros(3)], np.ones(3, dtype=complex), (4,), isign=bad)


class TestPlanIsign:
    """Plan execution matches the exact sums for both signs, all dims/types."""

    @pytest.mark.parametrize("ndim", (1, 2, 3))
    @pytest.mark.parametrize("isign", (-1, +1))
    def test_type1_matches_exact(self, rng, ndim, isign):
        modes = DIMS[ndim]
        pts = _points(rng, ndim)
        c = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        with Plan(1, modes, eps=1e-9, precision="double", isign=isign) as plan:
            plan.set_pts(*pts)
            out = plan.execute(c)
        ref = nudft_type1(pts, c, modes, isign=isign)
        assert relative_l2_error(out, ref) < 1e-6

    @pytest.mark.parametrize("ndim", (1, 2, 3))
    @pytest.mark.parametrize("isign", (-1, +1))
    def test_type2_matches_exact(self, rng, ndim, isign):
        modes = DIMS[ndim]
        pts = _points(rng, ndim)
        f = rng.standard_normal(modes) + 1j * rng.standard_normal(modes)
        with Plan(2, modes, eps=1e-9, precision="double", isign=isign) as plan:
            plan.set_pts(*pts)
            out = plan.execute(f)
        ref = nudft_type2(pts, f, isign=isign)
        assert relative_l2_error(out, ref) < 1e-6

    @pytest.mark.parametrize("ndim", (1, 2, 3))
    @pytest.mark.parametrize("isign", (-1, +1))
    def test_type3_matches_exact(self, rng, ndim, isign):
        src = [rng.uniform(-1.0, 1.0, 300) for _ in range(ndim)]
        tgt = [rng.uniform(-20.0, 20.0, 120) for _ in range(ndim)]
        c = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        with Plan(3, ndim, eps=1e-9, precision="double", isign=isign) as plan:
            plan.set_pts(*src, **dict(zip("stu", tgt)))
            out = plan.execute(c)
        ref = nudft_type3(src, c, tgt, isign=isign)
        assert relative_l2_error(out, ref) < 1e-6

    def test_default_isign_unchanged(self, rng):
        """The per-type defaults reproduce the pre-isign behaviour exactly."""
        pts = _points(rng, 2)
        c = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        with Plan(1, (12, 12), eps=1e-9, precision="double") as plan:
            assert plan.isign == -1
            default = plan.set_pts(*pts).execute(c)
        with Plan(1, (12, 12), eps=1e-9, precision="double", isign=-1) as plan:
            explicit = plan.set_pts(*pts).execute(c)
        assert np.array_equal(default, explicit)
        with Plan(2, (12, 12), eps=1e-9, precision="double") as plan:
            assert plan.isign == +1
        with Plan(3, 2, eps=1e-9, precision="double") as plan:
            assert plan.isign == +1

    def test_opts_resolve_isign(self):
        assert Opts().resolve_isign(1) == -1
        assert Opts().resolve_isign(2) == 1
        assert Opts().resolve_isign(3) == 1
        assert Opts(isign=-1).resolve_isign(2) == -1
        assert Opts(isign=1.0).resolve_isign(1) == 1
        with pytest.raises(ValueError):
            Opts(isign=2)
        with pytest.raises(ValueError):
            Opts(isign=0)

    def test_simple_api_isign(self, rng):
        pts = _points(rng, 2)
        c = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        out = nufft2d1(*pts, c, (10, 10), eps=1e-9, precision="double", isign=+1)
        ref = nudft_type1(pts, c, (10, 10), isign=+1)
        assert relative_l2_error(out, ref) < 1e-6
        s, t = rng.uniform(-15, 15, (2, 80))
        src = [rng.uniform(-1, 1, 300) for _ in range(2)]
        out3 = nufft2d3(*src, c, s, t, eps=1e-9, precision="double", isign=-1)
        ref3 = nudft_type3(src, c, [s, t], isign=-1)
        assert relative_l2_error(out3, ref3) < 1e-6


class TestServiceIsign:
    """isign is part of the pool key and request validation."""

    def test_requests_with_opposite_signs_do_not_share_plans(self, rng):
        from repro import TransformRequest, TransformService

        x, y = _points(rng, 2)
        c = rng.standard_normal(300) + 1j * rng.standard_normal(300)
        with TransformService(n_devices=1) as svc:
            reqs = [
                TransformRequest(nufft_type=1, n_modes=(10, 10), data=c,
                                 x=x, y=y, eps=1e-9, precision="double",
                                 isign=isign)
                for isign in (-1, +1)
            ]
            assert reqs[0].plan_key() != reqs[1].plan_key()
            results = svc.run(reqs)
            assert all(r.error is None for r in results)
            assert relative_l2_error(
                results[1].output, nudft_type1([x, y], c, (10, 10), isign=+1)
            ) < 1e-6
            # Default-sign and explicit-default-sign requests share a key.
            default = TransformRequest(nufft_type=1, n_modes=(10, 10), data=c,
                                       x=x, y=y, eps=1e-9, precision="double")
            assert default.plan_key() == reqs[0].plan_key()

    def test_invalid_isign_rejected_at_front_door(self, rng):
        from repro import TransformRequest

        with pytest.raises(ValueError):
            TransformRequest(nufft_type=1, n_modes=(8, 8),
                             data=np.ones(4, dtype=complex),
                             x=np.zeros(4), y=np.zeros(4), isign=3)


class TestPrecisionInference:
    """Simple wrappers infer precision from the input dtype (cuFINUFFT style)."""

    def test_complex64_runs_single(self, rng):
        x = rng.uniform(-np.pi, np.pi, 200)
        c = (rng.standard_normal(200) + 1j * rng.standard_normal(200)
             ).astype(np.complex64)
        out = nufft1d1(x, c, 32)
        assert out.dtype == np.complex64

    def test_complex128_runs_double(self, rng):
        x = rng.uniform(-np.pi, np.pi, 200)
        c = rng.standard_normal(200) + 1j * rng.standard_normal(200)
        out = nufft1d1(x, c, 32)
        assert out.dtype == np.complex128
        # ... and actually delivers double-precision accuracy at tight eps.
        err = relative_l2_error(nufft1d1(x, c, 32, eps=1e-12),
                                nudft_type1([x], c, (32,)))
        assert err < 1e-10

    def test_float32_real_strengths_run_single(self, rng):
        x = rng.uniform(-np.pi, np.pi, 200)
        c = rng.standard_normal(200).astype(np.float32)
        assert nufft1d1(x, c, 32).dtype == np.complex64

    def test_explicit_precision_wins(self, rng):
        x = rng.uniform(-np.pi, np.pi, 200)
        c = (rng.standard_normal(200) + 1j * rng.standard_normal(200)
             ).astype(np.complex64)
        assert nufft1d1(x, c, 32, precision="double").dtype == np.complex128
        c128 = c.astype(np.complex128)
        assert nufft1d1(x, c128, 32, precision="single").dtype == np.complex64

    def test_type2_infers_from_modes(self, rng):
        x, y = rng.uniform(-np.pi, np.pi, (2, 150))
        f64 = (rng.standard_normal((12, 12))
               + 1j * rng.standard_normal((12, 12))).astype(np.complex64)
        assert nufft2d2(x, y, f64).dtype == np.complex64
        assert nufft2d2(x, y, f64.astype(np.complex128)).dtype == np.complex128

    def test_type3_infers_from_strengths(self, rng):
        src = [rng.uniform(-1, 1, 150) for _ in range(2)]
        s, t = rng.uniform(-10, 10, (2, 60))
        c = (rng.standard_normal(150) + 1j * rng.standard_normal(150)
             ).astype(np.complex64)
        assert nufft2d3(*src, c, s, t).dtype == np.complex64

    def test_integer_strengths_keep_default(self, rng):
        x = rng.uniform(-np.pi, np.pi, 100)
        c = np.ones(100, dtype=np.int64)
        # Unrecognized dtypes fall back to the Opts default (single).
        assert nufft1d1(x, c, 16).dtype == np.complex64
