"""Tests of the async micro-batching front-end: bounded windows, per-tenant
fair share, priority shedding and latency-percentile accounting."""

import numpy as np
import pytest

from repro.service import (
    AsyncFrontend,
    FairShedPolicy,
    ServiceOverloadedError,
    TransformRequest,
    TransformService,
)

RNG = np.random.default_rng(20260807)
M = 3000
X = RNG.uniform(-np.pi, np.pi, M)
X2 = RNG.uniform(-np.pi, np.pi, M)  # a second point set (second signature)


def _data(rng):
    return rng.normal(size=M) + 1j * rng.normal(size=M)


def _request(rng, x=X, tenant="default", priority=0, n_modes=(64,)):
    return TransformRequest(nufft_type=1, n_modes=n_modes, data=_data(rng),
                            x=x, tenant=tenant, priority=priority)


def _frontend(**kwargs):
    service_kwargs = kwargs.pop("service_kwargs", {})
    service_kwargs.setdefault("charge_plan_creation", False)
    return AsyncFrontend(TransformService(**service_kwargs), **kwargs)


# --------------------------------------------------------------------------- #
# request model: tenant + integral priority (the PR's bugfix)
# --------------------------------------------------------------------------- #
class TestRequestQoSFields:
    def test_priority_rejects_fractional(self):
        with pytest.raises(ValueError, match="integral"):
            TransformRequest(nufft_type=1, n_modes=(8,), data=np.zeros(4),
                             x=np.ones(4), priority=2.5)

    def test_priority_rejects_bool(self):
        with pytest.raises(ValueError, match="integral"):
            TransformRequest(nufft_type=1, n_modes=(8,), data=np.zeros(4),
                             x=np.ones(4), priority=True)

    def test_priority_accepts_integral_float_and_negative(self):
        req = TransformRequest(nufft_type=1, n_modes=(8,), data=np.zeros(4),
                               x=np.ones(4), priority=3.0)
        assert req.priority == 3 and isinstance(req.priority, int)
        req = TransformRequest(nufft_type=1, n_modes=(8,), data=np.zeros(4),
                               x=np.ones(4), priority=-2)
        assert req.priority == -2

    def test_tenant_validation_and_default(self):
        req = TransformRequest(nufft_type=1, n_modes=(8,), data=np.zeros(4),
                               x=np.ones(4))
        assert req.tenant == "default"
        with pytest.raises(ValueError, match="tenant"):
            TransformRequest(nufft_type=1, n_modes=(8,), data=np.zeros(4),
                             x=np.ones(4), tenant="")

    def test_signature_groups_by_geometry_and_points(self):
        rng = np.random.default_rng(0)
        a = _request(rng)
        b = _request(rng)                       # same geometry + points
        c = _request(rng, x=X2)                 # different points
        d = _request(rng, n_modes=(128,))       # different geometry
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()
        assert a.signature() != d.signature()
        assert a.signature_label() == b.signature_label()
        assert a.signature_label() != c.signature_label()

    def test_signature_ignores_tenant_and_priority(self):
        rng = np.random.default_rng(0)
        a = _request(rng, tenant="alice", priority=5)
        b = _request(rng, tenant="bob", priority=-1)
        assert a.signature() == b.signature()


# --------------------------------------------------------------------------- #
# windows: fusion, bit identity, close conditions
# --------------------------------------------------------------------------- #
class TestBatchingWindow:
    def test_windowed_results_bit_identical_to_per_request(self):
        """The core fusion property: a fused n_trans block returns exactly
        the bytes per-request submission would, not merely close ones."""
        rng = np.random.default_rng(7)
        requests = [_request(rng, tenant=f"t{k % 3}") for k in range(12)]

        fe = _frontend(window_s=1e-3, max_batch=12)
        for k, req in enumerate(requests):
            fe.submit(req, at_s=5e-5 * k)
        fused = fe.drain()
        fe.close()

        fe1 = _frontend(window_s=0.0, max_batch=1)
        for k, req in enumerate(requests):
            fe1.submit(TransformRequest(
                nufft_type=1, n_modes=(64,), data=req.data, x=X,
            ), at_s=5e-5 * k)
        singles = fe1.drain()
        fe1.close()

        assert all(r.block_size == 12 for r in fused)
        assert all(r.block_size == 1 for r in singles)
        for a, b in zip(fused, singles):
            assert a.output.dtype == b.output.dtype
            assert np.array_equal(a.output, b.output)

    def test_window_closes_at_max_batch(self):
        rng = np.random.default_rng(8)
        fe = _frontend(window_s=1.0, max_batch=4)  # huge window: size closes it
        for _ in range(8):
            fe.submit(_request(rng), at_s=0.0)
        results = fe.drain()
        fe.close()
        assert [r.block_size for r in results] == [4] * 8
        assert fe.windows_dispatched == 2

    def test_window_closes_at_deadline(self):
        rng = np.random.default_rng(9)
        fe = _frontend(window_s=1e-3, max_batch=100)
        fe.submit(_request(rng), at_s=0.0)
        fe.submit(_request(rng), at_s=5e-4)   # inside the window
        fe.submit(_request(rng), at_s=5e-3)   # after it closed
        results = fe.drain()
        fe.close()
        assert [r.block_size for r in results] == [2, 2, 1]
        # batch_wait is bounded by the window: the opener waited the full
        # window_s, the joiner half of it, the straggler opened its own.
        assert results[0].batch_wait_s == pytest.approx(1e-3)
        assert results[1].batch_wait_s == pytest.approx(5e-4)

    def test_distinct_signatures_never_fuse(self):
        rng = np.random.default_rng(10)
        fe = _frontend(window_s=1e-2, max_batch=8)
        for _ in range(3):
            fe.submit(_request(rng), at_s=0.0)
            fe.submit(_request(rng, x=X2), at_s=0.0)
        results = fe.drain()
        fe.close()
        assert [r.block_size for r in results] == [3] * 6
        assert fe.windows_dispatched == 2

    def test_max_batch_one_is_per_request_dispatch(self):
        rng = np.random.default_rng(11)
        fe = _frontend(window_s=1e-2, max_batch=1)
        for _ in range(4):
            fe.submit(_request(rng), at_s=0.0)
        results = fe.drain()
        fe.close()
        assert [r.block_size for r in results] == [1] * 4
        assert fe.requests_fused == 0

    def test_windowed_throughput_beats_per_request(self):
        """Fusion must shrink the modelled makespan of a batchable trace.

        A saturating same-signature burst: windows fill to max_batch and
        dispatch immediately, so the comparison measures fusion's per-execute
        amortization (fixed launch/transfer overheads paid once per block),
        not window-deadline waiting.
        """
        rng = np.random.default_rng(12)
        requests = [_request(rng) for _ in range(64)]

        makespans = {}
        for name, max_batch in (("windowed", 16), ("per_request", 1)):
            fe = _frontend(window_s=2e-3, max_batch=max_batch)
            for req in requests:
                fe.submit(TransformRequest(
                    nufft_type=1, n_modes=(64,), data=req.data, x=X,
                ), at_s=0.0)
            fe.drain()
            makespans[name] = fe.service.makespan()
            fe.close()
        assert makespans["windowed"] < 0.5 * makespans["per_request"]


# --------------------------------------------------------------------------- #
# fair share
# --------------------------------------------------------------------------- #
class TestFairShare:
    def test_light_tenant_never_starves_under_flood(self):
        """Adversarial skew: one tenant floods the front door; a light
        tenant's occasional requests must still be admitted promptly."""
        rng = np.random.default_rng(13)
        fe = _frontend(window_s=5e-4, max_batch=8)
        for _ in range(160):
            fe.submit(_request(rng, tenant="heavy"), at_s=0.0)
        for k in range(10):
            fe.submit(_request(rng, x=X2, tenant="light"), at_s=1e-3 * k)
        results = fe.drain()
        fe.close()

        light = [r for r in results if r.tenant == "light"]
        heavy = [r for r in results if r.tenant == "heavy"]
        assert len(light) == 10 and all(r.error is None for r in light)
        light_wait = max(r.queue_wait_s for r in light)
        heavy_wait = max(r.queue_wait_s for r in heavy)
        # The light tenant is admitted within one DRR round of credit
        # freeing; the flooding tenant carries the backlog.
        assert light_wait <= 0.5 * heavy_wait
        assert light_wait <= 2e-3

    def test_weighted_tenant_waits_less(self):
        rng = np.random.default_rng(14)
        fe = _frontend(window_s=5e-4, max_batch=4, max_inflight=4,
                       weights={"gold": 4.0})
        for _ in range(60):
            fe.submit(_request(rng, tenant="gold"), at_s=0.0)
            fe.submit(_request(rng, x=X2, tenant="bronze"), at_s=0.0)
        results = fe.drain()
        fe.close()
        mean = lambda rs: float(np.mean([r.queue_wait_s for r in rs]))  # noqa: E731
        gold = mean([r for r in results if r.tenant == "gold"])
        bronze = mean([r for r in results if r.tenant == "bronze"])
        assert gold < bronze

    def test_single_tenant_fifo_order_preserved(self):
        rng = np.random.default_rng(15)
        fe = _frontend(window_s=0.0, max_batch=1)
        seqs = [fe.submit(_request(rng), at_s=1e-4 * k) for k in range(6)]
        results = fe.drain()
        fe.close()
        assert seqs == sorted(seqs)
        assert [r.error for r in results] == [None] * 6
        waits = [r.queue_wait_s for r in results]
        assert all(w >= 0.0 for w in waits)


# --------------------------------------------------------------------------- #
# shedding
# --------------------------------------------------------------------------- #
class TestFairShedding:
    def test_overflow_sheds_lowest_priority_first(self):
        """No higher-priority request is ever dropped while a lower-priority
        request of the same tenant survives."""
        rng = np.random.default_rng(16)
        priorities = [3, 1, 2, 0, 2, 1, 3, 0, 1, 2, 0, 3]
        fe = _frontend(window_s=5e-4, max_batch=4, max_inflight=1,
                       shed=FairShedPolicy(max_pending=4))
        for p in priorities:
            fe.submit(_request(rng, tenant="t", priority=p), at_s=0.0)
        results = fe.drain()
        fe.close()

        served = [p for r, p in zip(results, priorities) if r.error is None]
        shed = [p for r, p in zip(results, priorities) if r.error is not None]
        assert shed, "scenario must actually overflow"
        assert min(served) >= max(shed)
        assert all(isinstance(r.error, ServiceOverloadedError)
                   for r in results if r.error is not None)

    def test_shedding_is_per_tenant(self):
        """A flooding tenant's overflow sheds its own work only."""
        rng = np.random.default_rng(17)
        fe = _frontend(window_s=5e-4, max_batch=4, max_inflight=1,
                       shed=FairShedPolicy(max_pending=3))
        for _ in range(20):
            fe.submit(_request(rng, tenant="flood", priority=5), at_s=0.0)
        for _ in range(3):
            fe.submit(_request(rng, x=X2, tenant="calm", priority=0), at_s=0.0)
        results = fe.drain()
        fe.close()

        calm = [r for r in results if r.tenant == "calm"]
        assert all(r.error is None for r in calm)
        stats = fe.service.stats
        assert stats.shed_by_tenant.get("flood", 0) > 0
        assert "calm" not in stats.shed_by_tenant
        assert stats.requests_shed == stats.shed_by_tenant["flood"]

    def test_incoming_lowest_is_shed_unseated(self):
        rng = np.random.default_rng(18)
        fe = _frontend(window_s=5e-4, max_batch=2, max_inflight=1,
                       shed=FairShedPolicy(max_pending=2))
        fe.submit(_request(rng, priority=2), at_s=0.0)
        fe.submit(_request(rng, priority=2), at_s=0.0)
        fe.submit(_request(rng, priority=2), at_s=0.0)   # fills the queue
        low = fe.submit(_request(rng, priority=1), at_s=0.0)
        results = fe.drain()
        fe.close()
        assert results[low].error is not None
        assert sum(r.error is not None for r in results) == 1

    def test_shed_policy_validation(self):
        with pytest.raises(ValueError):
            FairShedPolicy(max_pending=0)


# --------------------------------------------------------------------------- #
# latency accounting
# --------------------------------------------------------------------------- #
class TestLatencyAccounting:
    def test_percentiles_present_and_ordered(self):
        rng = np.random.default_rng(19)
        fe = _frontend(window_s=1e-3, max_batch=8)
        for k in range(24):
            fe.submit(_request(rng, tenant=["a", "b"][k % 2]), at_s=2e-4 * k)
        results = fe.drain()

        for tenant in ("a", "b"):
            summary = fe.tenant_latency(tenant)
            for kind in ("queue_wait", "batch_wait", "e2e"):
                entry = summary[kind]
                assert entry["n"] == 12
                assert 0.0 <= entry["p50"] <= entry["p95"] <= entry["p99"]
                assert entry["p99"] <= entry["max"] < np.inf
        by_sig = fe.service.stats.latency_percentiles("signature")
        assert len(by_sig) == 1
        (sig_summary,) = by_sig.values()
        assert sig_summary["e2e"]["n"] == 24
        # result fields agree with the definition of each latency kind
        for r in results:
            assert r.e2e_s == pytest.approx(
                r.queue_wait_s + r.batch_wait_s
                + (r.e2e_s - r.queue_wait_s - r.batch_wait_s))
            assert r.e2e_s >= r.queue_wait_s + r.batch_wait_s - 1e-12
        fe.close()

    def test_report_carries_qos_blocks(self):
        rng = np.random.default_rng(20)
        fe = _frontend(window_s=1e-3, max_batch=8)
        for _ in range(8):
            fe.submit(_request(rng, tenant="alice"), at_s=0.0)
        fe.drain()
        report = fe.report()
        assert "AsyncFrontend" in report
        assert "qos[tenant=alice]" in report
        assert "p99" in report
        assert "pool[t1:64:" in report
        fe.close()

    def test_per_signature_pool_breakdown(self):
        rng = np.random.default_rng(21)
        fe = _frontend(window_s=0.0, max_batch=1)
        for _ in range(3):
            fe.submit(_request(rng), at_s=0.0)          # signature A x3
        fe.submit(_request(rng, x=X2), at_s=0.0)        # signature B x1
        fe.drain()
        pool = fe.service.stats.pool_by_signature
        assert len(pool) == 2
        counts = sorted((c["hits"], c["misses"], c["setpts_skipped"])
                        for c in pool.values())
        # signature B: 1 miss; signature A: 1 miss then 2 hits with the
        # exact point set cached, so both set_pts executions are skipped.
        assert counts == [(0, 1, 0), (2, 1, 2)]
        fe.close()

    def test_record_latency_rejects_unknown_kind(self):
        from repro.service import ServiceStats
        stats = ServiceStats()
        with pytest.raises(ValueError, match="kind"):
            stats.record_latency("tenant", "t", "tail_wait", 1.0)

    def test_advance_time_is_monotonic(self):
        service = TransformService()
        service.advance_time(0.5)
        assert service.host_time == pytest.approx(0.5)
        service.advance_time(0.25)   # backwards: no-op
        assert service.host_time == pytest.approx(0.5)
        service.close()


# --------------------------------------------------------------------------- #
# front-end lifecycle and validation
# --------------------------------------------------------------------------- #
class TestFrontendLifecycle:
    def test_constructor_validation(self):
        service = TransformService()
        with pytest.raises(ValueError):
            AsyncFrontend(service, window_s=-1.0)
        with pytest.raises(ValueError):
            AsyncFrontend(service, max_batch=0)
        with pytest.raises(ValueError):
            AsyncFrontend(service, max_inflight=0)
        with pytest.raises(ValueError):
            AsyncFrontend(service, quantum=0.0)
        with pytest.raises(ValueError):
            AsyncFrontend(service, weights={"t": 0.0})
        with pytest.raises(TypeError):
            AsyncFrontend(service, shed=object())
        with pytest.raises(TypeError):
            AsyncFrontend(object())
        service.close()

    def test_close_refuses_undrained_work(self):
        rng = np.random.default_rng(22)
        fe = _frontend()
        fe.submit(_request(rng), at_s=0.0)
        with pytest.raises(RuntimeError, match="drain"):
            fe.close()
        fe.drain()
        fe.close()
        fe.close()  # idempotent
        with pytest.raises(RuntimeError):
            fe.submit(_request(rng))

    def test_context_manager_and_incremental_drain(self):
        rng = np.random.default_rng(23)
        with _frontend(window_s=0.0, max_batch=2) as fe:
            fe.submit(_request(rng), at_s=0.0)
            fe.submit(_request(rng), at_s=0.0)
            first = fe.drain()
            assert len(first) == 2
            fe.submit(_request(rng), at_s=fe.now + 1e-3)
            second = fe.drain()
            assert len(second) == 1 and second[0].error is None

    def test_submit_rejects_mixed_and_bad_args(self):
        rng = np.random.default_rng(24)
        fe = _frontend()
        req = _request(rng)
        with pytest.raises(ValueError, match="not both"):
            fe.submit(req, nufft_type=1)
        with pytest.raises(TypeError):
            fe.submit(object())
        with pytest.raises(ValueError):
            fe.submit(req, at_s=-1.0)
        fe.drain()
        fe.close()
