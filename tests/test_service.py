"""Tests of the serving layer: streams, device fleet, plan pool and the
TransformService (pooling, coalescing, sharding, MTIP routing)."""

import numpy as np
import pytest

from repro import Plan
from repro.cluster import DeviceFleet, run_weak_scaling_fleet
from repro.cluster.node import CORI_GPU_NODE
from repro.gpu import Device
from repro.mtip import MTIPConfig, MTIPReconstruction
from repro.service import PlanPool, TransformRequest, TransformService


# --------------------------------------------------------------------------- #
# streams / events
# --------------------------------------------------------------------------- #
class TestStreams:
    def test_double_buffering_overlap(self):
        dev = Device()
        s0, s1 = dev.create_stream(), dev.create_stream()
        for s in (s0, s1):
            s.enqueue("h2d", 1.0)
            s.enqueue("exec", 2.0)
            s.enqueue("d2h", 0.5)
        # Serial would be 7.0 s; with s1's h2d hidden under s0's exec the
        # makespan is 1 (h2d) + 2 + 2 (exec serializes) + 0.5 = 5.5 s.
        assert dev.timeline_makespan() == pytest.approx(5.5)
        assert dev.busy_seconds["exec"] == pytest.approx(4.0)
        assert 0.7 < dev.utilization("exec") < 0.75

    def test_in_stream_ordering_and_events(self):
        dev = Device()
        s0, s1 = dev.create_stream(), dev.create_stream()
        ev = s0.enqueue("exec", 1.0)
        assert ev.time == pytest.approx(1.0)
        s1.wait_event(ev)
        done = s1.enqueue("d2h", 0.5)
        assert done.time == pytest.approx(1.5)
        assert s1.synchronize() == pytest.approx(1.5)

    def test_engine_validation_and_reset(self):
        dev = Device()
        s = dev.create_stream()
        with pytest.raises(ValueError):
            s.enqueue("compute", 1.0)
        with pytest.raises(ValueError):
            s.enqueue("exec", -1.0)
        s.enqueue("exec", 1.0)
        dev.reset_timeline()
        assert dev.timeline_makespan() == 0.0
        assert dev.streams == [s] and len(s.ops) == 0


class TestDeviceFleet:
    def test_least_loaded_round_robins(self):
        fleet = DeviceFleet(n_devices=3)
        picked = []
        for _ in range(3):
            dev = fleet.least_loaded()
            fleet.next_stream(dev).enqueue("exec", 1.0)
            picked.append(dev.device_id)
        assert picked == [0, 1, 2]
        assert fleet.makespan() == pytest.approx(1.0)
        assert fleet.utilization() == pytest.approx([1.0, 1.0, 1.0])

    def test_from_node_and_reset(self):
        fleet = DeviceFleet.from_node(CORI_GPU_NODE)
        assert fleet.n_devices == 8
        fleet.next_stream(fleet.device(0)).enqueue("h2d", 1.0)
        fleet.reset()
        assert fleet.makespan() == 0.0
        assert all(len(d.streams) == fleet.streams_per_device for d in fleet.devices)
        with pytest.raises(ValueError):
            DeviceFleet(n_devices=0)


# --------------------------------------------------------------------------- #
# requests
# --------------------------------------------------------------------------- #
class TestTransformRequest:
    def test_front_door_validation(self):
        good = dict(nufft_type=1, n_modes=(16,), data=np.ones(4, complex),
                    x=np.array([0.1, 0.2, 0.3, 0.4]))
        TransformRequest(**good)
        with pytest.raises(ValueError):
            TransformRequest(**{**good, "x": np.array([0.1, np.nan, 0.3, 0.4])})
        with pytest.raises(ValueError):
            TransformRequest(**{**good, "data": np.ones(5, complex)})
        with pytest.raises(ValueError):
            TransformRequest(**{**good, "eps": 0.0})
        with pytest.raises(ValueError):  # 1D request must not pass y
            TransformRequest(**{**good, "y": np.ones(4)})
        with pytest.raises(ValueError):  # targets only for type 3
            TransformRequest(**{**good, "s": np.ones(4)})
        with pytest.raises(ValueError):  # type 3 requires targets
            TransformRequest(nufft_type=3, n_modes=1, data=np.ones(4, complex),
                             x=np.array([0.1, 0.2, 0.3, 0.4]))

    def test_grouping_keys(self):
        x = np.array([0.1, 0.2, 0.3])
        a = TransformRequest(1, (16,), np.ones(3, complex), x=x)
        b = TransformRequest(1, (16,), 2 * np.ones(3, complex), x=x.copy())
        c = TransformRequest(1, (16,), np.ones(3, complex), x=x + 0.1)
        d = TransformRequest(1, (32,), np.ones(3, complex), x=x)
        assert a.plan_key() == b.plan_key() == c.plan_key()
        assert a.points_key() == b.points_key()
        assert a.points_key() != c.points_key()
        assert a.plan_key() != d.plan_key()


# --------------------------------------------------------------------------- #
# plan pool
# --------------------------------------------------------------------------- #
class TestPlanPool:
    def test_lru_eviction_destroys(self):
        pool = PlanPool(max_plans=2)
        plans = [Plan(1, (16,)) for _ in range(3)]
        entries = [pool.make_entry(p, ("k", i)) for i, p in enumerate(plans)]
        for e in entries:
            pool.release(e)
        assert pool.n_idle == 2
        assert plans[0]._destroyed  # oldest evicted
        assert not plans[1]._destroyed and not plans[2]._destroyed
        pool.clear()
        assert all(p._destroyed for p in plans)

    def test_zero_capacity_pools_nothing(self):
        pool = PlanPool(max_plans=0)
        plan = Plan(1, (16,))
        pool.release(pool.make_entry(plan, ("k",)))
        assert plan._destroyed
        assert pool.lease(("k",)) is None


# --------------------------------------------------------------------------- #
# the service
# --------------------------------------------------------------------------- #
@pytest.fixture
def rng():
    return np.random.default_rng(42)


def _submit_mix(service, coords, datas, n_modes=(24, 24), tag_prefix=""):
    x, y = coords
    for i, c in enumerate(datas):
        service.submit(nufft_type=1, n_modes=n_modes, data=c, x=x, y=y,
                       tag=f"{tag_prefix}{i}")


class TestTransformService:
    def test_coalescing_matches_sequential(self, rng):
        m = 600
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        datas = [rng.standard_normal(m) + 1j * rng.standard_normal(m)
                 for _ in range(6)]
        with Plan(1, (24, 24), eps=1e-6) as plan:
            plan.set_pts(x, y)
            refs = [plan.execute(c.astype(np.complex64)) for c in datas]

        with TransformService(n_devices=1) as service:
            _submit_mix(service, (x, y), datas)
            results = service.flush()
            assert all(r.error is None for r in results)
            assert [r.tag for r in results] == [str(i) for i in range(6)]
            for r, ref in zip(results, refs):
                np.testing.assert_allclose(r.output, ref, rtol=1e-5, atol=1e-6)
            assert results[0].block_size == 6
            assert service.stats.blocks_executed == 1

    def test_type2_and_mixed_geometries_coalesce_separately(self, rng):
        m = 400
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        modes = rng.standard_normal((24, 24)) + 1j * rng.standard_normal((24, 24))
        with TransformService() as service:
            service.submit(nufft_type=2, n_modes=(24, 24), data=modes, x=x, y=y)
            service.submit(nufft_type=1, n_modes=(24, 24),
                           data=np.ones(m, complex), x=x, y=y)
            service.submit(nufft_type=2, n_modes=(24, 24), data=2 * modes, x=x, y=y)
            results = service.flush()
            assert all(r.error is None for r in results)
            # the two type-2 requests fuse; the type-1 is its own block
            assert results[0].block_size == 2 and results[2].block_size == 2
            assert results[1].block_size == 1
            np.testing.assert_allclose(results[2].output, 2 * results[0].output,
                                       rtol=1e-5)

    def test_plan_cache_hit_miss_and_setpts_reuse(self, rng):
        m = 300
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        data = rng.standard_normal(m) + 1j * rng.standard_normal(m)
        with TransformService() as service:
            service.submit(nufft_type=1, n_modes=(16, 16), data=data, x=x, y=y)
            service.flush()
            assert service.stats.plan_cache_misses == 1
            assert service.stats.plan_cache_hits == 0

            service.submit(nufft_type=1, n_modes=(16, 16), data=data, x=x, y=y)
            r2 = service.flush()[0]
            assert r2.plan_reused and r2.setpts_reused
            assert service.stats.plan_cache_hits == 1
            assert service.stats.setpts_skipped == 1

            # different geometry -> miss
            service.submit(nufft_type=1, n_modes=(32, 32), data=data, x=x, y=y)
            r3 = service.flush()[0]
            assert not r3.plan_reused
            assert service.stats.plan_cache_misses == 2

    def test_fleet_sharding_matches_single_device(self, rng):
        m = 500
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        datas = [rng.standard_normal(m) + 1j * rng.standard_normal(m)
                 for _ in range(16)]

        with TransformService(n_devices=1) as single:
            _submit_mix(single, (x, y), datas)
            seq = single.flush()
        with TransformService(n_devices=4, shard_min_block=4) as fleet:
            _submit_mix(fleet, (x, y), datas)
            sharded = fleet.flush()
            devices_used = {r.device_id for r in sharded}
            assert len(devices_used) == 4
            assert fleet.stats.shards_executed == 4
            for a, b in zip(seq, sharded):
                np.testing.assert_allclose(b.output, a.output, rtol=1e-5, atol=1e-6)

    def test_unpooled_baseline_replans_every_request(self, rng):
        m = 200
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        datas = [np.ones(m, complex) for _ in range(4)]
        with TransformService(pool_plans=False, coalesce=False) as service:
            _submit_mix(service, (x, y), datas)
            results = service.flush()
            assert all(r.block_size == 1 for r in results)
            assert service.stats.plans_created == 4
            assert service.stats.plan_cache_hits == 0

    def test_pooling_beats_unpooled_modelled_throughput(self, rng):
        m = 400
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        datas = [rng.standard_normal(m) + 1j * rng.standard_normal(m)
                 for _ in range(8)]
        throughput = {}
        for name, kwargs in (("unpooled", dict(pool_plans=False, coalesce=False)),
                             ("pooled", dict(pool_plans=True, coalesce=True))):
            with TransformService(**kwargs) as service:
                _submit_mix(service, (x, y), datas)
                service.flush()
                service.reset_metrics()
                _submit_mix(service, (x, y), datas)
                service.flush()
                throughput[name] = service.throughput_rps()
        # the acceptance threshold of the serving layer: >= 2x from plan
        # reuse + coalescing over per-request planning
        assert throughput["pooled"] >= 2.0 * throughput["unpooled"]

    def test_failure_isolation(self, rng, monkeypatch):
        m = 100
        x = rng.uniform(-np.pi, np.pi, m)
        with TransformService() as service:
            real_make = service._make_plan

            def exploding_make(req, n_trans, device):
                if req.n_modes == (8,):
                    raise RuntimeError("boom")
                return real_make(req, n_trans, device)

            monkeypatch.setattr(service, "_make_plan", exploding_make)
            service.submit(nufft_type=1, n_modes=(8,), data=np.ones(m, complex), x=x)
            service.submit(nufft_type=1, n_modes=(16,), data=np.ones(m, complex), x=x)
            bad, good = service.flush()
            assert isinstance(bad.error, RuntimeError) and bad.output is None
            assert good.error is None and good.output.shape == (16,)
            assert service.stats.requests_failed == 1
            assert service.stats.requests_served == 1

    def test_submit_validates_eagerly(self):
        with TransformService() as service:
            with pytest.raises(ValueError):
                service.submit(nufft_type=1, n_modes=(16,),
                               data=np.ones(3, complex),
                               x=np.array([0.1, np.inf, 0.2]))
            assert service.stats.requests_submitted == 0
            assert service.flush() == []

    def test_lease_release_lifecycle(self):
        service = TransformService()
        plan = service.lease_plan(2, (16, 16), eps=1e-6, precision="double")
        assert service.stats.lease_misses == 1
        with pytest.raises(RuntimeError):
            service.close()  # outstanding lease
        service.release_plan(plan)
        plan2 = service.lease_plan(2, (16, 16), eps=1e-6, precision="double")
        assert plan2 is plan
        assert service.stats.lease_hits == 1
        with pytest.raises(ValueError):
            service.release_plan(Plan(1, (16,)))
        service.release_plan(plan2)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(nufft_type=1, n_modes=(16,), data=np.ones(1, complex),
                           x=np.array([0.1]))

    def test_reset_metrics_keeps_pool_warm(self, rng):
        m = 200
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        with TransformService() as service:
            _submit_mix(service, (x, y), [np.ones(m, complex)])
            service.flush()
            service.reset_metrics()
            assert service.makespan() == 0.0
            _submit_mix(service, (x, y), [np.ones(m, complex)])
            r = service.flush()[0]
            assert r.plan_reused and r.setpts_reused


class TestFusedLaunchModel:
    def test_batched_exec_cheaper_than_looped(self, rng):
        """A fused n_trans block models below n_trans x the single cost
        (single launch, single fused pass) but above the single cost."""
        m = 4000
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        c = rng.standard_normal((8, m)) + 1j * rng.standard_normal((8, m))
        with Plan(1, (32, 32), eps=1e-6) as single, \
                Plan(1, (32, 32), n_trans=8, eps=1e-6) as batched:
            single.set_pts(x, y)
            batched.set_pts(x, y)
            single.execute(c[0].astype(np.complex64))
            t1 = single.timings()["exec"]
            batched.execute(c.astype(np.complex64))
            t8 = batched.timings()["exec"]
        assert t8 > t1             # the work still scales with the batch
        assert t8 < 8.0 * t1       # but the launches do not


# --------------------------------------------------------------------------- #
# fleet weak scaling + MTIP routing
# --------------------------------------------------------------------------- #
class TestFleetWeakScaling:
    def test_near_linear_efficiency(self):
        result = run_weak_scaling_fleet(
            nufft_type=2, n_modes=(20, 20, 20), n_points_per_rank=4000,
            requests_per_device=3, max_devices=4, precision="double",
        )
        eff = result.efficiency()
        assert eff[0] == pytest.approx(1.0)
        assert all(e >= 0.7 for e in eff)          # near-linear
        assert all(e1 >= e2 for e1, e2 in zip(eff, eff[1:]))  # monotone bend
        rows = result.rows()
        assert [r[0] for r in rows] == [1, 2, 3, 4]
        assert rows[-1][1] == 4 * 2 * 3  # devices x rounds x requests/device


class TestMTIPThroughService:
    def test_equivalent_and_pool_shared(self):
        cfg = MTIPConfig(n_modes=8, n_pix=6, n_images=4, n_candidates=6,
                         phasing_iterations=8)
        plain, _ = MTIPReconstruction(cfg).run(n_iterations=1)
        with TransformService(n_devices=2) as service:
            with MTIPReconstruction(cfg, service=service) as recon:
                served, _ = recon.run(n_iterations=1)
            first_misses = service.stats.lease_misses
            with MTIPReconstruction(cfg, service=service) as recon2:
                recon2.run(n_iterations=1)
            assert service.stats.lease_misses == first_misses  # all pool hits
            assert service.stats.lease_hits >= 3
        np.testing.assert_allclose(served, plain, rtol=1e-10, atol=1e-12)

    def test_device_and_service_mutually_exclusive(self):
        with TransformService() as service:
            with pytest.raises(ValueError):
                MTIPReconstruction(MTIPConfig(), device=Device(), service=service)


class TestReviewRegressions:
    """Pins for review findings: request identity comparison, close() not
    dropping queued work, type-3 fleet scaling, shared plan-key builder."""

    def test_requests_compare_by_identity(self):
        x = np.array([0.1, 0.2, 0.3])
        a = TransformRequest(1, (16,), np.ones(3, complex), x=x)
        b = TransformRequest(1, (16,), np.ones(3, complex), x=x)
        assert a == a and a != b          # no element-wise ValueError
        assert a in [a, b]

    def test_close_refuses_to_drop_queued_requests(self):
        service = TransformService()
        service.submit(nufft_type=1, n_modes=(16,), data=np.ones(2, complex),
                       x=np.array([0.1, 0.2]))
        with pytest.raises(RuntimeError, match="not served"):
            service.close()
        service.flush()
        service.close()

    def test_fleet_scaling_supports_type3(self):
        result = run_weak_scaling_fleet(
            nufft_type=3, n_modes=(32,), n_points_per_rank=400,
            requests_per_device=2, max_devices=2, precision="double",
        )
        assert len(result.points) == 2
        assert result.points[1].n_requests == 2 * 2 * 2

    def test_lease_and_request_paths_share_pool_keys(self, rng):
        m = 150
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        with TransformService() as service:
            plan = service.lease_plan(1, (16, 16), eps=1e-6, precision="single")
            service.release_plan(plan)
            # a coalesced request with the same geometry must hit that plan
            service.submit(nufft_type=1, n_modes=(16, 16),
                           data=np.ones(m, complex), x=x, y=y,
                           eps=1e-6, precision="single")
            result = service.flush()[0]
            assert result.plan_reused
            assert service.stats.plan_cache_hits == 1

    def test_release_of_destroyed_leased_plan_not_pooled(self, rng):
        # A lessee may drive the plan as a context manager; releasing the
        # destroyed plan must not poison the pool for the next request.
        m = 120
        x, y = rng.uniform(-np.pi, np.pi, (2, m))
        with TransformService() as service:
            plan = service.lease_plan(1, (16, 16), eps=1e-6, precision="single")
            plan.destroy()
            service.release_plan(plan)
            assert service.pool.n_idle == 0
            service.submit(nufft_type=1, n_modes=(16, 16),
                           data=np.ones(m, complex), x=x, y=y,
                           eps=1e-6, precision="single")
            result = service.flush()[0]
            assert result.error is None and not result.plan_reused

    def test_stream_op_log_is_bounded(self):
        from repro.gpu.device import Stream
        dev = Device()
        s = dev.create_stream()
        for _ in range(Stream.MAX_OPS_LOGGED + 50):
            s.enqueue("exec", 1e-9)
        assert len(s.ops) == Stream.MAX_OPS_LOGGED
