"""Tests of the spreading / interpolation numerics and their cost profiles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.binsort import bin_sort, make_subproblems, to_grid_coordinates
from repro.core.interp import interp_gm, interp_gm_sort, interp_kernel_profiles, interpolate
from repro.core.options import Precision, SpreadMethod
from repro.core.spread import (
    compute_kernel_stencil,
    spread,
    spread_gm,
    spread_gm_sort,
    spread_kernel_profiles,
    spread_sm,
    spread_sm_kernel_profiles,
)
from repro.gpu.device import V100_SPEC
from repro.kernels import ESKernel


def _setup(rng, fine_shape, m, bins=None, cluster=False):
    ndim = len(fine_shape)
    if cluster:
        coords = [rng.uniform(0, 8 * 2 * np.pi / n, m) for n in fine_shape]
    else:
        coords = [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]
    grid_coords = [to_grid_coordinates(c, n) for c, n in zip(coords, fine_shape)]
    if bins is None:
        bins = (32, 32) if ndim == 2 else (16, 16, 2)
    sort = bin_sort(grid_coords, fine_shape, bins)
    c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    return grid_coords, sort, c


# --------------------------------------------------------------------------- #
# stencil
# --------------------------------------------------------------------------- #
class TestStencil:
    def test_covers_w_nearest_nodes(self):
        kernel = ESKernel.from_tolerance(1e-5)  # w = 6
        g = np.array([10.3])
        i0, vals = compute_kernel_stencil(g, 64, kernel)
        assert i0[0] == 8  # ceil(10.3 - 3) = 8; nodes 8..13 surround 10.3
        assert vals.shape == (1, 6)
        assert np.all(vals > 0)

    def test_point_exactly_on_node(self):
        kernel = ESKernel.from_tolerance(1e-2)  # w = 3
        i0, vals = compute_kernel_stencil(np.array([5.0]), 32, kernel)
        # distances are {5 - i0 - r}; the node at distance 0 has the max value
        dists = 5.0 - (i0[0] + np.arange(3))
        assert vals[0, np.argmin(np.abs(dists))] == vals[0].max()

    @given(st.floats(min_value=0.0, max_value=63.999))
    @settings(max_examples=60, deadline=None)
    def test_distances_within_half_width(self, g):
        kernel = ESKernel.from_tolerance(1e-6)
        i0, vals = compute_kernel_stencil(np.array([g]), 64, kernel)
        dists = g - (i0[0] + np.arange(kernel.width))
        assert np.all(np.abs(dists) <= kernel.width / 2 + 1e-9)


# --------------------------------------------------------------------------- #
# numerical agreement of the three spreading methods
# --------------------------------------------------------------------------- #
class TestSpreadMethodsAgree:
    @pytest.mark.parametrize("fine_shape", [(64, 48), (32, 32, 20)])
    @pytest.mark.parametrize("cluster", [False, True])
    def test_gm_gmsort_sm_identical(self, rng, fine_shape, cluster):
        kernel = ESKernel.from_tolerance(1e-6)
        grid_coords, sort, c = _setup(rng, fine_shape, 3000, cluster=cluster)
        gm = spread_gm(fine_shape, grid_coords, c, kernel, np.complex128)
        gms = spread_gm_sort(fine_shape, grid_coords, c, kernel, sort, np.complex128)
        subs = make_subproblems(sort, 256)
        sm = spread_sm(fine_shape, grid_coords, c, kernel, sort, subs, np.complex128)
        np.testing.assert_allclose(gms, gm, rtol=1e-10, atol=1e-10)
        np.testing.assert_allclose(sm, gm, rtol=1e-10, atol=1e-10)

    def test_dispatch_function(self, rng):
        fine_shape = (48, 48)
        kernel = ESKernel.from_tolerance(1e-4)
        grid_coords, sort, c = _setup(rng, fine_shape, 1000)
        a = spread(fine_shape, grid_coords, c, kernel, "GM")
        b = spread(fine_shape, grid_coords, c, kernel, "SM", sort=sort)
        np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-5)
        with pytest.raises(ValueError):
            spread(fine_shape, grid_coords, c, kernel, "GM-sort")  # missing sort

    def test_mass_conservation(self, rng):
        # the grid total equals the direct sum of each point's strength times
        # the product over dimensions of its kernel-stencil row sums.
        fine_shape = (40, 40)
        kernel = ESKernel.from_tolerance(1e-3)
        grid_coords, sort, c = _setup(rng, fine_shape, 500)
        grid = spread_gm(fine_shape, grid_coords, c, kernel, np.complex128)
        expected = 0.0 + 0.0j
        for j in range(500):
            _, vx = compute_kernel_stencil(grid_coords[0][j:j + 1], fine_shape[0], kernel)
            _, vy = compute_kernel_stencil(grid_coords[1][j:j + 1], fine_shape[1], kernel)
            expected += c[j] * vx.sum() * vy.sum()
        assert grid.sum() == pytest.approx(expected, rel=1e-9)

    def test_single_point_periodic_wrap(self):
        # a point near the boundary spreads across the periodic edge
        fine_shape = (32, 32)
        kernel = ESKernel.from_tolerance(1e-5)
        grid_coords = [np.array([0.1]), np.array([31.9])]
        c = np.array([1.0 + 0j])
        grid = spread_gm(fine_shape, grid_coords, c, kernel, np.complex128)
        # mass must appear on both sides of the wrap in y
        assert np.abs(grid[:, :4]).sum() > 0
        assert np.abs(grid[:, -3:]).sum() > 0


# --------------------------------------------------------------------------- #
# interpolation
# --------------------------------------------------------------------------- #
class TestInterp:
    def test_gm_and_gmsort_identical(self, rng):
        fine_shape = (64, 48)
        kernel = ESKernel.from_tolerance(1e-6)
        grid_coords, sort, _ = _setup(rng, fine_shape, 2500)
        grid = rng.standard_normal(fine_shape) + 1j * rng.standard_normal(fine_shape)
        a = interp_gm(grid, grid_coords, kernel, np.complex128)
        b = interp_gm_sort(grid, grid_coords, kernel, sort, np.complex128)
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)

    def test_sm_request_falls_back_to_gmsort(self, rng):
        fine_shape = (32, 32)
        kernel = ESKernel.from_tolerance(1e-4)
        grid_coords, sort, _ = _setup(rng, fine_shape, 500)
        grid = rng.standard_normal(fine_shape) + 0j
        a = interpolate(grid, grid_coords, kernel, "SM", sort)
        b = interpolate(grid, grid_coords, kernel, "GM-sort", sort)
        np.testing.assert_allclose(a, b)

    def test_spread_interp_adjointness(self, rng):
        # <spread(c), g> == <c, interp(g)> : spreading and interpolation with
        # the same kernel are adjoint linear maps.
        fine_shape = (36, 30)
        kernel = ESKernel.from_tolerance(1e-7)
        grid_coords, sort, c = _setup(rng, fine_shape, 800)
        g = rng.standard_normal(fine_shape) + 1j * rng.standard_normal(fine_shape)
        spread_c = spread_gm(fine_shape, grid_coords, c, kernel, np.complex128)
        interp_g = interp_gm(g, grid_coords, kernel, np.complex128)
        lhs = np.vdot(g, spread_c)
        rhs = np.vdot(interp_g, c)
        assert lhs == pytest.approx(rhs, rel=1e-10)


# --------------------------------------------------------------------------- #
# cost profiles
# --------------------------------------------------------------------------- #
class TestSpreadProfiles:
    def test_gm_profile_counts(self, rng):
        fine_shape = (256, 256)
        kernel = ESKernel.from_tolerance(1e-5)
        _, sort, _ = _setup(rng, fine_shape, 4000)
        (profile,) = spread_kernel_profiles(
            SpreadMethod.GM, sort, kernel, Precision.SINGLE, spec=V100_SPEC
        )
        profile.validate()
        assert profile.global_atomic_ops == pytest.approx(4000 * 36)
        assert profile.global_atomic_sector_ops == pytest.approx(4000 * 36)

    def test_gmsort_coalesces_atomics(self, rng):
        fine_shape = (256, 256)
        kernel = ESKernel.from_tolerance(1e-5)
        _, sort, _ = _setup(rng, fine_shape, 4000)
        (gm,) = spread_kernel_profiles(SpreadMethod.GM, sort, kernel, Precision.SINGLE)
        (gms,) = spread_kernel_profiles(SpreadMethod.GM_SORT, sort, kernel, Precision.SINGLE)
        assert gms.global_atomic_sector_ops < gm.global_atomic_sector_ops

    def test_sm_profiles_include_writeback(self, rng):
        fine_shape = (256, 256)
        kernel = ESKernel.from_tolerance(1e-5)
        _, sort, _ = _setup(rng, fine_shape, 4000)
        subs = make_subproblems(sort, 1024)
        profiles = spread_sm_kernel_profiles(sort, kernel, Precision.SINGLE, subs,
                                             spec=V100_SPEC)
        names = [p.name for p in profiles]
        assert any("writeback" in n for n in names)
        spread_prof = profiles[0]
        assert spread_prof.shared_atomic_ops == pytest.approx(4000 * 36)
        assert spread_prof.shared_mem_per_block <= V100_SPEC.shared_mem_per_block

    def test_sm_respects_shared_memory_limit(self, rng):
        # 3D double precision at high accuracy must refuse (paper Remark 2)
        from repro.gpu.threadblock import LaunchConfigError

        fine_shape = (64, 64, 64)
        kernel = ESKernel.from_tolerance(1e-9)  # w = 10
        _, sort, _ = _setup(rng, fine_shape, 2000, bins=(16, 16, 2))
        subs = make_subproblems(sort, 1024)
        with pytest.raises(LaunchConfigError):
            spread_sm_kernel_profiles(sort, kernel, Precision.DOUBLE, subs, spec=V100_SPEC)

    def test_interp_profiles_have_no_atomics(self, rng):
        fine_shape = (128, 128)
        kernel = ESKernel.from_tolerance(1e-4)
        _, sort, _ = _setup(rng, fine_shape, 3000)
        for method in (SpreadMethod.GM, SpreadMethod.GM_SORT):
            (profile,) = interp_kernel_profiles(method, sort, kernel, Precision.SINGLE)
            profile.validate()
            assert profile.global_atomic_ops == 0
            assert profile.gather_sector_ops > 0

    def test_cluster_distribution_reduces_distinct_addresses(self, rng):
        fine_shape = (512, 512)
        kernel = ESKernel.from_tolerance(1e-5)
        _, sort_rand, _ = _setup(rng, fine_shape, 8000)
        _, sort_cluster, _ = _setup(rng, fine_shape, 8000, cluster=True)
        (p_rand,) = spread_kernel_profiles(SpreadMethod.GM, sort_rand, kernel, Precision.SINGLE)
        (p_cluster,) = spread_kernel_profiles(SpreadMethod.GM, sort_cluster, kernel, Precision.SINGLE)
        assert (
            p_cluster.global_atomic_distinct_addresses
            < 0.05 * p_rand.global_atomic_distinct_addresses
        )
