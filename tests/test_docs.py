"""Documentation guards: runnable doctests, coverage gate, link checker.

The docstring audit promises every audited public symbol a NumPy-style
docstring and the simple API a *runnable* example; these tests keep both
true by (a) executing the documented examples as doctests and (b) running
the same coverage/link gates CI enforces (``tools/check_docstrings.py`` and
``tools/check_docs_links.py``).
"""

from __future__ import annotations

import doctest
import importlib
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TOOLS = os.path.join(REPO_ROOT, "tools")
if TOOLS not in sys.path:
    sys.path.insert(0, TOOLS)

#: Modules whose docstring examples must execute verbatim.
DOCTEST_MODULES = [
    "repro",
    "repro.core.simple",
    "repro.service",
    "repro.service.frontend",
    "repro.solve",
    "repro.tuning",
    "repro.tuning.signature",
    "repro.tuning.cache",
    "repro.tuning.search",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_doctests_run(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False,
                              optionflags=doctest.NORMALIZE_WHITESPACE)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )
    assert results.attempted > 0 or module_name not in (
        "repro", "repro.core.simple"
    ), f"{module_name} lost its runnable examples"


def test_docstring_coverage_gate():
    check_docstrings = importlib.import_module("check_docstrings")
    assert check_docstrings.main() == 0, (
        "public-API docstring coverage dropped below the post-audit level; "
        "run PYTHONPATH=src python tools/check_docstrings.py for the list"
    )


def test_docs_links_resolve():
    check_docs_links = importlib.import_module("check_docs_links")
    assert check_docs_links.main() == 0, (
        "broken relative link in README.md/docs; run "
        "python tools/check_docs_links.py for the list"
    )


def test_docs_pages_exist():
    for page in ("docs/ARCHITECTURE.md", "docs/BENCHMARKS.md"):
        path = os.path.join(REPO_ROOT, page)
        assert os.path.exists(path), f"{page} is missing"
        with open(path) as fh:
            assert len(fh.read()) > 1000, f"{page} is a stub"
