"""Figure 6: distribution sensitivity at eps = 1e-2 (single precision, 2D).

Sweeps the number of modes N = 2^6 .. 2^11 at rho = 1 for "rand" and "cluster"
points, reporting exec / total / total+mem per nonuniform point for the five
libraries and the speedup of cuFINUFFT's exec over FINUFFT's exec (the
annotations of paper Fig. 6).  The headline behaviours: cuFINUFFT (SM) and
gpuNUFFT are distribution-robust, cuFINUFFT (GM-sort) slows by a small factor
on clustered type-1 points, and CUNFFT collapses (the paper measures ~200x).
"""

from benchmarks.common import emit, library_times, stats_for

EPS = 1e-2
SIZES = [64, 128, 256, 512, 1024, 2048]
LIBRARIES = ["finufft", "cufinufft (SM)", "cufinufft (GM-sort)", "cunfft", "gpunufft"]


def run_fig6():
    rows = []
    for nufft_type in (1, 2):
        for dist in ("rand", "cluster"):
            for n in SIZES:
                n_modes = (n, n)
                m = 4 * n * n  # rho = 1 on the 2x-upsampled grid
                stats = stats_for(dist, m, n_modes, EPS)
                results = {
                    lib: library_times(lib, nufft_type, n_modes, m, EPS,
                                       distribution=dist, stats=stats)
                    for lib in LIBRARIES
                }
                cufi = results["cufinufft (SM)" if nufft_type == 1 else "cufinufft (GM-sort)"]
                speedup_vs_finufft = (
                    results["finufft"].times["exec"] / cufi.times["exec"]
                )
                rows.append(
                    [f"type{nufft_type}", dist, n]
                    + [results[lib].ns_per_point("exec") for lib in LIBRARIES]
                    + [results[lib].ns_per_point("total+mem") for lib in LIBRARIES]
                    + [speedup_vs_finufft]
                )
    emit(
        "fig6_distribution",
        "Fig. 6 -- 2D, eps=1e-2, rho=1, rand vs cluster (ns per NU point)",
        ["type", "dist", "N"]
        + [f"exec {lib}" for lib in LIBRARIES]
        + [f"tot+mem {lib}" for lib in LIBRARIES]
        + ["cufinufft exec speedup vs finufft"],
        rows,
    )
    return rows


def test_fig6_distribution(benchmark):
    rows = benchmark.pedantic(run_fig6, iterations=1, rounds=1)
    exec_cols = {lib: 3 + i for i, lib in enumerate(LIBRARIES)}

    def pick(nufft_type, dist, n):
        return next(r for r in rows if r[0] == nufft_type and r[1] == dist and r[2] == n)

    # CUNFFT collapses on clustered type-1 transforms; cuFINUFFT (SM) does not.
    cunfft_ratio = (
        pick("type1", "cluster", 512)[exec_cols["cunfft"]]
        / pick("type1", "rand", 512)[exec_cols["cunfft"]]
    )
    sm_ratio = (
        pick("type1", "cluster", 512)[exec_cols["cufinufft (SM)"]]
        / pick("type1", "rand", 512)[exec_cols["cufinufft (SM)"]]
    )
    assert cunfft_ratio > 20
    assert sm_ratio < 2
    # the exec speedup of cuFINUFFT over FINUFFT is substantial everywhere
    assert all(r[-1] > 3 for r in rows)


if __name__ == "__main__":
    run_fig6()
