"""Figure 3: interpolation-method comparison (GM vs GM-sort), "rand" points.

Regenerates the type-2 interpolation timings of paper Fig. 3: execution time
per nonuniform point with and without the bin-sorting precomputation, for 2D
and 3D fine grids at rho = 1 and eps = 1e-5.
"""

import numpy as np

from benchmarks.common import emit, stats_for
from repro.metrics import model_cufinufft

FINE_SIZES = {2: [128, 256, 512, 1024, 2048, 4096], 3: [32, 64, 128, 256, 512]}
EPS = 1e-5


def run_fig3():
    rows = []
    for ndim, sizes in FINE_SIZES.items():
        for n_fine in sizes:
            fine_shape = (n_fine,) * ndim
            n_modes = tuple(n // 2 for n in fine_shape)
            m = int(np.prod(fine_shape))
            stats = stats_for("rand", m, n_modes, EPS, fine_shape=fine_shape)
            gm = model_cufinufft(2, n_modes, m, EPS, method="GM", spread_only=True,
                                 fine_shape=fine_shape, stats=stats)
            gms = model_cufinufft(2, n_modes, m, EPS, method="GM-sort", spread_only=True,
                                  fine_shape=fine_shape, stats=stats)
            rows.append([
                f"{ndim}D", n_fine,
                gm.ns_per_point("total"),
                gms.ns_per_point("exec"),
                gms.ns_per_point("total"),
                gm.ns_per_point("total") / gms.ns_per_point("total"),
            ])
    emit(
        "fig3_interp_methods",
        "Fig. 3 -- interpolation methods, rand, eps=1e-5, rho=1 (ns per NU point)",
        ["dim", "n_fine", "GM total", "GM-sort interp", "GM-sort total", "GM-sort speedup"],
        rows,
    )
    return rows


def test_fig3_interp_methods(benchmark):
    rows = benchmark.pedantic(run_fig3, iterations=1, rounds=1)
    # bin-sorting helps on the largest grids in both dimensions (paper: 4.5x / 12.7x)
    assert [r for r in rows if r[0] == "2D"][-1][5] > 2.0
    assert [r for r in rows if r[0] == "3D"][-1][5] > 2.0
    # the sorted interpolation (excluding the sort) is never slower than GM
    for r in rows:
        assert r[3] <= r[2] * 1.05


if __name__ == "__main__":
    run_fig3()
