"""pytest configuration for the benchmark harness."""

import os
import sys

# Make `from benchmarks.common import ...` work when pytest is invoked from the
# repository root without installing the benchmarks as a package.
sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
