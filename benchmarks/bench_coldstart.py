"""Cold-start benchmark: process-start -> first-request latency, cold vs warm.

Measures what the unified warm-state artifact store (:mod:`repro.artifacts`)
buys a restarting :class:`~repro.service.TransformService`.  Two runs over
the *same* store directory:

* **cold** -- an empty store.  The first request pays the full warm-up bill:
  autotuning search, Horner kernel fit, stencil/CSR build, plan creation.
  Everything computed lands in the store.
* **warm** -- a fresh service (simulating a restarted process) over the
  now-populated store.  Service construction pre-warms the plan pool from
  recorded signatures; the first request's tuning, Horner fit and stencil
  cache all load from disk instead of being recomputed.

The measured interval covers service construction *and* the first request
(the operational "process start to first response" latency).  The warm run
must be **bit-identical** to the cold run -- the store serves the exact
arrays the cold path computed -- and must record **zero** artifact builds.
A direct Plan-level round-trip check covers all three transform types.

Results merge into ``BENCH_throughput.json`` under the ``"coldstart"`` key::

    "coldstart": {
      "quick": bool,
      "cold_first_request_s": float,     # median across repeats
      "warm_first_request_s": float,
      "speedup": float,                  # cold / warm  (gate: >= 3)
      "bit_identical": bool,             # warm output == cold output (gate)
      "warm_builds": int,                # artifact builds on warm path (gate: 0)
      "plans_prewarmed": int,            # pool entries recreated at startup
      "roundtrip_t1": bool,              # per-type Plan store round-trips
      "roundtrip_t2": bool,              # (gate: all true)
      "roundtrip_t3": bool,
    }

``--quick`` shrinks the problem for the CI smoke run; the gates are
identical at every scale.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:  # allow `python benchmarks/bench_coldstart.py`
    sys.path.insert(0, REPO_ROOT)

from benchmarks.common import emit  # noqa: E402
from repro.artifacts import ArtifactStore  # noqa: E402
from repro.core.plan import Plan  # noqa: E402
from repro.service import TransformService  # noqa: E402

JSON_PATH = os.path.join(REPO_ROOT, "BENCH_throughput.json")

#: Cold/warm pairs timed per configuration; the medians cancel stragglers.
REPEATS = 3


def _problem(quick, rng):
    """A small burst of recurring request signatures, tuned: per signature
    the cold path pays the autotuner's measured search plus the Horner fit
    and stencil/CSR build -- exactly the warm-up bill a production restart
    would re-pay, once per distinct geometry it serves.  The warm run reads
    the cold run's tuning record, so both serve the same tuned config and
    the outputs compare bit-for-bit.  Sized for the latency
    regime cold-start dominates: modest transforms whose warm-up work dwarfs
    a single execute (huge transforms amortize their own warm-up)."""
    m = 1 << (11 if quick else 13)
    mode_sizes = ((32, 32), (48, 48)) if quick else ((64, 64), (96, 96))
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    data = (rng.standard_normal(m) + 1j * rng.standard_normal(m))
    return m, mode_sizes, x, y, data


def _first_request(root, mode_sizes, x, y, data):
    """Seconds from service construction to the first flushed burst."""
    t0 = time.perf_counter()
    service = TransformService(artifact_store=root, tune="measure")
    for n_modes in mode_sizes:
        service.submit(nufft_type=1, n_modes=n_modes, x=x, y=y, data=data)
    outputs = [r.output for r in service.flush()]
    elapsed = time.perf_counter() - t0
    stats = service.stats
    service.close()
    return elapsed, outputs, stats


def _cold_warm_pair(mode_sizes, x, y, data):
    """(cold_s, warm_s, identical, warm_builds, prewarmed) over one store."""
    root = tempfile.mkdtemp(prefix="repro-coldstart-")
    try:
        cold_s, cold_out, _ = _first_request(root, mode_sizes, x, y, data)
        warm_s, warm_out, stats = _first_request(root, mode_sizes, x, y, data)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    identical = all(np.array_equal(c, w) for c, w in zip(cold_out, warm_out))
    return (cold_s, warm_s, bool(identical),
            int(stats.artifact_builds), int(stats.plans_prewarmed))


def _roundtrip(nufft_type, quick, rng):
    """Cold-build then warm-load one Plan through a store: exact match?"""
    m = 1 << (10 if quick else 12)
    n_modes = (32, 32) if quick else (64, 64)
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    data = (rng.standard_normal(m) + 1j * rng.standard_normal(m))
    if nufft_type == 2:
        data = (rng.standard_normal(n_modes)
                + 1j * rng.standard_normal(n_modes))
    kwargs = {}
    if nufft_type == 3:
        nk = max(64, m // 8)
        kwargs = {"s": rng.uniform(-30, 30, nk), "t": rng.uniform(-30, 30, nk)}

    root = tempfile.mkdtemp(prefix="repro-coldstart-rt-")
    try:
        outputs = []
        builds = []
        for _ in range(2):
            store = ArtifactStore(root=root)
            with Plan(nufft_type, n_modes if nufft_type != 3 else 2,
                      artifact_store=store) as plan:
                plan.set_pts(x, y, **kwargs)
                outputs.append(plan.execute(data))
            builds.append(store.stats.builds)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return bool(np.array_equal(outputs[0], outputs[1])
                and builds[1] == 0)


def run_coldstart_bench(quick=False):
    rng = np.random.default_rng(0)
    m, mode_sizes, x, y, data = _problem(quick, rng)

    cold_times, warm_times = [], []
    identical = True
    warm_builds = 0
    prewarmed = 0
    for _ in range(REPEATS):
        cold_s, warm_s, same, builds, pre = _cold_warm_pair(mode_sizes, x, y,
                                                            data)
        cold_times.append(cold_s)
        warm_times.append(warm_s)
        identical = identical and same
        warm_builds = max(warm_builds, builds)
        prewarmed = pre

    cold_med = float(np.median(cold_times))
    warm_med = float(np.median(warm_times))
    speedup = cold_med / warm_med if warm_med > 0 else float("inf")

    roundtrips = {tp: _roundtrip(tp, quick, rng) for tp in (1, 2, 3)}

    summary = {
        "quick": quick,
        "sample_points": m,
        "n_modes": [list(nm) for nm in mode_sizes],
        "cold_first_request_s": cold_med,
        "warm_first_request_s": warm_med,
        "speedup": speedup,
        "bit_identical": identical,
        "warm_builds": warm_builds,
        "plans_prewarmed": prewarmed,
        "roundtrip_t1": roundtrips[1],
        "roundtrip_t2": roundtrips[2],
        "roundtrip_t3": roundtrips[3],
    }

    existing = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as fh:
            existing = json.load(fh)
    existing["coldstart"] = summary
    with open(JSON_PATH, "w") as fh:
        json.dump(existing, fh, indent=2)

    emit(
        "coldstart",
        f"Process start -> first request burst (M={m}, modes {'+'.join('x'.join(map(str, nm)) for nm in mode_sizes)}, tuned)",
        ["run", "first request (ms)", "artifact builds", "plans pre-warmed"],
        [["cold", f"{1e3 * cold_med:.1f}", "-", 0],
         ["warm", f"{1e3 * warm_med:.1f}", warm_builds, prewarmed]],
    )
    print(f"\nwrote {JSON_PATH} (coldstart section)")
    print(f"cold {1e3 * cold_med:.1f} ms -> warm {1e3 * warm_med:.1f} ms "
          f"({speedup:.2f}x), bit-identical: {identical}, "
          f"round-trips t1/t2/t3: {roundtrips[1]}/{roundtrips[2]}/{roundtrips[3]}")
    return summary


if __name__ == "__main__":
    run_coldstart_bench(quick="--quick" in sys.argv[1:])
