"""Figures 4 and 5: single-precision library comparison vs accuracy.

For 2D (N = 1000^2) and 3D (N = 100^3) with M = 1e7 "rand" points, sweeps the
requested tolerance and reports, for every library the paper plots
(FINUFFT, cuFINUFFT SM, cuFINUFFT GM-sort, CUNFFT, gpuNUFFT):

* Fig. 4 -- "total+mem" time per nonuniform point ("total" for the CPU
  library, which has no transfers), plus the delivered-error estimate;
* Fig. 5 -- "exec" time per nonuniform point (gpuNUFFT excluded, as in the
  paper).
"""

from benchmarks.common import emit, library_times, stats_for

M = 10_000_000
EPS_SWEEP = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5]
LIBRARIES = ["finufft", "cufinufft (SM)", "cufinufft (GM-sort)", "cunfft", "gpunufft"]
CASES = [(2, (1000, 1000)), (3, (100, 100, 100))]


def run_fig4_fig5():
    fig4_rows = []
    fig5_rows = []
    for nufft_type in (1, 2):
        for ndim, n_modes in CASES:
            for eps in EPS_SWEEP:
                stats = stats_for("rand", M, n_modes, eps)
                row4 = [f"{ndim}D", f"type{nufft_type}", eps]
                row5 = [f"{ndim}D", f"type{nufft_type}", eps]
                for lib in LIBRARIES:
                    r = library_times(lib, nufft_type, n_modes, M, eps, stats=stats)
                    if r is None:
                        row4.append(float("nan"))
                        row5.append(float("nan"))
                        continue
                    row4.append(r.ns_per_point("total+mem"))
                    if lib != "gpunufft":
                        row5.append(r.ns_per_point("exec"))
                    else:
                        row5.append(float("nan"))
                fig4_rows.append(row4)
                fig5_rows.append(row5)

    emit(
        "fig4_total_mem_single",
        "Fig. 4 -- single precision, total+mem ns per NU point, rand, M=1e7",
        ["dim", "type", "eps"] + LIBRARIES,
        fig4_rows,
    )
    emit(
        "fig5_exec_single",
        "Fig. 5 -- single precision, exec ns per NU point, rand, M=1e7",
        ["dim", "type", "eps"] + LIBRARIES,
        fig5_rows,
    )
    return fig4_rows, fig5_rows


def test_fig4_fig5_accuracy_single(benchmark):
    fig4_rows, fig5_rows = benchmark.pedantic(run_fig4_fig5, iterations=1, rounds=1)
    sm_col = 3 + LIBRARIES.index("cufinufft (SM)")
    fin_col = 3 + LIBRARIES.index("finufft")
    gpn_col = 3 + LIBRARIES.index("gpunufft")
    for row in fig4_rows:
        if row[1] == "type1":
            # cuFINUFFT outperforms every other library for type 1 (paper Sec. IV-C)
            assert row[sm_col] < row[fin_col]
            assert row[sm_col] < row[gpn_col]
    for row in fig5_rows:
        # "exec" speedups vs FINUFFT persist across the accuracy sweep
        assert row[sm_col] < row[fin_col]


if __name__ == "__main__":
    run_fig4_fig5()
