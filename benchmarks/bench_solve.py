"""Inverse-NUFFT benchmark: Toeplitz-accelerated CG vs explicit ``A^H A`` CG.

Each configuration reconstructs an image from samples over an MRI-style
trajectory (radial / golden-angle spiral / 3D random) by CG on the
density-compensated normal equations, once with the explicit normal operator
(a type-2 *and* a type-1 NUFFT per iteration -- spread, FFTs, interpolation)
and once with the :class:`~repro.solve.ToeplitzNormalOperator` (a one-time
PSF build, then one padded FFT pair + pointwise multiply per iteration -- no
nonuniform work in the loop).

Reported per configuration: the modelled per-iteration kernel seconds of both
normal operators (priced through the same cost model the paper figures use),
their ratio (the Toeplitz speedup), the one-time PSF build cost and its
break-even iteration count, the operator agreement (relative l2 of one apply,
gated at <= 10 eps), and the CG solution agreement / final residuals (the
"equal solution accuracy" check).

Results merge into ``BENCH_throughput.json`` under the ``"solve"`` key.
``--quick`` selects the CI smoke configuration, which gates the Toeplitz
per-iteration speedup at >= 2x and the accuracy at parity.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:  # allow `python benchmarks/bench_solve.py`
    sys.path.insert(0, REPO_ROOT)

from benchmarks.common import emit  # noqa: E402
from repro.core.errors import relative_l2_error  # noqa: E402
from repro.solve import SolveRequest, execute_solve, pipe_menon_weights  # noqa: E402
from repro.solve.operators import (  # noqa: E402
    AdjointOperator,
    ForwardOperator,
    NormalOperator,
)
from repro.solve.toeplitz import ToeplitzNormalOperator  # noqa: E402
from repro.workloads import make_distribution  # noqa: E402

JSON_PATH = os.path.join(REPO_ROOT, "BENCH_throughput.json")

EPS = 1e-6
TOL = 1e-6
MAXITER = 20


def _configs(quick):
    """(name, n_modes, n_points, distribution, dist_kwargs) per config."""
    if quick:
        return [
            ("2d_radial_32", (32, 32), 1 << 13, "radial", dict(n_spokes=64)),
            ("2d_spiral_32", (32, 32), 1 << 13, "spiral",
             dict(n_interleaves=16, n_turns=8)),
        ]
    return [
        ("2d_radial_64", (64, 64), 1 << 16, "radial", dict(n_spokes=256)),
        ("2d_spiral_64", (64, 64), 1 << 16, "spiral",
         dict(n_interleaves=48, n_turns=16)),
        ("2d_radial_128", (128, 128), 1 << 18, "radial", dict(n_spokes=512)),
        ("3d_rand_24", (24, 24, 24), 1 << 16, "rand", {}),
    ]


def _run_config(name, n_modes, n_points, distribution, dist_kwargs, rng):
    ndim = len(n_modes)
    points = make_distribution(distribution, n_points, ndim, rng=0, **dist_kwargs)
    weights = pipe_menon_weights(points, n_modes, n_iter=6, eps=EPS)
    # Ground truth in range(A^H): recoverable regardless of how the
    # trajectory conditions the corner modes.
    with AdjointOperator(points, n_modes, eps=EPS, precision="double",
                         backend="cached") as adj:
        f_true = np.asarray(adj.apply(
            weights * (rng.standard_normal(n_points)
                       + 1j * rng.standard_normal(n_points))))
    f_true /= np.linalg.norm(f_true)
    with ForwardOperator(points, n_modes, eps=EPS, precision="double",
                         backend="cached") as fwd:
        data = np.asarray(fwd.apply(f_true))

    # Operator agreement: one explicit apply vs one Toeplitz apply.
    fwd_op = ForwardOperator(points, n_modes, eps=EPS, precision="double")
    adj_op = AdjointOperator(points, n_modes, eps=EPS, precision="double")
    explicit_normal = NormalOperator(fwd_op, adj_op, weights=weights)
    toeplitz_normal = ToeplitzNormalOperator(points, n_modes, eps=EPS,
                                             precision="double",
                                             weights=weights)
    probe = rng.standard_normal(n_modes) + 1j * rng.standard_normal(n_modes)
    op_rel_err = relative_l2_error(toeplitz_normal.apply(probe),
                                   explicit_normal.apply(probe))
    explicit_iter_s = explicit_normal.modelled_iteration_seconds()
    toeplitz_iter_s = toeplitz_normal.modelled_iteration_seconds()
    explicit_normal.close()

    results = {}
    for normal in ("toeplitz", "explicit"):
        request = SolveRequest(
            n_modes=n_modes, data=data, eps=EPS, precision="double",
            weights=weights, normal=normal, tol=TOL, maxiter=MAXITER,
            **dict(zip("xyz", points)),
        )
        t0 = time.perf_counter()
        results[normal] = execute_solve(request)
        results[normal].wall_s = time.perf_counter() - t0

    toep, expl = results["toeplitz"], results["explicit"]
    speedup = explicit_iter_s / toeplitz_iter_s if toeplitz_iter_s > 0 else 0.0
    psf_s = toep.modelled_seconds["psf_build"]
    breakeven = (psf_s / (explicit_iter_s - toeplitz_iter_s)
                 if explicit_iter_s > toeplitz_iter_s else float("inf"))
    record = {
        "config": name,
        "n_modes": list(n_modes),
        "n_points": n_points,
        "distribution": distribution,
        "explicit_iter_s": explicit_iter_s,
        "toeplitz_iter_s": toeplitz_iter_s,
        "iter_speedup": speedup,
        "psf_build_s": psf_s,
        "breakeven_iters": breakeven,
        "operator_rel_err": op_rel_err,
        "toeplitz_final_res": toep.residual_norms[0][-1],
        "explicit_final_res": expl.residual_norms[0][-1],
        "toeplitz_iters": toep.n_iter[0],
        "explicit_iters": expl.n_iter[0],
        "solution_rel_diff": relative_l2_error(toep.x, expl.x),
        "toeplitz_recon_err": relative_l2_error(toep.x, f_true),
        "explicit_recon_err": relative_l2_error(expl.x, f_true),
        "toeplitz_wall_s": toep.wall_s,
        "explicit_wall_s": expl.wall_s,
    }
    return record


def run_solve_bench(quick=False):
    rng = np.random.default_rng(0)
    records = [_run_config(*cfg, rng) for cfg in _configs(quick)]

    speedups = [r["iter_speedup"] for r in records]
    res_ratios = [
        max(r["toeplitz_final_res"], 1e-300)
        / max(r["explicit_final_res"], 1e-300)
        for r in records
    ]
    summary = {
        "quick": quick,
        "eps": EPS,
        "tol": TOL,
        "maxiter": MAXITER,
        "configs": records,
        "min_iter_speedup": min(speedups),
        "geomean_iter_speedup": float(np.exp(np.mean(np.log(speedups)))),
        "max_operator_rel_err": max(r["operator_rel_err"] for r in records),
        "max_residual_ratio": max(res_ratios),
        "max_solution_rel_diff": max(r["solution_rel_diff"] for r in records),
    }

    existing = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as fh:
            existing = json.load(fh)
    existing["solve"] = summary
    with open(JSON_PATH, "w") as fh:
        json.dump(existing, fh, indent=2)

    emit(
        "solve_toeplitz_cg",
        f"Inverse NUFFT: Toeplitz-CG vs explicit A^H A CG (eps={EPS:g}, "
        f"tol={TOL:g})",
        ["config", "M", "explicit it/s", "toeplitz it/s", "speedup",
         "psf build s", "op rel err", "recon err (toep)", "sol rel diff"],
        [[r["config"], r["n_points"], r["explicit_iter_s"],
          r["toeplitz_iter_s"], r["iter_speedup"], r["psf_build_s"],
          r["operator_rel_err"], r["toeplitz_recon_err"],
          r["solution_rel_diff"]]
         for r in records],
    )
    print(f"\nwrote {JSON_PATH} (solve section)")
    print(f"per-iteration speedup: min {summary['min_iter_speedup']:.2f}x, "
          f"geomean {summary['geomean_iter_speedup']:.2f}x")
    print(f"max operator rel err: {summary['max_operator_rel_err']:.2e} "
          f"(gate {10 * EPS:.0e})")
    print(f"max Toeplitz/explicit residual ratio: "
          f"{summary['max_residual_ratio']:.3f}")
    return summary


if __name__ == "__main__":
    run_solve_bench(quick="--quick" in sys.argv[1:])
