"""Figure 9: single-node multi-GPU weak scaling on Cori GPU and Summit.

Fixes the per-rank Table II problems and grows the number of MPI ranks from 1
to twice the node's GPU count, reporting the per-rank setup / exec / total
times and the weak-scaling efficiency.  The paper observes close-to-ideal weak
scaling (flat lines) up to one rank per GPU and rapid deterioration beyond.
"""

from benchmarks.common import bench_sample_size, emit
from repro.cluster import CORI_GPU_NODE, SUMMIT_NODE, run_weak_scaling

TASKS = [
    ("slicing (type 2)", 2, (41, 41, 41), 1_020_000),
    ("merging (type 1)", 1, (81, 81, 81), 16_400_000),
]


def run_fig9():
    rows = []
    curves = {}
    for node in (CORI_GPU_NODE, SUMMIT_NODE):
        for label, nufft_type, n_modes, m in TASKS:
            result = run_weak_scaling(
                nufft_type, n_modes, m, 1e-12, node_spec=node,
                max_ranks=2 * node.n_gpus, precision="double",
                task_label=label, rng=0, max_sample=bench_sample_size(),
            )
            curves[(node.name, label)] = result
            for ranks, setup_ms, exec_ms, total_s, eff in result.rows():
                rows.append([node.name, label, ranks, setup_ms, exec_ms, total_s, eff])
    emit(
        "fig9_weak_scaling",
        "Fig. 9 -- single-node weak scaling (per-rank times)",
        ["system", "task", "ranks", "setup (ms)", "exec (ms)", "total (s)", "efficiency"],
        rows,
        floatfmt=".3g",
    )
    return rows, curves


def test_fig9_weak_scaling(benchmark):
    rows, curves = benchmark.pedantic(run_fig9, iterations=1, rounds=1)
    for (system, _label), result in curves.items():
        n_gpus = result.n_gpus
        eff = result.efficiency()
        # near-ideal up to one rank per GPU, rapid deterioration beyond
        assert all(e > 0.8 for e in eff[:n_gpus]), (system, eff)
        assert eff[n_gpus] < 0.7, (system, eff)


if __name__ == "__main__":
    run_fig9()
