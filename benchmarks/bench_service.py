"""Serving-layer benchmark: what plan pooling, coalescing and sharding buy.

The workload is a request mix a transform service would actually face:
several geometry groups (distinct mode grids and dimensionalities), many
one-shot requests per group sharing each group's nonuniform points, submitted
interleaved.  Four serving configurations answer it:

* ``unpooled``            -- every request plans, sorts, executes, destroys
                             (the per-request baseline: what one-shot
                             ``nufft*d*`` calls cost a server);
* ``pooled``              -- plans cached by geometry key and reused;
* ``pooled+coalesced``    -- same-geometry/same-points requests additionally
                             fused into ``n_trans`` blocks (PR 1's batched
                             engine);
* ``pooled+coalesced x4`` -- the fused blocks sharded over a 4-device fleet.

Reported per configuration: modelled requests/s (stream-level h2d/exec/d2h
timeline on the simulated V100 fleet), wall-clock requests/s of the numpy
engine, and mean per-device exec utilization.  A second sweep weak-scales the
service from 1 to 4 devices at fixed per-device load (the serving analogue of
the paper's Fig. 9) and reports scaling efficiency.

Results merge into ``BENCH_throughput.json`` under the ``"service"`` key.
``--quick`` selects the CI smoke configuration, which gates
pooled+coalesced modelled throughput at >= 2x unpooled.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:  # allow `python benchmarks/bench_service.py`
    sys.path.insert(0, REPO_ROOT)

from benchmarks.common import emit  # noqa: E402
from repro.core.env import bench_sample_size  # noqa: E402
from repro.cluster import run_weak_scaling_fleet  # noqa: E402
from repro.service import TransformService  # noqa: E402

JSON_PATH = os.path.join(REPO_ROOT, "BENCH_throughput.json")

#: Serving configurations swept by the benchmark.
SCENARIOS = (
    ("unpooled", dict(pool_plans=False, coalesce=False, n_devices=1)),
    ("pooled", dict(pool_plans=True, coalesce=False, n_devices=1)),
    ("pooled+coalesced", dict(pool_plans=True, coalesce=True, n_devices=1)),
    ("pooled+coalesced x4", dict(pool_plans=True, coalesce=True, n_devices=4)),
)


def _geometry_groups(quick):
    """(name, nufft_type, n_modes) per geometry group in the request mix."""
    groups = [
        ("1d_4096", 1, (4096,)),
        ("2d_64", 1, (64, 64)),
        ("2d_96_t2", 2, (96, 96)),
    ]
    if not quick:
        groups.append(("3d_24", 1, (24, 24, 24)))
    return groups


def _build_requests(quick, rng):
    """The interleaved request mix: dicts of TransformRequest fields."""
    m = bench_sample_size(1 << 12 if quick else 1 << 14)
    per_group = 8 if quick else 16
    groups = []
    for name, nufft_type, n_modes in _geometry_groups(quick):
        ndim = len(n_modes)
        coords = dict(zip("xyz", rng.uniform(-np.pi, np.pi, (ndim, m))))
        reqs = []
        for _ in range(per_group):
            if nufft_type == 1:
                data = rng.standard_normal(m) + 1j * rng.standard_normal(m)
            else:
                data = rng.standard_normal(n_modes) + 1j * rng.standard_normal(n_modes)
            reqs.append(dict(nufft_type=nufft_type, n_modes=n_modes, data=data,
                             eps=1e-6, precision="single", tag=name, **coords))
        groups.append(reqs)
    # Interleave across groups, as concurrent callers would: the coalescer
    # has to regroup them, not just batch an already-sorted queue.
    interleaved = []
    for i in range(per_group):
        for reqs in groups:
            interleaved.append(reqs[i])
    return interleaved, m


def _run_scenario(name, service_kwargs, requests):
    """Serve the mix twice: a cold round (fills the pool), then a measured
    steady-state round.  An unpooled service is oblivious to the warm-up (it
    re-plans regardless), so the comparison stays fair: every configuration
    is measured serving the identical second round."""
    service = TransformService(**service_kwargs)

    def serve_round():
        t0 = time.perf_counter()
        for fields in requests:
            service.submit(**fields)
        results = service.flush()
        wall_s = time.perf_counter() - t0
        failed = [r for r in results if r.error is not None]
        if failed:
            raise RuntimeError(f"{name}: {len(failed)} requests failed: {failed[0].error}")
        return wall_s

    serve_round()
    cold_makespan_s = service.makespan()
    cold_rps = service.throughput_rps()
    service.reset_metrics()
    wall_s = serve_round()

    stats = service.stats
    record = {
        "scenario": name,
        "n_requests": stats.requests_served,
        "modelled_makespan_s": service.makespan(),
        "modelled_rps": service.throughput_rps(),
        "cold_makespan_s": cold_makespan_s,
        "cold_rps": cold_rps,
        "wall_s": wall_s,
        "wall_rps": stats.requests_served / wall_s if wall_s > 0 else float("inf"),
        "mean_exec_utilization": float(np.mean(service.utilization())),
        "plans_created": stats.plans_created,
        "plan_cache_hits": stats.plan_cache_hits,
        "setpts_skipped": stats.setpts_skipped,
        "blocks": stats.blocks_executed,
        "shards": stats.shards_executed,
    }
    service.close()
    return record


def _run_fleet_scaling(quick):
    result = run_weak_scaling_fleet(
        nufft_type=2,
        n_modes=(24, 24, 24) if quick else (32, 32, 32),
        n_points_per_rank=(1 << 12) if quick else (1 << 14),
        eps=1e-6,
        requests_per_device=4 if quick else 8,
        max_devices=4,
        precision="double",
        task_label="slicing-style type-2 service",
    )
    return result


def run_service_bench(quick=False):
    rng = np.random.default_rng(0)
    requests, m = _build_requests(quick, rng)

    records = [_run_scenario(name, kwargs, requests) for name, kwargs in SCENARIOS]
    by_name = {r["scenario"]: r for r in records}
    speedup = (by_name["pooled+coalesced"]["modelled_rps"]
               / by_name["unpooled"]["modelled_rps"])
    pooled_speedup = by_name["pooled"]["modelled_rps"] / by_name["unpooled"]["modelled_rps"]

    fleet = _run_fleet_scaling(quick)
    efficiency = fleet.efficiency()

    summary = {
        "quick": quick,
        "sample_points": m,
        "n_requests": records[0]["n_requests"],
        "scenarios": records,
        "speedup_pooled": pooled_speedup,
        "speedup_pooled_coalesced": speedup,
        "fleet_task": fleet.task_label,
        "fleet_points": [
            {"n_devices": p.n_devices, "n_requests": p.n_requests,
             "makespan_s": p.makespan_s, "throughput_rps": p.throughput_rps,
             "mean_utilization": p.mean_utilization}
            for p in fleet.points
        ],
        "fleet_efficiency": efficiency,
    }

    # Merge under "service" so the batched-engine numbers written by
    # bench_throughput.py survive in the same report file.
    existing = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as fh:
            existing = json.load(fh)
    existing["service"] = summary
    with open(JSON_PATH, "w") as fh:
        json.dump(existing, fh, indent=2)

    emit(
        "service_throughput",
        f"Transform service (M={m}, {records[0]['n_requests']} mixed requests)",
        ["configuration", "req/s (model)", "req/s (wall)", "makespan ms",
         "util", "plans", "pool hits", "setpts skipped"],
        [[r["scenario"], r["modelled_rps"], r["wall_rps"],
          1e3 * r["modelled_makespan_s"], r["mean_exec_utilization"],
          r["plans_created"], r["plan_cache_hits"], r["setpts_skipped"]]
         for r in records],
    )
    emit(
        "service_weak_scaling",
        f"Service weak scaling, fixed per-device load ({fleet.task_label})",
        ["devices", "requests", "makespan ms", "req/s", "util", "efficiency"],
        [list(row) for row in fleet.rows()],
    )
    print(f"\nwrote {JSON_PATH} (service section)")
    print(f"pooled+coalesced vs unpooled: {speedup:.1f}x modelled throughput "
          f"(pooling alone: {pooled_speedup:.1f}x)")
    print("fleet efficiency 1->4 devices: "
          + ", ".join(f"{e:.2f}" for e in efficiency))
    return summary


if __name__ == "__main__":
    run_service_bench(quick="--quick" in sys.argv[1:])
