"""Autotuning benchmark: AUTO defaults vs cost-model-tuned plan parameters.

For every problem class of the 1D/2D/3D x type-1/2/3 sweep this benchmark

1. scores the paper's hard-coded configuration (Remark 1 bins, ``Msub=1024``,
   the Remark-2/Sec.-III-B AUTO method table) with the simulated-GPU cost
   model,
2. runs the :class:`repro.tuning.Autotuner` over the candidate grid (method x
   bin shape x ``Msub`` x threads per block) and scores the winner through
   the *identical* model path, and
3. checks on a small real problem that the tuned configuration's numerics
   deliver the same accuracy (they must: the kernel width depends only on
   ``eps``, and every spread method computes the same sums).

The default configuration is always one of the candidates, so per-class
speedup is >= 1.0 by construction; the interesting output is *where* and by
*how much* the tuner beats the paper's one-size-fits-all choices (sparse
problems flip to GM/GM-sort, dense 3D problems prefer cubic bins and a
different ``Msub``, ...).

Results are printed as a table, saved to ``results/autotune.txt`` and merged
into ``BENCH_throughput.json`` under the ``"autotune"`` key, which CI gates:
geomean speedup >= 1.0, strictly > 1.0 on at least 3 classes, accuracy
unchanged.  ``--quick`` shrinks the sampling caps for the CI smoke run;
``--measure`` re-ranks finalists by measured execution (slower).
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:  # allow `python benchmarks/bench_autotune.py`
    sys.path.insert(0, REPO_ROOT)

from benchmarks.common import emit  # noqa: E402
from repro import Plan  # noqa: E402
from repro.core.exact import nudft_type1, nudft_type2, nudft_type3  # noqa: E402
from repro.core.errors import relative_l2_error  # noqa: E402
from repro.core.options import Opts  # noqa: E402
from repro.tuning import Autotuner, TuningProblem  # noqa: E402

JSON_PATH = os.path.join(REPO_ROOT, "BENCH_throughput.json")

#: Tolerance for "strictly improved" (guards against float round-off).
IMPROVED_EPS = 1e-6

#: The 1D/2D/3D x type-1/2/3 sweep.  For type 3, ``n_modes`` is the
#: composition-grid size (the ``Plan``-derived rescaled spread grid).  The
#: point counts put each class at a paper-flavoured density; ``sparse``
#: variants exercise the regime where the sorted methods stop paying off.
def sweep_configs(quick):
    shrink = 4 if quick else 1
    return [
        ("1d_type1", 1, (1 << 20,), (1 << 23) // shrink, 1e-6, "single"),
        ("1d_type2", 2, (1 << 20,), (1 << 23) // shrink, 1e-6, "single"),
        ("1d_type3", 3, (4096,), (1 << 20) // shrink, 1e-6, "single"),
        ("2d_type1", 1, (4096, 4096), (1 << 24) // shrink, 1e-6, "single"),
        ("2d_type2", 2, (4096, 4096), (1 << 24) // shrink, 1e-6, "single"),
        ("2d_type3", 3, (256, 256), (1 << 20) // shrink, 1e-6, "single"),
        ("3d_type1", 1, (256, 256, 256), (1 << 25) // shrink, 1e-6, "single"),
        ("3d_type2", 2, (256, 256, 256), (1 << 25) // shrink, 1e-6, "single"),
        ("3d_type3", 3, (64, 64, 64), (1 << 20) // shrink, 1e-6, "single"),
        ("3d_type1_sparse", 1, (256, 256, 256), (1 << 19) // shrink, 1e-6, "single"),
        ("3d_type1_double", 1, (128, 128, 128), (1 << 23) // shrink, 1e-9, "double"),
    ]


#: Small real problems of each (type, ndim) for the accuracy cross-check.
_ACCURACY_MODES = {1: (48,), 2: (24, 24), 3: (12, 12, 12)}
_ACCURACY_POINTS = 2048


def _accuracy_pair(nufft_type, ndim, eps, precision, tuned_opts, rng):
    """Relative l2 error vs the exact NUDFT for default and tuned options."""
    n_modes = _ACCURACY_MODES[ndim]
    m = _ACCURACY_POINTS
    coords = [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]
    c = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    default_opts = Opts(precision=precision)

    def run(opts):
        if nufft_type == 3:
            targets = [rng.uniform(-0.5 * n, 0.5 * n, m) for n in n_modes]
            with Plan(3, ndim, eps=eps, opts=opts) as plan:
                plan.set_pts(*coords, **dict(zip(("s", "t", "u"), targets)))
                out = plan.execute(c)
            exact = nudft_type3(coords, c, targets)
            return relative_l2_error(out, exact)
        if nufft_type == 1:
            with Plan(1, n_modes, eps=eps, opts=opts) as plan:
                plan.set_pts(*coords)
                out = plan.execute(c)
            return relative_l2_error(out, nudft_type1(coords, c, n_modes))
        modes = rng.standard_normal(n_modes) + 1j * rng.standard_normal(n_modes)
        with Plan(2, n_modes, eps=eps, opts=opts) as plan:
            plan.set_pts(*coords)
            out = plan.execute(modes)
        return relative_l2_error(out, nudft_type2(coords, modes))

    # The tuned options were searched at the paper-scale problem; reusing the
    # method/bin choice at the check size only exercises the numerics, which
    # are method-independent by construction.
    rng_state = rng.bit_generator.state
    err_default = run(default_opts)
    rng.bit_generator.state = rng_state  # identical data for both runs
    err_tuned = run(tuned_opts)
    return float(err_default), float(err_tuned)


def run_autotune(quick=False, mode="model"):
    max_sample = (1 << 13) if quick else (1 << 16)
    tuner = Autotuner(max_sample=max_sample, measure_sample=1 << 11 if quick else 1 << 12)
    rng = np.random.default_rng(0)

    records = []
    for name, nufft_type, n_modes, m, eps, precision in sweep_configs(quick):
        problem = TuningProblem(nufft_type, n_modes, m, eps, precision)
        result = tuner.tune(problem, mode=mode)
        tuned_opts = result.apply_to(Opts(precision=precision),
                                     include_backend=True)
        err_default, err_tuned = _accuracy_pair(
            nufft_type, len(n_modes), eps, precision, tuned_opts, rng
        )
        records.append({
            "name": name,
            "nufft_type": nufft_type,
            "n_modes": list(n_modes),
            "n_points": m,
            "eps": eps,
            "precision": precision,
            "auto_exec_s": result.baseline_score_s,
            "tuned_exec_s": result.score_s,
            "speedup": result.speedup,
            "tuned": dict(result.opts),
            "n_candidates": result.n_candidates,
            "error_default": err_default,
            "error_tuned": err_tuned,
        })

    speedups = [r["speedup"] for r in records]
    geomean = float(np.exp(np.mean(np.log(speedups))))
    n_improved = sum(1 for s in speedups if s > 1.0 + IMPROVED_EPS)
    max_error_ratio = max(
        r["error_tuned"] / r["error_default"] for r in records
    )
    summary = {
        "quick": quick,
        "mode": mode,
        "max_sample": max_sample,
        "classes": records,
        "geomean_speedup": geomean,
        "min_speedup": float(min(speedups)),
        "max_speedup": float(max(speedups)),
        "n_classes": len(records),
        "n_improved": n_improved,
        "max_error_ratio": float(max_error_ratio),
    }

    existing = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as fh:
            existing = json.load(fh)
    existing["autotune"] = summary
    with open(JSON_PATH, "w") as fh:
        json.dump(existing, fh, indent=2)

    rows = [
        [r["name"], r["n_points"],
         f"{r['tuned']['method']} {tuple(r['tuned']['bin_shape'])} "
         f"Msub={r['tuned']['max_subproblem_size']} tpb={r['tuned']['threads_per_block']}",
         1e3 * r["auto_exec_s"], 1e3 * r["tuned_exec_s"], r["speedup"],
         r["error_tuned"] / r["error_default"]]
        for r in records
    ]
    emit(
        "autotune",
        f"Autotuned vs AUTO plan parameters (modelled exec, mode={mode})",
        ["class", "M", "tuned config", "auto ms", "tuned ms", "speedup",
         "err ratio"],
        rows,
    )
    print(f"\nwrote {JSON_PATH} (autotune section)")
    print(f"geomean speedup: {geomean:.3f}x, improved on {n_improved}/"
          f"{len(records)} classes, max accuracy ratio {max_error_ratio:.3f}")
    return summary


if __name__ == "__main__":
    args = sys.argv[1:]
    run_autotune(quick="--quick" in args,
                 mode="measure" if "--measure" in args else "model")
