"""Figure 7: double-precision library comparison vs accuracy.

Same problem sizes as Figs. 4/5 (2D N = 1000^2, 3D N = 100^3, M = 1e7, "rand")
but in double precision with tolerances down to 1e-13.  gpuNUFFT is excluded
(its delivered error always exceeds ~1e-3, as the paper notes), and the SM
method is unavailable for high-accuracy 3D type-1 transforms (Remark 2), where
the library falls back to GM-sort -- the "method" column records which one ran.
"""

from benchmarks.common import emit, library_times, stats_for

M = 10_000_000
EPS_SWEEP = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12]
LIBRARIES = ["finufft", "cufinufft (SM)", "cufinufft (GM-sort)", "cunfft"]
CASES = [(2, (1000, 1000)), (3, (100, 100, 100))]


def run_fig7():
    rows = []
    for nufft_type in (1, 2):
        for ndim, n_modes in CASES:
            for eps in EPS_SWEEP:
                stats = stats_for("rand", M, n_modes, eps)
                row = [f"{ndim}D", f"type{nufft_type}", eps]
                methods = []
                for lib in LIBRARIES:
                    r = library_times(lib, nufft_type, n_modes, M, eps,
                                      precision="double", stats=stats)
                    if r is None:
                        row.append(float("nan"))
                        continue
                    row.append(r.ns_per_point("total+mem"))
                    if lib == "cufinufft (SM)":
                        methods.append(r.meta.get("method", "SM"))
                row.append(methods[0] if methods else "-")
                rows.append(row)
    emit(
        "fig7_accuracy_double",
        "Fig. 7 -- double precision, total+mem ns per NU point, rand, M=1e7",
        ["dim", "type", "eps"] + LIBRARIES + ["resolved SM method"],
        rows,
    )
    return rows


def test_fig7_accuracy_double(benchmark):
    rows = benchmark.pedantic(run_fig7, iterations=1, rounds=1)
    sm_col = 3 + LIBRARIES.index("cufinufft (SM)")
    gms_col = 3 + LIBRARIES.index("cufinufft (GM-sort)")
    fin_col = 3 + LIBRARIES.index("finufft")
    for row in rows:
        best_cufi = min(row[sm_col], row[gms_col])
        if row[1] == "type2":
            # type 2: cuFINUFFT is always the fastest (paper Sec. IV-C b)
            assert best_cufi < row[fin_col]
    # Remark 2: for high-accuracy 3D type-1 the SM method is unavailable -- the
    # "SM" adapter either refuses the configuration ("-") or resolves to GM-sort.
    deep_3d = [r for r in rows if r[0] == "3D" and r[1] == "type1" and r[2] <= 1e-8]
    assert deep_3d and all(r[-1] in ("GM-sort", "-") for r in deep_3d)


if __name__ == "__main__":
    run_fig7()
