"""Table I: 3D type-1 exec time, GPU RAM, speedup vs FINUFFT and spread fraction.

Reproduces the rows of paper Table I: N = 32^3 (M = 2.62e5) and N = 256^3
(M = 1.34e8), tolerances 1e-2 and 1e-5, "rand" distribution, single precision,
for the GM-sort and SM spreading methods.  Columns: modelled exec time, GPU
RAM (nvidia-smi style, including the CUDA-context baseline), exec speedup over
28-thread FINUFFT, and the fraction of exec spent spreading.
"""

from benchmarks.common import emit, library_times, stats_for
from repro.metrics import model_cufinufft

ROWS = [
    (1e-2, 32, 262_144),
    (1e-2, 256, 134_217_728),
    (1e-5, 32, 262_144),
    (1e-5, 256, 134_217_728),
]
METHODS = ["GM-sort", "SM"]


def run_table1():
    rows = []
    for eps, n, m in ROWS:
        n_modes = (n, n, n)
        stats = stats_for("rand", m, n_modes, eps)
        finufft = library_times("finufft", 1, n_modes, m, eps, stats=stats)
        for method in METHODS:
            r = model_cufinufft(1, n_modes, m, eps, method=method,
                                distribution="rand", stats=stats)
            rows.append([
                f"{eps:g}", f"{n}^3", f"{m:.3g}", method,
                r.times["exec"],
                r.ram_mb,
                finufft.times["exec"] / r.times["exec"],
                100.0 * r.spread_fraction,
            ])
    emit(
        "table1_3d_type1",
        "Table I -- 3D type 1, rand, single precision",
        ["eps", "N", "M", "method", "exec time (s)", "RAM (MB)",
         "speedup vs FINUFFT", "spread fraction (%)"],
        rows,
        floatfmt=".4g",
    )
    return rows


def test_table1_3d_type1(benchmark):
    rows = benchmark.pedantic(run_table1, iterations=1, rounds=1)
    by_key = {(r[0], r[1], r[3]): r for r in rows}
    # SM beats GM-sort on exec time in every row (paper: 0.0005 vs 0.0009 etc.)
    for eps in ("0.01", "1e-05"):
        for n in ("32^3", "256^3"):
            assert by_key[(eps, n, "SM")][4] < by_key[(eps, n, "GM-sort")][4]
    # spreading dominates exec (paper: > 90% in every row)
    assert all(r[7] > 80.0 for r in rows)
    # every configuration is faster than the 28-thread CPU library
    assert all(r[6] > 1.0 for r in rows)
    # the large problem uses several GB of device memory (paper: ~6.1 GB)
    assert by_key[("1e-05", "256^3", "SM")][5] > 3000


if __name__ == "__main__":
    run_table1()
