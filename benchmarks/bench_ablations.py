"""Ablation benchmarks for the hand-tuned design choices the paper calls out.

* **Bin size** (Remark 1): 32x32 in 2D and 16x16x2 in 3D were hand-tuned; this
  sweep shows the modelled SM spreading time across candidate bin shapes.
* **Msub** (Remark 1): the subproblem cap of 1024 balances load against
  write-back overhead; swept here for "rand" and "cluster" points.
* **Density rho** (Sec. IV): the paper states rho in {0.1, 1, 10} leads to the
  same conclusions; this sweep confirms the method ordering is preserved.
"""

import numpy as np

from benchmarks.common import emit, stats_for
from repro.core.options import Opts
from repro.metrics import model_cufinufft

EPS = 1e-5


def run_binsize_ablation():
    rows = []
    cases = {
        2: [(16, 16), (32, 32), (64, 64), (32, 64), (128, 32)],
        3: [(8, 8, 2), (16, 16, 2), (16, 16, 4), (8, 8, 8), (32, 32, 2)],
    }
    for ndim, bin_shapes in cases.items():
        n_fine = 2048 if ndim == 2 else 256
        fine_shape = (n_fine,) * ndim
        n_modes = tuple(n // 2 for n in fine_shape)
        m = int(np.prod(fine_shape))
        for bin_shape in bin_shapes:
            opts = Opts(bin_shape=bin_shape)
            stats = stats_for("rand", m, n_modes, EPS, fine_shape=fine_shape)
            # stats carry the bin geometry, so rebuild them with this bin shape
            from repro.metrics import sample_spread_stats

            stats = sample_spread_stats("rand", m, fine_shape, bin_shape, rng=0,
                                        max_sample=stats.bin_counts.sum() and 1 << 18)
            try:
                r = model_cufinufft(1, n_modes, m, EPS, method="SM", opts=opts,
                                    spread_only=True, fine_shape=fine_shape, stats=stats)
                rows.append([f"{ndim}D", "x".join(map(str, bin_shape)),
                             r.meta["method"], r.ns_per_point("exec")])
            except Exception as exc:  # oversized padded bin etc.
                rows.append([f"{ndim}D", "x".join(map(str, bin_shape)), "infeasible", float("nan")])
    emit(
        "ablation_binsize",
        "Ablation -- SM spreading time vs bin shape (rand, eps=1e-5, rho=1)",
        ["dim", "bin shape", "resolved method", "spread ns/pt"],
        rows,
    )
    return rows


def run_msub_ablation():
    rows = []
    fine_shape = (2048, 2048)
    n_modes = (1024, 1024)
    m = int(np.prod(fine_shape))
    for dist in ("rand", "cluster"):
        stats = stats_for(dist, m, n_modes, EPS, fine_shape=fine_shape)
        for msub in (128, 256, 512, 1024, 2048, 4096):
            opts = Opts(max_subproblem_size=msub)
            r = model_cufinufft(1, n_modes, m, EPS, method="SM", opts=opts,
                                distribution=dist, spread_only=True,
                                fine_shape=fine_shape, stats=stats)
            rows.append([dist, msub, r.ns_per_point("exec"), r.ns_per_point("total")])
    emit(
        "ablation_msub",
        "Ablation -- SM spreading time vs Msub (2D, eps=1e-5, rho=1)",
        ["dist", "Msub", "spread ns/pt", "total ns/pt"],
        rows,
    )
    return rows


def run_density_ablation():
    rows = []
    fine_shape = (2048, 2048)
    n_modes = (1024, 1024)
    for rho in (0.1, 1.0, 10.0):
        m = int(rho * np.prod(fine_shape))
        stats = stats_for("rand", m, n_modes, EPS, fine_shape=fine_shape)
        per_method = {}
        for method in ("GM", "GM-sort", "SM"):
            r = model_cufinufft(1, n_modes, m, EPS, method=method, spread_only=True,
                                fine_shape=fine_shape, stats=stats)
            per_method[method] = r.ns_per_point("total")
        rows.append([rho, per_method["GM"], per_method["GM-sort"], per_method["SM"]])
    emit(
        "ablation_density",
        "Ablation -- method ordering vs density rho (2D rand, eps=1e-5)",
        ["rho", "GM ns/pt", "GM-sort ns/pt", "SM ns/pt"],
        rows,
    )
    return rows


def test_ablation_binsize(benchmark):
    rows = benchmark.pedantic(run_binsize_ablation, iterations=1, rounds=1)
    # the paper's hand-tuned choices must be within 2x of the best swept shape
    for ndim, default in (("2D", "32x32"), ("3D", "16x16x2")):
        subset = [r for r in rows if r[0] == ndim and np.isfinite(r[3])]
        best = min(r[3] for r in subset)
        chosen = next(r[3] for r in subset if r[1] == default)
        assert chosen <= 2.0 * best


def test_ablation_msub(benchmark):
    rows = benchmark.pedantic(run_msub_ablation, iterations=1, rounds=1)
    assert all(np.isfinite(r[2]) for r in rows)


def test_ablation_density(benchmark):
    rows = benchmark.pedantic(run_density_ablation, iterations=1, rounds=1)
    # the SM < GM-sort < GM ordering holds at every density (paper Sec. IV)
    for rho, gm, gms, sm in rows:
        assert sm <= gms <= gm * 1.05


if __name__ == "__main__":
    run_binsize_ablation()
    run_msub_ablation()
    run_density_ablation()
