"""Interop benchmark: zero-copy steady state and facade fidelity.

Three measurements back the PR's memory-path claims:

* **Hot-path buffer events** -- with workspace reuse on and a
  caller-provided ``out=`` array, a steady-state ``execute`` must touch the
  allocator *zero* times: no fine-grid reallocation, no dtype-conversion
  copy, no terminal copy, no output allocation.  The
  :class:`~repro.metrics.allocs.AllocStats` attached to each execute's
  pipeline profile counts every such event; this benchmark reports the
  steady-state count per transform type (gate: exactly 0).
* **Throughput vs the churn baseline** -- the same problem run with
  ``reuse_workspace=False`` (every execute reallocates its fine grid and
  FFT buffer, the pre-refactor behaviour).  Reported as wall-clock
  executes/second and the reuse/churn ratio (gate: >= 1.0; reuse must never
  lose).
* **Facade fidelity** -- an upstream-style script run verbatim through
  :mod:`repro.finufft` and :mod:`repro.cufinufft` must produce
  **bit-identical** results to the native API at matching settings (gate:
  true).

Results merge into ``BENCH_throughput.json`` under the ``"interop"`` key::

    "interop": {
      "quick": bool,
      "hot_path_events":   {"type1": 0, "type2": 0, "type3": 0},
      "no_out_allocs":     {"type1": 1, ...},     # the fresh output block
      "churn_allocs":      {"type1": 2, ...},     # reuse_workspace=False
      "throughput": {"reuse_exec_per_s": float, "churn_exec_per_s": float,
                     "ratio": float},
      "facade_bit_identical": bool,
    }

``--quick`` shrinks the problem for the CI smoke run; the gates are
identical at every scale.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:  # allow `python benchmarks/bench_interop.py`
    sys.path.insert(0, REPO_ROOT)

from benchmarks.common import emit  # noqa: E402
from repro.core.plan import Plan  # noqa: E402

JSON_PATH = os.path.join(REPO_ROOT, "BENCH_throughput.json")

#: Steady state needs a couple of warm-up executes: the first run allocates
#: workspace views and (for type 3) the inner plan's buffers.
WARMUP = 2


def _problem(quick, rng):
    """Sized so churn *costs*: the fine grid + FFT buffer reallocated per
    execute must be large enough that allocator traffic and fresh-page
    faults register against the transform's own work (tiny grids drown the
    difference in numerics noise and the throughput gate turns into a coin
    flip)."""
    m = 1 << (11 if quick else 14)
    n_modes = (128, 128) if quick else (192, 192)
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    return m, n_modes, x, y


def _plans(n_modes, x, y, **opts):
    """One warm plan per transform type over the same 2D point set."""
    plans = {}
    for tp in (1, 2, 3):
        plan = Plan(tp, n_modes if tp != 3 else 2, eps=1e-6,
                    precision="single", **opts)
        if tp == 3:
            nk = max(64, x.size // 8)
            rng = np.random.default_rng(7)
            plan.set_pts(x, y, s=rng.uniform(-30, 30, nk),
                         t=rng.uniform(-30, 30, nk))
        else:
            plan.set_pts(x, y)
        plans[tp] = plan
    return plans


def _inputs_outputs(plans, n_modes, m, rng):
    """(input, preallocated out) pair for each plan, correct shape/dtype."""
    pairs = {}
    for tp, plan in plans.items():
        cplx = plan.precision.complex_dtype
        if tp == 2:
            data = (rng.standard_normal(n_modes)
                    + 1j * rng.standard_normal(n_modes)).astype(cplx)
            out = np.empty(m, dtype=cplx)
        elif tp == 1:
            data = (rng.standard_normal(m)
                    + 1j * rng.standard_normal(m)).astype(cplx)
            out = np.empty(n_modes, dtype=cplx)
        else:
            data = (rng.standard_normal(m)
                    + 1j * rng.standard_normal(m)).astype(cplx)
            out = np.empty(plan.n_targets, dtype=cplx)
        pairs[tp] = (data, out)
    return pairs


def _steady_state_events(plans, pairs, use_out=True):
    """Alloc+copy event count of a post-warm-up execute, per type."""
    events = {}
    for tp, plan in plans.items():
        data, out = pairs[tp]
        for _ in range(WARMUP):
            plan.execute(data, out=out if use_out else None)
        plan.execute(data, out=out if use_out else None)
        stats = plan.last_allocs
        events[f"type{tp}"] = int(stats.total_events)
    return events


def _paired_throughput(reuse, churn, n_iter, repeats=6):
    """Median executes/second for each mode, sampled interleaved.

    Alternating reuse/churn timing blocks within each repeat cancels
    machine-wide drift (CI neighbours, frequency scaling) that a
    back-to-back measurement would fold into the ratio; the median across
    repeats discards stragglers.
    """
    samples = {"reuse": [], "churn": []}
    for name, (plan, data, out) in (("reuse", reuse), ("churn", churn)):
        for _ in range(WARMUP):
            plan.execute(data, out=out)
    for _ in range(repeats):
        for name, (plan, data, out) in (("reuse", reuse), ("churn", churn)):
            t0 = time.perf_counter()
            for _ in range(n_iter):
                plan.execute(data, out=out)
            samples[name].append(n_iter / (time.perf_counter() - t0))
    return (float(np.median(samples["reuse"])),
            float(np.median(samples["churn"])))


def _facade_check(n_modes, x, y, rng):
    """Upstream-style scripts vs native plans: bit-identical or bust."""
    import repro.cufinufft as cufinufft
    import repro.finufft as finufft

    m = x.size
    c64 = (rng.standard_normal(m) + 1j * rng.standard_normal(m))
    c_single = c64.astype(np.complex64)

    checks = []
    # CPU-flavoured facade, double precision, upstream type-1 default +1.
    with finufft.Plan(1, n_modes, eps=1e-6, dtype="complex128") as p:
        p.setpts(x, y)
        got = p.execute(c64)
    ref = Plan(1, n_modes, eps=1e-6, precision="double", isign=+1)
    ref.set_pts(x, y)
    checks.append(np.array_equal(got, ref.execute(c64)))
    ref.destroy()

    # GPU-flavoured facade, single precision, SM method, simple call + out=.
    out = np.empty(n_modes, dtype=np.complex64)
    got = cufinufft.nufft2d1(x, y, c_single, n_modes, out=out, gpu_method=2)
    ref = Plan(1, n_modes, eps=1e-6, precision="single", isign=+1,
               method="SM")
    ref.set_pts(x, y)
    checks.append(got is out and np.array_equal(out, ref.execute(c_single)))
    ref.destroy()

    # Type-2 upstream default -1 matches the native type-2 convention.
    modes = (rng.standard_normal(n_modes)
             + 1j * rng.standard_normal(n_modes)).astype(np.complex64)
    got = cufinufft.nufft2d2(x, y, modes)
    ref = Plan(2, n_modes, eps=1e-6, precision="single", isign=-1)
    ref.set_pts(x, y)
    checks.append(np.array_equal(got, ref.execute(modes)))
    ref.destroy()
    return bool(all(checks))


def run_interop_bench(quick=False):
    rng = np.random.default_rng(0)
    m, n_modes, x, y = _problem(quick, rng)

    plans = _plans(n_modes, x, y)
    pairs = _inputs_outputs(plans, n_modes, m, rng)
    hot_path = _steady_state_events(plans, pairs, use_out=True)
    no_out = _steady_state_events(plans, pairs, use_out=False)

    churn_plans = _plans(n_modes, x, y, reuse_workspace=False)
    churn = _steady_state_events(churn_plans, _inputs_outputs(
        churn_plans, n_modes, m, rng), use_out=True)

    n_iter = 10 if quick else 40
    data, out = pairs[1]
    churn_data, churn_out = _inputs_outputs(churn_plans, n_modes, m, rng)[1]
    reuse_rate, churn_rate = _paired_throughput(
        (plans[1], data, out), (churn_plans[1], churn_data, churn_out),
        n_iter)
    ratio = reuse_rate / churn_rate

    for p in plans.values():
        p.destroy()
    for p in churn_plans.values():
        p.destroy()

    facade_ok = _facade_check(n_modes, x, y, rng)

    summary = {
        "quick": quick,
        "sample_points": m,
        "n_modes": list(n_modes),
        "hot_path_events": hot_path,
        "no_out_allocs": no_out,
        "churn_allocs": churn,
        "throughput": {
            "reuse_exec_per_s": reuse_rate,
            "churn_exec_per_s": churn_rate,
            "ratio": ratio,
        },
        "facade_bit_identical": facade_ok,
    }

    existing = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as fh:
            existing = json.load(fh)
    existing["interop"] = summary
    with open(JSON_PATH, "w") as fh:
        json.dump(existing, fh, indent=2)

    emit(
        "interop",
        f"Zero-copy execute path (M={m}, modes {n_modes}, single)",
        ["type", "hot-path events (out=)", "events (no out=)",
         "events (churn baseline)"],
        [[k, hot_path[k], no_out[k], churn[k]] for k in sorted(hot_path)],
    )
    print(f"\nwrote {JSON_PATH} (interop section)")
    print(f"throughput: reuse {reuse_rate:.1f} exec/s vs churn "
          f"{churn_rate:.1f} exec/s ({ratio:.2f}x)")
    print(f"facade bit-identical: {facade_ok}")
    return summary


if __name__ == "__main__":
    run_interop_bench(quick="--quick" in sys.argv[1:])
