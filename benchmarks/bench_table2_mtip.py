"""Table II: M-TIP slicing/merging NUFFT wall-clock, CPU vs single-rank vs whole-node.

Per-rank problems (eps = 1e-12, double precision): slicing = 3D type 2 with
N = 41^3 and M = 1.02e6 slice points; merging = 3D type 1 with N = 81^3 and
M = 1.64e7 points.  The CPU column models 40-thread FINUFFT on the Cori GPU
Skylake host; the GPU columns model cuFINUFFT on one V100 ("single-rank") and
on a whole node with one rank per GPU ("whole-node", 8 GPUs on Cori GPU and 6
on Summit -- the per-rank time is unchanged under ideal weak scaling while the
CPU must process the whole node's data).
"""

from benchmarks.common import emit, stats_for
from repro.baselines.finufft_cpu import CPUCostConstants, FinufftCPU
from repro.cluster import CORI_GPU_NODE, SUMMIT_NODE
from repro.metrics import model_cufinufft

EPS = 1e-12
TASKS = [
    ("Slicing (type 2)", 2, (41, 41, 41), 1_020_000),
    ("Merging (type 1)", 1, (81, 81, 81), 16_400_000),
]


def run_table2():
    cpu40 = FinufftCPU(CPUCostConstants(n_threads=40))
    rows = []
    for label, nufft_type, n_modes, m_per_rank in TASKS:
        stats = stats_for("rand", m_per_rank, n_modes, EPS)
        gpu = model_cufinufft(nufft_type, n_modes, m_per_rank, EPS,
                              precision="double", stats=stats)
        gpu_s = gpu.times["total+mem"]
        cpu_single = cpu40.model_times(nufft_type, n_modes, m_per_rank, EPS,
                                       precision="double").times["total"]
        for node in (CORI_GPU_NODE, SUMMIT_NODE):
            cpu_node = cpu40.model_times(
                nufft_type, n_modes, m_per_rank * node.n_gpus, EPS, precision="double"
            ).times["total"]
            rows.append([
                label, node.name, "single-rank", cpu_single, gpu_s, cpu_single / gpu_s,
            ])
            rows.append([
                label, node.name, "whole-node", cpu_node, gpu_s, cpu_node / gpu_s,
            ])
    emit(
        "table2_mtip",
        "Table II -- M-TIP NUFFT wall-clock per iteration (seconds), eps=1e-12",
        ["task", "system", "parallelism", "CPU time (s)", "GPU time (s)", "speedup"],
        rows,
        floatfmt=".3g",
    )
    return rows


def test_table2_mtip(benchmark):
    rows = benchmark.pedantic(run_table2, iterations=1, rounds=1)
    # whole-node speedups are larger than single-rank speedups (paper: 5-12x
    # vs ~0.9-1.5x) because the CPU has to absorb the node's full workload.
    for label, *_ in TASKS:
        single = [r for r in rows if r[0] == label and r[2] == "single-rank"]
        whole = [r for r in rows if r[0] == label and r[2] == "whole-node"]
        for s, w in zip(single, whole):
            assert w[5] > s[5]
            assert w[5] > 2.0
    # merging is the heavier step (paper: ~1.8 s vs ~0.08 s on the GPU)
    slicing_gpu = [r[4] for r in rows if r[0].startswith("Slicing")][0]
    merging_gpu = [r[4] for r in rows if r[0].startswith("Merging")][0]
    assert merging_gpu > slicing_gpu


if __name__ == "__main__":
    run_table2()
