"""Distributed NUFFT benchmark: strong scaling, halo traffic, comm overlap.

One oversized type-1 (and, in the full run, type-2) problem is fixed and
executed by :class:`~repro.cluster.distributed.DistributedPlan` at growing
rank counts on a simulated Cori GPU node (Sec. V's environment).  Reported
per rank count: the slowest rank's modelled compute, the SimComm-charged
communication phases (scatter / halo / transpose / gather), the
halo-behind-local-FFT overlap credit, the resulting makespan, the
strong-scaling efficiency relative to one rank, and the exact halo volume.

Results merge into ``BENCH_throughput.json`` under the ``"distributed"``
key.  ``--quick`` selects the CI smoke configuration, which gates:

* 4-rank strong-scaling efficiency >= 0.7;
* every rank count's output within ``10 * eps`` of the single-plan
  reference;
* measured halo bytes == the analytic halo-volume formula, exactly.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:  # allow `python benchmarks/bench_distributed.py`
    sys.path.insert(0, REPO_ROOT)

from benchmarks.common import emit  # noqa: E402
from repro.cluster import run_strong_scaling_multinode  # noqa: E402
from repro.core.gridsize import fine_grid_shape  # noqa: E402
from repro.core.slab import analytic_halo_bytes  # noqa: E402
from repro.kernels import ESKernel  # noqa: E402

JSON_PATH = os.path.join(REPO_ROOT, "BENCH_throughput.json")


def _sweeps(quick):
    """(label, kwargs) per strong-scaling sweep."""
    if quick:
        return [("type1 32^3", dict(
            nufft_type=1, n_modes=(32, 32, 32), n_points=60_000,
            eps=1e-9, rank_counts=(1, 2, 4), precision="double",
        ))]
    return [
        ("type1 48^3", dict(
            nufft_type=1, n_modes=(48, 48, 48), n_points=200_000,
            eps=1e-9, rank_counts=(1, 2, 4, 8), precision="double",
        )),
        ("type2 48^3", dict(
            nufft_type=2, n_modes=(48, 48, 48), n_points=200_000,
            eps=1e-9, rank_counts=(1, 2, 4, 8), precision="double",
        )),
    ]


def _sweep_record(label, kwargs, result):
    """JSON record of one sweep, halo bytes cross-checked analytically."""
    kernel = ESKernel.from_tolerance(kwargs["eps"])
    fine_shape = fine_grid_shape(kwargs["n_modes"], kernel.width)
    itemsize = 16 if kwargs["precision"] == "double" else 8
    efficiency = result.efficiency()
    points = []
    for i, p in enumerate(result.points):
        expected_halo = analytic_halo_bytes(
            fine_shape, p.n_ranks, kernel.width, itemsize
        )
        assert p.halo_bytes == expected_halo, (
            f"{label} P={p.n_ranks}: measured halo bytes {p.halo_bytes} != "
            f"analytic {expected_halo}"
        )
        comm_hidden = p.overlap_s / p.comm_s if p.comm_s > 0 else 0.0
        points.append({
            "n_ranks": p.n_ranks,
            "compute_s": p.compute_s,
            "comm_s": p.comm_s,
            "overlap_s": p.overlap_s,
            "makespan_s": p.makespan_s,
            "efficiency": efficiency[i],
            "halo_bytes": p.halo_bytes,
            "transpose_bytes": p.transpose_bytes,
            "comm_hidden_fraction": comm_hidden,
            "rel_err": p.rel_err,
        })
    return {
        "label": label,
        "nufft_type": kwargs["nufft_type"],
        "n_modes": list(kwargs["n_modes"]),
        "n_points": kwargs["n_points"],
        "eps": kwargs["eps"],
        "precision": kwargs["precision"],
        "node": result.node_name,
        "points": points,
    }


def run_distributed_bench(quick=False):
    records = []
    for label, kwargs in _sweeps(quick):
        result = run_strong_scaling_multinode(task_label=label, **kwargs)
        records.append(_sweep_record(label, kwargs, result))
        emit(
            f"distributed_strong_scaling_{'quick' if quick else label.split()[0]}",
            f"Distributed strong scaling ({label}, {result.node_name})",
            ["ranks", "compute ms", "comm ms", "overlap ms", "makespan ms",
             "efficiency", "halo MB"],
            [list(row) for row in result.rows()],
        )

    eff_at_4 = [
        p["efficiency"] for r in records for p in r["points"]
        if p["n_ranks"] == 4
    ]
    max_rel_err = max(p["rel_err"] for r in records for p in r["points"])
    summary = {
        "quick": quick,
        "sweeps": records,
        "eps": records[0]["eps"],
        "min_efficiency_4_ranks": min(eff_at_4),
        "max_rel_err": max_rel_err,
        "halo_bytes_exact": True,  # asserted per point in _sweep_record
    }

    existing = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as fh:
            existing = json.load(fh)
    existing["distributed"] = summary
    with open(JSON_PATH, "w") as fh:
        json.dump(existing, fh, indent=2)

    print(f"\nwrote {JSON_PATH} (distributed section)")
    print(f"4-rank strong-scaling efficiency: {min(eff_at_4):.3f}")
    print(f"max |distributed - single plan| rel err: {max_rel_err:.2e} "
          f"(10*eps = {10 * summary['eps']:.0e})")
    for r in records:
        hidden = np.mean([p["comm_hidden_fraction"] for p in r["points"]
                          if p["n_ranks"] > 1]) if len(r["points"]) > 1 else 0.0
        print(f"{r['label']}: mean comm hidden behind local FFTs "
              f"{hidden:.1%} (ranks > 1)")
    return summary


if __name__ == "__main__":
    run_distributed_bench(quick="--quick" in sys.argv[1:])
