"""Chaos benchmark: availability and goodput of the service under faults.

Measures what the resilience layer (``repro.faults`` + circuit breakers +
:class:`~repro.service.RetryPolicy`) buys a :class:`TransformService` facing
flaky simulated hardware:

* **Fault-rate sweep** -- a fixed mixed request load is served on a 4-device
  fleet while the per-launch transient-fault rate sweeps from 0 to 20%.
  Reported per point: availability (completed / submitted), goodput
  (modelled completed requests/s), retries, and *wrong results* -- outputs
  that differ from the fault-free run.  Wrong results must be zero at every
  rate: retries recompute, they never corrupt.
* **Hard-death scenario** -- one device of four dies mid-run.  Reported:
  availability (must stay 1.0 after the breaker/eviction reroutes work),
  throughput degradation vs the healthy fleet, and the failure taxonomy.

Everything is deterministic under ``REPRO_FAULT_SEED`` (the schedule, the
backoff jitter, the modelled timelines), so the numbers are exactly
reproducible.  Results merge into ``BENCH_throughput.json`` under the
``"chaos"`` key.  ``--quick`` selects the CI smoke configuration, which
gates availability >= 0.99 at a 10% transient rate, zero wrong results,
and <= 35% throughput degradation (with zero errors) after a hard death.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:  # allow `python benchmarks/bench_chaos.py`
    sys.path.insert(0, REPO_ROOT)

from benchmarks.common import emit  # noqa: E402
from repro.core.env import bench_sample_size  # noqa: E402
from repro.faults import FaultInjector, FaultSpec, fault_seed_from_env  # noqa: E402
from repro.service import RetryPolicy, TransformService  # noqa: E402

JSON_PATH = os.path.join(REPO_ROOT, "BENCH_throughput.json")

N_DEVICES = 4
MAX_ATTEMPTS = 8


def _build_requests(quick, rng):
    """Mixed request load: groups of same-points one-shot requests."""
    m = bench_sample_size(1 << 10 if quick else 1 << 12)
    n_groups = 16 if quick else 32
    per_group = 3
    requests = []
    for g in range(n_groups):
        coords = {"x": rng.uniform(-np.pi, np.pi, m)}
        for i in range(per_group):
            data = rng.standard_normal(m) + 1j * rng.standard_normal(m)
            requests.append(dict(nufft_type=1, n_modes=(64,), data=data,
                                 eps=1e-6, precision="single",
                                 tag=(g, i), **coords))
    return requests, m


def _serve(requests, injector=None, n_devices=N_DEVICES):
    service = TransformService(
        n_devices=n_devices, fault_injector=injector,
        retry=RetryPolicy(max_attempts=MAX_ATTEMPTS),
    )
    for fields in requests:
        service.submit(**fields)
    results = {r.tag: r for r in service.flush()}
    stats = service.stats
    makespan = service.makespan()
    service.close()
    return results, stats, makespan


def _availability_point(rate, requests, baseline, seed):
    injector = None
    if rate > 0.0:
        injector = FaultInjector([FaultSpec("transient", rate=rate)],
                                 seed=seed)
    results, stats, makespan = _serve(requests, injector)
    completed = [r for r in results.values() if r.error is None]
    wrong = sum(
        1 for r in completed
        if not np.array_equal(r.output, baseline[r.tag].output)
    )
    n = len(requests)
    return {
        "fault_rate": rate,
        "n_requests": n,
        "completed": len(completed),
        "availability": len(completed) / n,
        "goodput_rps": len(completed) / makespan if makespan > 0 else 0.0,
        "retries": stats.retries,
        "breaker_trips": stats.breaker_trips,
        "wrong_results": wrong,
        "injected": dict(injector.stats.injected) if injector else {},
    }


def _death_scenario(requests, baseline, healthy_makespan, seed):
    """One of four devices dies mid-run; work must reroute with zero errors."""
    injector = FaultInjector(
        [FaultSpec("death", rate=1.0, device_ids=(1,), after_events=40)],
        seed=seed,
    )
    results, stats, makespan = _serve(requests, injector)
    completed = [r for r in results.values() if r.error is None]
    wrong = sum(
        1 for r in completed
        if not np.array_equal(r.output, baseline[r.tag].output)
    )
    n = len(requests)
    degradation = (makespan - healthy_makespan) / healthy_makespan
    return {
        "n_requests": n,
        "completed": len(completed),
        "availability": len(completed) / n,
        "errors": n - len(completed),
        "wrong_results": wrong,
        "device_died": injector.is_dead(1),
        "throughput_degradation": degradation,
        "makespan_s": makespan,
        "healthy_makespan_s": healthy_makespan,
        "failures_by_type": dict(stats.failures_by_type),
    }


def run_chaos_bench(quick=False):
    seed = fault_seed_from_env(default=1234)
    rng = np.random.default_rng(0)
    requests, m = _build_requests(quick, rng)

    baseline, _, healthy_makespan = _serve(requests)
    baseline_results = {tag: r for tag, r in baseline.items()}

    rates = (0.0, 0.05, 0.10) if quick else (0.0, 0.02, 0.05, 0.10, 0.20)
    sweep = [_availability_point(rate, requests, baseline_results, seed)
             for rate in rates]
    death = _death_scenario(requests, baseline_results, healthy_makespan, seed)

    summary = {
        "quick": quick,
        "seed": seed,
        "sample_points": m,
        "n_devices": N_DEVICES,
        "max_attempts": MAX_ATTEMPTS,
        "sweep": sweep,
        "hard_death": death,
    }

    existing = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as fh:
            existing = json.load(fh)
    existing["chaos"] = summary
    with open(JSON_PATH, "w") as fh:
        json.dump(existing, fh, indent=2)

    emit(
        "chaos_availability",
        f"Availability vs transient-fault rate (M={m}, "
        f"{len(requests)} requests, {N_DEVICES} devices, "
        f"max_attempts={MAX_ATTEMPTS}, seed={seed})",
        ["fault rate", "availability", "goodput req/s", "retries",
         "breaker trips", "wrong results"],
        [[p["fault_rate"], p["availability"], p["goodput_rps"],
          p["retries"], p["breaker_trips"], p["wrong_results"]]
         for p in sweep],
    )
    emit(
        "chaos_hard_death",
        "Hard death of 1/4 devices mid-run",
        ["availability", "errors", "wrong results", "degradation",
         "makespan ms", "healthy ms"],
        [[death["availability"], death["errors"], death["wrong_results"],
          death["throughput_degradation"], 1e3 * death["makespan_s"],
          1e3 * death["healthy_makespan_s"]]],
    )
    print(f"\nwrote {JSON_PATH} (chaos section)")

    at_10 = next(p for p in sweep if abs(p["fault_rate"] - 0.10) < 1e-12)
    print(f"availability at 10% fault rate: {at_10['availability']:.4f} "
          f"({at_10['retries']} retries, {at_10['wrong_results']} wrong)")
    print(f"hard death: availability {death['availability']:.4f}, "
          f"degradation {death['throughput_degradation']:.1%}")

    if quick:
        # CI smoke gates (see .github/workflows/ci.yml).
        assert at_10["availability"] >= 0.99, (
            f"availability {at_10['availability']:.4f} < 0.99 at 10% rate"
        )
        assert all(p["wrong_results"] == 0 for p in sweep), "wrong results"
        assert death["wrong_results"] == 0, "wrong results after death"
        assert death["errors"] == 0, f"{death['errors']} errors after death"
        assert death["throughput_degradation"] <= 0.35, (
            f"degradation {death['throughput_degradation']:.1%} > 35%"
        )
        print("quick gates passed: availability >= 0.99 at 10% rate, "
              "0 wrong results, death degradation <= 35% with 0 errors")
    return summary


if __name__ == "__main__":
    run_chaos_bench(quick="--quick" in sys.argv[1:])
