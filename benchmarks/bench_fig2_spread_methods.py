"""Figure 2: spreading-method comparison (GM vs GM-sort vs SM).

Regenerates, for 2D and 3D, "rand" and "cluster" distributions, rho = 1 and
eps = 1e-5 (single precision), the execution time per nonuniform point of the
three spreading methods, both including ("total") and excluding ("spread") the
bin-sorting precomputation -- the series of paper Fig. 2, with the GM-sort and
SM speedups over GM annotated per grid size.
"""

import numpy as np

from benchmarks.common import emit, stats_for
from repro.metrics import model_cufinufft

FINE_SIZES = {2: [128, 256, 512, 1024, 2048, 4096], 3: [32, 64, 128, 256, 512]}
EPS = 1e-5
METHODS = ["GM", "GM-sort", "SM"]


def run_fig2():
    rows = []
    for ndim, sizes in FINE_SIZES.items():
        for dist in ("rand", "cluster"):
            for n_fine in sizes:
                fine_shape = (n_fine,) * ndim
                n_modes = tuple(n // 2 for n in fine_shape)
                m = int(np.prod(fine_shape))  # rho = 1
                stats = stats_for(dist, m, n_modes, EPS, fine_shape=fine_shape)
                per_method = {}
                for method in METHODS:
                    r = model_cufinufft(
                        1, n_modes, m, EPS, method=method, distribution=dist,
                        spread_only=True, fine_shape=fine_shape, stats=stats,
                    )
                    per_method[method] = r
                gm_total = per_method["GM"].ns_per_point("total")
                rows.append([
                    f"{ndim}D", dist, n_fine,
                    gm_total,
                    per_method["GM-sort"].ns_per_point("exec"),
                    per_method["GM-sort"].ns_per_point("total"),
                    per_method["SM"].ns_per_point("exec"),
                    per_method["SM"].ns_per_point("total"),
                    gm_total / per_method["GM-sort"].ns_per_point("total"),
                    gm_total / per_method["SM"].ns_per_point("total"),
                ])
    emit(
        "fig2_spread_methods",
        "Fig. 2 -- spreading methods, eps=1e-5, rho=1, single precision (ns per NU point)",
        ["dim", "dist", "n_fine", "GM total", "GM-sort spread", "GM-sort total",
         "SM spread", "SM total", "GM-sort speedup", "SM speedup"],
        rows,
    )
    return rows


def test_fig2_spread_methods(benchmark):
    rows = benchmark.pedantic(run_fig2, iterations=1, rounds=1)
    # shape checks mirroring the paper's annotations: on the largest 2D "rand"
    # grid bin-sorting wins clearly, and SM is distribution-robust.
    largest_2d_rand = [r for r in rows if r[0] == "2D" and r[1] == "rand"][-1]
    assert largest_2d_rand[8] > 2.0          # GM-sort speedup over GM
    largest_2d_cluster = [r for r in rows if r[0] == "2D" and r[1] == "cluster"][-1]
    assert largest_2d_cluster[9] > 5.0       # SM speedup over GM on clustered points


if __name__ == "__main__":
    run_fig2()
