"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one of the paper's tables or figures as an
ASCII table: the same rows/series the paper reports, with modelled device
times (see ``DESIGN.md`` for the simulation substitution).  The pytest-benchmark
entry point in each module simply times the harness run itself; the scientific
output is the printed/saved table.

Scale control: set the environment variable ``REPRO_BENCH_SAMPLE`` to change
the number of nonuniform points actually sampled per configuration (default
2^18; the statistics are rescaled to the paper-scale point counts).
"""

from __future__ import annotations

import os

from repro.baselines import get_library
from repro.core.env import bench_sample_size as env_bench_sample_size
from repro.core.gridsize import fine_grid_shape
from repro.core.options import default_bin_shape
from repro.kernels import ESKernel
from repro.metrics import format_table, sample_spread_stats
from repro.metrics.tables import write_results

__all__ = [
    "bench_sample_size",
    "stats_for",
    "library_times",
    "emit",
]


def bench_sample_size():
    """Number of points sampled per configuration for the occupancy statistics."""
    return env_bench_sample_size()


def stats_for(distribution, n_points, n_modes, eps, fine_shape=None, rng=0):
    """Sampled (and rescaled) occupancy statistics for one configuration."""
    ndim = len(n_modes)
    if fine_shape is None:
        kernel = ESKernel.from_tolerance(eps)
        fine_shape = fine_grid_shape(n_modes, kernel.width)
    return sample_spread_stats(
        distribution,
        n_points,
        fine_shape,
        default_bin_shape(ndim),
        rng=rng,
        max_sample=bench_sample_size(),
    )


def library_times(library, nufft_type, n_modes, n_points, eps, distribution="rand",
                  precision="single", stats=None, **kwargs):
    """ModelResult for one library / configuration (None if unsupported)."""
    lib = get_library(library) if isinstance(library, str) else library
    if not lib.supports(nufft_type, len(n_modes), precision, eps):
        return None
    return lib.model_times(
        nufft_type, n_modes, n_points, eps, distribution=distribution,
        precision=precision, stats=stats, rng=0, **kwargs,
    )


def emit(name, title, headers, rows, floatfmt=".3g"):
    """Print a benchmark table and persist it under ``results/``."""
    text = format_table(headers, rows, title=title, floatfmt=floatfmt)
    print("\n" + text)
    write_results(name, text)
    return text
