"""Wall-clock throughput benchmark of the batched execution engine.

Unlike the Fig./Table benchmarks (which report *modelled* V100 times), this
module times the actual numpy implementation: spread-only, interpolation-only
and full type-1/type-2 ``execute`` calls, single-transform and batched
(``n_trans = 8``), on 2D and 3D workloads.

Each workload is run twice -- once with the default batched engine
(plan-level stencil cache + fused ``n_trans`` pass + Horner kernel) and once
with ``cache_stencils=False, kernel_eval="exact"``, which reproduces the seed
implementation's per-transform loop -- so the reported speedup tracks the
perf trajectory of the repository itself across PRs.

Results are printed as a table and written to ``BENCH_throughput.json`` at
the repository root.  ``REPRO_BENCH_SAMPLE`` scales the number of nonuniform
points (default 2^16); the CI smoke run uses 4096.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:  # allow `python benchmarks/bench_throughput.py`
    sys.path.insert(0, REPO_ROOT)

from benchmarks.common import emit  # noqa: E402
from repro import Plan  # noqa: E402
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_throughput.json")

#: Legacy options reproducing the seed implementation (the baseline).
LEGACY = dict(cache_stencils=False, kernel_eval="exact")


def _sample_points():
    return int(os.environ.get("REPRO_BENCH_SAMPLE", 1 << 16))


def _best_of(fn, repeats):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _make_data(rng, nufft_type, n_modes, m, n_trans):
    if nufft_type == 1:
        block = rng.standard_normal((n_trans, m)) + 1j * rng.standard_normal((n_trans, m))
    else:
        shape = (n_trans,) + tuple(n_modes)
        block = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return block if n_trans > 1 else block[0]


def run_workload(name, nufft_type, n_modes, m, eps, n_trans, rng, repeats=3):
    """Time one configuration with the batched engine and the seed baseline."""
    ndim = len(n_modes)
    coords = [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]
    data = _make_data(rng, nufft_type, n_modes, m, n_trans)

    plan = Plan(nufft_type, n_modes, n_trans=n_trans, eps=eps)
    t0 = time.perf_counter()
    plan.set_pts(*coords)
    setup_s = time.perf_counter() - t0
    plan.execute(data)  # warm-up (imports, Horner coefficient fit, fft wisdom)
    cached_s = _best_of(lambda: plan.execute(data), repeats)
    plan.destroy()

    legacy = Plan(nufft_type, n_modes, n_trans=n_trans, eps=eps, **LEGACY)
    legacy.set_pts(*coords)
    legacy.execute(data)  # warm-up
    legacy_s = _best_of(lambda: legacy.execute(data), max(1, repeats - 1))
    legacy.destroy()

    return {
        "name": name,
        "nufft_type": nufft_type,
        "n_modes": list(n_modes),
        "n_points": m,
        "eps": eps,
        "n_trans": n_trans,
        "setup_s": setup_s,
        "cached_exec_s": cached_s,
        "legacy_exec_s": legacy_s,
        "speedup": legacy_s / cached_s if cached_s > 0 else float("inf"),
    }


def run_throughput(repeats=3):
    m = _sample_points()
    rng = np.random.default_rng(0)
    configs = [
        ("2d_type1", 1, (128, 128), m, 1e-6),
        ("2d_type2", 2, (128, 128), m, 1e-6),
        ("3d_type1", 1, (32, 32, 32), max(1024, m // 2), 1e-6),
        ("3d_type2", 2, (32, 32, 32), max(1024, m // 2), 1e-6),
    ]
    records = []
    for name, nufft_type, n_modes, points, eps in configs:
        for n_trans in (1, 8):
            records.append(
                run_workload(name, nufft_type, n_modes, points, eps, n_trans, rng,
                             repeats=repeats)
            )

    batched = [r for r in records if r["n_trans"] == 8]
    batched_t1 = [r for r in batched if r["nufft_type"] == 1]
    summary = {
        "sample_points": m,
        "workloads": records,
        "min_speedup_ntrans8": min(r["speedup"] for r in batched),
        # Type-1 workloads are spread-dominated at any scale; type-2 becomes
        # FFT-bound at small smoke sizes (the FFT is unchanged by the batched
        # engine), so CI gates on the type-1 minimum.
        "min_speedup_ntrans8_type1": min(r["speedup"] for r in batched_t1),
        "geomean_speedup_ntrans8": float(
            np.exp(np.mean([np.log(r["speedup"]) for r in batched]))
        ),
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(summary, fh, indent=2)

    rows = [
        [r["name"], r["n_trans"], r["n_points"], 1e3 * r["setup_s"],
         1e3 * r["cached_exec_s"], 1e3 * r["legacy_exec_s"], r["speedup"]]
        for r in records
    ]
    emit(
        "throughput",
        f"Wall-clock throughput (M={m}, batched engine vs seed loop)",
        ["workload", "n_trans", "M", "setup ms", "cached ms", "seed ms", "speedup"],
        rows,
    )
    print(f"\nwrote {JSON_PATH}")
    print(f"min n_trans=8 speedup: {summary['min_speedup_ntrans8']:.2f}x "
          f"(type-1 only: {summary['min_speedup_ntrans8_type1']:.2f}x), "
          f"geomean: {summary['geomean_speedup_ntrans8']:.2f}x")
    return summary


if __name__ == "__main__":
    run_throughput()
