"""Wall-clock throughput benchmark of the execution-backend layer.

Unlike the Fig./Table benchmarks (which report *modelled* V100 times), this
module times the actual numpy implementation through each registered
execution backend:

* ``reference`` -- the seed implementation's per-transform loop with exact
  kernel evaluation (the baseline every speedup is measured against),
* ``cached``    -- the fused stencil-cache / CSR fast path,
* ``device_sim`` -- cached numerics plus the simulated-GPU cost profiles,

on 1D/2D/3D type-1 and type-2 workloads plus 1D/2D type-3 (nonuniform ->
nonuniform) compositions, single-transform and batched (``n_trans = 8``).

Results are printed as a table and written to ``BENCH_throughput.json`` at
the repository root.  ``REPRO_BENCH_SAMPLE`` scales the number of nonuniform
points (default 2^16); ``--quick`` selects the CI smoke configuration
(2^14 = 16384 points) whose geomean batched type-1 speedup is gated at 5x.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:  # allow `python benchmarks/bench_throughput.py`
    sys.path.insert(0, REPO_ROOT)

from benchmarks.common import emit  # noqa: E402
from repro.core.env import bench_sample_size  # noqa: E402
from repro import Plan  # noqa: E402

JSON_PATH = os.path.join(REPO_ROOT, "BENCH_throughput.json")

#: Backend sweep order; "reference" reproduces the seed implementation
#: (exact kernel evaluation, per-transform loop) and is the speedup baseline.
BACKENDS = ("reference", "cached", "device_sim")

#: Point count of the --quick (CI smoke) configuration.
QUICK_SAMPLE = 1 << 14


def _sample_points(quick=False):
    default = QUICK_SAMPLE if quick else 1 << 16
    return bench_sample_size(default)


def _best_of(fn, repeats):
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _make_data(rng, nufft_type, n_modes, m, n_trans):
    if nufft_type in (1, 3):
        block = rng.standard_normal((n_trans, m)) + 1j * rng.standard_normal((n_trans, m))
    else:
        shape = (n_trans,) + tuple(n_modes)
        block = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    return block if n_trans > 1 else block[0]


def _backend_opts(backend):
    # The reference backend replays the seed path: exact kernel evaluation.
    if backend == "reference":
        return dict(backend=backend, kernel_eval="exact")
    return dict(backend=backend)


def run_workload(name, nufft_type, n_modes, m, eps, n_trans, rng, repeats=3):
    """Time one configuration through every execution backend."""
    ndim = len(n_modes)
    coords = [rng.uniform(-np.pi, np.pi, m) for _ in range(ndim)]
    target_kw = {}
    if nufft_type == 3:
        targets = [rng.uniform(-0.5 * n_modes[d], 0.5 * n_modes[d], m)
                   for d in range(ndim)]
        target_kw = dict(zip(("s", "t", "u"), targets))
    data = _make_data(rng, nufft_type, n_modes, m, n_trans)

    backend_exec_s = {}
    setup_s = {}
    plan_modes = ndim if nufft_type == 3 else n_modes
    for backend in BACKENDS:
        reps = repeats if backend != "reference" else max(1, repeats - 1)
        plan = Plan(nufft_type, plan_modes, n_trans=n_trans, eps=eps,
                    **_backend_opts(backend))
        t0 = time.perf_counter()
        plan.set_pts(*coords, **target_kw)
        setup_s[backend] = time.perf_counter() - t0
        plan.execute(data)  # warm-up (imports, Horner coefficient fit, wisdom)
        backend_exec_s[backend] = _best_of(lambda: plan.execute(data), reps)
        plan.destroy()

    cached_s = backend_exec_s["cached"]
    legacy_s = backend_exec_s["reference"]
    return {
        "name": name,
        "nufft_type": nufft_type,
        "n_modes": list(n_modes),
        "n_points": m,
        "eps": eps,
        "n_trans": n_trans,
        "setup_s": setup_s["cached"],
        "backend_exec_s": backend_exec_s,
        "cached_exec_s": cached_s,
        "legacy_exec_s": legacy_s,
        "speedup": legacy_s / cached_s if cached_s > 0 else float("inf"),
    }


def run_throughput(repeats=3, quick=False):
    m = _sample_points(quick)
    rng = np.random.default_rng(0)
    configs = [
        # 1D modes kept well below M so the workload stays spread-dominated
        # (a paper-style density rho ~ 4) rather than FFT-bound.
        ("1d_type1", 1, (2048,), m, 1e-6),
        ("1d_type2", 2, (2048,), m, 1e-6),
        ("2d_type1", 1, (128, 128), m, 1e-6),
        ("2d_type2", 2, (128, 128), m, 1e-6),
        ("3d_type1", 1, (32, 32, 32), max(1024, m // 2), 1e-6),
        ("3d_type2", 2, (32, 32, 32), max(1024, m // 2), 1e-6),
        ("1d_type3", 3, (64,), m, 1e-6),
        ("2d_type3", 3, (48, 48), max(1024, m // 2), 1e-6),
    ]
    records = []
    for name, nufft_type, n_modes, points, eps in configs:
        for n_trans in (1, 8):
            records.append(
                run_workload(name, nufft_type, n_modes, points, eps, n_trans, rng,
                             repeats=repeats)
            )

    batched = [r for r in records if r["n_trans"] == 8]
    batched_t1 = [r for r in batched if r["nufft_type"] == 1]

    def geomean(values):
        return float(np.exp(np.mean([np.log(v) for v in values])))

    summary = {
        "sample_points": m,
        "quick": quick,
        "backends": list(BACKENDS),
        "workloads": records,
        "min_speedup_ntrans8": min(r["speedup"] for r in batched),
        # Type-1 workloads are spread-dominated at any scale; type-2 becomes
        # FFT-bound at small smoke sizes (the FFT is unchanged by the batched
        # engine), so CI gates on the type-1 numbers.
        "min_speedup_ntrans8_type1": min(r["speedup"] for r in batched_t1),
        "geomean_speedup_ntrans8": geomean([r["speedup"] for r in batched]),
        "geomean_speedup_ntrans8_type1": geomean([r["speedup"] for r in batched_t1]),
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(summary, fh, indent=2)

    rows = [
        [r["name"], r["n_trans"], r["n_points"], 1e3 * r["setup_s"],
         1e3 * r["backend_exec_s"]["cached"],
         1e3 * r["backend_exec_s"]["device_sim"],
         1e3 * r["backend_exec_s"]["reference"], r["speedup"]]
        for r in records
    ]
    emit(
        "throughput",
        f"Wall-clock throughput (M={m}, execution backends vs seed reference loop)",
        ["workload", "n_trans", "M", "setup ms", "cached ms", "device_sim ms",
         "reference ms", "speedup"],
        rows,
    )
    print(f"\nwrote {JSON_PATH}")
    print(f"min n_trans=8 speedup: {summary['min_speedup_ntrans8']:.2f}x "
          f"(type-1 only: {summary['min_speedup_ntrans8_type1']:.2f}x), "
          f"geomean: {summary['geomean_speedup_ntrans8']:.2f}x "
          f"(type-1 only: {summary['geomean_speedup_ntrans8_type1']:.2f}x)")
    return summary


if __name__ == "__main__":
    run_throughput(quick="--quick" in sys.argv[1:])
