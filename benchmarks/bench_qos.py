"""QoS benchmark: what the async micro-batching front-end buys (and costs).

Open-loop arrival traces are replayed against an
:class:`~repro.service.AsyncFrontend` in two modes: **windowed** (bounded
micro-batching windows fuse same-signature requests into ``n_trans`` blocks)
and **per_request** (``max_batch=1`` -- every request dispatches alone, the
baseline a server without a batching front-end would run).  Three traces:

* ``uniform`` -- one signature, saturating Poisson-free arrivals at 8x the
  single-request service rate: the batchable steady state where windows fill
  to ``max_batch`` and fusion's per-execute amortization shows up directly;
* ``bursty``  -- the same load arriving in window-sized bursts separated by
  idle gaps: the arrival pattern micro-batching is built for;
* ``skewed``  -- two tenants, one flooding and one light, exercising the
  deficit-round-robin fair share: reported per-tenant p50/p95/p99 and the
  light tenant's bounded max queue wait.

The windowed and per-request runs of the uniform trace serve *identical*
request data, and the benchmark asserts their outputs are **bit-identical**
-- fusion changes scheduling, never numerics.  Plan creation is not charged
(``charge_plan_creation=False``) and the pool is pre-warmed: this is a
steady-state serving measurement, the regime the front-end targets.

Results merge into ``BENCH_throughput.json`` under the ``"qos"`` key.
``--quick`` selects the CI smoke configuration, which gates windowed
throughput at >= 2x per-request on the uniform trace and the light tenant's
max queue wait under the skewed trace.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if REPO_ROOT not in sys.path:  # allow `python benchmarks/bench_qos.py`
    sys.path.insert(0, REPO_ROOT)

from benchmarks.common import emit  # noqa: E402
from repro.core.env import bench_sample_size  # noqa: E402
from repro.service import AsyncFrontend, TransformRequest, TransformService  # noqa: E402

JSON_PATH = os.path.join(REPO_ROOT, "BENCH_throughput.json")

#: Front-end knobs shared by every windowed run.
MAX_BATCH = 16
WINDOW_OVER_DT = 24  # window_s = WINDOW_OVER_DT * inter-arrival time


def _problem(quick, rng):
    """One shared geometry + point set (the fusable signature).

    Sized for the front-end's target regime -- many *small* transforms,
    where fixed per-execute costs (launches, per-call transfer latency,
    dispatch) rival the per-transform spread/FFT work and fusion pays.
    Large solo transforms saturate a device on their own; batching them
    buys little and a front-end would pass them straight through.
    """
    m = bench_sample_size(1 << 11 if quick else 1 << 12)
    n_modes = (32, 32) if quick else (48, 48)
    x = rng.uniform(-np.pi, np.pi, m)
    y = rng.uniform(-np.pi, np.pi, m)
    return m, n_modes, x, y


def _request(rng, m, n_modes, x, y, tenant="default"):
    data = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    return TransformRequest(nufft_type=1, n_modes=n_modes, data=data,
                            x=x, y=y, eps=1e-6, tenant=tenant)


def _make_service():
    return TransformService(charge_plan_creation=False)


def _warm_frontend(window_s, max_batch, rng, m, n_modes, x, y, **kwargs):
    """A frontend whose service pool already holds the trace's plans.

    Warms both the fused (``max_batch``) and the single (``n_trans=1``)
    plan so neither mode pays creation or first-``set_pts`` inside the
    measured trace, then rewinds the timelines and counters.
    """
    service = _make_service()
    for n in {max_batch, 1}:
        for _ in range(n):
            service.submit(_request(rng, m, n_modes, x, y))
        service.flush()
    service.reset_metrics()
    return AsyncFrontend(service, window_s=window_s, max_batch=max_batch,
                         **kwargs)


def _probe_single_cost(rng, m, n_modes, x, y):
    """Steady-state modelled seconds of one unfused request (warm plan)."""
    service = _make_service()
    for _ in range(4):
        service.submit(_request(rng, m, n_modes, x, y))
        service.flush()
    service.reset_metrics()
    n = 8
    for _ in range(n):
        service.submit(_request(rng, m, n_modes, x, y))
        service.flush()
    cost = service.makespan() / n
    service.close()
    return cost


def _replay(frontend, arrivals):
    """Drain one (request, at_s) trace; returns (results, record)."""
    for request, at_s in arrivals:
        frontend.submit(request, at_s=at_s)
    results = frontend.drain()
    failed = [r for r in results if r.error is not None]
    if failed:
        raise RuntimeError(f"{len(failed)} requests failed: {failed[0].error}")
    first_arrival = min(at_s for _, at_s in arrivals)
    last_done = max(r.completed_at for r in results)
    span = last_done - first_arrival
    e2e = np.array([r.e2e_s for r in results])
    record = {
        "n_requests": len(results),
        "throughput_rps": len(results) / span if span > 0 else float("inf"),
        "span_s": span,
        "p50_e2e_s": float(np.percentile(e2e, 50)),
        "p95_e2e_s": float(np.percentile(e2e, 95)),
        "p99_e2e_s": float(np.percentile(e2e, 99)),
        "max_e2e_s": float(e2e.max()),
        "windows": frontend.windows_dispatched,
        "largest_fusion": frontend.largest_fusion,
    }
    return results, record


def _run_trace(trace, mode, quick, seed, arrival_fn, **frontend_kwargs):
    """Build the trace with a fresh seeded rng and replay it in one mode."""
    rng = np.random.default_rng(seed)
    m, n_modes, x, y = _problem(quick, rng)
    dt = _probe_single_cost(np.random.default_rng(seed), m, n_modes, x, y) / 8
    window_s = WINDOW_OVER_DT * dt
    max_batch = MAX_BATCH if mode == "windowed" else 1
    frontend = _warm_frontend(window_s, max_batch, rng, m, n_modes, x, y,
                              **frontend_kwargs)
    # The trace gets its own rng: warm-up draw counts differ between modes,
    # and the bit-identity check needs both modes to serve identical data.
    arrivals = arrival_fn(np.random.default_rng(seed + 1), dt,
                          m, n_modes, x, y, quick)
    results, record = _replay(frontend, arrivals)
    record.update(trace=trace, mode=mode, window_s=window_s,
                  max_batch=max_batch)
    outputs = [r.output for r in results]
    tenants = {r.tenant for r in results}
    stats = frontend.service.stats
    per_tenant = (stats.latency_percentiles("tenant")
                  if len(tenants) > 1 else None)
    frontend.close()
    return record, outputs, per_tenant


def _uniform_arrivals(rng, dt, m, n_modes, x, y, quick):
    n = 64 if quick else 256
    return [(_request(rng, m, n_modes, x, y), k * dt) for k in range(n)]


def _bursty_arrivals(rng, dt, m, n_modes, x, y, quick):
    bursts = 4 if quick else 16
    gap = 2 * MAX_BATCH * dt  # idle stretch between bursts
    arrivals = []
    for b in range(bursts):
        for _ in range(MAX_BATCH):
            arrivals.append((_request(rng, m, n_modes, x, y), b * gap))
    return arrivals


def _skewed_arrivals(rng, dt, m, n_modes, x, y, quick):
    n_heavy = 64 if quick else 192
    n_light = 8 if quick else 16
    arrivals = [(_request(rng, m, n_modes, x, y, tenant="heavy"), 0.0)
                for _ in range(n_heavy)]
    # the light tenant trickles in while the heavy backlog drains
    light_dt = n_heavy * dt / n_light
    arrivals += [(_request(rng, m, n_modes, x, y, tenant="light"),
                  k * light_dt) for k in range(n_light)]
    return arrivals


def run_qos_bench(quick=False):
    seed = 0
    rng = np.random.default_rng(seed)
    m, n_modes, x, y = _problem(quick, rng)
    single_cost = _probe_single_cost(rng, m, n_modes, x, y)

    records = []
    traces = (("uniform", _uniform_arrivals), ("bursty", _bursty_arrivals))
    outputs = {}
    for trace, arrival_fn in traces:
        for mode in ("windowed", "per_request"):
            record, outs, _ = _run_trace(trace, mode, quick, seed, arrival_fn)
            records.append(record)
            outputs[(trace, mode)] = outs

    # Fusion must not change a single bit of any output.
    bit_identical = all(
        np.array_equal(a, b)
        for trace, _ in traces
        for a, b in zip(outputs[(trace, "windowed")],
                        outputs[(trace, "per_request")])
    )
    if not bit_identical:
        raise RuntimeError("windowed outputs differ from per-request outputs")

    skew_record, _, per_tenant = _run_trace(
        "skewed", "windowed", quick, seed, _skewed_arrivals)
    records.append(skew_record)

    by = {(r["trace"], r["mode"]): r for r in records}
    speedups = {
        trace: (by[(trace, "windowed")]["throughput_rps"]
                / by[(trace, "per_request")]["throughput_rps"])
        for trace, _ in traces
    }
    light = per_tenant["light"]
    heavy = per_tenant["heavy"]
    light_max_wait = light["queue_wait"]["max"]
    # Bound: one window plus draining the in-flight credit at the fused
    # rate -- what DRR guarantees a light tenant behind any backlog.
    frontend_inflight = 2 * MAX_BATCH  # default max_inflight, 1 device
    wait_bound = (skew_record["window_s"]
                  + 2 * frontend_inflight * single_cost)
    fair_share_ok = bool(
        light_max_wait <= wait_bound
        and light_max_wait <= 0.5 * heavy["queue_wait"]["max"]
    )

    summary = {
        "quick": quick,
        "sample_points": m,
        "n_modes": list(n_modes),
        "max_batch": MAX_BATCH,
        "single_request_cost_s": single_cost,
        "traces": records,
        "speedup_windowed_uniform": speedups["uniform"],
        "speedup_windowed_bursty": speedups["bursty"],
        "bit_identical": bit_identical,
        "tenants": {
            tenant: {kind: dict(entry) for kind, entry in kinds.items()}
            for tenant, kinds in per_tenant.items()
        },
        "light_max_queue_wait_s": light_max_wait,
        "light_wait_bound_s": wait_bound,
        "fair_share_ok": fair_share_ok,
    }

    # Merge under "qos" so the sections written by bench_throughput.py and
    # bench_service.py survive in the same report file.
    existing = {}
    if os.path.exists(JSON_PATH):
        with open(JSON_PATH) as fh:
            existing = json.load(fh)
    existing["qos"] = summary
    with open(JSON_PATH, "w") as fh:
        json.dump(existing, fh, indent=2)

    emit(
        "qos_throughput",
        f"Async front-end (M={m}, modes {n_modes}, max_batch={MAX_BATCH})",
        ["trace", "mode", "requests", "req/s (model)", "p50 e2e ms",
         "p99 e2e ms", "windows", "largest fusion"],
        [[r["trace"], r["mode"], r["n_requests"], r["throughput_rps"],
          1e3 * r["p50_e2e_s"], 1e3 * r["p99_e2e_s"], r["windows"],
          r["largest_fusion"]]
         for r in records],
    )
    emit(
        "qos_tenants",
        "Per-tenant latency under adversarial skew (windowed)",
        ["tenant", "requests", "p50 e2e ms", "p99 e2e ms",
         "p50 queue ms", "p99 queue ms", "max queue ms"],
        [[tenant, kinds["e2e"]["n"], 1e3 * kinds["e2e"]["p50"],
          1e3 * kinds["e2e"]["p99"], 1e3 * kinds["queue_wait"]["p50"],
          1e3 * kinds["queue_wait"]["p99"], 1e3 * kinds["queue_wait"]["max"]]
         for tenant, kinds in sorted(per_tenant.items())],
    )
    print(f"\nwrote {JSON_PATH} (qos section)")
    print(f"windowed vs per-request: uniform {speedups['uniform']:.1f}x, "
          f"bursty {speedups['bursty']:.1f}x modelled throughput "
          f"(bit-identical outputs: {bit_identical})")
    print(f"light tenant max queue wait {1e3 * light_max_wait:.3f} ms "
          f"(bound {1e3 * wait_bound:.3f} ms, fair_share_ok={fair_share_ok})")
    return summary


if __name__ == "__main__":
    run_qos_bench(quick="--quick" in sys.argv[1:])
