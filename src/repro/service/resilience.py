"""Retry, deadline and load-shedding policy objects of the serving layer.

The :class:`~repro.service.TransformService` stays available through the
fault kinds :mod:`repro.faults` injects by (a) retrying retryable device
faults under a :class:`RetryPolicy` with deterministic exponential backoff,
(b) enforcing per-request deadlines (``deadline_s``, raising
:class:`DeadlineExceededError` on the request's modelled timeline), and
(c) shedding the lowest-priority work with :class:`ServiceOverloadedError`
once its bounded intake queue overflows.

The async front-end (:mod:`repro.service.frontend`) sheds *within its
fairness discipline*: each tenant's sub-queue is bounded by a
:class:`FairShedPolicy`, so an overloaded tenant sheds its own
lowest-priority work and can never push another tenant's requests out.

Everything here is deterministic: backoff jitter is a ``blake2b`` hash of
``(seed, token, attempt)`` rather than a live RNG, so two runs of the same
request sequence with the same ``REPRO_FAULT_SEED`` back off identically --
the same property the :class:`~repro.faults.FaultInjector` guarantees for
the fault schedule itself.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..faults import DeviceFaultError, fault_seed_from_env

__all__ = ["RetryPolicy", "FairShedPolicy", "ServiceOverloadedError",
           "DeadlineExceededError"]


class ServiceOverloadedError(RuntimeError):
    """The service's bounded intake queue is full and this request was shed.

    Raised (or attached to a :class:`~repro.service.TransformResult`) for the
    lowest-priority work when queue depth exceeds the service's
    ``max_queue_depth``.  The request was never executed; resubmitting later,
    or with a higher ``priority``, may succeed.
    """


class DeadlineExceededError(TimeoutError):
    """The request's modelled completion would land past its ``deadline_s``.

    Deadlines are budgets relative to the request's first dispatch on the
    modelled timeline; they classify slow completions (stuck launches, long
    retry chains) as timeouts rather than letting them occupy devices.
    """


@dataclass(frozen=True)
class FairShedPolicy:
    """Per-tenant bounded-queue shedding for the async front-end.

    The service's global ``max_queue_depth`` sheds the lowest-priority
    request *anywhere* in the queue -- correct for a single shared queue,
    but under multi-tenant fair share it would let one flooding tenant evict
    everyone else's low-priority work.  This policy bounds each tenant's
    sub-queue *separately*: overflow sheds the lowest-priority request of
    the overflowing tenant only, so backpressure lands on the caller who
    created it.

    Parameters
    ----------
    max_pending : int
        Maximum requests a single tenant may have waiting in its sub-queue
        (admitted-to-window and in-flight work does not count).

    The victim rank is ``(priority, -seq)`` -- the service's rule: among
    equal priorities the *newest* request sheds first, so an incoming
    request loses ties and a queued victim is only ever chosen when it ranks
    strictly lower than the incoming one.
    """

    max_pending: int = 256

    def __post_init__(self):
        if int(self.max_pending) < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        object.__setattr__(self, "max_pending", int(self.max_pending))

    def pick_victim(self, pending, incoming_seq, incoming_request):
        """Victim index in ``pending``, or ``None`` when the incoming loses.

        ``pending`` is a sequence of objects carrying ``seq`` and
        ``request`` attributes (the front-end's queued entries).  Returns
        the index of the queued request to shed, or ``None`` when the
        incoming request itself ranks lowest (it should be shed unseated).
        """
        victim_i = None
        victim_rank = (incoming_request.priority, -int(incoming_seq))
        for i, entry in enumerate(pending):
            rank = (entry.request.priority, -entry.seq)
            if rank < victim_rank:
                victim_rank = rank
                victim_i = i
        return victim_i


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and deterministic exponential backoff for device faults.

    Parameters
    ----------
    max_attempts : int
        Total attempts per unit of work (1 = no retries).
    base_backoff_s : float
        Modelled backoff before the first retry; attempt ``k`` (1-based
        retry index) waits ``base * multiplier**(k-1)``, capped at
        ``max_backoff_s``, then jittered.
    backoff_multiplier : float
        Exponential growth factor (>= 1).
    max_backoff_s : float
        Upper bound on the un-jittered backoff.
    jitter : float
        Fractional jitter amplitude in ``[0, 1]``: the backoff is scaled by
        ``1 + jitter * (u - 0.5)`` where ``u`` is a deterministic uniform
        deviate drawn from ``(seed, token, attempt)``.
    seed : int, optional
        Jitter seed; defaults to ``REPRO_FAULT_SEED`` (0 when unset) so the
        whole resilience stack shares one reproducibility knob.

    Examples
    --------
    >>> policy = RetryPolicy(max_attempts=4, base_backoff_s=1e-3, jitter=0.0)
    >>> [round(policy.backoff_s(k, "req-0"), 4) for k in (1, 2, 3)]
    [0.001, 0.002, 0.004]
    """

    max_attempts: int = 3
    base_backoff_s: float = 1e-3
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 0.1
    jitter: float = 0.1
    seed: int = None

    def __post_init__(self):
        if int(self.max_attempts) < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        object.__setattr__(self, "max_attempts", int(self.max_attempts))
        if self.base_backoff_s < 0.0:
            raise ValueError(
                f"base_backoff_s must be >= 0, got {self.base_backoff_s}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.max_backoff_s < 0.0:
            raise ValueError(f"max_backoff_s must be >= 0, got {self.max_backoff_s}")
        if not 0.0 <= float(self.jitter) <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.seed is None:
            object.__setattr__(self, "seed", fault_seed_from_env())
        else:
            object.__setattr__(self, "seed", int(self.seed))

    def should_retry(self, exc):
        """Whether ``exc`` is retryable under this policy.

        Only the simulated device-fault taxonomy
        (:class:`~repro.faults.DeviceFaultError` subclasses) is retryable;
        validation errors (``ValueError`` / ``TypeError``) and arbitrary
        application exceptions are not -- retrying them would just repeat
        the failure.
        """
        return isinstance(exc, DeviceFaultError)

    def backoff_s(self, attempt, token=""):
        """Modelled backoff (seconds) before retry number ``attempt`` (1-based).

        Deterministic in ``(seed, token, attempt)``; pass a per-request token
        (e.g. the request id) so concurrent retry chains decorrelate.
        """
        attempt = int(attempt)
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        backoff = min(
            self.base_backoff_s * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter > 0.0 and backoff > 0.0:
            raw = f"{self.seed}:{token}:{attempt}".encode()
            digest = hashlib.blake2b(raw, digest_size=8).digest()
            u = int.from_bytes(digest, "big") / 2.0**64
            backoff *= 1.0 + self.jitter * (u - 0.5)
        return backoff
