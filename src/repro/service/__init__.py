"""Concurrent transform service: plan pooling, coalescing, device sharding.

The paper's plan interface (plan / set_pts / execute) exists so that repeated
transforms amortize their setup.  This package applies that amortization to a
*serving* workload: callers submit one-shot NUFFT requests and the
:class:`TransformService`

* pools :class:`~repro.core.plan.Plan` objects by geometry key
  ``(type, modes/dim, eps, precision, method, backend, n_trans)``,
* coalesces same-geometry / same-points requests into fused ``n_trans``
  blocks (the batched engine of PR 1 executes them in one vectorized pass),
* shards large blocks over a :class:`~repro.cluster.fleet.DeviceFleet` of
  simulated GPUs, mirroring the paper's multi-GPU weak-scaling experiment
  (Fig. 9),
* models stream-level h2d / exec / d2h overlap through the existing
  :mod:`repro.gpu` profiler and cost model, reporting modelled requests/s
  and per-device utilization, and
* optionally autotunes every plan it creates (``TransformService(tune=...)``,
  see :mod:`repro.tuning`): all pooled plans share one
  :class:`~repro.tuning.Autotuner` and its persistent cache, so concurrent
  requests of one problem signature trigger a single tuning run, and
* stays available through injected device faults (:mod:`repro.faults`):
  retryable failures re-dispatch under a :class:`RetryPolicy`, per-device
  circuit breakers steer placement away from flaky GPUs, ``deadline_s``
  budgets classify slow requests as timeouts, and a bounded intake queue
  (``max_queue_depth``) sheds the lowest-priority work with
  :class:`ServiceOverloadedError` under overload, and
* offers an async micro-batching front-end (:class:`AsyncFrontend`): open-loop
  arrivals collect in bounded windows that fuse same-signature requests into
  ``n_trans`` blocks, a deficit round-robin scheduler gives tenants weighted
  fair shares (shedding within each tenant's own bounded sub-queue via
  :class:`FairShedPolicy`), and per-tenant / per-signature p50/p95/p99
  latency percentiles land in :class:`ServiceStats`.

Quickstart (mirrors the :class:`~repro.core.plan.Plan` quickstart)
------------------------------------------------------------------

>>> import numpy as np
>>> from repro.service import TransformService, TransformRequest
>>> rng = np.random.default_rng(0)
>>> M = 10_000
>>> x, y = rng.uniform(-np.pi, np.pi, (2, M))
>>> service = TransformService()
>>> for _ in range(8):   # eight callers, same geometry and points
...     c = rng.normal(size=M) + 1j * rng.normal(size=M)
...     _ = service.submit(nufft_type=1, n_modes=(64, 64), data=c, x=x, y=y)
>>> results = service.flush()          # one fused n_trans=8 block
>>> results[0].output.shape
(64, 64)
>>> results[0].block_size
8
>>> service.close()

On a multi-device service (``TransformService(n_devices=4)``) the same fused
block is *sharded*: with the default ``shard_min_block=4`` those eight
requests run as two ``n_trans=4`` shards on two devices in parallel.

Every result also reports which device served it, whether the plan (and even
its ``set_pts``) was reused, and the modelled engine seconds its block added;
``service.report()`` summarizes pool hits, modelled makespan, requests/s and
per-device utilization.
"""

from .frontend import AsyncFrontend, BatchWindow, PendingRequest
from .pool import PlanPool, PooledPlan
from .request import TransformRequest, TransformResult
from .resilience import (
    DeadlineExceededError,
    FairShedPolicy,
    RetryPolicy,
    ServiceOverloadedError,
)
from .service import ServiceStats, TransformService

__all__ = [
    "PlanPool",
    "PooledPlan",
    "TransformRequest",
    "TransformResult",
    "ServiceStats",
    "TransformService",
    "AsyncFrontend",
    "BatchWindow",
    "PendingRequest",
    "RetryPolicy",
    "FairShedPolicy",
    "ServiceOverloadedError",
    "DeadlineExceededError",
]
