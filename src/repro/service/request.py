"""Request/response types of the transform service.

A :class:`TransformRequest` is one *one-shot* NUFFT: the caller supplies the
transform geometry (type, modes, tolerance, precision, method, backend), the
nonuniform points and a single strength/coefficient vector, exactly the
arguments of the ``nufft*d*`` simple API.  Unlike the simple API the service
does not plan per call: requests are validated eagerly at construction (the
service front door), grouped by :meth:`TransformRequest.plan_key` for plan
pooling and by :meth:`TransformRequest.points_key` for ``n_trans``
coalescing, and answered with a :class:`TransformResult` carrying the output
alongside the serving telemetry (device, cache hits, modelled timings).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..core.options import Opts, Precision, SpreadMethod

__all__ = ["TransformRequest", "TransformResult", "plan_key_for"]

_COORD_FIELDS = ("x", "y", "z")
_TARGET_FIELDS = ("s", "t", "u")


def plan_key_for(nufft_type, n_modes, eps, precision, method, backend, isign=None):
    """The geometry key plans are pooled under.

    The single normalization point shared by :meth:`TransformRequest.plan_key`
    and :meth:`repro.service.TransformService.lease_plan` -- both paths must
    produce byte-identical keys or the pool would silently stop sharing plans
    between coalesced requests and external lessees.  For type 3, ``n_modes``
    may be the dimension or a tuple whose length gives it (the ``Plan(3, .)``
    convention).  ``isign`` is normalized through
    :meth:`repro.core.options.Opts.resolve_isign`, so ``None`` and the
    explicit per-type default produce the same key (they are the same plan).
    """
    nufft_type = int(nufft_type)
    if nufft_type == 3:
        ndim = int(n_modes) if np.isscalar(n_modes) else len(tuple(n_modes))
        modes_key = ("ndim", ndim)
    else:
        modes_key = tuple(int(n) for n in np.atleast_1d(n_modes))
    isign_key = Opts(isign=isign).resolve_isign(nufft_type)
    return (nufft_type, modes_key, float(eps), Precision.parse(precision).value,
            SpreadMethod.parse(method).value, str(backend).strip().lower(),
            isign_key)


def _as_point_array(value, name):
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim != 1 or arr.shape[0] == 0:
        raise ValueError(f"{name} must be a non-empty 1-D array, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(
            f"{name} contains non-finite values (NaN or Inf); "
            "nonuniform points must be finite reals"
        )
    return arr


@dataclass(eq=False)
class TransformRequest:
    """One one-shot NUFFT request.

    Parameters mirror :class:`repro.core.plan.Plan` plus the per-call data:

    ``nufft_type``/``n_modes``/``eps``/``precision``/``method``/``backend``
        The plan geometry.  For type 3, ``n_modes`` is the dimension (or a
        tuple whose length gives it), as in ``Plan(3, ndim)``.
    ``isign``
        Exponent sign ``+1``/``-1``; ``None`` selects the per-type default
        (``-1`` for type 1, ``+1`` for types 2 and 3).  Part of the plan
        key: opposite-sign requests never share a pooled plan.
    ``data``
        One strength vector ``(M,)`` (types 1 and 3) or one mode-coefficient
        array of shape ``n_modes`` (type 2).
    ``x[, y[, z]]``
        Nonuniform coordinates, one 1-D array per dimension.
    ``s[, t[, u]]``
        Type-3 target frequencies, one 1-D array per dimension.
    ``tag``
        Opaque caller token echoed on the :class:`TransformResult`.
    ``tenant``
        Caller identity for the async front-end's fair-share scheduling and
        per-tenant latency accounting (``"default"`` when unset).  Tenants
        share fused blocks freely -- the tenant id never enters the plan or
        points keys.
    ``priority``
        Load-shedding rank (higher = more important), an integral value.
        When a bounded intake queue overflows, the *lowest*-priority queued
        request *of the same shedding scope* (the whole queue for the
        service, the tenant sub-queue for the front-end) is shed first.
    ``deadline_s``
        Optional modelled-time budget (seconds) from the request's first
        dispatch; a request whose completion would land past it fails with
        :class:`~repro.service.DeadlineExceededError`.

    Validation is eager: malformed shapes and non-finite points raise
    ``ValueError`` here, *before* the request can reach a (possibly shared,
    possibly coalesced) plan, so one bad request can never poison a fused
    block serving other callers.

    Requests carry arrays, so they compare by identity (``eq=False``), not
    element-wise; group by :meth:`plan_key` / :meth:`points_key` instead.
    """

    nufft_type: int
    n_modes: object
    data: np.ndarray
    x: np.ndarray
    y: np.ndarray = None
    z: np.ndarray = None
    s: np.ndarray = None
    t: np.ndarray = None
    u: np.ndarray = None
    eps: float = 1e-6
    precision: str = "single"
    method: str = "auto"
    backend: str = "auto"
    isign: int = None
    tag: object = None
    tenant: str = "default"
    priority: int = 0
    deadline_s: float = None
    _points_digest: str = field(default=None, repr=False, compare=False)

    def __post_init__(self):
        if self.nufft_type not in (1, 2, 3):
            raise ValueError(f"nufft_type must be 1, 2 or 3, got {self.nufft_type}")
        self.nufft_type = int(self.nufft_type)
        if self.nufft_type == 3:
            ndim = int(self.n_modes) if np.isscalar(self.n_modes) else len(tuple(self.n_modes))
            if ndim not in (1, 2, 3):
                raise ValueError(f"type-3 requests support dimensions 1-3, got {ndim}")
            self.n_modes = None
            self.ndim = ndim
        else:
            self.n_modes = tuple(int(n) for n in np.atleast_1d(self.n_modes))
            if len(self.n_modes) not in (1, 2, 3) or any(n < 1 for n in self.n_modes):
                raise ValueError(f"invalid n_modes {self.n_modes}")
            self.ndim = len(self.n_modes)
        self.eps = float(self.eps)
        if not np.isfinite(self.eps) or self.eps <= 0.0:
            raise ValueError(f"eps must be a finite positive tolerance, got {self.eps}")
        self.precision = Precision.parse(self.precision).value
        self.method = SpreadMethod.parse(self.method).value
        self.backend = str(self.backend).strip().lower()
        # Normalize isign eagerly (front-door validation): None resolves to
        # the per-type convention, anything else must be +-1.
        self.isign = Opts(isign=self.isign).resolve_isign(self.nufft_type)
        self.tenant = str(self.tenant)
        if not self.tenant:
            raise ValueError("tenant must be a non-empty identifier")
        # Reject non-integral priorities (the n_trans rule): int() would
        # silently truncate 2.5 -> 2 and coerce True -> 1, scrambling the
        # shed order the caller asked for.
        if isinstance(self.priority, bool):
            raise ValueError(
                f"priority must be an integral rank, got {self.priority!r}"
            )
        priority_f = float(self.priority)
        if not np.isfinite(priority_f) or priority_f != int(priority_f):
            raise ValueError(
                f"priority must be an integral rank, got {self.priority!r}"
            )
        self.priority = int(priority_f)
        if self.deadline_s is not None:
            self.deadline_s = float(self.deadline_s)
            if not np.isfinite(self.deadline_s) or self.deadline_s <= 0.0:
                raise ValueError(
                    f"deadline_s must be a finite positive budget, "
                    f"got {self.deadline_s}"
                )

        self._validate_points()
        self._validate_data()

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def _validate_points(self):
        coords = [getattr(self, f) for f in _COORD_FIELDS]
        for d in range(self.ndim):
            if coords[d] is None:
                raise ValueError(
                    f"{self.ndim}D request requires coordinate arrays "
                    f"{', '.join(_COORD_FIELDS[:self.ndim])}"
                )
        for d in range(self.ndim, 3):
            if coords[d] is not None:
                raise ValueError(
                    f"{self.ndim}D request takes only "
                    f"{', '.join(_COORD_FIELDS[:self.ndim])}"
                )
        parsed = [_as_point_array(coords[d], _COORD_FIELDS[d]) for d in range(self.ndim)]
        m = parsed[0].shape[0]
        if any(c.shape[0] != m for c in parsed):
            raise ValueError("coordinate arrays must have equal length")
        for d, arr in enumerate(parsed):
            setattr(self, _COORD_FIELDS[d], arr)
        self.n_points = m

        targets = [getattr(self, f) for f in _TARGET_FIELDS]
        if self.nufft_type != 3:
            if any(tt is not None for tt in targets):
                raise ValueError(
                    "target frequencies (s, t, u) are only accepted by type-3 requests"
                )
            self.n_targets = 0
            return
        for d in range(self.ndim):
            if targets[d] is None:
                raise ValueError(
                    f"{self.ndim}D type-3 request requires target arrays "
                    f"{', '.join(_TARGET_FIELDS[:self.ndim])}"
                )
        for d in range(self.ndim, 3):
            if targets[d] is not None:
                raise ValueError(
                    f"{self.ndim}D type-3 request takes only "
                    f"{', '.join(_TARGET_FIELDS[:self.ndim])}"
                )
        parsed_t = [_as_point_array(targets[d], _TARGET_FIELDS[d]) for d in range(self.ndim)]
        nk = parsed_t[0].shape[0]
        if any(tt.shape[0] != nk for tt in parsed_t):
            raise ValueError("target arrays must have equal length")
        for d, arr in enumerate(parsed_t):
            setattr(self, _TARGET_FIELDS[d], arr)
        self.n_targets = nk

    def _validate_data(self):
        self.data = np.asarray(self.data)
        if self.nufft_type in (1, 3):
            expected = (self.n_points,)
        else:
            expected = self.n_modes
        if self.data.shape != expected:
            raise ValueError(
                f"data shape {self.data.shape} does not match the expected "
                f"single-transform shape {expected} (the service coalesces "
                "batching itself; submit one transform per request)"
            )

    # ------------------------------------------------------------------ #
    # grouping keys
    # ------------------------------------------------------------------ #
    def plan_key(self):
        """Geometry key: requests with equal keys can share one pooled plan."""
        modes = self.n_modes if self.nufft_type != 3 else self.ndim
        return plan_key_for(self.nufft_type, modes, self.eps, self.precision,
                            self.method, self.backend, self.isign)

    def points_key(self):
        """Digest of the nonuniform points (and type-3 targets).

        Requests with equal :meth:`plan_key` *and* equal ``points_key`` are
        transforms over the same geometry and point set -- exactly the
        batched ``n_trans`` case the paper's plan interface vectorizes -- so
        the service fuses them into one block.
        """
        if self._points_digest is None:
            h = hashlib.blake2b(digest_size=16)
            for f in _COORD_FIELDS + _TARGET_FIELDS:
                arr = getattr(self, f)
                if arr is not None:
                    h.update(f.encode())
                    h.update(np.ascontiguousarray(arr).tobytes())
            self._points_digest = h.hexdigest()
        return self._points_digest

    def signature(self):
        """Micro-batching fusion key: ``(plan_key(), points_key())``.

        Requests with equal signatures are the same transform geometry over
        the same point set -- exactly what the async front-end collects into
        one bounded window and fuses into a single ``n_trans`` block.
        """
        return (self.plan_key(), self.points_key())

    def signature_label(self):
        """Compact human-readable signature for reports and stats keys.

        E.g. ``"t1:64x64:eps1e-06:single:isign-1:pts=1a2b3c4d"`` -- the
        geometry fields plus the first 8 hex digits of the points digest,
        the key :class:`~repro.service.ServiceStats` breaks pool hit/miss
        counts and latency percentiles down by.
        """
        modes = (f"{self.ndim}d" if self.nufft_type == 3
                 else "x".join(str(n) for n in self.n_modes))
        return (f"t{self.nufft_type}:{modes}:eps{self.eps:g}:{self.precision}"
                f":isign{self.isign:+d}:pts={self.points_key()[:8]}")

    def setpts_kwargs(self):
        """Keyword arguments for ``Plan.set_pts``."""
        kwargs = {}
        for f in _COORD_FIELDS + _TARGET_FIELDS:
            arr = getattr(self, f)
            if arr is not None:
                kwargs[f] = arr
        return kwargs


@dataclass(eq=False)
class TransformResult:
    """Answer to one :class:`TransformRequest`.  Compares by identity
    (``eq=False``): it carries the output array.

    Attributes
    ----------
    tag : object
        The request's ``tag``, echoed back.
    output : ndarray or None
        Transform output (``None`` when ``error`` is set).
    error : Exception or None
        The per-request failure, if the serving block raised.
    error_type : str or None
        Class name of ``error`` (the service's failure taxonomy key, e.g.
        ``"TransientKernelError"``); ``None`` on success.
    error_message : str or None
        ``str(error)``; ``None`` on success.
    attempts : int
        Dispatch attempts the serving block took (1 = no retries).
    degraded : bool
        Whether the request was served in whole-fleet-degraded mode (every
        device inadmissible; single fallback device).
    device_id : int
        Fleet device the request executed on.
    plan_reused : bool
        Whether a pooled plan was reused (no plan construction).
    setpts_reused : bool
        Whether even ``set_pts`` was skipped (pooled plan already held this
        exact point set -- the strongest amortization).
    block_size : int
        Number of requests fused into the executed ``n_trans`` block.
    modelled_seconds : dict
        Stream-level modelled occupancy this request's block added, split by
        engine (``h2d`` / ``exec`` / ``d2h``) plus ``plan_setup``.
    completed_at : float
        Timeline instant (seconds) the block's d2h finished.
    tenant : str or None
        Tenant the request was accounted under (front-end servings only).
    queue_wait_s : float or None
        Modelled seconds spent in the tenant sub-queue before the fair-share
        scheduler admitted the request to a batching window (front-end only).
    batch_wait_s : float or None
        Modelled seconds spent in the open batching window before its fused
        block dispatched (front-end only).
    e2e_s : float or None
        Modelled arrival-to-completion latency (front-end only; ``None`` on
        failures, which never completed).
    """

    tag: object = None
    output: np.ndarray = None
    error: Exception = None
    error_type: str = None
    error_message: str = None
    attempts: int = 1
    degraded: bool = False
    device_id: int = -1
    plan_reused: bool = False
    setpts_reused: bool = False
    block_size: int = 1
    modelled_seconds: dict = field(default_factory=dict)
    completed_at: float = 0.0
    tenant: str = None
    queue_wait_s: float = None
    batch_wait_s: float = None
    e2e_s: float = None
