"""LRU pool of live :class:`~repro.core.plan.Plan` objects.

The pool is the serving analogue of the paper's plan/setpts/execute
amortization: a plan whose geometry key matches an incoming request skips
planning entirely (kernel fit, fine-grid geometry, correction factors,
device allocations, cuFFT plan), and if it also still holds the request's
exact point set the bin sort + stencil cache are skipped too.

Entries are keyed by ``(plan_key, n_trans, device_id)`` -- a plan is bound to
its device's memory pool, and ``n_trans`` is baked into a plan's batched
buffers.  Eviction is least-recently-used by lease *or* release, bounded by
``max_plans`` live plans; evicted plans are destroyed so their simulated
device memory is returned.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

__all__ = ["PlanPool", "PooledPlan"]


@dataclass
class PooledPlan:
    """One pooled plan plus the bookkeeping the service needs."""

    plan: object
    key: tuple
    device_id: int = -1
    points_key: str = None
    last_used: int = 0
    leases: int = 0


class PlanPool:
    """Keyed LRU pool of live plans.

    Parameters
    ----------
    max_plans : int
        Maximum number of live (idle) plans retained.  ``0`` disables pooling
        entirely: every release destroys the plan, every lease misses.
    on_evict : callable or None
        Called with each :class:`PooledPlan` *before* its plan is destroyed
        (LRU eviction, device purge or ``clear``).  The service uses this to
        persist the evicted plan's signature into the artifact store so a
        restart can pre-warm it.  Exceptions from the callback are swallowed:
        eviction must always reclaim the memory.
    """

    def __init__(self, max_plans=32, on_evict=None):
        max_plans = int(max_plans)
        if max_plans < 0:
            raise ValueError(f"max_plans must be >= 0, got {max_plans}")
        self.max_plans = max_plans
        self.on_evict = on_evict
        self._idle = {}  # key -> list[PooledPlan]
        self._clock = itertools.count()
        self.n_idle = 0

    def _destroy_entry(self, entry):
        """Notify ``on_evict`` then destroy the plan (and its Workspace).

        ``Plan.destroy`` releases the plan's device buffers -- fine grid,
        cuFFT workspace, point/stencil state -- so pool bookkeeping must be
        settled *before* this runs: the entry is already popped and
        ``n_idle`` decremented by every caller, keeping counts right even if
        destruction raises.
        """
        if self.on_evict is not None:
            try:
                self.on_evict(entry)
            except Exception:
                pass
        entry.plan.destroy()

    # ------------------------------------------------------------------ #
    # lease / release
    # ------------------------------------------------------------------ #
    def lease(self, key, points_key=None):
        """Pop an idle plan for ``key``; returns ``None`` on a miss.

        When ``points_key`` is given and the bucket holds a plan already
        carrying that exact point set, that plan is preferred (its bin sort
        and stencil cache are still valid, so ``set_pts`` can be skipped).
        """
        bucket = self._idle.get(key)
        if not bucket:
            return None
        index = len(bucket) - 1
        if points_key is not None:
            for i, candidate in enumerate(bucket):
                if candidate.points_key == points_key:
                    index = i
                    break
        entry = bucket.pop(index)
        if not bucket:
            del self._idle[key]
        self.n_idle -= 1
        entry.last_used = next(self._clock)
        entry.leases += 1
        return entry

    def has_points(self, key, points_key):
        """Whether an idle plan for ``key`` already holds ``points_key``."""
        return any(entry.points_key == points_key
                   for entry in self._idle.get(key, ()))

    def lease_unpointed(self, key):
        """Pop an idle plan whose point set is unknown (``points_key=None``).

        Plans returned by external lessees carry no vouched-for point set, so
        re-pointing one steals cached state from nobody; ``None`` on a miss.
        """
        bucket = self._idle.get(key)
        if not bucket:
            return None
        for i, candidate in enumerate(bucket):
            if candidate.points_key is None:
                bucket.pop(i)
                if not bucket:
                    del self._idle[key]
                self.n_idle -= 1
                candidate.last_used = next(self._clock)
                candidate.leases += 1
                return candidate
        return None

    def release(self, entry):
        """Return a leased plan to the pool, evicting beyond ``max_plans``."""
        if self.max_plans == 0:
            self._destroy_entry(entry)
            return
        entry.last_used = next(self._clock)
        self._idle.setdefault(entry.key, []).append(entry)
        self.n_idle += 1
        while self.n_idle > self.max_plans:
            self._evict_lru()

    def _evict_lru(self):
        lru_key, lru_index = None, None
        lru_stamp = None
        for key, bucket in self._idle.items():
            for i, entry in enumerate(bucket):
                if lru_stamp is None or entry.last_used < lru_stamp:
                    lru_stamp = entry.last_used
                    lru_key, lru_index = key, i
        entry = self._idle[lru_key].pop(lru_index)
        if not self._idle[lru_key]:
            del self._idle[lru_key]
        self.n_idle -= 1
        self._destroy_entry(entry)

    def make_entry(self, plan, key):
        """Wrap a freshly created plan (counts as leased until released)."""
        return PooledPlan(plan=plan, key=key, last_used=next(self._clock), leases=1)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def snapshot(self):
        """Per-key occupancy view: ``[(key, idle_count, total_leases), ...]``.

        One row per pooled key ``(plan_key, n_trans, device_id)`` currently
        holding idle plans, with how many sit idle and how many leases those
        plans have served over their lifetime.  This is the pool-churn side
        of the per-signature hit/miss breakdown in
        :meth:`~repro.service.ServiceStats.report`: a signature whose window
        fuses well shows few keys with many leases each; pool churn shows
        many keys with one lease each.
        """
        return [(key, len(bucket), sum(e.leases for e in bucket))
                for key, bucket in sorted(self._idle.items(),
                                          key=lambda kv: repr(kv[0]))]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def purge_device(self, device_id):
        """Destroy every idle plan bound to ``device_id``; returns the count.

        Called when a device is evicted or drained: its plans hold state on
        hardware that placement will never select again (or that is outright
        dead), so reusing them would be wrong -- they are destroyed, not
        recycled.  Keys end in the device id (``(plan_key, n_trans,
        device_id)``), so the match is on ``key[-1]``.
        """
        purged = 0
        for key in list(self._idle):
            if key[-1] != device_id:
                continue
            for entry in self._idle.pop(key):
                self.n_idle -= 1
                purged += 1
                self._destroy_entry(entry)
        return purged

    def clear(self):
        """Destroy every idle plan."""
        while self._idle:
            key, bucket = self._idle.popitem()
            while bucket:
                entry = bucket.pop()
                self.n_idle -= 1
                self._destroy_entry(entry)
        self.n_idle = 0
