"""The concurrent transform service: plan pooling, coalescing, sharding.

See :mod:`repro.service` for the package overview and a usage example.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field

import numpy as np

from ..cluster.fleet import DeviceFleet
from ..core.plan import Plan
from ..faults import DeviceFaultError, DeviceLostError
from ..gpu.costmodel import CostModel
from .pool import PlanPool
from .request import TransformRequest, TransformResult, plan_key_for
from .resilience import DeadlineExceededError, RetryPolicy, ServiceOverloadedError

__all__ = ["ServiceStats", "TransformService", "LATENCY_KINDS",
           "LATENCY_PERCENTILES"]


#: Percentile marks reported for every latency kind.
LATENCY_PERCENTILES = (50, 95, 99)

#: Latency kinds the front-end records per request: time in the tenant
#: sub-queue, time in the open batching window, and arrival-to-completion.
LATENCY_KINDS = ("queue_wait", "batch_wait", "e2e")


@dataclass
class ServiceStats:
    """Serving counters accumulated over the service lifetime.

    The resilience counters form the service's failure taxonomy: ``retries``
    (re-dispatches after retryable device faults), ``breaker_trips``
    (circuit breakers opened), ``requests_shed`` (bounded-queue overload),
    ``deadline_exceeded`` (requests classified as timeouts),
    ``degraded_shards`` / ``degraded_seconds`` (work served with every
    device inadmissible) and ``failures_by_type`` (exception class name ->
    count, every failure observed, including ones later retried away).

    The QoS surface added for the async front-end:

    * ``pool_by_signature`` -- per request signature (see
      :meth:`~repro.service.TransformRequest.signature_label`), the PlanPool
      hit/miss counts and skipped ``set_pts`` executions, so batching-window
      wins vs. pool churn are diagnosable per signature from one report;
    * ``shed_by_tenant`` -- requests shed per tenant (front-end fair-share
      shedding; the aggregate stays in ``requests_shed``);
    * latency samples recorded via :meth:`record_latency` and summarized by
      :meth:`latency_percentiles` (p50/p95/p99 and max of queue-wait,
      batch-wait and end-to-end modelled latency, per tenant and per
      signature).

    The warm-state surface (services constructed with ``artifact_store=``):
    ``artifact_hits`` / ``artifact_misses`` / ``artifact_stale`` /
    ``artifact_corrupt`` / ``artifact_builds`` mirror the store's
    :class:`~repro.artifacts.ArtifactStats` counters accumulated since the
    service was constructed (or metrics were last reset), and
    ``plans_prewarmed`` counts pooled plans recreated from stored signatures
    at startup.  A warmed steady state shows ``artifact_builds == 0``: every
    stencil, Horner fit and PSF kernel came from the store.
    """

    requests_submitted: int = 0
    requests_served: int = 0
    requests_failed: int = 0
    blocks_executed: int = 0
    shards_executed: int = 0
    distributed_requests: int = 0
    solves_served: int = 0
    solve_shards: int = 0
    solve_cg_iterations: int = 0
    plans_created: int = 0
    plans_prewarmed: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    artifact_hits: int = 0
    artifact_misses: int = 0
    artifact_stale: int = 0
    artifact_corrupt: int = 0
    artifact_builds: int = 0
    setpts_skipped: int = 0
    setpts_executed: int = 0
    lease_hits: int = 0
    lease_misses: int = 0
    retries: int = 0
    breaker_trips: int = 0
    requests_shed: int = 0
    deadline_exceeded: int = 0
    degraded_shards: int = 0
    degraded_seconds: float = 0.0
    failures_by_type: dict = field(default_factory=dict)
    modelled_engine_seconds: dict = field(
        default_factory=lambda: {"h2d": 0.0, "exec": 0.0, "d2h": 0.0}
    )
    pool_by_signature: dict = field(default_factory=dict)
    shed_by_tenant: dict = field(default_factory=dict)
    latency_samples: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # QoS accounting (per-signature pool events, latency percentiles)
    # ------------------------------------------------------------------ #
    def record_pool_event(self, signature, hit):
        """Count one PlanPool lease outcome against ``signature``."""
        entry = self.pool_by_signature.setdefault(
            signature, {"hits": 0, "misses": 0, "setpts_skipped": 0}
        )
        entry["hits" if hit else "misses"] += 1

    def record_setpts_skip(self, signature, n=1):
        """Count ``n`` skipped ``set_pts`` executions against ``signature``."""
        entry = self.pool_by_signature.setdefault(
            signature, {"hits": 0, "misses": 0, "setpts_skipped": 0}
        )
        entry["setpts_skipped"] += int(n)

    def record_shed(self, tenant=None):
        """Count one shed request (optionally attributed to ``tenant``)."""
        self.requests_shed += 1
        if tenant is not None:
            self.shed_by_tenant[tenant] = self.shed_by_tenant.get(tenant, 0) + 1

    def record_latency(self, scope, name, kind, seconds):
        """Append one modelled-latency sample.

        ``scope`` is ``"tenant"`` or ``"signature"``, ``name`` the tenant id
        or signature label, ``kind`` one of :data:`LATENCY_KINDS`.
        """
        if kind not in LATENCY_KINDS:
            raise ValueError(f"kind must be one of {LATENCY_KINDS}, got {kind!r}")
        bucket = self.latency_samples.setdefault((scope, name), {})
        bucket.setdefault(kind, []).append(float(seconds))

    def latency_percentiles(self, scope=None):
        """Percentile summary of every recorded latency series.

        Returns ``{name: {kind: {"n", "p50", "p95", "p99", "max"}}}`` when
        ``scope`` (``"tenant"`` or ``"signature"``) is given, or the same
        keyed by ``(scope, name)`` tuples when it is not.  Seconds
        throughout; empty when nothing was recorded.
        """
        out = {}
        for (sc, name), kinds in self.latency_samples.items():
            if scope is not None and sc != scope:
                continue
            summary = {}
            for kind, samples in kinds.items():
                arr = np.asarray(samples, dtype=np.float64)
                entry = {"n": int(arr.size), "max": float(arr.max())}
                for p in LATENCY_PERCENTILES:
                    entry[f"p{p}"] = float(np.percentile(arr, p))
                summary[kind] = entry
            out[name if scope is not None else (sc, name)] = summary
        return out

    def report(self, max_signatures=8):
        """Per-signature pool breakdown + latency percentiles, as text lines.

        The QoS block :meth:`TransformService.report` embeds: one line per
        signature (pool hits/misses/skipped ``set_pts``, busiest first,
        truncated past ``max_signatures``) and one line per tenant with
        p50/p95/p99 end-to-end and queue-wait percentiles.  Returns a list
        of lines (empty when nothing was recorded).
        """
        lines = []
        by_traffic = sorted(
            self.pool_by_signature.items(),
            key=lambda kv: -(kv[1]["hits"] + kv[1]["misses"]),
        )
        for signature, counts in by_traffic[:max_signatures]:
            lines.append(
                f"  pool[{signature}]: {counts['hits']} hits, "
                f"{counts['misses']} misses, "
                f"{counts['setpts_skipped']} set_pts skipped"
            )
        if len(by_traffic) > max_signatures:
            lines.append(f"  pool: ... {len(by_traffic) - max_signatures} "
                         "more signature(s)")
        for tenant, kinds in sorted(self.latency_percentiles("tenant").items()):
            parts = []
            for kind in ("e2e", "queue_wait"):
                if kind in kinds:
                    k = kinds[kind]
                    parts.append(
                        f"{kind} p50={1e3 * k['p50']:.3f} "
                        f"p95={1e3 * k['p95']:.3f} p99={1e3 * k['p99']:.3f} ms"
                    )
            shed = self.shed_by_tenant.get(tenant, 0)
            if shed:
                parts.append(f"{shed} shed")
            if parts:
                lines.append(f"  qos[tenant={tenant}]: " + ", ".join(parts))
        return lines


class TransformService:
    """Serving front-end over the plan interface and a simulated device fleet.

    The service turns *one-shot* NUFFT requests into amortized plan usage:

    * **plan pooling** -- plans are cached by geometry key (type, modes/dim,
      eps, precision, method, backend, ``n_trans``) per device and reused
      across requests, skipping planning (allocations, correction factors,
      cuFFT plan);
    * **coalescing** -- queued requests with the same geometry *and* the same
      point set are fused into one ``n_trans`` block and executed in a single
      vectorized pass (PR 1's batched engine), skipping ``set_pts`` when the
      pooled plan already holds those points;
    * **sharding** -- large fused blocks are split over the device fleet,
      each shard on the least-loaded device, reproducing the paper's
      multi-GPU weak-scaling setup (Fig. 9) in a serving context;
    * **stream overlap** -- every executed block's modelled h2d / kernel /
      d2h costs are enqueued on per-device :class:`~repro.gpu.device.Stream`
      objects, so consecutive blocks double-buffer (one block's transfers
      overlap another's kernels) and the fleet reports a modelled makespan,
      per-device utilization and requests/s.

    Parameters
    ----------
    fleet : DeviceFleet, optional
        Devices to serve on; defaults to a fresh fleet of ``n_devices``.
    n_devices, streams_per_device : int
        Fleet geometry when ``fleet`` is not given.
    max_plans : int
        LRU capacity of the plan pool; ``pool_plans=False`` forces 0.
    pool_plans : bool
        Disable to re-plan per request (the unpooled baseline).
    coalesce : bool
        Disable to execute every request as its own block.
    shard_min_block : int
        Minimum fused transforms per shard; a block shards across at most
        ``len(block) // shard_min_block`` devices.
    max_block : int
        Upper bound on fused block size (stencil-cache memory guard).
    dispatch_latency_s : float
        Host-side submission cost per executed shard; shard dispatches
        serialize on the host.
    shared_host_link : bool
        Model the host's PCIe root complex as a shared resource: h2d uploads
        to *different* devices serialize against each other.  Together with
        the dispatch latency this is what bends the multi-device scaling
        curve below ideal (the fleet analogue of Fig. 9's saturation).
    charge_plan_creation : bool
        Include plan construction (simulated allocations + the cuFFT plan
        cost the paper excludes with a dummy transform) in the modelled
        timeline of cache misses.  This is the cost pooling amortizes.
    tune : str
        Plan-parameter autotuning policy applied to every plan the service
        creates (pooled or leased): ``"off"`` (default), ``"model"`` or
        ``"measure"`` -- see :mod:`repro.tuning`.  All plans share the
        service's single :class:`~repro.tuning.Autotuner`, so concurrent
        requests that fall into one problem signature share one tuning entry.
    tuner : Autotuner, optional
        Tuner to share (e.g. across services); defaults to a fresh one over
        ``tuning_cache_path`` when tuning is enabled.
    tuning_cache_path : str, optional
        On-disk tuning cache, so tuned configurations survive restarts.  A
        corrupt or partially-written file falls back to model-scored tuning
        (see :class:`~repro.tuning.TuningCache`).
    artifact_store : ArtifactStore or str, optional
        Unified warm-state store (or a directory path for one).  Every plan
        the service creates loads/saves stencil caches and Horner fits
        through it, Toeplitz solves load/save PSF kernels, tuning wisdom
        persists under it (unless ``tuning_cache_path``/``tuner`` override),
        and pooled plan signatures are recorded so a restarted service
        **pre-warms** its pool before the first request.  Defaults to the
        process store when ``REPRO_ARTIFACT_STORE`` is exported, else off.
    retry : RetryPolicy, optional
        Retry budget and deterministic backoff applied to retryable device
        faults (:class:`~repro.faults.DeviceFaultError` subclasses).  The
        default ``RetryPolicy()`` retries up to 3 attempts; validation and
        application errors are never retried.  Backoff is charged to the
        request's modelled timeline.
    max_queue_depth : int, optional
        Bounded-intake-queue limit.  When a :meth:`submit` would push the
        queue past this depth, the *lowest-priority* request is shed with
        :class:`~repro.service.ServiceOverloadedError` -- the incoming one
        (raising) when it ties for lowest, a queued one (error result at
        :meth:`flush`) when it ranks strictly lower.  ``None`` (default)
        leaves the queue unbounded.
    fault_injector : FaultInjector, optional
        A :class:`~repro.faults.FaultInjector` to attach to every fleet
        device (chaos testing / resilience benchmarks).
    distributed_threshold_points : int, optional
        Point count at or above which a queued type-1/2 request bypasses
        the fused single-device path and is served by a
        :class:`~repro.cluster.distributed.DistributedPlan` spanning
        ``distributed_ranks`` simulated ranks (domain-decomposed spreading,
        halo exchange, slab FFT).  ``None`` (default) disables routing;
        :meth:`execute_distributed` stays available either way.
    distributed_ranks : int
        Rank count for distributed execution (default 4).
    distributed_node : Node or NodeSpec, optional
        Node hosting the distributed ranks; defaults to a fresh
        Cori-GPU-like node per distributed request.
    """

    def __init__(self, fleet=None, n_devices=1, streams_per_device=2,
                 max_plans=32, pool_plans=True, coalesce=True,
                 shard_min_block=4, max_block=64,
                 dispatch_latency_s=2.0e-5, charge_plan_creation=True,
                 shared_host_link=True, tune="off", tuner=None,
                 tuning_cache_path=None, artifact_store=None, retry=None,
                 max_queue_depth=None, fault_injector=None,
                 distributed_threshold_points=None,
                 distributed_ranks=4, distributed_node=None):
        self.fleet = fleet if fleet is not None else DeviceFleet(
            n_devices=n_devices, streams_per_device=streams_per_device
        )
        self.pool_plans = bool(pool_plans)
        self.pool = PlanPool(max_plans if self.pool_plans else 0,
                             on_evict=self._persist_plan_signature)
        self.coalesce = bool(coalesce)
        self.shard_min_block = max(1, int(shard_min_block))
        self.max_block = max(1, int(max_block))
        self.dispatch_latency_s = float(dispatch_latency_s)
        self.charge_plan_creation = bool(charge_plan_creation)
        self.shared_host_link = bool(shared_host_link)

        # Warm-state artifact store: a path (or REPRO_ARTIFACT_STORE) makes
        # every stencil cache, Horner fit, tuning record and PSF kernel this
        # service computes survive restarts; pooled plan signatures are
        # recorded too, so __init__ ends by pre-warming the pool from them.
        from ..artifacts import ArtifactStore, default_store
        from ..core.env import artifact_store_path

        if artifact_store is None:
            if artifact_store_path() is not None:
                artifact_store = default_store()
        elif isinstance(artifact_store, (str, os.PathLike)):
            artifact_store = ArtifactStore(root=artifact_store)
        self.artifact_store = artifact_store
        self._artifact_base = (artifact_store.stats.snapshot()
                               if artifact_store is not None else None)
        self._prewarmed = 0

        from ..tuning import TUNE_MODES, Autotuner, TuningCache

        if tune not in TUNE_MODES:
            raise ValueError(f"tune must be one of {TUNE_MODES}, got {tune!r}")
        self.tune = tune
        if tune == "off":
            if tuner is not None or tuning_cache_path is not None:
                raise ValueError(
                    "tuner/tuning_cache_path have no effect with tune='off'; "
                    "pass tune='model' or tune='measure' to enable autotuning"
                )
            self.tuner = None
        elif tuner is not None:
            self.tuner = tuner
        elif tuning_cache_path is None and self.artifact_store is not None:
            # Tuning wisdom joins the unified store (record kind "tuning").
            self.tuner = Autotuner(cache=TuningCache(store=self.artifact_store))
        else:
            self.tuner = Autotuner(cache=TuningCache(tuning_cache_path))
        self.retry = retry if retry is not None else RetryPolicy()
        if not isinstance(self.retry, RetryPolicy):
            raise TypeError(
                f"retry must be a RetryPolicy, got {type(self.retry).__name__}"
            )
        if max_queue_depth is not None:
            max_queue_depth = int(max_queue_depth)
            if max_queue_depth < 1:
                raise ValueError(
                    f"max_queue_depth must be >= 1, got {max_queue_depth}"
                )
        self.max_queue_depth = max_queue_depth
        if distributed_threshold_points is not None:
            distributed_threshold_points = int(distributed_threshold_points)
            if distributed_threshold_points < 1:
                raise ValueError(
                    "distributed_threshold_points must be >= 1, got "
                    f"{distributed_threshold_points}"
                )
        self.distributed_threshold_points = distributed_threshold_points
        self.distributed_ranks = int(distributed_ranks)
        if self.distributed_ranks < 1:
            raise ValueError(
                f"distributed_ranks must be >= 1, got {distributed_ranks}"
            )
        self.distributed_node = distributed_node
        self.fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.attach(self.fleet.devices)
        self.stats = ServiceStats()
        self._queue = []  # list[(seq, TransformRequest)]
        self._shed = []  # list[(seq, TransformResult)] awaiting flush
        self._seq = itertools.count()
        self._leased = {}  # id(plan) -> PooledPlan
        self._host_frontier = 0.0
        self._host_link_frontier = 0.0
        self._closed = False
        self._pre_warm()
        self._sync_artifact_stats()

    # ------------------------------------------------------------------ #
    # request intake
    # ------------------------------------------------------------------ #
    def submit(self, request=None, **kwargs):
        """Queue one request; returns its sequence number.

        Accepts a prebuilt :class:`TransformRequest` or the request's fields
        as keywords.  Validation is eager (front door): malformed requests
        raise here and never enter the queue.
        """
        self._require_open()
        if request is None:
            request = TransformRequest(**kwargs)
        elif kwargs:
            raise ValueError("pass either a TransformRequest or keyword fields, not both")
        if not isinstance(request, TransformRequest):
            raise TypeError(f"expected a TransformRequest, got {type(request).__name__}")
        seq = next(self._seq)
        self.stats.requests_submitted += 1
        if (self.max_queue_depth is not None
                and len(self._queue) >= self.max_queue_depth):
            self._shed_lowest(seq, request)
        self._queue.append((seq, request))
        return seq

    def _shed_lowest(self, seq, request):
        """Shed the lowest-priority request to admit ``(seq, request)``.

        Rank is ``(priority, -seq)``: among equal priorities the *newest*
        request sheds first, so the incoming one loses ties (it raises
        :class:`ServiceOverloadedError` and never enters the queue).  A
        strictly lower-priority queued victim is removed instead and
        receives an error result at :meth:`flush`.
        """
        victim_i = None
        victim_rank = (request.priority, -seq)
        for i, (s, r) in enumerate(self._queue):
            if (r.priority, -s) < victim_rank:
                victim_rank = (r.priority, -s)
                victim_i = i
        self.stats.requests_shed += 1
        depth = len(self._queue)
        if victim_i is None:
            raise ServiceOverloadedError(
                f"intake queue at max_queue_depth={self.max_queue_depth} "
                f"({depth} queued) and no queued request has priority below "
                f"{request.priority}; request shed"
            )
        vseq, vreq = self._queue.pop(victim_i)
        exc = ServiceOverloadedError(
            f"shed from the intake queue at depth {depth} "
            f"(max_queue_depth={self.max_queue_depth}, priority "
            f"{vreq.priority} was the lowest queued)"
        )
        self._shed.append((vseq, TransformResult(
            tag=vreq.tag, error=exc, error_type=type(exc).__name__,
            error_message=str(exc),
        )))

    def run(self, requests):
        """Submit a batch of requests and flush; returns results in order."""
        for request in requests:
            self.submit(request)
        return self.flush()

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def flush(self):
        """Serve every queued request; returns results in submission order.

        Requests are grouped into same-geometry/same-points blocks (when
        coalescing is on), blocks are sharded over the fleet, and each shard
        runs as one fused ``n_trans`` execute on a pooled (or fresh) plan.
        A failing shard retries under the service's :class:`RetryPolicy`
        (re-dispatching to healthy devices), and a shard that exhausts its
        budget yields per-request ``error`` results without disturbing other
        blocks.  Requests shed from the bounded queue are returned here too,
        carrying :class:`ServiceOverloadedError`, in submission order with
        the rest.
        """
        self._require_open()
        queue, self._queue = self._queue, []
        shed, self._shed = self._shed, []
        if not queue and not shed:
            return []
        results = dict(shed)
        queue = self._route_distributed(queue, results)
        for block in self._group(queue):
            shards = self._shards(block)
            if len(shards) == 1:
                self._execute_shard(shards[0], results)
            else:
                # Pin a multi-shard block's shards to distinct devices (in
                # least-loaded order) so the block actually runs in parallel;
                # plan affinity alone would pile every shard onto the device
                # already holding a matching plan.  Pinning is health-aware;
                # with every device lost the shards dispatch unpinned and
                # fail with per-request DeviceLostError results.
                try:
                    ranked = self.fleet.ranked()
                except DeviceLostError:
                    ranked = None
                for i, shard in enumerate(shards):
                    device = ranked[i % len(ranked)] if ranked else None
                    self._execute_shard(shard, results, device=device)
            self.stats.blocks_executed += 1
        self._sync_artifact_stats()
        return [results[seq] for seq in sorted(results)]

    def _route_distributed(self, queue, results):
        """Peel oversized requests off the queue onto the distributed path.

        With ``distributed_threshold_points`` set, any queued type-1/2
        request whose point count meets the threshold is served by a
        multi-rank :class:`~repro.cluster.distributed.DistributedPlan`
        instead of a fused single-device block (type 3 has no slab
        decomposition and always stays on the fleet).  A failing
        distributed request yields its own ``error`` result without
        disturbing the rest of the queue.  Returns the remaining queue.
        """
        if self.distributed_threshold_points is None:
            return queue
        kept = []
        for seq, req in queue:
            if (req.nufft_type not in (1, 2)
                    or req.n_points < self.distributed_threshold_points):
                kept.append((seq, req))
                continue
            try:
                results[seq] = self._serve_distributed(req)
            except Exception as exc:
                self._note_failure(exc)
                self.stats.requests_failed += 1
                results[seq] = TransformResult(
                    tag=req.tag, error=exc, error_type=type(exc).__name__,
                    error_message=str(exc),
                )
        return kept

    def execute_distributed(self, request=None, n_ranks=None, node=None,
                            **kwargs):
        """Serve one request on a multi-rank distributed plan, immediately.

        Accepts a prebuilt :class:`TransformRequest` or its fields as
        keywords (same front door as :meth:`submit`); the transform runs on
        a fresh :class:`~repro.cluster.distributed.DistributedPlan` over
        ``n_ranks`` simulated ranks (default ``distributed_ranks``) hosted
        on ``node`` (default ``distributed_node``).  Only types 1 and 2
        decompose; type 3 raises :class:`ValueError`.

        Returns
        -------
        TransformResult
            ``device_id`` is ``-1`` (the work spans ranks, not one fleet
            device) and ``modelled_seconds`` carries the distributed
            breakdown: ``exec`` (slowest rank's compute), ``comm``,
            ``overlap``, ``makespan``, plus exact ``halo_bytes`` and
            ``transpose_bytes``.
        """
        self._require_open()
        if request is None:
            request = TransformRequest(**kwargs)
        elif kwargs:
            raise ValueError("pass either a TransformRequest or keyword fields, not both")
        if not isinstance(request, TransformRequest):
            raise TypeError(f"expected a TransformRequest, got {type(request).__name__}")
        self.stats.requests_submitted += 1
        return self._serve_distributed(request, n_ranks=n_ranks, node=node)

    def _serve_distributed(self, request, n_ranks=None, node=None):
        """Run one validated request through a fresh DistributedPlan."""
        from ..cluster.distributed import DistributedPlan

        if request.nufft_type not in (1, 2):
            raise ValueError(
                "distributed execution supports types 1 and 2 only; type "
                f"{request.nufft_type} has no slab decomposition"
            )
        n_ranks = int(n_ranks if n_ranks is not None else self.distributed_ranks)
        overrides = {"precision": request.precision}
        if request.isign is not None:
            overrides["isign"] = request.isign
        plan = DistributedPlan(
            request.nufft_type, request.n_modes, n_ranks=n_ranks,
            eps=request.eps,
            node=node if node is not None else self.distributed_node,
            **overrides,
        )
        try:
            plan.set_pts(**request.setpts_kwargs())
            output = plan.execute(request.data)
            breakdown = plan.last_breakdown
        finally:
            plan.destroy()
        # Distributed requests run on their own node, off the fleet streams;
        # only the host-side dispatch and the modelled makespan serialize on
        # the submission thread.
        self._host_frontier += self.dispatch_latency_s + breakdown.makespan_s
        modelled = {
            "h2d": 0.0,
            "exec": breakdown.compute_s,
            "d2h": 0.0,
            "comm": breakdown.comm_s,
            "overlap": breakdown.overlap_s,
            "makespan": breakdown.makespan_s,
            "halo_bytes": float(breakdown.halo_bytes),
            "transpose_bytes": float(breakdown.transpose_bytes),
            "n_ranks": float(breakdown.n_ranks),
        }
        self.stats.modelled_engine_seconds["exec"] += breakdown.compute_s
        self.stats.distributed_requests += 1
        self.stats.requests_served += 1
        return TransformResult(
            tag=request.tag, output=output, device_id=-1, block_size=1,
            modelled_seconds=modelled, completed_at=self._host_frontier,
            tenant=request.tenant,
        )

    def _group(self, queue):
        """Coalesce the queue into same-geometry/same-points blocks."""
        if not self.coalesce:
            return [[item] for item in queue]
        groups, order = {}, []
        for seq, req in queue:
            key = (req.plan_key(), req.points_key())
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((seq, req))
        blocks = []
        for key in order:
            group = groups[key]
            for i in range(0, len(group), self.max_block):
                blocks.append(group[i:i + self.max_block])
        return blocks

    def _shards(self, block):
        """Split one block across the fleet (each shard >= shard_min_block)."""
        n_shards = min(self.fleet.n_devices,
                       max(1, len(block) // self.shard_min_block))
        if n_shards <= 1:
            return [block]
        bounds = np.array_split(np.arange(len(block)), n_shards)
        return [[block[i] for i in idx] for idx in bounds if len(idx)]

    def _execute_shard(self, shard, results, device=None):
        """Execute one shard with retry, deadline and degradation handling.

        A retryable device fault (:class:`~repro.faults.DeviceFaultError`)
        re-dispatches the shard -- health-aware placement steers retries to
        healthy devices, and a dead device is evicted (its pooled plans
        destroyed).  Backoff between attempts is charged to the modelled
        host timeline.  The shard's effective deadline is the tightest
        ``deadline_s`` among its requests; exceeding it while retrying (or
        at completion) classifies the requests as deadline-exceeded.
        Validation and application errors fail immediately (attempt 1).
        """
        req0 = shard[0][1]
        n_trans = len(shard)
        deadline = min((r.deadline_s for _, r in shard
                        if r.deadline_s is not None), default=None)
        started_at = self._host_frontier
        token = str(shard[0][0])
        attempts = 0
        while True:
            attempts += 1
            entry = None
            try:
                degraded = not self.fleet.admissible()
                target = device
                if (attempts > 1 or degraded
                        or (target is not None
                            and not self.fleet.is_admissible(target.device_id))):
                    target = None  # re-place health-aware
                entry, created = self._acquire_plan(
                    req0.plan_key(), n_trans, req0.points_key(),
                    lambda dev: self._make_plan(req0, n_trans, dev),
                    device=target,
                )
                if created:
                    self.stats.plan_cache_misses += 1
                    self.stats.plans_created += 1
                else:
                    self.stats.plan_cache_hits += 1
                self.stats.record_pool_event(req0.signature_label(),
                                             hit=not created)
                self._execute_shard_inner(
                    shard, req0, n_trans, entry, created, results,
                    attempts=attempts, degraded=degraded,
                    started_at=started_at,
                )
            except Exception as exc:  # per-request failure isolation
                # Don't pool a plan whose set_pts/execute failed mid-flight:
                # its cached point state can no longer be vouched for.
                if entry is not None:
                    entry.plan.destroy()
                self._note_failure(exc, entry.key[-1] if entry else None)
                final = not (self.retry.should_retry(exc)
                             and attempts < self.retry.max_attempts
                             and self._fleet_has_candidates())
                if not final:
                    self._host_frontier += self.retry.backoff_s(attempts, token)
                    self.stats.retries += 1
                    if (deadline is not None
                            and self._host_frontier - started_at > deadline):
                        exc = DeadlineExceededError(
                            f"deadline_s={deadline} exhausted after "
                            f"{attempts} attempt(s)"
                        )
                        final = True
                if not final:
                    continue
                self.stats.requests_failed += n_trans
                if isinstance(exc, DeadlineExceededError):
                    self.stats.deadline_exceeded += n_trans
                for seq, req in shard:
                    results[seq] = TransformResult(
                        tag=req.tag, error=exc,
                        error_type=type(exc).__name__,
                        error_message=str(exc),
                        attempts=attempts, block_size=n_trans,
                    )
                return
            else:
                self.fleet.record_success(entry.key[-1])
                self._release_entry(entry)
                return

    def _note_failure(self, exc, device_id=None):
        """Taxonomy-count one failure and update the device's health."""
        name = type(exc).__name__
        self.stats.failures_by_type[name] = (
            self.stats.failures_by_type.get(name, 0) + 1
        )
        # Only device faults count against the breaker: an application or
        # validation error says nothing about the hardware that ran it.
        if device_id is None or not isinstance(exc, DeviceFaultError):
            return
        if self.fleet.record_failure(device_id):
            self.stats.breaker_trips += 1
        if isinstance(exc, DeviceLostError):
            self.fleet.evict(device_id)
            self.pool.purge_device(device_id)

    def _fleet_has_candidates(self):
        """Whether any device could still serve (alive and not evicted)."""
        return any(
            getattr(d, "alive", True) and not self.fleet.health[d.device_id].evicted
            for d in self.fleet.devices
        )

    def _release_entry(self, entry):
        """Pool a finished entry -- unless its device left the fleet.

        A plan bound to an evicted, draining or dead device must be
        destroyed, not recycled: placement will never (or should never)
        select that device again, and its simulated allocations are stale.
        """
        device_id = entry.key[-1]
        health = self.fleet.health[device_id]
        alive = getattr(self.fleet.device(device_id), "alive", True)
        if health.evicted or health.draining or not alive:
            entry.plan.destroy()
        else:
            self._persist_plan_signature(entry)
            self.pool.release(entry)

    def _execute_shard_inner(self, shard, req0, n_trans, entry, created,
                             results, attempts=1, degraded=False,
                             started_at=0.0):
        plan = entry.plan
        setpts_reused = (not created) and entry.points_key == req0.points_key()
        setup_seconds = {"h2d": 0.0, "exec": 0.0, "d2h": 0.0}
        if setpts_reused:
            self.stats.setpts_skipped += n_trans
            self.stats.record_setpts_skip(req0.signature_label(), n_trans)
        else:
            plan.set_pts(**req0.setpts_kwargs())
            entry.points_key = req0.points_key()
            setup_seconds = _engine_seconds(plan, plan._setup_pipeline)
            self.stats.setpts_executed += 1

        if n_trans == 1:
            output = plan.execute(req0.data)
            outputs = [output]
        else:
            stacked = np.stack([req.data for _, req in shard])
            output = plan.execute(stacked)
            outputs = list(output)
        exec_seconds = _engine_seconds(plan, plan._exec_pipeline)

        plan_setup_s = 0.0
        if created and self.charge_plan_creation:
            plan_setup_s = (
                _engine_seconds(plan, plan._plan_pipeline)["exec"]
                + plan.cost_model.constants.cufft_startup_s
            )

        completed_at, modelled = self._enqueue_timeline(
            entry, plan_setup_s, setup_seconds, exec_seconds
        )
        if degraded:
            self.stats.degraded_shards += 1
            self.stats.degraded_seconds += (
                modelled["h2d"] + modelled["exec"] + modelled["d2h"]
            )

        served = 0
        for i, (seq, req) in enumerate(shard):
            # A request whose completion lands past its own deadline_s is a
            # timeout even though the block computed it (the block served
            # its shard-mates; this caller stopped waiting).
            if (req.deadline_s is not None
                    and completed_at - started_at > req.deadline_s):
                exc = DeadlineExceededError(
                    f"completed {completed_at - started_at:.6f}s after first "
                    f"dispatch, past deadline_s={req.deadline_s}"
                )
                self.stats.deadline_exceeded += 1
                self.stats.requests_failed += 1
                results[seq] = TransformResult(
                    tag=req.tag, error=exc, error_type=type(exc).__name__,
                    error_message=str(exc), attempts=attempts,
                    degraded=degraded, device_id=entry.device_id,
                    block_size=n_trans, completed_at=completed_at,
                )
                continue
            served += 1
            results[seq] = TransformResult(
                tag=req.tag,
                output=outputs[i],
                device_id=entry.device_id,
                plan_reused=not created,
                setpts_reused=setpts_reused,
                block_size=n_trans,
                modelled_seconds=modelled,
                completed_at=completed_at,
                attempts=attempts,
                degraded=degraded,
            )
        self.stats.requests_served += served
        self.stats.shards_executed += 1

    def _enqueue_timeline(self, entry, plan_setup_s, setup_seconds, exec_seconds):
        """Model the shard on its device's streams; returns (t_done, seconds).

        Host dispatches serialize (one submission thread); on the device the
        h2d upload, the kernels and the d2h download occupy their respective
        engines, so consecutive shards on different streams overlap.
        """
        device = self.fleet.device(entry.device_id)
        stream = self.fleet.next_stream(device)
        self._host_frontier += self.dispatch_latency_s
        stream.wait_until(self._host_frontier)

        if plan_setup_s > 0.0:
            stream.enqueue("exec", plan_setup_s, "plan create")
        h2d = setup_seconds["h2d"] + exec_seconds["h2d"]
        if h2d > 0.0:
            if self.shared_host_link:
                stream.wait_until(self._host_link_frontier)
            upload_done = stream.enqueue("h2d", h2d, "points + input upload")
            if self.shared_host_link:
                self._host_link_frontier = upload_done.time
        kernels = setup_seconds["exec"] + exec_seconds["exec"]
        if kernels > 0.0:
            stream.enqueue("exec", kernels, "setup + transform kernels")
        event = stream.enqueue("d2h", exec_seconds["d2h"], "output download")

        modelled = {
            "h2d": h2d,
            "exec": kernels + plan_setup_s,
            "d2h": exec_seconds["d2h"],
            "plan_setup": plan_setup_s,
        }
        for engine in ("h2d", "exec", "d2h"):
            self.stats.modelled_engine_seconds[engine] += modelled[engine]
        return event.time, modelled

    # ------------------------------------------------------------------ #
    # plan acquisition
    # ------------------------------------------------------------------ #
    def _acquire_plan(self, plan_key, n_trans, points_key, factory, device=None,
                      allow_repoint=False):
        """Lease a pooled plan or build one; returns (entry, created).

        With ``device`` pinned (multi-shard blocks), only that device's pool
        bucket is consulted.  Otherwise device choice balances cache affinity
        against load: first a device (in least-loaded order) whose pooled
        plan already holds this exact point set, then any device with a
        geometry match, then a fresh plan on the least-loaded device.
        """
        if device is not None:
            ranked = [device]
        else:
            ranked = self.fleet.ranked()
        if points_key is not None:
            for device in ranked:
                key = (plan_key, n_trans, device.device_id)
                if self.pool.has_points(key, points_key):
                    return self.pool.lease(key, points_key=points_key), False
        # Plans released by external lessees carry no vouched-for point set
        # (points_key=None): re-pointing one steals cached state from nobody,
        # so they are fair game at any pool occupancy.
        for device in ranked:
            entry = self.pool.lease_unpointed((plan_key, n_trans, device.device_id))
            if entry is not None:
                return entry, False
        # Geometry-only reuse of a *pointed* plan re-runs set_pts on it,
        # which pays off only once the pool can no longer grow: below
        # capacity, distinct recurring point sets each deserve their own
        # pooled plan (otherwise a single plan ping-pongs between point
        # sets, re-sorting forever).  External lessees (allow_repoint)
        # re-point the plan regardless, so for them any geometry hit wins.
        if allow_repoint or 0 < self.pool.max_plans <= self.pool.n_idle:
            for device in ranked:
                entry = self.pool.lease((plan_key, n_trans, device.device_id))
                if entry is not None:
                    return entry, False
        device = ranked[0]
        plan = factory(device)
        entry = self.pool.make_entry(plan, (plan_key, n_trans, device.device_id))
        entry.device_id = device.device_id
        return entry, True

    def _make_plan(self, req, n_trans, device):
        modes = req.ndim if req.nufft_type == 3 else req.n_modes
        return Plan(req.nufft_type, modes, n_trans=n_trans, eps=req.eps,
                    device=device, precision=req.precision, method=req.method,
                    backend=req.backend, isign=req.isign,
                    tune=self.tune, tuner=self.tuner,
                    artifact_store=self.artifact_store)

    # ------------------------------------------------------------------ #
    # warm state (artifact store)
    # ------------------------------------------------------------------ #
    def _persist_plan_signature(self, entry):
        """Record an idle plan's geometry in the store (record kind "plans").

        Called on every pool release and (via ``PlanPool.on_evict``) on every
        eviction, so the store always lists the signatures a restarted
        service should pre-warm.  Idempotent per signature: already-recorded
        keys are skipped without rewriting the table.
        """
        store = self.artifact_store
        if store is None:
            return
        try:
            plan_key, n_trans, _device_id = entry.key
            nufft_type, modes_key, eps, precision, method, backend, isign = plan_key
            key = f"{plan_key}.n{int(n_trans)}"
            if store.get_record("plans", key, count=False) is not None:
                return
            store.put_record("plans", key, {
                "version": 1,
                "nufft_type": int(nufft_type),
                "modes": list(modes_key),
                "eps": float(eps),
                "precision": precision,
                "method": method,
                "backend": backend,
                "isign": int(isign),
                "n_trans": int(n_trans),
            })
        except Exception:
            # Persistence is best-effort: a full disk or torn table must
            # never take the serving path down.
            pass

    def _pre_warm(self):
        """Recreate pooled plans recorded by a previous process.

        Walks the store's ``"plans"`` records and constructs each signature's
        plan on the least-loaded device, bounded by the pool's LRU capacity.
        Plan construction pulls its stencil-independent state (kernel fit,
        correction factors, cuFFT workspace) up front and the pre-warmed
        entries carry ``points_key=None``, so the very first matching request
        leases one via the unpointed fast path instead of planning.
        Unreconstructible records (schema drift, bad values) are skipped.
        """
        store = self.artifact_store
        if store is None or self.pool.max_plans == 0:
            return
        for key in store.record_keys("plans"):
            if self.pool.n_idle >= self.pool.max_plans:
                break
            rec = store.get_record("plans", key, count=False)
            if rec is None:
                continue
            try:
                modes = rec["modes"]
                if modes and modes[0] == "ndim":
                    modes_arg = int(modes[1])
                else:
                    modes_arg = tuple(int(n) for n in modes)
                n_trans = int(rec["n_trans"])
                plan_key = plan_key_for(
                    rec["nufft_type"], modes_arg, rec["eps"], rec["precision"],
                    rec["method"], rec["backend"], rec["isign"],
                )
                device = self.fleet.least_loaded()
                plan = Plan(rec["nufft_type"], modes_arg, n_trans=n_trans,
                            eps=rec["eps"], device=device,
                            precision=rec["precision"], method=rec["method"],
                            backend=rec["backend"], isign=rec["isign"],
                            tune=self.tune, tuner=self.tuner,
                            artifact_store=store)
            except Exception:
                continue
            entry = self.pool.make_entry(plan, (plan_key, n_trans,
                                                device.device_id))
            entry.device_id = device.device_id
            self.pool.release(entry)
            self._prewarmed += 1

    def _sync_artifact_stats(self):
        """Mirror the store's counters (since the last reset) into stats."""
        store = self.artifact_store
        self.stats.plans_prewarmed = self._prewarmed
        if store is None:
            return
        snap = store.stats.snapshot()
        base = self._artifact_base
        self.stats.artifact_hits = snap["hits"] - base["hits"]
        self.stats.artifact_misses = snap["misses"] - base["misses"]
        self.stats.artifact_stale = snap["stale"] - base["stale"]
        self.stats.artifact_corrupt = snap["corrupt"] - base["corrupt"]
        self.stats.artifact_builds = snap["builds"] - base["builds"]

    # ------------------------------------------------------------------ #
    # inverse-NUFFT solves (see repro.solve)
    # ------------------------------------------------------------------ #
    def solve(self, request=None, **kwargs):
        """Serve one inverse-NUFFT :class:`~repro.solve.SolveRequest`.

        Accepts a prebuilt request or its fields as keywords.  Every plan the
        solve needs (density-compensation, adjoint right-hand side, Toeplitz
        PSF or explicit forward/adjoint pair) is leased from the service's
        pool, so repeated solves over the same trajectory geometry skip all
        planning.  A batched request (``data`` of shape ``(n_rhs, M)``) is
        sharded across the device fleet -- each shard leases plans pinned to
        its device and runs its rows' CG independently -- and the shards'
        modelled costs are enqueued on the per-device stream timelines
        exactly like transform blocks, so :meth:`makespan` /
        :meth:`utilization` cover solves too.

        Returns
        -------
        SolveResult
            Merged over shards, row order preserved; ``device_ids`` lists
            the devices the shards ran on.
        """
        from ..solve import SolveRequest

        self._require_open()
        if request is None:
            request = SolveRequest(**kwargs)
        elif kwargs:
            raise ValueError("pass either a SolveRequest or keyword fields, not both")
        if not isinstance(request, SolveRequest):
            raise TypeError(f"expected a SolveRequest, got {type(request).__name__}")

        n_shards = min(self.fleet.n_devices, request.n_rhs)
        if n_shards <= 1:
            result = self._execute_solve_shard(request,
                                               self.fleet.least_loaded(), "solve")
            self.stats.solves_served += request.n_rhs
            return result

        ranked = self.fleet.ranked()
        # Resolve Pipe-Menon weights once for the whole request -- every
        # shard shares the trajectory, so per-shard recomputation would just
        # repeat the identical DCF fixed point.  (The Toeplitz PSF *is*
        # rebuilt per shard: each shard's kernel lives on its own device.)
        weights = request.weights
        if isinstance(weights, str):
            from ..solve import pipe_menon_weights

            weights = pipe_menon_weights(
                request.points(), request.n_modes, n_iter=request.dcf_iters,
                eps=request.eps, isign=request.isign, service=self,
                device=ranked[0], backend=request.backend,
            )
        rows = request.rhs_rows()
        bounds = np.array_split(np.arange(request.n_rhs), n_shards)
        shard_results = []
        for i, idx in enumerate(bounds):
            if len(idx) == 0:
                continue
            shard_req = request.replace_data(rows[idx], weights=weights)
            result = self._execute_solve_shard(
                shard_req, ranked[i % len(ranked)], f"solve-shard-{i}"
            )
            shard_results.append(result)
        self.stats.solves_served += request.n_rhs
        return self._merge_solve_results(request, shard_results)

    def _execute_solve_shard(self, shard_req, device, token):
        """Run one solve shard with retry and health tracking.

        Device faults raised inside :func:`~repro.solve.execute_solve`
        (every leased plan releases via ``finally``, so retries never leak
        leases) re-dispatch the shard to the healthiest device, with the
        same backoff-on-the-modelled-timeline accounting as transform
        shards.  A shard that exhausts its budget raises to the caller --
        a solve has no per-request error slot to degrade into.
        """
        from ..solve import execute_solve

        attempts = 0
        while True:
            attempts += 1
            try:
                result = execute_solve(shard_req, service=self, device=device)
            except Exception as exc:
                self._note_failure(
                    exc, device.device_id if device is not None else None
                )
                if not (self.retry.should_retry(exc)
                        and attempts < self.retry.max_attempts
                        and self._fleet_has_candidates()):
                    raise
                self._host_frontier += self.retry.backoff_s(attempts, token)
                self.stats.retries += 1
                device = self.fleet.least_loaded()
                continue
            if device is not None:
                self.fleet.record_success(device.device_id)
            self._enqueue_solve_timeline(result)
            self.stats.solve_shards += 1
            self.stats.solve_cg_iterations += int(sum(result.n_iter))
            return result

    def _enqueue_solve_timeline(self, result):
        """Model one solve shard on its device's streams (like a block)."""
        from ..gpu.profiler import TransferRecord

        device_id = result.device_ids[0] if result.device_ids else 0
        device = self.fleet.device(device_id)
        stream = self.fleet.next_stream(device)
        self._host_frontier += self.dispatch_latency_s
        stream.wait_until(self._host_frontier)

        cm = CostModel(spec=device.spec)
        modelled = result.modelled_seconds
        h2d = cm.transfer_time(TransferRecord("h2d", modelled["h2d_bytes"]))
        d2h = cm.transfer_time(TransferRecord("d2h", modelled["d2h_bytes"]))
        if self.shared_host_link:
            stream.wait_until(self._host_link_frontier)
        upload_done = stream.enqueue("h2d", h2d, "trajectory + samples upload")
        if self.shared_host_link:
            self._host_link_frontier = upload_done.time
        stream.enqueue("exec", modelled["exec"], "solve kernels")
        stream.enqueue("d2h", d2h, "image download")
        for engine, seconds in (("h2d", h2d), ("exec", modelled["exec"]),
                                ("d2h", d2h)):
            self.stats.modelled_engine_seconds[engine] += seconds

    @staticmethod
    def _merge_solve_results(request, shard_results):
        from ..solve import SolveResult

        merged = SolveResult(
            x=np.concatenate([r.x.reshape((-1,) + request.n_modes)
                              for r in shard_results]),
            residual_norms=[h for r in shard_results for h in r.residual_norms],
            n_iter=[n for r in shard_results for n in r.n_iter],
            converged=[c for r in shard_results for c in r.converged],
            weights=shard_results[0].weights,
            normal=request.normal,
            device_ids=[d for r in shard_results for d in r.device_ids],
            tag=request.tag,
        )
        total = {"psf_build": 0.0, "rhs_build": 0.0, "per_iteration": 0.0,
                 "iterations": 0, "exec": 0.0, "h2d_bytes": 0, "d2h_bytes": 0}
        for r in shard_results:
            for key in total:
                total[key] += r.modelled_seconds[key]
        total["per_iteration"] = shard_results[0].modelled_seconds["per_iteration"]
        merged.modelled_seconds = total
        return merged

    # ------------------------------------------------------------------ #
    # external plan leasing (application integration, e.g. M-TIP)
    # ------------------------------------------------------------------ #
    def lease_plan(self, nufft_type, n_modes, n_trans=1, eps=1e-6,
                   precision="double", method="auto", backend="auto",
                   isign=None, device=None):
        """Lease a plan from the pool (or create one on the emptiest device).

        The application drives ``set_pts`` / ``execute`` itself and must give
        the plan back with :meth:`release_plan`; across leases the plan's
        geometry planning is amortized exactly as for coalesced requests.
        ``isign`` selects the exponent sign (``None`` keeps the per-type
        default) and is part of the pool key.  ``device`` pins the lease to
        one fleet device (used by sharded solves); by default the
        least-loaded device wins.
        """
        self._require_open()
        plan_key = plan_key_for(nufft_type, n_modes, eps, precision, method,
                                backend, isign)
        entry, created = self._acquire_plan(
            plan_key, int(n_trans), None,
            lambda device: Plan(nufft_type, n_modes, n_trans=n_trans, eps=eps,
                                device=device, precision=precision,
                                method=method, backend=backend, isign=isign,
                                tune=self.tune, tuner=self.tuner,
                                artifact_store=self.artifact_store),
            allow_repoint=True, device=device,
        )
        if created:
            self.stats.lease_misses += 1
            self.stats.plans_created += 1
        else:
            self.stats.lease_hits += 1
        # External callers may re-point the plan arbitrarily; the pool can no
        # longer vouch for the cached point set.
        entry.points_key = None
        self._leased[id(entry.plan)] = entry
        return entry.plan

    def release_plan(self, plan):
        """Return a leased plan to the pool (destroyed if pooling is off).

        A plan the lessee already destroyed (e.g. by using it as a context
        manager) is dropped rather than pooled -- pooling it would hand a
        dead plan to the next same-geometry request.  Likewise a plan whose
        device was evicted, drained or lost mid-lease is destroyed, not
        recycled.
        """
        entry = self._leased.pop(id(plan), None)
        if entry is None:
            raise ValueError("plan was not leased from this service")
        if plan._destroyed:
            return
        self._release_entry(entry)

    # ------------------------------------------------------------------ #
    # fleet administration
    # ------------------------------------------------------------------ #
    def drain_device(self, device_id):
        """Drain one device: no new placements, idle pooled plans destroyed.

        In-flight leases finish normally (and are destroyed at release);
        :meth:`restore_device` re-admits the device.
        """
        self.fleet.drain(device_id)
        self.pool.purge_device(device_id)

    def restore_device(self, device_id):
        """Re-admit a drained device to placement."""
        self.fleet.restore(device_id)

    def evict_device(self, device_id):
        """Permanently remove one device from placement; purge its plans."""
        self.fleet.evict(device_id)
        self.pool.purge_device(device_id)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def advance_time(self, now):
        """Advance the modelled host clock to ``now`` (monotonic; seconds).

        The async front-end lives on an *arrival* clock: requests land at
        trace-defined instants, windows close at deadlines.  Before
        dispatching a window that closed at ``now`` it advances the
        service's host frontier here, so dispatch latency, backoff and
        stream waits are charged from the arrival instant rather than from
        wherever the last flush left the frontier.  Moving backwards is a
        no-op -- modelled time never rewinds.
        """
        now = float(now)
        if now > self._host_frontier:
            self._host_frontier = now
        if now > self._host_link_frontier:
            self._host_link_frontier = now

    @property
    def host_time(self):
        """Current modelled host-clock instant (seconds)."""
        return self._host_frontier

    def makespan(self):
        """Modelled seconds to drain everything served so far."""
        return self.fleet.makespan()

    def throughput_rps(self):
        """Modelled requests per second over the service lifetime."""
        makespan = self.makespan()
        if makespan <= 0.0:
            return 0.0
        return self.stats.requests_served / makespan

    def utilization(self, engine="exec"):
        """Per-device busy fraction of the fleet makespan."""
        return self.fleet.utilization(engine)

    def reset_metrics(self):
        """Rewind the modelled timelines and counters; pooled plans survive.

        Benchmarks use this to measure steady-state serving (warm pool)
        separately from the cold start that filled it.
        """
        self.fleet.reset_timelines()
        self._host_frontier = 0.0
        self._host_link_frontier = 0.0
        self.stats = ServiceStats()
        if self.artifact_store is not None:
            self._artifact_base = self.artifact_store.stats.snapshot()
        self._sync_artifact_stats()

    def report(self):
        """Multi-line human-readable serving summary."""
        self._sync_artifact_stats()
        s = self.stats
        util = ", ".join(f"gpu{d}={u:.0%}" for d, u in enumerate(self.utilization()))
        tuning_lines = []
        if self.tuner is not None:
            ts = self.tuner.stats
            tuning_lines.append(
                f"  tuning: {ts.tunings_computed} computed, {ts.cache_hits} "
                f"cache hits, {len(self.tuner.cache)} cached signature(s)"
            )
        artifact_lines = []
        if self.artifact_store is not None:
            artifact_lines.append(
                f"  artifacts: {s.artifact_hits} hits, {s.artifact_misses} "
                f"misses, {s.artifact_stale} stale, {s.artifact_corrupt} "
                f"corrupt, {s.artifact_builds} builds, {s.plans_prewarmed} "
                f"plan(s) pre-warmed ({self.artifact_store.describe()})"
            )
        return "\n".join([
            f"TransformService: {self.fleet.n_devices} device(s), "
            f"pool={'on' if self.pool_plans else 'off'} "
            f"(max {self.pool.max_plans}), "
            f"coalesce={'on' if self.coalesce else 'off'}, "
            f"tune={self.tune}",
            f"  requests: {s.requests_served} served, {s.requests_failed} failed, "
            f"{s.blocks_executed} blocks, {s.shards_executed} shards",
            f"  plans: {s.plans_created} created, {s.plan_cache_hits} pool hits, "
            f"{s.setpts_skipped} set_pts skipped",
            f"  resilience: {s.retries} retries, {s.breaker_trips} breaker "
            f"trips, {s.requests_shed} shed, {s.deadline_exceeded} "
            f"deadline-exceeded, {1e3 * s.degraded_seconds:.3f} ms degraded",
            *([f"  failures: " + ", ".join(
                f"{name}={count}"
                for name, count in sorted(s.failures_by_type.items()))]
              if s.failures_by_type else []),
            *tuning_lines,
            *artifact_lines,
            *s.report(),
            f"  modelled: makespan {1e3 * self.makespan():.3f} ms, "
            f"{self.throughput_rps():.0f} req/s, exec util [{util}]",
        ])

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _require_open(self):
        if self._closed:
            raise RuntimeError("service has been closed")

    def close(self):
        """Destroy every pooled plan and refuse further work (idempotent).

        Refuses to drop work on the floor: closing with queued-but-unflushed
        requests or unreleased leased plans raises instead of silently
        discarding them.
        """
        if self._closed:
            return
        if self._leased:
            raise RuntimeError(
                f"{len(self._leased)} leased plan(s) not released; "
                "call release_plan before close"
            )
        if self._queue or self._shed:
            raise RuntimeError(
                f"{len(self._queue) + len(self._shed)} submitted request(s) "
                "not served; call flush before close"
            )
        self.pool.clear()
        self._queue = []
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False


def _engine_seconds(plan, pipeline):
    """Split one pipeline's modelled cost by hardware engine.

    Kernels and allocations occupy the compute engine (``cudaMalloc``
    synchronizes the device), transfers their respective copy engines.
    """
    cm = plan.cost_model
    seconds = {"h2d": 0.0, "exec": 0.0, "d2h": 0.0}
    if pipeline is None:
        return seconds
    for record in pipeline.transfers:
        engine = "exec" if record.kind == "alloc" else record.kind
        seconds[engine] += cm.transfer_time(record)
    for _phase, kernel in pipeline.kernels:
        seconds["exec"] += cm.kernel_time(kernel)
    return seconds
