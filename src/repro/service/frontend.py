"""Async micro-batching front-end: windows, fair share, latency accounting.

The :class:`~repro.service.TransformService` fuses whatever happens to sit in
its queue when ``flush()`` is called -- batching is the *caller's* problem.
This module moves that problem server-side, the way a GPU inference front-end
does: requests arrive on an open-loop trace (each carries an arrival instant
and a tenant id), an :class:`AsyncFrontend` holds them briefly in
**bounded batching windows**, and same-signature requests -- equal
:meth:`~repro.service.TransformRequest.signature`, i.e. same transform
geometry *and* same point set -- fuse into a single ``n_trans`` block before
dispatch.  Fusion is free accuracy-wise: a fused block is bit-identical to
per-request submission (the batched engine runs the same FFTs over a stacked
input), so the window trades a bounded amount of latency for the paper's
``n_trans`` throughput win on every batchable stretch of traffic.

Three mechanisms, in dispatch order:

**Bounded windows.**  The first admitted request of a signature opens a
window; it closes after ``window_s`` modelled seconds or as soon as it holds
``max_batch`` requests, whichever comes first.  ``max_batch=1`` degenerates
to per-request dispatch (the benchmark baseline); ``window_s=0`` still fuses
same-instant arrivals.

**Per-tenant fair share.**  Arrivals land in per-tenant sub-queues and a
deficit round-robin scheduler (quantum x weight credits per round) admits
requests into windows, so a tenant flooding the front door cannot starve a
light tenant: the light tenant's occasional request is admitted within one
DRR round of its arrival whenever the fleet has capacity.  Admission is
credit-limited by ``max_inflight`` -- the count of admitted-but-not-yet-
completed requests on the modelled timeline -- which is what makes fairness
bind under overload: when the fleet saturates, backlog forms in the
sub-queues where DRR (not arrival order) decides who goes next.  Each
sub-queue is bounded by a :class:`~repro.service.FairShedPolicy`: overflow
sheds the overflowing tenant's own lowest-priority request (newest first
among equals), never another tenant's.

**Latency accounting.**  Every served request records three modelled
latencies into :class:`~repro.service.ServiceStats`: ``queue_wait``
(arrival -> DRR admission), ``batch_wait`` (admission -> window dispatch)
and ``e2e`` (arrival -> modelled completion), per tenant and per signature;
``report()`` summarizes p50/p95/p99.

Everything runs on the modelled clock -- arrivals, window deadlines and
completions are events in a deterministic discrete-event loop -- so traces
replay identically and the QoS properties are testable exactly.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from .request import TransformRequest, TransformResult
from .resilience import FairShedPolicy, ServiceOverloadedError
from .service import TransformService

__all__ = ["AsyncFrontend", "BatchWindow", "PendingRequest"]


@dataclass(eq=False)
class PendingRequest:
    """One request moving through the front-end, with its QoS timestamps.

    Attributes
    ----------
    seq : int
        Front-end submission sequence number (the caller's handle).
    request : TransformRequest
        The validated request.
    arrival_s : float
        Trace instant the request arrived at the front door.
    admitted_s : float or None
        Instant the fair-share scheduler admitted it into a window.
    dispatched_s : float or None
        Instant its window closed and the fused block dispatched.
    """

    seq: int
    request: TransformRequest
    arrival_s: float
    admitted_s: float = None
    dispatched_s: float = None


@dataclass(eq=False)
class BatchWindow:
    """One open micro-batching window: same-signature requests awaiting fusion.

    Opened by the first admitted request of its signature; closes (and its
    entries dispatch as one fused ``n_trans`` block) at ``deadline_s`` or as
    soon as it holds the front-end's ``max_batch`` entries.
    """

    signature: tuple
    opened_at_s: float
    deadline_s: float
    entries: list = field(default_factory=list)

    def __len__(self):
        return len(self.entries)


class AsyncFrontend:
    """Bounded-window micro-batching front-end over a :class:`TransformService`.

    Parameters
    ----------
    service : TransformService
        The serving backend.  The front-end owns admission control, so the
        service should run without its own ``max_queue_depth`` (each window
        dispatch submits at most ``max_batch`` requests and flushes).
    window_s : float
        Maximum modelled seconds a window stays open past its first request.
        ``0`` fuses only same-instant arrivals.
    max_batch : int
        Window capacity; a full window dispatches immediately.  ``1`` is
        per-request dispatch (no batching -- the benchmark baseline).
    max_inflight : int, optional
        Admission credit: admitted-but-not-completed requests.  Defaults to
        ``2 * max_batch * n_devices`` -- enough to double-buffer every
        device, small enough that overload forms backlog in the fair-share
        queues instead of in the fleet.
    weights : dict, optional
        Per-tenant fair-share weights (``tenant -> float > 0``); a tenant
        with weight 2 earns admission credit twice as fast as weight 1.
        Unlisted tenants get ``1.0``.
    quantum : float
        DRR credit earned per round per unit weight (admitting one request
        costs 1).  Larger quanta admit longer per-tenant runs per round.
    shed : FairShedPolicy, optional
        Per-tenant sub-queue bound (default ``FairShedPolicy()``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.service import AsyncFrontend, TransformService
    >>> rng = np.random.default_rng(0)
    >>> x = rng.uniform(-np.pi, np.pi, 2000)
    >>> fe = AsyncFrontend(TransformService(), window_s=1e-3, max_batch=8)
    >>> for k in range(8):   # two tenants, same signature, 0.1 ms apart
    ...     c = rng.normal(size=2000) + 1j * rng.normal(size=2000)
    ...     _ = fe.submit(nufft_type=1, n_modes=(64,), data=c, x=x,
    ...                   tenant=["alice", "bob"][k % 2], at_s=1e-4 * k)
    >>> results = fe.drain()
    >>> results[0].block_size   # all eight fused into one n_trans block
    8
    >>> results[0].e2e_s is not None
    True
    >>> fe.close()
    """

    def __init__(self, service, window_s=2e-3, max_batch=8, max_inflight=None,
                 weights=None, quantum=1.0, shed=None):
        if not isinstance(service, TransformService):
            raise TypeError(
                f"service must be a TransformService, got {type(service).__name__}"
            )
        window_s = float(window_s)
        if not window_s >= 0.0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        max_batch = int(max_batch)
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_inflight is None:
            max_inflight = 2 * max_batch * service.fleet.n_devices
        max_inflight = int(max_inflight)
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        quantum = float(quantum)
        if not quantum > 0.0:
            raise ValueError(f"quantum must be > 0, got {quantum}")
        weights = dict(weights) if weights else {}
        for tenant, w in weights.items():
            if not float(w) > 0.0:
                raise ValueError(f"weight for tenant {tenant!r} must be > 0, got {w}")
            weights[tenant] = float(w)
        if shed is None:
            shed = FairShedPolicy()
        if not isinstance(shed, FairShedPolicy):
            raise TypeError(
                f"shed must be a FairShedPolicy, got {type(shed).__name__}"
            )

        self.service = service
        self.window_s = window_s
        self.max_batch = max_batch
        self.max_inflight = max_inflight
        self.weights = weights
        self.quantum = quantum
        self.shed = shed

        self._seq = itertools.count()
        self._now = 0.0
        self._arrivals = []        # heap of (arrival_s, seq, PendingRequest)
        self._queues = {}          # tenant -> list[PendingRequest] (FIFO)
        self._rotation = []        # DRR visit order (first-appearance)
        self._rr = 0               # rotating round-start index
        self._deficits = {}        # tenant -> float credit
        self._windows = {}         # signature -> BatchWindow
        self._completions = []     # heap of (completed_s, tiebreak, n_requests)
        self._inflight = 0         # admitted-but-not-completed requests
        self._tiebreak = itertools.count()
        self._results = {}         # seq -> TransformResult
        self._closed = False
        # front-end counters (window behaviour; latency lives in service.stats)
        self.windows_dispatched = 0
        self.requests_fused = 0
        self.largest_fusion = 0

    # ------------------------------------------------------------------ #
    # intake
    # ------------------------------------------------------------------ #
    def submit(self, request=None, at_s=0.0, **kwargs):
        """Schedule one request to arrive at modelled instant ``at_s``.

        Accepts a prebuilt :class:`~repro.service.TransformRequest` or its
        fields as keywords (validation is eager, as at the service front
        door).  Arrivals may be submitted in any order; the event loop
        processes them by arrival instant.  Returns the front-end sequence
        number -- :meth:`drain` returns results in that order.
        """
        self._require_open()
        if request is None:
            request = TransformRequest(**kwargs)
        elif kwargs:
            raise ValueError(
                "pass either a TransformRequest or keyword fields, not both"
            )
        if not isinstance(request, TransformRequest):
            raise TypeError(
                f"expected a TransformRequest, got {type(request).__name__}"
            )
        at_s = float(at_s)
        if not at_s >= 0.0:
            raise ValueError(f"at_s must be >= 0, got {at_s}")
        seq = next(self._seq)
        entry = PendingRequest(seq=seq, request=request, arrival_s=at_s)
        heapq.heappush(self._arrivals, (at_s, seq, entry))
        return seq

    # ------------------------------------------------------------------ #
    # event loop
    # ------------------------------------------------------------------ #
    def drain(self):
        """Run the event loop to quiescence; results in submission order.

        Processes every scheduled arrival, admission, window close and
        modelled completion.  Shed requests appear in the returned list as
        error results carrying
        :class:`~repro.service.ServiceOverloadedError`.
        """
        self._require_open()
        while (self._arrivals or self._windows or self._completions
               or any(self._queues.values())):
            self._pop_completions(self._now)
            self._pop_arrivals(self._now)
            self._admit(self._now)
            self._close_due(self._now)
            t = self._next_event_time()
            if t is None:
                break
            self._now = max(self._now, t)
        results = [self._results.pop(seq) for seq in sorted(self._results)]
        return results

    @property
    def now(self):
        """Current modelled front-end instant (seconds)."""
        return self._now

    def _next_event_time(self):
        candidates = []
        if self._arrivals:
            candidates.append(self._arrivals[0][0])
        if self._completions:
            candidates.append(self._completions[0][0])
        candidates.extend(w.deadline_s for w in self._windows.values())
        # Skip events at or before now: they were processed this iteration.
        future = [t for t in candidates if t > self._now]
        if future:
            return min(future)
        return min(candidates) if candidates else None

    def _pop_completions(self, now):
        while self._completions and self._completions[0][0] <= now:
            _, _, n = heapq.heappop(self._completions)
            self._inflight -= n

    def _pop_arrivals(self, now):
        # Admission interleaves with same-instant arrivals: backlog that the
        # scheduler *could* admit right now must not occupy sub-queue slots
        # when the bound is checked, or a burst would shed work spuriously.
        while self._arrivals and self._arrivals[0][0] <= now:
            _, _, entry = heapq.heappop(self._arrivals)
            self._admit(now)
            self._enqueue(entry)

    # ------------------------------------------------------------------ #
    # per-tenant queues and shedding
    # ------------------------------------------------------------------ #
    def _enqueue(self, entry):
        tenant = entry.request.tenant
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = []
            self._rotation.append(tenant)
            self._deficits[tenant] = 0.0
        if len(queue) >= self.shed.max_pending:
            victim_i = self.shed.pick_victim(queue, entry.seq, entry.request)
            if victim_i is None:
                victim = entry          # incoming ranks lowest: shed unseated
            else:
                victim = queue.pop(victim_i)
                queue.append(entry)
            self._shed_entry(victim)
        else:
            queue.append(entry)

    def _shed_entry(self, entry):
        tenant = entry.request.tenant
        self.service.stats.record_shed(tenant)
        exc = ServiceOverloadedError(
            f"shed from tenant {tenant!r} sub-queue at max_pending="
            f"{self.shed.max_pending} (priority {entry.request.priority} "
            "was the lowest queued for this tenant)"
        )
        self._results[entry.seq] = TransformResult(
            tag=entry.request.tag, error=exc, error_type=type(exc).__name__,
            error_message=str(exc), tenant=tenant,
        )

    # ------------------------------------------------------------------ #
    # fair-share admission (deficit round-robin)
    # ------------------------------------------------------------------ #
    def _weight(self, tenant):
        return self.weights.get(tenant, 1.0)

    def _has_credit(self):
        return self._inflight < self.max_inflight

    def _admit(self, now):
        """DRR rounds until credit or pending work runs out.

        Each round grants every backlogged tenant ``quantum * weight``
        credit; admitting one request costs 1.  A tenant whose queue empties
        forfeits leftover credit (the classic DRR reset), so idle tenants
        cannot bank credit and later burst past the discipline.
        """
        while self._has_credit() and any(self._queues.values()):
            # Rotate the round's starting tenant: with one credit per round a
            # fixed visit order would hand every slot to the same tenant.
            n = len(self._rotation)
            start = self._rr
            self._rr = (self._rr + 1) % n
            for i in range(n):
                tenant = self._rotation[(start + i) % n]
                queue = self._queues.get(tenant)
                if not queue:
                    self._deficits[tenant] = 0.0
                    continue
                self._deficits[tenant] += self.quantum * self._weight(tenant)
                while queue and self._deficits[tenant] >= 1.0:
                    if not self._has_credit():
                        return
                    self._deficits[tenant] -= 1.0
                    self._admit_entry(queue.pop(0), now)
                if not queue:
                    self._deficits[tenant] = 0.0

    def _admit_entry(self, entry, now):
        entry.admitted_s = now
        self._inflight += 1
        signature = entry.request.signature()
        window = self._windows.get(signature)
        if window is None:
            window = BatchWindow(
                signature=signature, opened_at_s=now,
                deadline_s=now + self.window_s,
            )
            self._windows[signature] = window
        window.entries.append(entry)
        if len(window) >= self.max_batch:
            del self._windows[signature]
            self._dispatch(window, now)

    def _close_due(self, now):
        due = [sig for sig, w in self._windows.items() if w.deadline_s <= now]
        for sig in due:
            self._dispatch(self._windows.pop(sig), now)

    # ------------------------------------------------------------------ #
    # dispatch and accounting
    # ------------------------------------------------------------------ #
    def _dispatch(self, window, now):
        """Fuse one closed window into the service and account its latencies.

        The service's host clock is advanced to the close instant first, so
        dispatch latency and stream waits are charged from window close --
        then the window's entries are submitted back-to-back and flushed as
        one fused block (they share a signature, so coalescing is exact).
        """
        service = self.service
        service.advance_time(now)
        for entry in window.entries:
            entry.dispatched_s = now
            service.submit(entry.request)
        results = service.flush()

        self.windows_dispatched += 1
        if len(window) > 1:
            self.requests_fused += len(window)
        self.largest_fusion = max(self.largest_fusion, len(window))

        latest = now
        for entry, result in zip(window.entries, results):
            latest = max(latest, self._account(entry, result))
            self._results[entry.seq] = result
        # Credit returns when the block's modelled completion passes: one
        # event for the whole window (entries complete together).
        heapq.heappush(
            self._completions, (latest, next(self._tiebreak), len(window))
        )

    def _account(self, entry, result):
        """Fill one result's QoS fields and record its latency samples."""
        stats = self.service.stats
        tenant = entry.request.tenant
        label = entry.request.signature_label()
        queue_wait = entry.admitted_s - entry.arrival_s
        batch_wait = entry.dispatched_s - entry.admitted_s
        result.tenant = tenant
        result.queue_wait_s = queue_wait
        result.batch_wait_s = batch_wait
        completed = result.completed_at if result.error is None else None
        for scope, name in (("tenant", tenant), ("signature", label)):
            stats.record_latency(scope, name, "queue_wait", queue_wait)
            stats.record_latency(scope, name, "batch_wait", batch_wait)
        if completed is not None:
            result.e2e_s = completed - entry.arrival_s
            for scope, name in (("tenant", tenant), ("signature", label)):
                stats.record_latency(scope, name, "e2e", result.e2e_s)
            return completed
        return entry.dispatched_s

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def tenant_latency(self, tenant):
        """Percentile summary for one tenant (see ``latency_percentiles``).

        ``{kind: {"n", "p50", "p95", "p99", "max"}}`` over the latency kinds
        recorded so far; empty when the tenant has no served requests.
        """
        return self.service.stats.latency_percentiles("tenant").get(tenant, {})

    def report(self):
        """Front-end summary plus the backing service's report."""
        fused = (f"{self.requests_fused} requests fused "
                 f"(largest {self.largest_fusion})"
                 if self.requests_fused else "no fusion yet")
        return "\n".join([
            f"AsyncFrontend: window={1e3 * self.window_s:g} ms, "
            f"max_batch={self.max_batch}, max_inflight={self.max_inflight}, "
            f"{self.windows_dispatched} windows dispatched, {fused}",
            self.service.report(),
        ])

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def _require_open(self):
        if self._closed:
            raise RuntimeError("frontend has been closed")

    def close(self):
        """Close the front-end and its service (idempotent).

        Refuses to drop work: scheduled arrivals, queued requests or open
        windows that were never drained raise instead of vanishing.
        """
        if self._closed:
            return
        pending = (len(self._arrivals) + len(self._windows)
                   + sum(len(q) for q in self._queues.values()))
        if pending or self._results:
            raise RuntimeError(
                f"{pending + len(self._results)} request(s) not drained; "
                "call drain() before close"
            )
        self.service.close()
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False
