"""Fine (upsampled) grid sizing.

As in FINUFFT and cuFINUFFT, the fine grid size in each dimension is the
smallest integer of the form ``2^q 3^p 5^r`` that is at least
``max(sigma * N_i, 2 w)`` -- such "5-smooth" sizes keep the (cu)FFT fast.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_smooth_235",
    "next_smooth_235",
    "next_smooth_even_235",
    "fine_grid_size",
    "fine_grid_shape",
]


def is_smooth_235(n):
    """True if ``n`` has no prime factors other than 2, 3 and 5."""
    n = int(n)
    if n < 1:
        return False
    for p in (2, 3, 5):
        while n % p == 0:
            n //= p
    return n == 1


def next_smooth_235(n):
    """Smallest integer ``>= n`` whose prime factors are all in {2, 3, 5}.

    Uses an explicit enumeration of 5-smooth candidates rather than trial
    increment, so it is fast even for large ``n``.
    """
    n = int(n)
    if n <= 1:
        return 1
    best = None
    # 2^a alone can always exceed n, giving an upper bound for the search.
    limit = 1
    while limit < n:
        limit *= 2
    best = limit
    p5 = 1
    while p5 <= best:
        p35 = p5
        while p35 <= best:
            # smallest power of two >= n / p35
            q = -(-n // p35)  # ceil division
            p2 = 1
            while p2 < q:
                p2 *= 2
            candidate = p35 * p2
            if n <= candidate < best:
                best = candidate
            p35 *= 3
        p5 *= 5
    return best


def next_smooth_even_235(n):
    """Smallest *even* 5-smooth integer ``>= n``.

    Type-3 transforms centre their rescaled fine grid, which requires an even
    grid size so the ``fftshift`` between spatial and mode ordering is an
    exact half-rotation (FINUFFT's ``next235even``).
    """
    n = max(2, int(n))
    candidate = next_smooth_235(n)
    while candidate % 2:
        candidate = next_smooth_235(candidate + 1)
    return candidate


def fine_grid_size(n_modes, kernel_width, upsampfac=2.0):
    """Fine grid size for one dimension: smallest 5-smooth >= max(sigma N, 2w)."""
    if n_modes < 1:
        raise ValueError(f"number of modes must be >= 1, got {n_modes}")
    if kernel_width < 1:
        raise ValueError(f"kernel width must be >= 1, got {kernel_width}")
    target = max(int(np.ceil(upsampfac * n_modes)), 2 * int(kernel_width))
    return next_smooth_235(target)


def fine_grid_shape(modes_shape, kernel_width, upsampfac=2.0):
    """Fine grid shape for a multi-dimensional transform."""
    return tuple(fine_grid_size(n, kernel_width, upsampfac) for n in modes_shape)
