"""Plan-level stencil cache: precomputed spreading geometry for one point set.

The paper's plan / set_pts / execute separation (Sec. V-A) exists so that the
per-point work that depends only on the *points* -- not on the strengths -- is
paid once and amortized over many ``execute`` calls (the MTIP use case, where
the same nonuniform points are reused across ``n_trans`` strength vectors and
across solver iterations).

At ``set_pts`` time we therefore precompute and store, per dimension:

* ``i0``      -- the first fine-grid node each point touches (unwrapped),
* ``idx``     -- the ``w`` wrapped (periodic) node indices per point,
* ``vals``    -- the ``w`` kernel values per point (Horner-evaluated by
  default, see :func:`repro.kernels.es_kernel.horner_coefficients`),

and, when the footprint ``M * w^d`` fits a memory budget, the *fused* form:

* ``flat_idx`` -- the ``w^d`` wrapped flat fine-grid indices per point,
* ``weights``  -- the ``w^d`` tensor-product kernel values per point,
* ``interp_matrix`` -- the same data as a ``(M, n_fine)`` CSR sparse matrix
  (when scipy is available), whose transpose is the spreading operator.

``execute`` then never calls ``evaluate_offsets`` again: spreading becomes a
single accumulation pass over the ``(n_trans, M)`` strength block (a sparse
mat-mat, or a fused ``bincount`` without scipy) and interpolation the
transposed gather.  The cache is tied to one point set; ``Plan.set_pts``
rebuilds it, which is exactly the invalidation the paper's interface implies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "StencilCache",
    "build_stencil_cache",
    "stencil_cache_arrays",
    "stencil_cache_from_arrays",
    "stencil_cache_key",
    "DEFAULT_FUSE_BUDGET",
]

#: Maximum number of fused stencil entries (``M * w^d``) materialized by the
#: cache; above this only the per-dimension arrays are kept.  32M entries is
#: ~256 MB for the int64 indices plus ~256 MB for the float64 weights.
DEFAULT_FUSE_BUDGET = 1 << 25

try:  # pragma: no cover - exercised indirectly everywhere scipy exists
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - offline images always ship scipy
    _sparse = None


@dataclass
class StencilCache:
    """Precomputed per-point spreading geometry (see module docstring).

    Attributes
    ----------
    fine_shape : tuple of int
        Fine-grid dimensions the indices refer to.
    width : int
        Kernel width ``w``.
    i0 : list of ndarray, each (M,)
        Unwrapped first node per dimension (the SM spreader needs the
        unwrapped value to localize points inside a padded bin).
    idx : list of ndarray, each (M, w)
        Wrapped node indices per dimension.
    vals : list of ndarray, each (M, w)
        Kernel values per dimension.
    flat_idx : ndarray (M, w^d) or None
        Fused wrapped flat indices (only when within budget and no sparse
        operator was assembled -- the CSR matrix supersedes them, so keeping
        both would hold the large int64 index array as dead memory).
    weights : ndarray (M, w^d) or None
        Fused tensor-product kernel values (same lifetime as ``flat_idx``;
        when the sparse operator exists it owns this data as ``matrix.data``).
    interp_matrix : scipy.sparse.csr_matrix (M, prod(fine_shape)) or None
        Row ``j`` holds point ``j``'s stencil; ``interp_matrix @ grid`` is
        interpolation and ``interp_matrix.T @ c`` is spreading.
    kernel_eval : str
        Which kernel evaluation built the values ("horner" or "exact").
    """

    fine_shape: tuple
    width: int
    i0: list
    idx: list
    vals: list
    flat_idx: np.ndarray = None
    weights: np.ndarray = None
    interp_matrix: object = None
    kernel_eval: str = "horner"

    @property
    def n_points(self):
        return self.i0[0].shape[0]

    @property
    def ndim(self):
        return len(self.fine_shape)

    @property
    def is_fused(self):
        return self.flat_idx is not None or self.interp_matrix is not None

    def nbytes(self):
        """Host memory held by the cache (for reporting)."""
        total = sum(a.nbytes for a in self.i0)
        total += sum(a.nbytes for a in self.idx)
        total += sum(a.nbytes for a in self.vals)
        if self.flat_idx is not None:
            total += self.flat_idx.nbytes + self.weights.nbytes
        if self.interp_matrix is not None:
            total += (self.interp_matrix.data.nbytes
                      + self.interp_matrix.indices.nbytes
                      + self.interp_matrix.indptr.nbytes)
        return int(total)


def _tensor_stencil(idx_per_dim, vals_per_dim, fine_shape):
    """Fuse per-dimension stencils into flat indices and product weights.

    Returns ``(flat_idx, weights)`` of shape ``(M, w^d)`` where ``flat_idx``
    indexes the flattened fine grid and ``weights`` holds the separable kernel
    tensor product.
    """
    ndim = len(fine_shape)
    m = idx_per_dim[0].shape[0]
    if ndim == 1:
        return idx_per_dim[0].reshape(m, -1), vals_per_dim[0].reshape(m, -1)
    if ndim == 2:
        n2 = fine_shape[1]
        flat_idx = idx_per_dim[0][:, :, None] * n2 + idx_per_dim[1][:, None, :]
        weights = vals_per_dim[0][:, :, None] * vals_per_dim[1][:, None, :]
    else:
        n2, n3 = fine_shape[1], fine_shape[2]
        flat_idx = (
            idx_per_dim[0][:, :, None, None] * (n2 * n3)
            + idx_per_dim[1][:, None, :, None] * n3
            + idx_per_dim[2][:, None, None, :]
        )
        weights = (
            vals_per_dim[0][:, :, None, None]
            * vals_per_dim[1][:, None, :, None]
            * vals_per_dim[2][:, None, None, :]
        )
    return flat_idx.reshape(m, -1), weights.reshape(m, -1)


def build_stencil_cache(grid_coords, fine_shape, kernel, kernel_eval="horner",
                        fuse_budget=DEFAULT_FUSE_BUDGET, build_matrix=True,
                        store=None, points_digest=None):
    """Build the stencil cache for one point set.

    Parameters
    ----------
    grid_coords : sequence of ndarray
        Per-dimension fine-grid coordinates in ``[0, n_d)``.
    fine_shape : tuple of int
    kernel : ESKernel or compatible
        Must provide ``width`` and ``evaluate_offsets``; the Horner fast path
        additionally needs ``evaluate_offsets_horner`` (ES kernel only) and
        silently falls back to the exact form otherwise.
    kernel_eval : {"horner", "exact"}
    fuse_budget : int
        Maximum fused entry count ``M * w^d`` (see :data:`DEFAULT_FUSE_BUDGET`).
    build_matrix : bool
        Whether to assemble the CSR operator (requires scipy and a fused cache).
    store : ArtifactStore, optional
        Warm-state store (kind ``"stencil"``).  With ``points_digest`` also
        given, the cache is served from the store when present and persisted
        (single-flight) when built, keyed by the digest plus every kernel
        parameter above -- a restarted process with the same points skips the
        whole build.
    points_digest : str, optional
        Content digest of the nonuniform points (e.g.
        :meth:`repro.service.TransformRequest.points_key`).  Required for
        store participation: the grid coordinates themselves are too large to
        key on.
    """
    if kernel_eval not in ("horner", "exact"):
        raise ValueError(f"kernel_eval must be 'horner' or 'exact', got {kernel_eval!r}")
    if store is not None and points_digest is not None:
        key = stencil_cache_key(points_digest, fine_shape, kernel, kernel_eval,
                                fuse_budget, build_matrix)
        arrays = store.get_or_build(
            "stencil", key,
            lambda: stencil_cache_arrays(_build_stencil_cache(
                grid_coords, fine_shape, kernel, kernel_eval, fuse_budget,
                build_matrix, store=store,
            )),
        )
        cache = stencil_cache_from_arrays(arrays)
        if cache is not None:
            return cache
        # Deserialization impossible (e.g. a matrix-bearing entry without
        # scipy): fall through to a fresh build.
    return _build_stencil_cache(grid_coords, fine_shape, kernel, kernel_eval,
                                fuse_budget, build_matrix, store=store)


def _build_stencil_cache(grid_coords, fine_shape, kernel, kernel_eval,
                         fuse_budget, build_matrix, store=None):
    """The actual build (no store lookup); see :func:`build_stencil_cache`."""
    ndim = len(fine_shape)
    w = kernel.width
    use_horner = kernel_eval == "horner" and hasattr(kernel, "evaluate_offsets_horner")
    offsets = np.arange(w, dtype=np.int64)

    i0_list, idx_list, vals_list = [], [], []
    for d in range(ndim):
        g = np.asarray(grid_coords[d], dtype=np.float64)
        i0 = np.ceil(g - 0.5 * w).astype(np.int64)
        frac = g - i0
        if use_horner:
            vals = kernel.evaluate_offsets_horner(frac, store=store)
        else:
            vals = kernel.evaluate_offsets(frac)
        i0_list.append(i0)
        idx_list.append(np.mod(i0[:, None] + offsets[None, :], fine_shape[d]))
        vals_list.append(vals)

    m = i0_list[0].shape[0]
    flat_idx = weights = matrix = None
    if m * (w ** ndim) <= fuse_budget:
        flat_idx, weights = _tensor_stencil(idx_list, vals_list, fine_shape)
        if build_matrix and _sparse is not None:
            n_fine = int(np.prod(fine_shape))
            k = flat_idx.shape[1]
            indptr = np.arange(0, (m + 1) * k, k, dtype=np.int64)
            matrix = _sparse.csr_matrix(
                (weights.reshape(-1), flat_idx.reshape(-1), indptr),
                shape=(m, n_fine),
            )
            # The operator supersedes the fused arrays: every cached
            # spread/interp goes through the matrix, and dropping the raw
            # references frees the large int64 index array (scipy keeps its
            # own, typically int32, copy) instead of holding it dead.
            flat_idx = weights = None
    return StencilCache(
        fine_shape=tuple(int(n) for n in fine_shape),
        width=int(w),
        i0=i0_list,
        idx=idx_list,
        vals=vals_list,
        flat_idx=flat_idx,
        weights=weights,
        interp_matrix=matrix,
        kernel_eval="horner" if use_horner else "exact",
    )


# --------------------------------------------------------------------------- #
# artifact-store serialization
# --------------------------------------------------------------------------- #
def stencil_cache_key(points_digest, fine_shape, kernel, kernel_eval,
                      fuse_budget, build_matrix):
    """The artifact key one stencil cache is stored under.

    Every input that shapes the cache's contents participates: the points
    digest, the fine-grid geometry, the kernel parameters, the evaluation
    mode and the fusion knobs.  Two processes computing the same key are
    guaranteed bit-identical caches (the build is deterministic).
    """
    grid = "x".join(str(int(n)) for n in fine_shape)
    return (f"pts={points_digest}.grid={grid}.w={int(kernel.width)}"
            f".beta={float(kernel.beta):.9g}.eval={kernel_eval}"
            f".budget={int(fuse_budget)}.matrix={int(bool(build_matrix))}")


def stencil_cache_arrays(cache):
    """Flatten a :class:`StencilCache` into a ``{name: ndarray}`` payload.

    The per-dimension lists are stacked into single ``(ndim, ...)`` members:
    npz access cost is dominated by fixed per-member overhead (header parse,
    CRC, allocation), so fewer, larger members load measurably faster --
    that load is the warm path's floor.
    """
    arrays = {
        "fine_shape": np.asarray(cache.fine_shape, dtype=np.int64),
        "width": np.asarray(cache.width, dtype=np.int64),
        "kernel_eval": np.asarray(cache.kernel_eval),
        "i0": np.stack(cache.i0),
        "idx": np.stack(cache.idx),
        "vals": np.stack(cache.vals),
    }
    if cache.flat_idx is not None:
        arrays["flat_idx"] = cache.flat_idx
        arrays["weights"] = cache.weights
    if cache.interp_matrix is not None:
        arrays["csr_data"] = cache.interp_matrix.data
        arrays["csr_indices"] = cache.interp_matrix.indices
        arrays["csr_indptr"] = cache.interp_matrix.indptr
    return arrays


def stencil_cache_from_arrays(arrays):
    """Rebuild a :class:`StencilCache` from :func:`stencil_cache_arrays`.

    Returns ``None`` when the payload cannot be realized in this process
    (a CSR-bearing entry without scipy available) -- the caller then falls
    back to a fresh build.
    """
    fine_shape = tuple(int(n) for n in np.asarray(arrays["fine_shape"]))
    ndim = len(fine_shape)
    has_matrix = "csr_data" in arrays
    if has_matrix and _sparse is None:  # pragma: no cover - images ship scipy
        return None
    matrix = None
    if has_matrix:
        m = int(arrays["i0"].shape[1])
        matrix = _sparse.csr_matrix(
            (arrays["csr_data"], arrays["csr_indices"], arrays["csr_indptr"]),
            shape=(m, int(np.prod(fine_shape))),
        )
    return StencilCache(
        fine_shape=fine_shape,
        width=int(arrays["width"]),
        i0=[arrays["i0"][d] for d in range(ndim)],
        idx=[arrays["idx"][d] for d in range(ndim)],
        vals=[arrays["vals"][d] for d in range(ndim)],
        flat_idx=arrays.get("flat_idx"),
        weights=arrays.get("weights"),
        interp_matrix=matrix,
        kernel_eval=str(arrays["kernel_eval"]),
    )
