"""Direct (exact) evaluation of the nonuniform DFT sums.

These O(N*M) reference implementations of the paper's Eqs. (1) and (3) are the
ground truth every accuracy test and benchmark error column is measured
against (the paper uses FINUFFT at eps=1e-14 as its ground truth; a direct sum
in float64 is equivalent for the problem sizes we validate on).

Only use these for small problems -- the cost is a dense matrix-vector product.
"""

from __future__ import annotations

import numpy as np

from .options import validate_isign

__all__ = ["mode_indices", "nudft_type1", "nudft_type2", "nudft_type3"]


def mode_indices(n_modes):
    """Centred integer frequency grid ``I_N`` (paper Eq. (2)) for one dimension."""
    n_modes = int(n_modes)
    if n_modes < 1:
        raise ValueError(f"n_modes must be >= 1, got {n_modes}")
    return np.arange(-(n_modes // 2), (n_modes + 1) // 2, dtype=np.int64)


def _check_points(points, strengths=None):
    points = [np.asarray(p, dtype=np.float64) for p in points]
    m = points[0].shape[0]
    for p in points:
        if p.shape != (m,):
            raise ValueError("all coordinate arrays must be 1-D with equal length")
    if strengths is not None:
        strengths = np.asarray(strengths)
        if strengths.shape != (m,):
            raise ValueError("strengths must be 1-D with the same length as the points")
    return points, strengths


def nudft_type1(points, strengths, modes_shape, isign=-1):
    """Exact type-1 sum ``f_k = sum_j c_j exp(isign i k . x_j)`` (paper Eq. (1)).

    Parameters
    ----------
    points : sequence of ndarray
        Per-dimension coordinates, each shape ``(M,)``, in ``[-pi, pi)``.
    strengths : ndarray, shape (M,)
        Complex strengths ``c_j``.
    modes_shape : tuple of int
        Output mode counts ``(N1, ..., Nd)``.
    isign : int
        Exponent sign; ``-1`` (the default) is the paper's Eq. (1)
        convention ``e^{-i k.x}``.

    Returns
    -------
    ndarray, shape ``modes_shape``
        Fourier coefficients with every axis ordered by ascending ``k``
        starting at ``-N//2``.
    """
    isign = validate_isign(isign)
    points, strengths = _check_points(points, strengths)
    ndim = len(points)
    if len(modes_shape) != ndim:
        raise ValueError("modes_shape must match the number of coordinate arrays")

    # Accumulate dimension by dimension to keep memory manageable:
    # phase matrix for dim d has shape (N_d, M).
    result = strengths.astype(np.complex128)
    # Build the full phase product with successive outer products over modes.
    # out[k1,...,kd] = sum_j c_j prod_d exp(isign i k_d x_d[j])
    phases = [
        np.exp(isign * 1j * np.outer(mode_indices(modes_shape[d]), points[d]))
        for d in range(ndim)
    ]
    if ndim == 1:
        return phases[0] @ result
    if ndim == 2:
        # (N1, M) * (M,) -> weighted, then contract with (N2, M)^T
        weighted = phases[0] * result[None, :]
        return weighted @ phases[1].T
    if ndim == 3:
        out = np.empty(tuple(modes_shape), dtype=np.complex128)
        weighted = phases[0] * result[None, :]
        for i2, row in enumerate(phases[1]):
            out[:, i2, :] = (weighted * row[None, :]) @ phases[2].T
        return out
    raise ValueError("only 1D, 2D and 3D transforms are supported")


def nudft_type2(points, modes, isign=1):
    """Exact type-2 sum ``c_j = sum_k f_k exp(isign i k . x_j)`` (paper Eq. (3)).

    Parameters
    ----------
    points : sequence of ndarray
        Per-dimension target coordinates, each shape ``(M,)``.
    modes : ndarray
        Fourier coefficients, shape ``(N1, ..., Nd)``, axes ordered by
        ascending ``k`` from ``-N//2``.
    isign : int
        Exponent sign; ``+1`` (the default) is the paper's Eq. (3)
        convention ``e^{+i k.x}``.

    Returns
    -------
    ndarray, shape (M,)
    """
    isign = validate_isign(isign)
    points, _ = _check_points(points)
    modes = np.asarray(modes, dtype=np.complex128)
    ndim = len(points)
    if modes.ndim != ndim:
        raise ValueError("modes dimensionality must match the number of coordinate arrays")

    phases = [
        np.exp(isign * 1j * np.outer(points[d], mode_indices(modes.shape[d])))
        for d in range(ndim)
    ]
    if ndim == 1:
        return phases[0] @ modes
    if ndim == 2:
        # c_j = sum_{k1,k2} f_{k1,k2} e^{i k1 x_j} e^{i k2 y_j}
        tmp = phases[0] @ modes            # (M, N2)
        return np.einsum("mk,mk->m", tmp, phases[1])
    if ndim == 3:
        m = points[0].shape[0]
        out = np.zeros(m, dtype=np.complex128)
        # Contract one k3 slab at a time to bound memory.
        for i3 in range(modes.shape[2]):
            tmp = phases[0] @ modes[:, :, i3]      # (M, N2)
            out += np.einsum("mk,mk->m", tmp, phases[1]) * phases[2][:, i3]
        return out
    raise ValueError("only 1D, 2D and 3D transforms are supported")


def nudft_type3(points, strengths, targets, isign=1):
    """Exact type-3 sum ``f_k = sum_j c_j exp(isign i s_k . x_j)``.

    Parameters
    ----------
    points : sequence of ndarray
        Per-dimension source coordinates, each shape ``(M,)`` (any reals).
    strengths : ndarray, shape (M,)
        Complex strengths ``c_j``.
    targets : sequence of ndarray
        Per-dimension nonuniform target frequencies ``s_k``, each shape
        ``(N_k,)`` (any reals; not restricted to integers).
    isign : int
        Exponent sign (``+1`` by default).

    Returns
    -------
    ndarray, shape (N_k,)
    """
    isign = validate_isign(isign)
    points, strengths = _check_points(points, strengths)
    targets, _ = _check_points(targets)
    if len(targets) != len(points):
        raise ValueError("targets must have the same dimensionality as points")
    phase = np.zeros((targets[0].shape[0], points[0].shape[0]))
    for s, x in zip(targets, points):
        phase += np.outer(s, x)
    return np.exp(isign * 1j * phase) @ strengths.astype(np.complex128)
