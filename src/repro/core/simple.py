"""One-shot convenience wrappers around :class:`repro.core.plan.Plan`.

These mirror FINUFFT/cuFINUFFT's "simple" interfaces: a single call that
plans, sets points, executes and cleans up.  Use a :class:`Plan` directly when
repeating transforms with the same nonuniform points (the whole reason the
plan interface exists -- see the paper's discussion of "exec" timings).
"""

from __future__ import annotations

import numpy as np

from .plan import Plan

__all__ = [
    "nufft1d1",
    "nufft1d2",
    "nufft1d3",
    "nufft2d1",
    "nufft2d2",
    "nufft2d3",
    "nufft3d1",
    "nufft3d2",
    "nufft3d3",
]


def _run_type1(coords, strengths, n_modes, eps, kwargs):
    strengths = np.asarray(strengths)
    kwargs = dict(kwargs)
    if strengths.ndim == 2:
        # Stacked (n_trans, M) strength block: one batched plan execution.
        kwargs.setdefault("n_trans", strengths.shape[0])
    with Plan(1, n_modes, eps=eps, **kwargs) as plan:
        plan.set_pts(*coords)
        return plan.execute(strengths)


def _run_type2(coords, modes, eps, kwargs):
    modes = np.asarray(modes)
    ndim = len(coords)
    n_modes = modes.shape[modes.ndim - ndim:] if modes.ndim == ndim + 1 else modes.shape
    with Plan(2, n_modes, eps=eps, **kwargs) as plan:
        plan.set_pts(*coords)
        return plan.execute(modes)


def _run_type3(coords, strengths, targets, eps, kwargs):
    strengths = np.asarray(strengths)
    kwargs = dict(kwargs)
    if strengths.ndim == 2:
        kwargs.setdefault("n_trans", strengths.shape[0])
    ndim = len(coords)
    target_kw = dict(zip(("s", "t", "u"), targets))
    with Plan(3, ndim, eps=eps, **kwargs) as plan:
        plan.set_pts(*coords, **target_kw)
        return plan.execute(strengths)


def nufft1d1(x, c, n_modes, eps=1e-6, **kwargs):
    """1D type-1 NUFFT: ``f_k = sum_j c_j exp(-i k x_j)``.

    ``n_modes`` may be an integer ``N1`` or a 1-tuple; ``c`` may be ``(M,)``
    or a stacked ``(n_trans, M)`` block.
    """
    if np.isscalar(n_modes):
        n_modes = (int(n_modes),)
    if len(n_modes) != 1:
        raise ValueError(f"n_modes must be an int or a 1-tuple, got {n_modes!r}")
    return _run_type1((x,), c, tuple(n_modes), eps, kwargs)


def nufft1d2(x, f, eps=1e-6, **kwargs):
    """1D type-2 NUFFT: evaluate the series ``f`` at the targets ``x``.

    ``f`` may be a ``(N1,)`` mode array, or -- when ``n_trans`` is passed
    explicitly -- a stacked ``(n_trans, N1)`` block.
    """
    f = np.asarray(f)
    expected = 2 if kwargs.get("n_trans", 1) > 1 else 1
    if f.ndim != expected:
        raise ValueError(f"f must be a {expected}-D mode array, got shape {f.shape}")
    return _run_type2((x,), f, eps, kwargs)


def nufft1d3(x, c, s, eps=1e-6, **kwargs):
    """1D type-3 NUFFT: ``f_k = sum_j c_j exp(+i s_k x_j)``.

    ``x`` and ``s`` are arbitrary real source points / target frequencies;
    ``c`` may be ``(M,)`` or a stacked ``(n_trans, M)`` block.
    """
    return _run_type3((x,), c, (s,), eps, kwargs)


def nufft2d1(x, y, c, n_modes, eps=1e-6, **kwargs):
    """2D type-1 NUFFT (paper Eq. (1)).

    Parameters
    ----------
    x, y : array_like, shape (M,)
        Nonuniform point coordinates in ``[-pi, pi)``.
    c : array_like, shape (M,) or (n_trans, M)
        Complex strengths; a stacked block runs as one batched transform
        sharing the plan and its stencil cache.
    n_modes : tuple (N1, N2)
        Output mode counts.
    eps : float
        Requested relative tolerance.
    **kwargs
        Forwarded to :class:`Plan` (``method=``, ``precision=``, ...).

    Returns
    -------
    ndarray, shape (N1, N2)
        Fourier coefficients, axes ordered by ascending frequency from
        ``-N//2``.
    """
    if len(n_modes) != 2:
        raise ValueError(f"n_modes must have length 2, got {n_modes!r}")
    return _run_type1((x, y), c, tuple(n_modes), eps, kwargs)


def nufft2d2(x, y, f, eps=1e-6, **kwargs):
    """2D type-2 NUFFT (paper Eq. (3)): evaluate the series ``f`` at ``(x, y)``.

    ``f`` may be a ``(N1, N2)`` mode array, or -- when ``n_trans`` is passed
    explicitly -- a stacked ``(n_trans, N1, N2)`` block evaluated in one
    batched transform.
    """
    f = np.asarray(f)
    expected = 3 if kwargs.get("n_trans", 1) > 1 else 2
    if f.ndim != expected:
        raise ValueError(f"f must be a {expected}-D mode array, got shape {f.shape}")
    return _run_type2((x, y), f, eps, kwargs)


def nufft2d3(x, y, c, s, t, eps=1e-6, **kwargs):
    """2D type-3 NUFFT: ``f_k = sum_j c_j exp(+i (s_k x_j + t_k y_j))``."""
    return _run_type3((x, y), c, (s, t), eps, kwargs)


def nufft3d1(x, y, z, c, n_modes, eps=1e-6, **kwargs):
    """3D type-1 NUFFT."""
    if len(n_modes) != 3:
        raise ValueError(f"n_modes must have length 3, got {n_modes!r}")
    return _run_type1((x, y, z), c, tuple(n_modes), eps, kwargs)


def nufft3d2(x, y, z, f, eps=1e-6, **kwargs):
    """3D type-2 NUFFT (pass ``n_trans`` for stacked ``(n_trans, N1, N2, N3)``
    batches)."""
    f = np.asarray(f)
    expected = 4 if kwargs.get("n_trans", 1) > 1 else 3
    if f.ndim != expected:
        raise ValueError(f"f must be a {expected}-D mode array, got shape {f.shape}")
    return _run_type2((x, y, z), f, eps, kwargs)


def nufft3d3(x, y, z, c, s, t, u, eps=1e-6, **kwargs):
    """3D type-3 NUFFT: ``f_k = sum_j c_j exp(+i s_vec_k . x_vec_j)``."""
    return _run_type3((x, y, z), c, (s, t, u), eps, kwargs)
