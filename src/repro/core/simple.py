"""One-shot convenience wrappers around :class:`repro.core.plan.Plan`.

These mirror FINUFFT/cuFINUFFT's "simple" interfaces: a single call that
plans, sets points, executes and cleans up.  Use a :class:`Plan` directly when
repeating transforms with the same nonuniform points (the whole reason the
plan interface exists -- see the paper's discussion of "exec" timings), and
:func:`repro.tuning.tune_opts` to autotune the plan parameters the wrappers
would otherwise take from the paper's defaults.

Every wrapper forwards unknown keyword arguments to :class:`Plan`, so
``method=``, ``precision=``, ``backend=``, ``isign=``, ``tune=`` and any
other :class:`~repro.core.options.Opts` field work here too.

Precision inference (as in cuFINUFFT): when neither ``precision=`` nor
``opts=`` is given, the wrappers infer the working precision from the input
data dtype -- ``complex64``/``float32`` strengths or coefficients run in
single precision and return ``complex64``, ``complex128``/``float64`` run in
double and return ``complex128``.  Other dtypes (e.g. integers) keep the
:class:`~repro.core.options.Opts` default.  An explicit ``precision=`` always
wins.
"""

from __future__ import annotations

import numpy as np

from .plan import Plan

_SINGLE_DTYPES = (np.dtype(np.complex64), np.dtype(np.float32))
_DOUBLE_DTYPES = (np.dtype(np.complex128), np.dtype(np.float64))


def _infer_precision(kwargs, data):
    """Fill ``kwargs['precision']`` from the data dtype unless explicit.

    The explicit ``precision=`` kwarg (or a full ``opts=``) wins; otherwise
    ``complex64``/``float32`` inputs select single precision and
    ``complex128``/``float64`` double, so the output dtype matches the input
    instead of silently up- or down-casting.
    """
    if "precision" in kwargs or "opts" in kwargs:
        return kwargs
    dtype = np.asarray(data).dtype
    if dtype in _SINGLE_DTYPES:
        kwargs["precision"] = "single"
    elif dtype in _DOUBLE_DTYPES:
        kwargs["precision"] = "double"
    return kwargs

__all__ = [
    "nufft1d1",
    "nufft1d2",
    "nufft1d3",
    "nufft2d1",
    "nufft2d2",
    "nufft2d3",
    "nufft3d1",
    "nufft3d2",
    "nufft3d3",
]


def _run_type1(coords, strengths, n_modes, eps, kwargs, out=None):
    strengths = np.asarray(strengths)
    kwargs = _infer_precision(dict(kwargs), strengths)
    if strengths.ndim == 2:
        # Stacked (n_trans, M) strength block: one batched plan execution.
        kwargs.setdefault("n_trans", strengths.shape[0])
    with Plan(1, n_modes, eps=eps, **kwargs) as plan:
        plan.set_pts(*coords)
        return plan.execute(strengths, out=out)


def _run_type2(coords, modes, eps, kwargs, out=None):
    modes = np.asarray(modes)
    kwargs = _infer_precision(dict(kwargs), modes)
    ndim = len(coords)
    n_modes = modes.shape[modes.ndim - ndim:] if modes.ndim == ndim + 1 else modes.shape
    with Plan(2, n_modes, eps=eps, **kwargs) as plan:
        plan.set_pts(*coords)
        return plan.execute(modes, out=out)


def _run_type3(coords, strengths, targets, eps, kwargs, out=None):
    strengths = np.asarray(strengths)
    kwargs = _infer_precision(dict(kwargs), strengths)
    if strengths.ndim == 2:
        kwargs.setdefault("n_trans", strengths.shape[0])
    ndim = len(coords)
    target_kw = dict(zip(("s", "t", "u"), targets))
    with Plan(3, ndim, eps=eps, **kwargs) as plan:
        plan.set_pts(*coords, **target_kw)
        return plan.execute(strengths, out=out)


def nufft1d1(x, c, n_modes, eps=1e-6, out=None, **kwargs):
    """1D type-1 NUFFT: ``f_k = sum_j c_j exp(-i k x_j)``.

    Parameters
    ----------
    x : array_like, shape (M,)
        Nonuniform points in ``[-pi, pi)`` (any reals are folded in).
    c : array_like, shape (M,) or (n_trans, M)
        Complex strengths; a stacked block runs as one batched transform.
    n_modes : int or 1-tuple
        Output mode count ``N1``.
    eps : float
        Requested relative tolerance.
    out : ndarray, optional
        Preallocated output array of exactly the result shape and the
        transform's complex dtype; the terminal stage writes into it (no
        intermediate output buffer) and it is returned.  A mismatched shape
        or dtype raises ``ValueError``.
    **kwargs
        Forwarded to :class:`~repro.core.plan.Plan` (``method=``,
        ``precision=``, ``backend=``, ``isign=``, ``tune=``, ...).
        ``isign=-1`` (the type-1 default) uses ``e^{-i k x}``; pass
        ``isign=+1`` for the conjugate convention.  Without an explicit
        ``precision=``, the working precision is inferred from ``c``'s dtype
        (``complex64``/``float32`` -> single, ``complex128``/``float64`` ->
        double) and the output dtype matches.

    Returns
    -------
    ndarray, shape (N1,) or (n_trans, N1)
        Fourier coefficients ordered by ascending frequency from ``-N1//2``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import nufft1d1
    >>> rng = np.random.default_rng(0)
    >>> x = rng.uniform(-np.pi, np.pi, 500)
    >>> c = rng.standard_normal(500) + 1j * rng.standard_normal(500)
    >>> nufft1d1(x, c, 64).shape
    (64,)
    """
    if np.isscalar(n_modes):
        n_modes = (int(n_modes),)
    if len(n_modes) != 1:
        raise ValueError(f"n_modes must be an int or a 1-tuple, got {n_modes!r}")
    return _run_type1((x,), c, tuple(n_modes), eps, kwargs, out=out)


def nufft1d2(x, f, eps=1e-6, out=None, **kwargs):
    """1D type-2 NUFFT: evaluate the Fourier series ``f`` at the targets ``x``.

    Parameters
    ----------
    x : array_like, shape (M,)
        Evaluation points in ``[-pi, pi)``.
    f : array_like, shape (N1,) or (n_trans, N1)
        Mode coefficients; pass ``n_trans`` explicitly for a stacked block.
    eps : float
        Requested relative tolerance.
    out : ndarray, optional
        Preallocated output array of exactly the result shape and the
        transform's complex dtype; the terminal stage writes into it (no
        intermediate output buffer) and it is returned.  A mismatched shape
        or dtype raises ``ValueError``.
    **kwargs
        Forwarded to :class:`~repro.core.plan.Plan` (``method=``,
        ``precision=``, ``backend=``, ``isign=``, ``tune=``, ...).  The
        exponent sign defaults to ``+1`` for type-2/type-3 wrappers and
        ``-1`` for type-1; pass ``isign=`` to flip it.  Without an explicit
        ``precision=``, precision is inferred from the input data dtype
        (``complex64``/``float32`` -> single, ``complex128``/``float64`` ->
        double) and the output dtype matches.

    Returns
    -------
    ndarray, shape (M,) or (n_trans, M)
        ``sum_k f_k exp(+i k x_j)`` per target.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import nufft1d2
    >>> rng = np.random.default_rng(0)
    >>> x = rng.uniform(-np.pi, np.pi, 300)
    >>> f = rng.standard_normal(32) + 1j * rng.standard_normal(32)
    >>> nufft1d2(x, f).shape
    (300,)
    """
    f = np.asarray(f)
    expected = 2 if kwargs.get("n_trans", 1) > 1 else 1
    if f.ndim != expected:
        raise ValueError(f"f must be a {expected}-D mode array, got shape {f.shape}")
    return _run_type2((x,), f, eps, kwargs, out=out)


def nufft1d3(x, c, s, eps=1e-6, out=None, **kwargs):
    """1D type-3 NUFFT: ``f_k = sum_j c_j exp(+i s_k x_j)``.

    Parameters
    ----------
    x : array_like, shape (M,)
        Source points (arbitrary reals).
    c : array_like, shape (M,) or (n_trans, M)
        Complex strengths.
    s : array_like, shape (N_k,)
        Target frequencies (arbitrary reals).
    eps : float
        Requested relative tolerance.
    out : ndarray, optional
        Preallocated output array of exactly the result shape and the
        transform's complex dtype; the terminal stage writes into it (no
        intermediate output buffer) and it is returned.  A mismatched shape
        or dtype raises ``ValueError``.
    **kwargs
        Forwarded to :class:`~repro.core.plan.Plan` (``method=``,
        ``precision=``, ``backend=``, ``isign=``, ``tune=``, ...).  The
        exponent sign defaults to ``+1`` for type-2/type-3 wrappers and
        ``-1`` for type-1; pass ``isign=`` to flip it.  Without an explicit
        ``precision=``, precision is inferred from the input data dtype
        (``complex64``/``float32`` -> single, ``complex128``/``float64`` ->
        double) and the output dtype matches.

    Returns
    -------
    ndarray, shape (N_k,) or (n_trans, N_k)

    Examples
    --------
    >>> import numpy as np
    >>> from repro import nufft1d3
    >>> rng = np.random.default_rng(0)
    >>> x = rng.uniform(-1.0, 1.0, 400)
    >>> c = rng.standard_normal(400) + 1j * rng.standard_normal(400)
    >>> s = rng.uniform(-40.0, 40.0, 250)
    >>> nufft1d3(x, c, s).shape
    (250,)
    """
    return _run_type3((x,), c, (s,), eps, kwargs, out=out)


def nufft2d1(x, y, c, n_modes, eps=1e-6, out=None, **kwargs):
    """2D type-1 NUFFT (paper Eq. (1)).

    Parameters
    ----------
    x, y : array_like, shape (M,)
        Nonuniform point coordinates in ``[-pi, pi)``.
    c : array_like, shape (M,) or (n_trans, M)
        Complex strengths; a stacked block runs as one batched transform
        sharing the plan and its stencil cache.
    n_modes : tuple (N1, N2)
        Output mode counts.
    eps : float
        Requested relative tolerance.
    out : ndarray, optional
        Preallocated output array of exactly the result shape and the
        transform's complex dtype; the terminal stage writes into it (no
        intermediate output buffer) and it is returned.  A mismatched shape
        or dtype raises ``ValueError``.
    **kwargs
        Forwarded to :class:`~repro.core.plan.Plan` (``method=``,
        ``precision=``, ``isign=``, ``tune=``, ...).  ``isign=-1`` (the
        type-1 default) uses ``e^{-i k.x}``; without an explicit
        ``precision=``, precision is inferred from ``c``'s dtype and the
        output dtype matches.

    Returns
    -------
    ndarray, shape (N1, N2)
        Fourier coefficients, axes ordered by ascending frequency from
        ``-N//2``.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import nufft2d1
    >>> rng = np.random.default_rng(0)
    >>> x, y = rng.uniform(-np.pi, np.pi, (2, 800))
    >>> c = rng.standard_normal(800) + 1j * rng.standard_normal(800)
    >>> nufft2d1(x, y, c, (32, 32)).shape
    (32, 32)
    """
    if len(n_modes) != 2:
        raise ValueError(f"n_modes must have length 2, got {n_modes!r}")
    return _run_type1((x, y), c, tuple(n_modes), eps, kwargs, out=out)


def nufft2d2(x, y, f, eps=1e-6, out=None, **kwargs):
    """2D type-2 NUFFT (paper Eq. (3)): evaluate the series ``f`` at ``(x, y)``.

    Parameters
    ----------
    x, y : array_like, shape (M,)
        Evaluation points in ``[-pi, pi)``.
    f : array_like, shape (N1, N2) or (n_trans, N1, N2)
        Mode coefficients; pass ``n_trans`` explicitly for a stacked block,
        evaluated in one batched transform.
    eps : float
        Requested relative tolerance.
    out : ndarray, optional
        Preallocated output array of exactly the result shape and the
        transform's complex dtype; the terminal stage writes into it (no
        intermediate output buffer) and it is returned.  A mismatched shape
        or dtype raises ``ValueError``.
    **kwargs
        Forwarded to :class:`~repro.core.plan.Plan` (``method=``,
        ``precision=``, ``backend=``, ``isign=``, ``tune=``, ...).  The
        exponent sign defaults to ``+1`` for type-2/type-3 wrappers and
        ``-1`` for type-1; pass ``isign=`` to flip it.  Without an explicit
        ``precision=``, precision is inferred from the input data dtype
        (``complex64``/``float32`` -> single, ``complex128``/``float64`` ->
        double) and the output dtype matches.

    Returns
    -------
    ndarray, shape (M,) or (n_trans, M)

    Examples
    --------
    >>> import numpy as np
    >>> from repro import nufft2d2
    >>> rng = np.random.default_rng(0)
    >>> x, y = rng.uniform(-np.pi, np.pi, (2, 600))
    >>> f = rng.standard_normal((24, 24)) + 1j * rng.standard_normal((24, 24))
    >>> nufft2d2(x, y, f).shape
    (600,)
    """
    f = np.asarray(f)
    expected = 3 if kwargs.get("n_trans", 1) > 1 else 2
    if f.ndim != expected:
        raise ValueError(f"f must be a {expected}-D mode array, got shape {f.shape}")
    return _run_type2((x, y), f, eps, kwargs, out=out)


def nufft2d3(x, y, c, s, t, eps=1e-6, out=None, **kwargs):
    """2D type-3 NUFFT: ``f_k = sum_j c_j exp(+i (s_k x_j + t_k y_j))``.

    Parameters
    ----------
    x, y : array_like, shape (M,)
        Source points (arbitrary reals).
    c : array_like, shape (M,) or (n_trans, M)
        Complex strengths.
    s, t : array_like, shape (N_k,)
        Target frequencies (arbitrary reals).
    eps : float
        Requested relative tolerance.
    out : ndarray, optional
        Preallocated output array of exactly the result shape and the
        transform's complex dtype; the terminal stage writes into it (no
        intermediate output buffer) and it is returned.  A mismatched shape
        or dtype raises ``ValueError``.
    **kwargs
        Forwarded to :class:`~repro.core.plan.Plan` (``method=``,
        ``precision=``, ``backend=``, ``isign=``, ``tune=``, ...).  The
        exponent sign defaults to ``+1`` for type-2/type-3 wrappers and
        ``-1`` for type-1; pass ``isign=`` to flip it.  Without an explicit
        ``precision=``, precision is inferred from the input data dtype
        (``complex64``/``float32`` -> single, ``complex128``/``float64`` ->
        double) and the output dtype matches.

    Returns
    -------
    ndarray, shape (N_k,) or (n_trans, N_k)

    Examples
    --------
    >>> import numpy as np
    >>> from repro import nufft2d3
    >>> rng = np.random.default_rng(0)
    >>> x, y = rng.uniform(-1.0, 1.0, (2, 400))
    >>> c = rng.standard_normal(400) + 1j * rng.standard_normal(400)
    >>> s, t = rng.uniform(-20.0, 20.0, (2, 150))
    >>> nufft2d3(x, y, c, s, t).shape
    (150,)
    """
    return _run_type3((x, y), c, (s, t), eps, kwargs, out=out)


def nufft3d1(x, y, z, c, n_modes, eps=1e-6, out=None, **kwargs):
    """3D type-1 NUFFT.

    Parameters
    ----------
    x, y, z : array_like, shape (M,)
        Nonuniform point coordinates in ``[-pi, pi)``.
    c : array_like, shape (M,) or (n_trans, M)
        Complex strengths.
    n_modes : tuple (N1, N2, N3)
        Output mode counts.
    eps : float
        Requested relative tolerance.
    out : ndarray, optional
        Preallocated output array of exactly the result shape and the
        transform's complex dtype; the terminal stage writes into it (no
        intermediate output buffer) and it is returned.  A mismatched shape
        or dtype raises ``ValueError``.
    **kwargs
        Forwarded to :class:`~repro.core.plan.Plan` (``method=``,
        ``precision=``, ``backend=``, ``isign=``, ``tune=``, ...).  The
        exponent sign defaults to ``+1`` for type-2/type-3 wrappers and
        ``-1`` for type-1; pass ``isign=`` to flip it.  Without an explicit
        ``precision=``, precision is inferred from the input data dtype
        (``complex64``/``float32`` -> single, ``complex128``/``float64`` ->
        double) and the output dtype matches.

    Returns
    -------
    ndarray, shape (N1, N2, N3)

    Examples
    --------
    >>> import numpy as np
    >>> from repro import nufft3d1
    >>> rng = np.random.default_rng(0)
    >>> x, y, z = rng.uniform(-np.pi, np.pi, (3, 500))
    >>> c = rng.standard_normal(500) + 1j * rng.standard_normal(500)
    >>> nufft3d1(x, y, z, c, (12, 12, 12)).shape
    (12, 12, 12)
    """
    if len(n_modes) != 3:
        raise ValueError(f"n_modes must have length 3, got {n_modes!r}")
    return _run_type1((x, y, z), c, tuple(n_modes), eps, kwargs, out=out)


def nufft3d2(x, y, z, f, eps=1e-6, out=None, **kwargs):
    """3D type-2 NUFFT: evaluate the series ``f`` at ``(x, y, z)``.

    Parameters
    ----------
    x, y, z : array_like, shape (M,)
        Evaluation points in ``[-pi, pi)``.
    f : array_like, shape (N1, N2, N3) or (n_trans, N1, N2, N3)
        Mode coefficients (pass ``n_trans`` for stacked batches).
    eps : float
        Requested relative tolerance.
    out : ndarray, optional
        Preallocated output array of exactly the result shape and the
        transform's complex dtype; the terminal stage writes into it (no
        intermediate output buffer) and it is returned.  A mismatched shape
        or dtype raises ``ValueError``.
    **kwargs
        Forwarded to :class:`~repro.core.plan.Plan` (``method=``,
        ``precision=``, ``backend=``, ``isign=``, ``tune=``, ...).  The
        exponent sign defaults to ``+1`` for type-2/type-3 wrappers and
        ``-1`` for type-1; pass ``isign=`` to flip it.  Without an explicit
        ``precision=``, precision is inferred from the input data dtype
        (``complex64``/``float32`` -> single, ``complex128``/``float64`` ->
        double) and the output dtype matches.

    Returns
    -------
    ndarray, shape (M,) or (n_trans, M)

    Examples
    --------
    >>> import numpy as np
    >>> from repro import nufft3d2
    >>> rng = np.random.default_rng(0)
    >>> x, y, z = rng.uniform(-np.pi, np.pi, (3, 400))
    >>> f = (rng.standard_normal((10, 10, 10))
    ...      + 1j * rng.standard_normal((10, 10, 10)))
    >>> nufft3d2(x, y, z, f).shape
    (400,)
    """
    f = np.asarray(f)
    expected = 4 if kwargs.get("n_trans", 1) > 1 else 3
    if f.ndim != expected:
        raise ValueError(f"f must be a {expected}-D mode array, got shape {f.shape}")
    return _run_type2((x, y, z), f, eps, kwargs, out=out)


def nufft3d3(x, y, z, c, s, t, u, eps=1e-6, out=None, **kwargs):
    """3D type-3 NUFFT: ``f_k = sum_j c_j exp(+i s_vec_k . x_vec_j)``.

    Parameters
    ----------
    x, y, z : array_like, shape (M,)
        Source points (arbitrary reals).
    c : array_like, shape (M,) or (n_trans, M)
        Complex strengths.
    s, t, u : array_like, shape (N_k,)
        Target frequencies (arbitrary reals).
    eps : float
        Requested relative tolerance.
    out : ndarray, optional
        Preallocated output array of exactly the result shape and the
        transform's complex dtype; the terminal stage writes into it (no
        intermediate output buffer) and it is returned.  A mismatched shape
        or dtype raises ``ValueError``.
    **kwargs
        Forwarded to :class:`~repro.core.plan.Plan` (``method=``,
        ``precision=``, ``backend=``, ``isign=``, ``tune=``, ...).  The
        exponent sign defaults to ``+1`` for type-2/type-3 wrappers and
        ``-1`` for type-1; pass ``isign=`` to flip it.  Without an explicit
        ``precision=``, precision is inferred from the input data dtype
        (``complex64``/``float32`` -> single, ``complex128``/``float64`` ->
        double) and the output dtype matches.

    Returns
    -------
    ndarray, shape (N_k,) or (n_trans, N_k)

    Examples
    --------
    >>> import numpy as np
    >>> from repro import nufft3d3
    >>> rng = np.random.default_rng(0)
    >>> x, y, z = rng.uniform(-1.0, 1.0, (3, 300))
    >>> c = rng.standard_normal(300) + 1j * rng.standard_normal(300)
    >>> s, t, u = rng.uniform(-10.0, 10.0, (3, 120))
    >>> nufft3d3(x, y, z, c, s, t, u).shape
    (120,)
    """
    return _run_type3((x, y, z), c, (s, t, u), eps, kwargs, out=out)
