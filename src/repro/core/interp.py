"""Interpolation (type-2 step 3): GM and GM-sort methods.

Interpolation evaluates, at every nonuniform target point, the kernel-weighted
sum of the ``w^d`` fine-grid values around it (paper Sec. II-B step 3).  On
the GPU the only algorithmic lever is the *order* in which threads visit the
points: unsorted (GM) threads in a warp read scattered grid regions, while
bin-sorted (GM-sort) threads read localized, cache-friendly regions.  There
are no write conflicts (each thread owns its output ``c_j``), which is why the
paper applies no SM-style scheme to interpolation.
"""

from __future__ import annotations

import numpy as np

from ..gpu.profiler import KernelProfile
from ..gpu.threadblock import padded_bin_shape
from ..gpu.transactions import (
    l2_miss_fraction_localized,
    l2_miss_fraction_random,
    localized_sector_ops,
    scattered_sector_ops,
)
from .options import SpreadMethod
from .spread import compute_kernel_stencil, _chunk_size, _spread_flops, _point_read_bytes

__all__ = ["interpolate", "interp_gm", "interp_gm_sort", "interp_kernel_profiles"]


def _interp_points(grid, grid_coords, kernel, point_order, out):
    """Interpolate the points listed in ``point_order`` (chunked)."""
    ndim = len(grid_coords)
    fine_shape = grid.shape
    flat_grid = grid.reshape(-1)
    w = kernel.width
    chunk = _chunk_size(ndim)
    offsets = np.arange(w, dtype=np.int64)

    for start in range(0, point_order.shape[0], chunk):
        sel = point_order[start:start + chunk]
        idx_per_dim = []
        vals_per_dim = []
        for d in range(ndim):
            i0, vals = compute_kernel_stencil(grid_coords[d][sel], fine_shape[d], kernel)
            idx = np.mod(i0[:, None] + offsets[None, :], fine_shape[d])
            idx_per_dim.append(idx)
            vals_per_dim.append(vals)

        if ndim == 2:
            n2 = fine_shape[1]
            flat_idx = idx_per_dim[0][:, :, None] * n2 + idx_per_dim[1][:, None, :]
            weights = vals_per_dim[0][:, :, None] * vals_per_dim[1][:, None, :]
            vals_grid = flat_grid[flat_idx]
            out[sel] = np.sum(vals_grid * weights, axis=(1, 2))
        else:
            n2, n3 = fine_shape[1], fine_shape[2]
            flat_idx = (
                idx_per_dim[0][:, :, None, None] * (n2 * n3)
                + idx_per_dim[1][:, None, :, None] * n3
                + idx_per_dim[2][:, None, None, :]
            )
            weights = (
                vals_per_dim[0][:, :, None, None]
                * vals_per_dim[1][:, None, :, None]
                * vals_per_dim[2][:, None, None, :]
            )
            vals_grid = flat_grid[flat_idx]
            out[sel] = np.sum(vals_grid * weights, axis=(1, 2, 3))
    return out


def interp_gm(grid, grid_coords, kernel, dtype=np.complex64):
    """GM interpolation: targets visited in their user-supplied order."""
    m = grid_coords[0].shape[0]
    out = np.zeros(m, dtype=np.complex128)
    order = np.arange(m, dtype=np.int64)
    _interp_points(np.asarray(grid, dtype=np.complex128), grid_coords, kernel, order, out)
    return out.astype(dtype, copy=False)


def interp_gm_sort(grid, grid_coords, kernel, sort, dtype=np.complex64):
    """GM-sort interpolation: targets visited in bin-sorted order.

    The permuted visiting order only changes memory locality; the value
    written to each ``c_j`` is identical to GM up to floating point.
    """
    m = grid_coords[0].shape[0]
    out = np.zeros(m, dtype=np.complex128)
    _interp_points(
        np.asarray(grid, dtype=np.complex128), grid_coords, kernel, sort.permutation, out
    )
    return out.astype(dtype, copy=False)


def interpolate(grid, grid_coords, kernel, method, sort=None, dtype=np.complex64):
    """Dispatch to the requested interpolation method."""
    method = SpreadMethod.parse(method)
    if method is SpreadMethod.GM:
        return interp_gm(grid, grid_coords, kernel, dtype)
    if method in (SpreadMethod.GM_SORT, SpreadMethod.SM):
        # The paper notes an SM-style scheme brings little benefit for
        # interpolation; SM requests fall back to GM-sort (same as the code).
        if sort is None:
            raise ValueError("GM-sort interpolation requires a BinSort")
        return interp_gm_sort(grid, grid_coords, kernel, sort, dtype)
    raise ValueError(f"cannot interpolate with method {method!r}")


def interp_kernel_profiles(method, sort, kernel, precision, threads_per_block=128,
                           spec=None):
    """Exec-phase kernel profiles for one interpolation pass."""
    method = SpreadMethod.parse(method)
    if method is SpreadMethod.SM:
        method = SpreadMethod.GM_SORT
    ndim = len(sort.fine_shape)
    w = kernel.width
    m = sort.n_points
    real_sz = precision.real_itemsize
    cplx_sz = precision.complex_itemsize
    grid_bytes = float(np.prod(sort.fine_shape)) * cplx_sz
    reads = float(m) * (w ** ndim)

    if spec is not None:
        l2 = spec.l2_cache_bytes
    else:
        from ..gpu.device import V100_SPEC

        l2 = V100_SPEC.l2_cache_bytes

    if method is SpreadMethod.GM:
        profile = KernelProfile(
            name=f"interp_{ndim}d_gm",
            grid_blocks=max(1.0, m / threads_per_block),
            block_threads=threads_per_block,
            flops=_spread_flops(m, w, ndim),
            stream_bytes=_point_read_bytes(m, ndim, real_sz, cplx_sz),
            gather_sector_ops=scattered_sector_ops(reads, min(cplx_sz, 16)),
            gather_miss_fraction=l2_miss_fraction_random(grid_bytes, l2),
        )
        return [profile]

    rows = float(m) * (w ** (ndim - 1))
    sector_ops = localized_sector_ops(rows, w, cplx_sz, reuse_factor=1.5)
    active_bins = min(sort.n_nonempty_bins, 2 * 80)
    padded_cells = float(np.prod(padded_bin_shape(sort.bin_shape, w)))
    footprint = active_bins * padded_cells * cplx_sz
    profile = KernelProfile(
        name=f"interp_{ndim}d_gmsort",
        grid_blocks=max(1.0, m / threads_per_block),
        block_threads=threads_per_block,
        flops=_spread_flops(m, w, ndim),
        stream_bytes=_point_read_bytes(m, ndim, real_sz, cplx_sz, with_index=True),
        gather_sector_ops=sector_ops + 2.0 * m,
        gather_miss_fraction=l2_miss_fraction_localized(footprint, l2),
    )
    return [profile]
