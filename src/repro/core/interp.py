"""Interpolation (type-2 step 3): GM and GM-sort methods.

Interpolation evaluates, at every nonuniform target point, the kernel-weighted
sum of the ``w^d`` fine-grid values around it (paper Sec. II-B step 3).  On
the GPU the only algorithmic lever is the *order* in which threads visit the
points: unsorted (GM) threads in a warp read scattered grid regions, while
bin-sorted (GM-sort) threads read localized, cache-friendly regions.  There
are no write conflicts (each thread owns its output ``c_j``), which is why the
paper applies no SM-style scheme to interpolation.
"""

from __future__ import annotations

import numpy as np

from ..gpu.profiler import KernelProfile
from ..gpu.threadblock import padded_bin_shape
from ..gpu.transactions import (
    l2_miss_fraction_localized,
    l2_miss_fraction_random,
    localized_sector_ops,
    scattered_sector_ops,
)
from .options import SpreadMethod
from .spread import (
    _chunk_stencil,
    _point_chunk,
    _point_read_bytes,
    _spread_flops,
)

__all__ = [
    "interpolate",
    "interp_cached",
    "interp_gm",
    "interp_gm_sort",
    "interp_kernel_profiles",
]


def _as_grid_batch(grid, ndim):
    """View the fine grid as a ``(n_trans, *fine_shape)`` block; flag batched.

    Complex grids keep their dtype (no complex128 round-trip, no copy for
    strided views); real-valued inputs are promoted to complex128.
    """
    grid = np.asarray(grid)
    if not np.iscomplexobj(grid):
        grid = grid.astype(np.complex128)
    batched = grid.ndim == ndim + 1
    return (grid if batched else grid[None]), batched


def _interp_points(grids, grid_coords, kernel, point_order, out, cache=None):
    """Interpolate the points listed in ``point_order`` (chunked, batched).

    ``grids`` has shape ``(n_trans, *fine_shape)`` and ``out`` shape
    ``(n_trans, M)``; each chunk gathers the fine-grid values of all
    transforms at once and contracts them against the shared kernel weights.
    """
    ndim = len(grid_coords)
    fine_shape = grids.shape[1:]
    n_trans = grids.shape[0]
    flat = grids.reshape(n_trans, -1)
    chunk = _point_chunk(n_trans, kernel.width ** ndim)

    for start in range(0, point_order.shape[0], chunk):
        sel = point_order[start:start + chunk]
        flat_idx, wprod = _chunk_stencil(grid_coords, fine_shape, kernel, sel, cache)
        gathered = flat[:, flat_idx]  # (n_trans, m, w^d)
        out[:, sel] = np.einsum("tmk,mk->tm", gathered, wprod)
    return out


def interp_cached(grid, grid_coords, cache, dtype=np.complex64, out=None):
    """Interpolate via the cached sparse operator (one pass over all transforms).

    ``interp_matrix @ grid`` performs the kernel-weighted gather for every
    transform at once; real and imaginary parts are contracted separately so
    the real-valued operator is never upcast (and copied) to complex.
    ``out``, when given, must be a ``(n_trans, M)`` array; the result is
    written into it and it is returned.
    """
    if cache is None or cache.interp_matrix is None:
        raise ValueError("interp_cached needs a stencil cache with a sparse operator")
    ndim = len(grid_coords)
    grids, batched = _as_grid_batch(grid, ndim)
    flat = grids.reshape(grids.shape[0], -1).T  # (n_fine, n_trans)
    matrix = cache.interp_matrix
    values = ((matrix @ np.ascontiguousarray(flat.real))
              + 1j * (matrix @ np.ascontiguousarray(flat.imag))).T
    if out is not None:
        out[...] = values
        return out
    values = values.astype(dtype, copy=False)
    return values if batched else values[0]


def _interp_ordered(grid, grid_coords, kernel, point_order, cache, dtype, out=None):
    ndim = len(grid_coords)
    grids, batched = _as_grid_batch(grid, ndim)
    m = grid_coords[0].shape[0]
    values = out if out is not None else np.zeros((grids.shape[0], m), dtype=dtype)
    _interp_points(grids, grid_coords, kernel, point_order, values, cache=cache)
    if out is not None:
        return out
    return values if batched else values[0]


def interp_gm(grid, grid_coords, kernel, dtype=np.complex64, cache=None, out=None):
    """GM interpolation: targets visited in their user-supplied order.

    ``grid`` may be ``(*fine_shape)`` or a stacked ``(n_trans, *fine_shape)``
    block; the output gains a matching leading axis (or lands in ``out``).
    """
    m = grid_coords[0].shape[0]
    order = np.arange(m, dtype=np.int64)
    return _interp_ordered(grid, grid_coords, kernel, order, cache, dtype, out=out)


def interp_gm_sort(grid, grid_coords, kernel, sort, dtype=np.complex64, cache=None,
                   out=None):
    """GM-sort interpolation: targets visited in bin-sorted order.

    The permuted visiting order only changes memory locality; the value
    written to each ``c_j`` is identical to GM up to floating point.
    """
    return _interp_ordered(grid, grid_coords, kernel, sort.permutation, cache, dtype,
                           out=out)


def interpolate(grid, grid_coords, kernel, method, sort=None, dtype=np.complex64,
                cache=None, out=None):
    """Dispatch to the requested interpolation method."""
    method = SpreadMethod.parse(method)
    if method is SpreadMethod.GM:
        return interp_gm(grid, grid_coords, kernel, dtype, cache=cache, out=out)
    if method in (SpreadMethod.GM_SORT, SpreadMethod.SM):
        # The paper notes an SM-style scheme brings little benefit for
        # interpolation; SM requests fall back to GM-sort (same as the code).
        if sort is None:
            raise ValueError("GM-sort interpolation requires a BinSort")
        return interp_gm_sort(grid, grid_coords, kernel, sort, dtype, cache=cache,
                              out=out)
    raise ValueError(f"cannot interpolate with method {method!r}")


def interp_kernel_profiles(method, sort, kernel, precision, threads_per_block=128,
                           spec=None):
    """Exec-phase kernel profiles for one interpolation pass."""
    method = SpreadMethod.parse(method)
    if method is SpreadMethod.SM:
        method = SpreadMethod.GM_SORT
    ndim = len(sort.fine_shape)
    w = kernel.width
    m = sort.n_points
    real_sz = precision.real_itemsize
    cplx_sz = precision.complex_itemsize
    grid_bytes = float(np.prod(sort.fine_shape)) * cplx_sz
    reads = float(m) * (w ** ndim)

    if spec is not None:
        l2 = spec.l2_cache_bytes
    else:
        from ..gpu.device import V100_SPEC

        l2 = V100_SPEC.l2_cache_bytes

    if method is SpreadMethod.GM:
        profile = KernelProfile(
            name=f"interp_{ndim}d_gm",
            grid_blocks=max(1.0, m / threads_per_block),
            block_threads=threads_per_block,
            flops=_spread_flops(m, w, ndim),
            stream_bytes=_point_read_bytes(m, ndim, real_sz, cplx_sz),
            gather_sector_ops=scattered_sector_ops(reads, min(cplx_sz, 16)),
            gather_miss_fraction=l2_miss_fraction_random(grid_bytes, l2),
        )
        return [profile]

    rows = float(m) * (w ** (ndim - 1))
    sector_ops = localized_sector_ops(rows, w, cplx_sz, reuse_factor=1.5)
    active_bins = min(sort.n_nonempty_bins, 2 * 80)
    padded_cells = float(np.prod(padded_bin_shape(sort.bin_shape, w)))
    footprint = active_bins * padded_cells * cplx_sz
    profile = KernelProfile(
        name=f"interp_{ndim}d_gmsort",
        grid_blocks=max(1.0, m / threads_per_block),
        block_threads=threads_per_block,
        flops=_spread_flops(m, w, ndim),
        stream_bytes=_point_read_bytes(m, ndim, real_sz, cplx_sz, with_index=True),
        gather_sector_ops=sector_ops + 2.0 * m,
        gather_miss_fraction=l2_miss_fraction_localized(footprint, l2),
    )
    return [profile]
