"""Spreading (type-1 step 1): GM, GM-sort and SM methods.

Numerically all three methods compute the same fine-grid array

.. math::

    b_{l} = \\sum_{j=1}^{M} c_j\\, \\psi_{per}(l h - x_j)

(paper Eq. (7)); they differ in *how* the work is organized on the GPU, which
is what the cost profiles capture:

``GM``
    one thread per point in user order, atomic adds straight to global memory
    (scattered, uncoalesced, collision-prone for clustered points);
``GM-sort``
    same, but points are processed in bin-sorted order so a warp's writes form
    localized, cache-resident, partially coalesced runs;
``SM``
    bin-sorted points are split into subproblems of at most ``Msub`` points;
    each subproblem accumulates into a *padded bin* copy in shared memory and
    then adds that copy back to global memory once (paper Fig. 1).

The numeric implementations are genuinely distinct code paths (different
summation orders and different intermediate buffers); tests assert they agree
to floating-point tolerance.
"""

from __future__ import annotations

import numpy as np

from ..gpu.atomics import dilated_occupied_cells, occupied_cells_estimate
from ..gpu.profiler import KernelProfile
from ..gpu.threadblock import check_shared_memory_fit, padded_bin_shape
from ..gpu.transactions import (
    l2_miss_fraction_localized,
    l2_miss_fraction_random,
    localized_sector_ops,
    scattered_sector_ops,
    sectors_for_contiguous_run,
)
from .binsort import make_subproblems
from .options import SpreadMethod
from .stencil import _tensor_stencil

__all__ = [
    "compute_kernel_stencil",
    "spread",
    "spread_cached",
    "spread_gm",
    "spread_gm_sort",
    "spread_sm",
    "spread_kernel_profiles",
]

#: Stencil entries (points x w^d x n_trans) per accumulation chunk: keeps the
#: fused index/weight temporaries comfortably in memory for any width.
_CHUNK_ENTRIES = 1 << 22

#: Approximate flop cost of one ES kernel evaluation (sqrt + exp + mults).
_FLOPS_PER_KERNEL_EVAL = 12.0


# --------------------------------------------------------------------------- #
# kernel stencil evaluation
# --------------------------------------------------------------------------- #
def compute_kernel_stencil(grid_coords_d, n_fine_d, kernel):
    """Per-dimension stencil: first grid index and kernel values for each point.

    For fine-grid coordinate ``g`` (in ``[0, n)``), the kernel of width ``w``
    touches the ``w`` consecutive grid nodes starting at
    ``i0 = ceil(g - w/2)``; node ``i0 + r`` lies at distance ``g - (i0 + r)``
    from the point.

    Returns
    -------
    i0 : ndarray of int64, shape (M,)
        First grid node index (may be negative / >= n; callers wrap mod n).
    vals : ndarray, shape (M, w)
        Kernel values at the ``w`` nodes.
    """
    g = np.asarray(grid_coords_d, dtype=np.float64)
    w = kernel.width
    i0 = np.ceil(g - 0.5 * w).astype(np.int64)
    vals = kernel.evaluate_offsets(g - i0)
    return i0, vals


def _as_strength_batch(strengths):
    """View strengths as a ``(n_trans, M)`` complex block; flag if batched.

    Complex inputs keep their dtype (and their strides -- no copy), so
    single-precision batches flow through spreading without a complex128
    round-trip; real-valued inputs are promoted to complex128.
    """
    strengths = np.asarray(strengths)
    batched = strengths.ndim == 2
    block = strengths if batched else strengths[None, :]
    if not np.iscomplexobj(block):
        block = block.astype(np.complex128)
    return block, batched


def _point_chunk(n_trans, entries_per_point):
    """Points per accumulation chunk given the per-point fused entry count."""
    return max(256, _CHUNK_ENTRIES // max(1, n_trans * entries_per_point))


def _chunk_stencil(grid_coords, fine_shape, kernel, sel, cache):
    """Fused ``(flat_idx, weights)`` of shape (m, w^d) for the selected points.

    Reads the plan-level :class:`~repro.core.stencil.StencilCache` when one is
    supplied (never re-evaluating the kernel); otherwise evaluates the exact
    stencils on the fly, which is the seed behaviour.
    """
    if cache is not None and cache.flat_idx is not None:
        return cache.flat_idx[sel], cache.weights[sel]
    ndim = len(fine_shape)
    if cache is not None:
        idx_per_dim = [cache.idx[d][sel] for d in range(ndim)]
        vals_per_dim = [cache.vals[d][sel] for d in range(ndim)]
    else:
        w = kernel.width
        offsets = np.arange(w, dtype=np.int64)
        idx_per_dim, vals_per_dim = [], []
        for d in range(ndim):
            i0, vals = compute_kernel_stencil(grid_coords[d][sel], fine_shape[d], kernel)
            idx_per_dim.append(np.mod(i0[:, None] + offsets[None, :], fine_shape[d]))
            vals_per_dim.append(vals)
    return _tensor_stencil(idx_per_dim, vals_per_dim, fine_shape)


def _accumulate_chunk(grid_real, grid_imag, flat_idx, weights_real, weights_imag):
    """Accumulate one chunk's weights into preallocated real/imag grid views.

    ``grid_real`` / ``grid_imag`` are float64 views of the (possibly batched)
    complex grid; the ``bincount`` results are added into them in place, so no
    complex full-grid temporary is materialized per chunk.  ``bincount`` is
    far faster than ``np.add.at`` for large update counts and numerically
    equivalent up to summation order.
    """
    size = grid_real.size
    idx = flat_idx.ravel()
    wr = np.bincount(idx, weights=weights_real.ravel(), minlength=size)
    wi = np.bincount(idx, weights=weights_imag.ravel(), minlength=size)
    grid_real += wr.reshape(grid_real.shape)
    grid_imag += wi.reshape(grid_imag.shape)


def _grid_views(grids):
    """Real and imaginary in-place views of a complex grid block.

    Works for both precisions (``.real``/``.imag`` of a complex array are
    writable views); ``bincount`` increments are float64 either way and are
    rounded into the grid's native precision on accumulation.
    """
    flat = grids.reshape(grids.shape[0], -1)
    return flat.real, flat.imag


def _spread_points(grids, grid_coords, strengths, kernel, point_order, cache=None):
    """Spread the points listed in ``point_order`` (chunked, any order).

    ``grids`` has shape ``(n_trans, *fine_shape)`` and ``strengths`` shape
    ``(n_trans, M)``; all transforms are accumulated in one fused
    ``bincount`` pass per chunk (the indices of transform ``t`` are offset by
    ``t * n_fine``), so the Python-level loop over transforms disappears.
    """
    ndim = len(grid_coords)
    fine_shape = grids.shape[1:]
    n_trans = grids.shape[0]
    size = int(np.prod(fine_shape))
    grid_real, grid_imag = _grid_views(grids)
    k_entries = kernel.width ** ndim
    chunk = _point_chunk(n_trans, k_entries)
    t_offsets = (np.arange(n_trans, dtype=np.int64) * size)[:, None, None]

    for start in range(0, point_order.shape[0], chunk):
        sel = point_order[start:start + chunk]
        flat_idx, wprod = _chunk_stencil(grid_coords, fine_shape, kernel, sel, cache)
        cw = strengths[:, sel]
        if n_trans == 1:
            weights_real = cw.real[0, :, None] * wprod
            weights_imag = cw.imag[0, :, None] * wprod
            _accumulate_chunk(grid_real, grid_imag, flat_idx,
                              weights_real, weights_imag)
        else:
            big_idx = flat_idx[None, :, :] + t_offsets
            weights_real = cw.real[:, :, None] * wprod[None, :, :]
            weights_imag = cw.imag[:, :, None] * wprod[None, :, :]
            _accumulate_chunk(grid_real, grid_imag, big_idx,
                              weights_real, weights_imag)
    return grids


# --------------------------------------------------------------------------- #
# numeric spreaders
# --------------------------------------------------------------------------- #
def spread_cached(fine_shape, strengths, cache, dtype=np.complex64, out=None):
    """Spread via the cached sparse operator (one pass over all transforms).

    Requires a fused :class:`~repro.core.stencil.StencilCache` carrying the
    CSR interpolation matrix; ``interp_matrix.T`` *is* the spreading operator,
    so the whole ``(n_trans, M)`` strength block is spread with two real
    sparse mat-mats (real and imaginary parts share the real-valued kernel
    weights).  ``out``, when given, must be a ``(n_trans, *fine_shape)``
    array; the result is written into it and it is returned.
    """
    if cache is None or cache.interp_matrix is None:
        raise ValueError("spread_cached needs a stencil cache with a sparse operator")
    block, batched = _as_strength_batch(strengths)
    spread_op = cache.interp_matrix.T  # (n_fine, M), CSC view: no copy
    flat = (spread_op @ block.real.T) + 1j * (spread_op @ block.imag.T)
    if out is not None:
        if out.flags.c_contiguous:
            out.reshape(out.shape[0], -1)[...] = flat.T
        else:
            # reshape of a strided destination would be a copy, losing the
            # write -- assign through the destination's own strides instead.
            out[...] = np.ascontiguousarray(flat.T).reshape(out.shape)
        return out
    grids = np.ascontiguousarray(flat.T).reshape((block.shape[0],) + tuple(fine_shape))
    result = grids.astype(dtype, copy=False)
    return result if batched else result[0]


def _spread_ordered(fine_shape, grid_coords, strengths, kernel, point_order, cache,
                    dtype, out=None):
    block, batched = _as_strength_batch(strengths)
    if out is not None and not out.flags.c_contiguous:
        # The fused bincount pass needs flat C-order views of the grid;
        # accumulate into a contiguous scratch and assign through the
        # destination's strides at the end.
        grids = np.zeros(out.shape, dtype=out.dtype)
        _spread_points(grids, grid_coords, block, kernel, point_order, cache=cache)
        out[...] = grids
        return out
    if out is not None:
        grids = out
        grids.fill(0)
    else:
        grids = np.zeros((block.shape[0],) + tuple(fine_shape), dtype=dtype)
    _spread_points(grids, grid_coords, block, kernel, point_order, cache=cache)
    if out is not None:
        return out
    return grids if batched else grids[0]


def spread_gm(fine_shape, grid_coords, strengths, kernel, dtype=np.complex64,
              cache=None, out=None):
    """GM spreading: points processed in their user-supplied order.

    ``strengths`` may be ``(M,)`` or a stacked ``(n_trans, M)`` block; the
    output gains a matching leading axis (or is written into ``out``).
    """
    m = np.asarray(strengths).shape[-1]
    order = np.arange(m, dtype=np.int64)
    return _spread_ordered(fine_shape, grid_coords, strengths, kernel, order,
                           cache, dtype, out=out)


def spread_gm_sort(fine_shape, grid_coords, strengths, kernel, sort, dtype=np.complex64,
                   cache=None, out=None):
    """GM-sort spreading: points processed in bin-sorted (permuted) order."""
    return _spread_ordered(fine_shape, grid_coords, strengths, kernel,
                           sort.permutation, cache, dtype, out=out)


def spread_sm(fine_shape, grid_coords, strengths, kernel, sort, subproblems,
              dtype=np.complex64, cache=None, out=None):
    """SM spreading: per-subproblem padded-bin accumulation then write-back.

    Follows paper Fig. 1 steps 2-3 exactly: each subproblem spreads its points
    into a local padded-bin array ("shared memory"), indexed by local
    coordinates ``s = l - Delta`` where ``Delta`` is the padded bin's offset in
    the fine grid, and the padded bin is then added back into the global grid
    with periodic wrapping ``l(s) = (s + Delta) mod n``.

    ``strengths`` may be ``(M,)`` or a ``(n_trans, M)`` block; all transforms
    of a subproblem share one fused accumulation pass into a
    ``(n_trans, padded_bin)`` local buffer.  A stencil cache (per-dimension
    ``i0``/``vals``) skips the kernel evaluation entirely.
    """
    ndim = len(fine_shape)
    block, batched = _as_strength_batch(strengths)
    n_trans = block.shape[0]
    if out is not None:
        grids = out
        grids.fill(0)
    else:
        grids = np.zeros((n_trans,) + tuple(fine_shape), dtype=dtype)
    w = kernel.width
    pad = int(np.ceil(w / 2.0))
    bin_shape = sort.bin_shape
    bins_per_dim = sort.bins_per_dim
    local_shape = padded_bin_shape(bin_shape, w)
    local_size = int(np.prod(local_shape))
    offsets = np.arange(w, dtype=np.int64)
    t_offsets = (np.arange(n_trans, dtype=np.int64) * local_size)[:, None, None]
    t_ix = np.arange(n_trans)

    perm = sort.permutation
    for k in range(subproblems.n_subproblems):
        b = int(subproblems.bin_ids[k])
        start = int(subproblems.offsets[k])
        count = int(subproblems.counts[k])
        sel = perm[start:start + count]

        # Bin coordinates (x fastest) and padded-bin origin Delta.
        bcoords = []
        rem = b
        for d in range(ndim):
            bcoords.append(rem % bins_per_dim[d])
            rem //= bins_per_dim[d]
        delta = [bcoords[d] * bin_shape[d] - pad for d in range(ndim)]

        idx_per_dim = []
        vals_per_dim = []
        for d in range(ndim):
            if cache is not None:
                i0 = cache.i0[d][sel]
                vals = cache.vals[d][sel]
            else:
                i0, vals = compute_kernel_stencil(grid_coords[d][sel], fine_shape[d],
                                                  kernel)
            local_idx = i0[:, None] + offsets[None, :] - delta[d]
            if local_idx.min() < 0 or local_idx.max() >= local_shape[d]:
                raise AssertionError(
                    "subproblem point writes outside its padded bin -- "
                    "bin assignment and padding are inconsistent"
                )
            idx_per_dim.append(local_idx)
            vals_per_dim.append(vals)

        flat_idx, wprod = _tensor_stencil(idx_per_dim, vals_per_dim, local_shape)
        cw = block[:, sel]
        local = np.zeros((n_trans, local_size), dtype=np.complex128)
        local_real, local_imag = _grid_views(local)
        big_idx = flat_idx[None, :, :] + t_offsets if n_trans > 1 else flat_idx
        _accumulate_chunk(local_real, local_imag, big_idx,
                          cw.real[:, :, None] * wprod[None, :, :],
                          cw.imag[:, :, None] * wprod[None, :, :])

        # Step 3: atomic add the padded bin back into global memory, with wrap.
        # np.add.at (not fancy-index +=) so that padded cells aliasing the same
        # fine cell -- which happens when the padded bin is wider than the fine
        # grid itself, e.g. tiny grids with wide kernels -- all accumulate.
        wrapped = [
            np.mod(delta[d] + np.arange(local_shape[d], dtype=np.int64), fine_shape[d])
            for d in range(ndim)
        ]
        np.add.at(grids, np.ix_(t_ix, *wrapped),
                  local.reshape((n_trans,) + tuple(local_shape)))

    if out is not None:
        return out
    return grids if batched else grids[0]


def spread(fine_shape, grid_coords, strengths, kernel, method, sort=None,
           max_subproblem_size=1024, dtype=np.complex64, cache=None, out=None):
    """Dispatch to the requested spreading method.

    ``sort`` (a :class:`~repro.core.binsort.BinSort`) is required for GM-sort
    and SM.  ``out``, when given, receives the batched fine grid in place.
    """
    method = SpreadMethod.parse(method)
    if method is SpreadMethod.GM:
        return spread_gm(fine_shape, grid_coords, strengths, kernel, dtype,
                         cache=cache, out=out)
    if sort is None:
        raise ValueError(f"method {method.value} requires a BinSort")
    if method is SpreadMethod.GM_SORT:
        return spread_gm_sort(fine_shape, grid_coords, strengths, kernel, sort, dtype,
                              cache=cache, out=out)
    if method is SpreadMethod.SM:
        subproblems = make_subproblems(sort, max_subproblem_size)
        return spread_sm(fine_shape, grid_coords, strengths, kernel, sort, subproblems,
                         dtype, cache=cache, out=out)
    raise ValueError(f"cannot spread with method {method!r}")


# --------------------------------------------------------------------------- #
# cost profiles
# --------------------------------------------------------------------------- #
def _point_read_bytes(n_points, ndim, real_itemsize, complex_itemsize, with_index=False):
    bytes_per_point = ndim * real_itemsize + complex_itemsize
    if with_index:
        bytes_per_point += 4  # sorted-index array entry (int32 in CUDA code)
    return float(n_points) * bytes_per_point


def _spread_flops(n_points, width, ndim):
    evals = ndim * width * _FLOPS_PER_KERNEL_EVAL
    accum = (width ** ndim) * (2.0 * ndim + 2.0)
    return float(n_points) * (evals + accum)


def _occupancy_stats(sort, kernel_width, complex_itemsize):
    """Distinct-cell and footprint estimates shared by the profile builders.

    ``sort`` may be a :class:`~repro.core.binsort.BinSort` or a
    :class:`~repro.core.binsort.SpreadStats`; the preferred contention input
    is the exact occupied-cell count, with the bin-histogram estimate as a
    fallback for objects that do not carry it.
    """
    ndim = len(sort.fine_shape)
    total_cells = float(np.prod(sort.fine_shape))
    n_point_cells = getattr(sort, "n_occupied_cells", 0)
    if n_point_cells and n_point_cells > 0:
        occupied = dilated_occupied_cells(n_point_cells, kernel_width, ndim, total_cells)
    else:
        cells_per_bin = float(np.prod(sort.bin_shape))
        occupied = occupied_cells_estimate(
            sort.bin_counts, cells_per_bin, kernel_width, ndim
        )
    occupied = min(occupied, total_cells)
    grid_bytes = total_cells * complex_itemsize
    occupied_bytes = occupied * complex_itemsize
    return occupied, grid_bytes, occupied_bytes


def spread_kernel_profiles(method, sort, kernel, precision, threads_per_block=128,
                           spec=None):
    """Exec-phase kernel profiles for one spreading pass.

    Parameters
    ----------
    method : SpreadMethod
        GM, GM_SORT or SM (AUTO must be resolved by the caller).
    sort : BinSort
        Bin statistics of the nonuniform points (computed for every method --
        GM does not *use* the permutation, but its contention estimate needs
        the occupancy histogram).
    kernel : ESKernel or compatible
        Spreading kernel (only ``width`` matters here).
    precision : Precision
        Determines item sizes.
    threads_per_block : int
        Launch geometry for the cost model.
    spec : DeviceSpec, optional
        Needed by the SM method to validate the shared-memory fit.

    Returns
    -------
    list of KernelProfile
    """
    method = SpreadMethod.parse(method)
    ndim = len(sort.fine_shape)
    w = kernel.width
    m = sort.n_points
    real_sz = precision.real_itemsize
    cplx_sz = precision.complex_itemsize
    occupied, grid_bytes, occupied_bytes = _occupancy_stats(sort, w, cplx_sz)
    ops = float(m) * (w ** ndim)

    if method is SpreadMethod.GM:
        working_set = min(grid_bytes, occupied_bytes)
        profile = KernelProfile(
            name=f"spread_{ndim}d_gm",
            grid_blocks=max(1.0, m / threads_per_block),
            block_threads=threads_per_block,
            flops=_spread_flops(m, w, ndim),
            stream_bytes=_point_read_bytes(m, ndim, real_sz, cplx_sz),
            global_atomic_ops=ops,
            global_atomic_sector_ops=scattered_sector_ops(ops, min(cplx_sz, 16)),
            global_atomic_distinct_addresses=occupied,
            global_atomic_miss_fraction=l2_miss_fraction_random(working_set, _l2(spec)),
        )
        return [profile]

    if method is SpreadMethod.GM_SORT:
        # Localized writes: each point writes w^(d-1) contiguous rows of w cells.
        rows = float(m) * (w ** (ndim - 1))
        sector_ops = localized_sector_ops(rows, w, cplx_sz, reuse_factor=1.5)
        active_bins = min(sort.n_nonempty_bins, 2 * 80)  # blocks in flight
        padded_cells = float(np.prod(padded_bin_shape(sort.bin_shape, w)))
        footprint = active_bins * padded_cells * cplx_sz
        profile = KernelProfile(
            name=f"spread_{ndim}d_gmsort",
            grid_blocks=max(1.0, m / threads_per_block),
            block_threads=threads_per_block,
            flops=_spread_flops(m, w, ndim),
            stream_bytes=_point_read_bytes(m, ndim, real_sz, cplx_sz, with_index=True),
            gather_sector_ops=2.0 * m,  # indirect (permuted) point loads
            gather_miss_fraction=0.2,
            global_atomic_ops=ops,
            global_atomic_sector_ops=sector_ops,
            global_atomic_distinct_addresses=occupied,
            global_atomic_miss_fraction=l2_miss_fraction_localized(footprint, _l2(spec)),
        )
        return [profile]

    if method is SpreadMethod.SM:
        # Default Msub = 1024 (paper Remark 1); callers with a different cap
        # (the Plan, the Msub ablation bench) call spread_sm_kernel_profiles
        # directly with their own subproblem split.
        subproblems = make_subproblems(sort, 1024)
        return spread_sm_kernel_profiles(
            sort, kernel, precision, subproblems, threads_per_block, spec
        )

    raise ValueError(f"cannot profile method {method!r}")


def spread_sm_kernel_profiles(sort, kernel, precision, subproblems,
                              threads_per_block=128, spec=None):
    """Exec-phase profiles for the SM spreader with an explicit subproblem split."""
    ndim = len(sort.fine_shape)
    w = kernel.width
    m = sort.n_points
    real_sz = precision.real_itemsize
    cplx_sz = precision.complex_itemsize
    occupied, grid_bytes, occupied_bytes = _occupancy_stats(sort, w, cplx_sz)

    if spec is not None:
        check_shared_memory_fit(sort.bin_shape, w, cplx_sz, spec)

    local_shape = padded_bin_shape(sort.bin_shape, w)
    padded_cells = float(np.prod(local_shape))
    n_sub = max(1, subproblems.n_subproblems)
    ops = float(m) * (w ** ndim)

    # Shared-memory contention: distinct addresses a subproblem's points hit.
    # A subproblem of P points whose point cells span ``point_cells`` distinct
    # cells writes a region of the padded bin that is that set dilated by the
    # kernel width; intra-block serialization only matters when the resulting
    # region is much smaller than the number of active lanes.
    avg_points_per_sub = m / n_sub if n_sub else 0.0
    n_point_cells = getattr(sort, "n_occupied_cells", 0) or 1
    point_cells_per_sub = min(
        max(1.0, avg_points_per_sub),
        max(1.0, n_point_cells / max(1, sort.n_nonempty_bins)),
    )
    cells_per_sub = dilated_occupied_cells(point_cells_per_sub, w, ndim, padded_cells)
    cells_per_sub = max(1.0, cells_per_sub)

    spread_profile = KernelProfile(
        name=f"spread_{ndim}d_sm",
        grid_blocks=float(n_sub),
        block_threads=threads_per_block,
        flops=_spread_flops(m, w, ndim),
        stream_bytes=_point_read_bytes(m, ndim, real_sz, cplx_sz, with_index=True),
        shared_atomic_ops=ops,
        shared_atomic_distinct_addresses=cells_per_sub,
        shared_mem_per_block=padded_cells * cplx_sz,
    )

    # Step 3: write the padded bins back to global memory with coalesced atomics.
    writeback_ops = float(n_sub) * padded_cells
    rows = float(n_sub) * padded_cells / local_shape[-1]
    writeback_sectors = rows * sectors_for_contiguous_run(local_shape[-1] * cplx_sz)
    writeback_profile = KernelProfile(
        name=f"spread_{ndim}d_sm_writeback",
        grid_blocks=float(n_sub),
        block_threads=threads_per_block,
        flops=2.0 * writeback_ops,
        global_atomic_ops=writeback_ops,
        global_atomic_sector_ops=writeback_sectors,
        global_atomic_distinct_addresses=max(padded_cells, occupied),
        global_atomic_miss_fraction=l2_miss_fraction_random(
            min(grid_bytes, occupied_bytes), _l2(spec)
        ),
        shared_mem_per_block=padded_cells * cplx_sz,
    )
    return [spread_profile, writeback_profile]


def _l2(spec):
    """L2 size of the given spec, defaulting to the V100."""
    if spec is not None:
        return spec.l2_cache_bytes
    from ..gpu.device import V100_SPEC

    return V100_SPEC.l2_cache_bytes
