"""Spreading (type-1 step 1): GM, GM-sort and SM methods.

Numerically all three methods compute the same fine-grid array

.. math::

    b_{l} = \\sum_{j=1}^{M} c_j\\, \\psi_{per}(l h - x_j)

(paper Eq. (7)); they differ in *how* the work is organized on the GPU, which
is what the cost profiles capture:

``GM``
    one thread per point in user order, atomic adds straight to global memory
    (scattered, uncoalesced, collision-prone for clustered points);
``GM-sort``
    same, but points are processed in bin-sorted order so a warp's writes form
    localized, cache-resident, partially coalesced runs;
``SM``
    bin-sorted points are split into subproblems of at most ``Msub`` points;
    each subproblem accumulates into a *padded bin* copy in shared memory and
    then adds that copy back to global memory once (paper Fig. 1).

The numeric implementations are genuinely distinct code paths (different
summation orders and different intermediate buffers); tests assert they agree
to floating-point tolerance.
"""

from __future__ import annotations

import numpy as np

from ..gpu.atomics import dilated_occupied_cells, occupied_cells_estimate
from ..gpu.profiler import KernelProfile
from ..gpu.threadblock import check_shared_memory_fit, padded_bin_shape
from ..gpu.transactions import (
    l2_miss_fraction_localized,
    l2_miss_fraction_random,
    localized_sector_ops,
    scattered_sector_ops,
    sectors_for_contiguous_run,
)
from .binsort import make_subproblems
from .options import SpreadMethod

__all__ = [
    "compute_kernel_stencil",
    "spread",
    "spread_gm",
    "spread_gm_sort",
    "spread_sm",
    "spread_kernel_profiles",
]

#: Points per chunk for the vectorized accumulation (keeps the (chunk, w^d)
#: temporaries comfortably in memory for w up to 16).
_CHUNK_2D = 1 << 16
_CHUNK_3D = 1 << 13

#: Approximate flop cost of one ES kernel evaluation (sqrt + exp + mults).
_FLOPS_PER_KERNEL_EVAL = 12.0


# --------------------------------------------------------------------------- #
# kernel stencil evaluation
# --------------------------------------------------------------------------- #
def compute_kernel_stencil(grid_coords_d, n_fine_d, kernel):
    """Per-dimension stencil: first grid index and kernel values for each point.

    For fine-grid coordinate ``g`` (in ``[0, n)``), the kernel of width ``w``
    touches the ``w`` consecutive grid nodes starting at
    ``i0 = ceil(g - w/2)``; node ``i0 + r`` lies at distance ``g - (i0 + r)``
    from the point.

    Returns
    -------
    i0 : ndarray of int64, shape (M,)
        First grid node index (may be negative / >= n; callers wrap mod n).
    vals : ndarray, shape (M, w)
        Kernel values at the ``w`` nodes.
    """
    g = np.asarray(grid_coords_d, dtype=np.float64)
    w = kernel.width
    i0 = np.ceil(g - 0.5 * w).astype(np.int64)
    vals = kernel.evaluate_offsets(g - i0)
    return i0, vals


def _chunk_size(ndim):
    return _CHUNK_2D if ndim == 2 else _CHUNK_3D


def _accumulate_chunk(flat_grid, flat_idx, weights):
    """Accumulate ``weights`` at ``flat_idx`` into the flattened grid.

    Uses ``bincount`` on the real and imaginary parts, which is far faster
    than ``np.add.at`` for large update counts and numerically equivalent up
    to summation order.
    """
    size = flat_grid.shape[0]
    idx = flat_idx.ravel()
    wr = np.bincount(idx, weights=weights.real.ravel(), minlength=size)
    wi = np.bincount(idx, weights=weights.imag.ravel(), minlength=size)
    flat_grid += (wr + 1j * wi).astype(flat_grid.dtype, copy=False)


def _spread_points(grid, grid_coords, strengths, kernel, point_order):
    """Spread the points listed in ``point_order`` (chunked, any order)."""
    ndim = len(grid_coords)
    fine_shape = grid.shape
    flat_grid = grid.reshape(-1)
    w = kernel.width
    chunk = _chunk_size(ndim)
    offsets = np.arange(w, dtype=np.int64)

    for start in range(0, point_order.shape[0], chunk):
        sel = point_order[start:start + chunk]
        idx_per_dim = []
        vals_per_dim = []
        for d in range(ndim):
            i0, vals = compute_kernel_stencil(grid_coords[d][sel], fine_shape[d], kernel)
            idx = np.mod(i0[:, None] + offsets[None, :], fine_shape[d])
            idx_per_dim.append(idx)
            vals_per_dim.append(vals)
        c = strengths[sel].astype(np.complex128, copy=False)

        if ndim == 2:
            n2 = fine_shape[1]
            flat_idx = idx_per_dim[0][:, :, None] * n2 + idx_per_dim[1][:, None, :]
            weights = (
                c[:, None, None]
                * vals_per_dim[0][:, :, None]
                * vals_per_dim[1][:, None, :]
            )
        else:
            n2, n3 = fine_shape[1], fine_shape[2]
            flat_idx = (
                idx_per_dim[0][:, :, None, None] * (n2 * n3)
                + idx_per_dim[1][:, None, :, None] * n3
                + idx_per_dim[2][:, None, None, :]
            )
            weights = (
                c[:, None, None, None]
                * vals_per_dim[0][:, :, None, None]
                * vals_per_dim[1][:, None, :, None]
                * vals_per_dim[2][:, None, None, :]
            )
        _accumulate_chunk(flat_grid, flat_idx, weights)
    return grid


# --------------------------------------------------------------------------- #
# numeric spreaders
# --------------------------------------------------------------------------- #
def spread_gm(fine_shape, grid_coords, strengths, kernel, dtype=np.complex64):
    """GM spreading: points processed in their user-supplied order."""
    grid = np.zeros(fine_shape, dtype=np.result_type(dtype, np.complex64))
    order = np.arange(strengths.shape[0], dtype=np.int64)
    _spread_points(grid, grid_coords, strengths, kernel, order)
    return grid.astype(dtype, copy=False)


def spread_gm_sort(fine_shape, grid_coords, strengths, kernel, sort, dtype=np.complex64):
    """GM-sort spreading: points processed in bin-sorted (permuted) order."""
    grid = np.zeros(fine_shape, dtype=np.result_type(dtype, np.complex64))
    _spread_points(grid, grid_coords, strengths, kernel, sort.permutation)
    return grid.astype(dtype, copy=False)


def spread_sm(fine_shape, grid_coords, strengths, kernel, sort, subproblems,
              dtype=np.complex64):
    """SM spreading: per-subproblem padded-bin accumulation then write-back.

    Follows paper Fig. 1 steps 2-3 exactly: each subproblem spreads its points
    into a local padded-bin array ("shared memory"), indexed by local
    coordinates ``s = l - Delta`` where ``Delta`` is the padded bin's offset in
    the fine grid, and the padded bin is then added back into the global grid
    with periodic wrapping ``l(s) = (s + Delta) mod n``.
    """
    ndim = len(fine_shape)
    grid = np.zeros(fine_shape, dtype=np.complex128)
    w = kernel.width
    pad = int(np.ceil(w / 2.0))
    bin_shape = sort.bin_shape
    bins_per_dim = sort.bins_per_dim
    local_shape = padded_bin_shape(bin_shape, w)
    offsets = np.arange(w, dtype=np.int64)

    perm = sort.permutation
    for k in range(subproblems.n_subproblems):
        b = int(subproblems.bin_ids[k])
        start = int(subproblems.offsets[k])
        count = int(subproblems.counts[k])
        sel = perm[start:start + count]

        # Bin coordinates (x fastest) and padded-bin origin Delta.
        bcoords = []
        rem = b
        for d in range(ndim):
            bcoords.append(rem % bins_per_dim[d])
            rem //= bins_per_dim[d]
        delta = [bcoords[d] * bin_shape[d] - pad for d in range(ndim)]

        local = np.zeros(local_shape, dtype=np.complex128)
        idx_per_dim = []
        vals_per_dim = []
        for d in range(ndim):
            i0, vals = compute_kernel_stencil(grid_coords[d][sel], fine_shape[d], kernel)
            local_idx = i0[:, None] + offsets[None, :] - delta[d]
            if local_idx.min() < 0 or local_idx.max() >= local_shape[d]:
                raise AssertionError(
                    "subproblem point writes outside its padded bin -- "
                    "bin assignment and padding are inconsistent"
                )
            idx_per_dim.append(local_idx)
            vals_per_dim.append(vals)
        c = strengths[sel].astype(np.complex128, copy=False)

        if ndim == 2:
            p2 = local_shape[1]
            flat_idx = idx_per_dim[0][:, :, None] * p2 + idx_per_dim[1][:, None, :]
            weights = (
                c[:, None, None]
                * vals_per_dim[0][:, :, None]
                * vals_per_dim[1][:, None, :]
            )
        else:
            p2, p3 = local_shape[1], local_shape[2]
            flat_idx = (
                idx_per_dim[0][:, :, None, None] * (p2 * p3)
                + idx_per_dim[1][:, None, :, None] * p3
                + idx_per_dim[2][:, None, None, :]
            )
            weights = (
                c[:, None, None, None]
                * vals_per_dim[0][:, :, None, None]
                * vals_per_dim[1][:, None, :, None]
                * vals_per_dim[2][:, None, None, :]
            )
        _accumulate_chunk(local.reshape(-1), flat_idx, weights)

        # Step 3: atomic add the padded bin back into global memory, with wrap.
        # np.add.at (not fancy-index +=) so that padded cells aliasing the same
        # fine cell -- which happens when the padded bin is wider than the fine
        # grid itself, e.g. tiny grids with wide kernels -- all accumulate.
        wrapped = [
            np.mod(delta[d] + np.arange(local_shape[d], dtype=np.int64), fine_shape[d])
            for d in range(ndim)
        ]
        np.add.at(grid, np.ix_(*wrapped), local)

    return grid.astype(dtype, copy=False)


def spread(fine_shape, grid_coords, strengths, kernel, method, sort=None,
           max_subproblem_size=1024, dtype=np.complex64):
    """Dispatch to the requested spreading method.

    ``sort`` (a :class:`~repro.core.binsort.BinSort`) is required for GM-sort
    and SM.
    """
    method = SpreadMethod.parse(method)
    if method is SpreadMethod.GM:
        return spread_gm(fine_shape, grid_coords, strengths, kernel, dtype)
    if sort is None:
        raise ValueError(f"method {method.value} requires a BinSort")
    if method is SpreadMethod.GM_SORT:
        return spread_gm_sort(fine_shape, grid_coords, strengths, kernel, sort, dtype)
    if method is SpreadMethod.SM:
        subproblems = make_subproblems(sort, max_subproblem_size)
        return spread_sm(fine_shape, grid_coords, strengths, kernel, sort, subproblems, dtype)
    raise ValueError(f"cannot spread with method {method!r}")


# --------------------------------------------------------------------------- #
# cost profiles
# --------------------------------------------------------------------------- #
def _point_read_bytes(n_points, ndim, real_itemsize, complex_itemsize, with_index=False):
    bytes_per_point = ndim * real_itemsize + complex_itemsize
    if with_index:
        bytes_per_point += 4  # sorted-index array entry (int32 in CUDA code)
    return float(n_points) * bytes_per_point


def _spread_flops(n_points, width, ndim):
    evals = ndim * width * _FLOPS_PER_KERNEL_EVAL
    accum = (width ** ndim) * (2.0 * ndim + 2.0)
    return float(n_points) * (evals + accum)


def _occupancy_stats(sort, kernel_width, complex_itemsize):
    """Distinct-cell and footprint estimates shared by the profile builders.

    ``sort`` may be a :class:`~repro.core.binsort.BinSort` or a
    :class:`~repro.core.binsort.SpreadStats`; the preferred contention input
    is the exact occupied-cell count, with the bin-histogram estimate as a
    fallback for objects that do not carry it.
    """
    ndim = len(sort.fine_shape)
    total_cells = float(np.prod(sort.fine_shape))
    n_point_cells = getattr(sort, "n_occupied_cells", 0)
    if n_point_cells and n_point_cells > 0:
        occupied = dilated_occupied_cells(n_point_cells, kernel_width, ndim, total_cells)
    else:
        cells_per_bin = float(np.prod(sort.bin_shape))
        occupied = occupied_cells_estimate(
            sort.bin_counts, cells_per_bin, kernel_width, ndim
        )
    occupied = min(occupied, total_cells)
    grid_bytes = total_cells * complex_itemsize
    occupied_bytes = occupied * complex_itemsize
    return occupied, grid_bytes, occupied_bytes


def spread_kernel_profiles(method, sort, kernel, precision, threads_per_block=128,
                           spec=None):
    """Exec-phase kernel profiles for one spreading pass.

    Parameters
    ----------
    method : SpreadMethod
        GM, GM_SORT or SM (AUTO must be resolved by the caller).
    sort : BinSort
        Bin statistics of the nonuniform points (computed for every method --
        GM does not *use* the permutation, but its contention estimate needs
        the occupancy histogram).
    kernel : ESKernel or compatible
        Spreading kernel (only ``width`` matters here).
    precision : Precision
        Determines item sizes.
    threads_per_block : int
        Launch geometry for the cost model.
    spec : DeviceSpec, optional
        Needed by the SM method to validate the shared-memory fit.

    Returns
    -------
    list of KernelProfile
    """
    method = SpreadMethod.parse(method)
    ndim = len(sort.fine_shape)
    w = kernel.width
    m = sort.n_points
    real_sz = precision.real_itemsize
    cplx_sz = precision.complex_itemsize
    occupied, grid_bytes, occupied_bytes = _occupancy_stats(sort, w, cplx_sz)
    ops = float(m) * (w ** ndim)

    if method is SpreadMethod.GM:
        working_set = min(grid_bytes, occupied_bytes)
        profile = KernelProfile(
            name=f"spread_{ndim}d_gm",
            grid_blocks=max(1.0, m / threads_per_block),
            block_threads=threads_per_block,
            flops=_spread_flops(m, w, ndim),
            stream_bytes=_point_read_bytes(m, ndim, real_sz, cplx_sz),
            global_atomic_ops=ops,
            global_atomic_sector_ops=scattered_sector_ops(ops, min(cplx_sz, 16)),
            global_atomic_distinct_addresses=occupied,
            global_atomic_miss_fraction=l2_miss_fraction_random(working_set, _l2(spec)),
        )
        return [profile]

    if method is SpreadMethod.GM_SORT:
        # Localized writes: each point writes w^(d-1) contiguous rows of w cells.
        rows = float(m) * (w ** (ndim - 1))
        sector_ops = localized_sector_ops(rows, w, cplx_sz, reuse_factor=1.5)
        active_bins = min(sort.n_nonempty_bins, 2 * 80)  # blocks in flight
        padded_cells = float(np.prod(padded_bin_shape(sort.bin_shape, w)))
        footprint = active_bins * padded_cells * cplx_sz
        profile = KernelProfile(
            name=f"spread_{ndim}d_gmsort",
            grid_blocks=max(1.0, m / threads_per_block),
            block_threads=threads_per_block,
            flops=_spread_flops(m, w, ndim),
            stream_bytes=_point_read_bytes(m, ndim, real_sz, cplx_sz, with_index=True),
            gather_sector_ops=2.0 * m,  # indirect (permuted) point loads
            gather_miss_fraction=0.2,
            global_atomic_ops=ops,
            global_atomic_sector_ops=sector_ops,
            global_atomic_distinct_addresses=occupied,
            global_atomic_miss_fraction=l2_miss_fraction_localized(footprint, _l2(spec)),
        )
        return [profile]

    if method is SpreadMethod.SM:
        # Default Msub = 1024 (paper Remark 1); callers with a different cap
        # (the Plan, the Msub ablation bench) call spread_sm_kernel_profiles
        # directly with their own subproblem split.
        subproblems = make_subproblems(sort, 1024)
        return spread_sm_kernel_profiles(
            sort, kernel, precision, subproblems, threads_per_block, spec
        )

    raise ValueError(f"cannot profile method {method!r}")


def spread_sm_kernel_profiles(sort, kernel, precision, subproblems,
                              threads_per_block=128, spec=None):
    """Exec-phase profiles for the SM spreader with an explicit subproblem split."""
    ndim = len(sort.fine_shape)
    w = kernel.width
    m = sort.n_points
    real_sz = precision.real_itemsize
    cplx_sz = precision.complex_itemsize
    occupied, grid_bytes, occupied_bytes = _occupancy_stats(sort, w, cplx_sz)

    if spec is not None:
        check_shared_memory_fit(sort.bin_shape, w, cplx_sz, spec)

    local_shape = padded_bin_shape(sort.bin_shape, w)
    padded_cells = float(np.prod(local_shape))
    n_sub = max(1, subproblems.n_subproblems)
    ops = float(m) * (w ** ndim)

    # Shared-memory contention: distinct addresses a subproblem's points hit.
    # A subproblem of P points whose point cells span ``point_cells`` distinct
    # cells writes a region of the padded bin that is that set dilated by the
    # kernel width; intra-block serialization only matters when the resulting
    # region is much smaller than the number of active lanes.
    avg_points_per_sub = m / n_sub if n_sub else 0.0
    n_point_cells = getattr(sort, "n_occupied_cells", 0) or 1
    point_cells_per_sub = min(
        max(1.0, avg_points_per_sub),
        max(1.0, n_point_cells / max(1, sort.n_nonempty_bins)),
    )
    cells_per_sub = dilated_occupied_cells(point_cells_per_sub, w, ndim, padded_cells)
    cells_per_sub = max(1.0, cells_per_sub)

    spread_profile = KernelProfile(
        name=f"spread_{ndim}d_sm",
        grid_blocks=float(n_sub),
        block_threads=threads_per_block,
        flops=_spread_flops(m, w, ndim),
        stream_bytes=_point_read_bytes(m, ndim, real_sz, cplx_sz, with_index=True),
        shared_atomic_ops=ops,
        shared_atomic_distinct_addresses=cells_per_sub,
        shared_mem_per_block=padded_cells * cplx_sz,
    )

    # Step 3: write the padded bins back to global memory with coalesced atomics.
    writeback_ops = float(n_sub) * padded_cells
    rows = float(n_sub) * padded_cells / local_shape[-1]
    writeback_sectors = rows * sectors_for_contiguous_run(local_shape[-1] * cplx_sz)
    writeback_profile = KernelProfile(
        name=f"spread_{ndim}d_sm_writeback",
        grid_blocks=float(n_sub),
        block_threads=threads_per_block,
        flops=2.0 * writeback_ops,
        global_atomic_ops=writeback_ops,
        global_atomic_sector_ops=writeback_sectors,
        global_atomic_distinct_addresses=max(padded_cells, occupied),
        global_atomic_miss_fraction=l2_miss_fraction_random(
            min(grid_bytes, occupied_bytes), _l2(spec)
        ),
        shared_mem_per_block=padded_cells * cplx_sz,
    )
    return [spread_profile, writeback_profile]


def _l2(spec):
    """L2 size of the given spec, defaulting to the V100."""
    if spec is not None:
        return spec.l2_cache_bytes
    from ..gpu.device import V100_SPEC

    return V100_SPEC.l2_cache_bytes
