"""Central registry of the environment variables the repro honors.

Every knob the package reads from the process environment goes through this
module, so the full surface is documented (and testable) in one place instead
of scattered ``os.environ.get`` calls.  The README's "Environment variables"
table is generated from :data:`ENV_VARS`.

All helpers treat an *empty or whitespace-only* value as unset, so
``REPRO_TUNING_CACHE= pytest`` behaves exactly like not exporting the
variable at all.
"""

from __future__ import annotations

import os

__all__ = [
    "ENV_VARS",
    "artifact_store_path",
    "tuning_cache_path",
    "fault_seed",
    "no_result_files",
    "bench_sample_size",
    "env_str",
    "env_int",
]

#: Documented environment variables: name -> one-line description.  This is
#: the single source of truth the README table renders from.
ENV_VARS = {
    "REPRO_ARTIFACT_STORE": (
        "Directory of the shared warm-state artifact store (stencils, Horner "
        "fits, tuning wisdom, PSF kernels); unset keeps artifacts in-memory "
        "per process."
    ),
    "REPRO_TUNING_CACHE": (
        "JSON file backing the default autotuner's wisdom cache; unset keeps "
        "tuning wisdom in-memory per process."
    ),
    "REPRO_FAULT_SEED": (
        "Integer seed of the deterministic fault-injection schedule "
        "(default 0)."
    ),
    "REPRO_NO_RESULT_FILES": (
        "Any non-empty value disables writing benchmark tables under "
        "results/ (CI smoke runs)."
    ),
    "REPRO_BENCH_SAMPLE": (
        "Points sampled per benchmark configuration (default 2^18); smaller "
        "values speed up the harness at reduced statistical fidelity."
    ),
}


def env_str(name, default=None):
    """The raw value of ``name``, or ``default`` when unset/blank."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return raw


def env_int(name, default):
    """Integer value of ``name`` (``default`` when unset/blank).

    A non-integer value raises ``ValueError`` -- a misspelled seed or sample
    size should fail loudly, not silently fall back.
    """
    raw = env_str(name)
    if raw is None:
        return int(default)
    return int(raw)


def artifact_store_path(default=None):
    """Directory named by ``REPRO_ARTIFACT_STORE`` (``default`` when unset)."""
    return env_str("REPRO_ARTIFACT_STORE", default)


def tuning_cache_path(default=None):
    """File named by ``REPRO_TUNING_CACHE`` (``default`` when unset)."""
    return env_str("REPRO_TUNING_CACHE", default)


def fault_seed(default=0):
    """The fault-injection seed from ``REPRO_FAULT_SEED``."""
    return env_int("REPRO_FAULT_SEED", default)


def no_result_files():
    """Whether ``REPRO_NO_RESULT_FILES`` suppresses benchmark result files."""
    return env_str("REPRO_NO_RESULT_FILES") is not None


def bench_sample_size(default=1 << 18):
    """Benchmark sample size from ``REPRO_BENCH_SAMPLE``."""
    return env_int("REPRO_BENCH_SAMPLE", default)
