"""Slab decomposition of the fine grid for distributed spreading/interpolation.

The multi-node NUFFT (:mod:`repro.cluster.distributed`) partitions the fine
grid into contiguous *slabs* along axis 0, one per rank.  Each rank owns the
nonuniform points whose axis-0 grid cell falls inside its slab, spreads them
onto a *padded* local slab (the kernel of width ``w`` reaches at most
``w//2`` rows below and ``(w+1)//2`` rows above a point's cell), and the pad
rows -- contributions that belong to neighbouring slabs, with periodic wrap
-- are what the halo exchange ships.

This module holds the rank-agnostic geometry and the slab-local
spread/interp entry points; everything here is plain host-side NumPy reusing
the single-node :func:`~repro.core.spread.spread` /
:func:`~repro.core.interp.interpolate` machinery (including their ``out=``
destinations), so the distributed numerics are, per point, bit-identical to
the single-plan pipeline's accumulation terms.
"""

from __future__ import annotations

import numpy as np

from .interp import interpolate
from .spread import spread

__all__ = [
    "slab_partition",
    "slab_owner",
    "halo_pads",
    "padded_slab_shape",
    "partition_points_by_slab",
    "spread_to_slab",
    "interp_from_slab",
    "halo_row_map",
    "analytic_halo_bytes",
]


def slab_partition(n, n_ranks):
    """Balanced contiguous partition of ``n`` rows into ``n_ranks`` slabs.

    Returns a list of ``(start, stop)`` half-open row ranges, the first
    ``n % n_ranks`` slabs one row taller.  Slabs may be empty (``start ==
    stop``) when ``n_ranks > n``; empty slabs own no rows and no points.
    """
    n = int(n)
    n_ranks = int(n_ranks)
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n_ranks < 1:
        raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
    base, rem = divmod(n, n_ranks)
    slabs = []
    start = 0
    for r in range(n_ranks):
        height = base + (1 if r < rem else 0)
        slabs.append((start, start + height))
        start += height
    return slabs


def slab_owner(row, slabs):
    """Rank owning global row ``row`` under the ``slabs`` partition."""
    for r, (start, stop) in enumerate(slabs):
        if start <= row < stop:
            return r
    raise ValueError(f"row {row} outside the partitioned range")


def halo_pads(width):
    """Rows of halo padding ``(pad_lo, pad_hi)`` for a kernel of width ``w``.

    A point in cell ``i`` touches rows ``ceil(g - w/2) .. ceil(g - w/2)+w-1``
    with ``g in [i, i+1)``, i.e. at most ``w//2`` rows below the slab start
    and ``(w+1)//2 - 1`` rows past its last row -- the exact extents, so the
    halo volume formula is tight, not an upper bound.
    """
    width = int(width)
    if width < 1:
        raise ValueError(f"kernel width must be >= 1, got {width}")
    return width // 2, (width + 1) // 2


def padded_slab_shape(fine_shape, slab, width, n_trans=1):
    """Shape of one rank's padded local slab block, ``n_trans`` leading."""
    start, stop = slab
    pad_lo, pad_hi = halo_pads(width)
    return (int(n_trans), pad_lo + (stop - start) + pad_hi) + tuple(fine_shape[1:])


def partition_points_by_slab(grid_coords, fine_shape, slabs):
    """Index arrays of the points each slab owns (by axis-0 grid cell).

    Ownership follows the bin-sort convention: the cell of a point is
    ``floor(g0)`` clipped into ``[0, n0 - 1]``, so points exactly on a slab
    boundary belong to the slab *starting* there, deterministically.
    Returns a list of int64 index arrays, one per slab, preserving the
    original point order within each slab (concatenating them is a
    permutation of ``arange(M)``).
    """
    n0 = int(fine_shape[0])
    cell = np.floor(np.asarray(grid_coords[0], dtype=np.float64)).astype(np.int64)
    np.clip(cell, 0, n0 - 1, out=cell)
    owners = np.empty(cell.shape[0], dtype=np.int64)
    owners.fill(-1)
    for r, (start, stop) in enumerate(slabs):
        if start < stop:
            owners[(cell >= start) & (cell < stop)] = r
    if np.any(owners < 0):
        raise AssertionError("a point's grid cell fell outside every slab")
    return [np.nonzero(owners == r)[0] for r in range(len(slabs))]


def _local_coords(grid_coords, slab, width):
    """Axis-0-shifted grid coordinates of one slab's points.

    Shifting by the integer ``start - pad_lo`` preserves the fractional part
    of every coordinate, so the kernel stencil values are bit-identical to
    the single-grid evaluation; only the write offsets move.
    """
    start, _stop = slab
    pad_lo, _pad_hi = halo_pads(width)
    local = [np.asarray(c, dtype=np.float64) for c in grid_coords]
    local[0] = local[0] - (start - pad_lo)
    return local


def spread_to_slab(fine_shape, grid_coords, strengths, kernel, slab, out=None,
                   dtype=np.complex128):
    """Spread one slab's points onto its padded local block.

    ``grid_coords`` are the slab's own points in *global* fine-grid units
    (already partitioned by :func:`partition_points_by_slab`); the result is
    a ``(n_trans, pad_lo + slab_rows + pad_hi, *fine_shape[1:])`` block whose
    row 0 is global row ``start - pad_lo``.  Because the pads cover the
    kernel's exact reach, no write wraps along axis 0 -- the wraparound is
    resolved later by the halo exchange.  Axes 1.. keep their full (periodic)
    extent.  ``strengths`` must carry the batched ``(n_trans, M)`` layout.
    """
    local_shape = padded_slab_shape(fine_shape, slab, kernel.width,
                                    strengths.shape[0])[1:]
    if strengths.shape[1] == 0:
        if out is not None:
            out.fill(0)
            return out
        return np.zeros((strengths.shape[0],) + local_shape, dtype=dtype)
    local = _local_coords(grid_coords, slab, kernel.width)
    return spread(local_shape, local, strengths, kernel, "GM", dtype=dtype,
                  out=out)


def interp_from_slab(padded_block, grid_coords, kernel, slab, out=None,
                     dtype=np.complex128):
    """Interpolate one slab's points from its halo-completed padded block.

    The transpose of :func:`spread_to_slab`: ``padded_block`` must already
    contain the neighbour rows imported by the halo exchange, so every
    read along axis 0 lands inside the block.
    """
    if grid_coords[0].shape[0] == 0:
        shape = (padded_block.shape[0], 0)
        if out is not None:
            return out
        return np.zeros(shape, dtype=dtype)
    local = _local_coords(grid_coords, slab, kernel.width)
    return interpolate(padded_block, local, kernel, "GM", dtype=dtype, out=out)


def halo_row_map(fine_shape, slabs, rank, width):
    """Destination of every padded row of ``rank``'s slab block.

    Returns ``(global_rows, owners)``: for padded row ``i`` of the rank's
    block, ``global_rows[i]`` is the fine-grid row it aliases (periodic
    wrap) and ``owners[i]`` the rank owning that row.  Rows owned by
    ``rank`` itself (the slab interior, plus wrapped pads on small rank
    counts) never travel over the interconnect.
    """
    n0 = int(fine_shape[0])
    start, stop = slabs[rank]
    pad_lo, pad_hi = halo_pads(width)
    height = pad_lo + (stop - start) + pad_hi
    global_rows = np.mod(np.arange(start - pad_lo, start - pad_lo + height,
                                   dtype=np.int64), n0)
    owners = np.array([slab_owner(int(g), slabs) for g in global_rows],
                      dtype=np.int64)
    return global_rows, owners


def analytic_halo_bytes(fine_shape, n_ranks, width, itemsize, n_trans=1):
    """Exact bytes one halo exchange moves between *distinct* ranks.

    Every non-empty slab exports each padded row whose owning rank differs
    from itself -- ``pad_lo + pad_hi = width`` rows per rank, minus the rows
    the periodic wrap maps back onto the exporter (all of them when
    ``n_ranks == 1``).  One row is ``prod(fine_shape[1:]) * n_trans *
    itemsize`` bytes.  This is the formula the accounting tests pin the
    measured :attr:`~repro.cluster.distributed.DistributedPlan.halo_bytes`
    against, exactly.
    """
    slabs = slab_partition(fine_shape[0], n_ranks)
    row_bytes = int(np.prod(fine_shape[1:], dtype=np.int64)) * int(n_trans) * int(itemsize)
    total = 0
    for r, (start, stop) in enumerate(slabs):
        if start == stop:
            continue
        _rows, owners = halo_row_map(fine_shape, slabs, r, width)
        total += int(np.count_nonzero(owners != r)) * row_bytes
    return total
