"""Error metrics used throughout the tests and benchmarks.

The paper reports relative l2 errors measured against a high-accuracy ground
truth; we do the same against the direct sums of :mod:`repro.core.exact`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["relative_l2_error", "max_abs_error"]


def relative_l2_error(approx, exact):
    """``||approx - exact||_2 / ||exact||_2`` over flattened arrays.

    Returns the absolute l2 norm of ``approx`` if ``exact`` is identically
    zero (so the metric is still finite and meaningful).
    """
    approx = np.asarray(approx).ravel()
    exact = np.asarray(exact).ravel()
    if approx.shape != exact.shape:
        raise ValueError(
            f"shape mismatch: approx {approx.shape} vs exact {exact.shape}"
        )
    denom = np.linalg.norm(exact)
    num = np.linalg.norm(approx - exact)
    if denom == 0.0:
        return float(num)
    return float(num / denom)


def max_abs_error(approx, exact):
    """Maximum absolute entrywise difference."""
    approx = np.asarray(approx).ravel()
    exact = np.asarray(exact).ravel()
    if approx.shape != exact.shape:
        raise ValueError(
            f"shape mismatch: approx {approx.shape} vs exact {exact.shape}"
        )
    if approx.size == 0:
        return 0.0
    return float(np.max(np.abs(approx - exact)))
