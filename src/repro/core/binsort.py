"""Bin-sorting of nonuniform points and subproblem construction.

This module implements the precomputation shared by the GM-sort and SM
methods (paper Sec. III-A):

1. fold each nonuniform coordinate into the periodic box and convert to
   fine-grid units;
2. assign each point to a rectangular/cuboid *bin* of the fine grid
   (default 32x32 in 2D, 16x16x2 in 3D), bins ordered with the x axis fast;
3. build the permutation ``t`` that lists the points of bin 0, then bin 1,
   etc. (a counting sort);
4. for the SM method, split every bin's point list into *subproblems* of at
   most ``Msub`` points (blocked input-driven load balancing).

The functions also produce :class:`~repro.gpu.profiler.KernelProfile` records
for the setup kernels so the cost model can price the "total" vs "exec"
difference the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.profiler import KernelProfile

__all__ = [
    "fold_coordinates",
    "to_grid_coordinates",
    "compute_bin_index",
    "BinSort",
    "bin_sort",
    "SpreadStats",
    "Subproblems",
    "make_subproblems",
    "estimate_subproblem_count",
    "binsort_kernel_profiles",
]

TWO_PI = 2.0 * np.pi


def fold_coordinates(x):
    """Fold coordinates into ``[0, 2*pi)``.

    Input points live in ``[-pi, pi)`` by the paper's convention, but any real
    values are accepted (the transform is 2*pi-periodic).
    """
    x = np.asarray(x, dtype=np.float64)
    folded = np.mod(x, TWO_PI)
    # Guard against folded == 2*pi from roundoff of tiny negative values.
    folded[folded >= TWO_PI] = 0.0
    return folded


def to_grid_coordinates(x, n_fine):
    """Convert periodic coordinates to fine-grid units in ``[0, n_fine)``."""
    if n_fine < 1:
        raise ValueError(f"n_fine must be >= 1, got {n_fine}")
    gx = fold_coordinates(x) * (n_fine / TWO_PI)
    # Roundoff can produce gx == n_fine; wrap it.
    gx[gx >= n_fine] = 0.0
    return gx


def compute_bin_index(grid_coords, fine_shape, bin_shape):
    """Bin index of each point, with the x axis fastest (paper Sec. III-A).

    Parameters
    ----------
    grid_coords : sequence of ndarray
        Per-dimension fine-grid coordinates (each shape ``(M,)``), ordered
        ``(x, y)`` or ``(x, y, z)``.
    fine_shape : tuple of int
        Fine grid sizes ``(n1, n2[, n3])`` in the same order.
    bin_shape : tuple of int
        Bin sizes ``(m1, m2[, m3])``.

    Returns
    -------
    bin_index : ndarray of int64, shape (M,)
    bins_per_dim : tuple of int
        Number of bins along each dimension (``ceil(n_i / m_i)``).
    """
    ndim = len(fine_shape)
    if len(grid_coords) != ndim or len(bin_shape) != ndim:
        raise ValueError("grid_coords, fine_shape and bin_shape must have equal length")
    bins_per_dim = tuple(-(-int(n) // int(m)) for n, m in zip(fine_shape, bin_shape))

    bin_index = None
    stride = 1
    for d in range(ndim):
        cell = np.floor(grid_coords[d]).astype(np.int64)
        np.clip(cell, 0, fine_shape[d] - 1, out=cell)
        b = cell // int(bin_shape[d])
        contribution = b * stride
        bin_index = contribution if bin_index is None else bin_index + contribution
        stride *= bins_per_dim[d]
    return bin_index, bins_per_dim


@dataclass
class BinSort:
    """Result of bin-sorting the nonuniform points.

    Attributes
    ----------
    permutation : ndarray of int64, shape (M,)
        The paper's bijection ``t``: ``permutation[0:counts[0]]`` are the
        indices of the points in bin 0, and so on.
    bin_index : ndarray of int64, shape (M,)
        Bin id of each (original-order) point.
    bin_counts : ndarray of int64, shape (n_bins,)
        Points per bin ``M_i``.
    bin_starts : ndarray of int64, shape (n_bins,)
        Exclusive prefix sum of ``bin_counts``: offset of each bin's segment
        in the permuted ordering.
    bins_per_dim : tuple of int
        Bin-grid dimensions.
    bin_shape : tuple of int
        Bin size in fine-grid cells.
    fine_shape : tuple of int
        Fine-grid dimensions.
    n_occupied_cells : int
        Number of distinct fine-grid cells containing at least one point
        (input to the atomic-contention model).
    """

    permutation: np.ndarray
    bin_index: np.ndarray
    bin_counts: np.ndarray
    bin_starts: np.ndarray
    bins_per_dim: tuple
    bin_shape: tuple
    fine_shape: tuple
    n_occupied_cells: int = 1

    @property
    def n_points(self):
        return self.permutation.shape[0]

    @property
    def n_bins(self):
        return self.bin_counts.shape[0]

    @property
    def n_nonempty_bins(self):
        return int(np.count_nonzero(self.bin_counts))

    def bin_slice(self, i):
        """Slice of the permuted ordering holding bin ``i``'s points."""
        start = int(self.bin_starts[i])
        return slice(start, start + int(self.bin_counts[i]))


def bin_sort(grid_coords, fine_shape, bin_shape):
    """Bin-sort the nonuniform points (counting sort on bin index).

    See :class:`BinSort` for the returned fields.  The sort is stable within
    a bin (points keep their original relative order), matching the
    "record the bin index of each point, read out this list in bin ordering"
    construction in the paper.
    """
    m = grid_coords[0].shape[0]
    bin_index, bins_per_dim = compute_bin_index(grid_coords, fine_shape, bin_shape)
    n_bins = int(np.prod(bins_per_dim))
    bin_counts = np.bincount(bin_index, minlength=n_bins).astype(np.int64)
    bin_starts = np.zeros(n_bins, dtype=np.int64)
    np.cumsum(bin_counts[:-1], out=bin_starts[1:])
    # Stable counting sort: argsort with a stable algorithm on the bin index.
    permutation = np.argsort(bin_index, kind="stable").astype(np.int64)
    if permutation.shape[0] != m:
        raise AssertionError("permutation length mismatch")

    # Distinct fine-grid cells containing points (for the contention model).
    cell_index = None
    stride = 1
    for d in range(len(fine_shape)):
        cell = np.floor(grid_coords[d]).astype(np.int64)
        np.clip(cell, 0, fine_shape[d] - 1, out=cell)
        cell_index = cell * stride if cell_index is None else cell_index + cell * stride
        stride *= int(fine_shape[d])
    n_occupied_cells = int(np.unique(cell_index).shape[0])

    return BinSort(
        permutation=permutation,
        bin_index=bin_index,
        bin_counts=bin_counts,
        bin_starts=bin_starts,
        bins_per_dim=bins_per_dim,
        bin_shape=tuple(int(b) for b in bin_shape),
        fine_shape=tuple(int(n) for n in fine_shape),
        n_occupied_cells=n_occupied_cells,
    )


@dataclass
class SpreadStats:
    """Occupancy statistics of a point set, decoupled from the actual points.

    The spreading/interpolation *cost* estimators only need these aggregate
    quantities (they duck-type against :class:`BinSort`).  A ``SpreadStats``
    can therefore describe a paper-scale problem (hundreds of millions of
    points) that was *sampled* at a smaller size and rescaled -- this is how
    the benchmark harness models Table-I-sized problems without materializing
    them (see :mod:`repro.metrics.modeling`).
    """

    n_points: int
    bin_counts: np.ndarray
    bins_per_dim: tuple
    bin_shape: tuple
    fine_shape: tuple
    n_occupied_cells: int = 1

    @property
    def n_bins(self):
        return int(np.prod(self.bins_per_dim))

    @property
    def n_nonempty_bins(self):
        return int(np.count_nonzero(self.bin_counts))

    @classmethod
    def from_binsort(cls, sort):
        return cls(
            n_points=sort.n_points,
            bin_counts=np.asarray(sort.bin_counts, dtype=np.float64),
            bins_per_dim=sort.bins_per_dim,
            bin_shape=sort.bin_shape,
            fine_shape=sort.fine_shape,
            n_occupied_cells=getattr(sort, "n_occupied_cells", 1),
        )

    def scaled(self, target_points):
        """Rescale the statistics to describe ``target_points`` points.

        Bin counts scale proportionally, which preserves the occupancy
        *pattern* (which bins are populated and in what ratios) while the
        totals match the target problem size.
        """
        target_points = int(target_points)
        if target_points < 1:
            raise ValueError("target_points must be >= 1")
        if self.n_points < 1:
            raise ValueError("cannot scale empty statistics")
        factor = target_points / float(self.n_points)
        # The occupied-cell count is kept from the sample: scaling it up would
        # only matter when it is already large enough that contention is nil.
        return SpreadStats(
            n_points=target_points,
            bin_counts=np.asarray(self.bin_counts, dtype=np.float64) * factor,
            bins_per_dim=self.bins_per_dim,
            bin_shape=self.bin_shape,
            fine_shape=self.fine_shape,
            n_occupied_cells=self.n_occupied_cells,
        )


def estimate_subproblem_count(bin_counts, max_subproblem_size):
    """Number of SM subproblems implied by a bin histogram (real or scaled)."""
    if max_subproblem_size <= 0:
        raise ValueError("max_subproblem_size must be positive")
    counts = np.asarray(bin_counts, dtype=np.float64)
    counts = counts[counts > 0]
    if counts.size == 0:
        return 0
    return int(np.sum(np.ceil(counts / float(max_subproblem_size))))


@dataclass
class Subproblems:
    """SM-method subproblem decomposition (paper Sec. III-A Step 1).

    Each subproblem ``k`` covers the points
    ``sort.permutation[offsets[k] : offsets[k] + counts[k]]`` and is
    associated with bin ``bin_ids[k]`` (all of its points lie in that bin).
    """

    bin_ids: np.ndarray     # (n_sub,)
    offsets: np.ndarray     # (n_sub,) offsets into the *sorted* point order
    counts: np.ndarray      # (n_sub,)
    max_size: int

    @property
    def n_subproblems(self):
        return self.bin_ids.shape[0]


def make_subproblems(sort, max_subproblem_size):
    """Split every nonempty bin's point segment into blocks of <= Msub points."""
    if max_subproblem_size <= 0:
        raise ValueError("max_subproblem_size must be positive")
    bin_ids = []
    offsets = []
    counts = []
    nonempty = np.nonzero(sort.bin_counts)[0]
    for b in nonempty:
        count = int(sort.bin_counts[b])
        start = int(sort.bin_starts[b])
        n_blocks = -(-count // max_subproblem_size)
        for j in range(n_blocks):
            block_start = start + j * max_subproblem_size
            block_count = min(max_subproblem_size, start + count - block_start)
            bin_ids.append(int(b))
            offsets.append(block_start)
            counts.append(block_count)
    return Subproblems(
        bin_ids=np.asarray(bin_ids, dtype=np.int64),
        offsets=np.asarray(offsets, dtype=np.int64),
        counts=np.asarray(counts, dtype=np.int64),
        max_size=int(max_subproblem_size),
    )


def binsort_kernel_profiles(n_points, n_bins, ndim, real_itemsize, threads_per_block=128):
    """Setup-phase kernel profiles for the bin sort.

    The CUDA implementation uses a handful of kernels: compute bin index
    (stream the coordinates), histogram the bins (atomics over ``n_bins``
    addresses), exclusive scan of the histogram, and scatter of the point
    indices into the permuted order.  We price each as a streaming pass with
    the appropriate atomic/scatter behaviour.
    """
    profiles = []
    coord_bytes = n_points * ndim * real_itemsize
    index_bytes = n_points * 8  # int64 bin index / permutation entries

    profiles.append(
        KernelProfile(
            name="binsort_compute_index",
            grid_blocks=max(1.0, n_points / threads_per_block),
            block_threads=threads_per_block,
            flops=6.0 * ndim * n_points,
            stream_bytes=coord_bytes + index_bytes,
        )
    )
    profiles.append(
        KernelProfile(
            name="binsort_histogram",
            grid_blocks=max(1.0, n_points / threads_per_block),
            block_threads=threads_per_block,
            stream_bytes=index_bytes,
            global_atomic_ops=float(n_points),
            global_atomic_sector_ops=float(n_points),
            global_atomic_distinct_addresses=max(1.0, float(n_bins)),
            global_atomic_miss_fraction=0.0,
        )
    )
    profiles.append(
        KernelProfile(
            name="binsort_scan",
            grid_blocks=max(1.0, n_bins / threads_per_block),
            block_threads=threads_per_block,
            stream_bytes=4.0 * n_bins * 8.0,
            flops=2.0 * n_bins,
        )
    )
    profiles.append(
        KernelProfile(
            name="binsort_scatter_permutation",
            grid_blocks=max(1.0, n_points / threads_per_block),
            block_threads=threads_per_block,
            stream_bytes=index_bytes,
            gather_sector_ops=float(n_points),
            gather_miss_fraction=0.3,
        )
    )
    return profiles
