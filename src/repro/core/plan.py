"""The cuFINUFFT plan interface: plan / set_pts / execute / destroy.

A :class:`Plan` mirrors the Python interface of the cuFINUFFT library
(Sec. V-A of the paper):

.. code-block:: python

    plan = Plan(nufft_type=1, n_modes=(256, 256, 256), eps=1e-5)
    plan.set_pts(x, y, z)              # bin-sorts the nonuniform points
    f = plan.execute(c)                # repeatable with new strength vectors
    plan.destroy()

The plan owns the kernel parameters, the fine-grid geometry, the precomputed
correction factors, the simulated device allocations (so GPU RAM usage can be
reported, Table I), and the pipeline profiles from which the paper's three
timings -- "exec", "total" and "total+mem" -- are derived by the cost model.
"""

from __future__ import annotations

import numpy as np

from ..gpu.costmodel import CostModel
from ..gpu.device import Device
from ..gpu.fft import DeviceFFT, fft_kernel_profile
from ..gpu.profiler import PipelineProfile
from ..kernels.es_kernel import ESKernel
from .binsort import (
    bin_sort,
    binsort_kernel_profiles,
    make_subproblems,
    to_grid_coordinates,
)
from .deconvolve import CorrectionFactors, deconvolve_kernel_profile
from .gridsize import fine_grid_shape
from .interp import interp_cached, interp_kernel_profiles, interpolate
from .options import Opts, Precision, SpreadMethod
from .spread import (
    spread_cached,
    spread_gm,
    spread_gm_sort,
    spread_kernel_profiles,
    spread_sm,
    spread_sm_kernel_profiles,
)
from .stencil import build_stencil_cache

__all__ = ["Plan", "CUDA_CONTEXT_MB"]

#: Baseline device memory claimed by a CUDA context + cuFFT/cuRAND libraries;
#: added to RAM reports so they are comparable with the paper's
#: ``nvidia-smi`` numbers (Table I reports 381 MB for a tiny problem).
CUDA_CONTEXT_MB = 377.0


class Plan:
    """A planned type-1 or type-2 NUFFT on the simulated GPU.

    Parameters
    ----------
    nufft_type : int
        1 (nonuniform -> uniform) or 2 (uniform -> nonuniform).
    n_modes : tuple of int
        Output (type 1) / input (type 2) mode counts ``(N1, N2[, N3])``.
        Only 2D and 3D are supported, as in the paper.
    n_trans : int, optional
        Number of transforms sharing the same nonuniform points (batched
        strength/coefficient vectors).
    eps : float, optional
        Requested relative tolerance; sets the kernel width via Eq. (6).
    opts : Opts, optional
        Tuning options; keyword overrides below take precedence.
    device : Device, optional
        Simulated device to run on (a fresh V100 by default).
    **opt_overrides
        Any :class:`~repro.core.options.Opts` field, e.g. ``method="SM"``,
        ``precision="double"``, ``bin_shape=(16, 16, 4)``.
    """

    def __init__(self, nufft_type, n_modes, n_trans=1, eps=1e-6, opts=None,
                 device=None, **opt_overrides):
        if nufft_type not in (1, 2):
            raise ValueError(f"nufft_type must be 1 or 2, got {nufft_type}")
        n_modes = tuple(int(n) for n in n_modes)
        if len(n_modes) not in (2, 3):
            raise ValueError(
                f"only 2D and 3D transforms are supported, got n_modes={n_modes}"
            )
        if any(n < 1 for n in n_modes):
            raise ValueError(f"all mode counts must be >= 1, got {n_modes}")
        if n_trans < 1:
            raise ValueError(f"n_trans must be >= 1, got {n_trans}")

        self.nufft_type = int(nufft_type)
        self.n_modes = n_modes
        self.ndim = len(n_modes)
        self.n_trans = int(n_trans)
        self.eps = float(eps)

        base_opts = opts if opts is not None else Opts()
        self.opts = base_opts.copy(**opt_overrides) if opt_overrides else base_opts.copy()
        self.precision = self.opts.precision
        self.method = self.opts.resolve_method(self.nufft_type, self.ndim, self.precision)

        self.device = device if device is not None else Device()
        self.cost_model = CostModel(
            spec=self.device.spec,
            precision_itemsize=self.precision.real_itemsize,
        )

        # Kernel, fine grid, correction factors (planning stage).
        self.kernel = ESKernel.from_tolerance(self.eps, upsampfac=self.opts.upsampfac)
        self.fine_shape = fine_grid_shape(
            self.n_modes, self.kernel.width, self.opts.upsampfac
        )
        self.bin_shape = self.opts.resolved_bin_shape(self.ndim)
        self.correction = CorrectionFactors(self.kernel, self.n_modes, self.fine_shape)

        # SM feasibility check mirrors paper Remark 2: fall back to GM-sort when
        # the padded bin no longer fits in shared memory.
        if self.method is SpreadMethod.SM:
            from ..gpu.threadblock import LaunchConfigError, check_shared_memory_fit

            try:
                check_shared_memory_fit(
                    self.bin_shape,
                    self.kernel.width,
                    self.precision.complex_itemsize,
                    self.device.spec,
                )
            except LaunchConfigError:
                self.method = SpreadMethod.GM_SORT

        # Device allocations that live for the duration of the plan.
        self._buffers = []
        cplx = self.precision.complex_dtype
        self._fine_grid_buf = self._alloc(self.fine_shape, cplx, "fine grid")
        self._cufft_workspace_buf = self._alloc(self.fine_shape, cplx, "cufft workspace")
        for d, (nm, fac) in enumerate(zip(self.n_modes, self.correction.factors)):
            self._alloc((nm,), self.precision.real_dtype, f"correction factors dim{d}")

        # Point state (populated by set_pts).
        self._grid_coords = None
        self._sort = None
        self._subproblems = None
        self._stencil = None
        self._point_buffers = []
        self.n_points = 0

        # Profiles.
        self._plan_pipeline = PipelineProfile()
        for buf in self.device.memory.live_buffers:
            self._plan_pipeline.add_transfer("alloc", buf.nbytes, buf.label)
        self._setup_pipeline = PipelineProfile()
        self._exec_pipeline = None
        self._destroyed = False

        self._fft = DeviceFFT(pipeline=None, warm=True)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _alloc(self, shape, dtype, label):
        buf = self.device.memory.allocate(shape, dtype, label=label)
        self._buffers.append(buf)
        return buf

    def _require_live(self):
        if self._destroyed:
            raise RuntimeError("plan has been destroyed")

    def _require_points(self):
        self._require_live()
        if self._grid_coords is None:
            raise RuntimeError("set_pts must be called before execute")

    # ------------------------------------------------------------------ #
    # set_pts
    # ------------------------------------------------------------------ #
    def set_pts(self, x, y, z=None):
        """Register (and bin-sort) the nonuniform points.

        Coordinates live in ``[-pi, pi)`` (any real values are folded in).
        Calling ``set_pts`` again replaces the previous points, exactly as in
        cuFINUFFT, so one plan can be reused across point sets of equal size
        or not.
        """
        self._require_live()
        coords = [np.asarray(x, dtype=np.float64), np.asarray(y, dtype=np.float64)]
        if self.ndim == 3:
            if z is None:
                raise ValueError("3D plan requires x, y and z coordinates")
            coords.append(np.asarray(z, dtype=np.float64))
        elif z is not None:
            raise ValueError("2D plan takes only x and y coordinates")
        m = coords[0].shape[0]
        for c in coords:
            if c.ndim != 1 or c.shape[0] != m:
                raise ValueError("coordinate arrays must be 1-D and of equal length")
        if m == 0:
            raise ValueError("at least one nonuniform point is required")

        # Release buffers from a previous set_pts.
        for buf in self._point_buffers:
            buf.free()
        self._point_buffers = []
        self._setup_pipeline = PipelineProfile()

        self.n_points = m
        self._grid_coords = [
            to_grid_coordinates(coords[d], self.fine_shape[d]) for d in range(self.ndim)
        ]

        real_dt = self.precision.real_dtype
        for d, c in enumerate(coords):
            buf = self.device.memory.from_host(c.astype(real_dt), label=f"points dim{d}")
            self._point_buffers.append(buf)
            self._setup_pipeline.add_transfer("h2d", buf.nbytes, f"points dim{d}")

        # Bin statistics are always computed (the contention model needs them);
        # the sort kernels are only charged when the method uses the sort.
        self._sort = bin_sort(self._grid_coords, self.fine_shape, self.bin_shape)
        self._subproblems = None

        # Plan-level stencil cache: the per-point kernel stencils (and, within
        # budget, the fused sparse spread/interp operator) depend only on the
        # points, so they are computed once here and reused by every execute.
        # Rebuilding on each set_pts call is the cache invalidation.
        self._stencil = None
        if self.opts.cache_stencils:
            self._stencil = build_stencil_cache(
                self._grid_coords,
                self.fine_shape,
                self.kernel,
                kernel_eval=self.opts.kernel_eval,
                fuse_budget=self.opts.stencil_budget,
            )
        if self.method is SpreadMethod.SM and self.nufft_type == 1:
            self._subproblems = make_subproblems(self._sort, self.opts.max_subproblem_size)

        if self.method in (SpreadMethod.GM_SORT, SpreadMethod.SM) and self.opts.sort_points:
            idx_bytes = 4 * m
            for label in ("bin index", "sort permutation"):
                buf = self.device.memory.from_host(
                    np.zeros(m, dtype=np.int32), label=label
                )
                self._point_buffers.append(buf)
                self._setup_pipeline.add_transfer("alloc", idx_bytes, label)
            for prof in binsort_kernel_profiles(
                m,
                self._sort.n_bins,
                self.ndim,
                self.precision.real_itemsize,
                self.opts.threads_per_block,
            ):
                self._setup_pipeline.add_kernel(prof, phase="setup")
            if self._subproblems is not None:
                self._setup_pipeline.add_kernel(
                    _subproblem_setup_profile(self._sort, self._subproblems),
                    phase="setup",
                )
        return self

    # ------------------------------------------------------------------ #
    # execute
    # ------------------------------------------------------------------ #
    def execute(self, data, out=None):
        """Run the planned transform on one or ``n_trans`` data vectors.

        Type 1: ``data`` holds strengths ``c_j`` of shape ``(M,)`` or
        ``(n_trans, M)``; returns mode arrays of shape ``n_modes`` or
        ``(n_trans, *n_modes)``.

        Type 2: ``data`` holds mode coefficients of shape ``n_modes`` or
        ``(n_trans, *n_modes)``; returns ``(M,)`` or ``(n_trans, M)``.

        In ``spread_only`` mode (used by the Fig. 2 / Fig. 3 benchmarks) the
        FFT and deconvolution are skipped: type 1 returns the fine grid and
        type 2 expects a fine-grid-shaped input to interpolate from.

        With the default ``cache_stencils`` option all ``n_trans`` transforms
        run through one fused pass per pipeline stage (spread / FFT /
        deconvolve or their type-2 transposes), reusing the stencils
        precomputed by :meth:`set_pts`; disabling the option falls back to the
        per-transform loop of the original implementation.
        """
        self._require_points()
        data = np.asarray(data)
        cplx = self.precision.complex_dtype

        batched, batch = self._validate_execute_shape(data)
        pipeline = PipelineProfile()
        self._fft.pipeline = pipeline

        stack = (data if batched else data[None]).astype(cplx, copy=False)
        if self.opts.cache_stencils:
            if self.nufft_type == 1:
                output = self._execute_type1_batched(stack, pipeline)
            else:
                output = self._execute_type2_batched(stack, pipeline)
        else:
            runner = self._execute_type1 if self.nufft_type == 1 else self._execute_type2
            output = np.stack([runner(stack[t], pipeline) for t in range(stack.shape[0])])

        self._record_execute_transfers(data, output, pipeline)
        self._exec_pipeline = pipeline

        output = output if batched else output[0]
        if out is not None:
            out[...] = output
            return out
        return output

    def _validate_execute_shape(self, data):
        m, cplx = self.n_points, self.precision.complex_dtype
        if self.nufft_type == 1:
            single_shape = (m,)
        elif self.opts.spread_only:
            single_shape = self.fine_shape
        else:
            single_shape = self.n_modes
        if data.shape == single_shape:
            if self.n_trans != 1:
                raise ValueError(
                    f"plan expects n_trans={self.n_trans} stacked inputs of shape {single_shape}"
                )
            return False, 1
        if data.shape == (self.n_trans,) + single_shape:
            return True, self.n_trans
        raise ValueError(
            f"data shape {data.shape} does not match expected {single_shape} "
            f"(or ({self.n_trans}, *{single_shape}) for batched transforms)"
        )

    def _spread_fine_grid(self, strengths, pipeline):
        """Spread one ``(M,)`` vector or a ``(n_trans, M)`` block.

        When the stencil cache carries the fused sparse operator, every method
        shares its accumulation pass (the method still determines the modelled
        kernel profiles, exactly as the numerics of GM / GM-sort / SM agree up
        to summation order); otherwise the method-specific spreader runs with
        whatever per-dimension stencils the cache holds.
        """
        cplx = self.precision.complex_dtype
        cache = self._stencil
        if cache is not None and cache.interp_matrix is not None:
            fine = spread_cached(self.fine_shape, strengths, cache, cplx)
        elif self.method is SpreadMethod.GM:
            fine = spread_gm(self.fine_shape, self._grid_coords, strengths, self.kernel,
                             cplx, cache=cache)
        elif self.method is SpreadMethod.GM_SORT:
            fine = spread_gm_sort(
                self.fine_shape, self._grid_coords, strengths, self.kernel, self._sort,
                cplx, cache=cache
            )
        else:
            if self._subproblems is None:
                self._subproblems = make_subproblems(self._sort, self.opts.max_subproblem_size)
            fine = spread_sm(
                self.fine_shape,
                self._grid_coords,
                strengths,
                self.kernel,
                self._sort,
                self._subproblems,
                cplx,
                cache=cache,
            )
        profiles = self._spread_profiles()
        n_trans = strengths.shape[0] if strengths.ndim == 2 else 1
        for _ in range(n_trans):
            for prof in profiles:
                pipeline.add_kernel(prof, phase="exec")
        return fine

    def _spread_profiles(self):
        if self.method is SpreadMethod.SM:
            if self._subproblems is None:
                self._subproblems = make_subproblems(self._sort, self.opts.max_subproblem_size)
            return spread_sm_kernel_profiles(
                self._sort,
                self.kernel,
                self.precision,
                self._subproblems,
                self.opts.threads_per_block,
                self.device.spec,
            )
        return spread_kernel_profiles(
            self.method,
            self._sort,
            self.kernel,
            self.precision,
            self.opts.threads_per_block,
            self.device.spec,
        )

    def _execute_type1(self, strengths, pipeline):
        cplx = self.precision.complex_dtype
        fine = self._spread_fine_grid(strengths, pipeline)
        if self.opts.spread_only:
            return fine
        fine_hat = self._fft.forward(fine.astype(np.complex128, copy=False))
        modes = self.correction.truncate_and_scale(fine_hat, dtype=cplx)
        pipeline.add_kernel(
            deconvolve_kernel_profile(self.n_modes, self.precision.complex_itemsize),
            phase="exec",
        )
        return modes

    def _execute_type1_batched(self, strengths, pipeline):
        """Fused type-1 execution of the whole ``(n_trans, M)`` strength block."""
        cplx = self.precision.complex_dtype
        n_trans = strengths.shape[0]
        fine = self._spread_fine_grid(strengths, pipeline)
        if self.opts.spread_only:
            return fine
        axes = tuple(range(1, self.ndim + 1))
        fine_hat = self._fft.forward(fine.astype(np.complex128, copy=False), axes=axes)
        modes = self.correction.truncate_and_scale(fine_hat, dtype=cplx)
        profile = deconvolve_kernel_profile(self.n_modes, self.precision.complex_itemsize)
        for _ in range(n_trans):
            pipeline.add_kernel(profile, phase="exec")
        return modes

    def _execute_type2_batched(self, modes, pipeline):
        """Fused type-2 execution of the whole ``(n_trans, *n_modes)`` block."""
        cplx = self.precision.complex_dtype
        n_trans = modes.shape[0]
        if self.opts.spread_only:
            fine = modes.astype(np.complex128, copy=False)
        else:
            fine = self.correction.pad_and_scale(modes, dtype=np.complex128)
            profile = deconvolve_kernel_profile(
                self.n_modes, self.precision.complex_itemsize, name="precorrect"
            )
            for _ in range(n_trans):
                pipeline.add_kernel(profile, phase="exec")
            fine = self._fft.inverse(fine, axes=tuple(range(1, self.ndim + 1)))
        method = self.method if self.method is not SpreadMethod.SM else SpreadMethod.GM_SORT
        cache = self._stencil
        if cache is not None and cache.interp_matrix is not None:
            result = interp_cached(fine, self._grid_coords, cache, cplx)
        else:
            result = interpolate(fine, self._grid_coords, self.kernel, method, self._sort,
                                 cplx, cache=cache)
        profiles = interp_kernel_profiles(
            method,
            self._sort,
            self.kernel,
            self.precision,
            self.opts.threads_per_block,
            self.device.spec,
        )
        for _ in range(n_trans):
            for prof in profiles:
                pipeline.add_kernel(prof, phase="exec")
        return result

    def _execute_type2(self, modes, pipeline):
        cplx = self.precision.complex_dtype
        if self.opts.spread_only:
            fine = modes.astype(np.complex128, copy=False)
        else:
            fine = self.correction.pad_and_scale(modes, dtype=np.complex128)
            pipeline.add_kernel(
                deconvolve_kernel_profile(self.n_modes, self.precision.complex_itemsize,
                                          name="precorrect"),
                phase="exec",
            )
            fine = self._fft.inverse(fine)
        method = self.method if self.method is not SpreadMethod.SM else SpreadMethod.GM_SORT
        result = interpolate(fine, self._grid_coords, self.kernel, method, self._sort, cplx)
        for prof in interp_kernel_profiles(
            method,
            self._sort,
            self.kernel,
            self.precision,
            self.opts.threads_per_block,
            self.device.spec,
        ):
            pipeline.add_kernel(prof, phase="exec")
        return result

    def _record_execute_transfers(self, data, output, pipeline):
        cplx_sz = self.precision.complex_itemsize
        in_elems = int(np.prod(data.shape))
        out_elems = int(np.prod(np.shape(output)))
        pipeline.add_transfer("h2d", in_elems * cplx_sz, "input data")
        pipeline.add_transfer("d2h", out_elems * cplx_sz, "output data")

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def timings(self):
        """Modelled seconds: ``exec``, ``setup``, ``total``, ``mem``, ``total+mem``.

        ``exec`` covers the kernels of the most recent :meth:`execute` call;
        ``setup`` the bin-sort of the most recent :meth:`set_pts`; ``mem`` the
        host<->device transfers and plan allocations.  This is exactly the
        decomposition the paper uses for its three reported timings.
        """
        contention = self.device.contention_factor
        combined = PipelineProfile()
        combined.merge(self._plan_pipeline)
        combined.merge(self._setup_pipeline)
        if self._exec_pipeline is not None:
            combined.merge(self._exec_pipeline)
        return self.cost_model.pipeline_times(combined, contention_factor=contention)

    def ns_per_point(self, key="exec"):
        """Timing per nonuniform point in nanoseconds (the paper's y-axis)."""
        if self.n_points == 0:
            raise RuntimeError("set_pts must be called before ns_per_point")
        t = self.timings()[key]
        return 1e9 * t / (self.n_points * self.n_trans)

    def gpu_ram_mb(self, include_context=True):
        """Simulated device memory in MB, ``nvidia-smi`` style (Table I)."""
        mb = self.device.memory.allocated_mb
        return mb + (CUDA_CONTEXT_MB if include_context else 0.0)

    def spread_fraction(self):
        """Fraction of "exec" time spent in spreading/interpolation kernels."""
        if self._exec_pipeline is None:
            raise RuntimeError("execute must be called before spread_fraction")
        contention = self.device.contention_factor
        total = 0.0
        spread = 0.0
        for prof in self._exec_pipeline.exec_kernels():
            t = self.cost_model.kernel_time(prof, contention)
            total += t
            if prof.name.startswith(("spread", "interp")):
                spread += t
        return spread / total if total > 0 else 0.0

    def report(self):
        """Multi-line human-readable summary of the plan and its last run."""
        lines = [
            f"cuFINUFFT-repro plan: type {self.nufft_type}, {self.ndim}D, "
            f"modes {self.n_modes}, n_trans={self.n_trans}",
            f"  precision: {self.precision.value}, method: {self.method.value}",
            f"  {self.kernel.describe()}",
            f"  fine grid: {self.fine_shape}, bins: {self.bin_shape}, "
            f"Msub={self.opts.max_subproblem_size}",
            f"  device: {self.device.spec.name}, RAM {self.gpu_ram_mb():.0f} MB",
        ]
        if self._grid_coords is not None:
            lines.append(f"  points: {self.n_points}")
            if self._stencil is not None:
                kind = ("sparse-op" if self._stencil.interp_matrix is not None
                        else "fused" if self._stencil.is_fused else "per-dim")
                lines.append(
                    f"  stencil cache: {kind} ({self._stencil.kernel_eval}), "
                    f"{self._stencil.nbytes() / 1e6:.1f} MB host"
                )
        if self._exec_pipeline is not None:
            t = self.timings()
            lines.append(
                "  modelled timings: "
                + ", ".join(f"{k}={v * 1e3:.3f} ms" for k, v in t.items())
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def destroy(self):
        """Free all simulated device allocations held by the plan."""
        if self._destroyed:
            return
        for buf in self._point_buffers:
            buf.free()
        for buf in self._buffers:
            buf.free()
        self._point_buffers = []
        self._buffers = []
        self._stencil = None
        self._destroyed = True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.destroy()
        return False

    def __del__(self):  # pragma: no cover - defensive cleanup
        try:
            self.destroy()
        except Exception:
            pass


def _subproblem_setup_profile(sort, subproblems):
    """Setup-phase cost of building the subproblem lists (SM step 1)."""
    from ..gpu.profiler import KernelProfile

    n_bins = sort.n_bins
    n_sub = subproblems.n_subproblems
    return KernelProfile(
        name="sm_subproblem_setup",
        grid_blocks=max(1.0, n_bins / 128.0),
        block_threads=128.0,
        flops=4.0 * n_bins,
        stream_bytes=8.0 * (n_bins + 3.0 * n_sub),
    )
