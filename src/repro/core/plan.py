"""The cuFINUFFT plan interface: plan / set_pts / execute / destroy.

A :class:`Plan` mirrors the Python interface of the cuFINUFFT library
(Sec. V-A of the paper):

.. code-block:: python

    plan = Plan(nufft_type=1, n_modes=(256, 256, 256), eps=1e-5)
    plan.set_pts(x, y, z)              # bin-sorts the nonuniform points
    f = plan.execute(c)                # repeatable with new strength vectors
    plan.destroy()

Transforms of types 1, 2 and 3 are supported in one, two and three
dimensions.  ``execute`` is an explicit stage pipeline -- spread -> FFT ->
deconvolve for type 1, deconvolve -> FFT -> interpolate for type 2, and the
type-2∘scale∘type-1 composition over a rescaled fine grid for type 3 -- where
every stage is dispatched through the plan's
:class:`~repro.backends.base.ExecutionBackend` (``Opts.backend``): exact
per-transform ``reference`` numerics, the fused ``cached`` fast path, or the
profiled ``device_sim`` default.

The plan owns the kernel parameters, the fine-grid geometry, the precomputed
correction factors, the simulated device allocations (so GPU RAM usage can be
reported, Table I), and the pipeline profiles from which the paper's three
timings -- "exec", "total" and "total+mem" -- are derived by the cost model.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..backends import get_backend
from ..gpu.costmodel import CostModel
from ..gpu.device import Device
from ..gpu.fft import DeviceFFT
from ..gpu.profiler import PipelineProfile
from ..kernels.es_kernel import ESKernel
from ..metrics import allocs
from .binsort import (
    bin_sort,
    binsort_kernel_profiles,
    make_subproblems,
    to_grid_coordinates,
)
from .deconvolve import CorrectionFactors
from .gridsize import fine_grid_shape, next_smooth_even_235
from .options import Opts, SpreadMethod
from .stencil import build_stencil_cache
from .workspace import Workspace

__all__ = ["Plan", "CUDA_CONTEXT_MB"]

#: Baseline device memory claimed by a CUDA context + cuFFT/cuRAND libraries;
#: added to RAM reports so they are comparable with the paper's
#: ``nvidia-smi`` numbers (Table I reports 381 MB for a tiny problem).
CUDA_CONTEXT_MB = 377.0

_COORD_NAMES = ("x", "y", "z")
_TARGET_NAMES = ("s", "t", "u")


class Plan:
    """A planned type-1, type-2 or type-3 NUFFT on the simulated GPU.

    Parameters
    ----------
    nufft_type : int
        1 (nonuniform -> uniform), 2 (uniform -> nonuniform) or
        3 (nonuniform -> nonuniform).
    n_modes : tuple of int, or int
        Output (type 1) / input (type 2) mode counts ``(N1[, N2[, N3]])``.
        A type-3 transform has no uniform modes: pass the dimension instead
        (``Plan(3, 2)``), or a tuple whose length gives the dimension.
    n_trans : int, optional
        Number of transforms sharing the same nonuniform points (batched
        strength/coefficient vectors).
    eps : float, optional
        Requested relative tolerance; sets the kernel width via Eq. (6).
    opts : Opts, optional
        Tuning options; keyword overrides below take precedence.
    device : Device, optional
        Simulated device to run on (a fresh V100 by default).
    tune : str, optional
        Plan-parameter autotuning mode (see :mod:`repro.tuning`): ``"off"``
        (default, the paper's hard-coded Remark-1/2 choices), ``"model"``
        (search method/bins/``Msub``/threads against the cost model at
        ``set_pts`` time, using the actual point coordinates) or
        ``"measure"`` (additionally re-rank the model's finalists by
        executing small real plans).  The winning configuration is cached by
        problem signature in the tuner's :class:`~repro.tuning.TuningCache`.
    tuner : Autotuner, optional
        Tuner to consult when ``tune != "off"``; defaults to the process-wide
        :func:`repro.tuning.default_autotuner`, so plans share one cache.
    **opt_overrides
        Any :class:`~repro.core.options.Opts` field, e.g. ``method="SM"``,
        ``precision="double"``, ``backend="cached"``, ``bin_shape=(16, 16, 4)``
        or ``isign=+1`` (exponent sign; defaults to the paper's per-type
        convention, ``-1`` for type 1 and ``+1`` for types 2 and 3).

    A plan is a context manager: leaving the ``with`` block calls
    :meth:`destroy`, which is idempotent (a destroyed plan only refuses new
    work, it never errors on repeated destruction).
    """

    def __init__(self, nufft_type, n_modes, n_trans=1, eps=1e-6, opts=None,
                 device=None, tune="off", tuner=None, artifact_store=None,
                 **opt_overrides):
        if nufft_type not in (1, 2, 3):
            raise ValueError(f"nufft_type must be 1, 2 or 3, got {nufft_type}")
        n_trans_f = float(n_trans)
        if not np.isfinite(n_trans_f) or n_trans_f != int(n_trans_f):
            raise ValueError(
                f"n_trans must be an integral number of transforms, got {n_trans!r}"
            )
        if n_trans_f < 1:
            raise ValueError(f"n_trans must be >= 1, got {n_trans}")
        eps = float(eps)
        if not np.isfinite(eps) or eps <= 0.0:
            raise ValueError(f"eps must be a finite positive tolerance, got {eps}")

        self.nufft_type = int(nufft_type)
        if self.nufft_type == 3:
            if np.isscalar(n_modes):
                ndim = int(n_modes)
            else:
                ndim = len(tuple(n_modes))
            if ndim not in (1, 2, 3):
                raise ValueError(
                    f"type-3 plans support dimensions 1-3, got dimension {ndim}"
                )
            self.n_modes = None
            self.ndim = ndim
        else:
            n_modes = tuple(int(n) for n in n_modes)
            if len(n_modes) not in (1, 2, 3):
                raise ValueError(
                    f"only 1D, 2D and 3D transforms are supported, got n_modes={n_modes}"
                )
            if any(n < 1 for n in n_modes):
                raise ValueError(f"all mode counts must be >= 1, got {n_modes}")
            self.n_modes = n_modes
            self.ndim = len(n_modes)
        self.n_trans = int(n_trans_f)
        self.eps = eps

        from ..tuning import TUNE_MODES

        if tune not in TUNE_MODES:
            raise ValueError(f"tune must be one of {TUNE_MODES}, got {tune!r}")
        self.tune_mode = tune
        self._tuner = tuner
        #: Warm-state :class:`~repro.artifacts.ArtifactStore` this plan loads
        #: stencil caches (and Horner fits) from instead of recomputing.
        #: ``None`` keeps the plan self-contained.
        self.artifact_store = artifact_store
        #: :class:`~repro.tuning.TuningResult` applied by the last ``set_pts``
        #: (None when tuning is off or no points have been set yet).
        self.tuned = None

        base_opts = opts if opts is not None else Opts()
        self.opts = base_opts.copy(**opt_overrides) if opt_overrides else base_opts.copy()
        # Pristine pre-tuning options: every tuning run searches from (and
        # reports its speedup against) the configuration the caller asked
        # for, not whatever a previous set_pts tuned the plan to.
        self._pretune_opts = self.opts.copy()
        self.precision = self.opts.precision
        #: Exponent sign ``+1``/``-1`` of this transform (``Opts.isign``,
        #: defaulting to the paper's per-type convention).
        self.isign = self.opts.resolve_isign(self.nufft_type)
        self.method = self.opts.resolve_method(self.nufft_type, self.ndim, self.precision)
        try:
            self.backend = get_backend(self.opts.resolve_backend())
        except KeyError as exc:
            raise ValueError(str(exc)) from None
        if self.nufft_type == 3 and self.opts.spread_only:
            raise ValueError("spread_only is not supported for type-3 plans")

        self.device = device if device is not None else Device()
        self.cost_model = CostModel(
            spec=self.device.spec,
            precision_itemsize=self.precision.real_itemsize,
        )

        # Kernel, fine grid, correction factors (planning stage).  A type-3
        # plan defers its fine-grid geometry to set_pts: the grid depends on
        # the spatial and spectral extents of the points themselves.
        self.kernel = ESKernel.from_tolerance(self.eps, upsampfac=self.opts.upsampfac)
        self.bin_shape = self.opts.resolved_bin_shape(self.ndim)
        if self.nufft_type == 3:
            self.fine_shape = None
            self.correction = None
        else:
            self.fine_shape = fine_grid_shape(
                self.n_modes, self.kernel.width, self.opts.upsampfac
            )
            self.correction = CorrectionFactors(self.kernel, self.n_modes, self.fine_shape)

        # SM feasibility check mirrors paper Remark 2: fall back to GM-sort when
        # the padded bin no longer fits in shared memory.
        self._apply_sm_fallback()

        # Device allocations that live for the duration of the plan.  The
        # fine grid and the cuFFT workspace live in the plan's Workspace:
        # allocated once (eagerly, sized for the full n_trans batch, so RAM
        # reports include them before the first execute) and reused by every
        # execute call.  A type-3 plan defers them to set_pts, where the
        # derived fine-grid geometry becomes known.
        self._buffers = []
        self._plan_pipeline = PipelineProfile()
        self.workspace = Workspace(self.device, reuse=self.opts.reuse_workspace)
        cplx = self.precision.complex_dtype
        if self.nufft_type != 3:
            batch = (self.n_trans,) + self.fine_shape
            self.workspace.array("fine grid", batch, cplx,
                                 pipeline=self._plan_pipeline)
            self.workspace.array("cufft workspace", batch, cplx,
                                 pipeline=self._plan_pipeline)
            for d, (nm, fac) in enumerate(zip(self.n_modes, self.correction.factors)):
                self._alloc((nm,), self.precision.real_dtype, f"correction factors dim{d}")

        # Point state (populated by set_pts).  set_pts is all-or-nothing: a
        # call that raises during validation or host-side planning leaves the
        # previous point set fully usable (see the set_pts docstring).  Only
        # a simulated device-allocation failure mid-upload drops to this
        # explicit "no points" state (``_points_ready`` False), where execute
        # refuses to run rather than operating on half-initialized geometry.
        self._points_ready = False
        self._grid_coords = None
        self._sort = None
        self._subproblems = None
        self._stencil = None
        self._point_buffers = []
        self.n_points = 0
        self.n_targets = 0

        # Type-3 state (populated by set_pts on type-3 plans).
        self._t3_inner = None
        self._t3_prephase = None
        self._t3_postphase = None

        # Profiles.  Only this plan's own allocations are recorded: on a
        # shared device (multiple plans, or a type-3 plan's inner type-2)
        # other plans' live buffers must not be double-counted in "mem".
        # (Workspace buffers recorded themselves into _plan_pipeline above.)
        for buf in self._buffers:
            self._plan_pipeline.add_transfer("alloc", buf.nbytes, buf.label)
        self._setup_pipeline = PipelineProfile()
        self._exec_pipeline = None
        self._destroyed = False

        self._fft = DeviceFFT(pipeline=None, warm=True)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    @property
    def interp_method(self):
        """Interpolation strategy: SM has no interpolation analogue, so it
        falls back to GM-sort (paper Sec. III-B)."""
        return SpreadMethod.GM_SORT if self.method is SpreadMethod.SM else self.method

    def _alloc(self, shape, dtype, label):
        buf = self.device.memory.allocate(shape, dtype, label=label)
        self._buffers.append(buf)
        return buf

    def _point_alloc(self, shape, dtype, label):
        """Allocate a buffer tied to the current point set (freed by set_pts)."""
        buf = self.device.memory.allocate(shape, dtype, label=label)
        self._point_buffers.append(buf)
        self._setup_pipeline.add_transfer("alloc", buf.nbytes, label)
        return buf

    def _require_live(self):
        if self._destroyed:
            raise RuntimeError("plan has been destroyed")

    def _require_points(self):
        self._require_live()
        if not self._points_ready:
            raise RuntimeError("set_pts must be called before execute")

    def _ensure_subproblems(self):
        """SM subproblem decomposition, built on first use after set_pts."""
        if self._subproblems is None:
            self._subproblems = make_subproblems(self._sort, self.opts.max_subproblem_size)
        return self._subproblems

    def _apply_sm_fallback(self):
        """Paper Remark 2: SM falls back to GM-sort when the padded bin
        exceeds the device's shared memory."""
        if self.method is not SpreadMethod.SM:
            return
        from ..gpu.threadblock import LaunchConfigError, check_shared_memory_fit

        try:
            check_shared_memory_fit(
                self.bin_shape,
                self.kernel.width,
                self.precision.complex_itemsize,
                self.device.spec,
            )
        except LaunchConfigError:
            self.method = SpreadMethod.GM_SORT

    # ------------------------------------------------------------------ #
    # autotuning (consulted by set_pts, when enabled)
    # ------------------------------------------------------------------ #
    def _maybe_tune(self, grid_modes, n_points, coords=None):
        """Tune the spread parameters for the incoming point set.

        Runs *before* the previous point state is released, so a tuning
        failure preserves the all-or-nothing ``set_pts`` contract.  The tuned
        fields (method, bin shape, ``Msub``, threads per block, stencil
        budget) replace the current options; the execution backend is left
        untouched -- a live plan has already bound it.
        """
        if self.tune_mode == "off":
            return
        from ..tuning import TuningProblem, default_autotuner

        if self._tuner is None:
            self._tuner = default_autotuner()
        problem = TuningProblem(
            self.nufft_type, tuple(grid_modes), n_points, self.eps,
            self.precision.value, coords=coords,
        )
        result = self._tuner.tune(problem, mode=self.tune_mode,
                                  base_opts=self._pretune_opts,
                                  spec=self.device.spec)
        self.tuned = result
        self.opts = result.apply_to(self._pretune_opts, include_backend=False)
        self.method = self.opts.resolve_method(self.nufft_type, self.ndim,
                                               self.precision)
        self.bin_shape = self.opts.resolved_bin_shape(self.ndim)
        self._apply_sm_fallback()

    # ------------------------------------------------------------------ #
    # set_pts
    # ------------------------------------------------------------------ #
    def set_pts(self, x, y=None, z=None, s=None, t=None, u=None):
        """Register (and bin-sort) the nonuniform points.

        For type-1/2 plans, pass one coordinate array per dimension
        (``x[, y[, z]]``), each living in ``[-pi, pi)`` (any real values are
        folded in).  A type-3 plan additionally takes one *target frequency*
        array per dimension (``s[, t[, u]]``), which may be arbitrary reals:
        set_pts derives the rescaled fine grid covering both extents.

        Calling ``set_pts`` again replaces the previous points, exactly as in
        cuFINUFFT, so one plan can be reused across point sets of equal size
        or not.

        Failure contract (all transform types): set_pts is all-or-nothing.
        Every validation and host-side planning step -- shape/finiteness
        checks, the type-3 fine-grid derivation and its kernel-transform
        positivity check -- runs *before* the previous point set is released,
        so a ``set_pts`` that raises leaves the plan executing on the old
        points exactly as if it had never been called.  Only a simulated
        device-allocation failure partway through the upload (e.g. OOM on the
        type-3 fine grid) leaves the plan in the explicit "no points" state,
        where ``execute`` raises until a subsequent set_pts succeeds.
        """
        self._require_live()
        coords = self._validated_arrays((x, y, z), _COORD_NAMES, "coordinate")
        if self.nufft_type == 3:
            targets = self._validated_arrays((s, t, u), _TARGET_NAMES,
                                             "target frequency")
            return self._set_pts_type3(coords, targets)
        if s is not None or t is not None or u is not None:
            raise ValueError(
                "target frequencies (s, t, u) are only accepted by type-3 plans"
            )

        # Autotuning (when enabled) re-selects method/bins/Msub for this
        # point set; it runs on the validated inputs before any state is
        # released, like every other fallible planning step.
        self._maybe_tune(self.n_modes, coords[0].shape[0], coords=coords)

        # All remaining planning is host-side arithmetic that cannot fail on
        # validated inputs, so compute it before releasing the old point set
        # (the all-or-nothing contract above).
        grid_coords = [
            to_grid_coordinates(coords[d], self.fine_shape[d]) for d in range(self.ndim)
        ]
        self._release_point_state()
        self.n_points = coords[0].shape[0]
        self._grid_coords = grid_coords
        self._upload_points(coords)
        self._build_point_precompute()
        self._points_ready = True
        return self

    def _validated_arrays(self, arrays, names, what):
        """Check that exactly the first ``ndim`` arrays are given, 1-D, equal."""
        for d in range(self.ndim):
            if arrays[d] is None:
                raise ValueError(
                    f"{self.ndim}D plan requires {what} arrays "
                    f"{', '.join(names[:self.ndim])}"
                )
        for d in range(self.ndim, len(arrays)):
            if arrays[d] is not None:
                raise ValueError(
                    f"{self.ndim}D plan takes only the {what} arrays "
                    f"{', '.join(names[:self.ndim])}"
                )
        out = [np.asarray(a, dtype=np.float64) for a in arrays[:self.ndim]]
        m = out[0].shape[0] if out[0].ndim == 1 else -1
        for d, a in enumerate(out):
            if a.ndim != 1 or a.shape[0] != m:
                raise ValueError(f"{what} arrays must be 1-D and of equal length")
            if not np.all(np.isfinite(a)):
                raise ValueError(
                    f"{what} array {names[d]!r} contains non-finite values "
                    "(NaN or Inf); nonuniform points must be finite reals"
                )
        if m == 0:
            raise ValueError(f"at least one nonuniform {what} is required")
        return out

    def _release_point_state(self):
        """Free buffers and precompute tied to the previous point set.

        Callers must complete every fallible validation/planning step *before*
        invoking this (the all-or-nothing set_pts contract).  Once called, the
        plan has no usable points until the in-flight set_pts finishes, so a
        simulated allocation failure during the upload leaves the plan
        refusing execute with a clear error instead of crashing deep in a
        stage on stale geometry.
        """
        self._points_ready = False
        for buf in self._point_buffers:
            buf.free()
        self._point_buffers = []
        self._setup_pipeline = PipelineProfile()
        self._grid_coords = None
        self._sort = None
        self._subproblems = None
        self._stencil = None
        if self._t3_inner is not None:
            self._t3_inner.destroy()
            self._t3_inner = None
        self._t3_prephase = None
        self._t3_postphase = None

    def _upload_points(self, coords):
        real_dt = self.precision.real_dtype
        for d, c in enumerate(coords):
            buf = self.device.memory.from_host(c.astype(real_dt), label=f"points dim{d}")
            self._point_buffers.append(buf)
            self._setup_pipeline.add_transfer("h2d", buf.nbytes, f"points dim{d}")

    def _build_point_precompute(self):
        """Bin sort, stencil cache, subproblem split and setup profiles.

        Shared by every transform type; for type 3 it runs on the rescaled
        source coordinates over the derived fine grid.
        """
        m = self.n_points
        # Bin statistics are always computed (the contention model needs them);
        # the sort kernels are only charged when the method uses the sort.
        self._sort = bin_sort(self._grid_coords, self.fine_shape, self.bin_shape)
        self._subproblems = None

        # Plan-level stencil cache: the per-point kernel stencils (and, within
        # budget, the fused sparse spread/interp operator) depend only on the
        # points, so they are computed once here and reused by every execute.
        # Rebuilding on each set_pts call is the cache invalidation.  Whether
        # the cache exists at all is the backend's call: the reference backend
        # re-evaluates kernels on the fly, the cached backend requires it.
        self._stencil = None
        if self.backend.wants_stencil_cache(self.opts):
            points_digest = None
            if self.artifact_store is not None:
                h = hashlib.blake2b(digest_size=16)
                for c in self._grid_coords:
                    h.update(np.ascontiguousarray(c).tobytes())
                points_digest = h.hexdigest()
            self._stencil = build_stencil_cache(
                self._grid_coords,
                self.fine_shape,
                self.kernel,
                kernel_eval=self.opts.kernel_eval,
                fuse_budget=self.opts.stencil_budget,
                store=self.artifact_store,
                points_digest=points_digest,
            )
        if self.method is SpreadMethod.SM and self.nufft_type != 2:
            self._subproblems = make_subproblems(self._sort, self.opts.max_subproblem_size)

        if self.method in (SpreadMethod.GM_SORT, SpreadMethod.SM) and self.opts.sort_points:
            idx_bytes = 4 * m
            for label in ("bin index", "sort permutation"):
                buf = self.device.memory.from_host(
                    np.zeros(m, dtype=np.int32), label=label
                )
                self._point_buffers.append(buf)
                self._setup_pipeline.add_transfer("alloc", idx_bytes, label)
            for prof in binsort_kernel_profiles(
                m,
                self._sort.n_bins,
                self.ndim,
                self.precision.real_itemsize,
                self.opts.threads_per_block,
            ):
                self._setup_pipeline.add_kernel(prof, phase="setup")
            if self._subproblems is not None:
                self._setup_pipeline.add_kernel(
                    _subproblem_setup_profile(self._sort, self._subproblems),
                    phase="setup",
                )

    # ------------------------------------------------------------------ #
    # type-3 planning (the "scale" of the type-2∘scale∘type-1 composition)
    # ------------------------------------------------------------------ #
    def _set_pts_type3(self, coords, targets):
        """Derive the rescaled fine grid and plan the inner type-2 transform.

        Following the standard (FINUFFT) type-3 algorithm: with per-dimension
        spatial half-extent ``X`` (sources, centred at ``cx``) and spectral
        half-extent ``S`` (targets, centred at ``cs``), the fine grid size is
        ``nf ~ 2 sigma S X / pi + w`` and the scale factor
        ``gamma = nf / (2 sigma S)`` maps sources into ``[-pi, pi)``.
        ``execute`` then spreads the (pre-phased) strengths onto this grid,
        evaluates the grid's trigonometric sum at the rescaled targets with an
        inner type-2 plan, and divides by the kernel transform at the exact
        (non-integer) target frequencies.
        """
        m = coords[0].shape[0]
        nk = targets[0].shape[0]

        sigma = self.opts.upsampfac
        w = self.kernel.width
        fine = []
        gamma = []
        centers_x = []
        centers_s = []
        spread_half = []
        for d in range(self.ndim):
            xd, sd = coords[d], targets[d]
            cx = 0.5 * (float(xd.max()) + float(xd.min()))
            cs = 0.5 * (float(sd.max()) + float(sd.min()))
            half_x = float(np.abs(xd - cx).max())
            half_s = float(np.abs(sd - cs).max())
            # Degenerate extents (all sources and/or targets coincident):
            # ensure X*S is bounded away from zero, as FINUFFT's set_nhg does.
            if half_x == 0.0:
                half_x = 1.0 if half_s == 0.0 else max(half_x, 1.0 / half_s)
            if half_s == 0.0:
                half_s = max(half_s, 1.0 / half_x)
            nf = int(2.0 * sigma * half_s * half_x / np.pi + (w + 1))
            nf = next_smooth_even_235(max(nf, 2 * w))
            fine.append(nf)
            gamma.append(nf / (2.0 * sigma * half_s))
            centers_x.append(cx)
            centers_s.append(cs)
            spread_half.append(half_s)

        fine_shape = tuple(fine)
        grid_coords = [
            to_grid_coordinates((coords[d] - centers_x[d]) / gamma[d], fine_shape[d])
            for d in range(self.ndim)
        ]

        # Pre-phase e^{isign i cs.(x-cx)} folds the target centring into the
        # strengths; the post factors carry the source centring
        # e^{isign i s.cx} and the kernel deconvolution at the exact target
        # frequencies.  Every exponential in the composition (pre-phase,
        # inner type-2, post-phase) carries the plan's ``isign``.  The
        # positivity check below is the last step that can reject the inputs,
        # so everything up to here runs on locals: a failure preserves the
        # previous point set (the all-or-nothing set_pts contract).
        prephase = np.zeros(m)
        postphase = np.zeros(nk)
        factors = np.ones(nk)
        for d in range(self.ndim):
            prephase += centers_s[d] * (coords[d] - centers_x[d])
            postphase += centers_x[d] * targets[d]
            alpha = w * np.pi / fine_shape[d]
            xi = alpha * gamma[d] * (targets[d] - centers_s[d])
            phihat = self.kernel.fourier_transform(xi)
            if np.any(phihat <= 0):
                raise ValueError(
                    "kernel Fourier transform is not positive over the target "
                    "frequencies; the requested tolerance is unattainable"
                )
            factors *= (2.0 / w) / phihat

        # Tune the outer spread on the derived composition grid (the actual
        # spread coordinates are the rescaled sources; the tuner's sampled
        # statistics stand in for them).  Before _release_point_state, like
        # every other fallible step.
        self._maybe_tune(fine_shape, m)

        self._release_point_state()
        self.n_points = m
        self.n_targets = nk
        self.fine_shape = fine_shape
        self._grid_coords = grid_coords
        self._t3_prephase = np.exp(self.isign * 1j * prephase)
        self._t3_postphase = factors * np.exp(self.isign * 1j * postphase)

        # Workspace buffers of the composition, sized for the new geometry.
        # Allocated here (not lazily in execute) so a simulated OOM surfaces
        # during set_pts -- leaving the plan in the explicit "no points"
        # state -- and so steady-state executes start at zero allocations.
        # Matching shapes from a previous point set are reused in place.
        cplx = self.precision.complex_dtype
        batch = (self.n_trans,)
        self.workspace.array("fine grid", batch + self.fine_shape, cplx,
                             pipeline=self._setup_pipeline)
        self.workspace.array("t3 strengths", batch + (m,), cplx,
                             pipeline=self._setup_pipeline)
        self.workspace.array("t3 tau", batch + (nk,), cplx,
                             pipeline=self._setup_pipeline)
        self._upload_points(coords)
        for label, vec in (("t3 prephase", self._t3_prephase),
                           ("t3 deconvolve factors", self._t3_postphase)):
            buf = self.device.memory.from_host(vec.astype(cplx), label=label)
            self._point_buffers.append(buf)
            self._setup_pipeline.add_transfer("h2d", buf.nbytes, label)

        self._build_point_precompute()

        # Inner type-2 plan over the same backend: evaluates the fine grid's
        # trigonometric sum at the rescaled target frequencies, with the
        # composition's exponent sign (not the type-2 default).
        inner_opts = self.opts.copy(spread_only=False, bin_shape=None,
                                    isign=self.isign)
        self._t3_inner = Plan(2, self.fine_shape, n_trans=self.n_trans,
                              eps=self.eps, opts=inner_opts, device=self.device,
                              artifact_store=self.artifact_store)
        rescaled_targets = [
            (targets[d] - centers_s[d]) * (np.pi / (sigma * spread_half[d]))
            for d in range(self.ndim)
        ]
        self._t3_inner.set_pts(*rescaled_targets)
        self._setup_pipeline.merge(self._t3_inner._plan_pipeline)
        self._setup_pipeline.merge(self._t3_inner._setup_pipeline)
        self._points_ready = True
        return self

    # ------------------------------------------------------------------ #
    # execute
    # ------------------------------------------------------------------ #
    def execute(self, data, out=None):
        """Run the planned transform on one or ``n_trans`` data vectors.

        Type 1: ``data`` holds strengths ``c_j`` of shape ``(M,)`` or
        ``(n_trans, M)``; returns mode arrays of shape ``n_modes`` or
        ``(n_trans, *n_modes)``.

        Type 2: ``data`` holds mode coefficients of shape ``n_modes`` or
        ``(n_trans, *n_modes)``; returns ``(M,)`` or ``(n_trans, M)``.

        Type 3: ``data`` holds strengths of shape ``(M,)`` or
        ``(n_trans, M)``; returns target values of shape ``(N_k,)`` or
        ``(n_trans, N_k)``.

        In ``spread_only`` mode (used by the Fig. 2 / Fig. 3 benchmarks) the
        FFT and deconvolution are skipped: type 1 returns the fine grid and
        type 2 expects a fine-grid-shaped input to interpolate from.

        ``out``, when given, must be a numpy array of exactly the output
        shape and the plan's complex dtype; anything else raises
        ``ValueError`` rather than silently broadcasting.  The terminal stage
        writes directly into ``out`` (no intermediate output array), and
        conforming inputs -- the plan's complex dtype, any layout -- flow
        through the workspace-managed pipeline without allocating or copying:
        the per-execute :class:`~repro.metrics.allocs.AllocStats` attached to
        the pipeline profile (``last_exec_allocs``) records any deviation.

        Each stage runs on the plan's execution backend: the default
        ``device_sim`` fuses all ``n_trans`` transforms per stage (via the
        stencil cache precomputed by :meth:`set_pts`) and records the
        simulated-GPU kernel profiles; ``cached`` does the same without
        profiling; ``reference`` reproduces the original per-transform loop.
        """
        self._require_points()
        data = np.asarray(data)
        cplx = self.precision.complex_dtype

        batched = self._validate_execute_shape(data)
        self._validate_out(out, batched)
        backend = self.backend
        pipeline = PipelineProfile()
        self._fft.pipeline = pipeline if backend.records_profiles else None

        with allocs.track_allocs() as stats:
            # The exponent sign enters the uniform pipeline only through the
            # FFT direction (the kernel and the correction factors are real):
            # ``e^{-i}`` is the forward FFT, ``e^{+i}`` the unnormalized
            # inverse.  Conforming input (the plan's complex dtype, batched
            # or not, any strides) passes through without a copy.
            stack = allocs.as_dtype_counted(
                data if batched else data[None], cplx, "input dtype conversion"
            )
            out_block = self._acquire_out_block(out, batched)
            if self.nufft_type == 3:
                output = self._execute_type3(stack, out_block, pipeline)
            elif self.nufft_type == 1:
                if self.opts.spread_only:
                    output = backend.spread(self, stack, pipeline, out=out_block)
                else:
                    fine = backend.spread(
                        self, stack, pipeline, out=self._workspace_fine(pipeline)
                    )
                    if self.isign < 0:
                        fine_hat = backend.fft_forward(self, fine, pipeline)
                    else:
                        fine_hat = backend.fft_inverse(self, fine, pipeline)
                    self.workspace.adopt("cufft workspace", fine_hat,
                                         pipeline=pipeline)
                    output = backend.deconvolve(self, fine_hat, pipeline,
                                                out=out_block)
            else:
                if self.opts.spread_only:
                    fine = stack
                else:
                    fine = backend.precorrect(
                        self, stack, pipeline, out=self._workspace_fine(pipeline)
                    )
                    if self.isign > 0:
                        fine = backend.fft_inverse(self, fine, pipeline)
                    else:
                        fine = backend.fft_forward(self, fine, pipeline)
                    self.workspace.adopt("cufft workspace", fine,
                                         pipeline=pipeline)
                output = backend.interp(self, fine, pipeline, out=out_block)

            if output is not out_block:
                # Safety net for backends that ignore ``out=``: land the
                # result in the caller-visible storage (a counted copy).
                allocs.record_copy(out_block.nbytes, "terminal copy")
                out_block[...] = output
                output = out_block

        pipeline.allocs = stats
        self._record_execute_transfers(data, output, pipeline)
        self._exec_pipeline = pipeline

        if out is not None:
            return out
        return output if batched else output[0]

    def _workspace_fine(self, pipeline):
        """The plan's reusable batched fine-grid buffer (stages write into it)."""
        return self.workspace.array(
            "fine grid", (self.n_trans,) + self.fine_shape,
            self.precision.complex_dtype, pipeline=pipeline,
        )

    def _acquire_out_block(self, out, batched):
        """Batched view of the output storage the terminal stage writes into.

        The caller's ``out=`` array when given (never workspace memory --
        pooled plans must not leak views of reusable buffers), a fresh
        counted allocation otherwise.
        """
        if out is not None:
            return out if batched else out[None]
        shape = (self.n_trans,) + tuple(self._single_output_shape())
        block = np.empty(shape, dtype=self.precision.complex_dtype)
        allocs.record_alloc(block.nbytes, "output block")
        return block

    def _execute_type3(self, stack, out_block, pipeline):
        """Type 3 as spread -> (shift to modes) -> inner type 2 -> deconvolve."""
        ws = self.workspace
        cplx = self.precision.complex_dtype
        batch = (stack.shape[0],)
        pre = ws.array("t3 strengths", batch + (self.n_points,), cplx,
                       pipeline=pipeline)
        np.multiply(stack, self._t3_prephase[None, :], out=pre)
        fine = self.backend.spread(self, pre, pipeline,
                                   out=self._workspace_fine(pipeline))
        # The spatial fine grid, reordered so node l becomes centred mode
        # l - nf/2 (exact for the even grid sizes set_pts chooses): the
        # grid's trigonometric sum at a rescaled target is then a type-2
        # NUFFT evaluation.
        g = np.fft.fftshift(np.asarray(fine), axes=tuple(range(1, self.ndim + 1)))
        tau = ws.array("t3 tau", batch + (self.n_targets,), cplx,
                       pipeline=pipeline)
        self._t3_inner.execute(g, out=tau)
        np.multiply(tau, self._t3_postphase[None, :], out=out_block)
        inner_pipeline = self._t3_inner._exec_pipeline
        if self.backend.records_profiles and inner_pipeline is not None:
            # Adopt the inner transform's kernel profiles, but not its
            # synthetic input/output transfers: the fine grid never leaves
            # the device in the composed transform.
            for phase, prof in inner_pipeline.kernels:
                pipeline.add_kernel(prof, phase=phase)
        return out_block

    def _single_input_shape(self):
        if self.nufft_type in (1, 3):
            return (self.n_points,)
        if self.opts.spread_only:
            return self.fine_shape
        return self.n_modes

    def _single_output_shape(self):
        if self.nufft_type == 1:
            return self.fine_shape if self.opts.spread_only else self.n_modes
        if self.nufft_type == 2:
            return (self.n_points,)
        return (self.n_targets,)

    def _validate_execute_shape(self, data):
        single_shape = self._single_input_shape()
        if data.shape == single_shape:
            if self.n_trans != 1:
                raise ValueError(
                    f"plan expects n_trans={self.n_trans} stacked inputs of shape {single_shape}"
                )
            return False
        if data.shape == (self.n_trans,) + single_shape:
            return True
        raise ValueError(
            f"data shape {data.shape} does not match expected {single_shape} "
            f"(or ({self.n_trans}, *{single_shape}) for batched transforms)"
        )

    def _validate_out(self, out, batched):
        if out is None:
            return
        expected_shape = self._single_output_shape()
        if batched:
            expected_shape = (self.n_trans,) + tuple(expected_shape)
        expected_dtype = self.precision.complex_dtype
        if not isinstance(out, np.ndarray):
            raise ValueError(
                f"out must be a numpy array of shape {tuple(expected_shape)} and "
                f"dtype {np.dtype(expected_dtype).name}, got {type(out).__name__}"
            )
        if out.shape != tuple(expected_shape):
            raise ValueError(
                f"out has shape {out.shape}, expected {tuple(expected_shape)}"
            )
        if out.dtype != np.dtype(expected_dtype):
            raise ValueError(
                f"out has dtype {out.dtype}, expected {np.dtype(expected_dtype).name} "
                f"for a {self.precision.value}-precision plan"
            )

    def _record_execute_transfers(self, data, output, pipeline):
        cplx_sz = self.precision.complex_itemsize
        in_elems = int(np.prod(data.shape))
        out_elems = int(np.prod(np.shape(output)))
        pipeline.add_transfer("h2d", in_elems * cplx_sz, "input data")
        pipeline.add_transfer("d2h", out_elems * cplx_sz, "output data")

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def timings(self):
        """Modelled seconds: ``exec``, ``setup``, ``total``, ``mem``, ``total+mem``.

        ``exec`` covers the kernels of the most recent :meth:`execute` call;
        ``setup`` the bin-sort of the most recent :meth:`set_pts`; ``mem`` the
        host<->device transfers and plan allocations.  This is exactly the
        decomposition the paper uses for its three reported timings.  Only the
        ``device_sim`` backend records kernel profiles; on the pure-numerics
        backends the kernel components are zero and ``mem`` reflects the
        transfers alone.
        """
        contention = self.device.contention_factor
        combined = PipelineProfile()
        combined.merge(self._plan_pipeline)
        combined.merge(self._setup_pipeline)
        if self._exec_pipeline is not None:
            combined.merge(self._exec_pipeline)
        return self.cost_model.pipeline_times(combined, contention_factor=contention)

    @property
    def last_allocs(self):
        """:class:`~repro.metrics.allocs.AllocStats` of the most recent
        :meth:`execute` call (None before the first execute).

        In the steady state -- workspace reuse on, caller-provided ``out=``
        -- every counter is zero: no buffer is allocated and no array is
        copied on the hot path.  Without ``out=`` exactly one allocation (the
        fresh output block) is recorded; with ``reuse_workspace=False`` the
        per-execute churn the workspace eliminates becomes visible here.
        """
        if self._exec_pipeline is None:
            return None
        return self._exec_pipeline.allocs

    def ns_per_point(self, key="exec"):
        """Timing per nonuniform point in nanoseconds (the paper's y-axis)."""
        if self.n_points == 0:
            raise RuntimeError("set_pts must be called before ns_per_point")
        t = self.timings()[key]
        return 1e9 * t / (self.n_points * self.n_trans)

    def gpu_ram_mb(self, include_context=True):
        """Simulated device memory in MB, ``nvidia-smi`` style (Table I)."""
        mb = self.device.memory.allocated_mb
        return mb + (CUDA_CONTEXT_MB if include_context else 0.0)

    def spread_fraction(self):
        """Fraction of "exec" time spent in spreading/interpolation kernels."""
        if self._exec_pipeline is None:
            raise RuntimeError("execute must be called before spread_fraction")
        contention = self.device.contention_factor
        total = 0.0
        spread = 0.0
        for prof in self._exec_pipeline.exec_kernels():
            t = self.cost_model.kernel_time(prof, contention)
            total += t
            if prof.name.startswith(("spread", "interp")):
                spread += t
        return spread / total if total > 0 else 0.0

    def report(self):
        """Multi-line human-readable summary of the plan and its last run."""
        if self.nufft_type == 3:
            head = (f"cuFINUFFT-repro plan: type 3, {self.ndim}D, "
                    f"n_trans={self.n_trans}")
        else:
            head = (f"cuFINUFFT-repro plan: type {self.nufft_type}, {self.ndim}D, "
                    f"modes {self.n_modes}, n_trans={self.n_trans}")
        lines = [
            head,
            f"  precision: {self.precision.value}, method: {self.method.value}, "
            f"backend: {self.backend.name}, isign: {self.isign:+d}",
            f"  {self.kernel.describe()}",
            f"  fine grid: {self.fine_shape}, bins: {self.bin_shape}, "
            f"Msub={self.opts.max_subproblem_size}",
            f"  device: {self.device.spec.name}, RAM {self.gpu_ram_mb():.0f} MB",
        ]
        if self.tuned is not None:
            lines.append(
                f"  autotuned ({self.tuned.mode}): {self.tuned.speedup:.2f}x "
                f"modelled {self.tuned.objective} vs paper defaults "
                f"({self.tuned.n_candidates} candidates)"
            )
        if self._grid_coords is not None:
            pts = f"  points: {self.n_points}"
            if self.nufft_type == 3:
                pts += f", targets: {self.n_targets}"
            lines.append(pts)
            if self._stencil is not None:
                kind = ("sparse-op" if self._stencil.interp_matrix is not None
                        else "fused" if self._stencil.is_fused else "per-dim")
                lines.append(
                    f"  stencil cache: {kind} ({self._stencil.kernel_eval}), "
                    f"{self._stencil.nbytes() / 1e6:.1f} MB host"
                )
        if self._exec_pipeline is not None:
            t = self.timings()
            lines.append(
                "  modelled timings: "
                + ", ".join(f"{k}={v * 1e3:.3f} ms" for k, v in t.items())
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def destroy(self):
        """Free all simulated device allocations held by the plan.

        Idempotent: destroying an already-destroyed plan is a no-op.  Only
        *new work* (set_pts / execute) on a destroyed plan raises.
        """
        if self._destroyed:
            return
        if self._t3_inner is not None:
            self._t3_inner.destroy()
            self._t3_inner = None
        for buf in self._point_buffers:
            buf.free()
        for buf in self._buffers:
            buf.free()
        self.workspace.release_all()
        self._point_buffers = []
        self._buffers = []
        self._stencil = None
        self._destroyed = True

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.destroy()
        return False

    def __del__(self):  # pragma: no cover - defensive cleanup
        try:
            self.destroy()
        except Exception:
            pass


def _subproblem_setup_profile(sort, subproblems):
    """Setup-phase cost of building the subproblem lists (SM step 1)."""
    from ..gpu.profiler import KernelProfile

    n_bins = sort.n_bins
    n_sub = subproblems.n_subproblems
    return KernelProfile(
        name="sm_subproblem_setup",
        grid_blocks=max(1.0, n_bins / 128.0),
        block_threads=128.0,
        flops=4.0 * n_bins,
        stream_bytes=8.0 * (n_bins + 3.0 * n_sub),
    )
