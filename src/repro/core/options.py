"""Plan options: spreading method, precision, bin geometry, tuning knobs.

Mirrors cuFINUFFT's ``cufinufft_opts`` / the Python interface's keyword
options.  Defaults follow the paper:

* upsampling factor ``sigma = 2`` (fixed; Sec. I-B limitation (3)),
* bins of 32 x 32 in 2D and 16 x 16 x 2 in 3D (Remark 1),
* maximum subproblem size ``Msub = 1024`` (Remark 1),
* method ``AUTO``: SM for type 1 where it is supported (2D single/double,
  3D single), GM-sort otherwise (Remark 2), and GM-sort for type 2
  interpolation (Sec. III-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SpreadMethod", "Precision", "Opts", "default_bin_shape",
           "validate_isign"]


def validate_isign(value, allow_none=False):
    """Normalize an exponent sign to ``+1``/``-1`` (or ``None`` if allowed).

    The single validator behind ``Opts.isign``, the exact reference sums and
    the solve-layer requests, so every entry point accepts and rejects the
    same forms (ints, floats, numpy scalars equal to +-1).
    """
    if value is None:
        if allow_none:
            return None
        raise ValueError("isign must be +1 or -1, got None")
    value_f = float(value)
    if value_f not in (1.0, -1.0):
        suffix = " or None (per-type default)" if allow_none else ""
        raise ValueError(f"isign must be +1, -1{suffix}, got {value!r}")
    return int(value_f)


class SpreadMethod(enum.Enum):
    """Spreading / interpolation parallelization strategy (paper Sec. III)."""

    #: Input-driven baseline: one thread per point, global atomics, no sort.
    GM = "GM"
    #: Input-driven with bin-sorted point ordering (coalesced access).
    GM_SORT = "GM-sort"
    #: Hybrid subproblem scheme in shared memory (type 1 only).
    SM = "SM"
    #: Pick the best supported method for the transform.
    AUTO = "auto"

    @classmethod
    def parse(cls, value):
        """Accept enum members or their string names/values (case-insensitive)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            key = value.strip().lower().replace("_", "-")
            for member in cls:
                if member.value.lower() == key or member.name.lower().replace("_", "-") == key:
                    return member
        raise ValueError(f"unknown spread method {value!r}; expected one of "
                         f"{[m.value for m in cls]}")


class Precision(enum.Enum):
    """Floating-point precision of the transform."""

    SINGLE = "single"
    DOUBLE = "double"

    @classmethod
    def parse(cls, value):
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            key = value.strip().lower()
            aliases = {
                "single": cls.SINGLE,
                "float32": cls.SINGLE,
                "f32": cls.SINGLE,
                "complex64": cls.SINGLE,
                "double": cls.DOUBLE,
                "float64": cls.DOUBLE,
                "f64": cls.DOUBLE,
                "complex128": cls.DOUBLE,
            }
            if key in aliases:
                return aliases[key]
        if value in (np.float32, np.complex64):
            return cls.SINGLE
        if value in (np.float64, np.complex128):
            return cls.DOUBLE
        raise ValueError(f"unknown precision {value!r}")

    @property
    def real_dtype(self):
        return np.float32 if self is Precision.SINGLE else np.float64

    @property
    def complex_dtype(self):
        return np.complex64 if self is Precision.SINGLE else np.complex128

    @property
    def real_itemsize(self):
        return 4 if self is Precision.SINGLE else 8

    @property
    def complex_itemsize(self):
        return 8 if self is Precision.SINGLE else 16


def default_bin_shape(ndim):
    """Hand-tuned bin sizes: 1024 (1D), 32x32 (2D, Remark 1), 16x16x2 (3D).

    The paper only evaluates 2D and 3D; the 1D default follows cuFINUFFT's
    1024-cell bins (one subproblem per bin at the default ``Msub``).
    """
    if ndim == 1:
        return (1024,)
    if ndim == 2:
        return (32, 32)
    if ndim == 3:
        return (16, 16, 2)
    raise ValueError(f"only 1D, 2D and 3D transforms are supported, got ndim={ndim}")


@dataclass
class Opts:
    """Tuning options of a :class:`repro.core.plan.Plan`.

    Attributes
    ----------
    method : SpreadMethod
        Spreading strategy for type-1 (and ordering strategy for type-2).
    precision : Precision
        Single or double precision.
    isign : int or None
        Sign of the imaginary unit in the transform exponent (``+1`` or
        ``-1``), as in the FINUFFT/cuFINUFFT API.  ``None`` (the default)
        selects the paper's convention per transform type: ``-1`` for type 1
        (Eq. (1) uses ``e^{-i k.x}``) and ``+1`` for types 2 and 3 (Eq. (3)).
        Flipping the sign conjugates the exponentials only -- strengths and
        coefficients are never implicitly conjugated.
    upsampfac : float
        Fine-grid upsampling factor sigma (only 2.0 supported).
    bin_shape : tuple of int or None
        Bin dimensions ``m_i`` in fine-grid cells; ``None`` selects the
        paper's defaults for the dimensionality.
    max_subproblem_size : int
        ``Msub``, the blocked load-balancing cap of the SM method.
    threads_per_block : int
        Threads per block used by the simulated launches (cost model only).
    spread_only : bool
        Debug switch: skip FFT + deconvolution (used by the Fig. 2/3
        benchmarks which time spreading/interpolation kernels in isolation).
    sort_points : bool
        Whether set_pts performs the bin sort (GM ignores the permutation but
        the flag lets benchmarks price the sort separately).
    cache_stencils : bool
        Whether ``set_pts`` precomputes the per-point kernel stencils (and,
        within ``stencil_budget``, the fused sparse spread/interp operator)
        so repeated ``execute`` calls never re-evaluate the kernel.  Disabling
        this reproduces the seed implementation's per-transform loop, which
        the throughput benchmark uses as its baseline.
    kernel_eval : str
        "horner" evaluates the ES kernel through its precomputed
        piecewise-polynomial (Horner) approximation, "exact" through
        ``exp(beta*(sqrt(1-z^2)-1))`` directly.
    stencil_budget : int
        Maximum fused stencil entry count ``M * w^d`` the cache may
        materialize (indices + weights + sparse operator).
    reuse_workspace : bool
        Whether the plan's :class:`~repro.core.workspace.Workspace` reuses
        its fine-grid/FFT/staging buffers across executes (the zero-copy
        steady state).  ``False`` restores the pre-refactor
        allocate-per-execute churn, kept as the measurable baseline of
        ``benchmarks/bench_interop.py``.
    backend : str
        Execution backend name (see :mod:`repro.backends`): ``"reference"``
        (exact per-transform numpy loop), ``"cached"`` (fused stencil-cache /
        CSR fast path, no profiling) or ``"device_sim"`` (cached/reference
        numerics with the simulated-GPU cost profiles attached).  ``"auto"``
        resolves to ``device_sim``, preserving the paper's modelled timings.
    """

    method: SpreadMethod = SpreadMethod.AUTO
    precision: Precision = Precision.SINGLE
    isign: int = None
    upsampfac: float = 2.0
    bin_shape: tuple = None
    max_subproblem_size: int = 1024
    threads_per_block: int = 128
    spread_only: bool = False
    sort_points: bool = True
    cache_stencils: bool = True
    kernel_eval: str = "horner"
    stencil_budget: int = 1 << 25
    reuse_workspace: bool = True
    backend: str = "auto"
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        self.method = SpreadMethod.parse(self.method)
        self.precision = Precision.parse(self.precision)
        self.isign = validate_isign(self.isign, allow_none=True)
        if not isinstance(self.backend, str) or not self.backend.strip():
            raise ValueError(f"backend must be a non-empty string, got {self.backend!r}")
        self.backend = self.backend.strip().lower()
        if self.upsampfac != 2.0:
            raise ValueError("only upsampfac = 2.0 is supported (paper limitation (3))")
        if self.max_subproblem_size <= 0:
            raise ValueError("max_subproblem_size must be positive")
        if self.threads_per_block <= 0:
            raise ValueError("threads_per_block must be positive")
        if self.kernel_eval not in ("horner", "exact"):
            raise ValueError(
                f"kernel_eval must be 'horner' or 'exact', got {self.kernel_eval!r}"
            )
        if self.stencil_budget < 0:
            raise ValueError("stencil_budget must be non-negative")
        if self.bin_shape is not None:
            self.bin_shape = tuple(int(m) for m in self.bin_shape)
            if any(m <= 0 for m in self.bin_shape):
                raise ValueError(f"bin_shape entries must be positive, got {self.bin_shape}")

    def resolved_bin_shape(self, ndim):
        """Bin shape to use for an ``ndim``-dimensional transform."""
        if self.bin_shape is not None:
            if len(self.bin_shape) != ndim:
                raise ValueError(
                    f"bin_shape {self.bin_shape} does not match transform dimension {ndim}"
                )
            return self.bin_shape
        return default_bin_shape(ndim)

    def resolve_method(self, nufft_type, ndim, precision=None):
        """Resolve ``AUTO`` into a concrete method for this transform.

        Follows the paper: SM gives the best type-1 performance wherever it is
        implemented; it is not implemented for 3D double precision (Remark 2),
        and interpolation (type 2) always uses GM-sort (Sec. III-B).  Type 3's
        only spreading step is its type-1-style stage onto the rescaled fine
        grid, so it resolves like type 1; 1D padded bins always fit shared
        memory, so 1D spreading keeps SM in both precisions.
        """
        precision = precision if precision is not None else self.precision
        if self.method is not SpreadMethod.AUTO:
            return self.method
        if nufft_type == 2:
            return SpreadMethod.GM_SORT
        if ndim == 3 and precision is Precision.DOUBLE:
            return SpreadMethod.GM_SORT
        return SpreadMethod.SM

    def resolve_backend(self):
        """Resolve the ``"auto"`` backend name (the profiled default)."""
        return "device_sim" if self.backend == "auto" else self.backend

    def resolve_isign(self, nufft_type):
        """Resolve ``isign=None`` into the paper's per-type sign convention.

        Type 1 defaults to ``-1`` (Eq. (1): ``f_k = sum_j c_j e^{-i k.x_j}``),
        types 2 and 3 to ``+1`` (Eq. (3) and the type-3 sum) -- exactly the
        hard-coded signs of earlier revisions, so the default is
        backward-compatible.  An explicit ``isign`` always wins.
        """
        if self.isign is not None:
            return self.isign
        return -1 if int(nufft_type) == 1 else 1

    def copy(self, **overrides):
        """Return a copy of the options with some fields replaced."""
        data = {
            "method": self.method,
            "precision": self.precision,
            "isign": self.isign,
            "upsampfac": self.upsampfac,
            "bin_shape": self.bin_shape,
            "max_subproblem_size": self.max_subproblem_size,
            "threads_per_block": self.threads_per_block,
            "spread_only": self.spread_only,
            "sort_points": self.sort_points,
            "cache_stencils": self.cache_stencils,
            "kernel_eval": self.kernel_eval,
            "stencil_budget": self.stencil_budget,
            "reuse_workspace": self.reuse_workspace,
            "backend": self.backend,
            "extra": dict(self.extra),
        }
        data.update(overrides)
        return Opts(**data)
