"""Per-plan reusable execution buffers, accounted on the device memory pool.

cuFINUFFT's performance story depends on buffer discipline: the fine grid,
the cuFFT workspace and the staging vectors are allocated once per plan and
reused by every ``execute`` call and every transform of an ``n_trans`` batch
(paper Sec. V-A: "the plan owns the device arrays").  The seed reproduction
instead allocated fresh arrays at every stage; a :class:`Workspace` restores
the library's discipline:

* named buffers are created on first request (or eagerly by the plan, so RAM
  reports include them before the first execute) through the device's
  :class:`~repro.gpu.memory.MemoryPool`, so capacity checks and the paper's
  Table-I RAM accounting see them;
* a request whose shape and dtype match the live buffer *reuses* it -- the
  zero-allocation steady state measured by :mod:`repro.metrics.allocs`;
* a mismatch (new point set on a type-3 plan, precision change) frees and
  reallocates, which the alloc counter reports as a miss;
* :meth:`adopt` swaps in a stage-produced array (the out-of-place FFT
  result) without copying, modelling cuFFT transforming into its workspace.

Setting ``Opts.reuse_workspace=False`` disables the reuse (every request
reallocates), which is the pre-refactor churn path the interop benchmark
measures its zero-copy claim against.
"""

from __future__ import annotations

import numpy as np

from ..metrics import allocs

__all__ = ["Workspace"]


class Workspace:
    """Named, reusable device-accounted buffers owned by one plan.

    Parameters
    ----------
    device : Device
        Simulated device whose :class:`~repro.gpu.memory.MemoryPool` accounts
        the buffers (and enforces capacity).
    reuse : bool
        When ``False``, every :meth:`array` request frees and reallocates its
        buffer -- the churny pre-refactor behaviour, kept as a measurable
        baseline for ``benchmarks/bench_interop.py``.
    """

    def __init__(self, device, reuse=True):
        self._device = device
        self._reuse = bool(reuse)
        self._buffers = {}

    # ------------------------------------------------------------------ #
    # acquisition
    # ------------------------------------------------------------------ #
    def array(self, name, shape, dtype, zero=False, pipeline=None):
        """Return the named buffer's array, (re)allocating on mismatch.

        A matching live buffer is returned as-is (``zero=True`` refills it in
        place -- no allocation); a shape/dtype mismatch, a missing buffer, or
        ``reuse=False`` goes through the pool (counted by the alloc tracker,
        and recorded as an ``"alloc"`` transfer on ``pipeline`` when given).
        """
        shape = tuple(int(n) for n in shape)
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if (buf is not None and self._reuse
                and buf.array.shape == shape and buf.array.dtype == dtype):
            if zero:
                buf.array.fill(0)
            return buf.array
        if buf is not None:
            # Drop the entry before freeing: if the allocation below raises
            # (simulated OOM), the workspace must not hold a freed buffer it
            # could later mistake for a live, reusable one.
            del self._buffers[name]
            buf.free()
        new = self._device.memory.allocate(shape, dtype, label=name)
        self._buffers[name] = new
        allocs.record_alloc(new.nbytes, name)
        if pipeline is not None:
            pipeline.add_transfer("alloc", new.nbytes, name)
        return new.array

    def adopt(self, name, array, pipeline=None):
        """Take ownership of ``array`` as the named buffer, without copying.

        Models an out-of-place kernel (the batched FFT) writing into a
        plan-owned workspace buffer: the previous allocation is released and
        the produced array is registered in its place.  Equal-size swaps
        leave the pool's accounting untouched; size changes adjust it (and
        count as a workspace miss).
        """
        array = np.asarray(array)
        buf = self._buffers.get(name)
        if buf is not None and self._reuse and buf.array.nbytes == array.nbytes:
            buf.array = array
            return array
        if buf is not None:
            del self._buffers[name]
            buf.free()
        new = self._device.memory.adopt(array, label=name)
        self._buffers[name] = new
        allocs.record_alloc(new.nbytes, name)
        if pipeline is not None:
            pipeline.add_transfer("alloc", new.nbytes, name)
        return array

    def get(self, name):
        """The named buffer's array, or ``None`` if it does not exist."""
        buf = self._buffers.get(name)
        return None if buf is None else buf.array

    # ------------------------------------------------------------------ #
    # lifecycle / reporting
    # ------------------------------------------------------------------ #
    def drop(self, name):
        """Free one named buffer (no-op if absent)."""
        buf = self._buffers.pop(name, None)
        if buf is not None:
            buf.free()

    def release_all(self):
        """Free every buffer (plan destroy / type-3 repointing)."""
        for buf in self._buffers.values():
            buf.free()
        self._buffers = {}

    @property
    def nbytes(self):
        """Total bytes currently held across all live buffers."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def names(self):
        """Live buffer names, in creation order."""
        return list(self._buffers.keys())
