"""Core library: the paper's primary contribution.

Public API:

* :class:`~repro.core.plan.Plan` -- the plan / set_pts / execute / destroy
  interface of cuFINUFFT (types 1, 2 and 3; one, two and three dimensions).
* :func:`~repro.core.simple.nufft2d1` and friends -- one-shot wrappers.
* :class:`~repro.core.options.Opts`, :class:`~repro.core.options.SpreadMethod`,
  :class:`~repro.core.options.Precision` -- tuning options (including the
  execution backend, see :mod:`repro.backends`).
* :mod:`~repro.core.exact` -- direct O(NM) reference sums for validation.
"""

from .errors import max_abs_error, relative_l2_error
from .exact import nudft_type1, nudft_type2, nudft_type3
from .gridsize import (
    fine_grid_shape,
    fine_grid_size,
    next_smooth_235,
    next_smooth_even_235,
)
from .options import Opts, Precision, SpreadMethod
from .plan import Plan
from .simple import (
    nufft1d1,
    nufft1d2,
    nufft1d3,
    nufft2d1,
    nufft2d2,
    nufft2d3,
    nufft3d1,
    nufft3d2,
    nufft3d3,
)

__all__ = [
    "Plan",
    "Opts",
    "Precision",
    "SpreadMethod",
    "nufft1d1",
    "nufft1d2",
    "nufft1d3",
    "nufft2d1",
    "nufft2d2",
    "nufft2d3",
    "nufft3d1",
    "nufft3d2",
    "nufft3d3",
    "nudft_type1",
    "nudft_type2",
    "nudft_type3",
    "relative_l2_error",
    "max_abs_error",
    "fine_grid_size",
    "fine_grid_shape",
    "next_smooth_235",
    "next_smooth_even_235",
]
