"""Deconvolution (correction) step and mode truncation / zero-padding.

Type 1, step 3 (paper Eq. (10)): the fine-grid FFT output is truncated to the
central ``N_1 x ... x N_d`` modes and multiplied by the correction factors

.. math::

    p_k = \\prod_{i=1}^d \\frac{h_i}{\\hat\\psi_i(k_i)}
        = \\left(\\frac{2}{w}\\right)^d
          \\prod_{i=1}^d \\hat\\phi_\\beta(\\alpha_i k_i)^{-1}.

Type 2, step 1 (paper Eq. (11)) is the transpose: the input modes are
multiplied by the same factors and zero-padded onto the fine grid before the
inverse FFT.

The factors are separable, so we precompute one 1-D vector per dimension in
the planning stage (as the CUDA library does) and apply them with broadcasting.
"""

from __future__ import annotations

import numpy as np

from ..gpu.profiler import KernelProfile
from ..kernels.kernel_ft import kernel_fourier_series

__all__ = [
    "correction_factors_1d",
    "CorrectionFactors",
    "type1_deconvolve",
    "type2_precorrect",
    "deconvolve_kernel_profile",
]


def correction_factors_1d(kernel, n_fine, n_modes):
    """1-D correction factors ``(2/w) / phihat(alpha k)`` for the centred modes."""
    phihat = kernel_fourier_series(kernel, n_fine, n_modes)
    if np.any(phihat <= 0):
        raise ValueError(
            "kernel Fourier transform is not positive over the retained modes; "
            "the requested tolerance/grid combination is invalid"
        )
    return (2.0 / kernel.width) / phihat


class CorrectionFactors:
    """Precomputed separable correction factors for one plan.

    Parameters
    ----------
    kernel : ESKernel or compatible
    modes_shape : tuple of int
        Output mode counts ``(N1, ..., Nd)``.
    fine_shape : tuple of int
        Fine grid sizes ``(n1, ..., nd)``.
    """

    def __init__(self, kernel, modes_shape, fine_shape):
        if len(modes_shape) != len(fine_shape):
            raise ValueError("modes_shape and fine_shape must have equal length")
        self.modes_shape = tuple(int(n) for n in modes_shape)
        self.fine_shape = tuple(int(n) for n in fine_shape)
        self.ndim = len(modes_shape)
        self.factors = [
            correction_factors_1d(kernel, nf, nm)
            for nm, nf in zip(self.modes_shape, self.fine_shape)
        ]

    def as_dense(self, dtype=np.float64):
        """Full tensor-product factor array (for tests / small problems)."""
        out = self.factors[0].astype(dtype)
        for d in range(1, self.ndim):
            out = np.multiply.outer(out, self.factors[d].astype(dtype))
        return out

    # ------------------------------------------------------------------ #
    def _mode_slices(self):
        """Fine-grid (FFT-ordered) index arrays selecting the centred modes.

        The FFT output indexes frequency ``k`` at position ``k mod n_fine``;
        the centred modes ``k in [-N//2, (N+1)//2)`` therefore live at
        ``(k + n_fine) mod n_fine``.  We return, per dimension, the index
        vector in *ascending k* order.
        """
        idx = []
        for nm, nf in zip(self.modes_shape, self.fine_shape):
            k = np.arange(-(nm // 2), (nm + 1) // 2, dtype=np.int64)
            idx.append(np.mod(k, nf))
        return idx

    def truncate_and_scale(self, fine_hat, dtype=None, out=None):
        """Type-1 step 3: select the central modes and apply the factors.

        Parameters
        ----------
        fine_hat : ndarray
            FFT of the fine grid, standard FFT ordering, shape ``fine_shape``
            or a stacked ``(n_trans, *fine_shape)`` batch.
        dtype : dtype, optional
            Output dtype when allocating (ignored if ``out`` is given).
        out : ndarray, optional
            Preallocated output of the result shape; written in place and
            returned (the zero-copy pipeline's terminal stage for type 1).

        Returns
        -------
        ndarray, shape ``modes_shape`` (or ``(n_trans, *modes_shape)``)
            Output Fourier coefficients ``f_k`` with ``k`` ascending from
            ``-N//2`` along every axis.
        """
        batched = fine_hat.ndim == self.ndim + 1
        if fine_hat.shape[fine_hat.ndim - self.ndim:] != self.fine_shape or \
                fine_hat.ndim not in (self.ndim, self.ndim + 1):
            raise ValueError(
                f"fine_hat has shape {fine_hat.shape}, expected {self.fine_shape}"
            )
        idx = self._mode_slices()
        lead = (slice(None),) if batched else ()
        gathered = fine_hat[lead + tuple(np.ix_(*idx))]
        if out is not None:
            np.multiply(gathered, self.as_broadcast_factors(out.dtype), out=out)
            return out
        result = gathered * self.as_broadcast_factors(gathered.dtype)
        if dtype is not None:
            result = result.astype(dtype, copy=False)
        return result

    def pad_and_scale(self, modes, dtype=np.complex128, out=None):
        """Type-2 step 1: scale the input modes and zero-pad to the fine grid.

        Accepts ``modes_shape`` or a stacked ``(n_trans, *modes_shape)``
        batch.  ``out``, when given, is a preallocated fine-grid-shaped
        array: it is zero-filled in place and the scaled modes scattered into
        it -- no fine-grid temporary is materialized.
        """
        modes = np.asarray(modes)
        batched = modes.ndim == self.ndim + 1
        if modes.shape[modes.ndim - self.ndim:] != self.modes_shape or \
                modes.ndim not in (self.ndim, self.ndim + 1):
            raise ValueError(
                f"modes has shape {modes.shape}, expected {self.modes_shape}"
            )
        lead_shape = modes.shape[:1] if batched else ()
        if out is not None:
            fine = out
            fine.fill(0)
            dtype = out.dtype
        else:
            fine = np.zeros(lead_shape + self.fine_shape, dtype=dtype)
        idx = self._mode_slices()
        lead = (slice(None),) if batched else ()
        fine[lead + tuple(np.ix_(*idx))] = modes * self.as_broadcast_factors(dtype)
        return fine

    def as_broadcast_factors(self, dtype):
        """Tensor product of the 1-D factors via broadcasting (no big temp)."""
        out = None
        for d in range(self.ndim):
            shape = [1] * self.ndim
            shape[d] = self.modes_shape[d]
            f = self.factors[d].reshape(shape)
            out = f if out is None else out * f
        real_dtype = np.real(np.zeros(1, dtype=dtype)).dtype
        return out.astype(real_dtype, copy=False)


def type1_deconvolve(fine_hat, factors, dtype=None):
    """Functional wrapper of :meth:`CorrectionFactors.truncate_and_scale`."""
    return factors.truncate_and_scale(fine_hat, dtype=dtype)


def type2_precorrect(modes, factors, dtype=np.complex128):
    """Functional wrapper of :meth:`CorrectionFactors.pad_and_scale`."""
    return factors.pad_and_scale(modes, dtype=dtype)


def deconvolve_kernel_profile(modes_shape, complex_itemsize, name="deconvolve"):
    """Cost profile: one thread per output mode, embarrassingly parallel."""
    n_modes = float(np.prod(modes_shape))
    return KernelProfile(
        name=name,
        grid_blocks=max(1.0, n_modes / 256.0),
        block_threads=256.0,
        flops=4.0 * n_modes,
        stream_bytes=2.0 * n_modes * complex_itemsize,
    )
