"""FINUFFT-like multithreaded CPU baseline.

FINUFFT (Barnett, Magland, af Klinteberg 2019) is the parallel CPU library the
paper uses as its primary comparator, run with 28 threads on a dual Xeon
E5-2680 v4 node.  It uses the same three-step ES-kernel algorithm as
cuFINUFFT, so the *numerics* here simply reuse the core spreading /
interpolation / deconvolution machinery (which is exactly what makes the two
libraries' outputs agree, as they do in reality).

The *cost model* captures the documented CPU execution strategy: the spreader
is cache-blocked and parallelized over sorted chunks of points, the FFT is a
multithreaded FFTW call, and there is no host/device transfer.  Constants are
calibrated so the FINUFFT-vs-cuFINUFFT speedups land in the ranges the paper
reports (about 5-16x for "exec" depending on accuracy, dimension and size).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.binsort import bin_sort, to_grid_coordinates
from ..core.deconvolve import CorrectionFactors
from ..core.gridsize import fine_grid_shape
from ..core.interp import interp_gm_sort
from ..core.options import Precision
from ..core.spread import spread_gm_sort
from ..kernels.es_kernel import ESKernel
from ..metrics.modeling import ModelResult

__all__ = ["FinufftCPU", "CPUCostConstants"]


@dataclass(frozen=True)
class CPUCostConstants:
    """Calibration constants of the CPU (FINUFFT) cost model.

    Defaults describe the paper's 28-thread dual Xeon E5-2680 v4 node.
    """

    #: Physical threads used (the paper runs 28, one per physical core).
    n_threads: int = 28
    #: Parallel efficiency of the blocked spreader/interpolator.
    parallel_efficiency: float = 0.75
    #: Single-thread cost of updating / reading one fine-grid cell during
    #: spreading/interpolation, including the amortized kernel evaluations, ns.
    ns_per_grid_cell: float = 22.0
    #: Single-thread per-point cost of the bin-sort / index precomputation, ns.
    ns_per_point_sort: float = 30.0
    #: Effective multithreaded FFTW throughput, FLOP/s.
    fftw_flops: float = 4.0e10
    #: Effective memory bandwidth for the deconvolve / copy passes, bytes/s.
    mem_bandwidth: float = 6.0e10

    @property
    def effective_threads(self):
        return self.n_threads * self.parallel_efficiency


class FinufftCPU:
    """FINUFFT-equivalent CPU library: numerics + 28-thread cost model."""

    name = "finufft"
    device_kind = "cpu"

    def __init__(self, constants=None):
        self.constants = constants if constants is not None else CPUCostConstants()

    # ------------------------------------------------------------------ #
    # capability matrix
    # ------------------------------------------------------------------ #
    @staticmethod
    def supports(nufft_type, ndim, precision, eps):
        """FINUFFT supports every configuration the paper sweeps."""
        return nufft_type in (1, 2) and ndim in (2, 3)

    @staticmethod
    def error_estimate(eps, precision="single"):
        """Delivered relative error: follows the requested tolerance down to
        the precision's roundoff floor."""
        precision = Precision.parse(precision)
        floor = 1e-7 if precision is Precision.SINGLE else 1e-14
        kernel = ESKernel.from_tolerance(eps)
        return max(kernel.estimated_error(), floor)

    # ------------------------------------------------------------------ #
    # numerics
    # ------------------------------------------------------------------ #
    def type1(self, points, strengths, n_modes, eps, precision="double"):
        """Type-1 transform (exact same algorithm as the core library)."""
        precision = Precision.parse(precision)
        kernel = ESKernel.from_tolerance(eps)
        fine_shape = fine_grid_shape(n_modes, kernel.width)
        ndim = len(n_modes)
        grid_coords = [to_grid_coordinates(points[d], fine_shape[d]) for d in range(ndim)]
        sort = bin_sort(grid_coords, fine_shape, tuple(16 for _ in range(ndim)))
        strengths = np.asarray(strengths).astype(np.complex128)
        fine = spread_gm_sort(fine_shape, grid_coords, strengths, kernel, sort,
                              dtype=np.complex128)
        fine_hat = np.fft.fftn(fine)
        correction = CorrectionFactors(kernel, n_modes, fine_shape)
        return correction.truncate_and_scale(fine_hat, dtype=precision.complex_dtype)

    def type2(self, points, modes, eps, precision="double"):
        """Type-2 transform."""
        precision = Precision.parse(precision)
        modes = np.asarray(modes)
        n_modes = modes.shape
        kernel = ESKernel.from_tolerance(eps)
        fine_shape = fine_grid_shape(n_modes, kernel.width)
        ndim = len(n_modes)
        grid_coords = [to_grid_coordinates(points[d], fine_shape[d]) for d in range(ndim)]
        sort = bin_sort(grid_coords, fine_shape, tuple(16 for _ in range(ndim)))
        correction = CorrectionFactors(kernel, n_modes, fine_shape)
        fine = correction.pad_and_scale(modes, dtype=np.complex128)
        fine = np.fft.ifftn(fine) * float(np.prod(fine_shape))
        return interp_gm_sort(fine, grid_coords, kernel, sort,
                              dtype=precision.complex_dtype)

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def model_times(self, nufft_type, n_modes, n_points, eps, distribution="rand",
                    precision="single", rng=None, stats=None, spread_only=False,
                    fine_shape=None):
        """Modelled CPU timings for one transform (28-thread FINUFFT).

        Returns a :class:`~repro.metrics.modeling.ModelResult` whose ``times``
        use the same keys as the GPU model; ``mem`` is zero (no device) and
        ``total+mem`` equals ``total``, matching how the paper plots FINUFFT's
        "total" against the GPU libraries' "total+mem".
        """
        c = self.constants
        precision = Precision.parse(precision)
        kernel = ESKernel.from_tolerance(eps)
        n_modes = tuple(int(n) for n in n_modes)
        ndim = len(n_modes)
        if fine_shape is None:
            fine_shape = fine_grid_shape(n_modes, kernel.width)
        w = kernel.width
        m = float(n_points)

        cells_per_point = float(w ** ndim)
        spread_s = m * cells_per_point * c.ns_per_grid_cell * 1e-9 / c.effective_threads
        sort_s = m * c.ns_per_point_sort * 1e-9 / c.effective_threads

        if spread_only:
            fft_s = 0.0
            deconv_s = 0.0
        else:
            n_fine = float(np.prod(fine_shape))
            fft_s = 5.0 * n_fine * max(1.0, np.log2(n_fine)) / c.fftw_flops
            deconv_s = 4.0 * float(np.prod(n_modes)) * precision.complex_itemsize / c.mem_bandwidth

        exec_s = spread_s + fft_s + deconv_s
        times = {
            "exec": exec_s,
            "setup": sort_s,
            "total": exec_s + sort_s,
            "mem": 0.0,
            "total+mem": exec_s + sort_s,
        }
        return ModelResult(
            times=times,
            n_points=int(n_points),
            ram_mb=0.0,
            spread_fraction=spread_s / exec_s if exec_s > 0 else 0.0,
            error_estimate=self.error_estimate(eps, precision),
            meta={
                "library": self.name,
                "kernel_width": w,
                "fine_shape": tuple(fine_shape),
                "threads": c.n_threads,
                "nufft_type": nufft_type,
            },
        )
