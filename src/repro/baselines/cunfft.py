"""CUNFFT-like GPU baseline.

CUNFFT (Kunis & Kunis, "The nonequispaced FFT on graphics processing units")
is the general-purpose GPU NFFT the paper compares against.  Its relevant
characteristics, all modelled here:

* (fast) Gaussian gridding window -- wider support than the ES kernel for the
  same accuracy (``-DCOM_FG_PSI=ON`` in the paper's build);
* *input-driven* spreading in the user-supplied point order, accumulating with
  global atomics and no sorting -- i.e. exactly the paper's GM baseline.  This
  is why CUNFFT collapses (up to ~200x slowdown) on clustered type-1
  transforms and why its type-2 (conflict-free reads) stays competitive;
* device memory is allocated inside ``cunfft_init``, so the paper cannot
  separate a "total" timing from memory operations -- we reproduce the same
  reporting quirk by folding allocation into ``total+mem`` only;
* no plan-style reuse of sorted points (there is nothing to sort), so "exec"
  equals "total".
"""

from __future__ import annotations

import numpy as np

from ..core.binsort import to_grid_coordinates
from ..core.deconvolve import CorrectionFactors
from ..core.gridsize import fine_grid_shape
from ..core.interp import interp_gm, interp_kernel_profiles
from ..core.options import Precision, SpreadMethod
from ..core.spread import spread_gm, spread_kernel_profiles
from ..gpu.costmodel import CostModel
from ..gpu.device import V100_SPEC
from ..gpu.fft import fft_kernel_profile
from ..gpu.profiler import PipelineProfile
from ..kernels.gaussian import GaussianKernel
from ..metrics.modeling import ModelResult, sample_spread_stats
from ..core.deconvolve import deconvolve_kernel_profile

__all__ = ["CunfftLibrary"]


class CunfftLibrary:
    """CUNFFT-equivalent GPU library: Gaussian kernel + unsorted GM spreading."""

    name = "cunfft"
    device_kind = "gpu"

    def __init__(self, spec=None):
        self.spec = spec if spec is not None else V100_SPEC

    # ------------------------------------------------------------------ #
    # capability matrix
    # ------------------------------------------------------------------ #
    @staticmethod
    def supports(nufft_type, ndim, precision, eps):
        """CUNFFT covers both types, 2D/3D, single and double precision."""
        return nufft_type in (1, 2) and ndim in (2, 3)

    @staticmethod
    def error_estimate(eps, precision="single"):
        precision = Precision.parse(precision)
        floor = 1e-7 if precision is Precision.SINGLE else 1e-14
        return max(GaussianKernel.from_tolerance(eps).estimated_error(), floor)

    # ------------------------------------------------------------------ #
    # numerics
    # ------------------------------------------------------------------ #
    def _geometry(self, n_modes, eps, points):
        kernel = GaussianKernel.from_tolerance(eps)
        fine_shape = fine_grid_shape(n_modes, kernel.width)
        ndim = len(n_modes)
        grid_coords = [to_grid_coordinates(points[d], fine_shape[d]) for d in range(ndim)]
        correction = CorrectionFactors(kernel, n_modes, fine_shape)
        return kernel, fine_shape, grid_coords, correction

    def type1(self, points, strengths, n_modes, eps, precision="double"):
        """Type-1 transform with Gaussian gridding (GM spreading order)."""
        precision = Precision.parse(precision)
        kernel, fine_shape, grid_coords, correction = self._geometry(n_modes, eps, points)
        strengths = np.asarray(strengths).astype(np.complex128)
        fine = spread_gm(fine_shape, grid_coords, strengths, kernel, dtype=np.complex128)
        fine_hat = np.fft.fftn(fine)
        return correction.truncate_and_scale(fine_hat, dtype=precision.complex_dtype)

    def type2(self, points, modes, eps, precision="double"):
        """Type-2 transform with Gaussian window interpolation."""
        precision = Precision.parse(precision)
        modes = np.asarray(modes)
        kernel, fine_shape, grid_coords, correction = self._geometry(modes.shape, eps, points)
        fine = correction.pad_and_scale(modes, dtype=np.complex128)
        fine = np.fft.ifftn(fine) * float(np.prod(fine_shape))
        return interp_gm(fine, grid_coords, kernel, dtype=precision.complex_dtype)

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def model_times(self, nufft_type, n_modes, n_points, eps, distribution="rand",
                    precision="single", rng=None, stats=None, spread_only=False,
                    fine_shape=None):
        """Modelled GPU timings for one CUNFFT transform.

        Internally this is the GM cost profile with the Gaussian kernel's
        (wider) support, so the clustered-type-1 collapse and the competitive
        type-2 behaviour both emerge from the same mechanisms as in the paper.
        """
        precision = Precision.parse(precision)
        kernel = GaussianKernel.from_tolerance(eps)
        n_modes = tuple(int(n) for n in n_modes)
        ndim = len(n_modes)
        if fine_shape is None:
            fine_shape = fine_grid_shape(n_modes, kernel.width)
        fine_shape = tuple(int(n) for n in fine_shape)
        bin_shape = (32, 32) if ndim == 2 else (16, 16, 2)

        if stats is None:
            stats = sample_spread_stats(distribution, n_points, fine_shape, bin_shape, rng=rng)

        pipeline = PipelineProfile()
        if nufft_type == 1:
            profiles = spread_kernel_profiles(
                SpreadMethod.GM, stats, kernel, precision, 256, self.spec
            )
        else:
            profiles = interp_kernel_profiles(
                SpreadMethod.GM, stats, kernel, precision, 256, self.spec
            )
        for prof in profiles:
            prof.name = f"cunfft_{prof.name}"
            pipeline.add_kernel(prof, phase="exec")
        if not spread_only:
            pipeline.add_kernel(
                fft_kernel_profile(fine_shape, precision.complex_itemsize, name="cunfft_fft"),
                phase="exec",
            )
            pipeline.add_kernel(
                deconvolve_kernel_profile(n_modes, precision.complex_itemsize,
                                          name="cunfft_deconvolve"),
                phase="exec",
            )

        cplx = precision.complex_itemsize
        real = precision.real_itemsize
        n_mode_total = float(np.prod(n_modes))
        n_fine = float(np.prod(fine_shape))
        alloc_bytes = 2.0 * n_fine * cplx + ndim * stats.n_points * real
        pipeline.add_transfer("alloc", alloc_bytes, "cunfft_init allocations")
        pipeline.add_transfer("h2d", ndim * stats.n_points * real, "points")
        if nufft_type == 1:
            pipeline.add_transfer("h2d", stats.n_points * cplx, "strengths")
            pipeline.add_transfer("d2h", n_mode_total * cplx, "modes")
        else:
            pipeline.add_transfer("h2d", n_mode_total * cplx, "modes")
            pipeline.add_transfer("d2h", stats.n_points * cplx, "targets")

        cost = CostModel(spec=self.spec, precision_itemsize=precision.real_itemsize)
        times = cost.pipeline_times(pipeline)

        # CUNFFT-specific contention behaviour: its complex accumulation uses
        # compare-and-swap style atomic updates, which degrade far more
        # violently than native per-component atomicAdd when many threads hit
        # the same cells.  This is what produces the up-to-200x slowdown the
        # paper measures for clustered type-1 transforms; we model it as an
        # extra retry cost proportional to the expected queue depth on the
        # occupied region.
        if nufft_type == 1:
            from ..gpu.atomics import dilated_occupied_cells, expected_queue_depth

            total_cells = float(np.prod(fine_shape))
            occupied = dilated_occupied_cells(
                max(1, getattr(stats, "n_occupied_cells", 1)), kernel.width, ndim, total_cells
            )
            queue = expected_queue_depth(
                cost.constants.inflight_atomics, occupied
            )
            cas_retry_ns = 1.2
            extra = (
                stats.n_points
                * (kernel.width ** ndim)
                * max(0.0, queue - 1.0)
                * cas_retry_ns
                * 1e-9
            )
            for key in ("exec", "total", "total+mem"):
                times[key] += extra

        spread_time = sum(
            cost.kernel_time(k)
            for k in pipeline.exec_kernels()
            if "spread" in k.name or "interp" in k.name
        )
        return ModelResult(
            times=times,
            n_points=int(stats.n_points),
            ram_mb=alloc_bytes / (1024.0 * 1024.0),
            spread_fraction=spread_time / times["exec"] if times["exec"] > 0 else 0.0,
            error_estimate=self.error_estimate(eps, precision),
            meta={
                "library": self.name,
                "kernel_width": kernel.width,
                "fine_shape": fine_shape,
                "nufft_type": nufft_type,
            },
        )
