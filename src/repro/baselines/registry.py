"""Uniform adapter registry over cuFINUFFT and the baseline libraries.

The benchmark harness compares "libraries" by name exactly as the paper's
figure legends do: ``finufft``, ``cufinufft (SM)``, ``cufinufft (GM-sort)``,
``cunfft`` and ``gpunufft``.  Each adapter exposes the same three methods:

``supports(nufft_type, ndim, precision, eps)``
    capability matrix (e.g. gpuNUFFT is single-precision only);
``model_times(...)``
    returns a :class:`~repro.metrics.modeling.ModelResult`;
``error_estimate(eps, precision)``
    heuristic delivered relative error at the requested tolerance.
"""

from __future__ import annotations

from ..core.options import Precision, SpreadMethod
from ..kernels.es_kernel import ESKernel
from ..metrics.modeling import model_cufinufft
from .cunfft import CunfftLibrary
from .finufft_cpu import FinufftCPU
from .gpunufft import GpuNufftLibrary

__all__ = [
    "CufinufftAdapter",
    "FacadeAdapter",
    "get_library",
    "available_libraries",
]


class CufinufftAdapter:
    """Adapter presenting the core library through the baseline interface.

    Parameters
    ----------
    method : str
        Spreading method shown in the figure legends: ``"SM"`` or
        ``"GM-sort"`` (``"GM"`` is also accepted for the Fig. 2/3 baselines).
    backend : str
        Execution backend (see :mod:`repro.backends`) used both by
        :meth:`make_plan` and (resolved) by :meth:`model_times`; the default
        ``"device_sim"`` keeps the modelled timings attached.
    """

    device_kind = "gpu"

    def __init__(self, method="SM", backend="device_sim"):
        self.method = SpreadMethod.parse(method)
        self.backend = str(backend)
        self.name = f"cufinufft ({self.method.value})"

    def supports(self, nufft_type, ndim, precision, eps):
        """Capability matrix; SM is unavailable for 3D double precision
        (paper Remark 2).  Types 1-3 in dimensions 1-3 are covered; a type-3
        transform spreads like type 1, so it inherits the same constraint."""
        precision = Precision.parse(precision)
        if nufft_type not in (1, 2, 3) or ndim not in (1, 2, 3):
            return False
        if (
            self.method is SpreadMethod.SM
            and nufft_type in (1, 3)
            and ndim == 3
            and precision is Precision.DOUBLE
        ):
            # Feasible only for low accuracy (small w); Remark 2 gives the
            # shared-memory constraint 16 (m+w)^3 <= 49000.
            width = ESKernel.from_tolerance(eps).width
            return width <= 6
        return True

    def error_estimate(self, eps, precision="single"):
        precision = Precision.parse(precision)
        floor = 1e-7 if precision is Precision.SINGLE else 1e-14
        return max(ESKernel.from_tolerance(eps).estimated_error(), floor)

    def make_plan(self, nufft_type, n_modes, **kwargs):
        """Build a :class:`~repro.core.plan.Plan` preconfigured with this
        adapter's spreading method and execution backend, for callers that
        want real numerics from a figure-legend library name."""
        from ..core.plan import Plan

        kwargs.setdefault("method", self.method)
        kwargs.setdefault("backend", self.backend)
        return Plan(nufft_type, n_modes, **kwargs)

    def model_times(self, nufft_type, n_modes, n_points, eps, **kwargs):
        kwargs.setdefault("backend", self.backend)
        return model_cufinufft(
            nufft_type, n_modes, n_points, eps, method=self.method, **kwargs
        )


class FacadeAdapter(CufinufftAdapter):
    """Adapter running the upstream-compatible API facades.

    ``make_plan`` builds a :class:`repro.finufft.Plan` or
    :class:`repro.cufinufft.Plan` (upstream constructor signature, upstream
    ``iflag``/``eps`` defaults) instead of a native plan, so harness code can
    exercise the exact entry points an upstream script would use while the
    capability matrix and modelled timings stay those of the underlying
    library.  Callers pass upstream option names (``gpu_method=2``,
    ``spread_sort=0``, ...) through ``make_plan``'s kwargs.

    Parameters
    ----------
    flavor : str
        ``"finufft"`` (CPU-library vocabulary, double-precision default) or
        ``"cufinufft"`` (``gpu_*`` vocabulary, single-precision default).
    """

    def __init__(self, flavor="cufinufft"):
        flavor = str(flavor).strip().lower()
        if flavor not in ("finufft", "cufinufft"):
            raise ValueError(
                f"flavor must be 'finufft' or 'cufinufft', got {flavor!r}"
            )
        super().__init__(method="SM" if flavor == "cufinufft" else "GM-sort")
        self.flavor = flavor
        self.name = f"repro ({flavor})"
        if flavor == "finufft":
            self.device_kind = "cpu"

    def make_plan(self, nufft_type, n_modes, **kwargs):
        """Build a facade plan through the upstream constructor signature.

        kwargs are upstream names (``iflag``, ``eps``, ``dtype``,
        ``n_trans`` plus the flavor's opts vocabulary), not native
        ``Opts`` fields.
        """
        if self.flavor == "finufft":
            from .. import finufft as facade
        else:
            from .. import cufinufft as facade
        return facade.Plan(nufft_type, n_modes, **kwargs)


_FACTORIES = {
    "finufft": FinufftCPU,
    "cunfft": CunfftLibrary,
    "gpunufft": GpuNufftLibrary,
    "cufinufft (SM)": lambda: CufinufftAdapter("SM"),
    "cufinufft (GM-sort)": lambda: CufinufftAdapter("GM-sort"),
    "cufinufft (GM)": lambda: CufinufftAdapter("GM"),
    "repro (finufft)": lambda: FacadeAdapter("finufft"),
    "repro (cufinufft)": lambda: FacadeAdapter("cufinufft"),
}


def available_libraries():
    """Names accepted by :func:`get_library`, in figure-legend order."""
    return list(_FACTORIES.keys())


def get_library(name):
    """Instantiate a library adapter by its figure-legend name."""
    key = str(name).strip()
    lowered = key.lower()
    for candidate, factory in _FACTORIES.items():
        if candidate.lower() == lowered:
            return factory()
    raise KeyError(
        f"unknown library {name!r}; available: {', '.join(available_libraries())}"
    )
