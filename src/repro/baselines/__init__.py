"""Baseline NUFFT libraries the paper benchmarks against.

All three comparators are reimplemented here (per the substitution policy in
``DESIGN.md``), each with *numerics* faithful to its algorithm/kernel and a
*cost model* faithful to its documented execution strategy:

* :mod:`repro.baselines.finufft_cpu` -- FINUFFT, the multithreaded CPU library
  (28 threads in the paper's runs);
* :mod:`repro.baselines.cunfft`     -- CUNFFT, GPU NFFT with (fast) Gaussian
  gridding and unsorted input-driven spreading;
* :mod:`repro.baselines.gpunufft`   -- gpuNUFFT, sector-based GPU gridding with
  a Kaiser-Bessel window and an imaging-grade accuracy floor.

:mod:`repro.baselines.registry` exposes them behind one adapter interface used
by the benchmark harness.
"""

from .cunfft import CunfftLibrary
from .finufft_cpu import FinufftCPU
from .gpunufft import GpuNufftLibrary
from .registry import available_libraries, get_library

__all__ = [
    "FinufftCPU",
    "CunfftLibrary",
    "GpuNufftLibrary",
    "get_library",
    "available_libraries",
]
