"""gpuNUFFT-like baseline: sector-based GPU gridding with a Kaiser-Bessel window.

gpuNUFFT (Knoll, Schwarzl, Diwoky, Sodickson) is an MRI-oriented GPU gridding
library with a MATLAB front end.  The paper's usage and the behaviours we
reproduce:

* Kaiser-Bessel window, sector width 8, ``THREAD_BLOCK_SIZE=256`` -- an
  *output-driven* (gather) scheme: each thread block owns a sector of the
  oversampled grid and loops over the nonuniform points assigned to it.
  Output-driven gridding is collision-free and therefore distribution-robust
  (Fig. 6 shows gpuNUFFT barely changes between "rand" and "cluster"), but
  per-point work is high: every point in a sector is re-read by all threads
  covering the sector apron, and sector bookkeeping adds overhead.  The net
  effect in the paper is that gpuNUFFT is the slowest GPU library for type 1
  (cuFINUFFT is on average 78x faster at low accuracy) and ~5x slower for
  type 2.
* The nonuniform points are pre-sorted into sectors **on the CPU** when the
  operator is built; the paper excludes that from the timings, so the model
  reports it under ``setup`` only.
* Delivered accuracy never beats ~1e-3 (``MAXIMUM_ALIASING_ERROR`` and the
  small fixed kernel), so the library is excluded from the double-precision
  sweeps -- :meth:`GpuNufftLibrary.supports` encodes that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.binsort import to_grid_coordinates
from ..core.deconvolve import CorrectionFactors
from ..core.gridsize import fine_grid_shape
from ..core.interp import interp_gm
from ..core.options import Precision
from ..core.spread import spread_gm
from ..kernels.kaiser_bessel import GPUNUFFT_ACCURACY_FLOOR, KaiserBesselKernel
from ..metrics.modeling import ModelResult

__all__ = ["GpuNufftLibrary", "GpuNufftCostConstants"]


@dataclass(frozen=True)
class GpuNufftCostConstants:
    """Calibration constants of the gpuNUFFT cost model (V100-scale)."""

    #: Sector edge length in oversampled-grid cells (paper: "sector width 8").
    sector_width: int = 8
    #: Per grid-cell cost of the output-driven type-1 gather, ns.  High
    #: because every covering thread re-reads the point and re-evaluates the
    #: window.
    type1_ns_per_cell: float = 3.6
    #: Fixed per-point cost of the type-1 sector gather, ns: every thread of
    #: every block whose apron contains the point re-reads its coordinates and
    #: strength, so the redundant traffic scales with M regardless of the
    #: kernel width.  Together with the per-cell term this is what makes
    #: gpuNUFFT ~78x slower than cuFINUFFT SM for low-accuracy type 1.
    type1_ns_per_point: float = 250.0
    #: Per grid-cell cost of the forward (type-2) interpolation, ns.
    type2_ns_per_cell: float = 0.35
    #: Fixed per-point cost of the type-2 interpolation, ns.
    type2_ns_per_point: float = 4.0
    #: Per-sector fixed overhead, ns (block launch, apron setup).
    ns_per_sector: float = 600.0
    #: CPU-side sector sort throughput, points/second (excluded from totals,
    #: reported as setup).
    cpu_sort_points_per_s: float = 2.0e7
    #: Effective FFT throughput on the device, FLOP/s.
    fft_flops: float = 2.0e12
    #: Host<->device bandwidth, bytes/s (gpuNUFFT moves CPU arrays in and out).
    pcie_bandwidth: float = 1.2e10


class GpuNufftLibrary:
    """gpuNUFFT-equivalent library: KB-window sector gridding + cost model."""

    name = "gpunufft"
    device_kind = "gpu"

    def __init__(self, constants=None):
        self.constants = constants if constants is not None else GpuNufftCostConstants()

    # ------------------------------------------------------------------ #
    # capability matrix
    # ------------------------------------------------------------------ #
    @staticmethod
    def supports(nufft_type, ndim, precision, eps):
        """Single precision only; delivered error never beats ~1e-3.

        The paper excludes gpuNUFFT from the double-precision comparison
        because its measured error "appears always to exceed 1e-3"; we also
        refuse tolerances it cannot possibly deliver by a wide margin.
        """
        precision = Precision.parse(precision)
        if precision is not Precision.SINGLE:
            return False
        return nufft_type in (1, 2) and ndim in (2, 3)

    @staticmethod
    def error_estimate(eps, precision="single"):
        kernel = KaiserBesselKernel.from_tolerance(eps)
        return max(kernel.estimated_error(), GPUNUFFT_ACCURACY_FLOOR)

    # ------------------------------------------------------------------ #
    # numerics
    # ------------------------------------------------------------------ #
    def _geometry(self, n_modes, eps, points):
        kernel = KaiserBesselKernel.from_tolerance(eps)
        fine_shape = fine_grid_shape(n_modes, kernel.width)
        ndim = len(n_modes)
        grid_coords = [to_grid_coordinates(points[d], fine_shape[d]) for d in range(ndim)]
        correction = CorrectionFactors(kernel, n_modes, fine_shape)
        return kernel, fine_shape, grid_coords, correction

    def type1(self, points, strengths, n_modes, eps, precision="single"):
        """Adjoint (gridding) transform with the Kaiser-Bessel window.

        The numerical result is what an output-driven gather produces -- it is
        identical (up to summation order) to spreading with the same window,
        so we reuse the spreading primitive; the *cost* model, not the
        numerics, carries the sector-scheme behaviour.
        """
        precision = Precision.parse(precision)
        kernel, fine_shape, grid_coords, correction = self._geometry(n_modes, eps, points)
        strengths = np.asarray(strengths).astype(np.complex128)
        fine = spread_gm(fine_shape, grid_coords, strengths, kernel, dtype=np.complex128)
        fine_hat = np.fft.fftn(fine)
        return correction.truncate_and_scale(fine_hat, dtype=precision.complex_dtype)

    def type2(self, points, modes, eps, precision="single"):
        """Forward transform (de-gridding / interpolation)."""
        precision = Precision.parse(precision)
        modes = np.asarray(modes)
        kernel, fine_shape, grid_coords, correction = self._geometry(modes.shape, eps, points)
        fine = correction.pad_and_scale(modes, dtype=np.complex128)
        fine = np.fft.ifftn(fine) * float(np.prod(fine_shape))
        return interp_gm(fine, grid_coords, kernel, dtype=precision.complex_dtype)

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def model_times(self, nufft_type, n_modes, n_points, eps, distribution="rand",
                    precision="single", rng=None, stats=None, spread_only=False,
                    fine_shape=None):
        """Modelled timings for one gpuNUFFT transform.

        The sector scheme is output-driven, so the distribution does not
        change the gridding time (only how many sectors are nonempty, a
        second-order effect we fold into the per-sector overhead for the
        uniform case).
        """
        c = self.constants
        precision = Precision.parse(precision)
        kernel = KaiserBesselKernel.from_tolerance(eps)
        n_modes = tuple(int(n) for n in n_modes)
        ndim = len(n_modes)
        if fine_shape is None:
            fine_shape = fine_grid_shape(n_modes, kernel.width)
        fine_shape = tuple(int(n) for n in fine_shape)
        w = kernel.width
        m = float(n_points)

        cells_per_point = float(w ** ndim)
        if nufft_type == 1:
            per_cell, per_point = c.type1_ns_per_cell, c.type1_ns_per_point
        else:
            per_cell, per_point = c.type2_ns_per_cell, c.type2_ns_per_point
        n_sectors = float(np.prod([max(1, n // c.sector_width) for n in fine_shape]))
        grid_s = (
            m * (cells_per_point * per_cell + per_point) + n_sectors * c.ns_per_sector
        ) * 1e-9

        if spread_only:
            fft_s = deconv_s = 0.0
        else:
            n_fine = float(np.prod(fine_shape))
            fft_s = 5.0 * n_fine * max(1.0, np.log2(n_fine)) / c.fft_flops
            deconv_s = 8.0 * n_fine / 7.0e11

        sort_s = m / c.cpu_sort_points_per_s

        cplx = precision.complex_itemsize
        real = precision.real_itemsize
        transfer_bytes = ndim * m * real + m * cplx + float(np.prod(n_modes)) * cplx
        mem_s = transfer_bytes / c.pcie_bandwidth

        exec_s = grid_s + fft_s + deconv_s
        times = {
            "exec": exec_s,
            "setup": sort_s,
            "total": exec_s,          # the CPU-side sort is excluded (paper note)
            "mem": mem_s,
            "total+mem": exec_s + mem_s,
        }
        return ModelResult(
            times=times,
            n_points=int(n_points),
            ram_mb=(2.0 * float(np.prod(fine_shape)) * cplx) / (1024.0 * 1024.0),
            spread_fraction=grid_s / exec_s if exec_s > 0 else 0.0,
            error_estimate=self.error_estimate(eps, precision),
            meta={
                "library": self.name,
                "kernel_width": w,
                "fine_shape": fine_shape,
                "sector_width": c.sector_width,
                "nufft_type": nufft_type,
            },
        )
