r"""M-TIP step i: slicing -- evaluate the 3D Fourier model on Ewald slices.

One 3D *type-2* NUFFT evaluates the current Fourier-space model at every slice
point of every image in the batch; this is the "Slicing" row of Table II (per
rank: N = 41, M = 1.02e6 slice points, eps = 1e-12, double precision).

Convention: the model is carried around as its uniform Fourier coefficients
``F_k`` (the centred DFT of the density), and a slice point ``q`` in
``[-pi, pi)^3`` samples the *continuous* transform

.. math::

    F(q) = \sum_m \rho(m)\, e^{-i m \cdot q},

which satisfies ``F(2 pi k / N) = F_k`` on the uniform grid.  This is exactly
a type-2 NUFFT whose "modes" are the real-space voxels ``rho(m)`` and whose
points are ``-q`` (the sign flip accounts for the forward-transform sign), so
the operator converts the model to real space once per call and feeds it to
the plan.
"""

from __future__ import annotations

import numpy as np

from ..core.plan import Plan
from .phasing import centered_ifft

__all__ = ["slice_fourier_model", "SlicingOperator"]


class SlicingOperator:
    """Reusable slicing operator: one plan, many executes.

    M-TIP calls slicing every iteration with the *same* slice points (the
    orientations assigned to the images change slowly and the operator is
    rebuilt only when they do), so the plan/set_pts cost is amortized exactly
    as the paper's "exec" timing assumes.

    Parameters
    ----------
    n_modes : tuple (N, N, N)
        Fourier model grid.
    slice_points : ndarray, shape (M, 3)
        Concatenated slice points from :func:`repro.mtip.ewald.ewald_slice_points`.
    eps : float
        NUFFT tolerance (1e-12 in the paper's M-TIP runs).
    device : Device, optional
        Simulated GPU to run on (for the multi-GPU drivers).
    backend : str, optional
        Execution backend of the plan (see :mod:`repro.backends`); the
        default ``"auto"`` resolves to the profiled ``device_sim``.
    tune : str, optional
        Plan-parameter autotuning mode of the owned plan (``"off"``,
        ``"model"`` or ``"measure"``; see :mod:`repro.tuning`).  Ignored when
        the plan is leased from a ``plan_pool`` -- the service's own policy
        governs its pooled plans.
    tuner : Autotuner, optional
        Tuner to consult when tuning is enabled.
    plan_pool : TransformService, optional
        Lease the plan from a :class:`repro.service.TransformService` instead
        of constructing it: repeated operator builds with the same geometry
        (e.g. per M-TIP iteration or across reconstructions sharing the
        service) skip planning, and the service places the plan on its
        least-loaded fleet device.  Mutually exclusive with ``device``;
        ``destroy`` returns the plan to the pool.
    """

    def __init__(self, n_modes, slice_points, eps=1e-12, device=None, precision="double",
                 backend="auto", tune="off", tuner=None, plan_pool=None):
        self.n_modes = tuple(int(n) for n in n_modes)
        self._plan_pool = plan_pool
        if plan_pool is not None:
            if device is not None:
                raise ValueError(
                    "pass either a device or a plan_pool (the service places "
                    "pooled plans on its own fleet), not both"
                )
            self.plan = plan_pool.lease_plan(2, self.n_modes, eps=eps,
                                             precision=precision, backend=backend)
        else:
            self.plan = Plan(2, self.n_modes, eps=eps, precision=precision,
                             device=device, backend=backend, tune=tune,
                             tuner=tuner)
        self.n_points = 0
        self.set_points(slice_points)

    def set_points(self, slice_points):
        """Re-point the operator at a new slice-point set, keeping the plan.

        This is the cuFINUFFT ``setpts`` amortization applied to M-TIP: the
        plan (kernel, fine grid, correction factors, FFT plan) survives across
        solver iterations, and only the bin sort + stencil cache are redone
        when the assigned orientations move the slice points.
        """
        slice_points = np.asarray(slice_points, dtype=np.float64)
        if slice_points.ndim != 2 or slice_points.shape[1] != 3:
            raise ValueError(
                f"slice_points must have shape (M, 3), got {slice_points.shape}"
            )
        self.n_points = slice_points.shape[0]
        # Points are negated: the type-2 NUFFT uses exp(+i k x) while the
        # forward (physics) transform uses exp(-i m q); see the module notes.
        self.plan.set_pts(-slice_points[:, 0], -slice_points[:, 1], -slice_points[:, 2])
        return self

    def __call__(self, fourier_model):
        """Evaluate the model's continuous transform at every slice point.

        Parameters
        ----------
        fourier_model : ndarray, shape ``n_modes``
            Uniform Fourier coefficients (centred DFT of the density).

        Returns
        -------
        ndarray, shape ``(M,)``
        """
        fourier_model = np.asarray(fourier_model)
        if fourier_model.shape != self.n_modes:
            raise ValueError(
                f"fourier_model has shape {fourier_model.shape}, expected {self.n_modes}"
            )
        density = centered_ifft(fourier_model)
        return self.plan.execute(density.astype(np.complex128))

    def nufft_seconds(self):
        """Modelled NUFFT time of the last execute (the Table II wall-clock column)."""
        return self.plan.timings()

    def destroy(self):
        if self._plan_pool is not None:
            self._plan_pool.release_plan(self.plan)
        else:
            self.plan.destroy()


def slice_fourier_model(fourier_model, slice_points, eps=1e-12, device=None,
                        precision="double", backend="auto"):
    """One-shot slicing convenience wrapper (builds and destroys the operator)."""
    op = SlicingOperator(np.asarray(fourier_model).shape, slice_points, eps=eps,
                         device=device, precision=precision, backend=backend)
    try:
        return op(fourier_model)
    finally:
        op.destroy()
