"""M-TIP step ii: orientation matching.

Each diffraction image only measures Fourier *magnitudes* on its slice, and
its orientation is unknown.  M-TIP refines the orientation assignments by
comparing every image against model slices taken at a set of candidate
orientations and keeping the best match.  The full algorithm uses a
sophisticated spherical-harmonic correlation; the reproduction uses the
straightforward (and still quadratic-cost) normalized cross-correlation over
candidate orientations, which exercises the same data flow: model slices come
from the slicing step (a type-2 NUFFT over all candidate orientations), and
the winning assignments feed the merging step.
"""

from __future__ import annotations

import numpy as np

__all__ = ["normalized_correlation", "match_orientations"]


def normalized_correlation(a, b):
    """Normalized cross-correlation of two real vectors (1.0 = identical shape)."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    a = a - a.mean()
    b = b - b.mean()
    denom = np.linalg.norm(a) * np.linalg.norm(b)
    if denom == 0:
        return 0.0
    return float(np.dot(a, b) / denom)


def match_orientations(measured_intensities, candidate_intensities):
    """Assign each measured image to its best-matching candidate orientation.

    Parameters
    ----------
    measured_intensities : ndarray, shape (n_images, n_pix2)
        Measured intensity (squared magnitude) of each image's slice.
    candidate_intensities : ndarray, shape (n_candidates, n_pix2)
        Model intensities sliced at the candidate orientations.

    Returns
    -------
    assignment : ndarray of int, shape (n_images,)
        Index of the best candidate for each image.
    scores : ndarray, shape (n_images,)
        The winning correlation scores.
    """
    measured = np.asarray(measured_intensities, dtype=np.float64)
    candidates = np.asarray(candidate_intensities, dtype=np.float64)
    if measured.ndim != 2 or candidates.ndim != 2 or measured.shape[1] != candidates.shape[1]:
        raise ValueError(
            "measured and candidate intensities must be 2-D with equal trailing size"
        )

    # Normalize rows once, then a single matmul gives all correlations.
    def _normalize_rows(x):
        x = x - x.mean(axis=1, keepdims=True)
        norms = np.linalg.norm(x, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        return x / norms

    mn = _normalize_rows(measured)
    cn = _normalize_rows(candidates)
    corr = mn @ cn.T  # (n_images, n_candidates)
    assignment = np.argmax(corr, axis=1)
    scores = corr[np.arange(corr.shape[0]), assignment]
    return assignment.astype(np.int64), scores
