"""M-TIP step iii: merging -- grid slice data back onto the uniform 3D grid.

Merging solves, in the least-squares sense, for the uniform Fourier-space
model that matches the measured values on the known slices (paper Fig. 8).
The standard normal-equation / gridding approximation needs **two 3D type-1
NUFFTs** per iteration -- exactly what Table II's "Merging" row times:

* the *data* transform spreads the measured slice values,
* the *weight* transform spreads unit strengths, giving the sampling density
  of the slices on the uniform grid,

The estimator is the classic kernel-smoothed gridding ratio evaluated on the
uniform grid: both adjoint (type-1) NUFFT outputs are tapered in real space
(equivalent to convolving the scattered samples with a narrow Gaussian in
Fourier space) and transformed back, and the merged model is their ratio, with
modes whose sampling density is too low left at zero.
"""

from __future__ import annotations

import numpy as np

from ..core.plan import Plan
from .phasing import centered_ifft

__all__ = ["MergingOperator", "merge_slices"]


class MergingOperator:
    """Reusable merging operator: one plan shared by the two type-1 NUFFTs.

    ``plan_pool`` leases the plan from a
    :class:`repro.service.TransformService` instead of constructing it (see
    :class:`repro.mtip.slicing.SlicingOperator`); mutually exclusive with
    ``device``.  ``tune``/``tuner`` autotune the owned plan's spread
    parameters (ignored for leased plans, whose service sets the policy).
    """

    def __init__(self, n_modes, slice_points, eps=1e-12, device=None, precision="double",
                 backend="auto", tune="off", tuner=None, plan_pool=None):
        self.n_modes = tuple(int(n) for n in n_modes)
        self._plan_pool = plan_pool
        if plan_pool is not None:
            if device is not None:
                raise ValueError(
                    "pass either a device or a plan_pool (the service places "
                    "pooled plans on its own fleet), not both"
                )
            self.plan = plan_pool.lease_plan(1, self.n_modes, eps=eps,
                                             precision=precision, backend=backend)
        else:
            self.plan = Plan(1, self.n_modes, eps=eps, precision=precision,
                             device=device, backend=backend, tune=tune,
                             tuner=tuner)
        self.n_points = 0
        self._weights = None
        self._taper = self._build_taper()
        self.set_points(slice_points)

    def set_points(self, slice_points):
        """Re-point the operator at a new slice-point set, keeping the plan.

        The cached sampling density is invalidated alongside the plan's
        stencil cache (it depends on the same points).
        """
        slice_points = np.asarray(slice_points, dtype=np.float64)
        if slice_points.ndim != 2 or slice_points.shape[1] != 3:
            raise ValueError(
                f"slice_points must have shape (M, 3), got {slice_points.shape}"
            )
        self.n_points = slice_points.shape[0]
        self.plan.set_pts(slice_points[:, 0], slice_points[:, 1], slice_points[:, 2])
        self._weights = None
        return self

    def _build_taper(self, width_modes=1.0):
        """Real-space Gaussian envelope implementing the Fourier-space smoothing.

        Multiplying the adjoint-NUFFT output (indexed by real-space voxel
        ``m``) by ``exp(-(m * sigma_q)^2 / 2)`` and transforming back is the
        same as convolving the scattered Fourier samples with a Gaussian of
        width ``sigma_q = width_modes * 2*pi/N`` -- i.e. gridding with a
        smooth window about one mode spacing wide.
        """
        taper = None
        for n in self.n_modes:
            m = np.arange(-(n // 2), (n + 1) // 2, dtype=np.float64)
            sigma_q = width_modes * 2.0 * np.pi / n
            env = np.exp(-0.5 * (m * sigma_q) ** 2)
            taper = env if taper is None else np.multiply.outer(taper, env)
        return taper

    def sampling_density(self, refresh=False):
        """Smoothed sampling density of the slices on the uniform Fourier grid.

        Computed from the second type-1 NUFFT (unit strengths), tapered and
        transformed exactly like the data term so the ratio is unbiased.
        """
        if self._weights is None or refresh:
            ones = np.ones(self.n_points, dtype=np.complex128)
            adjoint = self.plan.execute(ones)
            self._weights = centered_ifft(adjoint * self._taper)
        return self._weights

    def __call__(self, slice_values, relative_cutoff=0.1):
        """Merge measured slice values into a uniform Fourier-space model.

        Parameters
        ----------
        slice_values : ndarray, shape (M,)
            Complex values measured (or estimated) at every slice point.
        relative_cutoff : float
            Modes whose sampling density is below ``relative_cutoff`` times
            the mean density are considered unobserved and set to zero (the
            spreading kernel leaks a little energy everywhere, so dividing by
            those near-zero weights would amplify noise enormously).

        Returns
        -------
        ndarray, shape ``n_modes``
        """
        slice_values = np.asarray(slice_values)
        if slice_values.shape != (self.n_points,):
            raise ValueError(
                f"slice_values must have shape ({self.n_points},), got {slice_values.shape}"
            )
        if not (0.0 < relative_cutoff < 1.0):
            raise ValueError(f"relative_cutoff must be in (0, 1), got {relative_cutoff}")
        adjoint = self.plan.execute(slice_values.astype(np.complex128))
        numerator = centered_ifft(adjoint * self._taper)
        density = self.sampling_density()
        weight = np.abs(density)
        cutoff = relative_cutoff * float(weight.mean())
        if cutoff <= 0.0:
            raise RuntimeError("sampling density is identically zero; no slice points?")
        merged = numerator / np.maximum(weight, cutoff)
        merged[weight < cutoff] = 0.0
        return merged

    def nufft_seconds(self):
        """Modelled timing of the last type-1 execute."""
        return self.plan.timings()

    def destroy(self):
        if self._plan_pool is not None:
            self._plan_pool.release_plan(self.plan)
        else:
            self.plan.destroy()


def merge_slices(slice_values, slice_points, n_modes, eps=1e-12, device=None,
                 precision="double", relative_cutoff=0.1, backend="auto"):
    """One-shot merging convenience wrapper."""
    op = MergingOperator(n_modes, slice_points, eps=eps, device=device,
                         precision=precision, backend=backend)
    try:
        return op(slice_values, relative_cutoff=relative_cutoff)
    finally:
        op.destroy()
