"""Ewald-sphere slice geometry and random orientations.

Each far-field diffraction image measures the molecule's 3D Fourier transform
on a spherical cap (an Ewald-sphere slice) passing through the origin, rotated
by the molecule's unknown orientation (paper Fig. 8).  This module builds the
detector's reciprocal-space sample points, applies the slice curvature, and
rotates the resulting point cloud by arbitrary rotation matrices.

All reciprocal coordinates are expressed directly in the NUFFT's periodic
convention: frequencies live in ``[-pi, pi)^3`` and integer modes correspond
to the uniform reconstruction grid, so the slice points can be fed straight to
:meth:`repro.core.plan.Plan.set_pts`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_rotations", "rotation_from_quaternion", "detector_qgrid",
           "ewald_slice_points", "rotate_points"]


def rotation_from_quaternion(q):
    """3x3 rotation matrix from a unit quaternion ``(w, x, y, z)``."""
    q = np.asarray(q, dtype=np.float64)
    if q.shape != (4,):
        raise ValueError(f"quaternion must have shape (4,), got {q.shape}")
    norm = np.linalg.norm(q)
    if norm == 0:
        raise ValueError("zero quaternion")
    w, x, y, z = q / norm
    return np.array([
        [1 - 2 * (y * y + z * z), 2 * (x * y - z * w), 2 * (x * z + y * w)],
        [2 * (x * y + z * w), 1 - 2 * (x * x + z * z), 2 * (y * z - x * w)],
        [2 * (x * z - y * w), 2 * (y * z + x * w), 1 - 2 * (x * x + y * y)],
    ])


def random_rotations(n, rng=None):
    """``n`` uniformly distributed rotation matrices (random unit quaternions)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(rng)
    quats = rng.standard_normal((n, 4))
    return np.stack([rotation_from_quaternion(q) for q in quats])


def detector_qgrid(n_pix, q_max=0.8 * np.pi, curvature=0.25):
    """Reciprocal-space sample points of one detector image (unrotated).

    Parameters
    ----------
    n_pix : int
        Detector is ``n_pix x n_pix`` pixels.
    q_max : float
        Largest in-plane frequency reached at the detector edge, in the
        NUFFT's ``[-pi, pi)`` units.  Kept below ``pi`` so the curved slice
        stays inside the periodic box.
    curvature : float
        Ewald-sphere curvature parameter: the out-of-plane component is
        ``qz = -curvature * (qx^2 + qy^2) / (2 q_max)`` (the small-angle
        expansion of ``sqrt(k0^2 - q_perp^2) - k0`` with ``k0 = q_max /
        curvature``).  ``curvature = 0`` gives flat central slices.

    Returns
    -------
    ndarray, shape (n_pix * n_pix, 3)
        Points ``(qx, qy, qz)`` of the unrotated slice.
    """
    if n_pix < 2:
        raise ValueError("n_pix must be >= 2")
    if not (0.0 < q_max < np.pi):
        raise ValueError(f"q_max must be in (0, pi), got {q_max}")
    if curvature < 0:
        raise ValueError("curvature must be nonnegative")
    q1 = np.linspace(-q_max, q_max, n_pix)
    qx, qy = np.meshgrid(q1, q1, indexing="ij")
    q_perp2 = qx ** 2 + qy ** 2
    qz = -curvature * q_perp2 / (2.0 * q_max)
    return np.column_stack([qx.ravel(), qy.ravel(), qz.ravel()])


def rotate_points(points, rotation):
    """Rotate an ``(M, 3)`` point cloud by a 3x3 rotation matrix."""
    points = np.asarray(points, dtype=np.float64)
    rotation = np.asarray(rotation, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must have shape (M, 3), got {points.shape}")
    if rotation.shape != (3, 3):
        raise ValueError(f"rotation must be 3x3, got {rotation.shape}")
    return points @ rotation.T


def ewald_slice_points(rotations, n_pix, q_max=0.8 * np.pi, curvature=0.25):
    """Slice points of a whole image batch, concatenated for one NUFFT call.

    Returns
    -------
    ndarray, shape (n_images * n_pix^2, 3)
        All rotated slice points; image ``i`` occupies the contiguous block
        ``[i * n_pix^2, (i+1) * n_pix^2)``, which is how the slicing and
        merging steps index back into per-image data.
    """
    rotations = np.asarray(rotations, dtype=np.float64)
    if rotations.ndim != 3 or rotations.shape[1:] != (3, 3):
        raise ValueError(f"rotations must have shape (n, 3, 3), got {rotations.shape}")
    base = detector_qgrid(n_pix, q_max=q_max, curvature=curvature)
    return np.concatenate([rotate_points(base, rot) for rot in rotations], axis=0)
