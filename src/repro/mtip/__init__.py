"""M-TIP: multitiered iterative phasing for X-ray single-particle imaging.

The paper's Sec. V application: reconstruct a 3D electron density from many
2D far-field diffraction images taken at unknown orientations.  Each M-TIP
iteration performs

i)   **slicing**   -- evaluate the current 3D Fourier model on every image's
     Ewald-sphere slice (one 3D *type-2* NUFFT over all slice points),
ii)  **orientation matching** -- re-estimate each image's orientation,
iii) **merging**   -- grid the image data back onto the uniform 3D Fourier
     grid (two 3D *type-1* NUFFTs: data and sampling-density weights),
iv)  **phasing**   -- recover a real-space density consistent with the merged
     Fourier magnitudes and a known support.

The paper's data comes from LCLS experiments; here the data is synthesized
from a known density (``repro.mtip.density``) so the full loop can be
validated end to end, while the NUFFT call pattern, problem sizes and
tolerance (eps = 1e-12) match Table II.
"""

from .density import synthetic_density, support_mask
from .ewald import detector_qgrid, ewald_slice_points, random_rotations, rotate_points
from .merging import merge_slices
from .orientation import match_orientations
from .phasing import phase_retrieval
from .pipeline import MTIPConfig, MTIPReconstruction

__all__ = [
    "synthetic_density",
    "support_mask",
    "random_rotations",
    "rotate_points",
    "detector_qgrid",
    "ewald_slice_points",
    "merge_slices",
    "match_orientations",
    "phase_retrieval",
    "MTIPConfig",
    "MTIPReconstruction",
]
