"""The full M-TIP reconstruction loop (paper Sec. V, Fig. 8, Table II).

The driver synthesizes a diffraction experiment from a known density, then
iterates the four M-TIP steps -- slicing (type-2 NUFFT), orientation matching,
merging (two type-1 NUFFTs) and phasing -- until the density is recovered.
Every NUFFT goes through :class:`repro.core.plan.Plan`, so each iteration's
modelled GPU time is available per step, which is what the Table II and
Fig. 9 benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import relative_l2_error
from .density import synthetic_density
from .ewald import ewald_slice_points, random_rotations
from .merging import MergingOperator
from .orientation import match_orientations
from .phasing import centered_fft, phase_retrieval
from .slicing import SlicingOperator

__all__ = ["MTIPConfig", "MTIPIterationRecord", "MTIPReconstruction"]


@dataclass(frozen=True)
class MTIPConfig:
    """Configuration of one M-TIP reconstruction run.

    The paper-scale per-rank problem (Table II) corresponds to
    ``n_modes = 81, n_pix = 128, n_images ~ 1000``; the defaults here are a
    laptop-scale version that runs in seconds while exercising every step.
    """

    n_modes: int = 16
    n_pix: int = 12
    n_images: int = 12
    n_candidates: int = 24
    eps: float = 1e-6
    q_max: float = 0.8 * np.pi
    curvature: float = 0.25
    n_blobs: int = 6
    phasing_iterations: int = 60
    precision: str = "double"
    backend: str = "auto"
    #: Plan-parameter autotuning mode of the slicing/merging plans the
    #: reconstruction owns ("off", "model" or "measure"; see
    #: :mod:`repro.tuning`).  When the plans are leased from a
    #: :class:`~repro.service.TransformService`, the service's own ``tune``
    #: policy governs instead.
    tune: str = "off"
    seed: int = 0


@dataclass
class MTIPIterationRecord:
    """Metrics of one M-TIP iteration."""

    iteration: int
    density_error: float
    fourier_error: float
    mean_orientation_score: float
    nufft_seconds: dict = field(default_factory=dict)


class MTIPReconstruction:
    """End-to-end M-TIP driver on synthetic diffraction data.

    Parameters
    ----------
    config : MTIPConfig
    device : Device, optional
        Simulated GPU all plans run on (one rank's view); the multi-GPU
        drivers pass per-rank devices.
    service : TransformService, optional
        Lease every NUFFT plan from a shared
        :class:`repro.service.TransformService` instead of owning them: the
        slicing and merging plans then come from (and return to) the
        service's pool, so repeated reconstructions -- or several running
        against one service -- amortize planning exactly like external
        requests.  Mutually exclusive with ``device``.
    """

    def __init__(self, config=None, device=None, service=None):
        self.config = config if config is not None else MTIPConfig()
        if device is not None and service is not None:
            raise ValueError(
                "pass either a device or a service (whose fleet places the "
                "plans), not both"
            )
        self.device = device
        self.service = service
        self.rng = np.random.default_rng(self.config.seed)
        self._build_ground_truth()
        self._simulate_measurements()
        self.history = []
        # Reusable NUFFT operators: the plans (kernel, fine grid, correction
        # factors, device buffers) survive across iterations; only set_pts --
        # the bin sort and stencil cache -- reruns when the candidate or
        # assigned orientations move the slice points.  This is exactly the
        # plan/setpts/execute amortization the paper's Sec. V-A interface is
        # designed for.
        self._slicer = None
        self._merger = None

    # ------------------------------------------------------------------ #
    # experiment synthesis
    # ------------------------------------------------------------------ #
    def _build_ground_truth(self):
        cfg = self.config
        self.true_density, self.support = synthetic_density(
            cfg.n_modes, n_blobs=cfg.n_blobs, rng=self.rng
        )
        self.true_modes = centered_fft(self.true_density)

    def _simulate_measurements(self):
        """Forward-model the diffraction images at random unknown orientations."""
        cfg = self.config
        self.true_rotations = random_rotations(cfg.n_images, rng=self.rng)
        points = ewald_slice_points(
            self.true_rotations, cfg.n_pix, q_max=cfg.q_max, curvature=cfg.curvature
        )
        n_modes3 = (cfg.n_modes,) * 3
        slicer = SlicingOperator(n_modes3, points, eps=cfg.eps, device=self.device,
                                 precision=cfg.precision, backend=cfg.backend,
                                 tune=cfg.tune, plan_pool=self.service)
        values = slicer(self.true_modes)
        slicer.destroy()
        intensities = np.abs(values.reshape(cfg.n_images, -1)) ** 2
        self.measured_intensities = intensities
        self.measured_magnitudes = np.sqrt(intensities)

    # ------------------------------------------------------------------ #
    # the four steps
    # ------------------------------------------------------------------ #
    def _candidate_orientations(self):
        """Candidate orientation set: the true ones plus random decoys.

        Including the true orientations keeps the synthetic loop convergent
        with a modest candidate count; a production run would sample a dense
        quasi-uniform grid of SO(3).
        """
        cfg = self.config
        decoys = random_rotations(max(1, cfg.n_candidates - cfg.n_images), rng=self.rng)
        return np.concatenate([self.true_rotations, decoys], axis=0)

    def _get_slicer(self, points):
        cfg = self.config
        if self._slicer is None:
            self._slicer = SlicingOperator(
                (cfg.n_modes,) * 3, points, eps=cfg.eps, device=self.device,
                precision=cfg.precision, backend=cfg.backend,
                tune=cfg.tune, plan_pool=self.service,
            )
        else:
            self._slicer.set_points(points)
        return self._slicer

    def _get_merger(self, points):
        cfg = self.config
        if self._merger is None:
            self._merger = MergingOperator(
                (cfg.n_modes,) * 3, points, eps=cfg.eps, device=self.device,
                precision=cfg.precision, backend=cfg.backend,
                tune=cfg.tune, plan_pool=self.service,
            )
        else:
            self._merger.set_points(points)
        return self._merger

    def close(self):
        """Release the reusable NUFFT operators (their simulated GPU buffers)."""
        if self._slicer is not None:
            self._slicer.destroy()
            self._slicer = None
        if self._merger is not None:
            self._merger.destroy()
            self._merger = None

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __del__(self):  # pragma: no cover - defensive cleanup
        try:
            self.close()
        except Exception:
            pass

    def run_iteration(self, model_modes, iteration_index=0):
        """Run one M-TIP iteration from the current Fourier model.

        Returns the new Fourier model (from the phased density) and an
        :class:`MTIPIterationRecord`.
        """
        cfg = self.config
        nufft_seconds = {}

        # --- step i: slicing at candidate orientations ---------------------
        candidates = self._candidate_orientations()
        candidate_points = ewald_slice_points(
            candidates, cfg.n_pix, q_max=cfg.q_max, curvature=cfg.curvature
        )
        slicer = self._get_slicer(candidate_points)
        candidate_values = slicer(model_modes).reshape(candidates.shape[0], -1)
        nufft_seconds["slicing"] = slicer.nufft_seconds()["total"]
        candidate_intensities = np.abs(candidate_values) ** 2

        # --- step ii: orientation matching ---------------------------------
        assignment, scores = match_orientations(
            self.measured_intensities, candidate_intensities
        )
        assigned_rotations = candidates[assignment]

        # --- step iii: merging ----------------------------------------------
        merge_points = ewald_slice_points(
            assigned_rotations, cfg.n_pix, q_max=cfg.q_max, curvature=cfg.curvature
        )
        # Complex slice estimates: measured magnitudes with the model's phases.
        model_phases = np.exp(1j * np.angle(candidate_values[assignment]))
        slice_values = (self.measured_magnitudes * model_phases).reshape(-1)
        merger = self._get_merger(merge_points)
        merged = merger(slice_values)
        nufft_seconds["merging"] = merger.nufft_seconds()["total"]

        # --- step iv: phasing ------------------------------------------------
        density = phase_retrieval(
            np.abs(merged), self.support, n_iterations=cfg.phasing_iterations,
            method="hio", rng=self.rng,
        )
        new_modes = centered_fft(density)

        record = MTIPIterationRecord(
            iteration=iteration_index,
            density_error=relative_l2_error(density, self.true_density),
            fourier_error=relative_l2_error(np.abs(new_modes), np.abs(self.true_modes)),
            mean_orientation_score=float(np.mean(scores)),
            nufft_seconds=nufft_seconds,
        )
        return new_modes, record

    # ------------------------------------------------------------------ #
    # full run
    # ------------------------------------------------------------------ #
    def run(self, n_iterations=3, initial_modes=None):
        """Run several M-TIP iterations; returns the final density estimate."""
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        cfg = self.config
        if initial_modes is None:
            # Start from the merged measured magnitudes at random orientations
            # (zero phase): a crude but data-driven initial model.
            init_rot = random_rotations(cfg.n_images, rng=self.rng)
            init_points = ewald_slice_points(
                init_rot, cfg.n_pix, q_max=cfg.q_max, curvature=cfg.curvature
            )
            merger = self._get_merger(init_points)
            model_modes = merger(self.measured_magnitudes.reshape(-1).astype(np.complex128))
        else:
            model_modes = np.asarray(initial_modes, dtype=np.complex128)

        self.history = []
        for it in range(n_iterations):
            model_modes, record = self.run_iteration(model_modes, iteration_index=it)
            self.history.append(record)

        density = phase_retrieval(
            np.abs(model_modes), self.support,
            n_iterations=cfg.phasing_iterations, method="er", rng=self.rng,
        )
        return density, self.history
