"""M-TIP step iv: phasing -- recover a real-space density from Fourier magnitudes.

Given the merged Fourier-space magnitudes (the phases are unknown: detectors
measure intensities) and a known real-space support, classic iterative
projection algorithms recover the density.  We implement Error Reduction (ER)
and Hybrid Input-Output (HIO) with optional positivity, which is what the
M-TIP phasing stage amounts to for a noiseless synthetic dataset.

Conventions: the Fourier model lives on the centred mode grid used throughout
this package (ascending ``k`` per axis), so the transforms below wrap numpy's
FFT with the appropriate shifts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["centered_fft", "centered_ifft", "phase_retrieval", "fourier_error"]


def centered_fft(density):
    """FFT mapping a real-space grid to the centred (ascending-k) mode grid."""
    return np.fft.fftshift(np.fft.fftn(np.fft.ifftshift(density)))


def centered_ifft(modes):
    """Inverse of :func:`centered_fft`."""
    return np.fft.fftshift(np.fft.ifftn(np.fft.ifftshift(modes)))


def fourier_error(density, target_magnitudes):
    """Relative l2 mismatch between |F(density)| and the target magnitudes."""
    mags = np.abs(centered_fft(density))
    denom = np.linalg.norm(target_magnitudes)
    if denom == 0:
        return float(np.linalg.norm(mags))
    return float(np.linalg.norm(mags - target_magnitudes) / denom)


def _magnitude_projection(density, target_magnitudes):
    """Replace Fourier magnitudes by the targets, keeping the current phases."""
    modes = centered_fft(density)
    phases = np.exp(1j * np.angle(modes))
    return centered_ifft(target_magnitudes * phases)


def phase_retrieval(target_magnitudes, support, n_iterations=100, beta=0.9,
                    method="hio", enforce_positivity=True, initial=None, rng=None,
                    track_errors=False):
    """Iterative phase retrieval with a support constraint.

    Parameters
    ----------
    target_magnitudes : ndarray, shape (N, N, N)
        Fourier magnitudes on the centred mode grid (e.g. ``abs`` of the
        merged model, or the square root of merged intensities).
    support : ndarray of bool, same shape
        Real-space support mask.
    n_iterations : int
        Number of ER/HIO iterations.
    beta : float
        HIO feedback parameter (ignored by ER).
    method : str
        ``"hio"`` or ``"er"``.
    enforce_positivity : bool
        Clamp negative density inside the support (electron density is
        nonnegative).
    initial : ndarray, optional
        Starting density; random positive noise in the support by default.
    track_errors : bool
        If True, also return the Fourier-error history.

    Returns
    -------
    density : ndarray (real)
    errors : list of float, only when ``track_errors``
    """
    target_magnitudes = np.asarray(target_magnitudes, dtype=np.float64)
    support = np.asarray(support, dtype=bool)
    if target_magnitudes.shape != support.shape:
        raise ValueError("target magnitudes and support must have the same shape")
    if method not in ("hio", "er"):
        raise ValueError(f"method must be 'hio' or 'er', got {method!r}")
    if n_iterations < 1:
        raise ValueError("n_iterations must be >= 1")

    rng = np.random.default_rng(rng)
    if initial is None:
        density = rng.uniform(0.0, 1.0, size=support.shape) * support
    else:
        density = np.array(initial, dtype=np.float64, copy=True)

    errors = []
    for _ in range(n_iterations):
        updated = _magnitude_projection(density, target_magnitudes).real
        violating = ~support
        if enforce_positivity:
            violating = violating | (updated < 0)
        if method == "er":
            new_density = np.where(violating, 0.0, updated)
        else:
            new_density = np.where(violating, density - beta * updated, updated)
        density = new_density
        if track_errors:
            errors.append(fourier_error(density * support, target_magnitudes))

    density = density * support
    if enforce_positivity:
        density = np.clip(density, 0.0, None)
    if track_errors:
        return density, errors
    return density
