"""Synthetic 3D electron densities with known support.

The paper reconstructs real LCLS single-particle data; as a substitution we
generate a molecule-like density -- a handful of Gaussian blobs confined to a
ball -- whose ground truth is known, so the whole M-TIP loop can be checked
quantitatively (forward-model consistency, phasing convergence, end-to-end
recovery error).
"""

from __future__ import annotations

import numpy as np

__all__ = ["synthetic_density", "support_mask"]


def _grid_coords(n):
    """Normalized real-space coordinates in [-1, 1) along one axis."""
    return (np.arange(n) - n / 2.0) / (n / 2.0)


def support_mask(n, radius=0.6):
    """Boolean ball of the given normalized radius on an ``n^3`` grid."""
    if n < 4:
        raise ValueError(f"grid size must be >= 4, got {n}")
    if not (0.0 < radius <= 1.0):
        raise ValueError(f"radius must be in (0, 1], got {radius}")
    x = _grid_coords(n)
    r2 = x[:, None, None] ** 2 + x[None, :, None] ** 2 + x[None, None, :] ** 2
    return r2 <= radius * radius


def synthetic_density(n, n_blobs=8, radius=0.6, blob_sigma=0.08, rng=None):
    """Random Gaussian-blob density supported inside a ball.

    Parameters
    ----------
    n : int
        Real-space grid size per dimension.
    n_blobs : int
        Number of Gaussian blobs ("atoms"/domains).
    radius : float
        Support ball radius in normalized units (the blobs' centres are kept
        well inside so the density is comfortably zero outside the support).
    blob_sigma : float
        Blob standard deviation in normalized units.
    rng : seed or Generator

    Returns
    -------
    density : ndarray, shape (n, n, n)
        Nonnegative real density, normalized to unit maximum.
    mask : ndarray of bool, shape (n, n, n)
        The support ball.
    """
    if n_blobs < 1:
        raise ValueError("n_blobs must be >= 1")
    rng = np.random.default_rng(rng)
    x = _grid_coords(n)
    gx = x[:, None, None]
    gy = x[None, :, None]
    gz = x[None, None, :]

    density = np.zeros((n, n, n), dtype=np.float64)
    max_center = 0.7 * radius
    for _ in range(n_blobs):
        center = rng.uniform(-max_center, max_center, size=3)
        weight = rng.uniform(0.5, 1.5)
        sigma = blob_sigma * rng.uniform(0.7, 1.4)
        r2 = (gx - center[0]) ** 2 + (gy - center[1]) ** 2 + (gz - center[2]) ** 2
        density += weight * np.exp(-r2 / (2.0 * sigma * sigma))

    mask = support_mask(n, radius)
    density *= mask
    peak = density.max()
    if peak > 0:
        density /= peak
    return density, mask
