"""Drop-in facade mirroring the upstream ``cufinufft`` Python interface.

Scripts written against `cuFINUFFT <https://github.com/flatironinstitute/
cufinufft>`_ run verbatim against the reproduction by changing only the
import::

    import repro.cufinufft as cufinufft   # instead of: import cufinufft

    plan = cufinufft.Plan(1, (64, 64), eps=1e-6, gpu_method=2)
    plan.setpts(x, y)
    f = plan.execute(c)

The guru interface and the nine ``nufft{1,2,3}d{1,2,3}`` simple calls share
all their machinery with :mod:`repro.finufft` (same upstream ``iflag`` / sign
defaults, same ``eps`` defaults of ``1e-6`` single / ``1e-14`` double, same
``execute(data, out=None)`` contract); what differs is the options
vocabulary, which uses cuFINUFFT's GPU-flavoured names:

* ``gpu_method`` -- 1 selects the input-driven spreader (GM-sort, or plain
  GM when ``gpu_sort=0``); 2 selects the shared-memory subproblem spreader
  (SM).  Omitted -> the plan's per-transform AUTO choice.
* ``gpu_sort`` -- bin-sort the points before spreading (default on, as
  upstream).
* ``gpu_binsizex`` / ``gpu_binsizey`` / ``gpu_binsizez`` -- bin shape used
  by the sort and the SM subproblem decomposition.
* ``gpu_maxsubprobsize`` -- SM subproblem split threshold.
* ``gpu_kerevalmeth`` -- 0 exact kernel evaluation, 1 Horner (default).
* ``gpu_spreadinterponly`` -- skip FFT + deconvolution, returning the raw
  fine-grid spread / interpolation (types 1 and 2).
* ``dtype`` -- working precision; cuFINUFFT's historical default is single
  precision (``complex64``), unlike CPU finufft's double.

Backend selection follows the registry default for GPU execution
(``backend="cached"`` numerics under the device simulator's accounting when
driven through :mod:`repro.baselines`); pass ``backend=`` explicitly to pin
one.
"""

from __future__ import annotations

import numpy as np

from .core.options import Opts
from .core.plan import Plan as _NativePlan
from .core import simple as _simple
from .finufft import (
    _DEFAULT_EPS,
    _default_iflag,
    _parse_dtype,
    Plan as _FinufftPlan,
)

__all__ = [
    "Plan",
    "nufft1d1", "nufft1d2", "nufft1d3",
    "nufft2d1", "nufft2d2", "nufft2d3",
    "nufft3d1", "nufft3d2", "nufft3d3",
]

#: cuFINUFFT opts accepted and ignored: stream/launch plumbing with no
#: equivalent in the simulation's options surface.
_IGNORED_OPTS = frozenset({
    "gpu_stream", "gpu_device_id", "gpu_maxbatchsize", "gpu_obinsizex",
    "gpu_obinsizey", "gpu_obinsizez", "debug",
})


def _translate_opts(kwargs):
    """Map cuFINUFFT opts names onto :class:`~repro.core.options.Opts` fields.

    ``gpu_method`` + ``gpu_sort`` jointly pick the spreading strategy
    (method 1 is GM-sort, degrading to GM when sorting is disabled; method 2
    is SM), matching the way upstream dispatches its spread kernels.
    Unknown names raise ``TypeError`` so typos fail loudly.
    """
    native = {}
    bins = {}
    method = kwargs.get("gpu_method")
    sort = kwargs.get("gpu_sort")
    for name, value in kwargs.items():
        if name in _IGNORED_OPTS or value is None:
            continue
        if name == "gpu_method":
            value = int(value)
            if value not in (0, 1, 2):
                raise ValueError(f"gpu_method must be 0, 1 or 2, got {value}")
            if value == 1:
                native["method"] = "GM" if (sort is not None and not int(sort)) \
                    else "GM-sort"
            elif value == 2:
                native["method"] = "SM"
        elif name == "gpu_sort":
            native["sort_points"] = bool(int(value))
        elif name in ("gpu_binsizex", "gpu_binsizey", "gpu_binsizez"):
            bins["xyz".index(name[-1])] = int(value)
        elif name == "gpu_maxsubprobsize":
            native["max_subproblem_size"] = int(value)
        elif name == "gpu_kerevalmeth":
            native["kernel_eval"] = "horner" if int(value) else "exact"
        elif name == "gpu_spreadinterponly":
            native["spread_only"] = bool(value)
        elif name == "upsampfac":
            native["upsampfac"] = float(value)
        elif name == "backend":
            native["backend"] = value
        else:
            raise TypeError(f"unknown cufinufft option {name!r}")
    if bins:
        ndim = max(bins) + 1
        if set(bins) != set(range(ndim)):
            raise ValueError(
                "gpu_binsize must be given for contiguous leading axes "
                f"(got axes {sorted(bins)})"
            )
        native["bin_shape"] = tuple(bins[d] for d in range(ndim))
    if method is not None and int(method) == 1 and sort is not None \
            and not int(sort):
        native["sort_points"] = False
    return native


class Plan(_FinufftPlan):
    """Guru-interface plan with the upstream ``cufinufft.Plan`` signature.

    Identical lifecycle to :class:`repro.finufft.Plan` (``setpts`` /
    ``execute(data, out=None)`` / ``destroy``, context-manager support,
    upstream ``iflag`` and ``eps`` defaults) but speaking cuFINUFFT's
    ``gpu_*`` options vocabulary and defaulting to single precision, the
    GPU library's historical default dtype.

    Examples
    --------
    >>> import numpy as np
    >>> import repro.cufinufft as cufinufft
    >>> rng = np.random.default_rng(0)
    >>> x = rng.uniform(-np.pi, np.pi, 400).astype(np.float32)
    >>> c = (rng.standard_normal(400) + 1j * rng.standard_normal(400))
    >>> with cufinufft.Plan(1, (48,), gpu_method=2) as plan:
    ...     _ = plan.setpts(x)
    ...     f = plan.execute(c.astype(np.complex64))
    >>> f.shape, f.dtype
    ((48,), dtype('complex64'))
    """

    def __init__(self, nufft_type, n_modes_or_dim, iflag=None, n_trans=1,
                 eps=None, dtype="complex64", **kwargs):
        precision = _parse_dtype(dtype)
        if eps is None:
            eps = _DEFAULT_EPS[precision]
        if iflag is None:
            iflag = _default_iflag(nufft_type)
        overrides = _translate_opts(kwargs)
        overrides["precision"] = precision
        overrides["isign"] = int(np.sign(int(iflag))) if int(iflag) != 0 else 0
        self._plan = _NativePlan(nufft_type, n_modes_or_dim, n_trans=n_trans,
                                 eps=eps, opts=Opts(**overrides))


def _simple_kwargs(isign, kwargs):
    """Translate simple-call cuFINUFFT opts into native wrapper kwargs."""
    native = _translate_opts(kwargs)
    native["isign"] = int(np.sign(int(isign))) if int(isign) != 0 else 0
    return native


def nufft1d1(x, c, n_modes, out=None, eps=1e-6, isign=1, **kwargs):
    """1D type-1 simple call with upstream defaults (``isign=+1``)."""
    return _simple.nufft1d1(x, c, n_modes, eps=eps, out=out,
                            **_simple_kwargs(isign, kwargs))


def nufft1d2(x, f, out=None, eps=1e-6, isign=-1, **kwargs):
    """1D type-2 simple call with upstream defaults (``isign=-1``)."""
    return _simple.nufft1d2(x, f, eps=eps, out=out,
                            **_simple_kwargs(isign, kwargs))


def nufft1d3(x, c, s, out=None, eps=1e-6, isign=1, **kwargs):
    """1D type-3 simple call with upstream defaults (``isign=+1``)."""
    return _simple.nufft1d3(x, c, s, eps=eps, out=out,
                            **_simple_kwargs(isign, kwargs))


def nufft2d1(x, y, c, n_modes, out=None, eps=1e-6, isign=1, **kwargs):
    """2D type-1 simple call with upstream defaults (``isign=+1``)."""
    return _simple.nufft2d1(x, y, c, n_modes, eps=eps, out=out,
                            **_simple_kwargs(isign, kwargs))


def nufft2d2(x, y, f, out=None, eps=1e-6, isign=-1, **kwargs):
    """2D type-2 simple call with upstream defaults (``isign=-1``)."""
    return _simple.nufft2d2(x, y, f, eps=eps, out=out,
                            **_simple_kwargs(isign, kwargs))


def nufft2d3(x, y, c, s, t, out=None, eps=1e-6, isign=1, **kwargs):
    """2D type-3 simple call with upstream defaults (``isign=+1``)."""
    return _simple.nufft2d3(x, y, c, s, t, eps=eps, out=out,
                            **_simple_kwargs(isign, kwargs))


def nufft3d1(x, y, z, c, n_modes, out=None, eps=1e-6, isign=1, **kwargs):
    """3D type-1 simple call with upstream defaults (``isign=+1``)."""
    return _simple.nufft3d1(x, y, z, c, n_modes, eps=eps, out=out,
                            **_simple_kwargs(isign, kwargs))


def nufft3d2(x, y, z, f, out=None, eps=1e-6, isign=-1, **kwargs):
    """3D type-2 simple call with upstream defaults (``isign=-1``)."""
    return _simple.nufft3d2(x, y, z, f, eps=eps, out=out,
                            **_simple_kwargs(isign, kwargs))


def nufft3d3(x, y, z, c, s, t, u, out=None, eps=1e-6, isign=1, **kwargs):
    """3D type-3 simple call with upstream defaults (``isign=+1``)."""
    return _simple.nufft3d3(x, y, z, c, s, t, u, eps=eps, out=out,
                            **_simple_kwargs(isign, kwargs))
