"""Plain-text table emission shared by the benchmark harnesses.

Every benchmark regenerates its figure/table as an ASCII table printed to
stdout (and optionally written to ``results/``), with the same rows/series as
the paper so the shapes can be compared side by side.
"""

from __future__ import annotations

import os

__all__ = ["format_table", "speedup", "write_results"]


def _format_cell(value, floatfmt):
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def format_table(headers, rows, title=None, floatfmt=".3g"):
    """Format a list-of-rows table with aligned columns.

    Parameters
    ----------
    headers : sequence of str
    rows : sequence of sequences
        Each row must have the same length as ``headers``.
    title : str, optional
        Printed above the table with an underline.
    floatfmt : str, optional
        Format spec applied to float cells.
    """
    headers = [str(h) for h in headers]
    str_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
        str_rows.append([_format_cell(v, floatfmt) for v in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def speedup(baseline_time, candidate_time):
    """``baseline / candidate`` -- how many times faster the candidate is."""
    if candidate_time <= 0:
        raise ValueError("candidate_time must be positive")
    if baseline_time < 0:
        raise ValueError("baseline_time must be nonnegative")
    return baseline_time / candidate_time


def write_results(name, text, directory=None):
    """Write a benchmark's table text under ``results/`` (created on demand).

    Returns the path written, or None when writing is disabled by setting the
    environment variable ``REPRO_NO_RESULT_FILES``.
    """
    from ..core.env import no_result_files

    if no_result_files():
        return None
    directory = directory or os.path.join(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))), "results")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    return path
