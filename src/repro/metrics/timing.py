"""Wall-clock timing helpers and unit conversions.

The paper reports execution time *per nonuniform point* in nanoseconds; the
benchmark harness reports both that quantity (from the device cost model) and
the wall-clock time of the simulation itself (via pytest-benchmark).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["WallClock", "ns_per_point"]


def ns_per_point(seconds, n_points, n_trans=1):
    """Convert a transform time to nanoseconds per nonuniform point."""
    if n_points <= 0:
        raise ValueError("n_points must be positive")
    if n_trans <= 0:
        raise ValueError("n_trans must be positive")
    return 1e9 * float(seconds) / (float(n_points) * float(n_trans))


@dataclass
class WallClock:
    """Accumulating stopwatch with named laps.

    >>> clock = WallClock()
    >>> with clock.lap("spread"):
    ...     pass
    >>> "spread" in clock.laps
    True
    """

    laps: dict = field(default_factory=dict)

    class _Lap:
        def __init__(self, clock, name):
            self.clock = clock
            self.name = name
            self.start = None

        def __enter__(self):
            self.start = time.perf_counter()
            return self

        def __exit__(self, exc_type, exc, tb):
            elapsed = time.perf_counter() - self.start
            self.clock.laps[self.name] = self.clock.laps.get(self.name, 0.0) + elapsed
            return False

    def lap(self, name):
        """Context manager accumulating elapsed time under ``name``."""
        return WallClock._Lap(self, name)

    def total(self):
        return sum(self.laps.values())

    def report(self):
        lines = [f"  {name:30s} {seconds * 1e3:10.3f} ms" for name, seconds in self.laps.items()]
        lines.append(f"  {'total':30s} {self.total() * 1e3:10.3f} ms")
        return "\n".join(lines)
