"""Timing, modeling and table-emission utilities shared by the benchmarks."""

from .modeling import ModelResult, model_cufinufft, sample_spread_stats
from .tables import format_table, speedup
from .timing import WallClock, ns_per_point

__all__ = [
    "ModelResult",
    "model_cufinufft",
    "sample_spread_stats",
    "format_table",
    "speedup",
    "WallClock",
    "ns_per_point",
]
