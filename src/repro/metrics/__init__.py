"""Timing, modeling and table-emission utilities shared by the benchmarks.

:mod:`.modeling` is loaded lazily (PEP 562): it imports the backend and plan
layers, while :mod:`repro.core.plan` itself imports the dependency-free
:mod:`.allocs` counter from this package -- eager loading would be a cycle.
"""

from . import allocs
from .allocs import AllocStats, track_allocs
from .tables import format_table, speedup
from .timing import WallClock, ns_per_point

__all__ = [
    "allocs",
    "AllocStats",
    "track_allocs",
    "ModelResult",
    "model_cufinufft",
    "sample_spread_stats",
    "format_table",
    "speedup",
    "WallClock",
    "ns_per_point",
]

_MODELING_NAMES = ("ModelResult", "model_cufinufft", "sample_spread_stats")


def __getattr__(name):
    if name in _MODELING_NAMES or name == "modeling":
        from . import modeling

        return getattr(modeling, name) if name != "modeling" else modeling
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
