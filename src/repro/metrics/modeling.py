"""Paper-scale timing estimation without paper-scale numerics.

The paper's figures use up to ``M = 1.3e8`` nonuniform points.  Running the
*numerics* at that size in pure NumPy would be slow and pointless -- the
modelled device time depends on the problem only through aggregate occupancy
statistics (how many points, which bins they fall in, the grid geometry).
This module therefore:

1. samples the requested point distribution at a reduced size
   (``max_sample`` points),
2. bin-sorts the sample and rescales the histogram to the full point count
   (:meth:`repro.core.binsort.SpreadStats.scaled`),
3. assembles the same kernel/transfer profiles a :class:`repro.core.plan.Plan`
   would record, and
4. prices them with the cost model.

The result carries the paper's three timings plus RAM and spread-fraction
estimates, so one function call produces a row of any benchmark table.
Accuracy columns are handled separately (by running real numerics at a small
problem size, or by the kernels' ``estimated_error``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace

import numpy as np

from ..backends import get_backend
from ..backends.device_sim import interp_stage_profiles, spread_stage_profiles
from ..core.binsort import (
    SpreadStats,
    bin_sort,
    binsort_kernel_profiles,
    estimate_subproblem_count,
    to_grid_coordinates,
)
from ..core.deconvolve import deconvolve_kernel_profile
from ..core.gridsize import fine_grid_shape, next_smooth_even_235
from ..core.options import Opts, Precision, SpreadMethod
from ..core.plan import CUDA_CONTEXT_MB
from ..gpu.costmodel import CostModel
from ..gpu.device import V100_SPEC
from ..gpu.fft import fft_kernel_profile
from ..gpu.profiler import PipelineProfile
from ..kernels.es_kernel import ESKernel
from ..workloads.distributions import make_distribution
from .timing import ns_per_point

__all__ = ["ModelResult", "sample_spread_stats", "model_cufinufft"]

#: Default cap on the number of points actually generated for sampling.
DEFAULT_MAX_SAMPLE = 1 << 21


@dataclass
class ModelResult:
    """Modelled performance of one transform configuration.

    Attributes
    ----------
    times : dict
        Seconds for ``exec``, ``setup``, ``total``, ``mem``, ``total+mem``.
    n_points : int
        Paper-scale point count the times refer to.
    ram_mb : float
        Simulated device memory including the CUDA-context baseline.
    spread_fraction : float
        Fraction of "exec" spent in spreading/interpolation kernels.
    error_estimate : float
        Heuristic relative l2 error delivered at the requested tolerance.
    meta : dict
        Extra information (method, kernel width, fine grid, ...).
    """

    times: dict
    n_points: int
    ram_mb: float
    spread_fraction: float
    error_estimate: float
    meta: dict = field(default_factory=dict)

    def ns_per_point(self, key="exec"):
        return ns_per_point(self.times[key], self.n_points)


def sample_spread_stats(distribution, n_points, fine_shape, bin_shape, rng=None,
                        max_sample=DEFAULT_MAX_SAMPLE):
    """Occupancy statistics of ``n_points`` points of a named distribution.

    At most ``max_sample`` points are actually generated; the histogram is
    rescaled to ``n_points`` afterwards.
    """
    n_points = int(n_points)
    ndim = len(fine_shape)
    n_sample = int(min(n_points, max_sample))
    coords = make_distribution(distribution, n_sample, ndim, fine_shape=fine_shape, rng=rng)
    grid_coords = [to_grid_coordinates(coords[d], fine_shape[d]) for d in range(ndim)]
    sort = bin_sort(grid_coords, fine_shape, bin_shape)
    stats = SpreadStats.from_binsort(sort)
    if n_sample != n_points:
        stats = stats.scaled(n_points)
    return stats


def _device_allocation_bytes(fine_shape, n_modes, n_points, ndim, precision, sorted_method):
    """Bytes of the plan-lifetime device allocations (mirrors Plan.__init__/set_pts)."""
    cplx = precision.complex_itemsize
    real = precision.real_itemsize
    total = 0.0
    n_fine = float(np.prod(fine_shape))
    total += n_fine * cplx            # fine grid
    total += n_fine * cplx            # cuFFT workspace
    total += sum(n_modes) * real      # separable correction factors
    total += ndim * n_points * real   # point coordinates
    if sorted_method:
        total += 2.0 * 4.0 * n_points  # bin index + permutation (int32)
    return total


def _model_type3(n_modes, n_points, eps, method, distribution, precision,
                 base_opts, spec, rng, max_sample, kernel, backend):
    """Price a type-3 transform as its type-2∘scale∘type-1 composition.

    ``n_modes`` is the rescaled composition grid (see :func:`model_cufinufft`);
    targets are assumed as numerous as sources and, being rescaled into
    ``[-pi/sigma, pi/sigma]``, uniformly occupying regardless of the source
    distribution.
    """
    t3_grid = tuple(next_smooth_even_235(int(n)) for n in n_modes)
    ndim = len(t3_grid)
    bin_shape = base_opts.resolved_bin_shape(ndim)
    inner_fine = fine_grid_shape(t3_grid, kernel.width, base_opts.upsampfac)
    cplx = precision.complex_itemsize
    real = precision.real_itemsize
    tpb = base_opts.threads_per_block

    # Outer spread method resolves like type 1 (with the Remark-2 fallback);
    # the inner interpolation resolves like type 2.
    if method is SpreadMethod.SM:
        from ..gpu.threadblock import LaunchConfigError, check_shared_memory_fit

        try:
            check_shared_memory_fit(bin_shape, kernel.width, cplx, spec)
        except LaunchConfigError:
            method = SpreadMethod.GM_SORT
    interp_method = base_opts.resolve_method(2, ndim, precision)

    stats_src = sample_spread_stats(
        distribution, n_points, t3_grid, bin_shape, rng=rng, max_sample=max_sample
    )
    stats_tgt = sample_spread_stats(
        "rand", n_points, inner_fine, bin_shape, rng=rng, max_sample=max_sample
    )

    pipeline = PipelineProfile()
    # --- setup: bin sorts of the sources (outer) and targets (inner) --------
    if method in (SpreadMethod.GM_SORT, SpreadMethod.SM):
        for prof in binsort_kernel_profiles(
            stats_src.n_points, stats_src.n_bins, ndim, real, tpb
        ):
            pipeline.add_kernel(prof, phase="setup")
    if interp_method in (SpreadMethod.GM_SORT, SpreadMethod.SM):
        for prof in binsort_kernel_profiles(
            stats_tgt.n_points, stats_tgt.n_bins, ndim, real, tpb
        ):
            pipeline.add_kernel(prof, phase="setup")

    # --- exec: spread -> inner type 2 (precorrect, FFT, interp) -> deconvolve
    subproblems = None
    if method is SpreadMethod.SM:
        n_sub = estimate_subproblem_count(
            stats_src.bin_counts, base_opts.max_subproblem_size
        )
        subproblems = SimpleNamespace(n_subproblems=max(1, n_sub))
    for prof in spread_stage_profiles(
        method, stats_src, kernel, precision, tpb, spec, subproblems=subproblems
    ):
        pipeline.add_kernel(prof, phase="exec")
    pipeline.add_kernel(
        deconvolve_kernel_profile(t3_grid, cplx, name="precorrect"), phase="exec"
    )
    pipeline.add_kernel(fft_kernel_profile(inner_fine, cplx), phase="exec")
    for prof in interp_stage_profiles(
        interp_method, stats_tgt, kernel, precision, tpb, spec
    ):
        pipeline.add_kernel(prof, phase="exec")
    pipeline.add_kernel(
        deconvolve_kernel_profile((n_points,), cplx, name="t3_deconvolve"),
        phase="exec",
    )

    # --- transfers and allocations ---------------------------------------
    n_t3 = float(np.prod(t3_grid))
    n_inner = float(np.prod(inner_fine))
    alloc_bytes = (n_t3 + 2.0 * n_inner) * cplx       # t3 grid + inner grid/wk
    alloc_bytes += 2.0 * ndim * n_points * real       # source + target coords
    alloc_bytes += 2.0 * n_points * cplx              # pre/post phase vectors
    alloc_bytes += 2.0 * 2.0 * 4.0 * n_points         # two bin sorts (int32 x2)
    pipeline.add_transfer("alloc", alloc_bytes, "plan allocations")
    pipeline.add_transfer("h2d", 2.0 * ndim * n_points * real, "points + targets")
    pipeline.add_transfer("h2d", n_points * cplx, "strengths")
    pipeline.add_transfer("d2h", n_points * cplx, "target values")

    cost = CostModel(spec=spec, precision_itemsize=real)
    times = cost.pipeline_times(pipeline)
    spread_time = sum(
        cost.kernel_time(k)
        for k in pipeline.exec_kernels()
        if k.name.startswith(("spread", "interp"))
    )
    spread_fraction = spread_time / times["exec"] if times["exec"] > 0 else 0.0

    return ModelResult(
        times=times,
        n_points=n_points,
        ram_mb=alloc_bytes / (1024.0 * 1024.0) + CUDA_CONTEXT_MB,
        spread_fraction=spread_fraction,
        error_estimate=kernel.estimated_error(),
        meta={
            "method": method.value,
            "backend": backend.name,
            "kernel_width": kernel.width,
            "fine_shape": inner_fine,
            "t3_grid": t3_grid,
            "bin_shape": bin_shape,
            "precision": precision.value,
            "nufft_type": 3,
            "distribution": distribution,
        },
    )


def model_cufinufft(nufft_type, n_modes, n_points, eps, method="auto",
                    distribution="rand", precision="single", opts=None,
                    spec=None, rng=None, max_sample=DEFAULT_MAX_SAMPLE,
                    spread_only=False, fine_shape=None, stats=None,
                    backend="device_sim"):
    """Model the paper's three timings for one cuFINUFFT transform.

    Parameters mirror :class:`repro.core.plan.Plan`; ``spread_only`` restricts
    the exec phase to the spread/interp kernel (Figs. 2 and 3), and
    ``fine_shape`` overrides the derived fine grid (those figures sweep the
    fine grid directly).  ``stats`` can supply precomputed
    :class:`~repro.core.binsort.SpreadStats` to avoid repeated sampling.

    For ``nufft_type=3`` there are no uniform modes: ``n_modes`` is read as
    the size of the rescaled composition grid (``nf ~ 2 sigma S X / pi`` per
    dimension, the grid a real type-3 plan derives in ``set_pts``) and the
    model prices the full type-2∘scale∘type-1 pipeline -- spread onto that
    grid, then the inner type-2 (pre-correct, FFT on the doubly-upsampled
    grid, interpolation at the targets) plus the target-frequency
    deconvolution, assuming as many targets as sources.

    The kernel profiles are assembled through the same
    :mod:`repro.backends.device_sim` stage dispatch an executed plan uses, so
    modelled and measured pipelines can never diverge.  ``backend`` must
    therefore name a profile-recording backend (``"device_sim"`` or
    ``"auto"``); the pure-numerics backends have no modelled device time.

    Returns
    -------
    ModelResult
    """
    spec = spec if spec is not None else V100_SPEC
    precision = Precision.parse(precision)
    base_opts = opts if opts is not None else Opts(precision=precision)
    resolved_backend = get_backend(base_opts.copy(backend=backend).resolve_backend())
    if not resolved_backend.records_profiles:
        raise ValueError(
            f"backend {resolved_backend.name!r} records no kernel profiles; "
            "modelled timings require a device-sim backend"
        )
    n_modes = tuple(int(n) for n in n_modes)
    ndim = len(n_modes)
    method = SpreadMethod.parse(method)
    if method is SpreadMethod.AUTO:
        method = base_opts.resolve_method(nufft_type, ndim, precision)

    kernel = ESKernel.from_tolerance(eps)
    if nufft_type == 3:
        return _model_type3(
            n_modes, n_points, eps, method, distribution, precision,
            base_opts, spec, rng, max_sample, kernel, resolved_backend,
        )
    if fine_shape is None:
        fine_shape = fine_grid_shape(n_modes, kernel.width, base_opts.upsampfac)
    fine_shape = tuple(int(n) for n in fine_shape)
    bin_shape = base_opts.resolved_bin_shape(ndim)

    # SM fallback for configurations whose padded bin exceeds shared memory
    # (paper Remark 2: 3D double precision at high accuracy).
    if method is SpreadMethod.SM:
        from ..gpu.threadblock import LaunchConfigError, check_shared_memory_fit

        try:
            check_shared_memory_fit(bin_shape, kernel.width, precision.complex_itemsize, spec)
        except LaunchConfigError:
            method = SpreadMethod.GM_SORT

    if stats is None:
        stats = sample_spread_stats(
            distribution, n_points, fine_shape, bin_shape, rng=rng, max_sample=max_sample
        )

    pipeline = PipelineProfile()
    sorted_method = method in (SpreadMethod.GM_SORT, SpreadMethod.SM)

    # --- setup phase -----------------------------------------------------
    if sorted_method:
        for prof in binsort_kernel_profiles(
            stats.n_points, stats.n_bins, ndim, precision.real_itemsize,
            base_opts.threads_per_block,
        ):
            pipeline.add_kernel(prof, phase="setup")

    # --- exec phase (same stage->profile dispatch as the device_sim backend)
    if nufft_type == 1:
        subproblems = None
        if method is SpreadMethod.SM:
            n_sub = estimate_subproblem_count(stats.bin_counts, base_opts.max_subproblem_size)
            subproblems = SimpleNamespace(n_subproblems=max(1, n_sub))
        profiles = spread_stage_profiles(
            method, stats, kernel, precision, base_opts.threads_per_block, spec,
            subproblems=subproblems,
        )
    else:
        profiles = interp_stage_profiles(
            method, stats, kernel, precision, base_opts.threads_per_block, spec
        )
    for prof in profiles:
        pipeline.add_kernel(prof, phase="exec")

    if not spread_only:
        pipeline.add_kernel(
            fft_kernel_profile(fine_shape, precision.complex_itemsize), phase="exec"
        )
        pipeline.add_kernel(
            deconvolve_kernel_profile(n_modes, precision.complex_itemsize), phase="exec"
        )

    # --- transfers and allocations ---------------------------------------
    cplx = precision.complex_itemsize
    real = precision.real_itemsize
    n_mode_total = float(np.prod(n_modes))
    alloc_bytes = _device_allocation_bytes(
        fine_shape, n_modes, stats.n_points, ndim, precision, sorted_method
    )
    pipeline.add_transfer("alloc", alloc_bytes, "plan allocations")
    pipeline.add_transfer("h2d", ndim * stats.n_points * real, "points")
    if nufft_type == 1:
        pipeline.add_transfer("h2d", stats.n_points * cplx, "strengths")
        pipeline.add_transfer("d2h", n_mode_total * cplx, "modes")
    else:
        pipeline.add_transfer("h2d", n_mode_total * cplx, "modes")
        pipeline.add_transfer("d2h", stats.n_points * cplx, "targets")

    cost = CostModel(spec=spec, precision_itemsize=precision.real_itemsize)
    times = cost.pipeline_times(pipeline)

    spread_time = sum(
        cost.kernel_time(k)
        for k in pipeline.exec_kernels()
        if k.name.startswith(("spread", "interp"))
    )
    spread_fraction = spread_time / times["exec"] if times["exec"] > 0 else 0.0

    ram_mb = alloc_bytes / (1024.0 * 1024.0) + CUDA_CONTEXT_MB

    return ModelResult(
        times=times,
        n_points=stats.n_points,
        ram_mb=ram_mb,
        spread_fraction=spread_fraction,
        error_estimate=kernel.estimated_error(),
        meta={
            "method": method.value,
            "backend": resolved_backend.name,
            "kernel_width": kernel.width,
            "fine_shape": fine_shape,
            "bin_shape": bin_shape,
            "precision": precision.value,
            "nufft_type": nufft_type,
            "distribution": distribution,
        },
    )
