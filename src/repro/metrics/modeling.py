"""Paper-scale timing estimation without paper-scale numerics.

The paper's figures use up to ``M = 1.3e8`` nonuniform points.  Running the
*numerics* at that size in pure NumPy would be slow and pointless -- the
modelled device time depends on the problem only through aggregate occupancy
statistics (how many points, which bins they fall in, the grid geometry).
This module therefore:

1. samples the requested point distribution at a reduced size
   (``max_sample`` points),
2. bin-sorts the sample and rescales the histogram to the full point count
   (:meth:`repro.core.binsort.SpreadStats.scaled`),
3. assembles the same kernel/transfer profiles a :class:`repro.core.plan.Plan`
   would record, and
4. prices them with the cost model.

The result carries the paper's three timings plus RAM and spread-fraction
estimates, so one function call produces a row of any benchmark table.
Accuracy columns are handled separately (by running real numerics at a small
problem size, or by the kernels' ``estimated_error``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace

import numpy as np

from ..core.binsort import (
    SpreadStats,
    bin_sort,
    binsort_kernel_profiles,
    estimate_subproblem_count,
    to_grid_coordinates,
)
from ..core.deconvolve import deconvolve_kernel_profile
from ..core.gridsize import fine_grid_shape
from ..core.interp import interp_kernel_profiles
from ..core.options import Opts, Precision, SpreadMethod
from ..core.plan import CUDA_CONTEXT_MB
from ..core.spread import spread_kernel_profiles, spread_sm_kernel_profiles
from ..gpu.costmodel import CostModel
from ..gpu.device import V100_SPEC
from ..gpu.fft import fft_kernel_profile
from ..gpu.profiler import PipelineProfile
from ..kernels.es_kernel import ESKernel
from ..workloads.distributions import make_distribution
from .timing import ns_per_point

__all__ = ["ModelResult", "sample_spread_stats", "model_cufinufft"]

#: Default cap on the number of points actually generated for sampling.
DEFAULT_MAX_SAMPLE = 1 << 21


@dataclass
class ModelResult:
    """Modelled performance of one transform configuration.

    Attributes
    ----------
    times : dict
        Seconds for ``exec``, ``setup``, ``total``, ``mem``, ``total+mem``.
    n_points : int
        Paper-scale point count the times refer to.
    ram_mb : float
        Simulated device memory including the CUDA-context baseline.
    spread_fraction : float
        Fraction of "exec" spent in spreading/interpolation kernels.
    error_estimate : float
        Heuristic relative l2 error delivered at the requested tolerance.
    meta : dict
        Extra information (method, kernel width, fine grid, ...).
    """

    times: dict
    n_points: int
    ram_mb: float
    spread_fraction: float
    error_estimate: float
    meta: dict = field(default_factory=dict)

    def ns_per_point(self, key="exec"):
        return ns_per_point(self.times[key], self.n_points)


def sample_spread_stats(distribution, n_points, fine_shape, bin_shape, rng=None,
                        max_sample=DEFAULT_MAX_SAMPLE):
    """Occupancy statistics of ``n_points`` points of a named distribution.

    At most ``max_sample`` points are actually generated; the histogram is
    rescaled to ``n_points`` afterwards.
    """
    n_points = int(n_points)
    ndim = len(fine_shape)
    n_sample = int(min(n_points, max_sample))
    coords = make_distribution(distribution, n_sample, ndim, fine_shape=fine_shape, rng=rng)
    grid_coords = [to_grid_coordinates(coords[d], fine_shape[d]) for d in range(ndim)]
    sort = bin_sort(grid_coords, fine_shape, bin_shape)
    stats = SpreadStats.from_binsort(sort)
    if n_sample != n_points:
        stats = stats.scaled(n_points)
    return stats


def _device_allocation_bytes(fine_shape, n_modes, n_points, ndim, precision, sorted_method):
    """Bytes of the plan-lifetime device allocations (mirrors Plan.__init__/set_pts)."""
    cplx = precision.complex_itemsize
    real = precision.real_itemsize
    total = 0.0
    n_fine = float(np.prod(fine_shape))
    total += n_fine * cplx            # fine grid
    total += n_fine * cplx            # cuFFT workspace
    total += sum(n_modes) * real      # separable correction factors
    total += ndim * n_points * real   # point coordinates
    if sorted_method:
        total += 2.0 * 4.0 * n_points  # bin index + permutation (int32)
    return total


def model_cufinufft(nufft_type, n_modes, n_points, eps, method="auto",
                    distribution="rand", precision="single", opts=None,
                    spec=None, rng=None, max_sample=DEFAULT_MAX_SAMPLE,
                    spread_only=False, fine_shape=None, stats=None):
    """Model the paper's three timings for one cuFINUFFT transform.

    Parameters mirror :class:`repro.core.plan.Plan`; ``spread_only`` restricts
    the exec phase to the spread/interp kernel (Figs. 2 and 3), and
    ``fine_shape`` overrides the derived fine grid (those figures sweep the
    fine grid directly).  ``stats`` can supply precomputed
    :class:`~repro.core.binsort.SpreadStats` to avoid repeated sampling.

    Returns
    -------
    ModelResult
    """
    spec = spec if spec is not None else V100_SPEC
    precision = Precision.parse(precision)
    base_opts = opts if opts is not None else Opts(precision=precision)
    n_modes = tuple(int(n) for n in n_modes)
    ndim = len(n_modes)
    method = SpreadMethod.parse(method)
    if method is SpreadMethod.AUTO:
        method = base_opts.resolve_method(nufft_type, ndim, precision)

    kernel = ESKernel.from_tolerance(eps)
    if fine_shape is None:
        fine_shape = fine_grid_shape(n_modes, kernel.width, base_opts.upsampfac)
    fine_shape = tuple(int(n) for n in fine_shape)
    bin_shape = base_opts.resolved_bin_shape(ndim)

    # SM fallback for configurations whose padded bin exceeds shared memory
    # (paper Remark 2: 3D double precision at high accuracy).
    if method is SpreadMethod.SM:
        from ..gpu.threadblock import LaunchConfigError, check_shared_memory_fit

        try:
            check_shared_memory_fit(bin_shape, kernel.width, precision.complex_itemsize, spec)
        except LaunchConfigError:
            method = SpreadMethod.GM_SORT

    if stats is None:
        stats = sample_spread_stats(
            distribution, n_points, fine_shape, bin_shape, rng=rng, max_sample=max_sample
        )

    pipeline = PipelineProfile()
    sorted_method = method in (SpreadMethod.GM_SORT, SpreadMethod.SM)

    # --- setup phase -----------------------------------------------------
    if sorted_method:
        for prof in binsort_kernel_profiles(
            stats.n_points, stats.n_bins, ndim, precision.real_itemsize,
            base_opts.threads_per_block,
        ):
            pipeline.add_kernel(prof, phase="setup")

    # --- exec phase ------------------------------------------------------
    if nufft_type == 1:
        if method is SpreadMethod.SM:
            n_sub = estimate_subproblem_count(stats.bin_counts, base_opts.max_subproblem_size)
            subproblems = SimpleNamespace(n_subproblems=max(1, n_sub))
            profiles = spread_sm_kernel_profiles(
                stats, kernel, precision, subproblems, base_opts.threads_per_block, spec
            )
        else:
            profiles = spread_kernel_profiles(
                method, stats, kernel, precision, base_opts.threads_per_block, spec
            )
    else:
        interp_method = method if method is not SpreadMethod.SM else SpreadMethod.GM_SORT
        profiles = interp_kernel_profiles(
            interp_method, stats, kernel, precision, base_opts.threads_per_block, spec
        )
    for prof in profiles:
        pipeline.add_kernel(prof, phase="exec")

    if not spread_only:
        pipeline.add_kernel(
            fft_kernel_profile(fine_shape, precision.complex_itemsize), phase="exec"
        )
        pipeline.add_kernel(
            deconvolve_kernel_profile(n_modes, precision.complex_itemsize), phase="exec"
        )

    # --- transfers and allocations ---------------------------------------
    cplx = precision.complex_itemsize
    real = precision.real_itemsize
    n_mode_total = float(np.prod(n_modes))
    alloc_bytes = _device_allocation_bytes(
        fine_shape, n_modes, stats.n_points, ndim, precision, sorted_method
    )
    pipeline.add_transfer("alloc", alloc_bytes, "plan allocations")
    pipeline.add_transfer("h2d", ndim * stats.n_points * real, "points")
    if nufft_type == 1:
        pipeline.add_transfer("h2d", stats.n_points * cplx, "strengths")
        pipeline.add_transfer("d2h", n_mode_total * cplx, "modes")
    else:
        pipeline.add_transfer("h2d", n_mode_total * cplx, "modes")
        pipeline.add_transfer("d2h", stats.n_points * cplx, "targets")

    cost = CostModel(spec=spec, precision_itemsize=precision.real_itemsize)
    times = cost.pipeline_times(pipeline)

    spread_time = sum(
        cost.kernel_time(k)
        for k in pipeline.exec_kernels()
        if k.name.startswith(("spread", "interp"))
    )
    spread_fraction = spread_time / times["exec"] if times["exec"] > 0 else 0.0

    ram_mb = alloc_bytes / (1024.0 * 1024.0) + CUDA_CONTEXT_MB

    return ModelResult(
        times=times,
        n_points=stats.n_points,
        ram_mb=ram_mb,
        spread_fraction=spread_fraction,
        error_estimate=kernel.estimated_error(),
        meta={
            "method": method.value,
            "kernel_width": kernel.width,
            "fine_shape": fine_shape,
            "bin_shape": bin_shape,
            "precision": precision.value,
            "nufft_type": nufft_type,
            "distribution": distribution,
        },
    )
