"""New-buffer / copy counting for the zero-copy execution pipeline.

The workspace refactor's core claim -- *steady-state executes touch no new
buffers and copy nothing for conforming inputs* -- is a measurable property,
not a code-review judgement.  This module provides the counter that measures
it: :class:`AllocStats` accumulates pipeline-level buffer events while an
:func:`track_allocs` context is active, and :class:`repro.core.plan.Plan`
attaches the per-execute stats to its :class:`~repro.gpu.profiler.
PipelineProfile` so benchmarks (``benchmarks/bench_interop.py``) and CI can
regression-gate "0 hot-path copies per execute".

Counting scope
--------------
Counted events are *pipeline buffer management*:

* workspace buffer (re)allocations -- a steady-state execute reuses every
  workspace buffer, so any recorded allocation is a cache miss;
* dtype/layout conversion copies of user data (``astype`` that actually
  copied, terminal ``out[...] =`` copy-ins);
* fresh output allocations when the caller passed no ``out=``.

*Not* counted are stage-internal temporaries priced by the kernel cost model
(sparse mat-mat products, FFT scratch inside pocketfft, per-chunk fancy-index
gathers): those model on-device kernel working sets, not host-side buffer
churn, and exist equally in cuFINUFFT itself.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["AllocStats", "track_allocs", "record_alloc", "record_copy",
           "as_dtype_counted"]

#: Stack of currently active collectors (inner type-3 executes nest).
_ACTIVE = []


@dataclass
class AllocStats:
    """Counts of hot-path buffer events observed during one tracked region.

    ``allocs``/``alloc_bytes`` count fresh buffer allocations (workspace
    misses, output arrays materialized because no ``out=`` was passed);
    ``copies``/``copy_bytes`` count data copies (dtype conversions that
    really copied, terminal copy-ins).  ``events`` retains the individual
    ``(kind, label, nbytes)`` records for diagnostics.
    """

    allocs: int = 0
    alloc_bytes: int = 0
    copies: int = 0
    copy_bytes: int = 0
    events: list = field(default_factory=list)

    def record_alloc(self, nbytes, label=""):
        """Count one fresh buffer allocation of ``nbytes``."""
        self.allocs += 1
        self.alloc_bytes += int(nbytes)
        self.events.append(("alloc", label, int(nbytes)))

    def record_copy(self, nbytes, label=""):
        """Count one data copy of ``nbytes``."""
        self.copies += 1
        self.copy_bytes += int(nbytes)
        self.events.append(("copy", label, int(nbytes)))

    @property
    def total_events(self):
        """Allocations plus copies -- zero on a conforming steady-state run."""
        return self.allocs + self.copies

    def summary(self):
        """Compact dict for benchmark JSON rows."""
        return {
            "allocs": self.allocs,
            "alloc_bytes": self.alloc_bytes,
            "copies": self.copies,
            "copy_bytes": self.copy_bytes,
        }


@contextmanager
def track_allocs():
    """Collect buffer events into a fresh :class:`AllocStats` while active.

    Contexts nest (a type-3 execute runs its inner type-2 execute inside the
    outer context): every event is recorded into *all* active collectors, so
    the outer stats see the composed transform's full behaviour.
    """
    stats = AllocStats()
    _ACTIVE.append(stats)
    try:
        yield stats
    finally:
        _ACTIVE.remove(stats)


def record_alloc(nbytes, label=""):
    """Record a buffer allocation into every active collector (if any)."""
    for stats in _ACTIVE:
        stats.record_alloc(nbytes, label)


def record_copy(nbytes, label=""):
    """Record a data copy into every active collector (if any)."""
    for stats in _ACTIVE:
        stats.record_copy(nbytes, label)


def as_dtype_counted(array, dtype, label=""):
    """``array.astype(dtype, copy=False)``, counting the copy if one happened.

    The no-copy path (already the right dtype, strided views included) records
    nothing, which is exactly what makes conforming non-contiguous inputs
    flow through the pipeline at zero counted cost.
    """
    converted = array.astype(dtype, copy=False)
    if converted is not array:
        record_copy(converted.nbytes, label or "dtype conversion")
    return converted
