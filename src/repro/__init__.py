"""repro: reproduction of cuFINUFFT (IPDPS 2021) on a simulated CUDA substrate.

The package implements the paper's general-purpose GPU nonuniform FFT library
(types 1, 2 and 3; dimensions 1, 2 and 3; single/double precision) with the
GM, GM-sort and SM spreading strategies and a pluggable execution-backend
layer (exact ``reference`` numerics, the fused ``cached`` fast path, and the
profiled ``device_sim`` default), together with every substrate the
evaluation depends on: a simulated V100 device and cost model, CPU/GPU
baseline libraries (FINUFFT, CUNFFT, gpuNUFFT analogues), a simulated
multi-GPU MPI cluster, and the M-TIP X-ray reconstruction application.

Quickstart
----------

>>> import numpy as np
>>> from repro import Plan
>>> rng = np.random.default_rng(0)
>>> M = 10_000
>>> x, y = rng.uniform(-np.pi, np.pi, (2, M))
>>> c = rng.normal(size=M) + 1j * rng.normal(size=M)
>>> plan = Plan(1, (64, 64), eps=1e-6)
>>> _ = plan.set_pts(x, y)
>>> f = plan.execute(c)        # (64, 64) Fourier coefficients
"""

from .backends import available_backends, get_backend, register_backend
from .service import TransformRequest, TransformResult, TransformService
from .core import (
    Opts,
    Plan,
    Precision,
    SpreadMethod,
    max_abs_error,
    nudft_type1,
    nudft_type2,
    nudft_type3,
    nufft1d1,
    nufft1d2,
    nufft1d3,
    nufft2d1,
    nufft2d2,
    nufft2d3,
    nufft3d1,
    nufft3d2,
    nufft3d3,
    relative_l2_error,
)

__version__ = "1.1.0"

__all__ = [
    "Plan",
    "Opts",
    "Precision",
    "SpreadMethod",
    "available_backends",
    "get_backend",
    "register_backend",
    "TransformService",
    "TransformRequest",
    "TransformResult",
    "nufft1d1",
    "nufft1d2",
    "nufft1d3",
    "nufft2d1",
    "nufft2d2",
    "nufft2d3",
    "nufft3d1",
    "nufft3d2",
    "nufft3d3",
    "nudft_type1",
    "nudft_type2",
    "nudft_type3",
    "relative_l2_error",
    "max_abs_error",
    "__version__",
]
