"""repro: reproduction of cuFINUFFT (IPDPS 2021) on a simulated CUDA substrate.

The package implements the paper's general-purpose GPU nonuniform FFT library
(types 1, 2 and 3; dimensions 1, 2 and 3; single/double precision) with the
GM, GM-sort and SM spreading strategies and a pluggable execution-backend
layer (exact ``reference`` numerics, the fused ``cached`` fast path, and the
profiled ``device_sim`` default), together with every substrate the
evaluation depends on: a simulated V100 device and cost model, CPU/GPU
baseline libraries (FINUFFT, CUNFFT, gpuNUFFT analogues), a simulated
multi-GPU MPI cluster, and the M-TIP X-ray reconstruction application.
On top sit a serving layer (:class:`TransformService`: plan pooling, request
coalescing, fleet sharding), a cost-model-driven autotuner
(:mod:`repro.tuning`) that searches spread method / bin geometry / ``Msub``
per problem signature instead of the paper's fixed Remark-1/2 choices, and an
inverse-NUFFT subsystem (:mod:`repro.solve`: adjoint operator pairs,
Pipe--Menon density compensation, Toeplitz-accelerated CG) that solves
``min_f ||A f - c||`` over MRI-style radial/spiral trajectories.

See ``docs/ARCHITECTURE.md`` for the layer map and ``docs/BENCHMARKS.md``
for the benchmark-to-paper-figure correspondence.

Quickstart
----------

>>> import numpy as np
>>> from repro import Plan
>>> rng = np.random.default_rng(0)
>>> M = 10_000
>>> x, y = rng.uniform(-np.pi, np.pi, (2, M))
>>> c = rng.normal(size=M) + 1j * rng.normal(size=M)
>>> plan = Plan(1, (64, 64), eps=1e-6)
>>> _ = plan.set_pts(x, y)
>>> f = plan.execute(c)        # (64, 64) Fourier coefficients
>>> f.shape
(64, 64)
>>> plan.destroy()

Autotuned plan parameters (see :mod:`repro.tuning`):

>>> from repro import tune_opts
>>> opts = tune_opts(1, (64, 64), n_points=M, eps=1e-6)
>>> with Plan(1, (64, 64), eps=1e-6, opts=opts) as tuned_plan:
...     f_tuned = tuned_plan.set_pts(x, y).execute(c)
>>> bool(np.allclose(f_tuned, f, rtol=1e-4, atol=1e-4))
True
"""

from .backends import available_backends, get_backend, register_backend
from .service import TransformRequest, TransformResult, TransformService
from .solve import (
    AdjointOperator,
    ForwardOperator,
    SolveRequest,
    SolveResult,
    ToeplitzNormalOperator,
    cg_solve,
    inverse_nufft,
    pcg_solve,
    pipe_menon_weights,
)
from .tuning import Autotuner, TuningCache, tune_opts
from .core import (
    Opts,
    Plan,
    Precision,
    SpreadMethod,
    max_abs_error,
    nudft_type1,
    nudft_type2,
    nudft_type3,
    nufft1d1,
    nufft1d2,
    nufft1d3,
    nufft2d1,
    nufft2d2,
    nufft2d3,
    nufft3d1,
    nufft3d2,
    nufft3d3,
    relative_l2_error,
)

__version__ = "1.1.0"

__all__ = [
    "Plan",
    "Opts",
    "Precision",
    "SpreadMethod",
    "available_backends",
    "get_backend",
    "register_backend",
    "TransformService",
    "TransformRequest",
    "TransformResult",
    "ForwardOperator",
    "AdjointOperator",
    "ToeplitzNormalOperator",
    "cg_solve",
    "pcg_solve",
    "pipe_menon_weights",
    "inverse_nufft",
    "SolveRequest",
    "SolveResult",
    "Autotuner",
    "TuningCache",
    "tune_opts",
    "nufft1d1",
    "nufft1d2",
    "nufft1d3",
    "nufft2d1",
    "nufft2d2",
    "nufft2d3",
    "nufft3d1",
    "nufft3d2",
    "nufft3d3",
    "nudft_type1",
    "nudft_type2",
    "nudft_type3",
    "relative_l2_error",
    "max_abs_error",
    "__version__",
]
