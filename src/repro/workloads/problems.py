"""Problem sweeps for the paper's figures and tables.

A :class:`ProblemSpec` pins down one NUFFT problem instance: transform type,
mode counts, number of nonuniform points, tolerance, distribution and
precision.  The ``fig*_problems`` / ``table*_problems`` helpers enumerate the
sweeps of the corresponding figure/table at *paper scale*; every helper takes
a ``scale`` argument in ``(0, 1]`` that shrinks mode counts and point counts
proportionally (keeping the density ``rho`` fixed) so the same sweep can be
exercised quickly in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "ProblemSpec",
    "fig2_problems",
    "fig3_problems",
    "fig4_problems",
    "fig5_problems",
    "fig6_problems",
    "fig7_problems",
    "table1_problems",
    "table2_problems",
]


@dataclass(frozen=True)
class ProblemSpec:
    """One NUFFT problem instance of a benchmark sweep.

    Attributes
    ----------
    label : str
        Row/series label used in the emitted tables.
    nufft_type : int
        1 or 2.
    n_modes : tuple of int
        Mode counts (N1, ..., Nd).
    n_points : int
        Number of nonuniform points M.
    eps : float
        Requested tolerance.
    distribution : str
        ``"rand"``, ``"cluster"`` or ``"mixture"``.
    precision : str
        ``"single"`` or ``"double"``.
    extra : dict
        Free-form parameters (e.g. fine-grid size for spread-only sweeps).
    """

    label: str
    nufft_type: int
    n_modes: tuple
    n_points: int
    eps: float
    distribution: str = "rand"
    precision: str = "single"
    extra: dict = field(default_factory=dict)

    @property
    def ndim(self):
        return len(self.n_modes)

    def scaled(self, scale):
        """Shrink the problem while keeping density and dimensionality fixed.

        Mode counts scale by ``scale`` (floored at 8 per dimension) and the
        point count by ``scale**ndim`` (floored at 256), which preserves
        ``rho = M / prod(sigma N_i)``.
        """
        if not (0.0 < scale <= 1.0):
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        if scale == 1.0:
            return self
        n_modes = tuple(max(8, int(round(n * scale))) for n in self.n_modes)
        n_points = max(256, int(round(self.n_points * scale ** self.ndim)))
        return replace(self, n_modes=n_modes, n_points=n_points)


def _density_points(fine_shape, rho):
    return int(round(rho * float(np.prod(fine_shape))))


# --------------------------------------------------------------------------- #
# Fig. 2 / Fig. 3: spreading and interpolation method sweeps
# --------------------------------------------------------------------------- #
def fig2_problems(scale=1.0):
    """Spread-method sweep of Fig. 2: rho=1, eps=1e-5, single precision.

    The x-axis of Fig. 2 is the *fine* grid size ``n1=n2(=n3)``; spread-only
    problems therefore store the fine grid in ``extra["fine_shape"]`` and set
    ``n_modes = fine/2`` (sigma = 2).
    """
    specs = []
    for ndim, exponents in ((2, range(7, 13)), (3, range(5, 10))):
        for dist in ("rand", "cluster"):
            for p in exponents:
                n_fine = 2 ** p
                fine_shape = (n_fine,) * ndim
                m = _density_points(fine_shape, 1.0)
                specs.append(
                    ProblemSpec(
                        label=f"{ndim}D {dist} n={n_fine}",
                        nufft_type=1,
                        n_modes=tuple(n_fine // 2 for _ in range(ndim)),
                        n_points=m,
                        eps=1e-5,
                        distribution=dist,
                        precision="single",
                        extra={"fine_shape": fine_shape, "spread_only": True},
                    ).scaled(scale)
                )
    return specs


def fig3_problems(scale=1.0):
    """Interpolation-method sweep of Fig. 3: "rand" only, eps=1e-5."""
    specs = []
    for ndim, exponents in ((2, range(7, 13)), (3, range(5, 10))):
        for p in exponents:
            n_fine = 2 ** p
            fine_shape = (n_fine,) * ndim
            m = _density_points(fine_shape, 1.0)
            specs.append(
                ProblemSpec(
                    label=f"{ndim}D rand n={n_fine}",
                    nufft_type=2,
                    n_modes=tuple(n_fine // 2 for _ in range(ndim)),
                    n_points=m,
                    eps=1e-5,
                    distribution="rand",
                    precision="single",
                    extra={"fine_shape": fine_shape, "spread_only": True},
                ).scaled(scale)
            )
    return specs


# --------------------------------------------------------------------------- #
# Figs. 4/5: accuracy sweeps, single precision
# --------------------------------------------------------------------------- #
_FIG4_EPS_2D = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6)
_FIG4_EPS_3D = (1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6)


def fig4_problems(scale=1.0):
    """Library-comparison accuracy sweep (Figs. 4 and 5), single precision.

    2D: N = 1000^2, M = 1e7.  3D: N = 100^3, M = 1e7.  "rand" distribution.
    """
    specs = []
    for nufft_type in (1, 2):
        for ndim, n_per_dim, eps_list in ((2, 1000, _FIG4_EPS_2D), (3, 100, _FIG4_EPS_3D)):
            for eps in eps_list:
                specs.append(
                    ProblemSpec(
                        label=f"{ndim}D type{nufft_type} eps={eps:g}",
                        nufft_type=nufft_type,
                        n_modes=(n_per_dim,) * ndim,
                        n_points=10_000_000,
                        eps=eps,
                        distribution="rand",
                        precision="single",
                    ).scaled(scale)
                )
    return specs


def fig5_problems(scale=1.0):
    """Fig. 5 uses the same problems as Fig. 4 (different timing view)."""
    return fig4_problems(scale)


# --------------------------------------------------------------------------- #
# Fig. 6: distribution sensitivity at fixed eps=1e-2
# --------------------------------------------------------------------------- #
def fig6_problems(scale=1.0):
    """2D sweep over N = 2^6..2^11 at rho = 1, eps = 1e-2, rand vs cluster."""
    specs = []
    for nufft_type in (1, 2):
        for dist in ("rand", "cluster"):
            for p in range(6, 12):
                n = 2 ** p
                fine = (2 * n, 2 * n)
                specs.append(
                    ProblemSpec(
                        label=f"type{nufft_type} {dist} N={n}",
                        nufft_type=nufft_type,
                        n_modes=(n, n),
                        n_points=_density_points(fine, 1.0),
                        eps=1e-2,
                        distribution=dist,
                        precision="single",
                    ).scaled(scale)
                )
    return specs


# --------------------------------------------------------------------------- #
# Fig. 7: double-precision accuracy sweeps
# --------------------------------------------------------------------------- #
_FIG7_EPS = (1e-1, 1e-3, 1e-5, 1e-7, 1e-9, 1e-11, 1e-13)


def fig7_problems(scale=1.0):
    """Double-precision accuracy sweep (Fig. 7): same sizes as Fig. 4."""
    specs = []
    for nufft_type in (1, 2):
        for ndim, n_per_dim in ((2, 1000), (3, 100)):
            for eps in _FIG7_EPS:
                specs.append(
                    ProblemSpec(
                        label=f"{ndim}D type{nufft_type} eps={eps:g}",
                        nufft_type=nufft_type,
                        n_modes=(n_per_dim,) * ndim,
                        n_points=10_000_000,
                        eps=eps,
                        distribution="rand",
                        precision="double",
                    ).scaled(scale)
                )
    return specs


# --------------------------------------------------------------------------- #
# Table I and Table II
# --------------------------------------------------------------------------- #
def table1_problems(scale=1.0):
    """Table I: 3D type-1, "rand", N=32^3 / 256^3, eps = 1e-2 / 1e-5."""
    specs = []
    for eps in (1e-2, 1e-5):
        for n, m in ((32, 262_144), (256, 134_217_728)):
            specs.append(
                ProblemSpec(
                    label=f"N={n}^3 eps={eps:g}",
                    nufft_type=1,
                    n_modes=(n, n, n),
                    n_points=m,
                    eps=eps,
                    distribution="rand",
                    precision="single",
                ).scaled(scale)
            )
    return specs


def table2_problems(scale=1.0):
    """Table II: M-TIP per-rank problems at eps = 1e-12 (double precision).

    Slicing = 3D type 2 with N=41^3, M=1.02e6 (rho=1.86); merging = 3D type 1
    with N=81^3, M=1.64e7 (rho=3.85).
    """
    return [
        ProblemSpec(
            label="slicing (type 2)",
            nufft_type=2,
            n_modes=(41, 41, 41),
            n_points=1_020_000,
            eps=1e-12,
            distribution="rand",
            precision="double",
            extra={"mtip_step": "slicing"},
        ).scaled(scale),
        ProblemSpec(
            label="merging (type 1)",
            nufft_type=1,
            n_modes=(81, 81, 81),
            n_points=16_400_000,
            eps=1e-12,
            distribution="rand",
            precision="double",
            extra={"mtip_step": "merging"},
        ).scaled(scale),
    ]
