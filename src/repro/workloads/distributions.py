"""Nonuniform point distributions used in the paper's evaluation (Sec. IV).

Two extreme cases drive every benchmark:

* ``"rand"``    -- i.i.d. uniform over the whole periodic box ``[-pi, pi)^d``;
* ``"cluster"`` -- i.i.d. uniform inside the tiny box
  ``[0, 8 h_1] x ... x [0, 8 h_d]`` where ``h_i = 2 pi / n_i`` are the *fine*
  grid spacings, i.e. all M points crammed into an 8-cell-per-side corner.
  This is the adversarial distribution for input-driven spreading (atomic
  collisions) and is what makes CUNFFT up to 200x slower.

``mixture`` adds a less extreme distribution (a blend of uniform background
and Gaussian clumps) mentioned in the paper's "less extreme nonuniform point
distributions" remark, used by the ablation benchmarks.

The MRI-style *trajectories* (``radial_points``, ``spiral_points``) are the
sampling patterns of the inverse-NUFFT workload (:mod:`repro.solve`): k-space
locations along radial spokes or golden-angle Archimedean spiral interleaves,
strongly oversampled near the origin -- exactly the density inhomogeneity the
Pipe--Menon weights compensate.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rand_points",
    "cluster_points",
    "mixture_points",
    "radial_points",
    "spiral_points",
    "make_distribution",
    "strengths",
    "problem_density",
]

TWO_PI = 2.0 * np.pi

#: Golden-angle increment (radians) between successive spokes/interleaves:
#: ``pi * (3 - sqrt(5))``, the standard golden-angle MRI ordering.
GOLDEN_ANGLE = np.pi * (3.0 - np.sqrt(5.0))


def _check_m(n_points):
    n_points = int(n_points)
    if n_points < 1:
        raise ValueError(f"n_points must be >= 1, got {n_points}")
    return n_points


def rand_points(n_points, ndim, rng=None):
    """The paper's "rand" distribution: uniform over ``[-pi, pi)^d``.

    Returns a list of ``ndim`` arrays of shape ``(n_points,)``.
    """
    n_points = _check_m(n_points)
    rng = np.random.default_rng(rng)
    return [rng.uniform(-np.pi, np.pi, n_points) for _ in range(ndim)]


def cluster_points(n_points, fine_shape, rng=None, cells=8):
    """The paper's "cluster" distribution: uniform in ``[0, cells * h_i]`` per dim.

    Parameters
    ----------
    n_points : int
    fine_shape : tuple of int
        Fine (upsampled) grid sizes ``n_i``; the box edge in dimension ``i``
        is ``cells * 2 pi / n_i``.
    cells : int
        Box size in fine-grid cells (8 in the paper).
    """
    n_points = _check_m(n_points)
    rng = np.random.default_rng(rng)
    out = []
    for n_i in fine_shape:
        h = TWO_PI / int(n_i)
        out.append(rng.uniform(0.0, cells * h, n_points))
    return out


def mixture_points(n_points, ndim, rng=None, cluster_fraction=0.5, n_clumps=16,
                   clump_sigma=0.05):
    """A milder nonuniform distribution: uniform background + Gaussian clumps.

    ``cluster_fraction`` of the points are drawn from ``n_clumps`` isotropic
    Gaussian clumps with standard deviation ``clump_sigma`` (radians), the
    rest uniformly; everything is folded back into ``[-pi, pi)``.
    """
    n_points = _check_m(n_points)
    if not (0.0 <= cluster_fraction <= 1.0):
        raise ValueError("cluster_fraction must be in [0, 1]")
    rng = np.random.default_rng(rng)
    n_clustered = int(round(cluster_fraction * n_points))
    n_uniform = n_points - n_clustered

    centers = rng.uniform(-np.pi, np.pi, size=(n_clumps, ndim))
    assignment = rng.integers(0, n_clumps, size=n_clustered)
    coords = []
    for d in range(ndim):
        clustered = centers[assignment, d] + clump_sigma * rng.standard_normal(n_clustered)
        uniform = rng.uniform(-np.pi, np.pi, n_uniform)
        x = np.concatenate([clustered, uniform])
        # fold into [-pi, pi)
        x = np.mod(x + np.pi, TWO_PI) - np.pi
        coords.append(x)
    # Shuffle jointly so the "user order" is not sorted by sub-population.
    perm = rng.permutation(n_points)
    return [c[perm] for c in coords]


def radial_points(n_points, n_spokes=None, rng=None, golden_angle=False):
    """2D radial k-space trajectory: samples along spokes through the origin.

    Each spoke is a diameter of the k-space disc of radius ``pi``: radii run
    uniformly over ``[-pi, pi)`` (``n_points // n_spokes`` samples per spoke,
    the centre oversampled ``n_spokes``-fold relative to the edge -- the
    ``1/|k|`` density that makes unweighted gridding blur).

    Parameters
    ----------
    n_points : int
        Total number of k-space samples (split evenly across spokes; the
        remainder goes to the first spokes).
    n_spokes : int, optional
        Number of spokes; defaults to ``ceil(sqrt(n_points))``, which
        balances radial and angular resolution.
    rng : seed or Generator, optional
        Unused (the trajectory is deterministic); accepted for signature
        compatibility with the random distributions.
    golden_angle : bool
        Increment spoke angles by the golden angle instead of uniformly over
        ``[0, pi)`` (golden-angle radial MRI ordering).

    Returns
    -------
    list of ndarray
        ``[kx, ky]``, each of shape ``(n_points,)``, inside ``[-pi, pi)^2``.
    """
    n_points = _check_m(n_points)
    if n_spokes is None:
        n_spokes = max(1, int(np.ceil(np.sqrt(n_points))))
    n_spokes = min(int(n_spokes), n_points)
    if n_spokes < 1:
        raise ValueError(f"n_spokes must be >= 1, got {n_spokes}")
    if golden_angle:
        angles = np.mod(GOLDEN_ANGLE * np.arange(n_spokes), np.pi)
    else:
        angles = np.linspace(0.0, np.pi, n_spokes, endpoint=False)
    counts = np.full(n_spokes, n_points // n_spokes)
    counts[: n_points - counts.sum()] += 1
    kx, ky = [], []
    for theta, m in zip(angles, counts):
        if m == 0:
            continue
        radii = np.linspace(-np.pi, np.pi, int(m), endpoint=False)
        kx.append(radii * np.cos(theta))
        ky.append(radii * np.sin(theta))
    return [np.concatenate(kx), np.concatenate(ky)]


def spiral_points(n_points, n_interleaves=16, n_turns=8.0, rng=None):
    """2D golden-angle Archimedean spiral trajectory.

    Each interleaf is an Archimedean spiral ``r(t) = pi * t``,
    ``theta(t) = 2 pi n_turns t`` for ``t in [0, 1)``, rotated by the golden
    angle times its index; samples are uniform in ``t``, so the centre of
    k-space is sampled far more densely than the edge (the usual spiral
    density).

    Parameters
    ----------
    n_points : int
        Total number of samples (split across interleaves, remainder to the
        first ones).
    n_interleaves : int
        Number of rotated spiral arms.
    n_turns : float
        Revolutions per interleaf.
    rng : seed or Generator, optional
        Unused (deterministic trajectory); accepted for signature
        compatibility.

    Returns
    -------
    list of ndarray
        ``[kx, ky]``, each of shape ``(n_points,)``, inside ``[-pi, pi)^2``.
    """
    n_points = _check_m(n_points)
    n_interleaves = min(max(1, int(n_interleaves)), n_points)
    if float(n_turns) <= 0:
        raise ValueError(f"n_turns must be positive, got {n_turns}")
    counts = np.full(n_interleaves, n_points // n_interleaves)
    counts[: n_points - counts.sum()] += 1
    kx, ky = [], []
    for i, m in enumerate(counts):
        if m == 0:
            continue
        t = np.linspace(0.0, 1.0, int(m), endpoint=False)
        radius = np.pi * t
        theta = 2.0 * np.pi * float(n_turns) * t + GOLDEN_ANGLE * i
        kx.append(radius * np.cos(theta))
        ky.append(radius * np.sin(theta))
    return [np.concatenate(kx), np.concatenate(ky)]


def make_distribution(name, n_points, ndim, fine_shape=None, rng=None, **kwargs):
    """Dispatch by distribution name.

    ``"rand"``, ``"cluster"`` and ``"mixture"`` are the paper's benchmark
    distributions (any dimension); ``"radial"`` and ``"spiral"`` are the 2D
    MRI trajectories of the inverse-NUFFT workload.
    """
    key = str(name).lower()
    if key == "rand":
        return rand_points(n_points, ndim, rng)
    if key == "cluster":
        if fine_shape is None:
            raise ValueError("the cluster distribution needs the fine grid shape")
        return cluster_points(n_points, fine_shape, rng, **kwargs)
    if key == "mixture":
        return mixture_points(n_points, ndim, rng, **kwargs)
    if key in ("radial", "spiral"):
        if ndim != 2:
            raise ValueError(f"the {key} trajectory is 2D, got ndim={ndim}")
        maker = radial_points if key == "radial" else spiral_points
        return maker(n_points, rng=rng, **kwargs)
    raise ValueError(
        f"unknown distribution {name!r}; expected rand, cluster, mixture, "
        "radial or spiral"
    )


def strengths(n_points, rng=None, dtype=np.complex128):
    """Random complex strengths ``c_j`` with unit-variance real/imag parts."""
    n_points = _check_m(n_points)
    rng = np.random.default_rng(rng)
    c = rng.standard_normal(n_points) + 1j * rng.standard_normal(n_points)
    return c.astype(dtype)


def problem_density(n_points, fine_shape):
    """Problem density ``rho = M / prod(n_i)`` (paper Eq. (16))."""
    denom = float(np.prod([int(n) for n in fine_shape]))
    if denom <= 0:
        raise ValueError(f"invalid fine_shape {fine_shape!r}")
    return float(n_points) / denom
