"""Workload generators: nonuniform point distributions and problem sweeps."""

from .distributions import (
    cluster_points,
    make_distribution,
    mixture_points,
    problem_density,
    rand_points,
    strengths,
)
from .problems import ProblemSpec, fig2_problems, fig4_problems, fig6_problems, table1_problems

__all__ = [
    "rand_points",
    "cluster_points",
    "mixture_points",
    "make_distribution",
    "strengths",
    "problem_density",
    "ProblemSpec",
    "fig2_problems",
    "fig4_problems",
    "fig6_problems",
    "table1_problems",
]
