"""Workload generators: nonuniform point distributions and problem sweeps."""

from .distributions import (
    cluster_points,
    make_distribution,
    mixture_points,
    problem_density,
    radial_points,
    rand_points,
    spiral_points,
    strengths,
)
from .problems import ProblemSpec, fig2_problems, fig4_problems, fig6_problems, table1_problems

__all__ = [
    "rand_points",
    "cluster_points",
    "mixture_points",
    "radial_points",
    "spiral_points",
    "make_distribution",
    "strengths",
    "problem_density",
    "ProblemSpec",
    "fig2_problems",
    "fig4_problems",
    "fig6_problems",
    "table1_problems",
]
