"""Unified warm-state artifact store (see :mod:`repro.artifacts.store`).

One versioned, content-addressed cache layer for everything a warmed process
would otherwise rebuild at startup: stencil/CSR caches, Horner kernel fits,
tuning wisdom and Toeplitz PSF kernels.  Point a
:class:`~repro.service.TransformService` (or a bare
:class:`~repro.core.plan.Plan`) at an :class:`ArtifactStore` directory --
or export ``REPRO_ARTIFACT_STORE`` -- and restarts skip straight to serving:

>>> import numpy as np
>>> from repro.artifacts import ArtifactStore
>>> from repro import Plan
>>> store = ArtifactStore()            # pass root="/path" to persist
>>> x = np.linspace(-3, 3, 200)
>>> with Plan(1, (32,), artifact_store=store) as plan:
...     _ = plan.set_pts(x)            # builds + stores the stencil
>>> with Plan(1, (32,), artifact_store=store) as plan:
...     _ = plan.set_pts(x)            # warm: loads it back instead
>>> store.stats.by_kind["stencil"]["builds"]
1
"""

from .store import (
    ARRAY_KINDS,
    RECORD_KINDS,
    ArtifactStats,
    ArtifactStore,
    default_store,
    reset_default_store,
)

__all__ = [
    "ArtifactStore",
    "ArtifactStats",
    "ARRAY_KINDS",
    "RECORD_KINDS",
    "default_store",
    "reset_default_store",
]
