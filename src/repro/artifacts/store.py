"""Versioned, content-addressed store of warm plan state.

One :class:`ArtifactStore` unifies the four warm-state caches that
previously each carried their own ad-hoc keying and persistence story:
stencil/CSR caches (:mod:`repro.core.stencil`), Horner kernel fits
(:mod:`repro.kernels.es_kernel`), tuning wisdom (:mod:`repro.tuning.cache`)
and Toeplitz PSF kernels (:mod:`repro.solve.toeplitz`).  A
:class:`~repro.service.TransformService` pointed at the same store directory
pre-warms pooled plans from it at startup, so a restarted process answers its
first request without recomputing any of that state.

Artifacts come in two flavors:

* **array kinds** -- one ``.npz`` file per entry under ``root/<kind>/``,
  named by a digest of the entry key, with a JSON ``__meta__`` member
  carrying the schema version and the full key (collision guard).  Loads use
  ``allow_pickle=False``; all returned arrays are read-only.
* **record kinds** -- one tolerant JSON table per kind (``root/<kind>.json``,
  the PR 4 tuning-cache layout: ``{"schema": v, "entries": {...}}``), so an
  existing ``REPRO_TUNING_CACHE`` file keeps working unchanged.

Robustness contract (generalizing the PR 4 :class:`~repro.tuning.TuningCache`
guarantees, pinned by ``tests/test_artifacts.py``):

* writes are **atomic** (temp file + ``os.replace``): a concurrent reader can
  never observe a torn file produced by this module;
* a **corrupt, truncated or unreadable** artifact never raises -- it counts
  as ``corrupt`` in :class:`ArtifactStats` and the caller recomputes;
* an entry with the **wrong schema version** (or a digest-colliding key) is
  skipped individually, counted as ``stale``, and recomputed;
* builds are **single-flight**: concurrent :meth:`ArtifactStore.get_or_build`
  calls for one key coordinate through a per-key lock, so exactly one thread
  pays the build.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import zipfile
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..core import env as _env

__all__ = [
    "ArtifactStore",
    "ArtifactStats",
    "ARRAY_KINDS",
    "RECORD_KINDS",
    "default_store",
    "reset_default_store",
]

#: Built-in array kinds and their schema versions (bump on layout change;
#: mismatched entries are skipped as stale and rebuilt).
ARRAY_KINDS = {"stencil": 1, "horner": 1, "psf": 1}

#: Built-in record kinds (tolerant JSON tables) and their schema versions.
RECORD_KINDS = {"tuning": 1, "plans": 1}

#: Default in-memory LRU bound per array kind (entries, not bytes).  Horner
#: fits are tiny and hot (the bound mirrors the ``lru_cache(maxsize=64)``
#: they replace); stencils and PSF kernels are large, so only a few stay
#: resident and the disk tier serves the rest.
_DEFAULT_MAX_MEMORY = {"horner": 64, "stencil": 8, "psf": 8}

_EVENTS = ("hit", "miss", "stale", "corrupt", "build")

#: npz member reserved for the entry's JSON metadata.
_META_MEMBER = "__meta__"


@dataclass
class ArtifactStats:
    """Counters of store traffic, aggregate and per kind.

    ``hits``/``misses`` count lookups; ``stale`` counts entries skipped for a
    schema-version (or key-collision) mismatch; ``corrupt`` counts unreadable
    or torn entries; ``builds`` counts builder invocations through
    :meth:`ArtifactStore.get_or_build` -- the counter the zero-recomputation
    steady-state tests pin at zero against a warmed store.
    """

    hits: int = 0
    misses: int = 0
    stale: int = 0
    corrupt: int = 0
    builds: int = 0
    by_kind: dict = field(default_factory=dict)

    _FIELD = {"hit": "hits", "miss": "misses", "stale": "stale",
              "corrupt": "corrupt", "build": "builds"}

    def record(self, kind, event):
        """Count one ``event`` (a member of ``("hit", "miss", ...)``)."""
        attr = self._FIELD[event]
        setattr(self, attr, getattr(self, attr) + 1)
        per = self.by_kind.setdefault(kind, dict.fromkeys(self._FIELD.values(), 0))
        per[attr] += 1

    def snapshot(self):
        """Plain-dict copy of the aggregate counters."""
        return {attr: getattr(self, attr) for attr in self._FIELD.values()}


class _ArrayKind:
    def __init__(self, version, max_memory):
        self.version = int(version)
        self.max_memory = int(max_memory)
        self.memory = OrderedDict()  # key -> {name: ndarray}


class _RecordKind:
    def __init__(self, version, validate, path):
        self.version = int(version)
        self.validate = validate
        self.path = path
        self.entries = {}
        self.load_error = None
        self.skipped_entries = 0


class ArtifactStore:
    """One versioned cache layer for all warm plan state.

    Parameters
    ----------
    root : str or None
        Directory persisting the artifacts (created on first write).
        ``None`` keeps every kind in memory only -- same API, no disk tier --
        which is the default for ad-hoc plans; services and benchmarks pass a
        directory so warm state survives restarts.
    kinds : bool
        Register the built-in kinds (:data:`ARRAY_KINDS`,
        :data:`RECORD_KINDS`) at construction.  Disable only in tests that
        exercise custom kinds.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.artifacts import ArtifactStore
    >>> store = ArtifactStore()                       # in-memory
    >>> built = store.get_or_build("horner", "w4.demo",
    ...                            lambda: {"coeffs": np.eye(2)})
    >>> again = store.get_or_build("horner", "w4.demo",
    ...                            lambda: {"coeffs": np.zeros(1)})
    >>> bool(np.array_equal(again["coeffs"], np.eye(2)))  # cached, not rebuilt
    True
    >>> store.stats.builds, store.stats.hits
    (1, 1)
    """

    def __init__(self, root=None, kinds=True):
        self.root = os.fspath(root) if root is not None else None
        self.stats = ArtifactStats()
        self._lock = threading.RLock()
        self._inflight = {}
        self._inflight_lock = threading.Lock()
        self._array_kinds = {}
        self._record_kinds = {}
        if kinds:
            for kind, version in ARRAY_KINDS.items():
                self.register_array_kind(
                    kind, version,
                    max_memory=_DEFAULT_MAX_MEMORY.get(kind, 8),
                )
            for kind, version in RECORD_KINDS.items():
                self.register_record_kind(kind, version)

    # ------------------------------------------------------------------ #
    # kind registration
    # ------------------------------------------------------------------ #
    def register_array_kind(self, kind, version, max_memory=8):
        """Register (or re-version) an array kind; returns ``self``.

        ``max_memory`` bounds the in-memory LRU tier (entries); the disk tier
        under ``root/<kind>/`` is unbounded.
        """
        with self._lock:
            self._array_kinds[str(kind)] = _ArrayKind(version, max_memory)
        return self

    def register_record_kind(self, kind, version, validate=None, path=None):
        """Register a record kind (one tolerant JSON table); returns ``self``.

        ``validate`` is an optional per-record predicate applied on load and
        on :meth:`put_record` (the default accepts any dict whose
        ``"version"`` equals the kind's schema version).  ``path`` overrides
        the table's file (default ``root/<kind>.json``; e.g. the tuning
        adapter points it at an arbitrary ``REPRO_TUNING_CACHE`` file).
        """
        kind = str(kind)
        if validate is None:
            version_n = int(version)
            validate = (lambda record: isinstance(record, dict)
                        and record.get("version") == version_n)
        if path is None and self.root is not None:
            path = os.path.join(self.root, f"{kind}.json")
        rk = _RecordKind(version, validate, path)
        with self._lock:
            self._record_kinds[kind] = rk
            self._load_records(rk)
        return self

    def _array_kind(self, kind):
        try:
            return self._array_kinds[kind]
        except KeyError:
            raise KeyError(
                f"unregistered array kind {kind!r}; "
                f"known: {sorted(self._array_kinds)}"
            ) from None

    def _record_kind(self, kind):
        try:
            return self._record_kinds[kind]
        except KeyError:
            raise KeyError(
                f"unregistered record kind {kind!r}; "
                f"known: {sorted(self._record_kinds)}"
            ) from None

    # ------------------------------------------------------------------ #
    # array kinds
    # ------------------------------------------------------------------ #
    @staticmethod
    def _entry_name(key):
        return hashlib.blake2b(str(key).encode(), digest_size=16).hexdigest()

    def _entry_path(self, kind, key):
        return os.path.join(self.root, kind, self._entry_name(key) + ".npz")

    def load_arrays(self, kind, key, count=True):
        """The stored arrays for ``(kind, key)``, or ``None`` on a miss.

        Returns a ``{name: ndarray}`` mapping of read-only arrays.  Corrupt
        or stale entries are counted and treated as misses -- loading never
        raises on bad files.
        """
        ak = self._array_kind(kind)
        key = str(key)
        with self._lock:
            arrays = ak.memory.get(key)
            if arrays is not None:
                ak.memory.move_to_end(key)
                if count:
                    self.stats.record(kind, "hit")
                return dict(arrays)
        arrays = self._load_arrays_disk(ak, kind, key, count)
        if arrays is not None:
            self._remember(ak, key, arrays)
            if count:
                self.stats.record(kind, "hit")
            return dict(arrays)
        if count:
            self.stats.record(kind, "miss")
        return None

    def _load_arrays_disk(self, ak, kind, key, count=True):
        if self.root is None:
            return None
        path = self._entry_path(kind, key)
        if not os.path.exists(path):
            return None
        try:
            with np.load(path, allow_pickle=False) as npz:
                if _META_MEMBER not in npz.files:
                    raise ValueError("artifact has no __meta__ member")
                meta = json.loads(bytes(npz[_META_MEMBER].tobytes()).decode())
                if not isinstance(meta, dict):
                    raise ValueError("artifact __meta__ is not a mapping")
                if meta.get("version") != ak.version or meta.get("key") != key:
                    # Wrong schema version, or a digest collision with some
                    # other key: skip this entry individually.
                    if count:
                        self.stats.record(kind, "stale")
                    return None
                arrays = {}
                for name in npz.files:
                    if name == _META_MEMBER:
                        continue
                    arr = np.asarray(npz[name])
                    arr.setflags(write=False)
                    arrays[name] = arr
                return arrays
        except (OSError, EOFError, ValueError, KeyError, zipfile.BadZipFile,
                json.JSONDecodeError, UnicodeDecodeError):
            if count:
                self.stats.record(kind, "corrupt")
            return None

    def _remember(self, ak, key, arrays):
        with self._lock:
            ak.memory[key] = arrays
            ak.memory.move_to_end(key)
            while len(ak.memory) > ak.max_memory:
                ak.memory.popitem(last=False)

    def save_arrays(self, kind, key, arrays):
        """Store ``{name: ndarray}`` under ``(kind, key)``; atomic on disk."""
        ak = self._array_kind(kind)
        key = str(key)
        stored = {}
        for name, arr in arrays.items():
            if name == _META_MEMBER:
                raise ValueError(f"array name {_META_MEMBER!r} is reserved")
            arr = np.asarray(arr)
            arr.setflags(write=False)
            stored[name] = arr
        self._remember(ak, key, stored)
        if self.root is None:
            return
        meta = json.dumps({"version": ak.version, "key": key})
        meta_arr = np.frombuffer(meta.encode(), dtype=np.uint8)
        directory = os.path.join(self.root, kind)
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=f".{kind}-", suffix=".npz",
                                   dir=directory)
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **{_META_MEMBER: meta_arr}, **stored)
            os.replace(tmp, self._entry_path(kind, key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_or_build(self, kind, key, builder):
        """The arrays for ``(kind, key)``, building (once) on a miss.

        ``builder`` is a zero-argument callable returning ``{name: ndarray}``;
        concurrent calls for the same key single-flight through a per-key
        lock, so the builder runs at most once per miss even under races.
        Every build is persisted before being returned.
        """
        arrays = self.load_arrays(kind, key)
        if arrays is not None:
            return arrays
        token = (str(kind), str(key))
        with self._inflight_lock:
            lock = self._inflight.setdefault(token, threading.Lock())
        with lock:
            # Another thread may have built while this one waited.
            arrays = self.load_arrays(kind, key, count=False)
            if arrays is not None:
                return arrays
            built = builder()
            self.stats.record(kind, "build")
            self.save_arrays(kind, key, built)
            arrays = self.load_arrays(kind, key, count=False)
        with self._inflight_lock:
            self._inflight.pop(token, None)
        return arrays

    # ------------------------------------------------------------------ #
    # record kinds (tolerant JSON tables, the PR 4 tuning-cache layout)
    # ------------------------------------------------------------------ #
    def _load_records(self, rk):
        """Tolerantly (re)load one record table (caller holds the lock)."""
        rk.entries = {}
        rk.load_error = None
        rk.skipped_entries = 0
        if rk.path is None or not os.path.exists(rk.path):
            return
        try:
            with open(rk.path) as fh:
                raw = json.load(fh)
            if not isinstance(raw, dict) or not isinstance(raw.get("entries"), dict):
                raise ValueError("record table has no 'entries' mapping")
        except (OSError, ValueError) as exc:
            rk.load_error = f"{type(exc).__name__}: {exc}"
            return
        for key, record in raw["entries"].items():
            if rk.validate(record):
                rk.entries[key] = record
            else:
                rk.skipped_entries += 1

    def _save_records_locked(self, rk):
        """Atomically rewrite one record table (caller holds the lock)."""
        if rk.path is None:
            return
        payload = {"schema": rk.version, "entries": rk.entries}
        directory = os.path.dirname(os.path.abspath(rk.path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".records-", suffix=".json",
                                   dir=directory)
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, indent=1, sort_keys=True)
            os.replace(tmp, rk.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get_record(self, kind, key, count=True):
        """The record stored under ``(kind, key)``, or ``None``."""
        with self._lock:
            rk = self._record_kind(kind)
            record = rk.entries.get(str(key))
            if count:
                self.stats.record(kind, "hit" if record is not None else "miss")
            return dict(record) if record is not None else None

    def put_record(self, kind, key, record):
        """Store ``record`` under ``(kind, key)`` and persist atomically."""
        with self._lock:
            rk = self._record_kind(kind)
            if not rk.validate(record):
                raise ValueError(
                    f"malformed {kind!r} record for {key!r} "
                    f"(schema version {rk.version})"
                )
            rk.entries[str(key)] = dict(record)
            self._save_records_locked(rk)

    def record_keys(self, kind):
        """Snapshot of the keys stored under record kind ``kind``."""
        with self._lock:
            return list(self._record_kind(kind).entries)

    def record_count(self, kind):
        """Number of records stored under ``kind``."""
        with self._lock:
            return len(self._record_kind(kind).entries)

    def clear_records(self, kind):
        """Drop every record of ``kind`` (and rewrite its table)."""
        with self._lock:
            rk = self._record_kind(kind)
            rk.entries = {}
            self._save_records_locked(rk)

    def record_load_error(self, kind):
        """Description of the kind's last failed table load, or ``None``."""
        with self._lock:
            return self._record_kind(kind).load_error

    def record_skipped(self, kind):
        """Entries skipped (bad schema/shape) loading the kind's table."""
        with self._lock:
            return self._record_kind(kind).skipped_entries

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def describe(self):
        """One-line summary for service reports."""
        where = self.root if self.root is not None else "in-memory"
        s = self.stats
        return (f"artifacts[{where}]: {s.hits} hits, {s.misses} misses, "
                f"{s.stale} stale, {s.corrupt} corrupt, {s.builds} builds")


# --------------------------------------------------------------------------- #
# process-wide default store
# --------------------------------------------------------------------------- #
_default_store = None
_default_store_lock = threading.Lock()


def default_store():
    """Process-wide shared :class:`ArtifactStore`.

    Rooted at the directory named by the ``REPRO_ARTIFACT_STORE`` environment
    variable when set, in-memory otherwise.  This is the store the Horner
    coefficient cache uses when no explicit store is supplied, mirroring
    :func:`repro.tuning.default_autotuner`.
    """
    global _default_store
    with _default_store_lock:
        if _default_store is None:
            _default_store = ArtifactStore(root=_env.artifact_store_path())
        return _default_store


def reset_default_store():
    """Drop the process-wide store so the next use re-reads the environment.

    Primarily for tests that flip ``REPRO_ARTIFACT_STORE`` mid-process.
    """
    global _default_store
    with _default_store_lock:
        _default_store = None
