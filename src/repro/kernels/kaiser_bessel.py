"""Kaiser-Bessel spreading kernel (gpuNUFFT baseline).

gpuNUFFT (Knoll et al.) performs sector-based gridding with a Kaiser-Bessel
window, the classic choice in MRI gridding (Jackson et al. 1991; Beatty et
al. 2005).  The paper notes gpuNUFFT's delivered accuracy "appears always to
exceed 1e-3" -- it is tuned for imaging-grade accuracy with a fixed, small
sector/kernel width -- so our baseline mirrors both the kernel and that
accuracy floor.

Normalized form on ``|z| <= 1``:

.. math::

    \\phi_{KB}(z) = \\frac{I_0\\!\\left(\\beta\\sqrt{1 - z^2}\\right)}{I_0(\\beta)}

where :math:`I_0` is the modified Bessel function of the first kind.  The
Beatty formula gives the optimal ``beta`` for a width ``w`` and upsampling
factor ``sigma``:

.. math::

    \\beta = \\pi \\sqrt{ \\frac{w^2}{\\sigma^2}(\\sigma - 1/2)^2 - 0.8 }.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import i0

__all__ = ["KaiserBesselKernel", "kaiser_bessel_params_for_tolerance", "GPUNUFFT_ACCURACY_FLOOR"]

#: gpuNUFFT's delivered relative error never drops below roughly this value in
#: the paper's sweeps (it is excluded from the double-precision figures).
GPUNUFFT_ACCURACY_FLOOR = 1.0e-3


def beatty_beta(width, upsampfac=2.0):
    """Optimal Kaiser-Bessel shape parameter (Beatty et al. 2005)."""
    arg = (width / upsampfac) ** 2 * (upsampfac - 0.5) ** 2 - 0.8
    if arg <= 0:
        raise ValueError(f"width {width} too small for upsampling factor {upsampfac}")
    return np.pi * np.sqrt(arg)


def kaiser_bessel_params_for_tolerance(eps, upsampfac=2.0, max_width=8):
    """Width and beta for a Kaiser-Bessel window targeting tolerance ``eps``.

    The KB window at upsampling 2 delivers roughly ``10^{-w+1}`` accuracy like
    the ES kernel, but gpuNUFFT fixes its sector kernel width to at most 8
    (the paper uses "the same sector width 8 as the demo codes"), which caps
    the delivered accuracy near :data:`GPUNUFFT_ACCURACY_FLOOR`.

    Returns
    -------
    w : int
    beta : float
    """
    if not (0.0 < eps < 1.0):
        raise ValueError(f"tolerance eps must lie in (0, 1), got {eps!r}")
    w = int(np.ceil(np.log10(1.0 / eps))) + 1
    w = max(2, min(max_width, w))
    return w, beatty_beta(w, upsampfac)


@dataclass(frozen=True)
class KaiserBesselKernel:
    """Kaiser-Bessel window in normalized coordinates ``|z| <= 1``."""

    width: int
    beta: float
    eps: float = 0.0

    @classmethod
    def from_tolerance(cls, eps, upsampfac=2.0, max_width=8):
        w, beta = kaiser_bessel_params_for_tolerance(eps, upsampfac, max_width)
        return cls(width=w, beta=beta, eps=float(eps))

    def __post_init__(self):
        if self.width < 2:
            raise ValueError(f"width must be >= 2, got {self.width}")
        if self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")

    @property
    def half_width(self):
        return 0.5 * self.width

    def __call__(self, z):
        z = np.asarray(z, dtype=np.float64)
        out = np.zeros_like(z)
        inside = np.abs(z) <= 1.0
        zi = z[inside]
        out[inside] = i0(self.beta * np.sqrt(1.0 - zi * zi)) / i0(self.beta)
        return out

    def evaluate_grid_distance(self, dist):
        dist = np.asarray(dist, dtype=np.float64)
        return self(dist / self.half_width)

    def evaluate_offsets(self, frac):
        """Kernel values at the ``w`` grid nodes covering each point.

        Same contract as :meth:`repro.kernels.es_kernel.ESKernel.evaluate_offsets`.
        """
        frac = np.asarray(frac, dtype=np.float64)
        offsets = np.arange(self.width, dtype=np.float64)
        dist = frac[:, None] - offsets[None, :]
        return self.evaluate_grid_distance(dist)

    def estimated_error(self):
        """Delivered error: ``10^{1-w}`` but never better than the gpuNUFFT floor."""
        return max(10.0 ** (1 - self.width), GPUNUFFT_ACCURACY_FLOOR)

    def describe(self):
        return (
            f"Kaiser-Bessel kernel: w={self.width}, beta={self.beta:.3f}, "
            f"target eps={self.eps:g}, est. error={self.estimated_error():.1e}"
        )
