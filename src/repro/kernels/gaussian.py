"""Truncated Gaussian spreading kernel (CUNFFT baseline).

CUNFFT -- the "nonequispaced FFT on graphics processing units" code of Kunis &
Kunis that the paper benchmarks against -- uses (fast) Gaussian gridding.  For
the same target accuracy a Gaussian window needs a noticeably wider support
than the ES kernel (roughly ``w_gauss ~ w_ES + 2`` at moderate accuracy),
which is one of the two reasons cuFINUFFT beats it (the other being atomic
serialization of its unsorted input-driven spreading).

We parameterize the truncated Gaussian in the same normalized coordinate as
the ES kernel (support ``[-1, 1]`` after rescaling by the half-width), with

.. math::

    \\phi_G(z) = e^{-z^2 / (2\\tau)},\\qquad |z| \\le 1

where the variance parameter ``tau`` follows the classical Dutt-Rokhlin /
Greengard-Lee choice for upsampling factor ``sigma = 2``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GaussianKernel", "gaussian_params_for_tolerance"]


def gaussian_params_for_tolerance(eps):
    """Width (grid points) and normalized variance for a Gaussian window.

    Classical estimates (Dutt & Rokhlin 1993; Greengard & Lee 2004) for
    upsampling factor 2 give truncation + aliasing error ``~exp(-pi w / 4)``
    for a width-``w`` Gaussian, i.e. ``w ~ (4/pi) ln(1/eps)``.  We round up
    and add one safety point, matching the empirically wider support CUNFFT
    needs relative to FINUFFT at equal accuracy.

    The variance is chosen so that the window has decayed to ``eps`` at the
    truncation edge ``|z| = 1``; this keeps the truncation error at the
    requested level and -- importantly for the deconvolution step -- keeps the
    window's Fourier transform strictly positive over the retained modes.

    Returns
    -------
    w : int
        Support width in fine-grid points.
    tau_normalized : float
        Variance of the Gaussian in the *normalized* coordinate ``z`` in
        ``[-1, 1]`` (i.e. after dividing distance by ``w/2``).
    """
    if not (0.0 < eps < 1.0):
        raise ValueError(f"tolerance eps must lie in (0, 1), got {eps!r}")
    w = int(np.ceil(4.0 / np.pi * np.log(1.0 / eps))) + 1
    w = max(2, min(24, w))
    # exp(-1 / (2 tau)) = eps  at the truncation edge z = 1.
    tau_normalized = 1.0 / (2.0 * np.log(1.0 / eps))
    return w, tau_normalized


@dataclass(frozen=True)
class GaussianKernel:
    """Truncated Gaussian window in normalized coordinates ``|z| <= 1``.

    Attributes
    ----------
    width : int
        Support width in fine-grid points.
    tau : float
        Variance in the normalized coordinate.
    eps : float
        Tolerance the parameters were derived from.
    """

    width: int
    tau: float
    eps: float = 0.0

    @classmethod
    def from_tolerance(cls, eps):
        w, tau = gaussian_params_for_tolerance(eps)
        return cls(width=w, tau=tau, eps=float(eps))

    def __post_init__(self):
        if self.width < 2:
            raise ValueError(f"width must be >= 2, got {self.width}")
        if self.tau <= 0:
            raise ValueError(f"tau must be positive, got {self.tau}")

    @property
    def half_width(self):
        return 0.5 * self.width

    def __call__(self, z):
        """Evaluate the normalized kernel; zero outside ``[-1, 1]``."""
        z = np.asarray(z, dtype=np.float64)
        out = np.zeros_like(z)
        inside = np.abs(z) <= 1.0
        zi = z[inside]
        out[inside] = np.exp(-zi * zi / (2.0 * self.tau))
        return out

    def evaluate_grid_distance(self, dist):
        """Evaluate at distances measured in fine-grid points."""
        dist = np.asarray(dist, dtype=np.float64)
        return self(dist / self.half_width)

    def evaluate_offsets(self, frac):
        """Kernel values at the ``w`` grid nodes covering each point.

        Same contract as :meth:`repro.kernels.es_kernel.ESKernel.evaluate_offsets`.
        """
        frac = np.asarray(frac, dtype=np.float64)
        offsets = np.arange(self.width, dtype=np.float64)
        dist = frac[:, None] - offsets[None, :]
        return self.evaluate_grid_distance(dist)

    def estimated_error(self):
        """Truncation-error heuristic: the window value at its truncation edge."""
        return float(np.exp(-1.0 / (2.0 * self.tau)))

    def describe(self):
        return (
            f"Gaussian kernel: w={self.width}, tau={self.tau:.4f}, "
            f"target eps={self.eps:g}, est. error={self.estimated_error():.1e}"
        )
