"""Spreading/interpolation kernel substrate.

This subpackage implements the window ("spreading") kernels used by the NUFFT
libraries reproduced in this repository:

* :mod:`repro.kernels.es_kernel` -- the "exponential of semicircle" (ES)
  kernel used by FINUFFT and cuFINUFFT (paper Eq. (5)-(6)).
* :mod:`repro.kernels.kernel_ft` -- accurate Fourier transforms of the kernels
  via Gauss-Legendre quadrature, needed for the deconvolution (correction)
  step.
* :mod:`repro.kernels.gaussian` -- the truncated Gaussian kernel used by the
  CUNFFT baseline.
* :mod:`repro.kernels.kaiser_bessel` -- the Kaiser-Bessel kernel used by the
  gpuNUFFT baseline.
"""

from .es_kernel import ESKernel, kernel_params_for_tolerance
from .gaussian import GaussianKernel
from .kaiser_bessel import KaiserBesselKernel
from .kernel_ft import kernel_fourier_series, quadrature_kernel_ft

__all__ = [
    "ESKernel",
    "GaussianKernel",
    "KaiserBesselKernel",
    "kernel_params_for_tolerance",
    "kernel_fourier_series",
    "quadrature_kernel_ft",
]
