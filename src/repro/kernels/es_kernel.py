"""The "exponential of semicircle" (ES) spreading kernel.

The ES kernel is the window function used by FINUFFT and cuFINUFFT
(paper Eq. (5)):

.. math::

    \\phi_\\beta(z) = \\begin{cases}
        e^{\\beta(\\sqrt{1-z^2} - 1)}, & |z| \\le 1 \\\\
        0, & \\text{otherwise}
    \\end{cases}

For a user-requested tolerance ``eps`` the kernel width ``w`` (in fine-grid
points) and shape parameter ``beta`` are set by the paper's Eq. (6):

.. math::

    w = \\lceil \\log_{10}(1/\\varepsilon) \\rceil + 1, \\qquad \\beta = 2.30\\, w

which typically yields relative :math:`\\ell_2` errors close to ``eps``.

The kernel is evaluated in *rescaled* coordinates: on the fine grid with
spacing :math:`h = 2\\pi/n`, the physical kernel is
:math:`\\phi_\\beta(x/\\alpha)` with half-width :math:`\\alpha = w\\pi/n`, i.e.
it covers ``w`` fine-grid points.  All evaluation routines here work in units
of *fine grid points* (distance measured in grid cells), which is the natural
unit inside the spreader.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ESKernel",
    "kernel_params_for_tolerance",
    "horner_coefficients",
    "MAX_KERNEL_WIDTH",
    "MIN_KERNEL_WIDTH",
]

#: Widest kernel supported (matches FINUFFT's internal limit; eps ~ 1e-15).
MAX_KERNEL_WIDTH = 16
#: Narrowest useful kernel (eps ~ 1e-1).
MIN_KERNEL_WIDTH = 2

#: beta/w ratio from paper Eq. (6).
_BETA_OVER_WIDTH = 2.30

#: Highest polynomial degree tried by the Horner fit.
_HORNER_MAX_DEGREE = 40
#: Absolute fit-error floor: the edge-node values carry a sqrt singularity at
#: the support boundary, and below a few ulps of the unit kernel peak the
#: monomial-basis fit cannot improve in float64.
_HORNER_ERROR_FLOOR = 5e-15


def _exact_offsets(width, beta, frac):
    """Exact ES kernel values on the ``width`` nodes covering each ``frac``.

    Delegates to :meth:`ESKernel.evaluate_offsets` so the Horner fit can never
    desynchronize from the kernel definition it approximates.
    """
    return ESKernel(width=width, beta=beta).evaluate_offsets(frac)


def horner_coefficients(width, beta, store=None):
    """Piecewise-polynomial (Horner) approximation of the ES kernel stencil.

    For each of the ``width`` grid nodes ``r`` covered by a point, the kernel
    value ``phi((frac - r) / (w/2))`` is a smooth function of the fractional
    offset ``frac`` over its whole domain ``(w/2 - 1, w/2]``.  Mapping that
    domain onto ``u = 2*frac - (w - 1) in (-1, 1]``, each node's values are
    fitted by a single polynomial in ``u`` (Chebyshev interpolation converted
    to the monomial basis), exactly as upstream FINUFFT ships per-width Horner
    coefficient tables instead of evaluating ``exp(beta*(sqrt(1-z^2)-1))``
    directly.

    The degree is chosen adaptively: it grows until the dense-grid fit error
    drops below ``0.05 * 10**(1-w)`` (half an order of magnitude under the
    kernel's own approximation error, paper Eq. (6)) or the float64 floor,
    whichever is larger.

    Fits are memoized in an :class:`~repro.artifacts.ArtifactStore` (kind
    ``"horner"``, bounded in-memory entries; on-disk when the store has a
    root), replacing the process-global ``functools.lru_cache`` of earlier
    revisions.  ``store=None`` uses the process default
    (:func:`repro.artifacts.default_store`), so a fit is still computed at
    most once per process -- and at most once *ever* per shared store
    directory.

    Returns
    -------
    ndarray, shape (width, degree + 1)
        ``coeffs[r, k]`` is the coefficient of ``u**k`` for node ``r``.
        The array is read-only (it is shared between callers).
    """
    width = int(width)
    beta = float(beta)
    if store is None:
        from ..artifacts import default_store

        store = default_store()
    key = f"w{width}.beta{beta:.9g}"
    arrays = store.get_or_build(
        "horner", key, lambda: {"coeffs": _fit_horner_coefficients(width, beta)}
    )
    return arrays["coeffs"]


def _fit_horner_coefficients(width, beta):
    """The adaptive Chebyshev-to-monomial fit behind :func:`horner_coefficients`."""
    from numpy.polynomial import chebyshev as _cheb

    target = max(0.05 * 10.0 ** (1 - width), _HORNER_ERROR_FLOOR)

    frac_dense = np.linspace(width / 2.0 - 1.0, width / 2.0, 2001)
    exact_dense = _exact_offsets(width, beta, frac_dense)
    u_dense = 2.0 * frac_dense - (width - 1.0)

    best_coeffs = None
    best_err = np.inf
    for degree in range(width + 2, _HORNER_MAX_DEGREE + 1):
        # Chebyshev points of the first kind on u in [-1, 1].
        u = np.cos(np.pi * (np.arange(degree + 1) + 0.5) / (degree + 1))
        vals = _exact_offsets(width, beta, 0.5 * (u + width - 1.0))
        coeffs = np.empty((width, degree + 1))
        for r in range(width):
            coeffs[r] = _cheb.cheb2poly(_cheb.chebfit(u, vals[:, r], degree))
        approx = np.zeros((u_dense.shape[0], width))
        approx[:] = coeffs[:, -1]
        for k in range(degree - 1, -1, -1):
            approx *= u_dense[:, None]
            approx += coeffs[:, k]
        err = float(np.abs(approx - exact_dense).max())
        if err < best_err:
            best_err = err
            best_coeffs = coeffs
        if err < target:
            break
    best_coeffs.setflags(write=False)
    return best_coeffs


def kernel_params_for_tolerance(eps, upsampfac=2.0):
    """Return ``(w, beta)`` for a requested relative tolerance ``eps``.

    Implements paper Eq. (6): ``w = ceil(log10(1/eps)) + 1``, ``beta = 2.30 w``,
    clipped to the supported range ``[MIN_KERNEL_WIDTH, MAX_KERNEL_WIDTH]``.

    Parameters
    ----------
    eps : float
        Requested relative l2 tolerance, ``0 < eps < 1``.
    upsampfac : float, optional
        Upsampling factor sigma.  The paper fixes ``sigma = 2`` and so do we;
        the argument exists so that the formula's provenance is explicit and
        future smaller-sigma extensions have a hook.

    Returns
    -------
    w : int
        Kernel width in fine-grid points.
    beta : float
        ES shape parameter.

    Raises
    ------
    ValueError
        If ``eps`` is not in ``(0, 1)`` or ``upsampfac != 2``.
    """
    if not (0.0 < eps < 1.0):
        raise ValueError(f"tolerance eps must lie in (0, 1), got {eps!r}")
    if upsampfac != 2.0:
        raise ValueError(
            "only upsampling factor sigma = 2 is supported (paper Sec. I.B limitation (3))"
        )
    w = int(np.ceil(np.log10(1.0 / eps))) + 1
    w = max(MIN_KERNEL_WIDTH, min(MAX_KERNEL_WIDTH, w))
    beta = _BETA_OVER_WIDTH * w
    return w, beta


@dataclass(frozen=True)
class ESKernel:
    """Exponential-of-semicircle kernel with width ``w`` and parameter ``beta``.

    Instances are immutable and cheap; they carry only the two scalars plus
    the tolerance they were derived from (for reporting).

    Attributes
    ----------
    width : int
        Support width ``w`` in fine-grid points.  The kernel is nonzero on
        ``|z| <= w/2`` where ``z`` is measured in fine-grid points.
    beta : float
        Shape parameter.
    eps : float
        Tolerance the parameters were derived from (informational).
    """

    width: int
    beta: float
    eps: float = 0.0

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_tolerance(cls, eps, upsampfac=2.0):
        """Build a kernel from a requested tolerance via paper Eq. (6)."""
        w, beta = kernel_params_for_tolerance(eps, upsampfac=upsampfac)
        return cls(width=w, beta=beta, eps=float(eps))

    def __post_init__(self):
        if self.width < MIN_KERNEL_WIDTH or self.width > MAX_KERNEL_WIDTH:
            raise ValueError(
                f"kernel width must be in [{MIN_KERNEL_WIDTH}, {MAX_KERNEL_WIDTH}], "
                f"got {self.width}"
            )
        if self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    @property
    def half_width(self):
        """Kernel half-width ``w/2`` in fine-grid points."""
        return 0.5 * self.width

    def __call__(self, z):
        """Evaluate the normalized kernel ``phi_beta(z)`` for ``|z| <= 1``.

        ``z`` is the *normalized* argument (the paper's Eq. (5)); values with
        ``|z| > 1`` return 0.
        """
        z = np.asarray(z, dtype=np.float64)
        out = np.zeros_like(z)
        inside = np.abs(z) <= 1.0
        zi = z[inside]
        out[inside] = np.exp(self.beta * (np.sqrt(1.0 - zi * zi) - 1.0))
        return out

    def evaluate_grid_distance(self, dist):
        """Evaluate the kernel at distances measured in fine-grid points.

        The kernel support is ``|dist| <= w/2`` grid points, so the normalized
        argument is ``z = dist / (w/2)``.

        Parameters
        ----------
        dist : array_like
            Signed distances from the nonuniform point to fine-grid nodes,
            in units of the fine-grid spacing.

        Returns
        -------
        ndarray
            Kernel values, same shape as ``dist``.
        """
        dist = np.asarray(dist, dtype=np.float64)
        return self(dist / self.half_width)

    def evaluate_offsets(self, frac):
        """Evaluate kernel values on the ``w`` grid nodes covering each point.

        This is the core vectorized primitive the spreaders use.  For each
        nonuniform point with fractional grid coordinate ``x`` (in grid
        units), the spreader writes to the ``w`` consecutive grid nodes
        ``i0, i0+1, ..., i0+w-1`` where ``i0 = ceil(x - w/2)``.  Given
        ``frac = x - i0`` (a value in ``[w/2 - 1, w/2]``... in practice we
        simply pass ``x`` and ``i0`` via ``frac = x - i0``), the distances to
        those nodes are ``frac - 0, frac - 1, ..., frac - (w-1)``.

        Parameters
        ----------
        frac : ndarray, shape (M,)
            ``x - i0`` for each nonuniform point, i.e. the distance (in grid
            units) from the point to the *first* grid node it touches.

        Returns
        -------
        ndarray, shape (M, w)
            ``vals[j, r] = phi((frac[j] - r) / (w/2))``.
        """
        frac = np.asarray(frac, dtype=np.float64)
        offsets = np.arange(self.width, dtype=np.float64)
        dist = frac[:, None] - offsets[None, :]
        return self.evaluate_grid_distance(dist)

    def evaluate_offsets_horner(self, frac, store=None):
        """Horner-form piecewise-polynomial version of :meth:`evaluate_offsets`.

        Matches the exact form to better than ``0.1 * 10**(1-w)`` absolute
        error (or a few ulps for the widest kernels), while replacing the
        per-value ``exp(sqrt(...))`` with a short fused multiply-add chain --
        the same trade upstream FINUFFT makes with its precomputed Horner
        coefficient tables.  ``frac`` must lie in the stencil's natural domain
        ``(w/2 - 1, w/2]`` (guaranteed when derived from ``i0 = ceil(g - w/2)``).
        ``store`` selects the artifact store memoizing the coefficient fit
        (the process default when ``None``).
        """
        frac = np.asarray(frac, dtype=np.float64)
        coeffs = horner_coefficients(self.width, self.beta, store=store)
        u = (2.0 * frac - (self.width - 1.0))[:, None]
        out = np.broadcast_to(coeffs[:, -1], (frac.shape[0], self.width)).copy()
        for k in range(coeffs.shape[1] - 2, -1, -1):
            out *= u
            out += coeffs[:, k]
        return out

    # ------------------------------------------------------------------ #
    # analytic helpers
    # ------------------------------------------------------------------ #
    def fourier_transform(self, xi, n_quad=None):
        """Continuous Fourier transform ``\\hat\\phi_\\beta(xi)`` of the
        normalized kernel (support ``[-1, 1]``), via Gauss-Legendre quadrature.

        Uses the convention of paper Eq. (4):
        ``phihat(xi) = int_{-1}^{1} phi_beta(z) exp(-i xi z) dz`` -- the
        kernel is even so this is real:
        ``phihat(xi) = 2 int_0^1 phi_beta(z) cos(xi z) dz``.

        Parameters
        ----------
        xi : array_like
            Frequencies at which to evaluate.
        n_quad : int, optional
            Number of Gauss-Legendre nodes; defaults to a value safely
            resolving the kernel and the largest requested frequency.

        Returns
        -------
        ndarray
            Real values of the transform, same shape as ``xi``.
        """
        from .kernel_ft import quadrature_kernel_ft

        return quadrature_kernel_ft(self, xi, n_quad=n_quad)

    def estimated_error(self):
        """Heuristic relative error delivered by this (w, beta) pair.

        The paper states Eq. (6) "typically gives relative l2 errors close to
        eps", i.e. roughly ``10^{1-w}``.  Useful for reporting and for the
        accuracy-floor logic in baselines.
        """
        return 10.0 ** (1 - self.width)

    def describe(self):
        """One-line human-readable description (used by ``Plan.report``)."""
        return (
            f"ES kernel: w={self.width}, beta={self.beta:.3f}, "
            f"target eps={self.eps:g}, est. error={self.estimated_error():.1e}"
        )
