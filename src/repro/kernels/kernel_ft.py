"""Fourier transforms of spreading kernels via Gauss-Legendre quadrature.

The deconvolution (correction) step of the NUFFT divides the retained Fourier
modes by samples of the kernel's continuous Fourier transform (paper Step 3 of
the type-1 algorithm).  The ES kernel has no simple closed-form transform, so
-- exactly as FINUFFT/cuFINUFFT do -- we evaluate

.. math::

    \\hat\\phi(\\xi) = \\int_{-1}^{1} \\phi(z)\\, e^{-i\\xi z}\\, dz
                    = 2\\int_0^1 \\phi(z) \\cos(\\xi z)\\, dz

by high-order Gauss-Legendre quadrature.  The kernel is smooth on its support
(up to the square-root endpoint behaviour) so a modest number of nodes gives
near machine accuracy for all mode indices we ever need.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quadrature_kernel_ft", "kernel_fourier_series"]


def _default_n_quad(kernel_width, max_abs_xi):
    """Number of Gauss-Legendre nodes resolving the kernel and frequency range.

    Empirically ~10 nodes per oscillation of ``cos(xi z)`` on ``[0, 1]`` plus a
    floor proportional to the kernel width gives <1e-14 quadrature error.
    """
    oscillations = max_abs_xi / (2.0 * np.pi) + 1.0
    return int(max(32, 8 * kernel_width, np.ceil(10 * oscillations)))


def quadrature_kernel_ft(kernel, xi, n_quad=None):
    """Continuous Fourier transform of a normalized kernel at frequencies ``xi``.

    Parameters
    ----------
    kernel : callable
        The kernel evaluated on its normalized support ``[-1, 1]``; must be
        even and vectorized (``ESKernel``, ``GaussianKernel`` and
        ``KaiserBesselKernel`` instances all qualify).  The ``width``
        attribute, if present, refines the default quadrature order.
    xi : array_like
        Frequencies (radians per unit of the normalized coordinate).
    n_quad : int, optional
        Number of Gauss-Legendre nodes on ``[0, 1]``.  Auto-selected when
        omitted.

    Returns
    -------
    ndarray
        Real transform values with the same shape as ``xi``.
    """
    xi = np.atleast_1d(np.asarray(xi, dtype=np.float64))
    width = getattr(kernel, "width", 8)
    if n_quad is None:
        n_quad = _default_n_quad(width, float(np.max(np.abs(xi))) if xi.size else 0.0)

    # Gauss-Legendre on [0, 1]; kernel is even so FT = 2 * int_0^1 phi cos(xi z) dz.
    nodes, weights = np.polynomial.legendre.leggauss(n_quad)
    z = 0.5 * (nodes + 1.0)
    wq = 0.5 * weights
    phi_vals = kernel(z)  # (n_quad,)
    # (len(xi), n_quad) cosine matrix; fine for the sizes used here.
    cos_mat = np.cos(np.outer(xi.ravel(), z))
    out = 2.0 * cos_mat @ (wq * phi_vals)
    return out.reshape(np.shape(xi))


def kernel_fourier_series(kernel, n_fine, n_modes, n_quad=None):
    """Samples of the rescaled periodized kernel's Fourier coefficients.

    On a fine grid of ``n_fine`` points covering ``[-pi, pi)`` the physical
    (rescaled) kernel is ``psi(x) = phi(x / alpha)`` with half-width
    ``alpha = w * pi / n_fine`` (paper Eq. (8)).  Its Fourier coefficients at
    integer frequency ``k`` are

    .. math::

        \\hat\\psi(k) = \\alpha\\, \\hat\\phi(\\alpha k),

    and the correction factors of paper Step 3 are
    ``p_k = h / \\hat\\psi(k) = (2/w) / \\hat\\phi(\\alpha k)`` per dimension
    (with ``h = 2 pi / n_fine``).

    This helper returns ``\\hat\\phi(\\alpha k)`` for the centred mode indices
    ``k in I_{n_modes}`` (paper Eq. (2)); the deconvolution module combines the
    per-dimension factors and the ``(2/w)^d`` prefactor.

    Parameters
    ----------
    kernel : ESKernel or compatible
        Kernel with a ``width`` attribute.
    n_fine : int
        Fine (upsampled) grid size in this dimension.
    n_modes : int
        Number of retained output modes ``N`` in this dimension.
    n_quad : int, optional
        Quadrature order override.

    Returns
    -------
    ndarray, shape (n_modes,)
        ``\\hat\\phi(alpha * k)`` for ``k = -floor(n_modes/2), ..., ceil(n_modes/2)-1``.
    """
    if n_modes > n_fine:
        raise ValueError(
            f"number of modes ({n_modes}) cannot exceed the fine grid size ({n_fine})"
        )
    k = np.arange(-(n_modes // 2), (n_modes + 1) // 2, dtype=np.float64)
    alpha = kernel.width * np.pi / n_fine
    return quadrature_kernel_ft(kernel, alpha * k, n_quad=n_quad)
