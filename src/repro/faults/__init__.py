"""Fault injection and the failure taxonomy of the resilience layer.

This package is the *chaos* substrate under the fault-tolerant serving
stack: a deterministic, seedable :class:`FaultInjector` (seeded from
``REPRO_FAULT_SEED``) with pluggable :class:`FaultSpec` behaviours --
transient kernel failures, device OOM, stuck/slow launches and hard device
death -- hooked into the simulated GPU exactly where real CUDA errors would
surface (stream enqueue in :mod:`repro.gpu.device`, stage execution in the
``device_sim`` backend).

On top of it, :class:`~repro.cluster.DeviceFleet` tracks per-device health
(consecutive-failure circuit breakers, draining/eviction, health-aware
placement) and :class:`~repro.service.TransformService` retries, enforces
deadlines, sheds load and degrades gracefully; see
``docs/ARCHITECTURE.md`` ("Resilience layer") for the full fault flow.

Quickstart
----------

>>> import numpy as np
>>> from repro.faults import FaultInjector, FaultSpec
>>> from repro.service import TransformService, RetryPolicy
>>> inj = FaultInjector([FaultSpec("transient", rate=0.1)], seed=1234)
>>> service = TransformService(n_devices=2, fault_injector=inj,
...                            retry=RetryPolicy(max_attempts=5))
>>> x = np.linspace(-3, 3, 50)
>>> _ = service.submit(nufft_type=1, n_modes=(16,),
...                    data=np.ones(50, complex), x=x)
>>> [r.error for r in service.flush()]   # retries absorb injected faults
[None]
>>> service.close()
"""

from .injector import (
    FAULT_KINDS,
    DeviceFaultError,
    DeviceLostError,
    DeviceOOMError,
    FaultInjector,
    FaultSpec,
    FaultStats,
    TransientKernelError,
    fault_seed_from_env,
)

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultStats",
    "FaultInjector",
    "DeviceFaultError",
    "TransientKernelError",
    "DeviceOOMError",
    "DeviceLostError",
    "fault_seed_from_env",
]
